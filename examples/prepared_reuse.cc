// Prepared-statement reuse: compile an MTSQL query once, execute it many
// times with different parameter bindings, and watch the compilation
// counters stay flat while SET SCOPE / GRANT transparently invalidate the
// cached rewrite.
#include <cstdio>

#include "mt/mtbase.h"

using namespace mtbase;  // NOLINT

inline const Status& AsStatus(const Status& s) { return s; }
template <typename T>
const Status& AsStatus(const Result<T>& r) {
  return r.status();
}

#define MUST(expr)                                                          \
  do {                                                                      \
    const auto& _r = (expr);                                                \
    if (!_r.ok()) {                                                         \
      std::fprintf(stderr, "error: %s\n", AsStatus(_r).ToString().c_str()); \
      return 1;                                                             \
    }                                                                       \
  } while (0)

int main() {
  engine::Database db;
  mt::Middleware mw(&db);
  mw.RegisterTenant(0);
  mw.RegisterTenant(1);

  // Currency conversion machinery (paper Listings 6/7): tenant 0 keeps USD,
  // tenant 1 uses a currency worth half a USD.
  MUST(db.ExecuteScript(R"(
    CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL);
    CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,
      CT_to_universal DECIMAL(15,6) NOT NULL, CT_from_universal DECIMAL(15,6) NOT NULL);
    INSERT INTO Tenant VALUES (0, 0), (1, 1);
    INSERT INTO CurrencyTransform VALUES (0, 1, 1), (1, 0.5, 2);
    CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
      AS 'SELECT CT_to_universal*$1 FROM Tenant, CurrencyTransform
          WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
      LANGUAGE SQL IMMUTABLE;
    CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
      AS 'SELECT CT_from_universal*$1 FROM Tenant, CurrencyTransform
          WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
      LANGUAGE SQL IMMUTABLE;
  )"));
  mt::ConversionPair currency;
  currency.name = "currency";
  currency.to_universal = "currencyToUniversal";
  currency.from_universal = "currencyFromUniversal";
  currency.cls = mt::ConversionClass::kMultiplicative;
  currency.inline_spec.kind = mt::InlineSpec::Kind::kMultiplicative;
  currency.inline_spec.tenant_fk = "T_currency_key";
  currency.inline_spec.meta_table = "CurrencyTransform";
  currency.inline_spec.meta_key = "CT_currency_key";
  currency.inline_spec.to_col = "CT_to_universal";
  currency.inline_spec.from_col = "CT_from_universal";
  MUST(mw.conversions()->Register(currency));

  mt::Session admin(&mw, 0);
  MUST(admin.Execute(R"(CREATE TABLE Employees SPECIFIC (
      E_emp_id INTEGER NOT NULL SPECIFIC,
      E_name VARCHAR(25) NOT NULL COMPARABLE,
      E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
      E_age INTEGER NOT NULL COMPARABLE))"));
  MUST(admin.Execute(
      "INSERT INTO Employees VALUES (0,'Patrick',50000,30),"
      "(1,'John',70000,28),(2,'Alice',150000,46)"));
  mt::Session t1(&mw, 1);
  MUST(t1.Execute(
      "INSERT INTO Employees VALUES (0,'Allan',160000,25),"
      "(1,'Nancy',400000,72),(2,'Ed',2000000,46)"));
  MUST(t1.Execute("GRANT READ ON DATABASE TO 0"));

  // Prepare once: parse now, rewrite + plan lazily on first Execute.
  mt::Session session(&mw, 0);
  MUST(session.Execute("SET SCOPE = \"IN (0, 1)\""));
  auto prepared =
      session.Prepare("SELECT E_name FROM Employees WHERE E_salary > $1");
  MUST(prepared);
  mt::PreparedQuery& query = prepared.value();

  // Execute many: the bound value is a constant in the client's own
  // currency; the cached rewrite and engine plan are reused every time.
  std::printf("== prepared execution with different bindings ==\n");
  engine::StatsScope scope(db.stats());
  for (int64_t threshold : {60000, 100000, 190000}) {
    auto rs = query.Execute({Value::Int(threshold)});
    MUST(rs);
    std::printf("salary > %-7ld -> %zu employees\n",
                static_cast<long>(threshold), rs.value().rows.size());
  }
  engine::ExecStats d = scope.Delta();
  std::printf("3 executions: %llu rewrite(s), %llu rewrite cache hit(s)\n",
              static_cast<unsigned long long>(d.statements_rewritten),
              static_cast<unsigned long long>(d.rewrite_cache_hits));

  // SET SCOPE moves the fingerprint: the next Execute recompiles for the
  // new dataset (the D-filter and conversions change), later ones hit again.
  MUST(session.Execute("SET SCOPE = \"IN (0)\""));
  scope.Restart();
  MUST(query.Execute({Value::Int(60000)}));
  std::printf("after SET SCOPE: %llu rewrite(s) (one recompile)\n",
              static_cast<unsigned long long>(
                  scope.Delta().statements_rewritten));

  // GRANT/REVOKE bumps the privilege epoch and invalidates the same way.
  MUST(t1.Execute("REVOKE READ ON DATABASE FROM 0"));
  MUST(session.Execute("SET SCOPE = \"IN (0, 1)\""));
  auto pruned = query.Execute({Value::Int(60000)});
  MUST(pruned);
  std::printf("after REVOKE: D' pruned to own data, %zu rows\n",
              pruned.value().rows.size());
  return 0;
}
