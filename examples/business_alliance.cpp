// Business alliance (the paper's scenario 1, section 6.2): ten small to
// mid-sized companies share the database with roughly equal shares; a member
// company runs cross-tenant analytics over the subset of partners that
// granted it access.
//
// Demonstrates: per-table GRANT/REVOKE with privilege pruning of D, MT-H
// queries at every optimization level, and DML on behalf of another tenant.
#include <cstdio>

#include "mt/mtbase.h"
#include "mth/runner.h"

using namespace mtbase;  // NOLINT

int main() {
  mth::MthConfig cfg;
  cfg.scale_factor = 0.002;
  cfg.num_tenants = 10;
  cfg.distribution = mth::MthConfig::Distribution::kUniform;
  auto env_r = mth::SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                                     /*with_baseline=*/false);
  if (!env_r.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 env_r.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(env_r).value();
  // The MT-H loader grants public READ; withdraw tenant 5's grant to show
  // privilege pruning.
  env->middleware->privileges()->Revoke(5, "", mt::Privilege::kRead,
                                        mt::kPublicGrantee);

  mt::Session company1 = env->OpenSession(1);
  if (!company1.Execute("SET SCOPE = \"IN (1,2,3,4,5)\"").ok()) return 1;

  // Tenant 5 revoked access: D' = {1,2,3,4} (paper section 3, pruning).
  auto rs = company1.Execute("SELECT COUNT(DISTINCT o_custkey) FROM orders");
  if (!rs.ok()) {
    std::fprintf(stderr, "%s\n", rs.status().ToString().c_str());
    return 1;
  }
  std::printf("Customers visible without tenant 5's grant: %s\n",
              rs.value().rows[0][0].ToString().c_str());
  env->middleware->privileges()->Grant(5, "", mt::Privilege::kRead, 1);
  rs = company1.Execute("SELECT COUNT(DISTINCT o_custkey) FROM orders");
  if (!rs.ok()) return 1;
  std::printf("After tenant 5 grants company 1 read access:  %s\n\n",
              rs.value().rows[0][0].ToString().c_str());

  // The alliance's quarterly report: MT-H Q1 over the partner subset, at
  // every optimization level (all produce identical rows).
  mth::MthQuery q1 = mth::GetMthQuery(1, cfg.scale_factor);
  std::printf("MT-H Q1 across the alliance:\n");
  for (mt::OptLevel level :
       {mt::OptLevel::kCanonical, mt::OptLevel::kO1, mt::OptLevel::kO2,
        mt::OptLevel::kO3, mt::OptLevel::kO4, mt::OptLevel::kInlineOnly}) {
    auto run = mth::RunMthQuery(&company1, q1.sql, level);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", mt::OptLevelName(level),
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-10s %7.1f ms, %4zu rows, %6llu conversion calls\n",
                mt::OptLevelName(level), run.value().seconds * 1e3,
                run.value().result.rows.size(),
                static_cast<unsigned long long>(
                    run.value().stats.total_udf_invocations()));
  }

  // Cross-tenant DML: company 1 places a priority flag on a partner's
  // behalf; conversions to the partner's formats are automatic.
  mt::Session partner = env->OpenSession(2);
  auto before = partner.Execute(
      "SELECT COUNT(*) FROM orders WHERE o_clerk = 'Clerk#999999'");
  if (!before.ok()) return 1;
  if (!company1.Execute("SET SCOPE = \"IN (2)\"").ok()) return 1;
  auto ins = company1.Execute(
      "INSERT INTO orders (o_orderkey, o_custkey, o_orderstatus, o_totalprice, "
      "o_orderdate, o_orderpriority, o_clerk, o_shippriority, o_comment) "
      "SELECT o_orderkey + 1000000, o_custkey, 'O', o_totalprice, "
      "o_orderdate, '1-URGENT', 'Clerk#999999', 0, o_comment FROM orders "
      "WHERE o_totalprice > 100000");
  if (!ins.ok()) {
    std::fprintf(stderr, "insert failed: %s\n", ins.status().ToString().c_str());
    return 1;
  }
  auto after = partner.Execute(
      "SELECT COUNT(*) FROM orders WHERE o_clerk = 'Clerk#999999'");
  if (!after.ok()) return 1;
  std::printf("\nUrgent copies placed into partner 2's data: %s -> %s\n",
              before.value().rows[0][0].ToString().c_str(),
              after.value().rows[0][0].ToString().c_str());
  return 0;
}
