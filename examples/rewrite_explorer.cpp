// rewrite_explorer: show what the MTBase middleware sends to the DBMS.
//
// Sets up the MT-H schema and prints, for an MTSQL query given on the
// command line (or a default), the generated SQL at every optimization level
// of paper Table 6.
//
// Usage: rewrite_explorer [C] [D-scope] ["MTSQL query"]
//   e.g. rewrite_explorer 1 "IN (1,2,3)" "SELECT AVG(c_acctbal) FROM customer"
#include <cstdio>
#include <string>

#include "mt/mtbase.h"
#include "mth/runner.h"

using namespace mtbase;  // NOLINT

int main(int argc, char** argv) {
  int64_t client = argc > 1 ? std::atoll(argv[1]) : 1;
  std::string scope = argc > 2 ? argv[2] : "IN ()";
  std::string query =
      argc > 3 ? argv[3]
               : "SELECT l_returnflag, SUM(l_extendedprice * (1 - l_discount)) "
                 "AS revenue, COUNT(*) AS cnt FROM lineitem WHERE "
                 "l_extendedprice > 1000 GROUP BY l_returnflag ORDER BY revenue "
                 "DESC";

  mth::MthConfig cfg;
  cfg.scale_factor = 0.001;
  cfg.num_tenants = 4;
  auto env = mth::SetupEnvironment(cfg, engine::DbmsProfile::kPostgres, false);
  if (!env.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", env.status().ToString().c_str());
    return 1;
  }
  mt::Session session = env.value()->OpenSession(client);
  auto st = session.Execute("SET SCOPE = \"" + scope + "\"");
  if (!st.ok()) {
    std::fprintf(stderr, "scope error: %s\n", st.status().ToString().c_str());
    return 1;
  }
  std::printf("MTSQL (C=%ld, SCOPE=%s):\n  %s\n\n", static_cast<long>(client),
              scope.c_str(), query.c_str());
  for (mt::OptLevel level :
       {mt::OptLevel::kCanonical, mt::OptLevel::kO1, mt::OptLevel::kO2,
        mt::OptLevel::kO3, mt::OptLevel::kO4, mt::OptLevel::kInlineOnly}) {
    session.set_optimization_level(level);
    auto sql = session.Rewrite(query);
    if (!sql.ok()) {
      std::printf("-- %s --\n  %s\n\n", mt::OptLevelName(level),
                  sql.status().ToString().c_str());
      continue;
    }
    std::printf("-- %s --\n  %s\n\n", mt::OptLevelName(level),
                sql.value().c_str());
  }
  // Physical plans at the two extremes.
  for (mt::OptLevel level : {mt::OptLevel::kCanonical, mt::OptLevel::kO4}) {
    session.set_optimization_level(level);
    auto plan = session.Explain(query);
    if (plan.ok()) {
      std::printf("-- EXPLAIN at %s --\n%s\n", mt::OptLevelName(level),
                  plan.value().c_str());
    }
  }

  // And prove they all agree.
  std::printf("Results (identical at every level):\n");
  for (mt::OptLevel level : {mt::OptLevel::kCanonical, mt::OptLevel::kO4}) {
    auto run = mth::RunMthQuery(&session, query, level);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", mt::OptLevelName(level),
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("-- %s (%.1f ms, %llu UDF calls) --\n%s\n",
                mt::OptLevelName(level), run.value().seconds * 1e3,
                static_cast<unsigned long long>(run.value().stats.udf_calls),
                run.value().result.ToString(5).c_str());
  }
  return 0;
}
