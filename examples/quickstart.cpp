// Quickstart: the paper's running example (Figure 2) end to end.
//
// Builds the Employees/Roles/Regions database for two tenants with different
// currencies, then demonstrates scopes, cross-tenant joins, conversions and
// the rewrite output.
#include <cstdio>

#include "mt/mtbase.h"

using namespace mtbase;  // NOLINT

inline const Status& AsStatus(const Status& s) { return s; }
template <typename T>
const Status& AsStatus(const Result<T>& r) {
  return r.status();
}

#define MUST(expr)                                                        \
  do {                                                                    \
    const auto& _r = (expr);                                              \
    if (!_r.ok()) {                                                       \
      std::fprintf(stderr, "error: %s\n", AsStatus(_r).ToString().c_str()); \
      return 1;                                                           \
    }                                                                     \
  } while (0)

int main() {
  // 1. The DBMS under the middleware and the middleware itself (Figure 4).
  engine::Database db;
  mt::Middleware mw(&db);
  mw.RegisterTenant(0);
  mw.RegisterTenant(1);

  // 2. Conversion machinery: meta tables + UDF pair for currencies
  //    (paper Listings 6/7). Tenant 0 keeps USD, tenant 1 uses a currency
  //    whose fromUniversal rate is 2 (1 USD = 2 units).
  MUST(db.ExecuteScript(R"(
    CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL);
    CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,
      CT_to_universal DECIMAL(15,6) NOT NULL, CT_from_universal DECIMAL(15,6) NOT NULL);
    INSERT INTO Tenant VALUES (0, 0), (1, 1);
    INSERT INTO CurrencyTransform VALUES (0, 1, 1), (1, 0.5, 2);
    CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
      AS 'SELECT CT_to_universal*$1 FROM Tenant, CurrencyTransform
          WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
      LANGUAGE SQL IMMUTABLE;
    CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
      AS 'SELECT CT_from_universal*$1 FROM Tenant, CurrencyTransform
          WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
      LANGUAGE SQL IMMUTABLE;
  )"));
  mt::ConversionPair currency;
  currency.name = "currency";
  currency.to_universal = "currencyToUniversal";
  currency.from_universal = "currencyFromUniversal";
  currency.cls = mt::ConversionClass::kMultiplicative;
  currency.inline_spec.kind = mt::InlineSpec::Kind::kMultiplicative;
  currency.inline_spec.tenant_fk = "T_currency_key";
  currency.inline_spec.meta_table = "CurrencyTransform";
  currency.inline_spec.meta_key = "CT_currency_key";
  currency.inline_spec.to_col = "CT_to_universal";
  currency.inline_spec.from_col = "CT_from_universal";
  MUST(mw.conversions()->Register(currency));

  // 3. MTSQL DDL (paper Listing 3) issued by the data modeller.
  mt::Session modeller(&mw, 0);
  MUST(modeller.Execute(R"(CREATE TABLE Employees SPECIFIC (
      E_emp_id INTEGER NOT NULL SPECIFIC,
      E_name VARCHAR(25) NOT NULL COMPARABLE,
      E_role_id INTEGER NOT NULL SPECIFIC,
      E_reg_id INTEGER NOT NULL COMPARABLE,
      E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
      E_age INTEGER NOT NULL COMPARABLE,
      CONSTRAINT pk_emp PRIMARY KEY (E_emp_id)))"));
  MUST(modeller.Execute(R"(CREATE TABLE Roles SPECIFIC (
      R_role_id INTEGER NOT NULL SPECIFIC,
      R_name VARCHAR(25) NOT NULL COMPARABLE))"));
  MUST(modeller.Execute(R"(CREATE TABLE Regions (
      Re_reg_id INTEGER NOT NULL,
      Re_name VARCHAR(25) NOT NULL))"));
  MUST(modeller.Execute(
      "INSERT INTO Regions VALUES (0,'AFRICA'),(1,'ASIA'),(2,'AUSTRALIA'),"
      "(3,'EUROPE'),(4,'N-AMERICA'),(5,'S-AMERICA')"));

  // 4. Each tenant loads her own data in her own format (Figure 2; tenant 1
  //    salaries are EUR-like: 1 USD = 2 units here for easy math).
  mt::Session tenant0(&mw, 0);
  MUST(tenant0.Execute(
      "INSERT INTO Employees VALUES (0,'Patrick',1,3,50000,30),"
      "(1,'John',0,3,70000,28),(2,'Alice',2,3,150000,46)"));
  MUST(tenant0.Execute(
      "INSERT INTO Roles VALUES (0,'phD stud.'),(1,'postdoc'),(2,'professor')"));
  mt::Session tenant1(&mw, 1);
  MUST(tenant1.Execute(
      "INSERT INTO Employees VALUES (0,'Allan',1,2,160000,25),"
      "(1,'Nancy',2,4,400000,72),(2,'Ed',0,4,2000000,46)"));
  MUST(tenant1.Execute(
      "INSERT INTO Roles VALUES (0,'intern'),(1,'researcher'),(2,'executive')"));

  // 5. Tenant 1 lets tenant 0 read her data.
  MUST(tenant1.Execute("GRANT READ ON DATABASE TO 0"));

  // 6. Cross-tenant querying: the intro's join example. Without MTSQL the
  //    role join would pair Patrick with 'researcher' — with MTSQL each
  //    employee maps to her own tenant's role.
  MUST(tenant0.Execute("SET SCOPE = \"IN (0, 1)\""));
  auto rs = tenant0.Execute(
      "SELECT E_name, R_name, E_salary FROM Employees, Roles "
      "WHERE E_role_id = R_role_id ORDER BY E_salary DESC");
  MUST(rs);
  std::printf("Cross-tenant join, salaries in tenant 0's currency (USD):\n%s\n",
              rs.value().ToString().c_str());

  // 7. The same aggregate at different optimization levels returns the same
  //    answer; the SQL sent to the DBMS differs drastically.
  for (mt::OptLevel level : {mt::OptLevel::kCanonical, mt::OptLevel::kO4}) {
    tenant0.set_optimization_level(level);
    auto avg = tenant0.Execute("SELECT AVG(E_salary) AS avg_sal FROM Employees");
    MUST(avg);
    std::printf("%s: avg salary (USD) = %s\n  SQL: %s\n\n",
                mt::OptLevelName(level),
                avg.value().rows[0][0].ToString().c_str(),
                tenant0.last_sql().c_str());
  }

  // 8. Complex scope (paper Listing 2): tenants owning a top earner.
  MUST(tenant0.Execute(
      "SET SCOPE = \"FROM Employees WHERE E_salary > 180000\""));
  rs = tenant0.Execute("SELECT COUNT(*) AS employees FROM Employees");
  MUST(rs);
  std::printf("Employees of tenants with a > 180K USD earner: %s\n",
              rs.value().rows[0][0].ToString().c_str());
  return 0;
}
