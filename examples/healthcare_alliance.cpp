// Healthcare alliance (the paper's scenario 2, section 6.2): thousands of
// providers of very different sizes share one MT-H-shaped database; a
// research institution (a client tenant) queries the entire dataset.
//
// Demonstrates: zipf tenant shares, D = all-tenants scopes, conversion-heavy
// analytics at different optimization levels, and ExecStats evidence for the
// (T+1)-conversions property of aggregation distribution.
#include <cstdio>

#include "mt/mtbase.h"
#include "mth/runner.h"

using namespace mtbase;  // NOLINT

int main() {
  mth::MthConfig cfg;
  cfg.scale_factor = 0.005;
  cfg.num_tenants = 100;  // many small providers, a few big ones
  cfg.distribution = mth::MthConfig::Distribution::kZipf;
  auto env_r = mth::SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                                     /*with_baseline=*/false);
  if (!env_r.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 env_r.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(env_r).value();

  // The research institution connects as tenant 1 and asks for everything.
  mt::Session research = env->OpenSession(1);
  if (!research.Execute("SET SCOPE = \"IN ()\"").ok()) return 1;

  std::printf("Tenant share distribution (zipf): top providers by orders\n");
  auto shares = env->mth_db->Execute(
      "SELECT ttid, COUNT(*) AS orders FROM orders GROUP BY ttid ORDER BY "
      "orders DESC LIMIT 5");
  if (shares.ok()) std::printf("%s\n", shares.value().ToString().c_str());

  // A conversion-heavy study: revenue per month across ALL providers, each
  // storing amounts in its own currency.
  const char* study =
      "SELECT EXTRACT(YEAR FROM o_orderdate) AS year, "
      "SUM(o_totalprice) AS volume, COUNT(*) AS orders "
      "FROM orders GROUP BY EXTRACT(YEAR FROM o_orderdate) ORDER BY year";
  for (mt::OptLevel level :
       {mt::OptLevel::kCanonical, mt::OptLevel::kO3, mt::OptLevel::kO4}) {
    auto run = mth::RunMthQuery(&research, study, level);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", mt::OptLevelName(level),
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%-10s %7.1f ms   %6llu conversion calls (+%llu cached)\n",
        mt::OptLevelName(level), run.value().seconds * 1e3,
        static_cast<unsigned long long>(run.value().stats.udf_calls),
        static_cast<unsigned long long>(run.value().stats.udf_cache_hits));
    if (level == mt::OptLevel::kO3) {
      std::printf(
          "           (aggregation distribution: one conversion per provider "
          "+ one for the client, instead of two per record)\n");
    }
  }

  // The same study, scoped to the providers that treated a big account —
  // a complex scope evaluated as a query (paper Listing 2).
  if (!research
           .Execute("SET SCOPE = \"FROM customer WHERE c_acctbal > 9000\"")
           .ok()) {
    return 1;
  }
  auto scoped = research.Execute(
      "SELECT COUNT(*) AS orders, AVG(o_totalprice) AS avg_volume FROM orders");
  if (!scoped.ok()) {
    std::fprintf(stderr, "%s\n", scoped.status().ToString().c_str());
    return 1;
  }
  std::printf("\nProviders with a > 9000 USD account, their order stats:\n%s",
              scoped.value().ToString().c_str());
  return 0;
}
