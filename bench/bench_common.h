// Shared harness for the MT-H paper-table benchmarks.
//
// Each bench binary reproduces one table or figure of the paper's evaluation
// (see DESIGN.md section 4). Benchmarks are registered with google-benchmark
// (one per query x optimization level, a single timed iteration each, like
// the paper's response-time measurements) and the collected timings are
// printed as the paper-style table at the end.
//
// Environment knobs:
//   MTH_SF        scale factor (default 0.005)
//   MTH_TENANTS   tenant count for the table benches (default 10)
//   MTH_MAX_T     largest tenant count for the scaling figures (default 1000)
//   MTH_THREADS   intra-query thread budget (0 = auto, 1 = serial; the
//                 --threads=N command-line flag overrides it)
#ifndef MTBASE_BENCH_BENCH_COMMON_H_
#define MTBASE_BENCH_BENCH_COMMON_H_

#include <string>

#include "engine/stats.h"

namespace mtbase {
namespace bench {

struct TableSpec {
  const char* title;              // e.g. "Table 3"
  engine::DbmsProfile profile;    // kPostgres or kSystemC
  enum class Dataset {
    kOwn,    // C = 1, D = {1}  (conversions optimized away by o1)
    kOther,  // C = 1, D = {2}  (conversions necessary)
    kAll,    // C = 1, D = {1..T}
  } dataset;
};

/// Table 3/4/5/7/8/9 runner: all 22 queries at every optimization level plus
/// the TPC-H baseline (at sf for D = all, sf/10 for the single-tenant
/// datasets, like the paper).
int RunTableBench(int argc, char** argv, const TableSpec& spec);

/// Figure 5/6 runner: Q1/Q6/Q22 at o4 and inl-only, tenant counts scaling
/// up to MTH_MAX_T, reported relative to the TPC-H baseline.
int RunScalingBench(int argc, char** argv, const char* title,
                    engine::DbmsProfile profile);

double EnvDouble(const char* name, double def);
int64_t EnvInt(const char* name, int64_t def);

/// Resolve the intra-query thread budget for a bench binary: a --threads=N
/// argument (stripped from argv so google-benchmark never sees it) wins over
/// the MTH_THREADS environment variable; 0 means the engine default (auto).
int ParseThreadsFlag(int* argc, char** argv);

}  // namespace bench
}  // namespace mtbase

#endif  // MTBASE_BENCH_BENCH_COMMON_H_
