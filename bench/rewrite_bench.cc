// Micro-benchmarks for the middleware itself: parse + rewrite + print cost
// per optimization level (the overhead MTBase adds in front of the DBMS),
// plus a prepare-vs-oneshot comparison showing what the prepared-statement
// API amortizes away on repeated execution.
#include <benchmark/benchmark.h>

#include <fstream>
#include <map>
#include <string>

#include "bench/bench_common.h"
#include "engine/obs/metrics.h"
#include "mt/mtbase.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "mth/queries.h"
#include "mth/runner.h"
#include "mth/schema.h"

namespace {

using namespace mtbase;  // NOLINT

struct RewriteFixture {
  static RewriteFixture& Get() {
    static RewriteFixture f;
    return f;
  }

  RewriteFixture() {
    static const char* kTables[] = {
        "CREATE TABLE customer SPECIFIC (c_custkey INTEGER SPECIFIC, c_name "
        "VARCHAR(25) COMPARABLE, c_acctbal DECIMAL(15,2) CONVERTIBLE "
        "@currencyToUniversal @currencyFromUniversal, c_phone VARCHAR(17) "
        "CONVERTIBLE @phoneToUniversal @phoneFromUniversal, c_nationkey "
        "INTEGER COMPARABLE, c_mktsegment VARCHAR(10) COMPARABLE, c_address "
        "VARCHAR(40) COMPARABLE, c_comment VARCHAR(117) COMPARABLE)",
        "CREATE TABLE orders SPECIFIC (o_orderkey INTEGER SPECIFIC, o_custkey "
        "INTEGER SPECIFIC, o_totalprice DECIMAL(15,2) CONVERTIBLE "
        "@currencyToUniversal @currencyFromUniversal, o_orderdate DATE "
        "COMPARABLE, o_orderpriority VARCHAR(15) COMPARABLE, o_orderstatus "
        "VARCHAR(1) COMPARABLE, o_shippriority INTEGER COMPARABLE, o_comment "
        "VARCHAR(79) COMPARABLE, o_clerk VARCHAR(15) COMPARABLE)",
        "CREATE TABLE lineitem SPECIFIC (l_orderkey INTEGER SPECIFIC, "
        "l_partkey INTEGER COMPARABLE, l_suppkey INTEGER COMPARABLE, "
        "l_linenumber INTEGER COMPARABLE, l_quantity DECIMAL(15,2) "
        "COMPARABLE, l_extendedprice DECIMAL(15,2) CONVERTIBLE "
        "@currencyToUniversal @currencyFromUniversal, l_discount "
        "DECIMAL(15,2) COMPARABLE, l_tax DECIMAL(15,2) COMPARABLE, "
        "l_returnflag VARCHAR(1) COMPARABLE, l_linestatus VARCHAR(1) "
        "COMPARABLE, l_shipdate DATE COMPARABLE, l_commitdate DATE "
        "COMPARABLE, l_receiptdate DATE COMPARABLE, l_shipinstruct "
        "VARCHAR(25) COMPARABLE, l_shipmode VARCHAR(10) COMPARABLE, "
        "l_comment VARCHAR(44) COMPARABLE)",
        "CREATE TABLE supplier (s_suppkey INTEGER, s_name VARCHAR(25), "
        "s_address VARCHAR(40), s_nationkey INTEGER, s_phone VARCHAR(15), "
        "s_acctbal DECIMAL(15,2), s_comment VARCHAR(101))",
        "CREATE TABLE part (p_partkey INTEGER, p_name VARCHAR(55), p_mfgr "
        "VARCHAR(25), p_brand VARCHAR(10), p_type VARCHAR(25), p_size "
        "INTEGER, p_container VARCHAR(10), p_retailprice DECIMAL(15,2), "
        "p_comment VARCHAR(23))",
        "CREATE TABLE partsupp (ps_partkey INTEGER, ps_suppkey INTEGER, "
        "ps_availqty INTEGER, ps_supplycost DECIMAL(15,2), ps_comment "
        "VARCHAR(199))",
        "CREATE TABLE nation (n_nationkey INTEGER, n_name VARCHAR(25), "
        "n_regionkey INTEGER, n_comment VARCHAR(152))",
        "CREATE TABLE region (r_regionkey INTEGER, r_name VARCHAR(25), "
        "r_comment VARCHAR(152))"};
    for (const char* ddl : kTables) {
      auto stmt = sql::ParseStatement(ddl);
      if (stmt.ok()) (void)schema.RegisterTable(*stmt.value().create_table);
    }
    (void)mth::RegisterConversionPairs;  // conversions registered below
    mt::ConversionPair currency;
    currency.name = "currency";
    currency.to_universal = "currencyToUniversal";
    currency.from_universal = "currencyFromUniversal";
    currency.cls = mt::ConversionClass::kMultiplicative;
    currency.inline_spec.kind = mt::InlineSpec::Kind::kMultiplicative;
    currency.inline_spec.tenant_fk = "T_currency_key";
    currency.inline_spec.meta_table = "CurrencyTransform";
    currency.inline_spec.meta_key = "CT_currency_key";
    currency.inline_spec.to_col = "CT_to_universal";
    currency.inline_spec.from_col = "CT_from_universal";
    (void)conversions.Register(currency);
    mt::ConversionPair phone;
    phone.name = "phone";
    phone.to_universal = "phoneToUniversal";
    phone.from_universal = "phoneFromUniversal";
    phone.cls = mt::ConversionClass::kEqualityOnly;
    phone.inline_spec.kind = mt::InlineSpec::Kind::kPrefix;
    phone.inline_spec.tenant_fk = "T_phone_prefix_key";
    phone.inline_spec.meta_table = "PhoneTransform";
    phone.inline_spec.meta_key = "PT_phone_prefix_key";
    phone.inline_spec.to_col = "PT_prefix";
    phone.inline_spec.from_col = "PT_prefix";
    (void)conversions.Register(phone);
  }

  mt::MTSchema schema;
  mt::ConversionRegistry conversions;
};

void BM_RewriteQuery(benchmark::State& state) {
  auto& f = RewriteFixture::Get();
  int query = static_cast<int>(state.range(0));
  auto level = static_cast<mt::OptLevel>(state.range(1));
  auto sel = sql::ParseSelect(mth::GetMthQuery(query, 0.01).sql);
  if (!sel.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  std::vector<int64_t> dataset;
  for (int64_t t = 1; t <= 10; ++t) dataset.push_back(t);
  for (auto _ : state) {
    mt::Rewriter rewriter(&f.schema, &f.conversions, 1, dataset, {});
    auto rewritten = rewriter.RewriteQuery(*sel.value());
    if (!rewritten.ok()) {
      state.SkipWithError(rewritten.status().ToString().c_str());
      return;
    }
    mt::Optimizer opt(&f.conversions, 1);
    if (!opt.Optimize(rewritten.value().get(), level).ok()) {
      state.SkipWithError("optimize failed");
      return;
    }
    std::string text = sql::PrintSelect(*rewritten.value());
    benchmark::DoNotOptimize(text);
  }
}

void RegisterAll() {
  for (int q : {1, 3, 6, 13, 18, 21, 22}) {
    for (mt::OptLevel level :
         {mt::OptLevel::kCanonical, mt::OptLevel::kO2, mt::OptLevel::kO3,
          mt::OptLevel::kO4}) {
      std::string name = "BM_RewriteQuery/Q" + std::to_string(q) + "/" +
                         mt::OptLevelName(level);
      benchmark::RegisterBenchmark(name.c_str(), BM_RewriteQuery)
          ->Args({q, static_cast<int>(level)})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

void BM_ParseMthQuery(benchmark::State& state) {
  std::string sql = mth::GetMthQuery(static_cast<int>(state.range(0)), 0.01).sql;
  for (auto _ : state) {
    auto stmt = sql::ParseStatement(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseMthQuery)->DenseRange(1, 22)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Prepare-vs-oneshot: the amortized win of the prepared-statement API.
//
// Both benchmarks execute the same MT-H query against the same tiny loaded
// database (execution cost is deliberately small so compilation shows).
// Oneshot pays parse + rewrite + optimize + print + plan on every iteration;
// Prepared pays it once in an untimed warm-up and then only runs the cached
// plan.
// ---------------------------------------------------------------------------

struct ExecFixture {
  static ExecFixture& Get() {
    static ExecFixture f;
    return f;
  }

  ExecFixture() {
    mth::MthConfig cfg;
    cfg.scale_factor = 0.001;
    cfg.num_tenants = 3;
    cfg.distribution = mth::MthConfig::Distribution::kUniform;
    auto r = mth::SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                                   /*with_baseline=*/false);
    if (!r.ok()) return;
    env = std::move(r).value();
    session = std::make_unique<mt::Session>(env->middleware.get(), 1);
    ok = session->Execute("SET SCOPE = \"IN ()\"").ok();
  }

  std::unique_ptr<mth::MthEnvironment> env;
  std::unique_ptr<mt::Session> session;
  bool ok = false;
};

void BM_OneshotMthExecute(benchmark::State& state) {
  auto& f = ExecFixture::Get();
  if (!f.ok) {
    state.SkipWithError("fixture setup failed");
    return;
  }
  std::string sql = mth::GetMthQuery(static_cast<int>(state.range(0)), 0.001).sql;
  for (auto _ : state) {
    auto r = mth::RunMthQuery(f.session.get(), sql, mt::OptLevel::kO4);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
}

void BM_PreparedMthExecute(benchmark::State& state) {
  auto& f = ExecFixture::Get();
  if (!f.ok) {
    state.SkipWithError("fixture setup failed");
    return;
  }
  std::string sql = mth::GetMthQuery(static_cast<int>(state.range(0)), 0.001).sql;
  auto pr = mth::PrepareMthQuery(f.session.get(), sql, mt::OptLevel::kO4);
  if (!pr.ok()) {
    state.SkipWithError(pr.status().ToString().c_str());
    return;
  }
  mth::PreparedMthQuery prepared = std::move(pr).value();
  auto warm = mth::RunPrepared(&prepared);  // untimed compile
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto r = mth::RunPrepared(&prepared);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
}

BENCHMARK(BM_OneshotMthExecute)
    ->Arg(6)
    ->Arg(22)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PreparedMthExecute)
    ->Arg(6)
    ->Arg(22)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Intra-query parallelism sweep: Q1 (scan + aggregate), Q6 (scan-heavy) and
// Q3 (join-heavy) at 1/2/4 worker threads over a larger data set
// (MTH_PAR_SF, default 0.01 — lineitem ~60k rows). Each cell reports a
// "speedup_vs_1t" counter: per-iteration time of the 1-thread cell of the
// same (query, level) divided by this cell's per-iteration time (the
// 1-thread cell runs first and anchors the baseline).
//
// Cells run at two optimization levels. o4 inlines conversions away, so its
// cells measure pure operator parallelism. The canonical cells keep the
// toUniversal/fromUniversal UDF calls in the plan — the conversion-heavy
// shape the paper optimizes — and demonstrate that immutable-UDF plans now
// (a) parallelize (threads_used > 1, udf_parallel_evals > 0 on the cold
// first iteration) and (b) amortize across prepared re-executions through
// the shared dictionary cache (udf_cache_hits > 0, udf_calls == 0 on later
// iterations). See docs/benchmarks.md for reading the counters.
// ---------------------------------------------------------------------------

struct ParallelSweepFixture {
  static ParallelSweepFixture& Get() {
    static ParallelSweepFixture f;
    return f;
  }

  ParallelSweepFixture() {
    mth::MthConfig cfg;
    sf = bench::EnvDouble("MTH_PAR_SF", 0.01);
    cfg.scale_factor = sf;
    cfg.num_tenants = 3;
    cfg.distribution = mth::MthConfig::Distribution::kUniform;
    auto r = mth::SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                                   /*with_baseline=*/false);
    if (!r.ok()) return;
    env = std::move(r).value();
    session = std::make_unique<mt::Session>(env->middleware.get(), 1);
    ok = session->Execute("SET SCOPE = \"IN ()\"").ok();
  }

  std::unique_ptr<mth::MthEnvironment> env;
  std::unique_ptr<mt::Session> session;
  // Per (query, level) 1-thread per-iteration time.
  std::map<std::pair<int, int>, double> baseline_secs;
  double sf = 0.01;
  bool ok = false;
};

void BM_ParallelThreadsSweep(benchmark::State& state) {
  auto& f = ParallelSweepFixture::Get();
  if (!f.ok) {
    state.SkipWithError("fixture setup failed");
    return;
  }
  const int query = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const auto level = static_cast<mt::OptLevel>(state.range(2));
  mth::SetMthThreads(f.env.get(), threads);
  std::string sql = mth::GetMthQuery(query, f.sf).sql;
  auto pr = mth::PrepareMthQuery(f.session.get(), sql, level);
  if (!pr.ok()) {
    state.SkipWithError(pr.status().ToString().c_str());
    return;
  }
  mth::PreparedMthQuery prepared = std::move(pr).value();
  // Start from a cold dictionary cache so the first iteration's counters
  // show parallel body evaluation and later iterations show amortization.
  f.env->mth_db->shared_udf_cache()->Clear();
  // threads_used is a process-lifetime high-water gauge; re-anchor it so
  // each cell reports its own watermark.
  f.env->mth_db->stats()->threads_used = 0;
  auto warm = mth::RunPrepared(&prepared);  // untimed compile
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  double total = 0;
  int64_t iters = 0;
  engine::ExecStats first = warm.value().stats;  // cold-cache execution
  engine::ExecStats last;
  for (auto _ : state) {
    auto r = mth::RunPrepared(&prepared);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    total += r.value().seconds;
    last = r.value().stats;
    ++iters;
  }
  // Instrumentation overhead under this cell's thread budget: the same
  // warm prepared plan re-executed with per-operator profiling off vs on
  // (Database::set_profile_execution — the EXPLAIN (ANALYZE) code path).
  // The acceptance bar is < 5% on the scan-heavy cells.
  constexpr int kOverheadIters = 3;
  double plain_secs = 0;
  double profiled_secs = 0;
  for (int i = 0; i < kOverheadIters; ++i) {
    auto r = mth::RunPrepared(&prepared);
    if (r.ok()) plain_secs += r.value().seconds;
  }
  f.env->mth_db->set_profile_execution(true);
  for (int i = 0; i < kOverheadIters; ++i) {
    auto r = mth::RunPrepared(&prepared);
    if (r.ok()) profiled_secs += r.value().seconds;
  }
  f.env->mth_db->set_profile_execution(false);
  state.counters["analyze_overhead_pct"] =
      plain_secs > 0 ? (profiled_secs / plain_secs - 1.0) * 100.0 : 0;
  mth::SetMthThreads(f.env.get(), 1);
  const double per_iter = iters > 0 ? total / iters : 0;
  const auto key = std::make_pair(query, static_cast<int>(level));
  if (threads == 1) f.baseline_secs[key] = per_iter;
  auto it = f.baseline_secs.find(key);
  state.counters["speedup_vs_1t"] =
      it != f.baseline_secs.end() && per_iter > 0 ? it->second / per_iter : 0;
  state.counters["threads_used"] =
      static_cast<double>(last.threads_used);
  // Conversion-cache behavior (all zero at o4, which inlines the UDFs):
  // cold-run parallel body evaluations, then warm-run cache service.
  state.counters["udf_parallel_evals_cold"] =
      static_cast<double>(first.udf_parallel_evals);
  state.counters["udf_cache_hits"] = static_cast<double>(last.udf_cache_hits);
  state.counters["udf_calls"] = static_cast<double>(last.udf_calls);
  // Sort-tail behavior (Q1 sorts 4 groups, Q3 fuses ORDER BY ... LIMIT 10
  // into a top-N): visible here, dominant in BM_ParallelSortSweep below.
  state.counters["parallel_sorts"] = static_cast<double>(last.parallel_sorts);
  state.counters["topn_pushdowns"] = static_cast<double>(last.topn_pushdowns);
}

// ---------------------------------------------------------------------------
// Sort-heavy sweep: a raw multi-key ORDER BY over the full lineitem table
// (~60k rows at MTH_PAR_SF 0.01) — the shape where the sort, not the scan,
// dominates — at 1/2/4 worker threads, full-sort vs top-N. The 1-thread
// SortFull cell doubles as the serial-sort regression benchmark: it runs
// the exact single-threaded std::stable_sort path with the hoisted
// sort-key comparator, so a comparator regression shows up as a slower
// 1-thread cell, not just a smaller speedup. The TopN cells report how
// many rows the bounded heaps discarded (topn_rows_pruned ~ input - 100).
// ---------------------------------------------------------------------------

void BM_ParallelSortSweep(benchmark::State& state) {
  auto& f = ParallelSweepFixture::Get();
  if (!f.ok) {
    state.SkipWithError("fixture setup failed");
    return;
  }
  const bool topn = state.range(0) != 0;
  const int threads = static_cast<int>(state.range(1));
  mth::SetMthThreads(f.env.get(), threads);
  std::string sql =
      "SELECT l_orderkey, l_suppkey, l_quantity, l_shipdate FROM lineitem "
      "ORDER BY l_quantity DESC, l_shipdate, l_orderkey";
  if (topn) sql += " LIMIT 100";
  auto pr = mth::PrepareMthQuery(f.session.get(), sql, mt::OptLevel::kO4);
  if (!pr.ok()) {
    state.SkipWithError(pr.status().ToString().c_str());
    return;
  }
  mth::PreparedMthQuery prepared = std::move(pr).value();
  f.env->mth_db->stats()->threads_used = 0;  // re-anchor the gauge
  auto warm = mth::RunPrepared(&prepared);   // untimed compile
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  double total = 0;
  int64_t iters = 0;
  engine::ExecStats last;
  for (auto _ : state) {
    auto r = mth::RunPrepared(&prepared);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    total += r.value().seconds;
    last = r.value().stats;
    ++iters;
  }
  mth::SetMthThreads(f.env.get(), 1);
  const double per_iter = iters > 0 ? total / iters : 0;
  const auto key = std::make_pair(topn ? 1001 : 1000, 0);
  if (threads == 1) f.baseline_secs[key] = per_iter;
  auto it = f.baseline_secs.find(key);
  state.counters["speedup_vs_1t"] =
      it != f.baseline_secs.end() && per_iter > 0 ? it->second / per_iter : 0;
  state.counters["threads_used"] = static_cast<double>(last.threads_used);
  state.counters["parallel_sorts"] = static_cast<double>(last.parallel_sorts);
  state.counters["topn_pushdowns"] = static_cast<double>(last.topn_pushdowns);
  state.counters["topn_rows_pruned"] =
      static_cast<double>(last.topn_rows_pruned);
}

void RegisterSortSweep() {
  for (int topn : {0, 1}) {
    for (int t : {1, 2, 4}) {  // the 1-thread cell anchors the baseline
      std::string name = std::string("BM_ParallelSortSweep/") +
                         (topn != 0 ? "TopN100" : "SortFull") +
                         "/threads:" + std::to_string(t);
      benchmark::RegisterBenchmark(name.c_str(), BM_ParallelSortSweep)
          ->Args({topn, t})
          ->Iterations(5)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

// ---------------------------------------------------------------------------
// Tenant-aware physical design sweep: the same MT-H data loaded flat and
// hash-partitioned on ttid (MTH_PART partitions, default 8), queried at
// own-tenant scope (default SCOPE: D = {client}) so the rewriter's D-filter
// prunes every tenant-table scan down to one partition. Each partitioned
// cell reports a "speedup_vs_flat" counter — per-iteration time of the flat
// cell of the same query divided by this cell's (the flat cell runs first
// and anchors the baseline) — plus the pruning counters themselves, so the
// row-visit reduction behind the speedup is visible
// (partitions_pruned / rows_scanned; see docs/benchmarks.md).
// ---------------------------------------------------------------------------

struct PhysicalDesignFixture {
  static PhysicalDesignFixture& Get() {
    static PhysicalDesignFixture f;
    return f;
  }

  PhysicalDesignFixture() {
    mth::MthConfig cfg;
    sf = bench::EnvDouble("MTH_PAR_SF", 0.01);
    cfg.scale_factor = sf;
    cfg.num_tenants = 3;
    cfg.distribution = mth::MthConfig::Distribution::kUniform;
    auto flat_env = mth::SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                                          /*with_baseline=*/false);
    cfg.partitions = static_cast<int64_t>(bench::EnvDouble("MTH_PART", 8));
    auto part_env = mth::SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                                          /*with_baseline=*/false);
    if (!flat_env.ok() || !part_env.ok()) return;
    flat = std::move(flat_env).value();
    part = std::move(part_env).value();
    // Default scope (no SET SCOPE): D = {1}, the single-tenant fast path.
    flat_session = std::make_unique<mt::Session>(flat->middleware.get(), 1);
    part_session = std::make_unique<mt::Session>(part->middleware.get(), 1);
    ok = true;
  }

  std::unique_ptr<mth::MthEnvironment> flat;
  std::unique_ptr<mth::MthEnvironment> part;
  std::unique_ptr<mt::Session> flat_session;
  std::unique_ptr<mt::Session> part_session;
  std::map<int, double> flat_secs;  // per-query flat baseline
  double sf = 0.01;
  bool ok = false;
};

void BM_PartitionPruningSweep(benchmark::State& state) {
  auto& f = PhysicalDesignFixture::Get();
  if (!f.ok) {
    state.SkipWithError("fixture setup failed");
    return;
  }
  const int query = static_cast<int>(state.range(0));
  const bool partitioned = state.range(1) != 0;
  mt::Session* session =
      partitioned ? f.part_session.get() : f.flat_session.get();
  std::string sql = mth::GetMthQuery(query, f.sf).sql;
  auto pr = mth::PrepareMthQuery(session, sql, mt::OptLevel::kO4);
  if (!pr.ok()) {
    state.SkipWithError(pr.status().ToString().c_str());
    return;
  }
  mth::PreparedMthQuery prepared = std::move(pr).value();
  auto warm = mth::RunPrepared(&prepared);  // untimed compile
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  double total = 0;
  int64_t iters = 0;
  engine::ExecStats last;
  for (auto _ : state) {
    auto r = mth::RunPrepared(&prepared);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    total += r.value().seconds;
    last = r.value().stats;
    ++iters;
  }
  const double per_iter = iters > 0 ? total / iters : 0;
  if (!partitioned) f.flat_secs[query] = per_iter;
  auto it = f.flat_secs.find(query);
  state.counters["speedup_vs_flat"] =
      it != f.flat_secs.end() && per_iter > 0 ? it->second / per_iter : 0;
  state.counters["partitions_pruned"] =
      static_cast<double>(last.partitions_pruned);
  state.counters["index_scans"] = static_cast<double>(last.index_scans);
  state.counters["rows_scanned"] = static_cast<double>(last.rows_scanned);
}

void RegisterPartitionSweep() {
  for (int q : {1, 6, 13}) {  // scan-heavy, aggregate, LEFT JOIN shapes
    for (int part : {0, 1}) {  // the flat cell anchors the baseline
      std::string name = "BM_PartitionPruningSweep/Q" + std::to_string(q) +
                         "/" + (part != 0 ? "Partitioned" : "Flat");
      benchmark::RegisterBenchmark(name.c_str(), BM_PartitionPruningSweep)
          ->Args({q, part})
          ->Iterations(5)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void RegisterParallelSweep() {
  for (auto level : {mt::OptLevel::kO4, mt::OptLevel::kCanonical}) {
    // Q3 stays o4-only: its canonical shape is join-dominated, not
    // conversion-dominated.
    for (int q : level == mt::OptLevel::kO4 ? std::vector<int>{1, 6, 3}
                                            : std::vector<int>{1, 6}) {
      for (int t : {1, 2, 4}) {  // the 1-thread cell anchors the baseline
        std::string name = "BM_ParallelThreadsSweep/Q" + std::to_string(q) +
                           "/" + mt::OptLevelName(level) +
                           "/threads:" + std::to_string(t);
        benchmark::RegisterBenchmark(name.c_str(), BM_ParallelThreadsSweep)
            ->Args({q, t, static_cast<int>(level)})
            ->Iterations(5)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --metrics_json=<path> is ours, not the benchmark library's: peel it off
  // before Initialize rejects it. After the run the process-wide metrics
  // registry (counters + latency histograms fed by every statement executed
  // above) is dumped to the path as JSON.
  std::string metrics_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--metrics_json=";
    if (arg.rfind(prefix, 0) == 0) {
      metrics_path = arg.substr(prefix.size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  RegisterAll();
  RegisterParallelSweep();
  RegisterSortSweep();
  RegisterPartitionSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << mtbase::obs::MetricsRegistry::Global()->RenderJson() << "\n";
  }
  benchmark::Shutdown();
  return 0;
}
