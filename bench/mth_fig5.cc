// Reproduces the paper's Figure 5: tenant scaling of Q1/Q6/Q22 at o4 and
// inl-only relative to TPC-H, PostgreSQL profile.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return mtbase::bench::RunScalingBench(
      argc, argv, "Figure 5", mtbase::engine::DbmsProfile::kPostgres);
}
