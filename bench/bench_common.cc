#include "bench/bench_common.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "mth/runner.h"

namespace mtbase {
namespace bench {

namespace {

using mth::MthConfig;
using mth::MthEnvironment;

// Three timed runs per cell (the paper repeats runs until times converge,
// section 6.2); google-benchmark reports the mean.
constexpr int kTableIterations = 3;

constexpr mt::OptLevel kLevels[] = {
    mt::OptLevel::kCanonical, mt::OptLevel::kO1,        mt::OptLevel::kO2,
    mt::OptLevel::kO3,        mt::OptLevel::kO4,        mt::OptLevel::kInlineOnly,
};

/// Collects per-benchmark wall times keyed by benchmark name.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(std::map<std::string, double>* out) : out_(out) {}
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // real_accumulated_time is in seconds, independent of the display unit.
      double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1;
      (*out_)[run.benchmark_name()] = run.real_accumulated_time / iters;
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  std::map<std::string, double>* out_;
};

std::string Fmt(double seconds) {
  char buf[32];
  if (seconds <= 0) {
    std::snprintf(buf, sizeof(buf), "-");
  } else if (seconds < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  } else if (seconds < 10) {
    std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", seconds);
  }
  return buf;
}

}  // namespace

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : def;
}

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : def;
}

int ParseThreadsFlag(int* argc, char** argv) {
  int threads = static_cast<int>(EnvInt("MTH_THREADS", 0));
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      --i;
    }
  }
  return threads;
}

int RunTableBench(int argc, char** argv, const TableSpec& spec) {
  double sf = EnvDouble("MTH_SF", 0.005);
  int64_t tenants = EnvInt("MTH_TENANTS", 10);
  int threads = ParseThreadsFlag(&argc, argv);

  MthConfig cfg;
  cfg.scale_factor = sf;
  cfg.num_tenants = tenants;
  cfg.distribution = MthConfig::Distribution::kUniform;
  auto env_r = mth::SetupEnvironment(cfg, spec.profile, /*with_baseline=*/false);
  if (!env_r.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 env_r.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<MthEnvironment> env = std::move(env_r).value();

  // Baseline database: the paper compares single-tenant datasets against
  // TPC-H at sf/10 and D = all against TPC-H at sf (section 6.2).
  MthConfig base_cfg = cfg;
  if (spec.dataset != TableSpec::Dataset::kAll) base_cfg.scale_factor = sf / 10;
  auto base_data = mth::GenerateData(base_cfg);
  if (!base_data.ok()) return 1;
  engine::Database baseline(spec.profile);
  if (!mth::LoadTpch(&baseline, base_data.value()).ok()) return 1;
  if (threads != 0) {
    mth::SetMthThreads(env.get(), threads);
    engine::PlannerOptions base_opts = baseline.planner_options();
    base_opts.max_threads = threads;
    baseline.set_planner_options(base_opts);
  }

  mt::Session session = env->OpenSession(1);
  std::string scope;
  switch (spec.dataset) {
    case TableSpec::Dataset::kOwn:
      scope = "IN (1)";
      break;
    case TableSpec::Dataset::kOther:
      scope = "IN (2)";
      break;
    case TableSpec::Dataset::kAll:
      scope = "IN ()";
      break;
  }
  if (!session.Execute("SET SCOPE = \"" + scope + "\"").ok()) return 1;

  auto queries = mth::MthQueries(sf);
  // Untimed warmup so allocator/first-touch effects do not pollute the first
  // timed cells.
  (void)mth::RunTpchQuery(&baseline, queries[5].sql);
  (void)mth::RunMthQuery(&session, queries[5].sql, mt::OptLevel::kO1);
  // Prepare-once/execute-many: each cell holds one prepared handle; an
  // untimed warm-up run inside the benchmark body compiles (rewrite + plan)
  // so the timed iterations measure the amortized prepared-execution cost a
  // front-end serving repeated statements actually pays.
  std::vector<std::unique_ptr<mth::PreparedMthQuery>> prepared;
  for (const auto& q : queries) {
    benchmark::RegisterBenchmark(
        ("tpch/" + q.name).c_str(),
        [&baseline, sql = q.sql](benchmark::State& state) {
          for (auto _ : state) {
            auto r = mth::RunTpchQuery(&baseline, sql);
            if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
          }
        })
        ->Iterations(kTableIterations)
        ->Unit(benchmark::kMillisecond);
    for (mt::OptLevel level : kLevels) {
      auto pr = mth::PrepareMthQuery(&session, q.sql, level);
      if (!pr.ok()) {
        std::fprintf(stderr, "prepare %s failed: %s\n", q.name.c_str(),
                     pr.status().ToString().c_str());
        return 1;
      }
      prepared.push_back(
          std::make_unique<mth::PreparedMthQuery>(std::move(pr).value()));
      mth::PreparedMthQuery* pq = prepared.back().get();
      benchmark::RegisterBenchmark(
          (std::string(mt::OptLevelName(level)) + "/" + q.name).c_str(),
          [pq](benchmark::State& state) {
            auto warm = mth::RunPrepared(pq);  // untimed compile
            if (!warm.ok()) {
              state.SkipWithError(warm.status().ToString().c_str());
              return;
            }
            for (auto _ : state) {
              auto r = mth::RunPrepared(pq);
              if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
            }
          })
          ->Iterations(kTableIterations)
          ->Unit(benchmark::kMillisecond);
    }
  }

  benchmark::Initialize(&argc, argv);
  std::map<std::string, double> timings;
  CapturingReporter reporter(&timings);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Paper-style table: one row per level, one column per query.
  std::printf("\n%s — response times [sec], sf=%g, T=%ld, C=1, D=%s, %s, "
              "threads=%s\n",
              spec.title, sf, static_cast<long>(tenants), scope.c_str(),
              spec.profile == engine::DbmsProfile::kPostgres
                  ? "PostgreSQL profile"
                  : "System C profile",
              threads == 0 ? "auto" : std::to_string(threads).c_str());
  std::printf("%-10s", "Level");
  for (const auto& q : queries) std::printf(" %8s", q.name.c_str());
  std::printf("\n");
  auto print_row = [&](const std::string& label, const std::string& prefix) {
    std::printf("%-10s", label.c_str());
    for (const auto& q : queries) {
      auto it = timings.find(prefix + "/" + q.name + "/iterations:" + std::to_string(kTableIterations));
      if (it == timings.end()) it = timings.find(prefix + "/" + q.name);
      std::printf(" %8s", it == timings.end() ? "-" : Fmt(it->second).c_str());
    }
    std::printf("\n");
  };
  print_row(spec.dataset == TableSpec::Dataset::kAll ? "tpch" : "tpch/10",
            "tpch");
  for (mt::OptLevel level : kLevels) {
    print_row(mt::OptLevelName(level), mt::OptLevelName(level));
  }
  benchmark::Shutdown();
  return 0;
}

int RunScalingBench(int argc, char** argv, const char* title,
                    engine::DbmsProfile profile) {
  double sf = EnvDouble("MTH_SF", 0.005);
  int64_t max_t = EnvInt("MTH_MAX_T", 1000);
  int threads = ParseThreadsFlag(&argc, argv);
  const int query_numbers[] = {1, 6, 22};
  std::vector<int64_t> tenant_counts;
  for (int64_t t = 1; t <= max_t; t *= 10) tenant_counts.push_back(t);

  // Baseline: plain TPC-H at the same scale factor.
  MthConfig base_cfg;
  base_cfg.scale_factor = sf;
  base_cfg.num_tenants = 1;
  auto base_data = mth::GenerateData(base_cfg);
  if (!base_data.ok()) return 1;
  engine::Database baseline(profile);
  if (!mth::LoadTpch(&baseline, base_data.value()).ok()) return 1;
  std::map<int, double> base_time;
  for (int qn : query_numbers) {
    auto run = mth::RunTpchQuery(&baseline, mth::GetMthQuery(qn, sf).sql);
    if (!run.ok()) return 1;
    base_time[qn] = run.value().seconds;
  }

  // One environment per tenant count (zipf shares, like scenario 2).
  std::map<int64_t, std::unique_ptr<MthEnvironment>> envs;
  std::map<int64_t, std::unique_ptr<mt::Session>> sessions;
  for (int64_t t : tenant_counts) {
    MthConfig cfg;
    cfg.scale_factor = sf;
    cfg.num_tenants = t;
    cfg.distribution = MthConfig::Distribution::kZipf;
    auto env_r = mth::SetupEnvironment(cfg, profile, false);
    if (!env_r.ok()) {
      std::fprintf(stderr, "setup T=%ld failed: %s\n", static_cast<long>(t),
                   env_r.status().ToString().c_str());
      return 1;
    }
    envs[t] = std::move(env_r).value();
    if (threads != 0) mth::SetMthThreads(envs[t].get(), threads);
    sessions[t] =
        std::make_unique<mt::Session>(envs[t]->middleware.get(), 1);
    if (!sessions[t]->Execute("SET SCOPE = \"IN ()\"").ok()) return 1;
  }

  std::vector<std::unique_ptr<mth::PreparedMthQuery>> prepared;
  for (int qn : query_numbers) {
    for (mt::OptLevel level : {mt::OptLevel::kO4, mt::OptLevel::kInlineOnly}) {
      for (int64_t t : tenant_counts) {
        char name[64];
        std::snprintf(name, sizeof(name), "%s/Q%02d/T=%ld",
                      mt::OptLevelName(level), qn, static_cast<long>(t));
        auto pr = mth::PrepareMthQuery(sessions[t].get(),
                                       mth::GetMthQuery(qn, sf).sql, level);
        if (!pr.ok()) {
          std::fprintf(stderr, "prepare Q%02d failed: %s\n", qn,
                       pr.status().ToString().c_str());
          return 1;
        }
        prepared.push_back(
            std::make_unique<mth::PreparedMthQuery>(std::move(pr).value()));
        mth::PreparedMthQuery* pq = prepared.back().get();
        benchmark::RegisterBenchmark(
            name,
            [pq](benchmark::State& state) {
              auto warm = mth::RunPrepared(pq);  // untimed compile
              if (!warm.ok()) {
                state.SkipWithError(warm.status().ToString().c_str());
                return;
              }
              for (auto _ : state) {
                auto r = mth::RunPrepared(pq);
                if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
              }
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }

  benchmark::Initialize(&argc, argv);
  std::map<std::string, double> timings;
  CapturingReporter reporter(&timings);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  std::printf("\n%s — response time relative to TPC-H, sf=%g, zipf shares, "
              "C=1, D=all, %s\n",
              title, sf,
              profile == engine::DbmsProfile::kPostgres ? "PostgreSQL profile"
                                                        : "System C profile");
  for (int qn : query_numbers) {
    std::printf("Q%02d (TPC-H baseline %.3fs)\n", qn, base_time[qn]);
    std::printf("  %-10s", "T");
    for (int64_t t : tenant_counts) std::printf(" %9ld", static_cast<long>(t));
    std::printf("\n");
    for (mt::OptLevel level : {mt::OptLevel::kO4, mt::OptLevel::kInlineOnly}) {
      std::printf("  %-10s", mt::OptLevelName(level));
      for (int64_t t : tenant_counts) {
        char name[80];
        std::snprintf(name, sizeof(name), "%s/Q%02d/T=%ld/iterations:1",
                      mt::OptLevelName(level), qn, static_cast<long>(t));
        auto it = timings.find(name);
        if (it == timings.end()) {
          std::snprintf(name, sizeof(name), "%s/Q%02d/T=%ld",
                        mt::OptLevelName(level), qn, static_cast<long>(t));
          it = timings.find(name);
        }
        if (it == timings.end() || base_time[qn] <= 0) {
          std::printf(" %9s", "-");
        } else {
          std::printf(" %8.2fx", it->second / base_time[qn]);
        }
      }
      std::printf("\n");
    }
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace mtbase
