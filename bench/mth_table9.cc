// Reproduces the paper's Table 9 (see DESIGN.md section 4).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  mtbase::bench::TableSpec spec;
  spec.title = "Table 9";
  spec.profile = mtbase::engine::DbmsProfile::kSystemC;
  spec.dataset = mtbase::bench::TableSpec::Dataset::kAll;
  return mtbase::bench::RunTableBench(argc, argv, spec);
}
