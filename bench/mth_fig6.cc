// Reproduces the paper's Figure 6: tenant scaling on the System C profile
// (no UDF result caching).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return mtbase::bench::RunScalingBench(
      argc, argv, "Figure 6", mtbase::engine::DbmsProfile::kSystemC);
}
