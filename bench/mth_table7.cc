// Reproduces the paper's Table 7 (see DESIGN.md section 4).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  mtbase::bench::TableSpec spec;
  spec.title = "Table 7";
  spec.profile = mtbase::engine::DbmsProfile::kSystemC;
  spec.dataset = mtbase::bench::TableSpec::Dataset::kOwn;
  return mtbase::bench::RunTableBench(argc, argv, spec);
}
