// Ablation: how the conversion-function class limits aggregation
// distribution (paper Table 2 / section 4.2.2).
//
// The same SUM/AVG workload runs with a multiplicative pair (distributes:
// per-tenant partials, T+1 conversions), a linear pair (distributes via the
// Appendix-B weighted construction) and an equality-only pair (does not
// distribute: o3 degenerates to o2, conversions stay per-row).
#include <benchmark/benchmark.h>

#include <cstdio>

#include <map>

#include "common/rng.h"
#include "mt/mtbase.h"
#include "mth/runner.h"

namespace {

using namespace mtbase;  // NOLINT

struct AblationEnv {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<mt::Middleware> mw;
  std::unique_ptr<mt::Session> session;
};

/// Build a measurements table whose value column uses the given conversion
/// class. All three pairs share the same meta tables so values line up.
std::unique_ptr<AblationEnv> Setup(mt::ConversionClass cls, int64_t tenants,
                                   int64_t rows_per_tenant) {
  auto env = std::make_unique<AblationEnv>();
  env->db = std::make_unique<engine::Database>(engine::DbmsProfile::kSystemC);
  env->mw = std::make_unique<mt::Middleware>(env->db.get());
  auto must = [](const Status& st) {
    if (!st.ok()) {
      std::fprintf(stderr, "ablation setup: %s\n", st.ToString().c_str());
      std::abort();
    }
  };
  must(env->db
           ->ExecuteScript(R"(
    CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_unit_key INTEGER NOT NULL);
    CREATE TABLE UnitTransform (UT_unit_key INTEGER NOT NULL,
      UT_scale DECIMAL(15,6) NOT NULL, UT_inv_scale DECIMAL(15,6) NOT NULL,
      UT_offset DECIMAL(15,6) NOT NULL);
    CREATE FUNCTION mulToU (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
      AS 'SELECT UT_scale*$1 FROM Tenant, UnitTransform WHERE T_tenant_key = $2 AND T_unit_key = UT_unit_key' LANGUAGE SQL IMMUTABLE;
    CREATE FUNCTION mulFromU (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
      AS 'SELECT UT_inv_scale*$1 FROM Tenant, UnitTransform WHERE T_tenant_key = $2 AND T_unit_key = UT_unit_key' LANGUAGE SQL IMMUTABLE;
    CREATE FUNCTION linToU (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
      AS 'SELECT UT_scale*$1 + UT_offset FROM Tenant, UnitTransform WHERE T_tenant_key = $2 AND T_unit_key = UT_unit_key' LANGUAGE SQL IMMUTABLE;
    CREATE FUNCTION linFromU (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
      AS 'SELECT UT_inv_scale*($1 - UT_offset) FROM Tenant, UnitTransform WHERE T_tenant_key = $2 AND T_unit_key = UT_unit_key' LANGUAGE SQL IMMUTABLE;
    CREATE FUNCTION eqToU (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
      AS 'SELECT UT_scale*$1 FROM Tenant, UnitTransform WHERE T_tenant_key = $2 AND T_unit_key = UT_unit_key' LANGUAGE SQL IMMUTABLE;
    CREATE FUNCTION eqFromU (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
      AS 'SELECT UT_inv_scale*$1 FROM Tenant, UnitTransform WHERE T_tenant_key = $2 AND T_unit_key = UT_unit_key' LANGUAGE SQL IMMUTABLE;
  )")
           .status());
  const char* to_fn = cls == mt::ConversionClass::kMultiplicative ? "mulToU"
                      : cls == mt::ConversionClass::kLinear       ? "linToU"
                                                                  : "eqToU";
  const char* from_fn = cls == mt::ConversionClass::kMultiplicative
                            ? "mulFromU"
                        : cls == mt::ConversionClass::kLinear ? "linFromU"
                                                              : "eqFromU";
  mt::ConversionPair pair;
  pair.name = "unit";
  pair.to_universal = to_fn;
  pair.from_universal = from_fn;
  pair.cls = cls;
  must(env->mw->conversions()->Register(pair));

  mt::Session modeller(env->mw.get(), 1);
  std::string ddl =
      "CREATE TABLE measurements SPECIFIC (m_id INTEGER NOT NULL SPECIFIC, "
      "m_value DECIMAL(15,2) NOT NULL CONVERTIBLE @" +
      std::string(to_fn) + " @" + from_fn +
      ", m_bucket INTEGER NOT NULL COMPARABLE)";
  must(modeller.Execute(ddl).status());

  engine::Table* tenant_meta = env->db->catalog()->FindTable("Tenant");
  engine::Table* units = env->db->catalog()->FindTable("UnitTransform");
  engine::Table* data = env->db->catalog()->FindTable("measurements");
  Rng rng(7);
  for (int64_t u = 0; u < 4; ++u) {
    // scale in {1,2,4,8}, inv exact, offset u*10.
    int64_t scale = 1 << u;
    (void)units->Insert({Value::Int(u), Value::Dec(Decimal(scale, 0)),
                         Value::Dec(Decimal(1000000 / scale, 6)),
                         Value::Dec(Decimal(u * 10, 0))});
  }
  for (int64_t t = 1; t <= tenants; ++t) {
    env->mw->RegisterTenant(t);
    env->mw->privileges()->Grant(t, "", mt::Privilege::kRead,
                                 mt::kPublicGrantee);
    (void)tenant_meta->Insert({Value::Int(t), Value::Int((t - 1) % 4)});
    for (int64_t i = 0; i < rows_per_tenant; ++i) {
      (void)data->Insert({Value::Int(t), Value::Int(i),
                          Value::Dec(Decimal(rng.Uniform(100, 99999), 2)),
                          Value::Int(rng.Uniform(0, 9))});
    }
  }
  env->session = std::make_unique<mt::Session>(env->mw.get(), 1);
  (void)env->session->Execute("SET SCOPE = \"IN ()\"");
  return env;
}

constexpr const char* kWorkload =
    "SELECT m_bucket, SUM(m_value) AS total, AVG(m_value) AS mean, COUNT(*) "
    "AS cnt FROM measurements GROUP BY m_bucket ORDER BY m_bucket";

void BM_AggregationDistribution(benchmark::State& state) {
  auto cls = static_cast<mt::ConversionClass>(state.range(0));
  auto level = static_cast<mt::OptLevel>(state.range(1));
  static std::map<int, std::unique_ptr<AblationEnv>> cache;
  auto& env = cache[static_cast<int>(cls)];
  if (!env) env = Setup(cls, /*tenants=*/8, /*rows_per_tenant=*/2000);
  uint64_t conversions = 0;
  for (auto _ : state) {
    auto run = mth::RunMthQuery(env->session.get(), kWorkload, level);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    conversions = run.value().stats.udf_calls;
  }
  state.counters["udf_calls"] =
      benchmark::Counter(static_cast<double>(conversions));
}

void RegisterAblation() {
  for (auto cls :
       {mt::ConversionClass::kMultiplicative, mt::ConversionClass::kLinear,
        mt::ConversionClass::kEqualityOnly}) {
    for (auto level : {mt::OptLevel::kCanonical, mt::OptLevel::kO3,
                       mt::OptLevel::kO4}) {
      const char* cls_name =
          cls == mt::ConversionClass::kMultiplicative ? "multiplicative"
          : cls == mt::ConversionClass::kLinear       ? "linear"
                                                      : "equality-only";
      std::string name = std::string("BM_AggregationDistribution/") +
                         cls_name + "/" + mt::OptLevelName(level);
      benchmark::RegisterBenchmark(name.c_str(), BM_AggregationDistribution)
          ->Args({static_cast<int>(cls), static_cast<int>(level)})
          ->Iterations(3)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
