// Reproduces the paper's Table 3 (see DESIGN.md section 4).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  mtbase::bench::TableSpec spec;
  spec.title = "Table 3";
  spec.profile = mtbase::engine::DbmsProfile::kPostgres;
  spec.dataset = mtbase::bench::TableSpec::Dataset::kOwn;
  return mtbase::bench::RunTableBench(argc, argv, spec);
}
