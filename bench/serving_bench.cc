// Multi-session serving benchmark: the concurrency story end to end.
//
// Spawns hundreds of middleware sessions whose client tenants follow a
// Zipfian skew (a few hot tenants, a long cold tail — the multi-tenant
// workload shape of the paper's SaaS setting) and drives them from a worker
// pool: analytic sessions run cross-tenant scans at SCOPE "IN ()", tenant
// sessions mix single-tenant DML with own-scope lookups. Every statement
// goes through the full stack — MTSQL rewrite (or a cross-session plan-cache
// hit), admission control, snapshot-pinned execution — so the numbers are
// what a front-end actually pays per request.
//
// Reports throughput plus p50/p95/p99 statement latency from the process
// metrics registry; --metrics_json=<path> dumps the whole registry (the CI
// smoke run schema-checks it with tools/check_metrics_json.py).
//
//   serving_bench --sessions 200 --threads 8 --seconds 2 --tenants 12
//       --sf 0.002 --max_concurrent 8 --zipf 1.0 --write_pct 25
//       --metrics_json serving_metrics.json
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/obs/metrics.h"
#include "mt/session.h"
#include "mth/runner.h"

namespace {

using namespace mtbase;  // NOLINT

struct Options {
  int64_t tenants = 12;
  int sessions = 200;
  int threads = 8;
  double seconds = 2.0;
  double sf = 0.002;
  int max_concurrent = 8;
  double zipf = 1.0;
  int write_pct = 25;  // DML share of a tenant session's statements
  uint64_t seed = 42;
  std::string metrics_json;
};

bool ParseArgs(int argc, char** argv, Options* o) {
  auto next_value = [&](int* i, std::string* out) {
    const char* eq = std::strchr(argv[*i], '=');
    if (eq != nullptr) {
      *out = eq + 1;
      return true;
    }
    if (*i + 1 >= argc) return false;
    *out = argv[++*i];
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    std::string name = argv[i];
    name = name.substr(0, name.find('='));
    std::string v;
    if (name == "--tenants" && next_value(&i, &v)) {
      o->tenants = std::strtoll(v.c_str(), nullptr, 10);
    } else if (name == "--sessions" && next_value(&i, &v)) {
      o->sessions = std::atoi(v.c_str());
    } else if (name == "--threads" && next_value(&i, &v)) {
      o->threads = std::atoi(v.c_str());
    } else if (name == "--seconds" && next_value(&i, &v)) {
      o->seconds = std::atof(v.c_str());
    } else if (name == "--sf" && next_value(&i, &v)) {
      o->sf = std::atof(v.c_str());
    } else if (name == "--max_concurrent" && next_value(&i, &v)) {
      o->max_concurrent = std::atoi(v.c_str());
    } else if (name == "--zipf" && next_value(&i, &v)) {
      o->zipf = std::atof(v.c_str());
    } else if (name == "--write_pct" && next_value(&i, &v)) {
      o->write_pct = std::atoi(v.c_str());
    } else if (name == "--seed" && next_value(&i, &v)) {
      o->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (name == "--metrics_json" && next_value(&i, &v)) {
      o->metrics_json = v;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", argv[i]);
      return false;
    }
  }
  return o->tenants > 0 && o->sessions > 0 && o->threads > 0 &&
         o->seconds > 0 && o->write_pct >= 0 && o->write_pct <= 100;
}

/// One open connection plus its fixed statement role. Sessions are sharded
/// across workers by index, so no session is ever driven from two threads.
struct Connection {
  std::unique_ptr<mt::Session> session;
  bool analytic = false;  // SCOPE "IN ()" reader vs own-scope DML mixer
  int64_t custkey = 1;    // the tenant session's DML target row
};

struct WorkerTotals {
  uint64_t statements = 0;
  uint64_t writes = 0;
  uint64_t errors = 0;
  std::string first_error;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) return 2;

  mth::MthConfig cfg;
  cfg.scale_factor = opt.sf;
  cfg.num_tenants = opt.tenants;
  cfg.distribution = mth::MthConfig::Distribution::kZipf;
  cfg.seed = opt.seed;
  auto env_or = mth::SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                                      /*with_baseline=*/false);
  if (!env_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 env_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<mth::MthEnvironment> env = std::move(env_or).value();
  env->mth_db->set_max_concurrent_statements(opt.max_concurrent);

  // Session population: Zipf-skewed client tenants; 1 in 3 sessions is a
  // cross-tenant analytic reader (the MT-H loader grants public READ, so
  // "IN ()" resolves to every registered tenant).
  ZipfGenerator tenant_pick(opt.tenants, opt.zipf, opt.seed * 31 + 7);
  Rng setup_rng(opt.seed * 17 + 3);
  std::vector<Connection> conns(static_cast<size_t>(opt.sessions));
  const int64_t customers = cfg.CustomerCount();
  for (size_t i = 0; i < conns.size(); ++i) {
    const int64_t client = tenant_pick.Next();
    conns[i].session = std::make_unique<mt::Session>(env->middleware.get(),
                                                     client);
    conns[i].analytic = (i % 3 == 0);
    conns[i].custkey = setup_rng.Uniform(1, customers > 1 ? customers : 1);
    if (conns[i].analytic) {
      auto st = conns[i].session->Execute("SET SCOPE = \"IN ()\"");
      if (!st.ok()) {
        std::fprintf(stderr, "SET SCOPE failed: %s\n",
                     st.status().ToString().c_str());
        return 1;
      }
    }
  }

  // Cross-tenant analytic statements (identical text across sessions, so the
  // shared plan cache collapses compilation to once per client tenant) and
  // the single-tenant mix.
  const std::vector<std::string> analytic_sql = {
      "SELECT COUNT(*), SUM(o_totalprice) FROM orders",
      "SELECT l_returnflag, COUNT(*), SUM(l_extendedprice) FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag",
      "SELECT c_mktsegment, COUNT(*) FROM customer "
      "GROUP BY c_mktsegment ORDER BY c_mktsegment",
  };
  const std::string lookup_sql =
      "SELECT COUNT(*), SUM(c_acctbal) FROM customer";

  std::atomic<bool> stop{false};
  std::vector<WorkerTotals> totals(static_cast<size_t>(opt.threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(opt.threads));
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < opt.threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(opt.seed + 1000u * static_cast<uint64_t>(t) + 1);
      WorkerTotals& mine = totals[static_cast<size_t>(t)];
      // Shard: worker t owns sessions t, t+threads, t+2*threads, ...
      size_t cursor = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        Connection& conn = conns[cursor];
        cursor += static_cast<size_t>(opt.threads);
        if (cursor >= conns.size()) cursor = static_cast<size_t>(t);
        Result<engine::ResultSet> r{engine::ResultSet{}};
        if (conn.analytic) {
          r = conn.session->Execute(rng.Pick(analytic_sql));
        } else if (rng.Uniform(1, 100) <= opt.write_pct) {
          r = conn.session->Execute(
              "UPDATE customer SET c_acctbal = c_acctbal + 1.00 "
              "WHERE c_custkey = " + std::to_string(conn.custkey));
          ++mine.writes;
        } else {
          r = conn.session->Execute(lookup_sql);
        }
        ++mine.statements;
        if (!r.ok()) {
          ++mine.errors;
          if (mine.first_error.empty()) {
            mine.first_error = r.status().ToString();
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(opt.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : workers) w.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  WorkerTotals sum;
  for (const WorkerTotals& w : totals) {
    sum.statements += w.statements;
    sum.writes += w.writes;
    sum.errors += w.errors;
    if (sum.first_error.empty()) sum.first_error = w.first_error;
  }

  obs::MetricsRegistry* metrics = obs::MetricsRegistry::Global();
  const char* lat = "mtbase_session_execute_seconds";
  std::printf("serving_bench: %d sessions (%lld tenants, zipf %.2f), "
              "%d workers, cap %d, %.2fs wall\n",
              opt.sessions, static_cast<long long>(opt.tenants), opt.zipf,
              opt.threads, opt.max_concurrent, wall);
  std::printf("  statements   %llu (%.0f/s), writes %llu, errors %llu\n",
              static_cast<unsigned long long>(sum.statements),
              wall > 0 ? static_cast<double>(sum.statements) / wall : 0.0,
              static_cast<unsigned long long>(sum.writes),
              static_cast<unsigned long long>(sum.errors));
  std::printf("  latency      p50 %.6fs  p95 %.6fs  p99 %.6fs\n",
              metrics->Quantile(lat, 0.5), metrics->Quantile(lat, 0.95),
              metrics->Quantile(lat, 0.99));
  std::printf("  plan cache   hits %llu  misses %llu\n",
              static_cast<unsigned long long>(
                  metrics->CounterValue("mtbase_mt_plan_cache_hits_total")),
              static_cast<unsigned long long>(
                  metrics->CounterValue("mtbase_mt_plan_cache_misses_total")));
  std::printf("  admission    admitted %llu  queued %llu  max in flight %d\n",
              static_cast<unsigned long long>(metrics->CounterValue(
                  "mtbase_engine_statements_admitted_total")),
              static_cast<unsigned long long>(metrics->CounterValue(
                  "mtbase_engine_statements_queued_total")),
              env->mth_db->admission()->max_in_flight_seen());
  if (sum.errors > 0) {
    std::fprintf(stderr, "first error: %s\n", sum.first_error.c_str());
  }

  if (!opt.metrics_json.empty()) {
    std::ofstream out(opt.metrics_json);
    out << metrics->RenderJson() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.metrics_json.c_str());
      return 1;
    }
  }
  return sum.errors > 0 ? 1 : 0;
}
