// MT-H schema: TPC-H extended for multi-tenancy (paper section 5).
//
// Nation, Region, Supplier, Part and Partsupp are global (public knowledge);
// Customer, Orders and Lineitem are tenant-specific. Keys into
// tenant-specific tables are tenant-specific attributes; monetary columns
// (c_acctbal, o_totalprice, l_extendedprice) are convertible via the
// *currency* pair and c_phone via the *phone format* pair.
#ifndef MTBASE_MTH_SCHEMA_H_
#define MTBASE_MTH_SCHEMA_H_

#include <string>

#include "common/result.h"
#include "engine/database.h"
#include "mt/session.h"

namespace mtbase {
namespace mth {

/// MTSQL DDL for the eight MT-H tables (executed through a Session so the
/// middleware learns the comparability metadata). When `partitions` > 0 the
/// tenant-specific tables carry `PARTITION BY HASH (ttid) PARTITIONS n`; the
/// ttid column is synthesized during lowering, so the clause resolves against
/// the lowered layout.
std::string MthDdl(int64_t partitions = 0);

/// Plain-SQL DDL for the TPC-H baseline database (same tables, no ttid).
std::string TpchDdl();

/// DDL + UDFs for the conversion machinery: Tenant, CurrencyTransform and
/// PhoneTransform meta tables plus the currency / phone conversion function
/// pairs (paper Listings 4-7), executed directly at the DBMS.
std::string ConversionDdl();

/// Register the currency and phone conversion pairs (with their algebraic
/// class and inline templates) in the middleware's conversion registry.
Status RegisterConversionPairs(mt::Middleware* mw);

}  // namespace mth
}  // namespace mtbase

#endif  // MTBASE_MTH_SCHEMA_H_
