// The 22 MT-H queries (TPC-H queries with validation parameter values,
// paper section 5), expressed in the dialect of this repository.
//
// Deviations from the TPC-H text (documented in EXPERIMENTS.md):
//   * Q11's fraction scales with the scale factor (0.0001 / sf, per spec);
//   * Q15's revenue view is inlined as a derived table;
//   * Q18's quantity threshold is 250 so small scale factors return rows;
//   * Q19's common join predicate is factored out of the OR branches
//     (semantically identical).
#ifndef MTBASE_MTH_QUERIES_H_
#define MTBASE_MTH_QUERIES_H_

#include <string>
#include <vector>

namespace mtbase {
namespace mth {

struct MthQuery {
  int number;        // 1..22
  std::string name;  // "Q01".."Q22"
  std::string sql;
};

/// All 22 queries; `scale_factor` parameterizes Q11's fraction.
std::vector<MthQuery> MthQueries(double scale_factor);

/// A single query by number (1-based).
MthQuery GetMthQuery(int number, double scale_factor);

}  // namespace mth
}  // namespace mtbase

#endif  // MTBASE_MTH_QUERIES_H_
