// Workload runner and result validation for the MT-H benchmark.
#ifndef MTBASE_MTH_RUNNER_H_
#define MTBASE_MTH_RUNNER_H_

#include <string>

#include "common/result.h"
#include "engine/database.h"
#include "mt/session.h"
#include "mth/dbgen.h"
#include "mth/queries.h"

namespace mtbase {
namespace mth {

struct QueryRun {
  double seconds = 0;
  engine::ResultSet result;
  engine::ExecStats stats;  // per-run deltas
  std::string sql;          // the SQL text sent to the engine
};

/// An MT-H query prepared once against a session for repeated execution.
/// The first RunPrepared() compiles (rewrite + plan); later runs under an
/// unchanged scope reuse the cached artifacts — the amortized per-request
/// cost a multi-tenant front-end actually pays.
struct PreparedMthQuery {
  mt::Session* session = nullptr;
  mt::OptLevel level = mt::OptLevel::kO4;
  mt::PreparedQuery query;
};

/// Parse an MT-H query once for repeated execution at the given level.
Result<PreparedMthQuery> PrepareMthQuery(mt::Session* session,
                                         const std::string& sql,
                                         mt::OptLevel level);

/// Execute a prepared MT-H query, timing it and collecting per-run stats.
Result<QueryRun> RunPrepared(PreparedMthQuery* prepared);

/// Run one MT-H query through the middleware at the given level
/// (one-shot: prepare + execute).
Result<QueryRun> RunMthQuery(mt::Session* session, const std::string& sql,
                             mt::OptLevel level);

/// Run a query directly on a (baseline) database.
Result<QueryRun> RunTpchQuery(engine::Database* db, const std::string& sql);

/// Multiset comparison with numeric tolerance (AVG/division rounding).
bool ResultsEqual(const engine::ResultSet& a, const engine::ResultSet& b,
                  std::string* why);

/// A fully loaded benchmark environment: the MT-H database behind a
/// middleware and the TPC-H baseline database over the same data.
struct MthEnvironment {
  MthConfig config;
  std::unique_ptr<engine::Database> mth_db;
  std::unique_ptr<mt::Middleware> middleware;
  std::unique_ptr<engine::Database> tpch_db;

  /// Open a client session (paper evaluation: C = 1).
  mt::Session OpenSession(int64_t client) { return mt::Session(middleware.get(), client); }
};

/// Generate + load both databases for `config` (baseline optional).
Result<std::unique_ptr<MthEnvironment>> SetupEnvironment(
    const MthConfig& config, engine::DbmsProfile profile,
    bool with_baseline = true);

/// Set the intra-query thread budget on both databases of `env`
/// (PlannerOptions::max_threads; 0 = auto, 1 = serial). The runner and the
/// benches expose it as --threads / MTH_THREADS.
void SetMthThreads(MthEnvironment* env, int max_threads);

}  // namespace mth
}  // namespace mtbase

#endif  // MTBASE_MTH_RUNNER_H_
