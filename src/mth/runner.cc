#include "mth/runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace mtbase {
namespace mth {

Result<PreparedMthQuery> PrepareMthQuery(mt::Session* session,
                                         const std::string& sql,
                                         mt::OptLevel level) {
  session->set_optimization_level(level);
  MTB_ASSIGN_OR_RETURN(mt::PreparedQuery query, session->Prepare(sql));
  return PreparedMthQuery{session, level, std::move(query)};
}

Result<QueryRun> RunPrepared(PreparedMthQuery* prepared) {
  prepared->session->set_optimization_level(prepared->level);
  QueryRun run;
  engine::StatsScope stats(prepared->session->middleware()->db()->stats());
  auto t0 = std::chrono::steady_clock::now();
  auto result = prepared->query.Execute();
  auto t1 = std::chrono::steady_clock::now();
  if (!result.ok()) return result.status();
  run.seconds = std::chrono::duration<double>(t1 - t0).count();
  run.result = std::move(result).value();
  run.stats = stats.Delta();
  run.sql = prepared->query.sql();
  return run;
}

Result<QueryRun> RunMthQuery(mt::Session* session, const std::string& sql,
                             mt::OptLevel level) {
  MTB_ASSIGN_OR_RETURN(PreparedMthQuery prepared,
                       PrepareMthQuery(session, sql, level));
  return RunPrepared(&prepared);
}

Result<QueryRun> RunTpchQuery(engine::Database* db, const std::string& sql) {
  QueryRun run;
  engine::StatsScope stats(db->stats());
  auto t0 = std::chrono::steady_clock::now();
  auto result = db->Execute(sql);
  auto t1 = std::chrono::steady_clock::now();
  if (!result.ok()) return result.status();
  run.seconds = std::chrono::duration<double>(t1 - t0).count();
  run.result = std::move(result).value();
  run.stats = stats.Delta();
  run.sql = sql;
  return run;
}

namespace {

bool ValuesClose(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.AsDouble(), y = b.AsDouble();
    double tol = std::max(1e-2, 1e-7 * std::max(std::fabs(x), std::fabs(y)));
    return std::fabs(x - y) <= tol;
  }
  return a.StructuralEquals(b);
}

/// Canonical row key for multiset comparison: numerics rounded to 2 digits.
std::string RowKey(const Row& row) {
  std::string key;
  for (const Value& v : row) {
    if (v.is_numeric()) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.2f", v.AsDouble());
      key += buf;
    } else {
      key += v.ToString();
    }
    key += '\x1f';
  }
  return key;
}

}  // namespace

bool ResultsEqual(const engine::ResultSet& a, const engine::ResultSet& b,
                  std::string* why) {
  if (a.rows.size() != b.rows.size()) {
    if (why != nullptr) {
      *why = "row count " + std::to_string(a.rows.size()) + " vs " +
             std::to_string(b.rows.size());
    }
    return false;
  }
  if (!a.rows.empty() && a.rows[0].size() != b.rows[0].size()) {
    if (why != nullptr) *why = "column count differs";
    return false;
  }
  // Fast path: ordered comparison with tolerance.
  bool ordered_equal = true;
  for (size_t i = 0; i < a.rows.size() && ordered_equal; ++i) {
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      if (!ValuesClose(a.rows[i][j], b.rows[i][j])) {
        ordered_equal = false;
        break;
      }
    }
  }
  if (ordered_equal) return true;
  // Fallback: multiset comparison (ORDER BY ties may permute rows between
  // equivalent executions).
  std::vector<std::string> ka, kb;
  ka.reserve(a.rows.size());
  kb.reserve(b.rows.size());
  for (const Row& r : a.rows) ka.push_back(RowKey(r));
  for (const Row& r : b.rows) kb.push_back(RowKey(r));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  if (ka == kb) return true;
  if (why != nullptr) {
    for (size_t i = 0; i < ka.size(); ++i) {
      if (ka[i] != kb[i]) {
        *why = "first differing row (sorted) #" + std::to_string(i) + ": '" +
               ka[i] + "' vs '" + kb[i] + "'";
        break;
      }
    }
  }
  return false;
}

void SetMthThreads(MthEnvironment* env, int max_threads) {
  for (engine::Database* db : {env->mth_db.get(), env->tpch_db.get()}) {
    if (db == nullptr) continue;
    engine::PlannerOptions opts = db->planner_options();
    opts.max_threads = max_threads;
    db->set_planner_options(opts);
  }
}

Result<std::unique_ptr<MthEnvironment>> SetupEnvironment(
    const MthConfig& config, engine::DbmsProfile profile, bool with_baseline) {
  auto env = std::make_unique<MthEnvironment>();
  env->config = config;
  MTB_ASSIGN_OR_RETURN(MthData data, GenerateData(config));
  env->mth_db = std::make_unique<engine::Database>(profile);
  env->middleware = std::make_unique<mt::Middleware>(env->mth_db.get());
  MTB_RETURN_IF_ERROR(LoadMth(env->mth_db.get(), env->middleware.get(), data,
                              config));
  if (with_baseline) {
    env->tpch_db = std::make_unique<engine::Database>(profile);
    MTB_RETURN_IF_ERROR(LoadTpch(env->tpch_db.get(), data));
  }
  return env;
}

}  // namespace mth
}  // namespace mtbase
