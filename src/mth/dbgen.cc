#include "mth/dbgen.h"

#include <algorithm>
#include <array>
#include <memory>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "common/str_util.h"
#include "mth/schema.h"
#include "sql/parser.h"

namespace mtbase {
namespace mth {

namespace {

struct NationDef {
  const char* name;
  int region;
};

// TPC-H's 25 nations with their region assignment.
const NationDef kNations[] = {
    {"ALGERIA", 0},   {"ARGENTINA", 1}, {"BRAZIL", 1},    {"CANADA", 1},
    {"EGYPT", 4},     {"ETHIOPIA", 0},  {"FRANCE", 3},    {"GERMANY", 3},
    {"INDIA", 2},     {"INDONESIA", 2}, {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},     {"JORDAN", 4},    {"KENYA", 0},     {"MOROCCO", 0},
    {"MOZAMBIQUE", 0},{"PERU", 1},      {"CHINA", 2},     {"ROMANIA", 3},
    {"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},   {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

// Colors for p_name (the spec uses 92; a subset keeps LIKE selectivities in
// a similar ballpark). "green" (Q9) and "forest" (Q20) are included.
const char* kColors[] = {
    "almond",  "antique", "aquamarine", "azure",   "beige",   "bisque",
    "black",   "blanched","blue",       "blush",   "brown",   "burlywood",
    "burnished","chartreuse","chiffon", "chocolate","coral",  "cornflower",
    "cream",   "cyan",    "dark",       "deep",    "dim",     "dodger",
    "drab",    "firebrick","floral",    "forest",  "frosted", "gainsboro",
    "ghost",   "goldenrod","green",     "grey",    "honeydew","hot",
    "indian",  "ivory",   "khaki",      "lace"};

const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                         "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                              "CAN", "DRUM"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kInstructions[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                        "FOB"};
const char* kWords[] = {
    "carefully", "quickly",  "furiously", "slyly",    "blithely", "ideas",
    "packages",  "deposits", "accounts",  "requests", "instructions",
    "theodolites","pinto",   "beans",     "foxes",    "dependencies",
    "platelets", "asymptotes","courts",   "dolphins", "multipliers",
    "sauternes", "warhorses","frets",     "dinos",    "attainments",
    "excuses",   "realms",   "sentiments","waters"};

std::string Words(Rng* rng, int count) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    if (i) out += ' ';
    out += kWords[rng->Uniform(0, std::size(kWords) - 1)];
  }
  return out;
}

Decimal Dec2(int64_t cents) { return Decimal(cents, 2); }

Date EpochDate(int y, int m, int d) { return Date::FromYmd(y, m, d); }

}  // namespace

int64_t MthConfig::SupplierCount() const {
  return std::max<int64_t>(10, std::llround(10000 * scale_factor));
}
int64_t MthConfig::PartCount() const {
  return std::max<int64_t>(40, std::llround(200000 * scale_factor));
}
int64_t MthConfig::CustomerCount() const {
  return std::max<int64_t>(std::max<int64_t>(30, 2 * num_tenants),
                           std::llround(150000 * scale_factor));
}
int64_t MthConfig::OrderCount() const { return 10 * CustomerCount(); }

const std::vector<CurrencyInfo>& Currencies() {
  // fromUniversal rates are integers and toUniversal rates their exact
  // reciprocals, so stored values keep scale 2 and all conversion round
  // trips are exact (see DESIGN.md).
  static const std::vector<CurrencyInfo> kCurrencies = {
      {"USD", "1", "1"},        {"EUR2", "0.5", "2"},  {"CRN4", "0.25", "4"},
      {"PES5", "0.2", "5"},     {"YEN8", "0.125", "8"}, {"RUP10", "0.1", "10"},
      {"DIN25", "0.04", "25"},  {"LIR50", "0.02", "50"}};
  return kCurrencies;
}

const std::vector<const char*>& PhonePrefixes() {
  static const std::vector<const char*> kPrefixes = {"",   "+",   "00",
                                                     "011", "0011", "810"};
  return kPrefixes;
}

Result<MthData> GenerateData(const MthConfig& config) {
  MthData data;
  Rng rng(config.seed);
  const int64_t S = config.SupplierCount();
  const int64_t P = config.PartCount();
  const int64_t C = config.CustomerCount();
  const int64_t O = config.OrderCount();
  const int64_t T = config.num_tenants;

  // region / nation.
  for (int i = 0; i < 5; ++i) {
    data.region.push_back({Value::Int(i), Value::Str(kRegions[i]),
                           Value::Str(Words(&rng, 4))});
  }
  for (int i = 0; i < 25; ++i) {
    data.nation.push_back({Value::Int(i), Value::Str(kNations[i].name),
                           Value::Int(kNations[i].region),
                           Value::Str(Words(&rng, 4))});
  }

  // supplier.
  for (int64_t s = 1; s <= S; ++s) {
    int nation = static_cast<int>(rng.Uniform(0, 24));
    std::string comment = Words(&rng, 6);
    if (rng.Chance(0.05)) {
      comment += " Customer extra Complaints";  // Q16 exclusion pattern
    }
    char phone[32];
    std::snprintf(phone, sizeof(phone), "%d-%03d-%03d-%04d", 10 + nation,
                  static_cast<int>(rng.Uniform(100, 999)),
                  static_cast<int>(rng.Uniform(100, 999)),
                  static_cast<int>(rng.Uniform(1000, 9999)));
    data.supplier.push_back(
        {Value::Int(s), Value::Str("Supplier#" + std::to_string(s)),
         Value::Str(Words(&rng, 2)), Value::Int(nation), Value::Str(phone),
         Value::Dec(Dec2(rng.Uniform(-99999, 999999))),
         Value::Str(comment)});
  }

  // part + partsupp; remember each part's suppliers and retail price for
  // lineitem generation.
  std::vector<std::array<int64_t, 4>> part_suppliers(
      static_cast<size_t>(P + 1));
  std::vector<Decimal> part_price(static_cast<size_t>(P + 1));
  for (int64_t p = 1; p <= P; ++p) {
    std::string name;
    for (int w = 0; w < 5; ++w) {
      if (w) name += ' ';
      name += kColors[rng.Uniform(0, std::size(kColors) - 1)];
    }
    int m = static_cast<int>(rng.Uniform(1, 5));
    std::string brand = "Brand#" + std::to_string(m) +
                        std::to_string(rng.Uniform(1, 5));
    std::string type = std::string(kTypes1[rng.Uniform(0, 5)]) + " " +
                       kTypes2[rng.Uniform(0, 4)] + " " +
                       kTypes3[rng.Uniform(0, 4)];
    std::string container = std::string(kContainers1[rng.Uniform(0, 4)]) +
                            " " + kContainers2[rng.Uniform(0, 7)];
    Decimal price = Dec2(90000 + (p % 20001) + 100 * (p % 1000));
    part_price[static_cast<size_t>(p)] = price;
    data.part.push_back(
        {Value::Int(p), Value::Str(name),
         Value::Str("Manufacturer#" + std::to_string(m)), Value::Str(brand),
         Value::Str(type), Value::Int(rng.Uniform(1, 50)),
         Value::Str(container), Value::Dec(price), Value::Str(Words(&rng, 3))});
    // Four distinct suppliers per part (spec formula).
    std::unordered_set<int64_t> seen;
    for (int i = 0; i < 4; ++i) {
      int64_t s = 1 + (p + i * (S / 4 + 1)) % S;
      while (seen.count(s)) s = 1 + s % S;
      seen.insert(s);
      part_suppliers[static_cast<size_t>(p)][static_cast<size_t>(i)] = s;
      data.partsupp.push_back({Value::Int(p), Value::Int(s),
                               Value::Int(rng.Uniform(1, 9999)),
                               Value::Dec(Dec2(rng.Uniform(100, 100000))),
                               Value::Str(Words(&rng, 8))});
    }
  }

  // customer, with tenant assignment.
  std::unique_ptr<ZipfGenerator> zipf;
  if (config.distribution == MthConfig::Distribution::kZipf) {
    zipf = std::make_unique<ZipfGenerator>(T, 1.0, config.seed ^ 0x5A5Aull);
  }
  for (int64_t c = 1; c <= C; ++c) {
    int64_t tenant = config.distribution == MthConfig::Distribution::kUniform
                         ? 1 + (c - 1) % T
                         : zipf->Next();
    data.customer_tenant.push_back(tenant);
    int nation = static_cast<int>(rng.Uniform(0, 24));
    char phone[32];
    std::snprintf(phone, sizeof(phone), "%d-%03d-%03d-%04d", 10 + nation,
                  static_cast<int>(rng.Uniform(100, 999)),
                  static_cast<int>(rng.Uniform(100, 999)),
                  static_cast<int>(rng.Uniform(1000, 9999)));
    data.customer.push_back(
        {Value::Int(c), Value::Str("Customer#" + std::to_string(c)),
         Value::Str(Words(&rng, 2)), Value::Int(nation), Value::Str(phone),
         Value::Dec(Dec2(rng.Uniform(-99999, 999999))),
         Value::Str(kSegments[rng.Uniform(0, 4)]),
         Value::Str(Words(&rng, 6))});
  }

  // orders + lineitem. Orders inherit their customer's tenant, so foreign
  // keys stay tenant-local (paper section 5); keys remain globally unique so
  // the merged database equals the TPC-H baseline.
  const Date kStart = EpochDate(1992, 1, 1);
  const Date kCurrent = EpochDate(1995, 6, 17);
  const int kOrderSpan = EpochDate(1998, 8, 2).days() - kStart.days() - 151;
  for (int64_t o = 1; o <= O; ++o) {
    // Two thirds of customers place orders (spec: custkey % 3 != 0).
    int64_t cust = rng.Uniform(1, C);
    if (C >= 3 && cust % 3 == 0) cust = cust == C ? 1 : cust + 1;
    int64_t tenant = data.customer_tenant[static_cast<size_t>(cust - 1)];
    data.orders_tenant.push_back(tenant);
    Date orderdate = Date(kStart.days() +
                          static_cast<int32_t>(rng.Uniform(0, kOrderSpan)));
    int nlines = static_cast<int>(rng.Uniform(1, 7));
    Decimal total = Dec2(0);
    int o_count = 0, f_count = 0;
    for (int ln = 1; ln <= nlines; ++ln) {
      int64_t p = rng.Uniform(1, P);
      int64_t s = part_suppliers[static_cast<size_t>(p)]
                                [static_cast<size_t>(rng.Uniform(0, 3))];
      int64_t qty = rng.Uniform(1, 50);
      Decimal ext = part_price[static_cast<size_t>(p)].Mul(Decimal::FromInt(qty));
      Decimal discount = Dec2(rng.Uniform(0, 10));  // 0.00 .. 0.10
      Decimal tax = Dec2(rng.Uniform(0, 8));        // 0.00 .. 0.08
      Date shipdate = orderdate.AddDays(static_cast<int>(rng.Uniform(1, 121)));
      Date commitdate =
          orderdate.AddDays(static_cast<int>(rng.Uniform(30, 90)));
      Date receiptdate = shipdate.AddDays(static_cast<int>(rng.Uniform(1, 30)));
      bool shipped = !(kCurrent < shipdate);
      const char* linestatus = shipped ? "F" : "O";
      const char* returnflag =
          (receiptdate < kCurrent || receiptdate == kCurrent)
              ? (rng.Chance(0.5) ? "R" : "A")
              : "N";
      if (shipped) {
        ++f_count;
      } else {
        ++o_count;
      }
      Decimal one = Decimal::FromInt(1);
      total = total.Add(ext.Mul(one.Sub(discount)).Mul(one.Add(tax)));
      data.lineitem_tenant.push_back(tenant);
      data.lineitem.push_back(
          {Value::Int(o), Value::Int(p), Value::Int(s), Value::Int(ln),
           Value::Dec(Decimal::FromInt(qty).Rescale(2)), Value::Dec(ext),
           Value::Dec(discount), Value::Dec(tax), Value::Str(returnflag),
           Value::Str(linestatus), Value::Dat(shipdate), Value::Dat(commitdate),
           Value::Dat(receiptdate),
           Value::Str(kInstructions[rng.Uniform(0, 3)]),
           Value::Str(kModes[rng.Uniform(0, 6)]), Value::Str(Words(&rng, 4))});
    }
    const char* status = f_count == 0 ? "O" : (o_count == 0 ? "F" : "P");
    std::string comment = Words(&rng, 5);
    if (rng.Chance(0.02)) {
      comment += " special packages requests";  // Q13 exclusion pattern
    }
    data.orders.push_back(
        {Value::Int(o), Value::Int(cust), Value::Str(status),
         Value::Dec(total.Rescale(2)), Value::Dat(orderdate),
         Value::Str(kPriorities[rng.Uniform(0, 4)]),
         Value::Str("Clerk#" + std::to_string(rng.Uniform(1, 1000))),
         Value::Int(0), Value::Str(comment)});
  }
  return data;
}

namespace {

Status BulkInsert(engine::Database* db, const std::string& table,
                  const std::vector<Row>& rows) {
  engine::Table* t = db->catalog()->FindTable(table);
  if (t == nullptr) return Status::NotFound("table " + table + " missing");
  t->Reserve(rows.size());
  for (const Row& r : rows) {
    MTB_RETURN_IF_ERROR(t->Insert(r));
  }
  return Status::OK();
}

Status BulkInsertTenant(engine::Database* db, const std::string& table,
                        const std::vector<Row>& rows,
                        const std::vector<int64_t>& tenants,
                        const std::vector<int>& convert_currency,
                        int convert_phone,
                        const std::vector<Decimal>& from_rates,
                        const std::vector<std::string>& prefixes,
                        const std::vector<int>& tenant_currency,
                        const std::vector<int>& tenant_phone) {
  engine::Table* t = db->catalog()->FindTable(table);
  if (t == nullptr) return Status::NotFound("table " + table + " missing");
  t->Reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    int64_t tenant = tenants[i];
    Row r;
    r.reserve(rows[i].size() + 1);
    r.push_back(Value::Int(tenant));
    for (const Value& v : rows[i]) r.push_back(v);
    int cur = tenant_currency[static_cast<size_t>(tenant)];
    for (int col : convert_currency) {
      const Value& v = r[static_cast<size_t>(col + 1)];
      r[static_cast<size_t>(col + 1)] =
          Value::Dec(v.decimal_value().Mul(from_rates[static_cast<size_t>(cur)]));
    }
    if (convert_phone >= 0) {
      int pf = tenant_phone[static_cast<size_t>(tenant)];
      const Value& v = r[static_cast<size_t>(convert_phone + 1)];
      r[static_cast<size_t>(convert_phone + 1)] =
          Value::Str(prefixes[static_cast<size_t>(pf)] + v.string_value());
    }
    MTB_RETURN_IF_ERROR(t->Insert(std::move(r)));
  }
  return Status::OK();
}

}  // namespace

Status LoadTpch(engine::Database* db, const MthData& data) {
  MTB_RETURN_IF_ERROR(db->ExecuteScript(TpchDdl()).status());
  MTB_RETURN_IF_ERROR(BulkInsert(db, "region", data.region));
  MTB_RETURN_IF_ERROR(BulkInsert(db, "nation", data.nation));
  MTB_RETURN_IF_ERROR(BulkInsert(db, "supplier", data.supplier));
  MTB_RETURN_IF_ERROR(BulkInsert(db, "part", data.part));
  MTB_RETURN_IF_ERROR(BulkInsert(db, "partsupp", data.partsupp));
  MTB_RETURN_IF_ERROR(BulkInsert(db, "customer", data.customer));
  MTB_RETURN_IF_ERROR(BulkInsert(db, "orders", data.orders));
  MTB_RETURN_IF_ERROR(BulkInsert(db, "lineitem", data.lineitem));
  return Status::OK();
}

Status LoadMth(engine::Database* db, mt::Middleware* mw, const MthData& data,
               const MthConfig& config) {
  const int64_t T = config.num_tenants;
  // Conversion machinery straight at the DBMS.
  MTB_RETURN_IF_ERROR(db->ExecuteScript(ConversionDdl()).status());
  MTB_RETURN_IF_ERROR(RegisterConversionPairs(mw));

  // MTSQL schema via a data-modeller session so the middleware learns the
  // comparability metadata.
  mt::Session modeller(mw, 1);
  MTB_RETURN_IF_ERROR(modeller.ExecuteScript(MthDdl(config.partitions)).status());

  // Tenants, their formats and public read grants. Tenant 1 gets the
  // universal formats (paper section 5).
  Rng rng(config.seed ^ 0x7EA7);
  const auto& currencies = Currencies();
  const auto& prefixes = PhonePrefixes();
  std::vector<Decimal> from_rates;
  engine::Table* ct = db->catalog()->FindTable("CurrencyTransform");
  for (size_t i = 0; i < currencies.size(); ++i) {
    MTB_ASSIGN_OR_RETURN(Decimal to, Decimal::Parse(currencies[i].to_universal));
    MTB_ASSIGN_OR_RETURN(Decimal from,
                         Decimal::Parse(currencies[i].from_universal));
    from_rates.push_back(from);
    MTB_RETURN_IF_ERROR(
        ct->Insert({Value::Int(static_cast<int64_t>(i)),
                    Value::Str(currencies[i].name), Value::Dec(to),
                    Value::Dec(from)}));
  }
  engine::Table* pt = db->catalog()->FindTable("PhoneTransform");
  std::vector<std::string> prefix_strings;
  for (size_t i = 0; i < prefixes.size(); ++i) {
    prefix_strings.push_back(prefixes[i]);
    MTB_RETURN_IF_ERROR(pt->Insert(
        {Value::Int(static_cast<int64_t>(i)), Value::Str(prefixes[i])}));
  }
  engine::Table* tenant_table = db->catalog()->FindTable("Tenant");
  std::vector<int> tenant_currency(static_cast<size_t>(T + 1), 0);
  std::vector<int> tenant_phone(static_cast<size_t>(T + 1), 0);
  for (int64_t t = 1; t <= T; ++t) {
    int cur = t == 1 ? 0
                     : static_cast<int>(rng.Uniform(
                           0, static_cast<int64_t>(currencies.size()) - 1));
    int ph = t == 1 ? 0
                    : static_cast<int>(rng.Uniform(
                          0, static_cast<int64_t>(prefixes.size()) - 1));
    tenant_currency[static_cast<size_t>(t)] = cur;
    tenant_phone[static_cast<size_t>(t)] = ph;
    MTB_RETURN_IF_ERROR(tenant_table->Insert(
        {Value::Int(t), Value::Int(cur), Value::Int(ph)}));
    mw->RegisterTenant(t);
    mw->privileges()->Grant(t, "", mt::Privilege::kRead, mt::kPublicGrantee);
  }

  // Global tables: universal rows as-is.
  MTB_RETURN_IF_ERROR(BulkInsert(db, "region", data.region));
  MTB_RETURN_IF_ERROR(BulkInsert(db, "nation", data.nation));
  MTB_RETURN_IF_ERROR(BulkInsert(db, "supplier", data.supplier));
  MTB_RETURN_IF_ERROR(BulkInsert(db, "part", data.part));
  MTB_RETURN_IF_ERROR(BulkInsert(db, "partsupp", data.partsupp));

  // Tenant-specific tables: ttid column + values in tenant formats.
  // customer: c_phone col 4, c_acctbal col 5.
  MTB_RETURN_IF_ERROR(BulkInsertTenant(db, "customer", data.customer,
                                       data.customer_tenant, {5}, 4,
                                       from_rates, prefix_strings,
                                       tenant_currency, tenant_phone));
  // orders: o_totalprice col 3.
  MTB_RETURN_IF_ERROR(BulkInsertTenant(db, "orders", data.orders,
                                       data.orders_tenant, {3}, -1, from_rates,
                                       prefix_strings, tenant_currency,
                                       tenant_phone));
  // lineitem: l_extendedprice col 5.
  MTB_RETURN_IF_ERROR(BulkInsertTenant(db, "lineitem", data.lineitem,
                                       data.lineitem_tenant, {5}, -1,
                                       from_rates, prefix_strings,
                                       tenant_currency, tenant_phone));
  return Status::OK();
}

}  // namespace mth
}  // namespace mtbase
