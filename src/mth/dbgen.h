// MT-H data generator (the paper's modified dbgen, section 5).
//
// Generates a spec-shaped TPC-H dataset in *universal* format (USD amounts,
// unprefixed phone numbers) plus a tenant assignment for the tenant-specific
// tables, and loads it either as a plain TPC-H baseline database or as an
// MT-H database in the basic (ST) layout with per-tenant currency / phone
// formats. Fixed seed => reproducible data; loading the same MthData into
// both layouts makes the C=1, D=all validation (paper section 5) exact.
#ifndef MTBASE_MTH_DBGEN_H_
#define MTBASE_MTH_DBGEN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "engine/database.h"
#include "mt/session.h"

namespace mtbase {
namespace mth {

struct MthConfig {
  /// TPC-H scale factor; fractional values scale all cardinalities down.
  double scale_factor = 0.01;
  /// Number of tenants T; ttids are 1..T. Tenant 1 uses the universal
  /// formats (USD, unprefixed phones).
  int64_t num_tenants = 10;
  enum class Distribution { kUniform, kZipf } distribution = Distribution::kUniform;
  uint64_t seed = 42;
  /// When > 0, the tenant-specific tables (customer, orders, lineitem) are
  /// created `PARTITION BY HASH (ttid) PARTITIONS n` so single-tenant scopes
  /// prune to one partition. 0 = unpartitioned (the paper's layout).
  int64_t partitions = 0;

  int64_t SupplierCount() const;
  int64_t PartCount() const;
  int64_t CustomerCount() const;
  int64_t OrderCount() const;
};

/// Universal-format rows plus tenant assignment.
struct MthData {
  std::vector<Row> region, nation, supplier, part, partsupp;
  std::vector<Row> customer, orders, lineitem;
  std::vector<int64_t> customer_tenant, orders_tenant, lineitem_tenant;
};

/// Deterministically generate the dataset for `config`.
Result<MthData> GenerateData(const MthConfig& config);

/// Load into a plain TPC-H baseline database (universal formats, no ttid).
Status LoadTpch(engine::Database* db, const MthData& data);

/// Load into an MT-H database behind the middleware: creates the conversion
/// meta tables and UDFs, the MTSQL schema, registers tenants (each granting
/// READ to the public), and stores tenant rows in their tenant's formats.
Status LoadMth(engine::Database* db, mt::Middleware* mw, const MthData& data,
               const MthConfig& config);

/// The per-tenant currency factors used by LoadMth (toUniversal rates are the
/// reciprocals). Exposed for tests; rates are reciprocal-exact so conversion
/// round-trips are bit-exact (DESIGN.md section 5).
struct CurrencyInfo {
  const char* name;
  const char* to_universal;    // decimal literal
  const char* from_universal;  // decimal literal
};
const std::vector<CurrencyInfo>& Currencies();
const std::vector<const char*>& PhonePrefixes();

}  // namespace mth
}  // namespace mtbase

#endif  // MTBASE_MTH_DBGEN_H_
