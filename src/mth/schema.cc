#include "mth/schema.h"

namespace mtbase {
namespace mth {

namespace {

// Table bodies shared between the MTSQL and plain variants. The MTSQL
// variant annotates generality/comparability; the plain variant is the
// TPC-H baseline schema.
const char* kGlobalTables = R"(
CREATE TABLE region (
  r_regionkey INTEGER NOT NULL,
  r_name VARCHAR(25) NOT NULL,
  r_comment VARCHAR(152),
  CONSTRAINT pk_region PRIMARY KEY (r_regionkey)
);
CREATE TABLE nation (
  n_nationkey INTEGER NOT NULL,
  n_name VARCHAR(25) NOT NULL,
  n_regionkey INTEGER NOT NULL,
  n_comment VARCHAR(152),
  CONSTRAINT pk_nation PRIMARY KEY (n_nationkey),
  CONSTRAINT fk_nation_region FOREIGN KEY (n_regionkey) REFERENCES region (r_regionkey)
);
CREATE TABLE supplier (
  s_suppkey INTEGER NOT NULL,
  s_name VARCHAR(25) NOT NULL,
  s_address VARCHAR(40) NOT NULL,
  s_nationkey INTEGER NOT NULL,
  s_phone VARCHAR(15) NOT NULL,
  s_acctbal DECIMAL(15,2) NOT NULL,
  s_comment VARCHAR(101) NOT NULL,
  CONSTRAINT pk_supplier PRIMARY KEY (s_suppkey),
  CONSTRAINT fk_supplier_nation FOREIGN KEY (s_nationkey) REFERENCES nation (n_nationkey)
);
CREATE TABLE part (
  p_partkey INTEGER NOT NULL,
  p_name VARCHAR(55) NOT NULL,
  p_mfgr VARCHAR(25) NOT NULL,
  p_brand VARCHAR(10) NOT NULL,
  p_type VARCHAR(25) NOT NULL,
  p_size INTEGER NOT NULL,
  p_container VARCHAR(10) NOT NULL,
  p_retailprice DECIMAL(15,2) NOT NULL,
  p_comment VARCHAR(23) NOT NULL,
  CONSTRAINT pk_part PRIMARY KEY (p_partkey)
);
CREATE TABLE partsupp (
  ps_partkey INTEGER NOT NULL,
  ps_suppkey INTEGER NOT NULL,
  ps_availqty INTEGER NOT NULL,
  ps_supplycost DECIMAL(15,2) NOT NULL,
  ps_comment VARCHAR(199) NOT NULL,
  CONSTRAINT pk_partsupp PRIMARY KEY (ps_partkey, ps_suppkey),
  CONSTRAINT fk_ps_part FOREIGN KEY (ps_partkey) REFERENCES part (p_partkey),
  CONSTRAINT fk_ps_supp FOREIGN KEY (ps_suppkey) REFERENCES supplier (s_suppkey)
);
)";

std::string TenantTables(bool mtsql, int64_t partitions) {
  // In the MTSQL variant: SPECIFIC tables; tenant-specific keys; convertible
  // monetary / phone attributes (paper section 5).
  auto spec = [&](const char* kw) { return mtsql ? std::string(" ") + kw : ""; };
  // ttid hash partitioning only makes sense on the MTSQL side, where lowering
  // synthesizes the ttid column the clause names.
  std::string part_by =
      mtsql && partitions > 0
          ? " PARTITION BY HASH (ttid) PARTITIONS " + std::to_string(partitions)
          : "";
  std::string currency =
      mtsql ? " CONVERTIBLE @currencyToUniversal @currencyFromUniversal" : "";
  std::string phone =
      mtsql ? " CONVERTIBLE @phoneToUniversal @phoneFromUniversal" : "";
  std::string out;
  out += "CREATE TABLE customer" + spec("SPECIFIC") + " (\n";
  out += "  c_custkey INTEGER NOT NULL" + spec("SPECIFIC") + ",\n";
  out += "  c_name VARCHAR(25) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  c_address VARCHAR(40) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  c_nationkey INTEGER NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  c_phone VARCHAR(17) NOT NULL" + phone + ",\n";
  out += "  c_acctbal DECIMAL(15,2) NOT NULL" + currency + ",\n";
  out += "  c_mktsegment VARCHAR(10) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  c_comment VARCHAR(117) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  CONSTRAINT pk_customer PRIMARY KEY (c_custkey)\n";
  out += ")" + part_by + ";\n";
  out += "CREATE TABLE orders" + spec("SPECIFIC") + " (\n";
  out += "  o_orderkey INTEGER NOT NULL" + spec("SPECIFIC") + ",\n";
  out += "  o_custkey INTEGER NOT NULL" + spec("SPECIFIC") + ",\n";
  out += "  o_orderstatus VARCHAR(1) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  o_totalprice DECIMAL(15,2) NOT NULL" + currency + ",\n";
  out += "  o_orderdate DATE NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  o_orderpriority VARCHAR(15) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  o_clerk VARCHAR(15) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  o_shippriority INTEGER NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  o_comment VARCHAR(79) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  CONSTRAINT pk_orders PRIMARY KEY (o_orderkey),\n";
  out += "  CONSTRAINT fk_orders_cust FOREIGN KEY (o_custkey) REFERENCES "
         "customer (c_custkey)\n";
  out += ")" + part_by + ";\n";
  out += "CREATE TABLE lineitem" + spec("SPECIFIC") + " (\n";
  out += "  l_orderkey INTEGER NOT NULL" + spec("SPECIFIC") + ",\n";
  out += "  l_partkey INTEGER NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_suppkey INTEGER NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_linenumber INTEGER NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_quantity DECIMAL(15,2) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_extendedprice DECIMAL(15,2) NOT NULL" + currency + ",\n";
  out += "  l_discount DECIMAL(15,2) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_tax DECIMAL(15,2) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_returnflag VARCHAR(1) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_linestatus VARCHAR(1) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_shipdate DATE NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_commitdate DATE NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_receiptdate DATE NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_shipinstruct VARCHAR(25) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_shipmode VARCHAR(10) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  l_comment VARCHAR(44) NOT NULL" + spec("COMPARABLE") + ",\n";
  out += "  CONSTRAINT fk_line_order FOREIGN KEY (l_orderkey) REFERENCES "
         "orders (o_orderkey)\n";
  out += ")" + part_by + ";\n";
  return out;
}

}  // namespace

std::string MthDdl(int64_t partitions) {
  return std::string(kGlobalTables) + TenantTables(true, partitions);
}

std::string TpchDdl() {
  return std::string(kGlobalTables) + TenantTables(false, 0);
}

std::string ConversionDdl() {
  return R"(
CREATE TABLE Tenant (
  T_tenant_key INTEGER NOT NULL,
  T_currency_key INTEGER NOT NULL,
  T_phone_prefix_key INTEGER NOT NULL,
  CONSTRAINT pk_tenant PRIMARY KEY (T_tenant_key)
);
CREATE TABLE CurrencyTransform (
  CT_currency_key INTEGER NOT NULL,
  CT_name VARCHAR(8) NOT NULL,
  CT_to_universal DECIMAL(15,6) NOT NULL,
  CT_from_universal DECIMAL(15,6) NOT NULL,
  CONSTRAINT pk_ct PRIMARY KEY (CT_currency_key)
);
CREATE TABLE PhoneTransform (
  PT_phone_prefix_key INTEGER NOT NULL,
  PT_prefix VARCHAR(8) NOT NULL,
  CONSTRAINT pk_pt PRIMARY KEY (PT_phone_prefix_key)
);
CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
  AS 'SELECT CT_to_universal*$1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
  LANGUAGE SQL IMMUTABLE;
CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
  AS 'SELECT CT_from_universal*$1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
  LANGUAGE SQL IMMUTABLE;
CREATE FUNCTION phoneToUniversal (VARCHAR(17), INTEGER) RETURNS VARCHAR(17)
  AS 'SELECT SUBSTRING($1, CHAR_LENGTH(PT_prefix)+1) FROM Tenant, PhoneTransform WHERE T_tenant_key = $2 AND T_phone_prefix_key = PT_phone_prefix_key'
  LANGUAGE SQL IMMUTABLE;
CREATE FUNCTION phoneFromUniversal (VARCHAR(17), INTEGER) RETURNS VARCHAR(17)
  AS 'SELECT CONCAT(PT_prefix, $1) FROM Tenant, PhoneTransform WHERE T_tenant_key = $2 AND T_phone_prefix_key = PT_phone_prefix_key'
  LANGUAGE SQL IMMUTABLE;
)";
}

Status RegisterConversionPairs(mt::Middleware* mw) {
  mt::ConversionPair currency;
  currency.name = "currency";
  currency.to_universal = "currencyToUniversal";
  currency.from_universal = "currencyFromUniversal";
  currency.cls = mt::ConversionClass::kMultiplicative;
  currency.inline_spec.kind = mt::InlineSpec::Kind::kMultiplicative;
  currency.inline_spec.tenant_fk = "T_currency_key";
  currency.inline_spec.meta_table = "CurrencyTransform";
  currency.inline_spec.meta_key = "CT_currency_key";
  currency.inline_spec.to_col = "CT_to_universal";
  currency.inline_spec.from_col = "CT_from_universal";
  MTB_RETURN_IF_ERROR(mw->conversions()->Register(currency));

  mt::ConversionPair phone;
  phone.name = "phone";
  phone.to_universal = "phoneToUniversal";
  phone.from_universal = "phoneFromUniversal";
  phone.cls = mt::ConversionClass::kEqualityOnly;
  phone.inline_spec.kind = mt::InlineSpec::Kind::kPrefix;
  phone.inline_spec.tenant_fk = "T_phone_prefix_key";
  phone.inline_spec.meta_table = "PhoneTransform";
  phone.inline_spec.meta_key = "PT_phone_prefix_key";
  phone.inline_spec.to_col = "PT_prefix";
  phone.inline_spec.from_col = "PT_prefix";
  return mw->conversions()->Register(phone);
}

}  // namespace mth
}  // namespace mtbase
