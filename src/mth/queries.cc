#include "mth/queries.h"

#include <cstdio>

namespace mtbase {
namespace mth {

namespace {

const char* kQ01 = R"(
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus)";

const char* kQ02 = R"(
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
  AND p_size = 15 AND p_type LIKE '%BRASS'
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'EUROPE'
  AND ps_supplycost = (
    SELECT MIN(ps_supplycost)
    FROM partsupp, supplier, nation, region
    WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
      AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
      AND r_name = 'EUROPE')
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
LIMIT 100)";

const char* kQ03 = R"(
SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10)";

const char* kQ04 = R"(
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '1993-07-01'
  AND o_orderdate < DATE '1993-07-01' + INTERVAL '3' MONTH
  AND EXISTS (
    SELECT * FROM lineitem
    WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority)";

const char* kQ05 = R"(
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY n_name
ORDER BY revenue DESC)";

const char* kQ06 = R"(
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24)";

const char* kQ07 = R"(
SELECT supp_nation, cust_nation, l_year, SUM(volume) AS revenue
FROM (
  SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
         EXTRACT(YEAR FROM l_shipdate) AS l_year,
         l_extendedprice * (1 - l_discount) AS volume
  FROM supplier, lineitem, orders, customer, nation n1, nation n2
  WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
    AND c_custkey = o_custkey
    AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey
    AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
      OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
    AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
) AS shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year)";

const char* kQ08 = R"(
SELECT o_year,
       SUM(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0 END) / SUM(volume)
         AS mkt_share
FROM (
  SELECT EXTRACT(YEAR FROM o_orderdate) AS o_year,
         l_extendedprice * (1 - l_discount) AS volume,
         n2.n_name AS nation
  FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region
  WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
    AND l_orderkey = o_orderkey AND o_custkey = c_custkey
    AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey
    AND r_name = 'AMERICA' AND s_nationkey = n2.n_nationkey
    AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
    AND p_type = 'ECONOMY ANODIZED STEEL'
) AS all_nations
GROUP BY o_year
ORDER BY o_year)";

const char* kQ09 = R"(
SELECT nation, o_year, SUM(amount) AS sum_profit
FROM (
  SELECT n_name AS nation, EXTRACT(YEAR FROM o_orderdate) AS o_year,
         l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity AS amount
  FROM part, supplier, lineitem, partsupp, orders, nation
  WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
    AND ps_partkey = l_partkey AND p_partkey = l_partkey
    AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
    AND p_name LIKE '%green%'
) AS profit
GROUP BY nation, o_year
ORDER BY nation, o_year DESC)";

const char* kQ10 = R"(
SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
  AND l_returnflag = 'R' AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC
LIMIT 20)";

const char* kQ11Fmt = R"(
SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
  AND n_name = 'GERMANY'
GROUP BY ps_partkey
HAVING SUM(ps_supplycost * ps_availqty) > (
  SELECT SUM(ps_supplycost * ps_availqty) * %s
  FROM partsupp, supplier, nation
  WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
    AND n_name = 'GERMANY')
ORDER BY value DESC)";

const char* kQ12 = R"(
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY l_shipmode
ORDER BY l_shipmode)";

const char* kQ13 = R"(
SELECT c_count, COUNT(*) AS custdist
FROM (
  SELECT c_custkey, COUNT(o_orderkey) AS c_count
  FROM customer LEFT OUTER JOIN orders
    ON c_custkey = o_custkey AND o_comment NOT LIKE '%special%requests%'
  GROUP BY c_custkey
) AS c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC)";

const char* kQ14 = R"(
SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END)
       / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH)";

const char* kQ15 = R"(
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM supplier, (
  SELECT l_suppkey AS supplier_no,
         SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
  FROM lineitem
  WHERE l_shipdate >= DATE '1996-01-01'
    AND l_shipdate < DATE '1996-01-01' + INTERVAL '3' MONTH
  GROUP BY l_suppkey
) AS revenue
WHERE s_suppkey = supplier_no
  AND total_revenue = (
    SELECT MAX(total_revenue)
    FROM (
      SELECT l_suppkey AS supplier_no,
             SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
      FROM lineitem
      WHERE l_shipdate >= DATE '1996-01-01'
        AND l_shipdate < DATE '1996-01-01' + INTERVAL '3' MONTH
      GROUP BY l_suppkey
    ) AS revenue0)
ORDER BY s_suppkey)";

const char* kQ16 = R"(
SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey
  AND p_brand <> 'Brand#45'
  AND p_type NOT LIKE 'MEDIUM POLISHED%'
  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
  AND ps_suppkey NOT IN (
    SELECT s_suppkey FROM supplier
    WHERE s_comment LIKE '%Customer%Complaints%')
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size)";

const char* kQ17 = R"(
SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND p_brand = 'Brand#23' AND p_container = 'MED BOX'
  AND l_quantity < (
    SELECT 0.2 * AVG(l_quantity) FROM lineitem l2
    WHERE l2.l_partkey = p_partkey))";

const char* kQ18 = R"(
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       SUM(l_quantity) AS total_qty
FROM customer, orders, lineitem
WHERE o_orderkey IN (
    SELECT l_orderkey FROM lineitem
    GROUP BY l_orderkey
    HAVING SUM(l_quantity) > 250)
  AND c_custkey = o_custkey AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100)";

const char* kQ19 = R"(
SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND l_shipinstruct = 'DELIVER IN PERSON'
  AND l_shipmode IN ('AIR', 'REG AIR')
  AND ((p_brand = 'Brand#12'
        AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        AND l_quantity >= 1 AND l_quantity <= 11 AND p_size BETWEEN 1 AND 5)
    OR (p_brand = 'Brand#23'
        AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        AND l_quantity >= 10 AND l_quantity <= 20 AND p_size BETWEEN 1 AND 10)
    OR (p_brand = 'Brand#34'
        AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        AND l_quantity >= 20 AND l_quantity <= 30 AND p_size BETWEEN 1 AND 15)))";

const char* kQ20 = R"(
SELECT s_name, s_address
FROM supplier, nation
WHERE s_suppkey IN (
    SELECT ps_suppkey FROM partsupp
    WHERE ps_partkey IN (
        SELECT p_partkey FROM part WHERE p_name LIKE 'forest%')
      AND ps_availqty > (
        SELECT 0.5 * SUM(l_quantity) FROM lineitem
        WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey
          AND l_shipdate >= DATE '1994-01-01'
          AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR))
  AND s_nationkey = n_nationkey AND n_name = 'CANADA'
ORDER BY s_name)";

const char* kQ21 = R"(
SELECT s_name, COUNT(*) AS numwait
FROM supplier, lineitem l1, orders, nation
WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey
  AND o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (
    SELECT * FROM lineitem l2
    WHERE l2.l_orderkey = l1.l_orderkey AND l2.l_suppkey <> l1.l_suppkey)
  AND NOT EXISTS (
    SELECT * FROM lineitem l3
    WHERE l3.l_orderkey = l1.l_orderkey AND l3.l_suppkey <> l1.l_suppkey
      AND l3.l_receiptdate > l3.l_commitdate)
  AND s_nationkey = n_nationkey AND n_name = 'SAUDI ARABIA'
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100)";

const char* kQ22 = R"(
SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
FROM (
  SELECT SUBSTRING(c_phone FROM 1 FOR 2) AS cntrycode, c_acctbal
  FROM customer
  WHERE SUBSTRING(c_phone FROM 1 FOR 2) IN ('13', '31', '23', '29', '30', '18', '17')
    AND c_acctbal > (
      SELECT AVG(c_acctbal) FROM customer
      WHERE c_acctbal > 0.00
        AND SUBSTRING(c_phone FROM 1 FOR 2) IN ('13', '31', '23', '29', '30', '18', '17'))
    AND NOT EXISTS (SELECT * FROM orders WHERE o_custkey = c_custkey)
) AS custsale
GROUP BY cntrycode
ORDER BY cntrycode)";

}  // namespace

std::vector<MthQuery> MthQueries(double scale_factor) {
  char fraction[32];
  std::snprintf(fraction, sizeof(fraction), "%.10f", 0.0001 / scale_factor);
  char q11[4096];
  std::snprintf(q11, sizeof(q11), kQ11Fmt, fraction);
  const char* texts[] = {kQ01, kQ02, kQ03, kQ04, kQ05, kQ06, kQ07, kQ08,
                         kQ09, kQ10, q11,  kQ12, kQ13, kQ14, kQ15, kQ16,
                         kQ17, kQ18, kQ19, kQ20, kQ21, kQ22};
  std::vector<MthQuery> out;
  for (int i = 0; i < 22; ++i) {
    MthQuery q;
    q.number = i + 1;
    char name[16];
    std::snprintf(name, sizeof(name), "Q%02d", i + 1);
    q.name = name;
    q.sql = texts[i];
    out.push_back(std::move(q));
  }
  return out;
}

MthQuery GetMthQuery(int number, double scale_factor) {
  return MthQueries(scale_factor)[static_cast<size_t>(number - 1)];
}

}  // namespace mth
}  // namespace mtbase
