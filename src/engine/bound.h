// Bound expressions and physical plans.
//
// The binder resolves sql::Expr column references to positional slots; the
// planner assembles materialized operators. Both are deliberately simple:
// MTBase's contribution is the rewrite layer above, the engine just has to
// execute the rewritten SQL with realistic relative costs.
#ifndef MTBASE_ENGINE_BOUND_H_
#define MTBASE_ENGINE_BOUND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace mtbase {
namespace engine {

class Table;
struct Plan;
struct Udf;

enum class BinOp : uint8_t {
  kAnd, kOr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv,
  kConcat,
  kLike, kNotLike,
};

enum class AggFunc : uint8_t { kCountStar, kCount, kSum, kAvg, kMin, kMax };

enum class BuiltinFunc : uint8_t {
  kSubstring,
  kConcat,
  kCharLength,
  kUpper,
  kLower,
  kAbs,
  kCoalesce,
  kDateAddDays,    // (date, n)
  kDateAddMonths,  // (date, n)
  kDateAddYears,   // (date, n)
  kExtractYear,
  kExtractMonth,
  kExtractDay,
};

struct BoundExpr {
  enum class Kind : uint8_t {
    kLiteral,
    kSlot,        // column of the current input row
    kOuterSlot,   // column of an enclosing query's row (depth >= 1)
    kParam,       // $n inside a UDF body
    kNot,
    kNeg,
    kBinary,
    kBuiltin,
    kUdfCall,
    kCase,        // args = [w1, t1, w2, t2, ...]
    kInList,      // args[0] in args[1..]
    kInSet,       // (args...) in subplan results (InitPlan hash set)
    kExistsSub,   // correlated EXISTS fallback (per-row execution)
    kScalarSub,   // scalar sub-query; uncorrelated => InitPlan cache
    kBetween,
    kIsNull,
  } kind = Kind::kLiteral;

  Value literal;
  int slot = 0;
  int depth = 0;        // kOuterSlot
  int param_index = 0;  // kParam
  BinOp bin_op = BinOp::kAnd;
  BuiltinFunc builtin = BuiltinFunc::kConcat;
  const Udf* udf = nullptr;
  bool negated = false;  // NOT IN / NOT EXISTS / NOT BETWEEN / IS NOT NULL
  bool correlated = false;  // sub-query references outer slots
  std::vector<std::unique_ptr<BoundExpr>> args;
  std::unique_ptr<BoundExpr> case_operand;
  std::unique_ptr<BoundExpr> else_expr;
  std::shared_ptr<const Plan> subplan;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

struct ColumnMeta {
  std::string qualifier;  // binding name of the producing relation ("" if n/a)
  std::string name;
};

enum class JoinKind : uint8_t { kInner, kLeft, kSemi, kAnti };

/// What a decorrelated join was unnested from; kNone for ordinary joins.
/// EXPLAIN renders this so the chosen sub-query strategy (hash join vs
/// per-row fallback) is visible, and the executor counts executions of
/// decorrelated joins in ExecStats::decorrelated_execs.
enum class SubqueryOrigin : uint8_t {
  kNone,
  kExists,
  kNotExists,
  kIn,
  kNotIn,
  kScalarAgg,
};

struct AggSpec {
  AggFunc func = AggFunc::kCountStar;
  BoundExprPtr arg;  // null for COUNT(*)
  bool distinct = false;
};

struct Plan {
  enum class Kind : uint8_t {
    kScan,      // table + optional pushed-down filter
    kIndexScan, // ordered-index candidate lookup + the full pushed filter
    kJoin,      // hash join on equi keys, nested loop if none
    kFilter,
    kProject,
    kAggregate, // hash aggregation; output = [keys..., aggs...]
    kSort,
    kTopN,      // fused Sort + Limit: bounded heaps instead of a full sort
    kLimit,
    kDistinct,
  } kind = Kind::kScan;

  std::vector<ColumnMeta> columns;  // output layout

  /// Set by the planner (parallel::MarkParallelSafe): this operator's own
  /// expressions are free of outer references, sub-plans and
  /// volatile/stable UDF calls (IMMUTABLE UDF calls are admitted — their
  /// read-only bodies evaluate against worker-local contexts), so the
  /// executor may evaluate them from worker threads. Children carry their
  /// own flag; the executor additionally gates on input size and the
  /// configured thread budget.
  bool parallel_safe = false;

  // kScan / kIndexScan
  const Table* table = nullptr;
  BoundExprPtr scan_filter;

  // kScan partition pruning (planner post-pass, ApplyPhysicalAccessPaths):
  // when `pruned`, only the listed partition ids (ascending) are scanned.
  // The full scan_filter is still applied — pruning is a superset cut, not
  // a filter replacement.
  bool pruned = false;
  std::vector<uint32_t> partitions;

  // kIndexScan: equality/IN keys on the index's leading column. The index is
  // resolved by name against `table` at execution time; the raw-pointer
  // safety argument is the same as for `table` (any DDL bumps the catalog
  // version and forces a recompile).
  std::string index_name;
  std::vector<int64_t> index_keys;

  // children (kScan has none; kJoin uses both; others use `left`)
  std::unique_ptr<Plan> left;
  std::unique_ptr<Plan> right;

  // kJoin
  JoinKind join_kind = JoinKind::kInner;
  std::vector<BoundExprPtr> left_keys;   // over left layout
  std::vector<BoundExprPtr> right_keys;  // over right layout
  BoundExprPtr residual;                 // over concat(left, right) layout
  SubqueryOrigin decorrelated_from = SubqueryOrigin::kNone;
  /// NOT IN decorrelation: an anti join is only equivalent under SQL's
  /// three-valued logic when it is null-aware. The first `naaj_in_keys`
  /// key pairs are the IN tuple, the remainder are correlation keys.
  bool null_aware = false;
  size_t naaj_in_keys = 0;

  // kFilter
  BoundExprPtr predicate;

  // kProject (exprs over child layout) / kAggregate (group keys)
  std::vector<BoundExprPtr> exprs;

  // kAggregate
  std::vector<AggSpec> aggs;

  // kSort / kTopN: slot indices into child layout
  std::vector<std::pair<int, bool>> sort_keys;  // (slot, desc)

  // kLimit / kTopN. The output is rows [offset, offset + limit) of the
  // (sorted) input; kTopN only ever keeps limit + offset candidates.
  int64_t limit = -1;
  int64_t offset = 0;
};

using PlanPtr = std::unique_ptr<Plan>;

/// Invoke fn(const BoundExpr&) on every direct child expression of `e` —
/// args, CASE operand and ELSE branch (not the sub-plan; walkers decide
/// whether to descend into plans themselves). The single child enumeration
/// shared by every recursive expression walker, so a new child field only
/// needs wiring here.
template <typename Fn>
void ForEachExprChild(const BoundExpr& e, Fn&& fn) {
  for (const auto& a : e.args) fn(static_cast<const BoundExpr&>(*a));
  if (e.case_operand) fn(static_cast<const BoundExpr&>(*e.case_operand));
  if (e.else_expr) fn(static_cast<const BoundExpr&>(*e.else_expr));
}

/// Invoke fn(const BoundExpr&) on every expression hanging off this plan
/// node — scan filter, predicate, residual, projection/group exprs, join
/// keys and aggregate arguments — but not on children's. The single walker
/// shared by EXPLAIN, parallel-safety marking and UDF-read-table
/// collection, so a new expression-bearing Plan field only needs wiring
/// here.
template <typename Fn>
void ForEachPlanExpr(const Plan& p, Fn&& fn) {
  auto walk = [&fn](const BoundExprPtr& e) {
    if (e) fn(static_cast<const BoundExpr&>(*e));
  };
  walk(p.scan_filter);
  walk(p.predicate);
  walk(p.residual);
  for (const auto& e : p.exprs) walk(e);
  for (const auto& e : p.left_keys) walk(e);
  for (const auto& e : p.right_keys) walk(e);
  for (const auto& a : p.aggs) walk(a.arg);
}

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_BOUND_H_
