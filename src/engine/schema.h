// Table schemas and constraints for the execution engine's catalog.
#ifndef MTBASE_ENGINE_SCHEMA_H_
#define MTBASE_ENGINE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace mtbase {
namespace engine {

struct ColumnInfo {
  std::string name;
  sql::TypeDecl type;
  bool not_null = false;
};

struct ForeignKey {
  std::string name;
  std::vector<std::string> columns;
  std::string ref_table;
  std::vector<std::string> ref_columns;
};

/// Check constraints are stored as SQL text and validated on demand (the MT
/// layer rewrites tenant-specific referential constraints into these, see
/// paper Appendix A.1).
struct CheckConstraint {
  std::string name;
  std::string expr_sql;
};

/// Physical partitioning of a table's row store (CREATE TABLE ... PARTITION
/// BY). Routing is a pure function of the partition-column value, so the
/// planner and the verifier can both compute the image of a tenant set
/// without touching storage. The partition column must be INTEGER.
struct PartitionScheme {
  enum class Method : uint8_t { kNone, kHash, kList } method = Method::kNone;
  int column = -1;  // schema slot of the partition column
  std::string column_name;
  int64_t hash_count = 0;                   // kHash: PARTITIONS n
  std::vector<std::vector<int64_t>> lists;  // kList value groups

  bool partitioned() const { return method != Method::kNone; }

  /// Total partition count. List partitioning carries one implicit overflow
  /// partition after the declared value groups.
  int Count() const {
    if (method == Method::kHash) return static_cast<int>(hash_count);
    if (method == Method::kList) return static_cast<int>(lists.size()) + 1;
    return 0;
  }

  /// Partition id for an integer key. Hash mixing is deterministic (a
  /// Fibonacci-hash fold), never seeded: the planner, the verifier and the
  /// storage layer must all agree on the routing.
  int RouteInt(int64_t key) const {
    if (method == Method::kHash) {
      uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull;
      h ^= h >> 32;
      return static_cast<int>(h % static_cast<uint64_t>(hash_count));
    }
    for (size_t g = 0; g < lists.size(); ++g) {
      for (int64_t v : lists[g]) {
        if (v == key) return static_cast<int>(g);
      }
    }
    return static_cast<int>(lists.size());  // overflow partition
  }

  /// Partition id for a row value. NULL routes to partition 0 — safe because
  /// pruning only ever follows equality/IN conjuncts, which never match NULL.
  int RouteValue(const Value& v) const {
    if (v.is_null() || v.type() != TypeId::kInt) return 0;
    return RouteInt(v.int_value());
  }
};

struct TableSchema {
  std::string name;
  std::vector<ColumnInfo> columns;
  std::vector<std::string> primary_key;
  std::vector<ForeignKey> foreign_keys;
  std::vector<CheckConstraint> checks;
  PartitionScheme partition;

  /// Case-insensitive column lookup; -1 if absent.
  int FindColumn(const std::string& col) const;
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_SCHEMA_H_
