// Table schemas and constraints for the execution engine's catalog.
#ifndef MTBASE_ENGINE_SCHEMA_H_
#define MTBASE_ENGINE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace mtbase {
namespace engine {

struct ColumnInfo {
  std::string name;
  sql::TypeDecl type;
  bool not_null = false;
};

struct ForeignKey {
  std::string name;
  std::vector<std::string> columns;
  std::string ref_table;
  std::vector<std::string> ref_columns;
};

/// Check constraints are stored as SQL text and validated on demand (the MT
/// layer rewrites tenant-specific referential constraints into these, see
/// paper Appendix A.1).
struct CheckConstraint {
  std::string name;
  std::string expr_sql;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnInfo> columns;
  std::vector<std::string> primary_key;
  std::vector<ForeignKey> foreign_keys;
  std::vector<CheckConstraint> checks;

  /// Case-insensitive column lookup; -1 if absent.
  int FindColumn(const std::string& col) const;
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_SCHEMA_H_
