// EXPLAIN support: human-readable rendering of physical plans.
#ifndef MTBASE_ENGINE_EXPLAIN_H_
#define MTBASE_ENGINE_EXPLAIN_H_

#include <string>

#include "common/result.h"
#include "engine/bound.h"
#include "engine/catalog.h"
#include "engine/planner.h"
#include "engine/udf.h"
#include "engine/verify/verifier.h"
#include "sql/ast.h"

namespace mtbase {

namespace obs {
class PlanProfiler;
}  // namespace obs

namespace engine {

/// Render a physical plan as an indented operator tree, e.g.
///   Sort (keys: 1 DESC)
///     Aggregate (groups: 1, aggs: SUM, COUNT)
///       HashJoin INNER (2 keys) [parallel: 4 threads]
///         Scan lineitem (filtered) [parallel: 4 threads]
///         Scan orders
///
/// The full line grammar — operator subjects, (details), and the bracketed
/// annotations [nested-loop] / [decorrelated ...] / [udf: ...] /
/// [parallel: ...], with worked examples — is documented in docs/explain.md.
///
/// With `profiles` set — the EXPLAIN (ANALYZE) surface, filled by an
/// instrumented execution of this exact plan tree — every operator line gets
/// a trailing `[actual: ...]` annotation (docs/observability.md).
std::string ExplainPlan(const Plan& plan, const PlannerOptions* options = nullptr,
                        const obs::PlanProfiler* profiles = nullptr);

/// Plan a SELECT against the catalog and explain it (parallel annotations
/// reflect `options`). With `verify_ctx` set — the EXPLAIN (VERIFY) surface —
/// the plan additionally runs through PlanVerifier (regardless of whether
/// enforcement is on) and a final `[verify: ok]` or `[verify: FAILED <codes>]`
/// line is appended; see docs/explain.md.
Result<std::string> ExplainSelect(const Catalog* catalog,
                                  const UdfRegistry* udfs,
                                  const sql::SelectStmt& sel,
                                  const PlannerOptions& options = {},
                                  const verify::VerifyContext* verify_ctx =
                                      nullptr);

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_EXPLAIN_H_
