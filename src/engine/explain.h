// EXPLAIN support: human-readable rendering of physical plans.
#ifndef MTBASE_ENGINE_EXPLAIN_H_
#define MTBASE_ENGINE_EXPLAIN_H_

#include <string>

#include "common/result.h"
#include "engine/bound.h"
#include "engine/catalog.h"
#include "engine/planner.h"
#include "engine/udf.h"
#include "sql/ast.h"

namespace mtbase {
namespace engine {

/// Render a physical plan as an indented operator tree, e.g.
///   Sort (keys: 1 DESC)
///     Aggregate (groups: 1, aggs: SUM, COUNT)
///       HashJoin INNER (2 keys) [parallel: 4 threads]
///         Scan lineitem (filtered) [parallel: 4 threads]
///         Scan orders
///
/// Line grammar — every operator renders on one line as
///
///   <Operator>[ <subject>][ (<details>)][ [<annotation>]]...
///
/// where <subject> is e.g. the scanned table or the join kind, (<details>)
/// are operator parameters (key counts, group counts, sort keys, "filtered",
/// "udf"), and each trailing [<annotation>] names an execution strategy:
///
///   [nested-loop]                          join without equi keys
///   [decorrelated <ORIGIN>[, null-aware]]  sub-query unnested into this join
///                                          (ORIGIN: EXISTS / NOT EXISTS /
///                                          IN / NOT IN / scalar agg)
///   [parallel: N threads]                  operator is parallel-safe and its
///                                          estimated input clears the
///                                          min_parallel_rows gate, so it
///                                          would run morsel-parallel with
///                                          the configured thread budget N
///
/// Sub-plans that escaped decorrelation render as indented "SubPlan (<kind>,
/// per-row)" / "InitPlan (<kind>, cached)" trees under their operator.
std::string ExplainPlan(const Plan& plan, const PlannerOptions* options = nullptr);

/// Plan a SELECT against the catalog and explain it (parallel annotations
/// reflect `options`).
Result<std::string> ExplainSelect(const Catalog* catalog,
                                  const UdfRegistry* udfs,
                                  const sql::SelectStmt& sel,
                                  const PlannerOptions& options = {});

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_EXPLAIN_H_
