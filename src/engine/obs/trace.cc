#include "engine/obs/trace.h"

#include <cstdlib>

namespace mtbase {
namespace obs {

namespace {

Tracer* g_tracer_override = nullptr;

constexpr size_t kMaxStatementChars = 400;

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

// Nonzero ExecStats fields as JSON members, in declaration order. Field
// names mirror the struct so tools/check_trace_schema.py can validate them
// against a fixed list.
void AppendStatsJson(const engine::ExecStats& s, std::string* out) {
  struct Field {
    const char* name;
    uint64_t value;
  };
  const Field fields[] = {
      {"rows_scanned", s.rows_scanned},
      {"rows_joined", s.rows_joined},
      {"udf_calls", s.udf_calls},
      {"udf_cache_hits", s.udf_cache_hits},
      {"udf_shared_cache_hits", s.udf_shared_cache_hits},
      {"udf_cache_misses", s.udf_cache_misses},
      {"udf_parallel_evals", s.udf_parallel_evals},
      {"subquery_execs", s.subquery_execs},
      {"initplan_execs", s.initplan_execs},
      {"decorrelated_execs", s.decorrelated_execs},
      {"statements_parsed", s.statements_parsed},
      {"statements_rewritten", s.statements_rewritten},
      {"statements_planned", s.statements_planned},
      {"prepare_count", s.prepare_count},
      {"plan_cache_hits", s.plan_cache_hits},
      {"rewrite_cache_hits", s.rewrite_cache_hits},
      {"parallel_morsels", s.parallel_morsels},
      {"parallel_joins", s.parallel_joins},
      {"parallel_sorts", s.parallel_sorts},
      {"topn_pushdowns", s.topn_pushdowns},
      {"topn_rows_pruned", s.topn_rows_pruned},
      {"threads_used", s.threads_used},
      {"plans_verified", s.plans_verified},
      {"verify_violations", s.verify_violations},
      {"rewrites_audited", s.rewrites_audited},
      {"audit_violations", s.audit_violations},
  };
  *out += "{";
  bool first = true;
  for (const Field& f : fields) {
    if (f.value == 0) continue;
    if (!first) *out += ", ";
    *out += "\"";
    *out += f.name;
    *out += "\": " + std::to_string(f.value);
    first = false;
  }
  *out += "}";
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void StatementTrace::FinishFromStatus(const Status& st) {
  if (st.ok()) {
    outcome = "ok";
    return;
  }
  const std::string& msg = st.message();
  if (msg.find("plan verification failed") != std::string::npos) {
    outcome = "refused";
  } else if (msg.find("rewrite audit failed") != std::string::npos) {
    outcome = "refused";
    // The audit refusal message carries its codes in parentheses:
    // "rewrite audit failed (DFILTER_MISSING, ...):\n...".
    size_t l = msg.find('(');
    size_t r = msg.find(')');
    if (l != std::string::npos && r != std::string::npos && r > l) {
      codes = msg.substr(l + 1, r - l - 1);
    }
  } else {
    outcome = "error";
  }
  // The failing phase is always the last span recorded: execution aborts at
  // the first non-OK status.
  if (!spans.empty()) {
    spans.back().outcome = outcome;
    spans.back().codes = codes;
  }
}

std::string StatementTrace::ToJson() const {
  std::string out = "{\"seq\": " + std::to_string(seq) + ", \"layer\": \"" +
                    JsonEscape(layer) + "\", \"statement\": \"" +
                    JsonEscape(statement) + "\", \"outcome\": \"" +
                    JsonEscape(outcome) + "\"";
  if (!codes.empty()) out += ", \"codes\": \"" + JsonEscape(codes) + "\"";
  out += ", \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& sp = spans[i];
    if (i > 0) out += ", ";
    out += "{\"phase\": \"" + JsonEscape(sp.phase) + "\", \"duration_ms\": " +
           FormatMs(sp.duration_ms) + ", \"outcome\": \"" +
           JsonEscape(sp.outcome) + "\"";
    if (!sp.codes.empty()) out += ", \"codes\": \"" + JsonEscape(sp.codes) + "\"";
    if (sp.has_stats) {
      out += ", \"stats\": ";
      AppendStatsJson(sp.stats, &out);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

Tracer* Tracer::Global() {
  if (g_tracer_override != nullptr) return g_tracer_override;
  static Tracer* env_tracer = [] {
    const char* path = std::getenv("MTBASE_TRACE");
    if (path == nullptr || *path == '\0') return static_cast<Tracer*>(nullptr);
    Tracer* t = new Tracer(path);
    if (!t->enabled()) {
      delete t;
      return static_cast<Tracer*>(nullptr);
    }
    return t;
  }();
  return env_tracer;
}

void Tracer::SetGlobalForTesting(Tracer* t) { g_tracer_override = t; }

Tracer::Tracer(const std::string& path) {
  file_ = std::fopen(path.c_str(), "a");
}

Tracer::~Tracer() {
  if (file_ != nullptr) std::fclose(file_);
}

void Tracer::Emit(StatementTrace* rec) {
  if (file_ == nullptr || rec == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  rec->seq = ++next_seq_;
  std::string line = rec->ToJson();
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

TraceRecordScope::TraceRecordScope(Tracer* tracer, StatementTrace** slot,
                                   const char* layer,
                                   const std::string& statement) {
  if (tracer == nullptr || !tracer->enabled() || slot == nullptr) return;
  if (*slot != nullptr) {
    // Nested statement at the same layer: append to the enclosing record.
    record_ = *slot;
    return;
  }
  tracer_ = tracer;
  slot_ = slot;
  owning_ = true;
  owned_.layer = layer;
  owned_.statement = statement.size() > kMaxStatementChars
                         ? statement.substr(0, kMaxStatementChars)
                         : statement;
  record_ = &owned_;
  *slot_ = record_;
}

TraceRecordScope::~TraceRecordScope() {
  if (!owning_) return;
  *slot_ = nullptr;
  tracer_->Emit(&owned_);
}

void TraceRecordScope::FinishFromStatus(const Status& st) {
  if (owning_) owned_.FinishFromStatus(st);
}

SpanTimer::SpanTimer(StatementTrace* rec, const char* phase,
                     const engine::ExecStats* live)
    : rec_(rec),
      phase_(phase),
      live_(live),
      t0_(std::chrono::steady_clock::now()) {
  if (rec_ != nullptr && live_ != nullptr) start_ = *live_;
}

SpanTimer::~SpanTimer() {
  if (rec_ == nullptr) return;
  TraceSpan sp;
  sp.phase = phase_;
  sp.duration_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0_)
          .count();
  if (live_ != nullptr) {
    sp.has_stats = true;
    sp.stats = *live_ - start_;
  }
  rec_->spans.push_back(std::move(sp));
}

}  // namespace obs
}  // namespace mtbase
