// Per-operator execution profiles for EXPLAIN (ANALYZE).
//
// A PlanProfiler is attached to an ExecContext for one instrumented
// execution; the profiled ExecutePlan wrapper records one OpProfile per
// physical plan node. The map is owned and mutated by the statement thread
// only: morsel workers never see the profiler (WorkerContext deliberately
// does not copy it) — their counters flow back through the existing
// ExecStats::MergeWorker fold before the wrapper computes its delta, and
// their CPU time is summed in by RunPoolProfiled.
#ifndef MTBASE_ENGINE_OBS_PROFILE_H_
#define MTBASE_ENGINE_OBS_PROFILE_H_

#include <cstdint>
#include <unordered_map>

namespace mtbase {
namespace obs {

/// Actual execution measurements for one physical operator node. All values
/// are inclusive of the node's children (wall/cpu nest like the call stack;
/// counter fields are deltas of monotonic ExecStats counters, which nest the
/// same way). The EXPLAIN renderer derives exclusive morsel/UDF figures by
/// subtracting the immediate children's profiles.
struct OpProfile {
  uint64_t rows_out = 0;     // rows produced (summed over executions)
  uint64_t executions = 0;   // times the node ran (> 1 inside sub-plans)
  uint64_t wall_nanos = 0;   // inclusive wall-clock time
  // Inclusive CPU time: the statement thread's own thread-CPU delta plus
  // pool-worker thread CPU captured by RunPoolProfiled (worker 0 of a
  // region runs on the statement thread and is already in the former).
  uint64_t cpu_nanos = 0;
  uint64_t rows_scanned = 0;    // ExecStats::rows_scanned delta
  uint64_t morsels = 0;         // ExecStats::parallel_morsels delta
  uint64_t udf_calls = 0;       // ExecStats::udf_calls delta
  uint64_t udf_cache_hits = 0;  // ExecStats::udf_cache_hits delta
  // Max workers observed by any parallel region run while this node was the
  // current operator (1 = serial).
  int workers = 1;
};

/// Map from physical plan node to its OpProfile. Keys are type-erased
/// (`const void*`) so this header stays free of engine dependencies; the
/// engine passes `const Plan*`. Not thread-safe by design (statement-thread
/// only, see file comment).
class PlanProfiler {
 public:
  /// Get-or-create the profile for a node.
  OpProfile* Profile(const void* node) { return &profiles_[node]; }

  /// Profile for a node, or null if it never executed.
  const OpProfile* Find(const void* node) const {
    auto it = profiles_.find(node);
    return it == profiles_.end() ? nullptr : &it->second;
  }

  bool empty() const { return profiles_.empty(); }
  void Clear() { profiles_.clear(); }

  /// Peak worker count over all profiled nodes (1 = everything ran serial).
  /// The [analyze: ...] statement footer reports this.
  int MaxWorkers() const {
    int w = 1;
    for (const auto& [node, prof] : profiles_) {
      (void)node;
      if (prof.workers > w) w = prof.workers;
    }
    return w;
  }

 private:
  std::unordered_map<const void*, OpProfile> profiles_;
};

/// CPU time consumed by the calling thread, in nanoseconds
/// (CLOCK_THREAD_CPUTIME_ID; 0 where unavailable).
uint64_t ThreadCpuNanos();

}  // namespace obs
}  // namespace mtbase

#endif  // MTBASE_ENGINE_OBS_PROFILE_H_
