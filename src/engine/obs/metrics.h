// Process-wide metrics registry: named monotonic counters and fixed-bucket
// latency histograms, exportable as Prometheus text format
// (`Database::DumpMetrics`) or JSON (`rewrite_bench --metrics_json=...`).
//
// Naming convention (docs/observability.md): `mtbase_<layer>_<noun>_<unit>`,
// counters end in `_total`, histograms in `_seconds`. Metrics are created on
// first use; reads of never-touched names return zero rather than erroring so
// exporters and tests stay decoupled from feed-point order.
#ifndef MTBASE_ENGINE_OBS_METRICS_H_
#define MTBASE_ENGINE_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mtbase {
namespace obs {

class MetricsRegistry {
 public:
  /// The process-wide registry every feed point writes to.
  static MetricsRegistry* Global();

  /// Upper bounds (seconds) of the fixed latency histogram buckets, ending
  /// with +Inf. Shared by every histogram so quantiles stay comparable.
  static const std::vector<double>& LatencyBuckets();

  /// Increment counter `name` by `delta`.
  void Add(const std::string& name, uint64_t delta = 1);

  /// Record one observation (in seconds) into histogram `name`.
  void Observe(const std::string& name, double seconds);

  /// Current value of a counter (0 if never incremented).
  uint64_t CounterValue(const std::string& name) const;

  /// Observation count of a histogram (0 if never observed).
  uint64_t HistogramCount(const std::string& name) const;

  /// Quantile estimate (q in [0, 1], e.g. 0.5 / 0.95 / 0.99) from the
  /// histogram buckets: the upper bound of the bucket containing the q-th
  /// observation (the +Inf bucket reports the largest finite bound). 0 if the
  /// histogram is empty or unknown.
  double Quantile(const std::string& name, double q) const;

  /// Prometheus text exposition format: TYPE comments, counters, and
  /// cumulative `_bucket{le=...}` / `_sum` / `_count` series per histogram.
  std::string RenderPrometheus() const;

  /// JSON object: {"counters": {...}, "histograms": {name: {"count": N,
  /// "sum": S, "p50": ..., "p95": ..., "p99": ...}}}.
  std::string RenderJson() const;

  /// Drop every metric (unit tests only; the registry is process-global).
  void ResetForTesting();

 private:
  struct Histogram {
    std::vector<uint64_t> buckets;  // one per LatencyBuckets() entry
    uint64_t count = 0;
    double sum = 0;
  };

  double QuantileLocked(const Histogram& h, double q) const;

  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace obs
}  // namespace mtbase

#endif  // MTBASE_ENGINE_OBS_METRICS_H_
