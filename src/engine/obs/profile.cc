#include "engine/obs/profile.h"

#include <ctime>

namespace mtbase {
namespace obs {

uint64_t ThreadCpuNanos() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

}  // namespace obs
}  // namespace mtbase
