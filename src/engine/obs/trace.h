// Per-phase statement tracing, gated by MTBASE_TRACE=<path>.
//
// When enabled, every statement executed through `engine::Database` or
// `mt::Session` appends one JSON-lines record to the trace file, carrying a
// span per phase (parse -> rewrite -> audit -> plan -> verify -> execute)
// with its duration, ExecStats delta, and outcome. The schema is documented
// in docs/observability.md and validated by tools/check_trace_schema.py.
//
// Ownership: each layer keeps one active-record slot (Database and Session
// each have their own). A TraceRecordScope creates and owns the record only
// when its layer's slot is empty; nested statements at the same layer append
// their spans to the enclosing record. Engine statements issued internally
// by the session layer (e.g. complex-scope resolution) emit their own
// layer="engine" records.
#ifndef MTBASE_ENGINE_OBS_TRACE_H_
#define MTBASE_ENGINE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/stats.h"

namespace mtbase {
namespace obs {

/// One timed phase of a statement.
struct TraceSpan {
  std::string phase;        // parse|rewrite|audit|plan|verify|execute
  double duration_ms = 0;
  std::string outcome = "ok";  // ok|refused|error
  std::string codes;           // comma-separated refusal codes, if any
  bool has_stats = false;
  engine::ExecStats stats;     // ExecStats delta over the span
};

/// One JSONL record: a statement and its spans.
struct StatementTrace {
  std::string layer;      // "engine" or "session"
  std::string statement;  // statement text (truncated to 400 chars)
  std::vector<TraceSpan> spans;
  std::string outcome = "ok";  // ok|refused|error
  std::string codes;           // refusal codes when outcome == "refused"
  uint64_t seq = 0;            // assigned by Tracer::Emit

  /// Classify a finished statement from its Status: ok, refused (a static
  /// gate rejected it — plan verification or rewrite audit), or error. Also
  /// marks the last span, which is always the failing phase (execution
  /// aborts at the first non-OK status).
  void FinishFromStatus(const Status& st);

  /// Single-line JSON form (no trailing newline).
  std::string ToJson() const;
};

/// JSONL sink. Thread-safe; assigns a process-wide sequence number per
/// emitted record.
class Tracer {
 public:
  /// Tracer configured by the MTBASE_TRACE environment variable, read once
  /// per process. Null when the variable is unset or empty (tracing off).
  static Tracer* Global();

  /// Override Global() (tests). Pass null to restore the env-derived tracer.
  static void SetGlobalForTesting(Tracer* t);

  explicit Tracer(const std::string& path);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return file_ != nullptr; }

  /// Assign the next sequence number, append rec as one JSONL line, flush.
  void Emit(StatementTrace* rec);

 private:
  std::FILE* file_ = nullptr;
  std::mutex mu_;
  uint64_t next_seq_ = 0;
};

/// RAII statement-record scope bound to a layer's active-record slot: creates
/// and owns a record iff `*slot` was empty, installs it, and on destruction
/// emits it and clears the slot. When the slot was already occupied (a nested
/// statement at the same layer) the scope is a pass-through: record() returns
/// the enclosing record and nothing is emitted. Inactive (record() == null)
/// when the tracer is off.
class TraceRecordScope {
 public:
  TraceRecordScope(Tracer* tracer, StatementTrace** slot, const char* layer,
                   const std::string& statement);
  ~TraceRecordScope();
  TraceRecordScope(const TraceRecordScope&) = delete;
  TraceRecordScope& operator=(const TraceRecordScope&) = delete;

  StatementTrace* record() { return record_; }

  /// Forward to the owned record's FinishFromStatus (no-op when not owning,
  /// so nested statements don't overwrite the enclosing record's outcome).
  void FinishFromStatus(const Status& st);

 private:
  Tracer* tracer_ = nullptr;
  StatementTrace** slot_ = nullptr;
  StatementTrace* record_ = nullptr;
  StatementTrace owned_;
  bool owning_ = false;
};

/// RAII span timer: on destruction appends a span named `phase` to `rec`
/// (no-op when rec is null) carrying the wall duration and, when `live` is
/// given, the ExecStats delta accumulated while the timer was alive.
class SpanTimer {
 public:
  SpanTimer(StatementTrace* rec, const char* phase,
            const engine::ExecStats* live = nullptr);
  ~SpanTimer();
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  StatementTrace* rec_;
  const char* phase_;
  const engine::ExecStats* live_;
  engine::ExecStats start_;
  std::chrono::steady_clock::time_point t0_;
};

/// JSON string escaping shared by the trace and metrics renderers.
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace mtbase

#endif  // MTBASE_ENGINE_OBS_TRACE_H_
