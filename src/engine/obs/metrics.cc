#include "engine/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace mtbase {
namespace obs {

namespace {

// Render a double the way Prometheus clients do: shortest form that
// round-trips, no trailing zeros ("0.005", "1", "2.5").
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
  if (s.find('.') != std::string::npos &&
      s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos) {
    // %.17g can print noise like 0.25000000000000006 for clean inputs that
    // came through arithmetic; prefer the shortest representation that
    // still round-trips.
    for (int prec = 1; prec < 17; ++prec) {
      std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
      double back;
      if (std::sscanf(buf, "%lf", &back) == 1 && back == v) {
        s = buf;
        break;
      }
    }
  }
  return s;
}

}  // namespace

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();
  return g;
}

const std::vector<double>& MetricsRegistry::LatencyBuckets() {
  static const std::vector<double>* kBuckets = new std::vector<double>{
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
      0.1,    0.25,    0.5,    1,    2.5,    5,     10,
      std::numeric_limits<double>::infinity()};
  return *kBuckets;
}

void MetricsRegistry::Add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::Observe(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram& h = histograms_[name];
  const auto& bounds = LatencyBuckets();
  if (h.buckets.empty()) h.buckets.assign(bounds.size(), 0);
  size_t i = 0;
  while (i + 1 < bounds.size() && seconds > bounds[i]) ++i;
  ++h.buckets[i];
  ++h.count;
  h.sum += seconds;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

uint64_t MetricsRegistry::HistogramCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? 0 : it->second.count;
}

double MetricsRegistry::QuantileLocked(const Histogram& h, double q) const {
  if (h.count == 0) return 0;
  const auto& bounds = LatencyBuckets();
  // Rank of the target observation, 1-based, clamped into [1, count].
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(h.count));
  if (rank < 1) rank = 1;
  if (rank > h.count) rank = h.count;
  uint64_t seen = 0;
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    seen += h.buckets[i];
    if (seen >= rank) {
      // The +Inf bucket has no finite upper bound; report the largest
      // finite one as the floor of the estimate.
      if (i + 1 == bounds.size()) return bounds[bounds.size() - 2];
      return bounds[i];
    }
  }
  return bounds[bounds.size() - 2];
}

double MetricsRegistry::Quantile(const std::string& name, double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) return 0;
  return QuantileLocked(it->second, q);
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  const auto& bounds = LatencyBuckets();
  for (const auto& [name, h] : histograms_) {
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      std::string le = i + 1 == bounds.size() ? "+Inf" : FormatDouble(bounds[i]);
      out += name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + FormatDouble(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + FormatDouble(h.sum) +
           ", \"p50\": " + FormatDouble(QuantileLocked(h, 0.5)) +
           ", \"p95\": " + FormatDouble(QuantileLocked(h, 0.95)) +
           ", \"p99\": " + FormatDouble(QuantileLocked(h, 0.99)) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

}  // namespace obs
}  // namespace mtbase
