// Database: the SQL engine facade MTBase's middleware talks to.
//
// Accepts plain SQL text (the output of the MTSQL-to-SQL rewriter), parses,
// plans and executes it. Plays the role of "PostgreSQL" or "System C" in the
// paper's architecture (Figure 4), selected by DbmsProfile.
//
// The execution API is prepared-statement shaped: Prepare() compiles a
// statement once (parse + bind + plan), PreparedPlan::Execute() runs it many
// times with $n / ? parameter bindings. One-shot Execute() is prepare +
// execute. Prepared handles snapshot the catalog/UDF compilation version and
// transparently recompile after DDL.
#ifndef MTBASE_ENGINE_DATABASE_H_
#define MTBASE_ENGINE_DATABASE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "engine/admission.h"
#include "engine/catalog.h"
#include "engine/exec.h"
#include "engine/obs/profile.h"
#include "engine/planner.h"
#include "engine/stats.h"
#include "engine/udf.h"
#include "engine/udf_cache.h"
#include "engine/verify/verifier.h"
#include "sql/ast.h"

namespace mtbase {

namespace obs {
struct StatementTrace;
}  // namespace obs

namespace engine {

class Database;

struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<Row> rows;

  std::string ToString(size_t max_rows = 25) const;
};

/// Bound form of prepared DML: UPDATE/DELETE predicates and assignments and
/// INSERT targets/VALUES expressions, bound once at compile time (defined in
/// database.cc).
struct BoundDmlPlan;

/// A statement compiled once and executable many times. SELECTs (and the
/// SELECT source of INSERT ... SELECT) carry the fully bound physical plan;
/// INSERT/UPDATE/DELETE carry a BoundDmlPlan (targets, predicates and
/// assignment/value expressions bound once — re-execution is bind-free).
/// Execute() revalidates the handle against the database's compilation
/// version and recompiles transparently when DDL moved it; every execution
/// after the first one per compilation counts as ExecStats::plan_cache_hits.
///
/// Concurrency: Execute() is safe to call from many threads on one handle —
/// the compiled form lives in an immutable state block swapped under a
/// handle-level mutex, so the cross-session plan cache (src/mt/plan_cache.h)
/// can share one PreparedPlan between sessions. The handle itself must not
/// be moved while another thread is executing it.
class PreparedPlan {
 public:
  PreparedPlan(PreparedPlan&&) noexcept;
  PreparedPlan& operator=(PreparedPlan&&) noexcept;
  ~PreparedPlan();

  /// Run the statement with `params` bound to $1..$n (left to right for ?).
  Result<ResultSet> Execute(const std::vector<Value>& params = {});

  /// Number of parameter slots the statement references.
  int param_count() const { return param_count_; }
  /// The SQL text this handle was prepared from.
  const std::string& sql() const { return sql_; }
  /// Output column names of the latest successful compile (SELECT only;
  /// empty otherwise).
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }

 private:
  friend class Database;
  PreparedPlan() = default;

  /// Immutable compiled form (plan / bound DML / version), defined in
  /// database.cc; re-compiles swap a fresh block in under mu_.
  struct CompiledState;

  /// (Re)compile from the stored AST into a fresh state block; the caller
  /// holds mu_ and has cleared state_ first so a failed recompile (e.g. a
  /// dropped table) cannot leave a usable handle.
  Result<std::shared_ptr<const CompiledState>> CompileLocked();

  /// The execution body. Execute() wraps it with the observability surface
  /// (statement trace record, execute span, metrics) so the wrapped path
  /// stays readable.
  Result<ResultSet> ExecuteInternal(const std::vector<Value>& params);

  Database* db_ = nullptr;
  std::string sql_;
  sql::Stmt stmt_;
  int param_count_ = 0;
  // Guards state_ swaps (shared_ptr so the handle stays movable).
  std::shared_ptr<std::mutex> mu_ = std::make_shared<std::mutex>();
  std::shared_ptr<const CompiledState> state_;
  std::vector<std::string> column_names_;
};

class Database {
 public:
  /// Reads MTBASE_MAX_CONCURRENT_STATEMENTS into the admission limit
  /// (0 / unset = unlimited).
  explicit Database(DbmsProfile profile = DbmsProfile::kPostgres);

  /// Compile one statement for repeated execution.
  Result<PreparedPlan> Prepare(const std::string& sql);
  /// Same, from an already parsed statement (the MT middleware prepares the
  /// rewritten AST directly and only keeps `sql_text` for display).
  Result<PreparedPlan> PrepareStmt(sql::Stmt stmt, std::string sql_text);

  /// Execute one statement given as SQL text (prepare + execute).
  Result<ResultSet> Execute(const std::string& sql);
  /// Execute a ';'-separated script; returns the last statement's result.
  /// Errors are prefixed with the 1-based statement index.
  Result<ResultSet> ExecuteScript(const std::string& sql);
  /// Execute a parsed statement with optional $n parameter bindings.
  Result<ResultSet> ExecuteStmt(const sql::Stmt& stmt,
                                const std::vector<Value>* params = nullptr);

  /// Validate primary keys, foreign keys and check constraints of `table`
  /// (all tables if empty). Deferred validation keeps bulk loads fast.
  Status ValidateConstraints(const std::string& table = "");

  /// EXPLAIN (ANALYZE) (docs/observability.md): plan `sel`, execute it with
  /// per-operator instrumentation attached, and render the plan with
  /// trailing `[actual: ...]` annotations plus an `[analyze: ...]` statement
  /// footer. With `footer_verify_ctx` set a `[verify: ...]` footer precedes
  /// the analyze footer (the EXPLAIN (VERIFY, ANALYZE) composition — footer
  /// order is fixed: verify, analyze, then the session layer's audit).
  /// `result_out`, if non-null, receives the instrumented run's result set
  /// so callers can prove byte-identity against an uninstrumented run.
  Result<std::string> ExplainAnalyzeSelect(
      const sql::SelectStmt& sel,
      const verify::VerifyContext* footer_verify_ctx = nullptr,
      ResultSet* result_out = nullptr);

  /// Prometheus-text snapshot of the process-wide obs::MetricsRegistry
  /// (docs/observability.md "Metrics").
  std::string DumpMetrics() const;

  /// Bench knob: attach a Database-owned PlanProfiler to every statement
  /// context so executions pay the full ANALYZE instrumentation cost
  /// without rendering anything — rewrite_bench measures
  /// analyze_overhead_pct by toggling this. Off by default; plain execution
  /// never touches the profiler.
  void set_profile_execution(bool on) {
    profile_execution_ = on;
    bench_profiler_.Clear();
  }
  bool profile_execution() const { return profile_execution_; }

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }
  UdfRegistry* udfs() { return &udfs_; }
  /// Replan any UDF bodies invalidated by DDL. Callers that hand the
  /// registry to code dereferencing `Udf::body_plan` outside the execute
  /// path (e.g. `ExplainSelect` with a verify context) must call this first.
  /// Takes the exclusive statement lock when a refresh is actually needed.
  void EnsureUdfPlansFresh();
  /// Cumulative database-wide counters. Concurrent statements each count
  /// into a private per-statement frame (see StatsFrame / CurStats) and
  /// merge here once at statement end, so reading this between statements is
  /// race-free and totals reconcile exactly.
  ExecStats* stats() { return &stats_; }
  DbmsProfile profile() const { return profile_; }
  void set_profile(DbmsProfile p) { profile_ = p; }
  const PlannerOptions& planner_options() const { return planner_options_; }
  /// Replaces the planner options and eagerly replans UDF bodies under the
  /// exclusive statement lock (an options change is DDL-shaped: it moves the
  /// compilation version and must not race in-flight statements).
  void set_planner_options(const PlannerOptions& o);

  /// The ExecStats sink for the current statement on this thread: the
  /// innermost open StatsFrame for this database, or the cumulative stats_
  /// when no frame is open (single-threaded embedder paths).
  ExecStats* CurStats();

  /// RAII per-statement stats frame: counters bump into a thread-local frame
  /// and fold into Database::stats() (under its mutex) at destruction.
  /// Opening a frame while one is already open for the same database on this
  /// thread is a no-op, so nested statements share the outer frame.
  class StatsFrame {
   public:
    explicit StatsFrame(Database* db);
    ~StatsFrame();
    StatsFrame(const StatsFrame&) = delete;
    StatsFrame& operator=(const StatsFrame&) = delete;

   private:
    friend class Database;
    Database* db_;
    StatsFrame* prev_ = nullptr;
    bool active_ = false;
    ExecStats local_;
  };

  /// Inter-query admission gate (MTBASE_MAX_CONCURRENT_STATEMENTS); see
  /// engine/admission.h. Exposed for the serving layer and tests.
  AdmissionController* admission() { return &admission_; }
  void set_max_concurrent_statements(int n) { admission_.set_limit(n); }

  /// Monotonic compilation version: moves on any DDL (tables, views, UDFs)
  /// or planner-option change. Prepared plans compiled at an older version
  /// recompile on their next Execute.
  uint64_t compilation_version() const {
    return catalog_.version() + udfs_.version() + options_version_;
  }

  /// Opt into the cross-statement result cache for immutable UDFs
  /// (docs/ARCHITECTURE.md "Shared dictionary caches"). Off by default at
  /// the engine layer — per-statement caching stays the plain-SQL engine's
  /// documented behavior — and enabled by the MT middleware, whose
  /// conversion dictionaries only change through registration and DML (both
  /// move the cache epoch). Idempotent: only the first (enabling) call
  /// applies `capacity`; resize later via shared_udf_cache().
  void EnableSharedUdfCache(size_t capacity = SharedUdfCache::kDefaultCapacity);
  bool shared_udf_cache_enabled() const { return shared_udf_cache_enabled_; }
  SharedUdfCache* shared_udf_cache() { return &shared_udf_cache_; }

  /// External component of the shared cache's epoch, bumped by the MT layer
  /// on conversion-pair (re-)registration.
  void BumpSharedUdfEpoch() { ++shared_udf_external_epoch_; }

  /// The epoch a result cached now would be valid under: catalog/UDF DDL
  /// version + the data versions of the tables UDF bodies actually read +
  /// external bumps. Deliberately excluded: planner-option changes (they
  /// change plans, not immutable results) and DML on tables no UDF body
  /// reads (routine tenant-data inserts must not evict a warm dictionary
  /// cache).
  UdfCacheEpoch CurrentUdfCacheEpoch() const;

  /// Assumptions PlanVerifier may make about plans compiled from now on —
  /// on this thread: the context is thread-local so concurrent sessions
  /// cannot cross-contaminate each other's expected datasets. The MT
  /// middleware refreshes it before every statement compile with the
  /// expected dataset D' (src/mt/session.cc); a plain-SQL embedder keeps the
  /// default (engine-level checks only). See verify/verifier.h.
  void set_verify_context(verify::VerifyContext ctx) {
    verify_ctx_ = std::move(ctx);
  }
  const verify::VerifyContext& verify_context() const { return verify_ctx_; }

  /// Test-only: mutate each plan after planning, before verification —
  /// lets negative suites deliberately break invariants and assert the
  /// verifier refuses the plan. Pass nullptr to uninstall.
  void set_plan_mutation_hook_for_testing(std::function<void(Plan*)> hook) {
    plan_mutation_hook_ = std::move(hook);
  }

 private:
  friend class PreparedPlan;

  /// RAII statement-scope DDL guard over ddl_mu_: DDL and planner-option
  /// changes take it exclusive, every other statement shared — so catalog /
  /// UDF-registry / planner-option reads during compile and execution never
  /// race a concurrent DDL. Re-entrant per thread: nested statements (UDF
  /// body planning, complex-scope resolution, INSERT ... SELECT) piggyback
  /// on the outer guard instead of self-deadlocking.
  class StatementGuard {
   public:
    StatementGuard(Database* db, bool exclusive);
    ~StatementGuard();
    StatementGuard(const StatementGuard&) = delete;
    StatementGuard& operator=(const StatementGuard&) = delete;

   private:
    Database* db_;
    bool nested_ = false;
    bool exclusive_ = false;
    const Database* prev_owner_ = nullptr;
    int prev_depth_ = 0;
  };

  /// RAII admission pass: the outermost engine statement on this thread
  /// acquires an admission ticket (blocking when the limit is reached,
  /// aborting via the thread's ScopedCancelToken); nested statements ride
  /// the outer pass.
  class AdmissionPass {
   public:
    explicit AdmissionPass(Database* db);
    ~AdmissionPass();
    AdmissionPass(const AdmissionPass&) = delete;
    AdmissionPass& operator=(const AdmissionPass&) = delete;

    const Status& status() const { return status_; }

   private:
    Database* db_;
    bool outermost_ = false;
    Status status_;
  };

  /// True for statement kinds that mutate catalog/UDF/option state and
  /// therefore need the exclusive statement lock.
  static bool IsDdlStmt(const sql::Stmt& stmt);

  Result<ResultSet> ExecuteSelect(const sql::SelectStmt& sel,
                                  const std::vector<Value>* params = nullptr);
  /// Bind a DML statement's expressions once for repeated execution
  /// (PreparedPlan::Compile counts the compilation).
  Result<std::unique_ptr<BoundDmlPlan>> BindDml(const sql::Stmt& stmt);
  /// `select_plan` carries the precompiled INSERT ... SELECT source, if any.
  Status ExecuteBoundInsert(const BoundDmlPlan& dml, const Plan* select_plan,
                            const std::vector<Value>* params);
  Result<int64_t> ExecuteBoundUpdate(const BoundDmlPlan& dml,
                                     const std::vector<Value>* params);
  Result<int64_t> ExecuteBoundDelete(const BoundDmlPlan& dml,
                                     const std::vector<Value>* params);
  Status ExecuteCreateTable(const sql::CreateTableStmt& ct);
  Status ExecuteCreateFunction(const sql::CreateFunctionStmt& cf);
  /// Ad-hoc INSERT ... SELECT (plans the source per execution; prepared
  /// inserts and VALUES go through BindDml / ExecuteBoundInsert).
  Status ExecuteInsert(const sql::InsertStmt& ins,
                       const std::vector<Value>* params);
  Status ValidateTable(const Table& table);

  /// Replan every UDF body: body plans hold raw Table pointers and embed
  /// planner options, so catalog DDL or an options change would otherwise
  /// leave them dangling/stale. DDL statements refresh eagerly while still
  /// holding the exclusive statement lock (concurrent statements under the
  /// shared lock must never observe a body plan mid-replan); the lazy
  /// `udf_plans_stale_` checks remain as a safety net for single-threaded
  /// embedders that mutate the catalog directly. Bodies that no longer plan
  /// (dropped objects) become null — executing them errors cleanly — until a
  /// later DDL makes them valid again.
  void RefreshUdfPlans();

  /// Recollect the set of tables any UDF body plan scans (the shared-cache
  /// epoch's data component). Called whenever body plans change.
  void RebuildUdfReadTables();

  /// Run the test mutation hook, then — when verification is enforced
  /// (debug builds / MTBASE_VERIFY_PLANS=1) — prove the plan's invariants
  /// under the current verify context, counting ExecStats::plans_verified
  /// and refusing violating plans (ExecStats::verify_violations).
  Status VerifyPlan(Plan* plan);

  ExecContext MakeContext(const std::vector<Value>* params = nullptr);

  Catalog catalog_;
  UdfRegistry udfs_;
  ExecStats stats_;
  /// Guards stats_ merges (StatsFrame destructors from concurrent threads).
  std::mutex stats_mu_;
  DbmsProfile profile_;
  PlannerOptions planner_options_;
  std::atomic<uint64_t> options_version_{0};
  std::atomic<bool> udf_plans_stale_{false};
  SharedUdfCache shared_udf_cache_;
  bool shared_udf_cache_enabled_ = false;
  std::atomic<uint64_t> shared_udf_external_epoch_{0};
  /// Tables scanned by any UDF body plan (deduplicated). Raw pointers are
  /// safe for the same reason body plans' are: catalog DDL marks
  /// udf_plans_stale_, and the set is rebuilt with the plans before the
  /// next execution (CurrentUdfCacheEpoch falls back to the whole-catalog
  /// data version while stale).
  std::vector<const Table*> udf_read_tables_;
  /// Thread-local: concurrent sessions compile under their own expected
  /// datasets without contaminating each other (a thread that never set a
  /// context verifies with engine-level checks only).
  static thread_local verify::VerifyContext verify_ctx_;
  std::function<void(Plan*)> plan_mutation_hook_;
  /// Engine-layer trace slot (obs::TraceRecordScope): the active statement's
  /// trace record, or null outside a traced statement. Nested engine
  /// statements (e.g. UDF refresh inside Execute) append spans to the
  /// enclosing record instead of emitting their own. Thread-local so
  /// concurrent statements trace independently.
  static thread_local obs::StatementTrace* active_trace_;
  /// Reused profiler for set_profile_execution (bench overhead knob).
  obs::PlanProfiler bench_profiler_;
  bool profile_execution_ = false;

  /// Statement-scope reader/writer lock (see StatementGuard).
  std::shared_mutex ddl_mu_;
  AdmissionController admission_;

  // Thread-local statement-nesting state (definitions in database.cc).
  static thread_local StatsFrame* tl_stats_frame_;
  static thread_local const Database* tl_guard_owner_;
  static thread_local int tl_guard_depth_;
  static thread_local int tl_admission_depth_;
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_DATABASE_H_
