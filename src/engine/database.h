// Database: the SQL engine facade MTBase's middleware talks to.
//
// Accepts plain SQL text (the output of the MTSQL-to-SQL rewriter), parses,
// plans and executes it. Plays the role of "PostgreSQL" or "System C" in the
// paper's architecture (Figure 4), selected by DbmsProfile.
#ifndef MTBASE_ENGINE_DATABASE_H_
#define MTBASE_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/catalog.h"
#include "engine/exec.h"
#include "engine/planner.h"
#include "engine/stats.h"
#include "engine/udf.h"
#include "sql/ast.h"

namespace mtbase {
namespace engine {

struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<Row> rows;

  std::string ToString(size_t max_rows = 25) const;
};

class Database {
 public:
  explicit Database(DbmsProfile profile = DbmsProfile::kPostgres)
      : profile_(profile) {}

  /// Execute one statement given as SQL text.
  Result<ResultSet> Execute(const std::string& sql);
  /// Execute a ';'-separated script; returns the last statement's result.
  Result<ResultSet> ExecuteScript(const std::string& sql);
  /// Execute a parsed statement.
  Result<ResultSet> ExecuteStmt(const sql::Stmt& stmt);

  /// Validate primary keys, foreign keys and check constraints of `table`
  /// (all tables if empty). Deferred validation keeps bulk loads fast.
  Status ValidateConstraints(const std::string& table = "");

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }
  UdfRegistry* udfs() { return &udfs_; }
  ExecStats* stats() { return &stats_; }
  DbmsProfile profile() const { return profile_; }
  void set_profile(DbmsProfile p) { profile_ = p; }
  const PlannerOptions& planner_options() const { return planner_options_; }
  void set_planner_options(const PlannerOptions& o) { planner_options_ = o; }

 private:
  Result<ResultSet> ExecuteSelect(const sql::SelectStmt& sel);
  Status ExecuteCreateTable(const sql::CreateTableStmt& ct);
  Status ExecuteCreateFunction(const sql::CreateFunctionStmt& cf);
  Status ExecuteInsert(const sql::InsertStmt& ins);
  Result<int64_t> ExecuteUpdate(const sql::UpdateStmt& up);
  Result<int64_t> ExecuteDelete(const sql::DeleteStmt& del);
  Status ValidateTable(const Table& table);

  ExecContext MakeContext();

  Catalog catalog_;
  UdfRegistry udfs_;
  ExecStats stats_;
  DbmsProfile profile_;
  PlannerOptions planner_options_;
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_DATABASE_H_
