#include "engine/udf.h"

#include "common/str_util.h"

namespace mtbase {
namespace engine {

Status UdfRegistry::Register(std::unique_ptr<Udf> udf) {
  std::string key = ToLowerCopy(udf->name);
  if (udfs_.count(key)) {
    return Status::AlreadyExists("function " + udf->name + " already exists");
  }
  udfs_[key] = std::move(udf);
  ++version_;
  return Status::OK();
}

std::vector<Udf*> UdfRegistry::All() {
  std::vector<Udf*> out;
  out.reserve(udfs_.size());
  for (auto& [key, udf] : udfs_) out.push_back(udf.get());
  return out;
}

const Udf* UdfRegistry::Find(const std::string& name) const {
  auto it = udfs_.find(ToLowerCopy(name));
  return it == udfs_.end() ? nullptr : it->second.get();
}

}  // namespace engine
}  // namespace mtbase
