// Shared (cross-statement) result cache for immutable UDFs.
//
// The per-statement cache in ExecContext dies with its statement, so every
// prepared-statement re-execution re-evaluates the same dictionary lookups
// (toUniversal/fromUniversal bodies joining Tenant x CurrencyTransform,
// paper section 4). This cache survives statements: it is owned by the
// Database, shared by every session of the middleware in front of it, and
// keyed by (epoch, function, argument values). The epoch folds together
// everything a cached result can depend on — the engine compilation version
// (DDL, planner options), the catalog data version (any row mutation:
// dictionaries only change via registration or DML) and an external epoch
// the MT middleware bumps on conversion-pair (re-)registration — so a moved
// epoch logically evicts everything at once.
//
// Thread safety: a single mutex guards the map + LRU list. Morsel workers
// only take it on a per-worker-cache miss (once per distinct key per worker
// and statement); the hot path — repeated calls with the same arguments —
// stays in the worker's own unsynchronized cache.
#ifndef MTBASE_ENGINE_UDF_CACHE_H_
#define MTBASE_ENGINE_UDF_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/value.h"

namespace mtbase {
namespace engine {

/// Everything a shared-cached UDF result depends on. Compared field-wise;
/// any component moving invalidates the whole cache. Planner options are
/// deliberately not a component: they change plans, not immutable results.
struct UdfCacheEpoch {
  uint64_t compilation = 0;  // catalog + UDF registry DDL versions
  uint64_t data = 0;         // Catalog::data_version() (row mutations)
  uint64_t external = 0;     // middleware conversion (re-)registrations

  bool operator==(const UdfCacheEpoch& o) const {
    return compilation == o.compilation && data == o.data &&
           external == o.external;
  }
  bool operator!=(const UdfCacheEpoch& o) const { return !(*this == o); }
};

class SharedUdfCache {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit SharedUdfCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Look `key` up under `epoch`. A stale epoch clears the cache first (the
  /// underlying dictionaries changed), so a hit is never stale.
  bool Lookup(const UdfCacheEpoch& epoch, const std::string& key, Value* out);

  /// Insert (no-op if the key is already present); evicts the least
  /// recently used entry beyond the capacity bound.
  void Insert(const UdfCacheEpoch& epoch, const std::string& key, Value v);

  void Clear();

  size_t size() const;
  size_t capacity() const;
  void set_capacity(size_t capacity);
  /// The epoch of the currently cached entries (all entries share it).
  UdfCacheEpoch epoch() const;

 private:
  /// Drop everything if `epoch` differs from the entries' epoch. Caller
  /// holds mu_.
  void ValidateLocked(const UdfCacheEpoch& epoch);

  struct Entry {
    std::string key;
    Value value;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  UdfCacheEpoch epoch_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_UDF_CACHE_H_
