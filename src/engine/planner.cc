#include "engine/planner.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/str_util.h"
#include "engine/exec.h"
#include "engine/parallel/parallel.h"
#include "sql/printer.h"

namespace mtbase {
namespace engine {

namespace {

bool IsAggName(const std::string& f) {
  return EqualsIgnoreCase(f, "COUNT") || EqualsIgnoreCase(f, "SUM") ||
         EqualsIgnoreCase(f, "AVG") || EqualsIgnoreCase(f, "MIN") ||
         EqualsIgnoreCase(f, "MAX");
}

AggFunc AggFuncOf(const sql::Expr& e) {
  if (EqualsIgnoreCase(e.fname, "COUNT")) {
    if (!e.args.empty() && e.args[0]->kind == sql::ExprKind::kStar) {
      return AggFunc::kCountStar;
    }
    return AggFunc::kCount;
  }
  if (EqualsIgnoreCase(e.fname, "SUM")) return AggFunc::kSum;
  if (EqualsIgnoreCase(e.fname, "AVG")) return AggFunc::kAvg;
  if (EqualsIgnoreCase(e.fname, "MIN")) return AggFunc::kMin;
  return AggFunc::kMax;
}

struct BindScope {
  const std::vector<ColumnMeta>* cols = nullptr;
  const BindScope* parent = nullptr;
};

/// Resolve within one scope level: >= 0 slot, -1 not found, error if ambiguous.
Result<int> ResolveAtLevel(const std::string& qual, const std::string& name,
                           const std::vector<ColumnMeta>& cols) {
  int found = -1;
  for (size_t i = 0; i < cols.size(); ++i) {
    const ColumnMeta& m = cols[i];
    if (!qual.empty() && !EqualsIgnoreCase(qual, m.qualifier)) continue;
    if (!EqualsIgnoreCase(name, m.name)) continue;
    if (found >= 0) {
      return Status::InvalidArgument(
          "ambiguous column reference: " +
          (qual.empty() ? name : qual + "." + name));
    }
    found = static_cast<int>(i);
  }
  return found;
}

bool ResolvableAtLevel(const std::string& qual, const std::string& name,
                       const std::vector<ColumnMeta>& cols) {
  for (const ColumnMeta& m : cols) {
    if (!qual.empty() && !EqualsIgnoreCase(qual, m.qualifier)) continue;
    if (EqualsIgnoreCase(name, m.name)) return true;
  }
  return false;
}

/// Post-aggregation rebinding: printed text of group keys / aggregate calls
/// mapped to slots of the aggregate output layout.
struct AggEnv {
  std::unordered_map<std::string, int> slots;
};

void SplitAndClone(const sql::Expr& e, std::vector<sql::ExprPtr>* out) {
  if (e.kind == sql::ExprKind::kBinary && e.op == "AND") {
    SplitAndClone(*e.args[0], out);
    SplitAndClone(*e.args[1], out);
    return;
  }
  out->push_back(e.Clone());
}

// Select-list aliases are usable in GROUP BY / HAVING / ORDER BY, but only
// as bare identifiers (like PostgreSQL), never inside expressions. When an
// alias shadows an input column the alias wins — the "outer-more expression"
// resolution the MTSQL rewrite relies on (paper section 3.1, GROUP-BY note).
void SubstituteAliases(
    sql::ExprPtr* e,
    const std::unordered_map<std::string, const sql::Expr*>& aliases) {
  sql::Expr& x = **e;
  if (x.kind != sql::ExprKind::kColumnRef || !x.qualifier.empty()) return;
  auto it = aliases.find(ToLowerCopy(x.column));
  if (it != aliases.end()) *e = it->second->Clone();
}

void CollectAggCalls(const sql::Expr& e, std::vector<const sql::Expr*>* out) {
  if (e.kind == sql::ExprKind::kFunction && IsAggName(e.fname)) {
    out->push_back(&e);
    return;  // nested aggregates are rejected when binding the argument
  }
  for (const auto& a : e.args) CollectAggCalls(*a, out);
  if (e.case_operand) CollectAggCalls(*e.case_operand, out);
  if (e.else_expr) CollectAggCalls(*e.else_expr, out);
  // Aggregates inside sub-queries belong to the sub-query.
}

bool ContainsSubquery(const sql::Expr& e) {
  if (e.subquery) return true;
  for (const auto& a : e.args) {
    if (ContainsSubquery(*a)) return true;
  }
  if (e.case_operand && ContainsSubquery(*e.case_operand)) return true;
  if (e.else_expr && ContainsSubquery(*e.else_expr)) return true;
  return false;
}

BoundExprPtr MakeSlot(int slot) {
  auto b = std::make_unique<BoundExpr>();
  b->kind = BoundExpr::Kind::kSlot;
  b->slot = slot;
  return b;
}

BoundExprPtr MakeBoundLit(Value v) {
  auto b = std::make_unique<BoundExpr>();
  b->kind = BoundExpr::Kind::kLiteral;
  b->literal = std::move(v);
  return b;
}

BoundExprPtr AndBound(BoundExprPtr a, BoundExprPtr b) {
  if (!a) return b;
  if (!b) return a;
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExpr::Kind::kBinary;
  e->bin_op = BinOp::kAnd;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

// Attach a predicate that only reads one join input directly to that input:
// onto a base-table scan's filter (where partition pruning and index
// selection can see it), as a Filter node otherwise.
void AttachFilterToInput(PlanPtr* input, BoundExprPtr pred) {
  Plan& p = **input;
  if (p.kind == Plan::Kind::kScan && p.table != nullptr) {
    p.scan_filter = AndBound(std::move(p.scan_filter), std::move(pred));
    return;
  }
  auto filter = std::make_unique<Plan>();
  filter->kind = Plan::Kind::kFilter;
  filter->predicate = std::move(pred);
  filter->columns = p.columns;
  filter->left = std::move(*input);
  *input = std::move(filter);
}

// Slot footprint of a bound predicate, for sinking it below a join. False
// when the predicate must not move at all: outer slots, UDF params and
// correlated sub-plans mean different things depending on where the
// expression evaluates.
bool SinkableSlotRange(const BoundExpr& e, int* max_slot) {
  switch (e.kind) {
    case BoundExpr::Kind::kOuterSlot:
    case BoundExpr::Kind::kParam:
      return false;
    case BoundExpr::Kind::kSlot:
      if (e.slot > *max_slot) *max_slot = e.slot;
      break;
    default:
      break;
  }
  if (e.correlated) return false;
  for (const auto& a : e.args) {
    if (!SinkableSlotRange(*a, max_slot)) return false;
  }
  if (e.case_operand && !SinkableSlotRange(*e.case_operand, max_slot)) {
    return false;
  }
  if (e.else_expr && !SinkableSlotRange(*e.else_expr, max_slot)) return false;
  return true;
}

// ---------------------------------------------------------------------------

class PlannerImpl {
 public:
  PlannerImpl(const Catalog* catalog, const UdfRegistry* udfs,
              const PlannerOptions& options)
      : catalog_(catalog), udfs_(udfs), options_(options) {}

  Result<PlanPtr> PlanSelect(const sql::SelectStmt& sel,
                             const BindScope* parent);
  Result<BoundExprPtr> Bind(const sql::Expr& e, const BindScope* scope,
                            const AggEnv* agg);

 private:
  struct RelInfo {
    PlanPtr plan;
    std::vector<ColumnMeta> cols;
  };

  struct RefAnalysis {
    std::unordered_set<int> rels;
    bool outer = false;
    bool unresolved = false;
  };

  Result<RelInfo> PlanFromItem(const sql::TableRef& t, const BindScope* parent);

  Result<std::vector<ColumnMeta>> OutputColsOfTref(const sql::TableRef& t);
  Result<std::vector<ColumnMeta>> OutputColsOfSelect(const sql::SelectStmt& s);

  Status CollectFreeRefs(const sql::Expr& e,
                         std::vector<const std::vector<ColumnMeta>*>* chain,
                         std::vector<const sql::Expr*>* out);
  Status CollectFreeRefsSelect(const sql::SelectStmt& s,
                               std::vector<const std::vector<ColumnMeta>*>* chain,
                               std::vector<const sql::Expr*>* out);

  Result<RefAnalysis> Analyze(const sql::Expr& e,
                              const std::vector<ColumnMeta>& level_cols,
                              const std::vector<int>& rel_of_slot,
                              const BindScope* parent);

  /// True if any free ref of the sub-query resolves against level_cols.
  Result<bool> SubqueriesRefLevel(const sql::Expr& e,
                                  const std::vector<ColumnMeta>& level_cols);
  Result<bool> SelectRefsLevel(const sql::SelectStmt& s,
                               const std::vector<ColumnMeta>& level_cols);

  Result<bool> TryUnnestExistsOrIn(const sql::Expr& conj,
                                   const std::vector<ColumnMeta>& level_cols,
                                   const BindScope* parent, PlanPtr* cur,
                                   std::vector<ColumnMeta>* work_cols);
  Result<bool> TryUnnestScalarAgg(const sql::Expr& conj,
                                  const std::vector<ColumnMeta>& level_cols,
                                  const BindScope* parent, PlanPtr* cur,
                                  std::vector<ColumnMeta>* work_cols);

  const Catalog* catalog_;
  const UdfRegistry* udfs_;
  PlannerOptions options_;
  int unnest_counter_ = 0;
};

Result<std::vector<ColumnMeta>> PlannerImpl::OutputColsOfTref(
    const sql::TableRef& t) {
  std::vector<ColumnMeta> out;
  switch (t.kind) {
    case sql::TableRef::Kind::kBase: {
      const std::string& binding = t.BindingName();
      if (const Table* table = catalog_->FindTable(t.name)) {
        for (const auto& c : table->schema().columns) {
          out.push_back({binding, c.name});
        }
        return out;
      }
      if (const ViewDef* view = catalog_->FindView(t.name)) {
        MTB_ASSIGN_OR_RETURN(auto cols, OutputColsOfSelect(*view->select));
        for (auto& c : cols) out.push_back({binding, c.name});
        return out;
      }
      return Status::NotFound("relation " + t.name + " does not exist");
    }
    case sql::TableRef::Kind::kSubquery: {
      MTB_ASSIGN_OR_RETURN(auto cols, OutputColsOfSelect(*t.subquery));
      for (auto& c : cols) out.push_back({t.alias, c.name});
      return out;
    }
    case sql::TableRef::Kind::kJoin: {
      MTB_ASSIGN_OR_RETURN(auto l, OutputColsOfTref(*t.left));
      MTB_ASSIGN_OR_RETURN(auto r, OutputColsOfTref(*t.right));
      for (auto& c : l) out.push_back(std::move(c));
      for (auto& c : r) out.push_back(std::move(c));
      return out;
    }
  }
  return Status::Internal("bad table ref");
}

Result<std::vector<ColumnMeta>> PlannerImpl::OutputColsOfSelect(
    const sql::SelectStmt& s) {
  std::vector<ColumnMeta> scope_cols;
  for (const auto& t : s.from) {
    MTB_ASSIGN_OR_RETURN(auto cols, OutputColsOfTref(*t));
    for (auto& c : cols) scope_cols.push_back(std::move(c));
  }
  std::vector<ColumnMeta> out;
  for (const auto& item : s.items) {
    if (item.expr->kind == sql::ExprKind::kStar) {
      for (const auto& c : scope_cols) {
        if (!item.expr->qualifier.empty() &&
            !EqualsIgnoreCase(item.expr->qualifier, c.qualifier)) {
          continue;
        }
        out.push_back({"", c.name});
      }
      continue;
    }
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == sql::ExprKind::kColumnRef
                 ? item.expr->column
                 : sql::PrintExpr(*item.expr);
    }
    out.push_back({"", std::move(name)});
  }
  return out;
}

Status PlannerImpl::CollectFreeRefs(
    const sql::Expr& e, std::vector<const std::vector<ColumnMeta>*>* chain,
    std::vector<const sql::Expr*>* out) {
  if (e.kind == sql::ExprKind::kColumnRef) {
    for (const auto* cols : *chain) {
      if (ResolvableAtLevel(e.qualifier, e.column, *cols)) return Status::OK();
    }
    out->push_back(&e);
    return Status::OK();
  }
  for (const auto& a : e.args) {
    MTB_RETURN_IF_ERROR(CollectFreeRefs(*a, chain, out));
  }
  if (e.case_operand) {
    MTB_RETURN_IF_ERROR(CollectFreeRefs(*e.case_operand, chain, out));
  }
  if (e.else_expr) {
    MTB_RETURN_IF_ERROR(CollectFreeRefs(*e.else_expr, chain, out));
  }
  if (e.subquery) {
    MTB_RETURN_IF_ERROR(CollectFreeRefsSelect(*e.subquery, chain, out));
  }
  return Status::OK();
}

Status PlannerImpl::CollectFreeRefsSelect(
    const sql::SelectStmt& s, std::vector<const std::vector<ColumnMeta>*>* chain,
    std::vector<const sql::Expr*>* out) {
  std::vector<ColumnMeta> scope_cols;
  for (const auto& t : s.from) {
    MTB_ASSIGN_OR_RETURN(auto cols, OutputColsOfTref(*t));
    for (auto& c : cols) scope_cols.push_back(std::move(c));
    if (t->kind == sql::TableRef::Kind::kSubquery) {
      MTB_RETURN_IF_ERROR(CollectFreeRefsSelect(*t->subquery, chain, out));
    }
  }
  // Select aliases are resolvable inside GROUP BY / HAVING / ORDER BY.
  for (const auto& item : s.items) {
    if (!item.alias.empty()) scope_cols.push_back({"", item.alias});
  }
  chain->push_back(&scope_cols);
  Status st = Status::OK();
  auto walk = [&](const sql::Expr& e) {
    if (st.ok()) st = CollectFreeRefs(e, chain, out);
  };
  for (const auto& item : s.items) {
    if (item.expr->kind != sql::ExprKind::kStar) walk(*item.expr);
  }
  if (s.where) walk(*s.where);
  for (const auto& g : s.group_by) walk(*g);
  if (s.having) walk(*s.having);
  for (const auto& o : s.order_by) walk(*o.expr);
  std::vector<const sql::TableRef*> stack;
  for (const auto& t : s.from) stack.push_back(t.get());
  while (!stack.empty() && st.ok()) {
    const sql::TableRef* t = stack.back();
    stack.pop_back();
    if (t->kind == sql::TableRef::Kind::kJoin) {
      if (t->join_cond) walk(*t->join_cond);
      stack.push_back(t->left.get());
      stack.push_back(t->right.get());
    }
  }
  chain->pop_back();
  return st;
}

Result<PlannerImpl::RefAnalysis> PlannerImpl::Analyze(
    const sql::Expr& e, const std::vector<ColumnMeta>& level_cols,
    const std::vector<int>& rel_of_slot, const BindScope* parent) {
  std::vector<const std::vector<ColumnMeta>*> chain;
  std::vector<const sql::Expr*> refs;
  MTB_RETURN_IF_ERROR(CollectFreeRefs(e, &chain, &refs));
  RefAnalysis out;
  for (const sql::Expr* r : refs) {
    MTB_ASSIGN_OR_RETURN(int slot,
                         ResolveAtLevel(r->qualifier, r->column, level_cols));
    if (slot >= 0) {
      out.rels.insert(rel_of_slot[static_cast<size_t>(slot)]);
      continue;
    }
    bool found_outer = false;
    for (const BindScope* s = parent; s != nullptr; s = s->parent) {
      if (ResolvableAtLevel(r->qualifier, r->column, *s->cols)) {
        found_outer = true;
        break;
      }
    }
    if (found_outer) {
      out.outer = true;
    } else {
      out.unresolved = true;
    }
  }
  return out;
}

Result<bool> PlannerImpl::SubqueriesRefLevel(
    const sql::Expr& e, const std::vector<ColumnMeta>& level_cols) {
  if (e.subquery) {
    MTB_ASSIGN_OR_RETURN(bool refs, SelectRefsLevel(*e.subquery, level_cols));
    if (refs) return true;
  }
  for (const auto& a : e.args) {
    MTB_ASSIGN_OR_RETURN(bool refs, SubqueriesRefLevel(*a, level_cols));
    if (refs) return true;
  }
  if (e.case_operand) {
    MTB_ASSIGN_OR_RETURN(bool refs, SubqueriesRefLevel(*e.case_operand, level_cols));
    if (refs) return true;
  }
  if (e.else_expr) {
    MTB_ASSIGN_OR_RETURN(bool refs, SubqueriesRefLevel(*e.else_expr, level_cols));
    if (refs) return true;
  }
  return false;
}

Result<bool> PlannerImpl::SelectRefsLevel(
    const sql::SelectStmt& s, const std::vector<ColumnMeta>& level_cols) {
  std::vector<const std::vector<ColumnMeta>*> chain;
  std::vector<const sql::Expr*> refs;
  MTB_RETURN_IF_ERROR(CollectFreeRefsSelect(s, &chain, &refs));
  for (const sql::Expr* r : refs) {
    if (ResolvableAtLevel(r->qualifier, r->column, level_cols)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// FROM items
// ---------------------------------------------------------------------------

Result<PlannerImpl::RelInfo> PlannerImpl::PlanFromItem(const sql::TableRef& t,
                                                       const BindScope* parent) {
  RelInfo info;
  switch (t.kind) {
    case sql::TableRef::Kind::kBase: {
      const std::string& binding = t.BindingName();
      if (const Table* table = catalog_->FindTable(t.name)) {
        auto scan = std::make_unique<Plan>();
        scan->kind = Plan::Kind::kScan;
        scan->table = table;
        for (const auto& c : table->schema().columns) {
          scan->columns.push_back({binding, c.name});
        }
        info.cols = scan->columns;
        info.plan = std::move(scan);
        return info;
      }
      if (const ViewDef* view = catalog_->FindView(t.name)) {
        MTB_ASSIGN_OR_RETURN(info.plan, PlanSelect(*view->select, nullptr));
        for (auto& c : info.plan->columns) c.qualifier = binding;
        info.cols = info.plan->columns;
        return info;
      }
      return Status::NotFound("relation " + t.name + " does not exist");
    }
    case sql::TableRef::Kind::kSubquery: {
      MTB_ASSIGN_OR_RETURN(info.plan, PlanSelect(*t.subquery, parent));
      for (auto& c : info.plan->columns) c.qualifier = t.alias;
      info.cols = info.plan->columns;
      return info;
    }
    case sql::TableRef::Kind::kJoin: {
      MTB_ASSIGN_OR_RETURN(RelInfo li, PlanFromItem(*t.left, parent));
      MTB_ASSIGN_OR_RETURN(RelInfo ri, PlanFromItem(*t.right, parent));
      auto join = std::make_unique<Plan>();
      join->kind = Plan::Kind::kJoin;
      join->join_kind =
          t.join_type == sql::JoinType::kLeft ? JoinKind::kLeft : JoinKind::kInner;
      std::vector<ColumnMeta> concat = li.cols;
      for (const auto& c : ri.cols) concat.push_back(c);
      BindScope lscope{&li.cols, parent};
      BindScope rscope{&ri.cols, parent};
      BindScope cscope{&concat, parent};
      std::vector<sql::ExprPtr> conjs;
      if (t.join_cond) SplitAndClone(*t.join_cond, &conjs);
      BoundExprPtr residual;
      for (auto& c : conjs) {
        // Single-side ON conjuncts sink into their input, where partition
        // pruning and index selection can use them. The right input is
        // always safe (the predicate only decides which right rows can
        // match); the left input only under INNER (a LEFT join preserves
        // left rows that fail the ON). Conjuncts whose refs resolve on
        // *both* sides fall through, so ambiguous references keep failing
        // in Bind below exactly as before.
        if (!ContainsSubquery(*c)) {
          std::vector<const std::vector<ColumnMeta>*> cl{&li.cols};
          std::vector<const std::vector<ColumnMeta>*> cr{&ri.cols};
          std::vector<const sql::Expr*> not_on_left, not_on_right;
          MTB_RETURN_IF_ERROR(CollectFreeRefs(*c, &cl, &not_on_left));
          MTB_RETURN_IF_ERROR(CollectFreeRefs(*c, &cr, &not_on_right));
          if (not_on_right.empty() && !not_on_left.empty()) {
            MTB_ASSIGN_OR_RETURN(auto b, Bind(*c, &rscope, nullptr));
            AttachFilterToInput(&ri.plan, std::move(b));
            continue;
          }
          if (join->join_kind == JoinKind::kInner && not_on_left.empty() &&
              !not_on_right.empty()) {
            MTB_ASSIGN_OR_RETURN(auto b, Bind(*c, &lscope, nullptr));
            AttachFilterToInput(&li.plan, std::move(b));
            continue;
          }
        }
        bool is_key = false;
        if (c->kind == sql::ExprKind::kBinary && c->op == "=" &&
            !ContainsSubquery(*c)) {
          std::vector<const std::vector<ColumnMeta>*> chain_l{&li.cols};
          std::vector<const std::vector<ColumnMeta>*> chain_r{&ri.cols};
          std::vector<const sql::Expr*> free_l, free_r;
          MTB_RETURN_IF_ERROR(CollectFreeRefs(*c->args[0], &chain_l, &free_l));
          MTB_RETURN_IF_ERROR(CollectFreeRefs(*c->args[1], &chain_r, &free_r));
          if (free_l.empty() && free_r.empty()) {
            MTB_ASSIGN_OR_RETURN(auto lk, Bind(*c->args[0], &lscope, nullptr));
            MTB_ASSIGN_OR_RETURN(auto rk, Bind(*c->args[1], &rscope, nullptr));
            join->left_keys.push_back(std::move(lk));
            join->right_keys.push_back(std::move(rk));
            is_key = true;
          } else {
            // Try the swapped orientation.
            std::vector<const sql::Expr*> free_l2, free_r2;
            MTB_RETURN_IF_ERROR(CollectFreeRefs(*c->args[1], &chain_l, &free_l2));
            MTB_RETURN_IF_ERROR(CollectFreeRefs(*c->args[0], &chain_r, &free_r2));
            if (free_l2.empty() && free_r2.empty()) {
              MTB_ASSIGN_OR_RETURN(auto lk, Bind(*c->args[1], &lscope, nullptr));
              MTB_ASSIGN_OR_RETURN(auto rk, Bind(*c->args[0], &rscope, nullptr));
              join->left_keys.push_back(std::move(lk));
              join->right_keys.push_back(std::move(rk));
              is_key = true;
            }
          }
        }
        if (!is_key) {
          MTB_ASSIGN_OR_RETURN(auto b, Bind(*c, &cscope, nullptr));
          residual = AndBound(std::move(residual), std::move(b));
        }
      }
      join->residual = std::move(residual);
      join->left = std::move(li.plan);
      join->right = std::move(ri.plan);
      join->columns = concat;
      info.cols = std::move(concat);
      info.plan = std::move(join);
      return info;
    }
  }
  return Status::Internal("bad table ref");
}

// ---------------------------------------------------------------------------
// Sub-query unnesting
// ---------------------------------------------------------------------------

namespace {

/// One correlated equality `inner_expr = outer_expr` extracted from a
/// sub-query's WHERE clause.
struct KeyPair {
  sql::ExprPtr outer;  // binds in the enclosing query
  sql::ExprPtr inner;  // binds in the (decorrelated) sub-query
};

}  // namespace

Result<bool> PlannerImpl::TryUnnestExistsOrIn(
    const sql::Expr& conj_in, const std::vector<ColumnMeta>& level_cols,
    const BindScope* parent, PlanPtr* cur, std::vector<ColumnMeta>* work_cols) {
  const sql::Expr* conj = &conj_in;
  bool negated = false;
  if (conj->kind == sql::ExprKind::kUnary && conj->op == "NOT") {
    negated = true;
    conj = conj->args[0].get();
  }
  bool is_exists = conj->kind == sql::ExprKind::kExists;
  bool is_in = conj->kind == sql::ExprKind::kInSubquery;
  if (!is_exists && !is_in) return false;
  negated = negated != conj->negated;
  const sql::SelectStmt& sub = *conj->subquery;
  if (!sub.group_by.empty() || sub.having || sub.limit >= 0 || sub.from.empty()) {
    return false;
  }
  if (is_in) {
    if (sub.items.size() != conj->args.size()) return false;
    for (const auto& item : sub.items) {
      if (item.expr->kind == sql::ExprKind::kStar) return false;
      std::vector<const sql::Expr*> aggs;
      CollectAggCalls(*item.expr, &aggs);
      if (!aggs.empty()) return false;
    }
  }
  // Scope of the sub-query's own FROM.
  std::vector<ColumnMeta> sub_cols;
  for (const auto& t : sub.from) {
    MTB_ASSIGN_OR_RETURN(auto cols, OutputColsOfTref(*t));
    for (auto& c : cols) sub_cols.push_back(std::move(c));
  }
  // Split the sub-query's WHERE into local conjuncts, correlated equality
  // keys, and residual correlated conjuncts.
  std::vector<sql::ExprPtr> conjs;
  if (sub.where) SplitAndClone(*sub.where, &conjs);
  std::vector<sql::ExprPtr> locals;
  std::vector<KeyPair> keys;
  std::vector<sql::ExprPtr> residuals;
  for (auto& c : conjs) {
    std::vector<const std::vector<ColumnMeta>*> chain{&sub_cols};
    std::vector<const sql::Expr*> free;
    MTB_RETURN_IF_ERROR(CollectFreeRefs(*c, &chain, &free));
    bool refs_level = false;
    for (const auto* r : free) {
      if (ResolvableAtLevel(r->qualifier, r->column, level_cols)) {
        refs_level = true;
        break;
      }
    }
    if (!refs_level) {
      locals.push_back(std::move(c));
      continue;
    }
    if (ContainsSubquery(*c)) return false;
    bool made_key = false;
    if (c->kind == sql::ExprKind::kBinary && c->op == "=") {
      for (int side = 0; side < 2 && !made_key; ++side) {
        const sql::Expr& inner = *c->args[static_cast<size_t>(side)];
        const sql::Expr& outer = *c->args[static_cast<size_t>(1 - side)];
        std::vector<const sql::Expr*> fi, fo;
        std::vector<const std::vector<ColumnMeta>*> ci{&sub_cols};
        std::vector<const std::vector<ColumnMeta>*> co;
        MTB_RETURN_IF_ERROR(CollectFreeRefs(inner, &ci, &fi));
        MTB_RETURN_IF_ERROR(CollectFreeRefs(outer, &co, &fo));
        bool inner_local = fi.empty();
        bool outer_in_level = !fo.empty();
        for (const auto* r : fo) {
          if (!ResolvableAtLevel(r->qualifier, r->column, level_cols)) {
            outer_in_level = false;
            break;
          }
        }
        if (inner_local && outer_in_level) {
          keys.push_back({outer.Clone(), inner.Clone()});
          made_key = true;
        }
      }
    }
    if (!made_key) residuals.push_back(std::move(c));
  }
  // IN with residual (non-equality) correlated conjuncts falls back to the
  // per-row path: the decorrelated sub-query projects only the IN items and
  // correlation keys, so a residual's references to other inner columns
  // cannot bind (and the null-aware anti join for NOT IN would need
  // per-group residual evaluation).
  if (is_in && !residuals.empty()) return false;
  // Build the decorrelated sub-query.
  auto modified = std::make_unique<sql::SelectStmt>();
  for (const auto& t : sub.from) modified->from.push_back(t->Clone());
  modified->where = sql::AndAll(std::move(locals));
  std::vector<BoundExprPtr> right_keys;
  std::vector<sql::ExprPtr> outer_keys;
  if (is_exists) {
    sql::SelectItem star;
    star.expr = std::make_unique<sql::Expr>();
    star.expr->kind = sql::ExprKind::kStar;
    modified->items.push_back(std::move(star));
    if (keys.empty()) return false;
  } else {
    for (size_t i = 0; i < sub.items.size(); ++i) {
      sql::SelectItem item;
      item.expr = sub.items[i].expr->Clone();
      item.alias = "__s" + std::to_string(unnest_counter_) + "_i" +
                   std::to_string(i);
      modified->items.push_back(std::move(item));
      right_keys.push_back(MakeSlot(static_cast<int>(i)));
      outer_keys.push_back(conj->args[i]->Clone());
    }
    size_t base = sub.items.size();
    for (size_t i = 0; i < keys.size(); ++i) {
      sql::SelectItem item;
      item.expr = keys[i].inner->Clone();
      item.alias = "__s" + std::to_string(unnest_counter_) + "_k" +
                   std::to_string(i);
      modified->items.push_back(std::move(item));
      right_keys.push_back(MakeSlot(static_cast<int>(base + i)));
    }
  }
  // Bail out if the decorrelated form still references the current level
  // (e.g. in the select list) — fall back to per-row evaluation.
  MTB_ASSIGN_OR_RETURN(bool still_refs, SelectRefsLevel(*modified, level_cols));
  if (still_refs) return false;
  ++unnest_counter_;

  MTB_ASSIGN_OR_RETURN(PlanPtr subplan, PlanSelect(*modified, parent));

  auto join = std::make_unique<Plan>();
  join->kind = Plan::Kind::kJoin;
  join->join_kind = negated ? JoinKind::kAnti : JoinKind::kSemi;
  if (is_exists) {
    join->decorrelated_from =
        negated ? SubqueryOrigin::kNotExists : SubqueryOrigin::kExists;
  } else {
    join->decorrelated_from =
        negated ? SubqueryOrigin::kNotIn : SubqueryOrigin::kIn;
    if (negated) {
      // x NOT IN (S) is NULL (never TRUE) when x is NULL or S contains a
      // NULL; a plain anti join would keep such rows.
      join->null_aware = true;
      join->naaj_in_keys = sub.items.size();
    }
  }
  BindScope outer_scope{work_cols, parent};
  if (is_exists) {
    // The modified sub-query is SELECT * over its FROM, so its output slots
    // line up with sub_cols — which, unlike the star-expanded output columns,
    // retain their table qualifiers for binding.
    BindScope inner_scope{&sub_cols, parent};
    for (auto& k : keys) {
      MTB_ASSIGN_OR_RETURN(auto ok, Bind(*k.outer, &outer_scope, nullptr));
      MTB_ASSIGN_OR_RETURN(auto ik, Bind(*k.inner, &inner_scope, nullptr));
      join->left_keys.push_back(std::move(ok));
      join->right_keys.push_back(std::move(ik));
    }
  } else {
    for (auto& ok_ast : outer_keys) {
      MTB_ASSIGN_OR_RETURN(auto ok, Bind(*ok_ast, &outer_scope, nullptr));
      join->left_keys.push_back(std::move(ok));
    }
    for (auto& k : keys) {
      MTB_ASSIGN_OR_RETURN(auto ok, Bind(*k.outer, &outer_scope, nullptr));
      join->left_keys.push_back(std::move(ok));
    }
    join->right_keys = std::move(right_keys);
  }
  // Residual conjuncts bind against concat(outer, inner). For EXISTS the
  // inner layout is the (qualified) FROM scope, which matches the star
  // projection; for IN it is the explicit item list.
  if (!residuals.empty()) {
    std::vector<ColumnMeta> concat = *work_cols;
    const std::vector<ColumnMeta>& inner_cols =
        is_exists ? sub_cols : subplan->columns;
    for (const auto& c : inner_cols) concat.push_back(c);
    BindScope cscope{&concat, parent};
    BoundExprPtr res;
    for (auto& r : residuals) {
      MTB_ASSIGN_OR_RETURN(auto b, Bind(*r, &cscope, nullptr));
      res = AndBound(std::move(res), std::move(b));
    }
    join->residual = std::move(res);
  }
  join->columns = *work_cols;
  join->left = std::move(*cur);
  join->right = std::move(subplan);
  *cur = std::move(join);
  return true;
}

Result<bool> PlannerImpl::TryUnnestScalarAgg(
    const sql::Expr& conj, const std::vector<ColumnMeta>& level_cols,
    const BindScope* parent, PlanPtr* cur, std::vector<ColumnMeta>* work_cols) {
  if (conj.kind != sql::ExprKind::kBinary) return false;
  const std::string& op = conj.op;
  if (op != "=" && op != "<>" && op != "<" && op != "<=" && op != ">" &&
      op != ">=") {
    return false;
  }
  int sub_side = -1;
  for (int i = 0; i < 2; ++i) {
    if (conj.args[static_cast<size_t>(i)]->kind ==
        sql::ExprKind::kScalarSubquery) {
      sub_side = i;
    }
  }
  if (sub_side < 0) return false;
  const sql::Expr& other = *conj.args[static_cast<size_t>(1 - sub_side)];
  if (ContainsSubquery(other)) return false;
  const sql::SelectStmt& sub =
      *conj.args[static_cast<size_t>(sub_side)]->subquery;
  if (sub.items.size() != 1 || !sub.group_by.empty() || sub.having ||
      sub.limit >= 0 || sub.distinct || sub.from.empty()) {
    return false;
  }
  if (sub.items[0].expr->kind == sql::ExprKind::kStar) return false;
  std::vector<const sql::Expr*> aggs;
  CollectAggCalls(*sub.items[0].expr, &aggs);
  if (aggs.empty()) return false;
  for (const auto* a : aggs) {
    // Decorrelation via GROUP BY loses empty groups; COUNT would change from
    // 0 to no-row, so bail out to per-row evaluation.
    if (EqualsIgnoreCase(a->fname, "COUNT")) return false;
  }
  std::vector<ColumnMeta> sub_cols;
  for (const auto& t : sub.from) {
    MTB_ASSIGN_OR_RETURN(auto cols, OutputColsOfTref(*t));
    for (auto& c : cols) sub_cols.push_back(std::move(c));
  }
  std::vector<sql::ExprPtr> conjs;
  if (sub.where) SplitAndClone(*sub.where, &conjs);
  std::vector<sql::ExprPtr> locals;
  std::vector<KeyPair> keys;
  for (auto& c : conjs) {
    std::vector<const std::vector<ColumnMeta>*> chain{&sub_cols};
    std::vector<const sql::Expr*> free;
    MTB_RETURN_IF_ERROR(CollectFreeRefs(*c, &chain, &free));
    bool refs_level = false;
    for (const auto* r : free) {
      if (ResolvableAtLevel(r->qualifier, r->column, level_cols)) {
        refs_level = true;
        break;
      }
    }
    if (!refs_level) {
      locals.push_back(std::move(c));
      continue;
    }
    if (ContainsSubquery(*c)) return false;
    bool made_key = false;
    if (c->kind == sql::ExprKind::kBinary && c->op == "=") {
      for (int side = 0; side < 2 && !made_key; ++side) {
        const sql::Expr& inner = *c->args[static_cast<size_t>(side)];
        const sql::Expr& outer = *c->args[static_cast<size_t>(1 - side)];
        std::vector<const sql::Expr*> fi, fo;
        std::vector<const std::vector<ColumnMeta>*> ci{&sub_cols};
        std::vector<const std::vector<ColumnMeta>*> co;
        MTB_RETURN_IF_ERROR(CollectFreeRefs(inner, &ci, &fi));
        MTB_RETURN_IF_ERROR(CollectFreeRefs(outer, &co, &fo));
        bool inner_local = fi.empty();
        bool outer_in_level = !fo.empty();
        for (const auto* r : fo) {
          if (!ResolvableAtLevel(r->qualifier, r->column, level_cols)) {
            outer_in_level = false;
            break;
          }
        }
        if (inner_local && outer_in_level) {
          keys.push_back({outer.Clone(), inner.Clone()});
          made_key = true;
        }
      }
    }
    if (!made_key) return false;  // residuals not supported under GROUP BY
  }
  if (keys.empty()) return false;

  int job = unnest_counter_++;
  auto modified = std::make_unique<sql::SelectStmt>();
  for (const auto& t : sub.from) modified->from.push_back(t->Clone());
  modified->where = sql::AndAll(std::move(locals));
  for (size_t i = 0; i < keys.size(); ++i) {
    sql::SelectItem item;
    item.expr = keys[i].inner->Clone();
    item.alias = "__u" + std::to_string(job) + "_k" + std::to_string(i);
    modified->items.push_back(std::move(item));
    modified->group_by.push_back(keys[i].inner->Clone());
  }
  sql::SelectItem agg_item;
  agg_item.expr = sub.items[0].expr->Clone();
  agg_item.alias = "__u" + std::to_string(job) + "_agg";
  modified->items.push_back(std::move(agg_item));

  MTB_ASSIGN_OR_RETURN(bool still_refs, SelectRefsLevel(*modified, level_cols));
  if (still_refs) return false;

  MTB_ASSIGN_OR_RETURN(PlanPtr subplan, PlanSelect(*modified, parent));

  auto join = std::make_unique<Plan>();
  join->kind = Plan::Kind::kJoin;
  join->join_kind = JoinKind::kLeft;
  join->decorrelated_from = SubqueryOrigin::kScalarAgg;
  BindScope outer_scope{work_cols, parent};
  for (size_t i = 0; i < keys.size(); ++i) {
    MTB_ASSIGN_OR_RETURN(auto ok, Bind(*keys[i].outer, &outer_scope, nullptr));
    join->left_keys.push_back(std::move(ok));
    join->right_keys.push_back(MakeSlot(static_cast<int>(i)));
  }
  int outer_width = static_cast<int>(work_cols->size());
  std::vector<ColumnMeta> concat = *work_cols;
  for (const auto& c : subplan->columns) concat.push_back(c);
  join->columns = concat;
  join->left = std::move(*cur);
  join->right = std::move(subplan);

  // expr op agg_slot, evaluated after the outer join.
  BindScope cscope{&concat, parent};
  MTB_ASSIGN_OR_RETURN(auto other_bound, Bind(other, &cscope, nullptr));
  auto cmp = std::make_unique<BoundExpr>();
  cmp->kind = BoundExpr::Kind::kBinary;
  static const std::unordered_map<std::string, BinOp> kOps = {
      {"=", BinOp::kEq}, {"<>", BinOp::kNe}, {"<", BinOp::kLt},
      {"<=", BinOp::kLe}, {">", BinOp::kGt}, {">=", BinOp::kGe}};
  cmp->bin_op = kOps.at(op);
  BoundExprPtr agg_slot = MakeSlot(outer_width + static_cast<int>(keys.size()));
  if (sub_side == 0) {  // (sub) op other
    cmp->args.push_back(std::move(agg_slot));
    cmp->args.push_back(std::move(other_bound));
  } else {  // other op (sub)
    cmp->args.push_back(std::move(other_bound));
    cmp->args.push_back(std::move(agg_slot));
  }
  auto filter = std::make_unique<Plan>();
  filter->kind = Plan::Kind::kFilter;
  filter->predicate = std::move(cmp);
  filter->columns = concat;
  filter->left = std::move(join);
  *cur = std::move(filter);
  *work_cols = std::move(concat);
  return true;
}

// ---------------------------------------------------------------------------
// Binding
// ---------------------------------------------------------------------------

Result<BoundExprPtr> PlannerImpl::Bind(const sql::Expr& e,
                                       const BindScope* scope,
                                       const AggEnv* agg) {
  using K = sql::ExprKind;
  if (agg) {
    auto it = agg->slots.find(sql::PrintExpr(e));
    if (it != agg->slots.end()) return MakeSlot(it->second);
  }
  auto b = std::make_unique<BoundExpr>();
  switch (e.kind) {
    case K::kLiteral:
      b->kind = BoundExpr::Kind::kLiteral;
      b->literal = e.literal;
      return b;
    case K::kColumnRef: {
      int depth = 0;
      for (const BindScope* s = scope; s != nullptr; s = s->parent, ++depth) {
        MTB_ASSIGN_OR_RETURN(int slot,
                             ResolveAtLevel(e.qualifier, e.column, *s->cols));
        if (slot >= 0) {
          if (depth == 0) return MakeSlot(slot);
          b->kind = BoundExpr::Kind::kOuterSlot;
          b->slot = slot;
          b->depth = depth;
          return b;
        }
      }
      return Status::NotFound(
          "column not found: " +
          (e.qualifier.empty() ? e.column : e.qualifier + "." + e.column));
    }
    case K::kStar:
      return Status::InvalidArgument("'*' is only valid in SELECT or COUNT(*)");
    case K::kParam:
      b->kind = BoundExpr::Kind::kParam;
      b->param_index = e.param_index;
      return b;
    case K::kUnary: {
      MTB_ASSIGN_OR_RETURN(auto arg, Bind(*e.args[0], scope, agg));
      // Fold NOT into EXISTS / IN-set nodes (their `negated` flag has the
      // same three-valued semantics), so EXPLAIN labels the per-row
      // fallback as NOT EXISTS / NOT IN rather than NOT over a sub-query.
      if (e.op == "NOT" && (arg->kind == BoundExpr::Kind::kExistsSub ||
                            arg->kind == BoundExpr::Kind::kInSet)) {
        arg->negated = !arg->negated;
        return arg;
      }
      b->kind = e.op == "NOT" ? BoundExpr::Kind::kNot : BoundExpr::Kind::kNeg;
      b->args.push_back(std::move(arg));
      return b;
    }
    case K::kBinary: {
      // DATE +/- INTERVAL.
      if ((e.op == "+" || e.op == "-") &&
          e.args[1]->kind == K::kInterval) {
        MTB_ASSIGN_OR_RETURN(auto date_arg, Bind(*e.args[0], scope, agg));
        int64_t count = e.args[1]->args[0]->literal.int_value();
        if (e.op == "-") count = -count;
        b->kind = BoundExpr::Kind::kBuiltin;
        const std::string& u = e.args[1]->interval_unit;
        b->builtin = u == "DAY"
                         ? BuiltinFunc::kDateAddDays
                         : (u == "MONTH" ? BuiltinFunc::kDateAddMonths
                                         : BuiltinFunc::kDateAddYears);
        b->args.push_back(std::move(date_arg));
        b->args.push_back(MakeBoundLit(Value::Int(count)));
        return b;
      }
      static const std::unordered_map<std::string, BinOp> kOps = {
          {"AND", BinOp::kAnd}, {"OR", BinOp::kOr},   {"=", BinOp::kEq},
          {"<>", BinOp::kNe},   {"<", BinOp::kLt},    {"<=", BinOp::kLe},
          {">", BinOp::kGt},    {">=", BinOp::kGe},   {"+", BinOp::kAdd},
          {"-", BinOp::kSub},   {"*", BinOp::kMul},   {"/", BinOp::kDiv},
          {"||", BinOp::kConcat}, {"LIKE", BinOp::kLike},
          {"NOT LIKE", BinOp::kNotLike}};
      auto it = kOps.find(e.op);
      if (it == kOps.end()) {
        return Status::InvalidArgument("unknown operator " + e.op);
      }
      MTB_ASSIGN_OR_RETURN(auto lhs, Bind(*e.args[0], scope, agg));
      MTB_ASSIGN_OR_RETURN(auto rhs, Bind(*e.args[1], scope, agg));
      b->kind = BoundExpr::Kind::kBinary;
      b->bin_op = it->second;
      b->args.push_back(std::move(lhs));
      b->args.push_back(std::move(rhs));
      return b;
    }
    case K::kFunction: {
      if (IsAggName(e.fname)) {
        return Status::InvalidArgument(
            "aggregate function " + e.fname +
            " is not allowed in this context (missing GROUP BY?)");
      }
      if (e.fname == "__row") {
        return Status::SyntaxError("row expression is only valid before IN");
      }
      std::string f = ToLowerCopy(e.fname);
      static const std::unordered_map<std::string, BuiltinFunc> kBuiltins = {
          {"substring", BuiltinFunc::kSubstring},
          {"concat", BuiltinFunc::kConcat},
          {"char_length", BuiltinFunc::kCharLength},
          {"character_length", BuiltinFunc::kCharLength},
          {"length", BuiltinFunc::kCharLength},
          {"upper", BuiltinFunc::kUpper},
          {"lower", BuiltinFunc::kLower},
          {"abs", BuiltinFunc::kAbs},
          {"coalesce", BuiltinFunc::kCoalesce}};
      auto bit = kBuiltins.find(f);
      if (bit != kBuiltins.end()) {
        b->kind = BoundExpr::Kind::kBuiltin;
        b->builtin = bit->second;
        for (const auto& a : e.args) {
          MTB_ASSIGN_OR_RETURN(auto ba, Bind(*a, scope, agg));
          b->args.push_back(std::move(ba));
        }
        return b;
      }
      const Udf* udf = udfs_->Find(e.fname);
      if (udf == nullptr) {
        return Status::NotFound("unknown function " + e.fname);
      }
      if (udf->arg_types.size() != e.args.size()) {
        return Status::InvalidArgument("wrong argument count for " + e.fname);
      }
      b->kind = BoundExpr::Kind::kUdfCall;
      b->udf = udf;
      for (const auto& a : e.args) {
        MTB_ASSIGN_OR_RETURN(auto ba, Bind(*a, scope, agg));
        b->args.push_back(std::move(ba));
      }
      return b;
    }
    case K::kCase: {
      b->kind = BoundExpr::Kind::kCase;
      for (size_t i = 0; i + 1 < e.args.size(); i += 2) {
        BoundExprPtr cond;
        if (e.case_operand) {
          auto eq = std::make_unique<BoundExpr>();
          eq->kind = BoundExpr::Kind::kBinary;
          eq->bin_op = BinOp::kEq;
          MTB_ASSIGN_OR_RETURN(auto opnd, Bind(*e.case_operand, scope, agg));
          MTB_ASSIGN_OR_RETURN(auto when, Bind(*e.args[i], scope, agg));
          eq->args.push_back(std::move(opnd));
          eq->args.push_back(std::move(when));
          cond = std::move(eq);
        } else {
          MTB_ASSIGN_OR_RETURN(cond, Bind(*e.args[i], scope, agg));
        }
        MTB_ASSIGN_OR_RETURN(auto then, Bind(*e.args[i + 1], scope, agg));
        b->args.push_back(std::move(cond));
        b->args.push_back(std::move(then));
      }
      if (e.else_expr) {
        MTB_ASSIGN_OR_RETURN(b->else_expr, Bind(*e.else_expr, scope, agg));
      }
      return b;
    }
    case K::kInList: {
      b->kind = BoundExpr::Kind::kInList;
      b->negated = e.negated;
      for (const auto& a : e.args) {
        MTB_ASSIGN_OR_RETURN(auto ba, Bind(*a, scope, agg));
        b->args.push_back(std::move(ba));
      }
      return b;
    }
    case K::kInSubquery: {
      b->kind = BoundExpr::Kind::kInSet;
      b->negated = e.negated;
      for (const auto& a : e.args) {
        MTB_ASSIGN_OR_RETURN(auto ba, Bind(*a, scope, agg));
        b->args.push_back(std::move(ba));
      }
      MTB_ASSIGN_OR_RETURN(PlanPtr sub, PlanSelect(*e.subquery, scope));
      b->correlated = PlanHasOuterRefs(*sub);
      b->subplan = std::shared_ptr<const Plan>(std::move(sub));
      return b;
    }
    case K::kExists: {
      b->kind = BoundExpr::Kind::kExistsSub;
      b->negated = e.negated;
      MTB_ASSIGN_OR_RETURN(PlanPtr sub, PlanSelect(*e.subquery, scope));
      b->correlated = PlanHasOuterRefs(*sub);
      b->subplan = std::shared_ptr<const Plan>(std::move(sub));
      return b;
    }
    case K::kScalarSubquery: {
      b->kind = BoundExpr::Kind::kScalarSub;
      MTB_ASSIGN_OR_RETURN(PlanPtr sub, PlanSelect(*e.subquery, scope));
      b->correlated = PlanHasOuterRefs(*sub);
      b->subplan = std::shared_ptr<const Plan>(std::move(sub));
      return b;
    }
    case K::kBetween: {
      b->kind = BoundExpr::Kind::kBetween;
      b->negated = e.negated;
      for (const auto& a : e.args) {
        MTB_ASSIGN_OR_RETURN(auto ba, Bind(*a, scope, agg));
        b->args.push_back(std::move(ba));
      }
      return b;
    }
    case K::kIsNull: {
      b->kind = BoundExpr::Kind::kIsNull;
      b->negated = e.negated;
      MTB_ASSIGN_OR_RETURN(auto ba, Bind(*e.args[0], scope, agg));
      b->args.push_back(std::move(ba));
      return b;
    }
    case K::kExtract: {
      b->kind = BoundExpr::Kind::kBuiltin;
      if (e.extract_field == "YEAR") {
        b->builtin = BuiltinFunc::kExtractYear;
      } else if (e.extract_field == "MONTH") {
        b->builtin = BuiltinFunc::kExtractMonth;
      } else if (e.extract_field == "DAY") {
        b->builtin = BuiltinFunc::kExtractDay;
      } else {
        return Status::Unimplemented("EXTRACT field " + e.extract_field);
      }
      MTB_ASSIGN_OR_RETURN(auto ba, Bind(*e.args[0], scope, agg));
      b->args.push_back(std::move(ba));
      return b;
    }
    case K::kInterval:
      return Status::InvalidArgument(
          "INTERVAL is only valid in date arithmetic");
  }
  return Status::Internal("unhandled expression kind");
}

// ---------------------------------------------------------------------------
// SELECT planning
// ---------------------------------------------------------------------------

Result<PlanPtr> PlannerImpl::PlanSelect(const sql::SelectStmt& sel,
                                        const BindScope* parent) {
  // 1. FROM.
  std::vector<RelInfo> rels;
  std::vector<ColumnMeta> level_cols;
  std::vector<int> rel_of_slot;
  for (const auto& t : sel.from) {
    MTB_ASSIGN_OR_RETURN(RelInfo info, PlanFromItem(*t, parent));
    for (const auto& c : info.cols) {
      level_cols.push_back(c);
      rel_of_slot.push_back(static_cast<int>(rels.size()));
    }
    rels.push_back(std::move(info));
  }
  if (rels.empty()) {
    RelInfo dummy;
    dummy.plan = std::make_unique<Plan>();
    dummy.plan->kind = Plan::Kind::kScan;  // table == nullptr: one empty row
    rels.push_back(std::move(dummy));
  }

  // 2. Classify WHERE conjuncts.
  std::vector<sql::ExprPtr> conjs;
  if (sel.where) SplitAndClone(*sel.where, &conjs);

  std::vector<std::vector<sql::ExprPtr>> scan_filters(rels.size());
  std::vector<sql::ExprPtr> join_conjs;
  std::vector<sql::ExprPtr> post_filters;
  std::vector<sql::ExprPtr> subq_conjs;

  for (auto& c : conjs) {
    MTB_ASSIGN_OR_RETURN(RefAnalysis info,
                         Analyze(*c, level_cols, rel_of_slot, parent));
    if (info.unresolved) {
      post_filters.push_back(std::move(c));  // binding will report the error
      continue;
    }
    if (ContainsSubquery(*c)) {
      MTB_ASSIGN_OR_RETURN(bool corr, SubqueriesRefLevel(*c, level_cols));
      if (corr) {
        subq_conjs.push_back(std::move(c));
        continue;
      }
      // Sub-queries independent of this level: treat like a plain predicate.
      if (!info.outer && info.rels.size() == 1) {
        scan_filters[static_cast<size_t>(*info.rels.begin())].push_back(
            std::move(c));
      } else {
        post_filters.push_back(std::move(c));
      }
      continue;
    }
    if (info.outer) {
      post_filters.push_back(std::move(c));
      continue;
    }
    if (info.rels.size() == 1) {
      scan_filters[static_cast<size_t>(*info.rels.begin())].push_back(
          std::move(c));
    } else if (info.rels.size() >= 2) {
      join_conjs.push_back(std::move(c));
    } else {
      post_filters.push_back(std::move(c));  // constant predicate
    }
  }

  // 3. Attach pushed-down filters.
  int offset = 0;
  std::vector<int> rel_offset(rels.size(), 0);
  for (size_t i = 0; i < rels.size(); ++i) {
    rel_offset[i] = offset;
    offset += static_cast<int>(rels[i].cols.size());
    if (scan_filters[i].empty()) continue;
    BindScope rel_scope{&rels[i].cols, parent};
    BoundExprPtr pred;
    for (auto& c : scan_filters[i]) {
      MTB_ASSIGN_OR_RETURN(auto b, Bind(*c, &rel_scope, nullptr));
      // An explicit-join FROM item: sink the conjunct through preserved
      // (left) inputs while its slots stay inside them — the left input's
      // columns are a prefix of the join's, so slots keep their meaning.
      // This is what lets tenant D-filters prune partitions below a
      // LEFT JOIN (TPC-H Q13's shape).
      if (rels[i].plan->kind == Plan::Kind::kJoin) {
        int max_slot = -1;
        if (SinkableSlotRange(*b, &max_slot)) {
          PlanPtr* target = &rels[i].plan;
          while ((*target)->kind == Plan::Kind::kJoin &&
                 ((*target)->join_kind == JoinKind::kInner ||
                  (*target)->join_kind == JoinKind::kLeft) &&
                 max_slot <
                     static_cast<int>((*target)->left->columns.size())) {
            target = &(*target)->left;
          }
          if (target != &rels[i].plan) {
            AttachFilterToInput(target, std::move(b));
            continue;
          }
        }
      }
      pred = AndBound(std::move(pred), std::move(b));
    }
    if (!pred) continue;
    if (rels[i].plan->kind == Plan::Kind::kScan) {
      rels[i].plan->scan_filter =
          AndBound(std::move(rels[i].plan->scan_filter), std::move(pred));
    } else {
      auto filter = std::make_unique<Plan>();
      filter->kind = Plan::Kind::kFilter;
      filter->predicate = std::move(pred);
      filter->columns = rels[i].cols;
      filter->left = std::move(rels[i].plan);
      rels[i].plan = std::move(filter);
    }
  }

  // 4. Left-deep joins in FROM order.
  PlanPtr cur = std::move(rels[0].plan);
  std::vector<ColumnMeta> cur_cols = rels[0].cols;
  std::unordered_set<int> cur_rels{0};
  std::vector<bool> conj_used(join_conjs.size(), false);
  for (size_t i = 1; i < rels.size(); ++i) {
    auto join = std::make_unique<Plan>();
    join->kind = Plan::Kind::kJoin;
    join->join_kind = JoinKind::kInner;
    BindScope left_scope{&cur_cols, parent};
    BindScope right_scope{&rels[i].cols, parent};
    std::vector<ColumnMeta> concat = cur_cols;
    for (const auto& c : rels[i].cols) concat.push_back(c);
    BindScope concat_scope{&concat, parent};
    BoundExprPtr residual;
    for (size_t j = 0; j < join_conjs.size(); ++j) {
      if (conj_used[j]) continue;
      const sql::Expr& c = *join_conjs[j];
      MTB_ASSIGN_OR_RETURN(RefAnalysis info,
                           Analyze(c, level_cols, rel_of_slot, parent));
      bool in_reach = true;
      for (int r : info.rels) {
        if (r != static_cast<int>(i) && !cur_rels.count(r)) {
          in_reach = false;
          break;
        }
      }
      if (!in_reach) continue;
      conj_used[j] = true;
      bool is_key = false;
      if (c.kind == sql::ExprKind::kBinary && c.op == "=") {
        for (int side = 0; side < 2 && !is_key; ++side) {
          const sql::Expr& l = *c.args[static_cast<size_t>(side)];
          const sql::Expr& r = *c.args[static_cast<size_t>(1 - side)];
          MTB_ASSIGN_OR_RETURN(RefAnalysis li,
                               Analyze(l, level_cols, rel_of_slot, parent));
          MTB_ASSIGN_OR_RETURN(RefAnalysis ri,
                               Analyze(r, level_cols, rel_of_slot, parent));
          bool l_left = !li.rels.empty() && !li.rels.count(static_cast<int>(i));
          bool r_right = ri.rels.size() == 1 &&
                         ri.rels.count(static_cast<int>(i)) == 1;
          if (l_left && r_right) {
            MTB_ASSIGN_OR_RETURN(auto lk, Bind(l, &left_scope, nullptr));
            MTB_ASSIGN_OR_RETURN(auto rk, Bind(r, &right_scope, nullptr));
            join->left_keys.push_back(std::move(lk));
            join->right_keys.push_back(std::move(rk));
            is_key = true;
          }
        }
      }
      if (!is_key) {
        MTB_ASSIGN_OR_RETURN(auto b, Bind(c, &concat_scope, nullptr));
        residual = AndBound(std::move(residual), std::move(b));
      }
    }
    join->residual = std::move(residual);
    join->columns = concat;
    join->left = std::move(cur);
    join->right = std::move(rels[i].plan);
    cur = std::move(join);
    cur_cols = std::move(concat);
    cur_rels.insert(static_cast<int>(i));
  }

  std::vector<ColumnMeta> work_cols = cur_cols;

  // 5. Remaining filters (correlated predicates, constants, fallbacks).
  {
    BindScope work_scope{&work_cols, parent};
    BoundExprPtr pred;
    for (auto& c : post_filters) {
      MTB_ASSIGN_OR_RETURN(auto b, Bind(*c, &work_scope, nullptr));
      pred = AndBound(std::move(pred), std::move(b));
    }
    if (pred) {
      auto filter = std::make_unique<Plan>();
      filter->kind = Plan::Kind::kFilter;
      filter->predicate = std::move(pred);
      filter->columns = work_cols;
      filter->left = std::move(cur);
      cur = std::move(filter);
    }
  }

  // 6. Sub-query conjuncts correlated with this level: unnest or fall back.
  for (auto& c : subq_conjs) {
    if (options_.decorrelate_subqueries) {
      MTB_ASSIGN_OR_RETURN(
          bool done,
          TryUnnestExistsOrIn(*c, level_cols, parent, &cur, &work_cols));
      if (done) continue;
      MTB_ASSIGN_OR_RETURN(
          done, TryUnnestScalarAgg(*c, level_cols, parent, &cur, &work_cols));
      if (done) continue;
    }
    BindScope work_scope{&work_cols, parent};
    MTB_ASSIGN_OR_RETURN(auto b, Bind(*c, &work_scope, nullptr));
    auto filter = std::make_unique<Plan>();
    filter->kind = Plan::Kind::kFilter;
    filter->predicate = std::move(b);
    filter->columns = work_cols;
    filter->left = std::move(cur);
    cur = std::move(filter);
  }

  BindScope work_scope{&work_cols, parent};

  // 7. Aggregation.
  std::unordered_map<std::string, const sql::Expr*> alias_map;
  for (const auto& item : sel.items) {
    if (!item.alias.empty() && item.expr->kind != sql::ExprKind::kStar) {
      alias_map[ToLowerCopy(item.alias)] = item.expr.get();
    }
  }
  std::vector<sql::ExprPtr> group_exprs;
  for (const auto& g : sel.group_by) {
    auto cl = g->Clone();
    SubstituteAliases(&cl, alias_map);
    group_exprs.push_back(std::move(cl));
  }
  sql::ExprPtr having;
  if (sel.having) {
    having = sel.having->Clone();
    SubstituteAliases(&having, alias_map);
  }
  std::vector<sql::ExprPtr> order_exprs;
  for (const auto& o : sel.order_by) {
    auto cl = o.expr->Clone();
    SubstituteAliases(&cl, alias_map);
    order_exprs.push_back(std::move(cl));
  }

  std::vector<const sql::Expr*> agg_calls;
  for (const auto& item : sel.items) {
    if (item.expr->kind != sql::ExprKind::kStar) {
      CollectAggCalls(*item.expr, &agg_calls);
    }
  }
  if (having) CollectAggCalls(*having, &agg_calls);
  for (const auto& o : order_exprs) CollectAggCalls(*o, &agg_calls);

  bool aggregated = !agg_calls.empty() || !group_exprs.empty();
  AggEnv agg_env;
  std::vector<ColumnMeta> agg_cols;
  if (aggregated) {
    auto agg_plan = std::make_unique<Plan>();
    agg_plan->kind = Plan::Kind::kAggregate;
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      MTB_ASSIGN_OR_RETURN(auto b, Bind(*group_exprs[i], &work_scope, nullptr));
      agg_plan->exprs.push_back(std::move(b));
      agg_env.slots[sql::PrintExpr(*group_exprs[i])] = static_cast<int>(i);
      if (group_exprs[i]->kind == sql::ExprKind::kColumnRef) {
        agg_cols.push_back(
            {group_exprs[i]->qualifier, group_exprs[i]->column});
      } else {
        agg_cols.push_back({"", sql::PrintExpr(*group_exprs[i])});
      }
    }
    for (const sql::Expr* call : agg_calls) {
      std::string text = sql::PrintExpr(*call);
      if (agg_env.slots.count(text)) continue;
      AggSpec spec;
      spec.func = AggFuncOf(*call);
      spec.distinct = call->distinct;
      if (spec.func != AggFunc::kCountStar) {
        MTB_ASSIGN_OR_RETURN(spec.arg, Bind(*call->args[0], &work_scope, nullptr));
      }
      agg_env.slots[text] =
          static_cast<int>(group_exprs.size() + agg_plan->aggs.size());
      agg_plan->aggs.push_back(std::move(spec));
      agg_cols.push_back({"", text});
    }
    agg_plan->columns = agg_cols;
    agg_plan->left = std::move(cur);
    cur = std::move(agg_plan);
  }
  BindScope agg_scope{&agg_cols, parent};
  const BindScope* out_scope = aggregated ? &agg_scope : &work_scope;
  const AggEnv* env = aggregated ? &agg_env : nullptr;

  // 8. HAVING.
  if (having) {
    if (!aggregated) {
      return Status::InvalidArgument("HAVING requires aggregation");
    }
    MTB_ASSIGN_OR_RETURN(auto b, Bind(*having, out_scope, env));
    auto filter = std::make_unique<Plan>();
    filter->kind = Plan::Kind::kFilter;
    filter->predicate = std::move(b);
    filter->columns = agg_cols;
    filter->left = std::move(cur);
    cur = std::move(filter);
  }

  // 9. Projection (stars expand to the visible FROM columns).
  auto project = std::make_unique<Plan>();
  project->kind = Plan::Kind::kProject;
  std::vector<ColumnMeta> out_cols;
  std::vector<std::string> item_texts;  // for ORDER BY matching
  for (const auto& item : sel.items) {
    if (item.expr->kind == sql::ExprKind::kStar) {
      if (aggregated) {
        return Status::InvalidArgument("'*' cannot be used with GROUP BY");
      }
      for (size_t i = 0; i < level_cols.size(); ++i) {
        if (!item.expr->qualifier.empty() &&
            !EqualsIgnoreCase(item.expr->qualifier, level_cols[i].qualifier)) {
          continue;
        }
        project->exprs.push_back(MakeSlot(static_cast<int>(i)));
        out_cols.push_back({"", level_cols[i].name});
        item_texts.push_back(level_cols[i].qualifier + "." +
                             level_cols[i].name);
      }
      continue;
    }
    MTB_ASSIGN_OR_RETURN(auto b, Bind(*item.expr, out_scope, env));
    project->exprs.push_back(std::move(b));
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == sql::ExprKind::kColumnRef
                 ? item.expr->column
                 : sql::PrintExpr(*item.expr);
    }
    out_cols.push_back({"", name});
    item_texts.push_back(sql::PrintExpr(*item.expr));
  }

  // 10. ORDER BY: match output columns, otherwise append hidden columns.
  std::vector<std::pair<int, bool>> sort_keys;
  size_t visible = out_cols.size();
  for (size_t i = 0; i < order_exprs.size(); ++i) {
    const sql::Expr& oe = *order_exprs[i];
    int slot = -1;
    if (oe.kind == sql::ExprKind::kColumnRef && oe.qualifier.empty()) {
      for (size_t j = 0; j < visible; ++j) {
        if (EqualsIgnoreCase(out_cols[j].name, oe.column)) {
          slot = static_cast<int>(j);
          break;
        }
      }
    }
    if (slot < 0) {
      std::string text = sql::PrintExpr(oe);
      for (size_t j = 0; j < visible; ++j) {
        if (item_texts[j] == text) {
          slot = static_cast<int>(j);
          break;
        }
      }
    }
    if (slot < 0) {
      MTB_ASSIGN_OR_RETURN(auto b, Bind(oe, out_scope, env));
      slot = static_cast<int>(project->exprs.size());
      project->exprs.push_back(std::move(b));
      out_cols.push_back({"", "__ord" + std::to_string(i)});
    }
    sort_keys.emplace_back(slot, sel.order_by[i].desc);
  }
  bool has_hidden = out_cols.size() > visible;
  project->columns = out_cols;
  project->left = std::move(cur);
  cur = std::move(project);

  if (sel.distinct) {
    if (has_hidden) {
      return Status::Unimplemented(
          "SELECT DISTINCT with ORDER BY on non-output expressions");
    }
    auto distinct = std::make_unique<Plan>();
    distinct->kind = Plan::Kind::kDistinct;
    distinct->columns = out_cols;
    distinct->left = std::move(cur);
    cur = std::move(distinct);
  }
  if (!sort_keys.empty()) {
    auto sort = std::make_unique<Plan>();
    sort->kind = Plan::Kind::kSort;
    sort->sort_keys = std::move(sort_keys);
    sort->columns = out_cols;
    sort->left = std::move(cur);
    cur = std::move(sort);
  }
  if (sel.limit >= 0) {
    if (options_.topn_pushdown && cur->kind == Plan::Kind::kSort) {
      // Fuse Sort + Limit into a bounded top-N: the sort never materializes
      // more than limit + offset candidates per worker (sort.cc).
      cur->kind = Plan::Kind::kTopN;
      cur->limit = sel.limit;
      cur->offset = sel.offset;
    } else {
      auto limit = std::make_unique<Plan>();
      limit->kind = Plan::Kind::kLimit;
      limit->limit = sel.limit;
      limit->offset = sel.offset;
      limit->columns = out_cols;
      limit->left = std::move(cur);
      cur = std::move(limit);
    }
  }
  if (has_hidden) {
    auto drop = std::make_unique<Plan>();
    drop->kind = Plan::Kind::kProject;
    for (size_t i = 0; i < visible; ++i) {
      drop->exprs.push_back(MakeSlot(static_cast<int>(i)));
      drop->columns.push_back(out_cols[i]);
    }
    drop->left = std::move(cur);
    cur = std::move(drop);
  }
  return cur;
}

// ---------------------------------------------------------------------------
// Physical access paths (partition pruning + index-scan selection)
// ---------------------------------------------------------------------------

void CollectConjuncts(const BoundExpr& e, std::vector<const BoundExpr*>* out) {
  if (e.kind == BoundExpr::Kind::kBinary && e.bin_op == BinOp::kAnd) {
    CollectConjuncts(*e.args[0], out);
    CollectConjuncts(*e.args[1], out);
    return;
  }
  out->push_back(&e);
}

/// Integer-literal image of an equality/IN conjunct over a scan output slot:
/// `slot = 7` or `slot IN (3, 5)`. Fills `keys` and returns the slot, or -1
/// when the conjunct has any other shape. Scan output slots are the table's
/// schema slots (base scans project every schema column in order), so the
/// result compares directly against PartitionScheme::column / index slots.
int ConjunctKeySlot(const BoundExpr& e, std::vector<int64_t>* keys) {
  if (e.kind == BoundExpr::Kind::kBinary && e.bin_op == BinOp::kEq) {
    const BoundExpr* slot = e.args[0].get();
    const BoundExpr* lit = e.args[1].get();
    if (slot->kind != BoundExpr::Kind::kSlot) std::swap(slot, lit);
    if (slot->kind == BoundExpr::Kind::kSlot &&
        lit->kind == BoundExpr::Kind::kLiteral &&
        lit->literal.type() == TypeId::kInt) {
      keys->push_back(lit->literal.int_value());
      return slot->slot;
    }
    return -1;
  }
  if (e.kind == BoundExpr::Kind::kInList && !e.negated && !e.args.empty() &&
      e.args[0]->kind == BoundExpr::Kind::kSlot) {
    for (size_t i = 1; i < e.args.size(); ++i) {
      if (e.args[i]->kind != BoundExpr::Kind::kLiteral ||
          e.args[i]->literal.type() != TypeId::kInt) {
        return -1;
      }
      keys->push_back(e.args[i]->literal.int_value());
    }
    return e.args[0]->slot;
  }
  return -1;
}

void ApplyAccessPathToScan(Plan* p) {
  if (p->table == nullptr || !p->scan_filter) return;
  std::vector<const BoundExpr*> conjuncts;
  CollectConjuncts(*p->scan_filter, &conjuncts);
  // Partition pruning wins over index selection: a pruned scan keeps morsel
  // parallelism over the surviving partitions, and the MT-H single-tenant
  // invariant (partitions_pruned == N-1) is stated over it.
  const PartitionScheme& ps = p->table->partition();
  if (ps.partitioned()) {
    for (const BoundExpr* c : conjuncts) {
      std::vector<int64_t> keys;
      if (ConjunctKeySlot(*c, &keys) != ps.column || keys.empty()) continue;
      std::vector<uint32_t> parts;
      for (int64_t k : keys) {
        parts.push_back(static_cast<uint32_t>(ps.RouteInt(k)));
      }
      std::sort(parts.begin(), parts.end());
      parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
      p->pruned = true;
      p->partitions = std::move(parts);
      return;
    }
  }
  for (const BoundExpr* c : conjuncts) {
    std::vector<int64_t> keys;
    int slot = ConjunctKeySlot(*c, &keys);
    if (slot < 0 || keys.empty()) continue;
    const TableIndex* ix = p->table->FindIndexLeadingOn(slot);
    if (ix == nullptr) continue;
    // The full scan_filter stays attached and is re-applied to every
    // candidate row: the index lookup is a superset cut, never a filter
    // replacement, so residual conjuncts keep their semantics.
    p->kind = Plan::Kind::kIndexScan;
    p->index_name = ix->name;
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    p->index_keys = std::move(keys);
    return;
  }
}

void ApplyPhysicalAccessPaths(Plan* p);

void VisitExprPlans(const BoundExpr& e) {
  // The planner exclusively owns the freshly built tree, sub-plans included;
  // the const_cast mirrors parallel::MarkParallelSafe's sub-plan marking.
  if (e.subplan) ApplyPhysicalAccessPaths(const_cast<Plan*>(e.subplan.get()));
  ForEachExprChild(e, [](const BoundExpr& c) { VisitExprPlans(c); });
}

void ApplyPhysicalAccessPaths(Plan* p) {
  if (p == nullptr) return;
  if (p->kind == Plan::Kind::kScan) ApplyAccessPathToScan(p);
  ForEachPlanExpr(*p, [](const BoundExpr& e) { VisitExprPlans(e); });
  ApplyPhysicalAccessPaths(p->left.get());
  ApplyPhysicalAccessPaths(p->right.get());
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

Result<PlanPtr> Planner::PlanSelect(const sql::SelectStmt& sel) const {
  PlannerImpl impl(catalog_, udfs_, options_);
  MTB_ASSIGN_OR_RETURN(PlanPtr plan, impl.PlanSelect(sel, nullptr));
  // Rewrite logical scans onto the tables' physical design (partition
  // pruning, index scans) before parallel-safety marking, which needs the
  // final operator kinds.
  if (options_.physical_access_paths) ApplyPhysicalAccessPaths(plan.get());
  // Mark which operators the executor may run on worker threads (covers
  // nested sub-plans too). Purely advisory: execution still gates on input
  // size and the max_threads budget.
  parallel::MarkParallelSafe(plan.get());
  return plan;
}

Result<BoundExprPtr> Planner::BindExpr(
    const sql::Expr& e, const std::vector<ColumnMeta>& layout) const {
  PlannerImpl impl(catalog_, udfs_, options_);
  BindScope scope{&layout, nullptr};
  return impl.Bind(e, &scope, nullptr);
}

}  // namespace engine
}  // namespace mtbase
