// A lazily started, reusable worker-thread pool for morsel-driven execution.
//
// The pool spawns no threads until the first parallel request, then keeps the
// spawned workers alive across statements (morsel dispatch via an atomic
// counter inside the operators makes the scheduling work-stealing-friendly:
// whichever worker is free pulls the next morsel). The process-wide pool grows
// on demand to the largest thread budget any statement has requested, so
// MTBASE_THREADS / PlannerOptions::max_threads can exceed
// hardware_concurrency for determinism testing on small machines.
#ifndef MTBASE_ENGINE_PARALLEL_TASK_POOL_H_
#define MTBASE_ENGINE_PARALLEL_TASK_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mtbase {
namespace engine {
namespace parallel {

class TaskPool {
 public:
  TaskPool() = default;
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;
  /// Joins all spawned workers (pending tasks finish first).
  ~TaskPool();

  /// The process-wide pool shared by all databases. Never destroyed: worker
  /// threads would otherwise race static destruction at exit.
  static TaskPool* Global();

  /// Run fn(worker) for worker in [0, workers). Worker 0 runs on the calling
  /// thread; the rest run on pool threads (spawned on first use, reused
  /// afterwards). Blocks until every worker returned; if any worker threw,
  /// the first captured exception is rethrown on the calling thread.
  /// workers <= 1 runs fn(0) inline without touching the pool.
  void Run(int workers, const std::function<void(int)>& fn);

  /// Number of pool threads spawned so far (0 until the first parallel Run;
  /// the calling thread is not counted).
  int spawned_threads() const;

 private:
  void EnsureSpawned(int pool_threads);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
};

}  // namespace parallel
}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_PARALLEL_TASK_POOL_H_
