#include "engine/parallel/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "engine/catalog.h"
#include "engine/exec.h"
#include "engine/obs/profile.h"
#include "engine/parallel/task_pool.h"
#include "engine/udf.h"

namespace mtbase {
namespace engine {
namespace parallel {

// ---------------------------------------------------------------------------
// Knob resolution and plan marking
// ---------------------------------------------------------------------------

int ResolveMaxThreads(int configured) {
  if (configured > 0) return configured;
  static const int auto_threads = [] {
    if (const char* env = std::getenv("MTBASE_THREADS")) {
      int v = std::atoi(env);
      if (v > 0) return v;
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
  }();
  return auto_threads;
}

namespace {

bool ExprParallelSafe(const BoundExpr& e) {
  if (e.subplan != nullptr) return false;  // InitPlan caches are serial state
  if (e.kind == BoundExpr::Kind::kUdfCall) {
    // Immutable UDFs may evaluate from workers: their (pre-planned, read-only)
    // body runs against the worker's own context — per-worker result cache,
    // worker-local params/stats, max_threads pinned to 1 — so workers never
    // share mutable state. Volatile/stable bodies may be nondeterministic or
    // statement-scoped, so their plans stay serial.
    if (e.udf == nullptr || !e.udf->immutable()) return false;
  }
  if (e.kind == BoundExpr::Kind::kOuterSlot) return false;
  bool safe = true;
  ForEachExprChild(e, [&safe](const BoundExpr& c) {
    safe = safe && ExprParallelSafe(c);
  });
  return safe;
}

bool SafeOrNull(const BoundExprPtr& e) { return !e || ExprParallelSafe(*e); }

bool AllSafe(const std::vector<BoundExprPtr>& exprs) {
  for (const auto& e : exprs) {
    if (!SafeOrNull(e)) return false;
  }
  return true;
}

/// Sub-plans hang off expressions as shared_ptr<const Plan>; marking happens
/// while the planner still exclusively owns the freshly built tree, so the
/// const_cast cannot race with execution.
void MarkExprSubplans(const BoundExpr& e) {
  if (e.subplan != nullptr) MarkParallelSafe(const_cast<Plan*>(e.subplan.get()));
  ForEachExprChild(e, [](const BoundExpr& c) { MarkExprSubplans(c); });
}

}  // namespace

void MarkParallelSafe(Plan* p) {
  if (p == nullptr) return;
  MarkParallelSafe(p->left.get());
  MarkParallelSafe(p->right.get());
  ForEachPlanExpr(*p, [](const BoundExpr& e) { MarkExprSubplans(e); });

  bool safe = false;
  switch (p->kind) {
    case Plan::Kind::kScan:
      safe = p->table != nullptr && SafeOrNull(p->scan_filter);
      break;
    case Plan::Kind::kIndexScan:
      // The ordered-index lookup is a serial binary search; partition-pruned
      // scans (kScan) carry the morsel parallelism story instead.
      safe = false;
      break;
    case Plan::Kind::kJoin:
      // Hash joins only; the nested loop and the null-aware anti join keep
      // their serial implementations.
      safe = !p->left_keys.empty() && !p->null_aware &&
             AllSafe(p->left_keys) && AllSafe(p->right_keys) &&
             SafeOrNull(p->residual);
      break;
    case Plan::Kind::kFilter:
      safe = SafeOrNull(p->predicate);
      break;
    case Plan::Kind::kProject:
      safe = AllSafe(p->exprs);
      break;
    case Plan::Kind::kAggregate: {
      safe = AllSafe(p->exprs);
      for (const auto& a : p->aggs) {
        // DISTINCT partials cannot be merged without recomputing from the
        // value sets; those aggregations stay serial.
        safe = safe && !a.distinct && SafeOrNull(a.arg);
      }
      break;
    }
    case Plan::Kind::kSort:
    case Plan::Kind::kTopN:
      // Sort keys are plain slot indices (no expressions to evaluate), and
      // the run-sort + merge / bounded-heap implementations reproduce the
      // serial stable order exactly (sort.cc).
      safe = true;
      break;
    case Plan::Kind::kLimit:
    case Plan::Kind::kDistinct:
      safe = false;  // trivially serial / state-sequential operators
      break;
  }
  p->parallel_safe = safe;
}

size_t EstimatePlanRows(const Plan& p) {
  if (p.kind == Plan::Kind::kScan || p.kind == Plan::Kind::kIndexScan) {
    return p.table != nullptr ? p.table->row_count() : 1;
  }
  size_t n = 0;
  if (p.left) n += EstimatePlanRows(*p.left);
  if (p.right) n += EstimatePlanRows(*p.right);
  return n;
}

namespace {

/// Morsel size shrinks with the min_parallel_rows knob so tests that lower
/// the gate still split small inputs into enough morsels to parallelize.
/// Boundaries never affect results: outputs concatenate in morsel order.
size_t MorselSize(const ExecContext& ctx) {
  return std::max<size_t>(1, std::min(kMorselRows, ctx.min_parallel_rows / 2));
}

}  // namespace

int PlanWorkers(const Plan& plan, size_t input_rows, const ExecContext& ctx) {
  if (!plan.parallel_safe || ctx.max_threads <= 1) return 1;
  if (input_rows < ctx.min_parallel_rows) return 1;
  size_t msize = MorselSize(ctx);
  size_t morsels = (input_rows + msize - 1) / msize;
  size_t w = std::min(static_cast<size_t>(ctx.max_threads), morsels);
  return w < 2 ? 1 : static_cast<int>(w);
}

// ---------------------------------------------------------------------------
// Parallel region plumbing
// ---------------------------------------------------------------------------

void RunPoolProfiled(ExecContext* ctx, int workers,
                     const std::function<void(int)>& fn) {
  if (ctx->profiler == nullptr) {
    TaskPool::Global()->Run(workers, fn);
    return;
  }
  std::vector<uint64_t> cpu(static_cast<size_t>(workers), 0);
  TaskPool::Global()->Run(workers, [&](int w) {
    if (w == 0) {
      // Worker 0 runs on the calling (statement) thread: its CPU is already
      // part of the statement thread's own thread-CPU delta.
      fn(w);
      return;
    }
    const uint64_t before = obs::ThreadCpuNanos();
    fn(w);
    cpu[static_cast<size_t>(w)] = obs::ThreadCpuNanos() - before;
  });
  for (uint64_t c : cpu) ctx->child_cpu_nanos += c;
}

namespace {

ExecContext WorkerContext(const ExecContext& parent, ExecStats* stats) {
  ExecContext c;
  c.stats = stats;
  c.profile = parent.profile;
  c.max_threads = 1;  // parallel regions never nest
  c.min_parallel_rows = parent.min_parallel_rows;
  c.outer_stack = parent.outer_stack;
  c.params = parent.params;
  c.in_parallel_worker = true;
  // Workers start with an empty per-worker UDF cache (c.udf_cache) that
  // lives for the whole region — repeated immutable-UDF calls stay
  // lock-free — and fall back to the shared dictionary cache (one lock per
  // distinct key per worker) before executing a body.
  c.shared_udf_cache = parent.shared_udf_cache;
  c.shared_udf_epoch = parent.shared_udf_epoch;
  // Workers share the statement's pinned table snapshots so every morsel
  // scans the same row versions the statement thread pinned.
  c.snapshots = parent.snapshots;
  // parent.profiler / parent.current_op are deliberately NOT copied: the
  // PlanProfiler map is statement-thread-only state. Worker counters reach
  // it via the MergeWorker fold below; worker CPU via RunPoolProfiled.
  return c;
}

/// First-error-in-input-order selection: among failing work units, the one
/// with the lowest index wins, mirroring the serial executor's first error.
struct RegionError {
  std::mutex mu;
  std::atomic<bool> failed{false};
  size_t index = SIZE_MAX;
  Status status = Status::OK();

  void Record(size_t idx, Status s) {
    std::lock_guard<std::mutex> lock(mu);
    if (idx < index) {
      index = idx;
      status = std::move(s);
    }
    failed.store(true, std::memory_order_relaxed);
  }
};

/// Run fn(worker, worker_ctx, err) on `workers` workers: thread-local
/// ExecStats fold back into ctx->stats afterwards (so counter totals match
/// the serial pass), the threads_used high-water mark is updated on success,
/// and the lowest-index recorded error wins. All parallel regions go through
/// here — it owns the subtle plumbing.
Status RunRegion(
    ExecContext* ctx, int workers,
    const std::function<void(int, ExecContext*, RegionError*)>& fn) {
  std::vector<ExecStats> worker_stats(static_cast<size_t>(workers));
  RegionError err;
  RunPoolProfiled(ctx, workers, [&](int w) {
    ExecContext wctx =
        WorkerContext(*ctx, &worker_stats[static_cast<size_t>(w)]);
    fn(w, &wctx, &err);
  });
  for (const ExecStats& ws : worker_stats) ctx->stats->MergeWorker(ws);
  if (err.failed.load()) return err.status;
  ctx->stats->threads_used = std::max<uint64_t>(
      ctx->stats->threads_used, static_cast<uint64_t>(workers));
  // The region ran while ctx->current_op was the invoking plan node, so the
  // worker count attributes to exactly that node.
  if (ctx->current_op != nullptr && workers > ctx->current_op->workers) {
    ctx->current_op->workers = workers;
  }
  return Status::OK();
}

using MorselFn =
    std::function<Status(size_t, size_t, ExecContext*, std::vector<Row>*)>;

/// Run fn over fixed-size morsels of [0, n_rows), each writing a per-morsel
/// buffer; concatenate in morsel order (= input order).
Result<std::vector<Row>> RunMorsels(ExecContext* ctx, size_t n_rows,
                                    int workers, const MorselFn& fn) {
  const size_t msize = MorselSize(*ctx);
  const size_t n_morsels = (n_rows + msize - 1) / msize;
  std::vector<std::vector<Row>> outputs(n_morsels);
  std::atomic<size_t> next{0};
  MTB_RETURN_IF_ERROR(
      RunRegion(ctx, workers, [&](int, ExecContext* wctx, RegionError* err) {
        for (;;) {
          // Check for failure BEFORE claiming, and always process a claimed
          // morsel: indices are handed out in ascending order, so every
          // morsel below a recorded error index is guaranteed to have been
          // claimed and thus evaluated — the lowest failing morsel's error
          // wins, matching the serial executor's first error.
          if (err->failed.load(std::memory_order_relaxed)) break;
          size_t m = next.fetch_add(1, std::memory_order_relaxed);
          if (m >= n_morsels) break;
          size_t begin = m * msize;
          size_t end = std::min(n_rows, begin + msize);
          Status s = fn(begin, end, wctx, &outputs[m]);
          if (!s.ok()) err->Record(m, std::move(s));
        }
      }));
  ctx->stats->parallel_morsels += n_morsels;
  size_t total = 0;
  for (const auto& o : outputs) total += o.size();
  std::vector<Row> out;
  out.reserve(total);
  for (auto& o : outputs) {
    for (Row& r : o) out.push_back(std::move(r));
  }
  return out;
}

Row ConcatRows(const Row& l, const Row& r) {
  Row row;
  row.reserve(l.size() + r.size());
  for (const Value& v : l) row.push_back(v);
  for (const Value& v : r) row.push_back(v);
  return row;
}

/// Evaluate a key tuple; returns whether any component was NULL.
Result<bool> ComputeKey(const std::vector<BoundExprPtr>& keys, const Row& r,
                        ExecContext* ctx, std::vector<Value>* out) {
  out->clear();
  out->reserve(keys.size());
  bool null_key = false;
  for (const auto& k : keys) {
    MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*k, r, ctx));
    null_key = null_key || v.is_null();
    out->push_back(std::move(v));
  }
  return null_key;
}

}  // namespace

// ---------------------------------------------------------------------------
// Scan / Filter / Project
// ---------------------------------------------------------------------------

namespace {

Status ScanRange(const Plan& p, const std::vector<Row>& rows,
                 const std::vector<uint32_t>* cand, size_t begin, size_t end,
                 ExecContext* ctx, std::vector<Row>* out) {
  for (size_t i = begin; i < end; ++i) {
    const Row& r = cand != nullptr ? rows[(*cand)[i]] : rows[i];
    if (p.scan_filter) {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p.scan_filter, r, ctx));
      if (!IsTrue(v)) continue;
    }
    out->push_back(r);
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Row>> ScanExec(const Plan& p, ExecContext* ctx, int workers,
                                  const std::vector<uint32_t>* candidates) {
  std::vector<Row> out;
  if (p.table == nullptr) {
    out.emplace_back();  // one empty row (SELECT without FROM, dummy input)
    return out;
  }
  const auto& rows = PinnedRows(ctx, *p.table);
  const size_t n = candidates != nullptr ? candidates->size() : rows.size();
  ctx->stats->rows_scanned += n;
  if (workers <= 1) {
    out.reserve(p.scan_filter ? n / 4 : n);
    MTB_RETURN_IF_ERROR(ScanRange(p, rows, candidates, 0, n, ctx, &out));
    return out;
  }
  return RunMorsels(ctx, n, workers,
                    [&p, &rows, candidates](size_t b, size_t e,
                                            ExecContext* wctx,
                                            std::vector<Row>* o) {
                      return ScanRange(p, rows, candidates, b, e, wctx, o);
                    });
}

namespace {

Status FilterRange(const Plan& p, std::vector<Row>* rows, size_t begin,
                   size_t end, ExecContext* ctx, std::vector<Row>* out) {
  for (size_t i = begin; i < end; ++i) {
    Row& r = (*rows)[i];
    MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p.predicate, r, ctx));
    if (IsTrue(v)) out->push_back(std::move(r));
  }
  return Status::OK();
}

Status ProjectRange(const Plan& p, const std::vector<Row>& rows, size_t begin,
                    size_t end, ExecContext* ctx, std::vector<Row>* out) {
  for (size_t i = begin; i < end; ++i) {
    Row projected;
    projected.reserve(p.exprs.size());
    for (const auto& e : p.exprs) {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, rows[i], ctx));
      projected.push_back(std::move(v));
    }
    out->push_back(std::move(projected));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Row>> FilterExec(const Plan& p, ExecContext* ctx,
                                    std::vector<Row> input, int workers) {
  if (workers <= 1) {
    std::vector<Row> out;
    out.reserve(input.size());
    MTB_RETURN_IF_ERROR(FilterRange(p, &input, 0, input.size(), ctx, &out));
    return out;
  }
  // Workers move rows out of disjoint ranges of the shared input vector.
  return RunMorsels(ctx, input.size(), workers,
                    [&p, &input](size_t b, size_t e, ExecContext* wctx,
                                 std::vector<Row>* o) {
                      return FilterRange(p, &input, b, e, wctx, o);
                    });
}

Result<std::vector<Row>> ProjectExec(const Plan& p, ExecContext* ctx,
                                     std::vector<Row> input, int workers) {
  if (workers <= 1) {
    std::vector<Row> out;
    out.reserve(input.size());
    MTB_RETURN_IF_ERROR(ProjectRange(p, input, 0, input.size(), ctx, &out));
    return out;
  }
  return RunMorsels(ctx, input.size(), workers,
                    [&p, &input](size_t b, size_t e, ExecContext* wctx,
                                 std::vector<Row>* o) {
                      return ProjectRange(p, input, b, e, wctx, o);
                    });
}

// ---------------------------------------------------------------------------
// Partitioned hash join
// ---------------------------------------------------------------------------

namespace {

/// Hash table over the build (right) side. Serial execution uses a single
/// partition; parallel builds hash-partition so P merge tasks can fill the
/// maps without sharing. Per key, right-row indices are ascending in both
/// modes, so probe output order matches the serial executor exactly.
struct JoinTable {
  size_t partitions = 1;
  std::vector<std::unordered_map<std::vector<Value>, std::vector<size_t>,
                                 ValueVectorHash, ValueVectorEq>>
      maps;

  const std::vector<size_t>* Find(const std::vector<Value>& key) const {
    const auto& m =
        maps[partitions == 1 ? 0 : ValueVectorHash()(key) % partitions];
    auto it = m.find(key);
    return it == m.end() ? nullptr : &it->second;
  }
};

Status ProbeRange(const Plan& p, const std::vector<Row>& left_rows,
                  size_t begin, size_t end, const JoinTable& table,
                  const std::vector<Row>& right_rows, size_t right_width,
                  ExecContext* ctx, std::vector<Row>* out) {
  std::vector<Value> key;
  for (size_t i = begin; i < end; ++i) {
    const Row& l = left_rows[i];
    MTB_ASSIGN_OR_RETURN(bool null_key, ComputeKey(p.left_keys, l, ctx, &key));
    bool matched = false;
    if (!null_key) {
      const std::vector<size_t>* hits = table.Find(key);
      if (hits != nullptr) {
        for (size_t ri : *hits) {
          Row joined = ConcatRows(l, right_rows[ri]);
          ctx->stats->rows_joined++;
          if (p.residual) {
            MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p.residual, joined, ctx));
            if (!IsTrue(v)) continue;
          }
          matched = true;
          if (p.join_kind == JoinKind::kInner ||
              p.join_kind == JoinKind::kLeft) {
            out->push_back(std::move(joined));
          } else {
            break;  // semi/anti only need existence
          }
        }
      }
    }
    switch (p.join_kind) {
      case JoinKind::kInner:
        break;
      case JoinKind::kLeft:
        if (!matched) {
          Row joined = l;
          joined.resize(l.size() + right_width);
          out->push_back(std::move(joined));
        }
        break;
      case JoinKind::kSemi:
        if (matched) out->push_back(l);
        break;
      case JoinKind::kAnti:
        if (!matched) out->push_back(l);
        break;
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Row>> HashJoinExec(const Plan& p, ExecContext* ctx,
                                      std::vector<Row> left_rows,
                                      std::vector<Row> right_rows,
                                      int workers) {
  const size_t right_width = p.right->columns.size();
  JoinTable table;
  if (workers <= 1) {
    table.maps.resize(1);
    table.maps[0].reserve(right_rows.size());
    std::vector<Value> key;
    for (size_t i = 0; i < right_rows.size(); ++i) {
      MTB_ASSIGN_OR_RETURN(bool null_key,
                           ComputeKey(p.right_keys, right_rows[i], ctx, &key));
      if (null_key) continue;  // NULL keys never match an equality
      table.maps[0][std::move(key)].push_back(i);
    }
    std::vector<Row> out;
    MTB_RETURN_IF_ERROR(ProbeRange(p, left_rows, 0, left_rows.size(), table,
                                   right_rows, right_width, ctx, &out));
    return out;
  }

  // Parallel build, phase 1: per-worker key extraction over contiguous
  // chunks. Merging chunk results in worker order keeps each key's right-row
  // index list ascending — the order the serial build produces.
  const size_t P = static_cast<size_t>(workers);
  table.partitions = P;
  table.maps.resize(P);
  const size_t n = right_rows.size();
  struct Entry {
    size_t idx;
    std::vector<Value> key;
  };
  std::vector<std::vector<std::vector<Entry>>> chunk_parts(
      static_cast<size_t>(workers));
  for (auto& cp : chunk_parts) cp.resize(P);
  MTB_RETURN_IF_ERROR(
      RunRegion(ctx, workers, [&](int w, ExecContext* wctx, RegionError* err) {
        const size_t uw = static_cast<size_t>(w);
        const size_t begin = n * uw / static_cast<size_t>(workers);
        const size_t end = n * (uw + 1) / static_cast<size_t>(workers);
        std::vector<Value> key;
        for (size_t i = begin; i < end; ++i) {
          auto null_key = ComputeKey(p.right_keys, right_rows[i], wctx, &key);
          if (!null_key.ok()) {
            err->Record(uw, std::move(null_key).status());
            return;
          }
          if (null_key.value()) continue;
          size_t h = ValueVectorHash()(key);
          chunk_parts[uw][h % P].push_back(Entry{i, std::move(key)});
        }
      }));

  // Phase 2: per-partition merge into the shared table (one task per
  // partition; partitions are independent maps, so no locking).
  std::atomic<size_t> next_part{0};
  RunPoolProfiled(ctx, workers, [&](int) {
    for (;;) {
      size_t part = next_part.fetch_add(1, std::memory_order_relaxed);
      if (part >= P) break;
      auto& m = table.maps[part];
      for (auto& cp : chunk_parts) {
        for (Entry& entry : cp[part]) {
          m[std::move(entry.key)].push_back(entry.idx);
        }
      }
    }
  });
  ctx->stats->parallel_joins++;

  // Parallel probe in morsels, order-preserving.
  return RunMorsels(
      ctx, left_rows.size(), workers,
      [&](size_t b, size_t e, ExecContext* wctx, std::vector<Row>* o) {
        return ProbeRange(p, left_rows, b, e, table, right_rows, right_width,
                          wctx, o);
      });
}

// ---------------------------------------------------------------------------
// Parallel aggregation (thread-local hash tables, ordered merge)
// ---------------------------------------------------------------------------

namespace {

struct AggAccum {
  int64_t count = 0;
  Value sum;
  Value min;
  Value max;
  std::unordered_set<std::vector<Value>, ValueVectorHash, ValueVectorEq>
      distinct;
};

struct LocalAgg {
  std::unordered_map<std::vector<Value>, std::vector<AggAccum>, ValueVectorHash,
                     ValueVectorEq>
      groups;
  std::vector<const std::vector<Value>*> order;  // first-appearance order
};

Status AccumulateRange(const Plan& p, const std::vector<Row>& rows,
                       size_t begin, size_t end, ExecContext* ctx,
                       LocalAgg* agg) {
  for (size_t ri = begin; ri < end; ++ri) {
    const Row& r = rows[ri];
    std::vector<Value> key;
    key.reserve(p.exprs.size());
    for (const auto& g : p.exprs) {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, r, ctx));
      key.push_back(std::move(v));
    }
    auto it = agg->groups.find(key);
    if (it == agg->groups.end()) {
      it = agg->groups
               .emplace(std::move(key), std::vector<AggAccum>(p.aggs.size()))
               .first;
      agg->order.push_back(&it->first);
    }
    auto& accs = it->second;
    for (size_t i = 0; i < p.aggs.size(); ++i) {
      const AggSpec& spec = p.aggs[i];
      AggAccum& acc = accs[i];
      if (spec.func == AggFunc::kCountStar) {
        acc.count++;
        continue;
      }
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*spec.arg, r, ctx));
      if (v.is_null()) continue;
      if (spec.distinct) {
        std::vector<Value> dkey{v};
        if (!acc.distinct.insert(std::move(dkey)).second) continue;
      }
      acc.count++;
      switch (spec.func) {
        case AggFunc::kSum:
        case AggFunc::kAvg: {
          if (acc.sum.is_null()) {
            acc.sum = v;
          } else {
            MTB_ASSIGN_OR_RETURN(acc.sum, NumericAdd(acc.sum, v));
          }
          break;
        }
        case AggFunc::kMin: {
          if (acc.min.is_null()) {
            acc.min = v;
          } else {
            MTB_ASSIGN_OR_RETURN(int c, v.Compare(acc.min));
            if (c < 0) acc.min = v;
          }
          break;
        }
        case AggFunc::kMax: {
          if (acc.max.is_null()) {
            acc.max = v;
          } else {
            MTB_ASSIGN_OR_RETURN(int c, v.Compare(acc.max));
            if (c > 0) acc.max = v;
          }
          break;
        }
        default:
          break;  // kCount just counts
      }
    }
  }
  return Status::OK();
}

/// Merge a later chunk's accumulators into an earlier chunk's. Chunks cover
/// contiguous input ranges and merge in chunk order, so partial sums combine
/// in input order — exact for INT/DECIMAL arithmetic. DISTINCT aggregates
/// never reach this (the planner keeps them serial).
Status MergeAccums(const Plan& p, std::vector<AggAccum>* into,
                   std::vector<AggAccum>&& from) {
  for (size_t i = 0; i < p.aggs.size(); ++i) {
    AggAccum& a = (*into)[i];
    AggAccum& f = from[i];
    a.count += f.count;
    if (!f.sum.is_null()) {
      if (a.sum.is_null()) {
        a.sum = std::move(f.sum);
      } else {
        MTB_ASSIGN_OR_RETURN(a.sum, NumericAdd(a.sum, f.sum));
      }
    }
    if (!f.min.is_null()) {
      if (a.min.is_null()) {
        a.min = std::move(f.min);
      } else {
        MTB_ASSIGN_OR_RETURN(int c, f.min.Compare(a.min));
        if (c < 0) a.min = std::move(f.min);
      }
    }
    if (!f.max.is_null()) {
      if (a.max.is_null()) {
        a.max = std::move(f.max);
      } else {
        MTB_ASSIGN_OR_RETURN(int c, f.max.Compare(a.max));
        if (c > 0) a.max = std::move(f.max);
      }
    }
  }
  return Status::OK();
}

Result<std::vector<Row>> FinalizeAgg(const Plan& p, const LocalAgg& agg) {
  // Aggregation over an empty input without GROUP BY yields one row.
  std::vector<Row> out;
  if (agg.groups.empty() && p.exprs.empty()) {
    Row r;
    for (const AggSpec& spec : p.aggs) {
      if (spec.func == AggFunc::kCount || spec.func == AggFunc::kCountStar) {
        r.push_back(Value::Int(0));
      } else {
        r.push_back(Value::Null());
      }
    }
    out.push_back(std::move(r));
    return out;
  }
  out.reserve(agg.groups.size());
  for (const auto* key : agg.order) {
    const auto& accs = agg.groups.find(*key)->second;
    Row r = *key;
    for (size_t i = 0; i < p.aggs.size(); ++i) {
      const AggSpec& spec = p.aggs[i];
      const AggAccum& acc = accs[i];
      switch (spec.func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          r.push_back(Value::Int(acc.count));
          break;
        case AggFunc::kSum:
          r.push_back(acc.sum);
          break;
        case AggFunc::kAvg: {
          if (acc.count == 0) {
            r.push_back(Value::Null());
          } else {
            MTB_ASSIGN_OR_RETURN(Value avg,
                                 NumericDiv(acc.sum, Value::Int(acc.count)));
            r.push_back(std::move(avg));
          }
          break;
        }
        case AggFunc::kMin:
          r.push_back(acc.min);
          break;
        case AggFunc::kMax:
          r.push_back(acc.max);
          break;
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

Result<std::vector<Row>> AggregateExec(const Plan& p, ExecContext* ctx,
                                       std::vector<Row> input, int workers) {
  LocalAgg total;
  if (workers <= 1) {
    MTB_RETURN_IF_ERROR(
        AccumulateRange(p, input, 0, input.size(), ctx, &total));
    return FinalizeAgg(p, total);
  }
  // One contiguous chunk per worker: partials combine in chunk (= input)
  // order, and group output order is global first appearance, independent of
  // scheduling.
  const size_t n = input.size();
  std::vector<LocalAgg> locals(static_cast<size_t>(workers));
  MTB_RETURN_IF_ERROR(
      RunRegion(ctx, workers, [&](int w, ExecContext* wctx, RegionError* err) {
        const size_t uw = static_cast<size_t>(w);
        const size_t begin = n * uw / static_cast<size_t>(workers);
        const size_t end = n * (uw + 1) / static_cast<size_t>(workers);
        Status s = AccumulateRange(p, input, begin, end, wctx, &locals[uw]);
        if (!s.ok()) err->Record(uw, std::move(s));
      }));
  ctx->stats->parallel_morsels += static_cast<uint64_t>(workers);

  total = std::move(locals[0]);
  for (int w = 1; w < workers; ++w) {
    LocalAgg& local = locals[static_cast<size_t>(w)];
    for (const std::vector<Value>* key : local.order) {
      // Move the node over; a failed insert (key already merged) hands the
      // node back for accumulator merging — one lookup per side either way.
      auto ins = total.groups.insert(local.groups.extract(*key));
      if (ins.inserted) {
        total.order.push_back(&ins.position->first);
      } else {
        MTB_RETURN_IF_ERROR(MergeAccums(p, &ins.position->second,
                                        std::move(ins.node.mapped())));
      }
    }
  }
  return FinalizeAgg(p, total);
}

}  // namespace parallel
}  // namespace engine
}  // namespace mtbase
