// Parallel sort and top-N: the tail operators of every ORDER BY plan.
//
// Design (run-sort + cooperative merge, after the morsel-driven engines the
// roadmap cites): the materialized input splits into one contiguous run per
// worker; each worker stable-sorts its run with the executor's NULL-aware
// SortCompare over a hoisted sort-key view (slot indices precomputed once,
// no per-comparison casts). Adjacent run pairs then merge in parallel
// passes — runs are in input order and std::merge takes from the earlier
// range on ties, so every pass preserves the stable order and the final
// result is byte-identical to the serial std::stable_sort.
//
// Top-N (a fused Sort + Limit, Plan::Kind::kTopN) never sorts the full
// input: each worker keeps a bounded max-heap of at most limit + offset
// candidates ordered by (sort keys, input index) — the total order a stable
// full sort induces — so a row is discarded the moment it provably cannot
// appear in the output. The merged candidate union is a superset of the
// true top limit + offset rows; sorting it and slicing [offset,
// offset + limit) reproduces the full-sort answer byte-for-byte. Discarded
// rows are counted in ExecStats::topn_rows_pruned.
//
// Neither phase evaluates expressions — sorting only compares already
// computed column values, and SortCompare maps incomparable pairs to
// "equal" exactly like the serial path — so workers need no ExecContext and
// no error channel, unlike the morsel operators in parallel_exec.cc.
#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "engine/exec.h"
#include "engine/obs/profile.h"
#include "engine/parallel/parallel.h"

namespace mtbase {
namespace engine {
namespace parallel {

namespace {

/// Sort key with the slot cast hoisted out of the comparison loop.
struct SortKey {
  size_t slot;
  bool desc;
};

std::vector<SortKey> HoistSortKeys(const Plan& p) {
  std::vector<SortKey> keys;
  keys.reserve(p.sort_keys.size());
  for (const auto& [slot, desc] : p.sort_keys) {
    keys.push_back(SortKey{static_cast<size_t>(slot), desc});
  }
  return keys;
}

int CompareRows(const Row& a, const Row& b, const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    int c = SortCompare(a[k.slot], b[k.slot]);
    if (k.desc) c = -c;
    if (c != 0) return c;
  }
  return 0;
}

/// Contiguous [begin, end) runs, one per worker (the same split parallel
/// aggregation uses), skipping empty ones.
std::vector<std::pair<size_t, size_t>> WorkerRuns(size_t n, int workers) {
  std::vector<std::pair<size_t, size_t>> runs;
  const size_t w_count = static_cast<size_t>(workers);
  runs.reserve(w_count);
  for (size_t w = 0; w < w_count; ++w) {
    size_t begin = n * w / w_count;
    size_t end = n * (w + 1) / w_count;
    if (begin < end) runs.emplace_back(begin, end);
  }
  return runs;
}

/// Record a completed parallel sort/top-N region in the statement's stats
/// (the coordinator runs this after the workers joined, so no races).
void RecordParallelSort(ExecContext* ctx, size_t runs, int workers) {
  ctx->stats->parallel_sorts++;
  ctx->stats->parallel_morsels += runs;
  ctx->stats->threads_used = std::max<uint64_t>(
      ctx->stats->threads_used, static_cast<uint64_t>(workers));
  // EXPLAIN (ANALYZE): the sort region ran under the invoking plan node.
  if (ctx->current_op != nullptr && workers > ctx->current_op->workers) {
    ctx->current_op->workers = workers;
  }
}

}  // namespace

Result<std::vector<Row>> SortExec(const Plan& p, ExecContext* ctx,
                                  std::vector<Row> input, int workers) {
  const std::vector<SortKey> keys = HoistSortKeys(p);
  auto less = [&keys](const Row& a, const Row& b) {
    return CompareRows(a, b, keys) < 0;
  };
  if (workers <= 1 || input.size() < 2) {
    std::stable_sort(input.begin(), input.end(), less);
    return input;
  }

  // Phase 1: stable-sort one contiguous run per worker.
  std::vector<std::pair<size_t, size_t>> runs = WorkerRuns(input.size(),
                                                           workers);
  const size_t initial_runs = runs.size();
  {
    std::atomic<size_t> next{0};
    RunPoolProfiled(ctx, workers, [&](int) {
      for (;;) {
        size_t r = next.fetch_add(1, std::memory_order_relaxed);
        if (r >= runs.size()) break;
        std::stable_sort(input.begin() + static_cast<std::ptrdiff_t>(runs[r].first),
                         input.begin() + static_cast<std::ptrdiff_t>(runs[r].second),
                         less);
      }
    });
  }

  // Phase 2: cooperative merge. Adjacent run pairs merge until one run
  // remains, but a pair is not one task: it splits into `workers` balanced
  // segments (even slices of A, aligned in B by binary search), so every
  // worker stays busy in every pass — including the last one, where a
  // single pair covers the whole input. Splitting preserves stability: the
  // B-side boundary is the first element not less than the A-side split
  // element, which puts B elements equal to it on the right — exactly
  // where std::merge (first range wins ties) would emit them. Rows
  // ping-pong between the input vector and a scratch buffer; an odd
  // trailing run moves over unmerged so the next pass reads one source.
  struct MergeTask {
    size_t a_begin, a_end;  // first (earlier, tie-winning) source range
    size_t b_begin, b_end;  // second source range
    size_t out;             // destination offset
  };
  std::vector<Row> scratch(input.size());
  std::vector<Row>* src = &input;
  std::vector<Row>* dst = &scratch;
  while (runs.size() > 1) {
    std::vector<std::pair<size_t, size_t>> merged;
    merged.reserve(runs.size() / 2 + 1);
    std::vector<MergeTask> tasks;
    for (size_t i = 0; i + 1 < runs.size(); i += 2) {
      const size_t a0 = runs[i].first;
      const size_t a1 = runs[i].second;  // == runs[i + 1].first
      const size_t b1 = runs[i + 1].second;
      merged.emplace_back(a0, b1);
      const size_t parts =
          std::min<size_t>(static_cast<size_t>(workers), a1 - a0);
      size_t prev_a = a0, prev_b = a1, out = a0;
      for (size_t k = 1; k <= parts; ++k) {
        const size_t sa = k == parts ? a1 : a0 + (a1 - a0) * k / parts;
        const size_t sb =
            k == parts
                ? b1
                : static_cast<size_t>(
                      std::lower_bound(
                          src->begin() + static_cast<std::ptrdiff_t>(prev_b),
                          src->begin() + static_cast<std::ptrdiff_t>(b1),
                          (*src)[sa], less) -
                      src->begin());
        tasks.push_back(MergeTask{prev_a, sa, prev_b, sb, out});
        out += (sa - prev_a) + (sb - prev_b);
        prev_a = sa;
        prev_b = sb;
      }
    }
    if (runs.size() % 2 == 1) {  // odd trailing run: carry over unmerged
      const auto& t = runs.back();
      merged.push_back(t);
      tasks.push_back(MergeTask{t.first, t.second, t.second, t.second,
                                t.first});
    }
    std::atomic<size_t> next{0};
    RunPoolProfiled(ctx, workers, [&](int) {
      for (;;) {
        size_t ti = next.fetch_add(1, std::memory_order_relaxed);
        if (ti >= tasks.size()) break;
        const MergeTask& t = tasks[ti];
        auto at = [src](size_t i) {
          return std::make_move_iterator(src->begin() +
                                         static_cast<std::ptrdiff_t>(i));
        };
        std::merge(at(t.a_begin), at(t.a_end), at(t.b_begin), at(t.b_end),
                   dst->begin() + static_cast<std::ptrdiff_t>(t.out), less);
      }
    });
    runs = std::move(merged);
    std::swap(src, dst);
  }
  RecordParallelSort(ctx, initial_runs, workers);
  return std::move(*src);
}

Result<std::vector<Row>> TopNExec(const Plan& p, ExecContext* ctx,
                                  std::vector<Row> input, int workers) {
  ctx->stats->topn_pushdowns++;
  const size_t n = input.size();
  const size_t limit = static_cast<size_t>(p.limit);
  const size_t offset = static_cast<size_t>(p.offset);
  const size_t keep = limit + offset;  // candidates that can reach the output
  if (keep == 0) {
    ctx->stats->topn_rows_pruned += n;
    return std::vector<Row>{};
  }
  if (keep >= n) {
    // Nothing to prune: a full sort is the same work without heap overhead.
    MTB_ASSIGN_OR_RETURN(auto sorted, SortExec(p, ctx, std::move(input),
                                               workers));
    if (offset > 0) {
      size_t off = std::min(offset, sorted.size());
      sorted.erase(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(off));
    }
    if (sorted.size() > limit) sorted.resize(limit);
    return sorted;
  }

  const std::vector<SortKey> keys = HoistSortKeys(p);
  // Total order: sort keys first, input index as the tiebreak — exactly the
  // order a stable full sort followed by OFFSET/LIMIT would produce.
  struct Item {
    size_t idx;
    Row row;
  };
  auto item_less = [&keys](const Item& a, const Item& b) {
    int c = CompareRows(a.row, b.row, keys);
    if (c != 0) return c < 0;
    return a.idx < b.idx;
  };
  // Bounded max-heap pass over one contiguous range: the heap front is the
  // worst kept candidate; a row enters only by beating it.
  auto heap_range = [&](size_t begin, size_t end, std::vector<Item>* heap) {
    heap->reserve(std::min(keep, end - begin));
    for (size_t i = begin; i < end; ++i) {
      Item item{i, std::move(input[i])};
      if (heap->size() < keep) {
        heap->push_back(std::move(item));
        std::push_heap(heap->begin(), heap->end(), item_less);
      } else if (item_less(item, heap->front())) {
        std::pop_heap(heap->begin(), heap->end(), item_less);
        heap->back() = std::move(item);
        std::push_heap(heap->begin(), heap->end(), item_less);
      }
    }
  };

  std::vector<std::vector<Item>> heaps;
  if (workers <= 1) {
    heaps.resize(1);
    heap_range(0, n, &heaps[0]);
  } else {
    std::vector<std::pair<size_t, size_t>> runs = WorkerRuns(n, workers);
    heaps.resize(runs.size());
    std::atomic<size_t> next{0};
    RunPoolProfiled(ctx, workers, [&](int) {
      for (;;) {
        size_t r = next.fetch_add(1, std::memory_order_relaxed);
        if (r >= runs.size()) break;
        heap_range(runs[r].first, runs[r].second, &heaps[r]);
      }
    });
    RecordParallelSort(ctx, runs.size(), workers);
  }

  std::vector<Item> candidates;
  size_t total = 0;
  for (const auto& h : heaps) total += h.size();
  candidates.reserve(total);
  for (auto& h : heaps) {
    for (Item& item : h) candidates.push_back(std::move(item));
  }
  ctx->stats->topn_rows_pruned += n - candidates.size();
  // idx disambiguates every pair, so the order (and thus the output) is
  // schedule-independent; no stability requirement on this final sort.
  std::sort(candidates.begin(), candidates.end(), item_less);
  if (candidates.size() > keep) candidates.resize(keep);
  std::vector<Row> out;
  const size_t off = std::min(offset, candidates.size());
  out.reserve(candidates.size() - off);
  for (size_t i = off; i < candidates.size(); ++i) {
    out.push_back(std::move(candidates[i].row));
  }
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace parallel
}  // namespace engine
}  // namespace mtbase
