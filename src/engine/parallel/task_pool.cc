#include "engine/parallel/task_pool.h"

#include <exception>

namespace mtbase {
namespace engine {
namespace parallel {

TaskPool* TaskPool::Global() {
  static TaskPool* pool = new TaskPool();  // leaked: outlives static dtors
  return pool;
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int TaskPool::spawned_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void TaskPool::EnsureSpawned(int pool_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < pool_threads) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void TaskPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskPool::Run(int workers, const std::function<void(int)>& fn) {
  if (workers <= 1) {
    fn(0);  // serial: never touches the pool, so startup stays lazy
    return;
  }
  // Join-state shared with the enqueued closures. Stack lifetime is safe:
  // Run does not return until every worker decremented `remaining` under
  // `mu`, and no worker touches the state after that.
  struct Join {
    std::mutex mu;
    std::condition_variable done_cv;
    int remaining;
    std::exception_ptr error;
  } join;
  join.remaining = workers - 1;

  EnsureSpawned(workers - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int w = 1; w < workers; ++w) {
      queue_.emplace_back([&join, &fn, w] {
        try {
          fn(w);
        } catch (...) {
          std::lock_guard<std::mutex> l(join.mu);
          if (!join.error) join.error = std::current_exception();
        }
        std::lock_guard<std::mutex> l(join.mu);
        if (--join.remaining == 0) join.done_cv.notify_all();
      });
    }
  }
  work_cv_.notify_all();

  try {
    fn(0);
  } catch (...) {
    std::lock_guard<std::mutex> l(join.mu);
    if (!join.error) join.error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(join.mu);
  join.done_cv.wait(lock, [&join] { return join.remaining == 0; });
  if (join.error) std::rethrow_exception(join.error);
}

}  // namespace parallel
}  // namespace engine
}  // namespace mtbase
