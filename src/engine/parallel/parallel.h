// Morsel-driven parallel execution (the engine's intra-query parallelism).
//
// Design (after Leis et al., "Morsel-Driven Parallelism", and the scale-out
// serving systems cited in the roadmap): operator inputs are split into
// fixed-size morsels pulled from an atomic counter by a small worker set
// (TaskPool). Each worker evaluates into a per-morsel output buffer with a
// thread-local ExecContext/ExecStats; the region concatenates buffers in
// morsel order and folds worker counters back, so the observable behavior —
// row order, error choice, statistics totals — is byte-identical to the
// serial executor. Hash joins build partitioned tables (per-worker key
// extraction over contiguous chunks, per-partition merge preserving global
// row order) and probe in morsels; aggregation accumulates into per-chunk
// hash tables merged in chunk order, preserving first-appearance group
// order. Chunk-ordered merging is exact for INT/DECIMAL arithmetic; only
// SUM/AVG over DOUBLE re-associates floating-point addition and may differ
// from the serial left-fold in the last bits (deterministic for a fixed
// thread count). Sort and top-N (sort.cc) follow the same discipline:
// per-worker stable-sorted runs merge pairwise with earlier-run-wins ties,
// and top-N's bounded heaps order by (sort keys, input index), so both
// reproduce the serial stable sort byte-for-byte.
//
// Safety: a plan node may only run parallel when the planner marked it
// parallel-safe — its own expressions contain no outer references, no
// sub-plans (their per-statement InitPlan caches are serial state) and no
// volatile/stable UDF calls (those bodies may be nondeterministic or
// statement-scoped). IMMUTABLE UDF calls are admitted: their pre-planned,
// read-only bodies evaluate against the worker's own context with a
// per-worker memoization cache, so conversion-heavy canonical-level plans
// parallelize (docs/ARCHITECTURE.md). Everything else falls back to the
// serial path, which remains the single source of truth for semantics: the
// same per-row code runs with workers == 1.
#ifndef MTBASE_ENGINE_PARALLEL_PARALLEL_H_
#define MTBASE_ENGINE_PARALLEL_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace mtbase {
namespace engine {

struct ExecContext;
struct Plan;

namespace parallel {

/// Rows per morsel. The min_parallel_rows knob (default 4096) keeps inputs
/// below a few morsels serial.
inline constexpr size_t kMorselRows = 1024;

/// Resolve the PlannerOptions::max_threads knob: > 0 is taken as-is, 0 means
/// the MTBASE_THREADS environment variable, else hardware_concurrency.
/// Always returns >= 1.
int ResolveMaxThreads(int configured);

/// Recursively mark every node of `plan` (including sub-plans reachable from
/// its expressions) with Plan::parallel_safe. Called by the planner on every
/// freshly built plan.
void MarkParallelSafe(Plan* plan);

/// Workers an operator should use for an input of `input_rows` (1 = serial):
/// gated on the node's parallel_safe flag, the context's thread budget and
/// min_parallel_rows, then capped by the morsel count.
int PlanWorkers(const Plan& plan, size_t input_rows, const ExecContext& ctx);

/// Static upper-bound row estimate (sum of descendant base-table sizes).
/// EXPLAIN uses it to decide whether an operator would plausibly clear the
/// min_parallel_rows gate at runtime.
size_t EstimatePlanRows(const Plan& plan);

/// TaskPool::Run with EXPLAIN (ANALYZE) CPU accounting: when `ctx` is being
/// profiled, each pool worker's thread-CPU delta is summed into
/// ctx->child_cpu_nanos after the region (worker 0 runs on the calling
/// thread and is excluded — its CPU is already in the statement thread's
/// own delta). Without a profiler this is exactly TaskPool::Run. Every
/// parallel region — morsel plumbing and the raw sort/join pool sites —
/// must launch through here so instrumented CPU totals stay complete.
void RunPoolProfiled(ExecContext* ctx, int workers,
                     const std::function<void(int)>& fn);

// Unified operator implementations: with workers == 1 they run the exact
// serial loops the executor always had; with workers > 1 the same per-row
// code runs inside morsel workers. exec.cc dispatches here.
/// `candidates` (optional) restricts the scan to the given row ids of
/// p.table->rows(), in the given order — exec.cc passes the ascending
/// (insertion-order) survivor list of partition pruning or an index lookup,
/// so pruned and full scans emit rows in the same order. rows_scanned counts
/// candidates only, identically for serial and parallel execution.
Result<std::vector<Row>> ScanExec(const Plan& p, ExecContext* ctx, int workers,
                                  const std::vector<uint32_t>* candidates =
                                      nullptr);
Result<std::vector<Row>> FilterExec(const Plan& p, ExecContext* ctx,
                                    std::vector<Row> input, int workers);
Result<std::vector<Row>> ProjectExec(const Plan& p, ExecContext* ctx,
                                     std::vector<Row> input, int workers);
/// Equi-key hash join (inner/left/semi/anti; the null-aware anti join and
/// the key-less nested loop stay in exec.cc).
Result<std::vector<Row>> HashJoinExec(const Plan& p, ExecContext* ctx,
                                      std::vector<Row> left_rows,
                                      std::vector<Row> right_rows,
                                      int workers);
Result<std::vector<Row>> AggregateExec(const Plan& p, ExecContext* ctx,
                                       std::vector<Row> input, int workers);

/// ORDER BY (sort.cc): with workers == 1 a single std::stable_sort — the
/// serial executor's historical behavior, with the sort-key slot casts
/// hoisted out of the comparator; with workers > 1 per-worker stable-sorted
/// runs merged pairwise in parallel passes. Ties take the earlier run, so
/// the parallel order is byte-identical to the serial stable sort. Counted
/// in ExecStats::parallel_sorts when workers > 1.
Result<std::vector<Row>> SortExec(const Plan& p, ExecContext* ctx,
                                  std::vector<Row> input, int workers);

/// Fused Sort + Limit (Plan::Kind::kTopN, sort.cc): per-worker bounded
/// max-heaps ordered by (sort keys, input index) keep at most
/// limit + offset candidates each; the merged union sorts and slices to
/// rows [offset, offset + limit) — byte-identical to a full sort followed
/// by OFFSET/LIMIT. Counted in ExecStats::topn_pushdowns; discarded rows in
/// ExecStats::topn_rows_pruned.
Result<std::vector<Row>> TopNExec(const Plan& p, ExecContext* ctx,
                                  std::vector<Row> input, int workers);

}  // namespace parallel
}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_PARALLEL_PARALLEL_H_
