#include "engine/catalog.h"

#include <algorithm>
#include <iterator>

#include "common/str_util.h"

namespace mtbase {
namespace engine {

int TableSchema::FindColumn(const std::string& col) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, col)) return static_cast<int>(i);
  }
  return -1;
}

Status Table::CheckRow(const Row& row) const {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   schema_.name);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (schema_.columns[i].not_null && row[i].is_null()) {
      return Status::ConstraintViolation("NULL in NOT NULL column " +
                                         schema_.columns[i].name);
    }
  }
  return Status::OK();
}

Status Table::Insert(Row row) {
  MTB_RETURN_IF_ERROR(CheckRow(row));
  rows_.push_back(std::move(row));
  ++data_version_;
  return Status::OK();
}

int IndexKeyCompare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return (a.is_null() ? 0 : 1) - (b.is_null() ? 0 : 1);
  }
  auto c = a.Compare(b);
  if (c.ok()) return c.value();
  return static_cast<int>(a.type()) - static_cast<int>(b.type());
}

const std::vector<std::vector<uint32_t>>& Table::PartitionRows() const {
  std::lock_guard<std::mutex> lock(phys_mu_);
  const PartitionScheme& ps = schema_.partition;
  if (!partitions_built_ || partitions_built_version_ != data_version_) {
    partition_rows_.assign(static_cast<size_t>(ps.Count()), {});
    for (size_t i = 0; i < rows_.size(); ++i) {
      int p = ps.RouteValue(rows_[i][static_cast<size_t>(ps.column)]);
      partition_rows_[static_cast<size_t>(p)].push_back(
          static_cast<uint32_t>(i));
    }
    partitions_built_version_ = data_version_;
    partitions_built_ = true;
  }
  return partition_rows_;
}

const TableIndex* Table::FindIndex(const std::string& name) const {
  for (const auto& ix : indexes_) {
    if (EqualsIgnoreCase(ix.name, name)) return &ix;
  }
  return nullptr;
}

const TableIndex* Table::FindIndexLeadingOn(int slot) const {
  for (const auto& ix : indexes_) {
    if (!ix.slots.empty() && ix.slots[0] == slot) return &ix;
  }
  return nullptr;
}

Status Table::AddIndex(TableIndex index) {
  if (FindIndex(index.name) != nullptr) {
    return Status::AlreadyExists("index " + index.name + " already exists");
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

bool Table::RemoveIndex(const std::string& name) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (EqualsIgnoreCase(it->name, name)) {
      indexes_.erase(it);
      return true;
    }
  }
  return false;
}

const std::vector<uint32_t>& Table::IndexOrder(const TableIndex& index) const {
  std::lock_guard<std::mutex> lock(phys_mu_);
  if (!index.built || index.built_version != data_version_) {
    index.order.resize(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      index.order[i] = static_cast<uint32_t>(i);
    }
    std::stable_sort(index.order.begin(), index.order.end(),
                     [&](uint32_t a, uint32_t b) {
                       for (int slot : index.slots) {
                         int c = IndexKeyCompare(
                             rows_[a][static_cast<size_t>(slot)],
                             rows_[b][static_cast<size_t>(slot)]);
                         if (c != 0) return c < 0;
                       }
                       return false;  // stable: insertion order breaks ties
                     });
    index.built_version = data_version_;
    index.built = true;
  }
  return index.order;
}

uint64_t Catalog::data_version() const {
  uint64_t sum = 0;
  for (const auto& [key, table] : tables_) sum += table->data_version();
  return sum;
}

Status Catalog::CreateTable(TableSchema schema) {
  std::string key = ToLowerCopy(schema.name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::AlreadyExists("relation " + schema.name + " already exists");
  }
  tables_[key] = std::make_unique<Table>(std::move(schema));
  ++version_;
  return Status::OK();
}

Status Catalog::CreateView(std::string name,
                           std::unique_ptr<sql::SelectStmt> select) {
  std::string key = ToLowerCopy(name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::AlreadyExists("relation " + name + " already exists");
  }
  views_[key] = ViewDef{std::move(name), std::move(select)};
  ++version_;
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToLowerCopy(name);
  if (!tables_.erase(key)) {
    return Status::NotFound("table " + name + " does not exist");
  }
  for (auto it = index_to_table_.begin(); it != index_to_table_.end();) {
    it = it->second == key ? index_to_table_.erase(it) : std::next(it);
  }
  ++version_;
  return Status::OK();
}

Status Catalog::CreateIndex(const std::string& name, const std::string& table,
                            const std::vector<std::string>& columns) {
  std::string key = ToLowerCopy(name);
  if (index_to_table_.count(key)) {
    return Status::AlreadyExists("index " + name + " already exists");
  }
  Table* t = FindTable(table);
  if (t == nullptr) {
    return Status::NotFound("table " + table + " does not exist");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("index " + name + " needs key columns");
  }
  TableIndex ix;
  ix.name = name;
  ix.columns = columns;
  for (const auto& c : columns) {
    int slot = t->schema().FindColumn(c);
    if (slot < 0) {
      return Status::NotFound("column " + c + " does not exist in " + table);
    }
    ix.slots.push_back(slot);
  }
  MTB_RETURN_IF_ERROR(t->AddIndex(std::move(ix)));
  index_to_table_[key] = ToLowerCopy(table);
  ++version_;
  return Status::OK();
}

Status Catalog::DropIndex(const std::string& name) {
  std::string key = ToLowerCopy(name);
  auto it = index_to_table_.find(key);
  if (it == index_to_table_.end()) {
    return Status::NotFound("index " + name + " does not exist");
  }
  auto table_it = tables_.find(it->second);
  if (table_it != tables_.end()) table_it->second->RemoveIndex(name);
  index_to_table_.erase(it);
  ++version_;
  return Status::OK();
}

Status Catalog::DropView(const std::string& name) {
  if (!views_.erase(ToLowerCopy(name))) {
    return Status::NotFound("view " + name + " does not exist");
  }
  ++version_;
  return Status::OK();
}

Table* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLowerCopy(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const ViewDef* Catalog::FindView(const std::string& name) const {
  auto it = views_.find(ToLowerCopy(name));
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->schema().name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace engine
}  // namespace mtbase
