#include "engine/catalog.h"

#include <algorithm>
#include <iterator>

#include "common/str_util.h"

namespace mtbase {
namespace engine {

int TableSchema::FindColumn(const std::string& col) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, col)) return static_cast<int>(i);
  }
  return -1;
}

Status Table::CheckRow(const Row& row) const {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   schema_.name);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (schema_.columns[i].not_null && row[i].is_null()) {
      return Status::ConstraintViolation("NULL in NOT NULL column " +
                                         schema_.columns[i].name);
    }
  }
  return Status::OK();
}

Status Table::Insert(Row row) {
  std::vector<Row> staged;
  staged.push_back(std::move(row));
  return AppendRows(std::move(staged));
}

Table::RowsSnapshot Table::Snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  pins_->fetch_add(1, std::memory_order_relaxed);
  // The snapshot aliases the current vector and keeps it alive via the
  // captured shared_ptr; its deleter releases the pin with release ordering
  // so a writer's acquire load of pins_ orders this reader's scans first.
  std::shared_ptr<const std::vector<Row>> pinned(
      rows_.get(), [keep = rows_, pins = pins_](const std::vector<Row>*) {
        pins->fetch_sub(1, std::memory_order_release);
      });
  return RowsSnapshot{std::move(pinned),
                      data_version_.load(std::memory_order_relaxed)};
}

size_t Table::row_count() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return rows_->size();
}

void Table::Reserve(size_t n) {
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (pins_->load(std::memory_order_acquire) == 0) rows_->reserve(n);
}

Status Table::AppendRows(std::vector<Row> staged) {
  for (const Row& row : staged) MTB_RETURN_IF_ERROR(CheckRow(row));
  std::lock_guard<std::mutex> write(write_mu_);
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (pins_->load(std::memory_order_acquire) > 0) {
    // A reader holds (or recently held and may still be draining) a pinned
    // snapshot: copy-on-write so every pinned view stays immutable. With no
    // pins (the common bulk-load case) append in place — no reader can
    // acquire a new pin while we hold snap_mu_, and the acquire load orders
    // every departed reader's scans before this append.
    rows_ = std::make_shared<std::vector<Row>>(*rows_);
  }
  rows_->reserve(rows_->size() + staged.size());
  for (Row& row : staged) rows_->push_back(std::move(row));
  data_version_.fetch_add(staged.size(), std::memory_order_acq_rel);
  return Status::OK();
}

void Table::ReplaceRows(std::vector<Row> next) {
  std::lock_guard<std::mutex> lock(snap_mu_);
  rows_ = std::make_shared<std::vector<Row>>(std::move(next));
  data_version_.fetch_add(1, std::memory_order_acq_rel);
}

std::unique_lock<std::mutex> Table::LockForWrite() const {
  return std::unique_lock<std::mutex>(write_mu_);
}

int IndexKeyCompare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return (a.is_null() ? 0 : 1) - (b.is_null() ? 0 : 1);
  }
  auto c = a.Compare(b);
  if (c.ok()) return c.value();
  return static_cast<int>(a.type()) - static_cast<int>(b.type());
}

std::shared_ptr<const std::vector<std::vector<uint32_t>>>
Table::PartitionRowsAt(uint64_t* built_version) const {
  std::lock_guard<std::mutex> lock(phys_mu_);
  if (!partitions_built_ ||
      partitions_built_version_ != data_version()) {
    RowsSnapshot snap = Snapshot();
    const std::vector<Row>& rows = *snap.rows;
    const PartitionScheme& ps = schema_.partition;
    auto built = std::make_shared<std::vector<std::vector<uint32_t>>>(
        static_cast<size_t>(ps.Count()));
    for (size_t i = 0; i < rows.size(); ++i) {
      int p = ps.RouteValue(rows[i][static_cast<size_t>(ps.column)]);
      (*built)[static_cast<size_t>(p)].push_back(static_cast<uint32_t>(i));
    }
    partition_rows_ = std::move(built);
    partitions_built_version_ = snap.version;
    partitions_built_ = true;
  }
  if (built_version != nullptr) *built_version = partitions_built_version_;
  return partition_rows_;
}

const TableIndex* Table::FindIndex(const std::string& name) const {
  for (const auto& ix : indexes_) {
    if (EqualsIgnoreCase(ix.name, name)) return &ix;
  }
  return nullptr;
}

const TableIndex* Table::FindIndexLeadingOn(int slot) const {
  for (const auto& ix : indexes_) {
    if (!ix.slots.empty() && ix.slots[0] == slot) return &ix;
  }
  return nullptr;
}

Status Table::AddIndex(TableIndex index) {
  if (FindIndex(index.name) != nullptr) {
    return Status::AlreadyExists("index " + index.name + " already exists");
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

bool Table::RemoveIndex(const std::string& name) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (EqualsIgnoreCase(it->name, name)) {
      indexes_.erase(it);
      return true;
    }
  }
  return false;
}

std::shared_ptr<const std::vector<uint32_t>> Table::IndexOrderAt(
    const TableIndex& index, uint64_t* built_version) const {
  std::lock_guard<std::mutex> lock(phys_mu_);
  if (!index.built || index.built_version != data_version()) {
    RowsSnapshot snap = Snapshot();
    const std::vector<Row>& rows = *snap.rows;
    auto order = std::make_shared<std::vector<uint32_t>>(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      (*order)[i] = static_cast<uint32_t>(i);
    }
    std::stable_sort(order->begin(), order->end(),
                     [&](uint32_t a, uint32_t b) {
                       for (int slot : index.slots) {
                         int c = IndexKeyCompare(
                             rows[a][static_cast<size_t>(slot)],
                             rows[b][static_cast<size_t>(slot)]);
                         if (c != 0) return c < 0;
                       }
                       return false;  // stable: insertion order breaks ties
                     });
    index.order = std::move(order);
    index.built_version = snap.version;
    index.built = true;
  }
  if (built_version != nullptr) *built_version = index.built_version;
  return index.order;
}

uint64_t Catalog::data_version() const {
  uint64_t sum = 0;
  for (const auto& [key, table] : tables_) sum += table->data_version();
  return sum;
}

Status Catalog::CreateTable(TableSchema schema) {
  std::string key = ToLowerCopy(schema.name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::AlreadyExists("relation " + schema.name + " already exists");
  }
  tables_[key] = std::make_unique<Table>(std::move(schema));
  ++version_;
  return Status::OK();
}

Status Catalog::CreateView(std::string name,
                           std::unique_ptr<sql::SelectStmt> select) {
  std::string key = ToLowerCopy(name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::AlreadyExists("relation " + name + " already exists");
  }
  views_[key] = ViewDef{std::move(name), std::move(select)};
  ++version_;
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToLowerCopy(name);
  if (!tables_.erase(key)) {
    return Status::NotFound("table " + name + " does not exist");
  }
  for (auto it = index_to_table_.begin(); it != index_to_table_.end();) {
    it = it->second == key ? index_to_table_.erase(it) : std::next(it);
  }
  ++version_;
  return Status::OK();
}

Status Catalog::CreateIndex(const std::string& name, const std::string& table,
                            const std::vector<std::string>& columns) {
  std::string key = ToLowerCopy(name);
  if (index_to_table_.count(key)) {
    return Status::AlreadyExists("index " + name + " already exists");
  }
  Table* t = FindTable(table);
  if (t == nullptr) {
    return Status::NotFound("table " + table + " does not exist");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("index " + name + " needs key columns");
  }
  TableIndex ix;
  ix.name = name;
  ix.columns = columns;
  for (const auto& c : columns) {
    int slot = t->schema().FindColumn(c);
    if (slot < 0) {
      return Status::NotFound("column " + c + " does not exist in " + table);
    }
    ix.slots.push_back(slot);
  }
  MTB_RETURN_IF_ERROR(t->AddIndex(std::move(ix)));
  index_to_table_[key] = ToLowerCopy(table);
  ++version_;
  return Status::OK();
}

Status Catalog::DropIndex(const std::string& name) {
  std::string key = ToLowerCopy(name);
  auto it = index_to_table_.find(key);
  if (it == index_to_table_.end()) {
    return Status::NotFound("index " + name + " does not exist");
  }
  auto table_it = tables_.find(it->second);
  if (table_it != tables_.end()) table_it->second->RemoveIndex(name);
  index_to_table_.erase(it);
  ++version_;
  return Status::OK();
}

Status Catalog::DropView(const std::string& name) {
  if (!views_.erase(ToLowerCopy(name))) {
    return Status::NotFound("view " + name + " does not exist");
  }
  ++version_;
  return Status::OK();
}

Table* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLowerCopy(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const ViewDef* Catalog::FindView(const std::string& name) const {
  auto it = views_.find(ToLowerCopy(name));
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->schema().name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace engine
}  // namespace mtbase
