#include "engine/catalog.h"

#include <algorithm>

#include "common/str_util.h"

namespace mtbase {
namespace engine {

int TableSchema::FindColumn(const std::string& col) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, col)) return static_cast<int>(i);
  }
  return -1;
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   schema_.name);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (schema_.columns[i].not_null && row[i].is_null()) {
      return Status::ConstraintViolation("NULL in NOT NULL column " +
                                         schema_.columns[i].name);
    }
  }
  rows_.push_back(std::move(row));
  ++data_version_;
  return Status::OK();
}

uint64_t Catalog::data_version() const {
  uint64_t sum = 0;
  for (const auto& [key, table] : tables_) sum += table->data_version();
  return sum;
}

Status Catalog::CreateTable(TableSchema schema) {
  std::string key = ToLowerCopy(schema.name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::AlreadyExists("relation " + schema.name + " already exists");
  }
  tables_[key] = std::make_unique<Table>(std::move(schema));
  ++version_;
  return Status::OK();
}

Status Catalog::CreateView(std::string name,
                           std::unique_ptr<sql::SelectStmt> select) {
  std::string key = ToLowerCopy(name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::AlreadyExists("relation " + name + " already exists");
  }
  views_[key] = ViewDef{std::move(name), std::move(select)};
  ++version_;
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (!tables_.erase(ToLowerCopy(name))) {
    return Status::NotFound("table " + name + " does not exist");
  }
  ++version_;
  return Status::OK();
}

Status Catalog::DropView(const std::string& name) {
  if (!views_.erase(ToLowerCopy(name))) {
    return Status::NotFound("view " + name + " does not exist");
  }
  ++version_;
  return Status::OK();
}

Table* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLowerCopy(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const ViewDef* Catalog::FindView(const std::string& name) const {
  auto it = views_.find(ToLowerCopy(name));
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->schema().name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace engine
}  // namespace mtbase
