// Static plan verification: invariant proofs over bound physical plans.
//
// The MTSQL-to-SQL rewriter's whole correctness story rests on the tenant
// predicates and conversion calls it injects (paper section 3.1) — but until
// this subsystem, nothing *checked* that the planner and executor preserved
// those guarantees. PlanVerifier walks every bound physical plan post-
// planning, pre-execution and proves three invariant families without
// executing anything:
//
//   1. Tenant isolation — every base-table access to a tenant-specific table
//      must be dominated by a ttid-restricting predicate whose tenant set is
//      a subset of the expected dataset D' (or an equi-join on ttid against
//      an already-restricted column). The check is semantic slot-dominance
//      analysis over the bound tree, not string matching: the MT layer
//      passes the expected tenant set down via VerifyContext.
//   2. Parallel-safety consistency — a node marked Plan::parallel_safe must
//      transitively contain no volatile/stable UDF calls, outer references,
//      sub-plans or serial-only operator shapes. The rule is restated here
//      independently of parallel::MarkParallelSafe on purpose: two
//      implementations of the same spec catch drift between the planner's
//      marking logic and what the parallel operators actually tolerate.
//   3. Structural soundness — slot references in range, operator output
//      arity agreement, join key pairing, sort/top-N key slots in range,
//      non-negative LIMIT/OFFSET.
//
// Violations carry a machine-readable code plus the offending subtree
// rendered through the EXPLAIN grammar. Enforcement (execution refusing
// violating plans) is always on in debug builds and opt-in via
// MTBASE_VERIFY_PLANS=1 elsewhere; see docs/ARCHITECTURE.md "Plan verifier".
#ifndef MTBASE_ENGINE_VERIFY_VERIFIER_H_
#define MTBASE_ENGINE_VERIFY_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/bound.h"

namespace mtbase {
namespace engine {
namespace verify {

enum class ViolationCode : uint8_t {
  /// A tenant-specific base table is scanned with no dominating
  /// ttid-restricting predicate on its access path.
  kTenantPredicateMissing,
  /// A ttid predicate exists but admits tenants outside the expected set D'.
  kTenantSetMismatch,
  /// A subplan marked parallel_safe contains serial-only state (volatile or
  /// stable UDF calls, outer references, sub-plans, serial operator shapes).
  kParallelUnsafeSubplan,
  /// An expression references a slot outside its input layout.
  kSlotOutOfRange,
  /// Operator output arity disagrees with its inputs (or a child is missing).
  kArityMismatch,
  /// Join key lists are unpaired (left/right counts differ, or the
  /// null-aware key prefix exceeds the key count).
  kJoinKeyMismatch,
  /// A sort/top-N key slot lies outside the child layout.
  kSortKeyOutOfRange,
  /// A LIMIT/OFFSET operator carries a negative bound.
  kNegativeLimit,
  /// A pruned scan of a ttid-partitioned tenant table selects partitions
  /// outside the image of the expected tenant set D' under the table's
  /// routing function (or an out-of-range partition id).
  kPartitionSetMismatch,
};

/// The stable machine-readable name, e.g. "TENANT_PREDICATE_MISSING".
const char* ViolationCodeName(ViolationCode code);

struct Violation {
  ViolationCode code = ViolationCode::kTenantPredicateMissing;
  std::string detail;   // one human-readable sentence
  std::string subtree;  // offending plan subtree, EXPLAIN-rendered
};

/// What the verifier is allowed to assume about the plan's provenance. A
/// default-constructed context runs the engine-level checks only (structure,
/// parallel safety); the MT layer fills in the tenant fields per compiled
/// statement so the isolation check is semantic, not syntactic.
struct VerifyContext {
  /// Run the tenant-isolation analysis. Off for plain-SQL embedders whose
  /// plans carry no multi-tenant contract.
  bool check_tenant = false;
  /// Name of the physical tenant meta column (mt::kTtidColumn).
  std::string ttid_column = "ttid";
  /// Engine-level names of tenant-specific tables (case-insensitive match).
  std::vector<std::string> tenant_tables;
  /// The expected dataset D': every ttid predicate must restrict to a subset.
  std::vector<int64_t> expected_tenants;
  /// D' covers all registered tenants and the rewriter elided the D-filters
  /// (o1, paper section 4.1) — unrestricted access is then, trivially,
  /// isolation-preserving.
  bool allow_unfiltered = false;
};

struct VerifyResult {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  /// "ok" or "FAILED CODE1, CODE2" (codes deduplicated, first-seen order) —
  /// the EXPLAIN (VERIFY) annotation body.
  std::string Summary() const;
  /// Multi-line rendering of every violation (code, detail, subtree) for
  /// error statuses and test failure output.
  std::string Message() const;
};

class PlanVerifier {
 public:
  /// `ctx` may be null (engine-level checks only) and is not owned; it must
  /// outlive the verifier.
  explicit PlanVerifier(const VerifyContext* ctx = nullptr) : ctx_(ctx) {}

  /// Prove the invariants over `plan`, including sub-plans reachable from
  /// its expressions and the body plans of UDFs it calls.
  VerifyResult Verify(const Plan& plan) const;

 private:
  const VerifyContext* ctx_;
};

/// Whether compile-time enforcement is on: plans failing verification refuse
/// to execute. Always on in debug builds (!NDEBUG); MTBASE_VERIFY_PLANS=1
/// turns it on in release builds and MTBASE_VERIFY_PLANS=0 forces it off.
/// Read per call so tests can toggle the environment in-process.
bool VerificationEnabled();

}  // namespace verify
}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_VERIFY_VERIFIER_H_
