// Test-only plan mutations: deliberately break a bound plan's invariants so
// the negative suites can prove PlanVerifier detects each violation class.
// Installed through Database::set_plan_mutation_hook_for_testing(); never
// called on a production path.
#ifndef MTBASE_ENGINE_VERIFY_MUTATORS_H_
#define MTBASE_ENGINE_VERIFY_MUTATORS_H_

#include <string>

#include "engine/bound.h"

namespace mtbase {
namespace engine {
namespace verify {

/// Remove every conjunct that restricts a column named `ttid_column` (IN-list
/// or equality against literals) from scan filters, filter predicates and
/// join residuals, recursively — simulating a rewriter that forgot its
/// D-filters. Returns the number of conjuncts stripped (0 means the plan had
/// no tenant predicates to lose, e.g. at o1 with a full dataset).
int StripTenantPredicates(Plan* plan, const std::string& ttid_column);

/// Flip the first node the planner left serial to parallel_safe — simulating
/// marking-logic drift. Returns false when every node was already safe.
bool MislabelFirstSerialNode(Plan* plan);

/// Point the first sort/top-N key at a slot one past the child layout —
/// simulating a planner slot-bookkeeping bug. Returns false when the plan
/// has no sort keys.
bool BreakFirstSortKey(Plan* plan);

/// Widen the first pruned scan's partition set to every partition of its
/// table — simulating a pruning pass whose superset cut drifted past the
/// D-filter's tenant image. Returns false when no scan was pruned.
bool WidenPartitionPruning(Plan* plan);

}  // namespace verify
}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_VERIFY_MUTATORS_H_
