#include "engine/verify/verifier.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <set>
#include <utility>

#include "common/str_util.h"
#include "engine/catalog.h"
#include "engine/explain.h"
#include "engine/udf.h"

namespace mtbase {
namespace engine {
namespace verify {

const char* ViolationCodeName(ViolationCode code) {
  switch (code) {
    case ViolationCode::kTenantPredicateMissing:
      return "TENANT_PREDICATE_MISSING";
    case ViolationCode::kTenantSetMismatch:
      return "TENANT_SET_MISMATCH";
    case ViolationCode::kParallelUnsafeSubplan:
      return "PARALLEL_UNSAFE_SUBPLAN";
    case ViolationCode::kSlotOutOfRange:
      return "SLOT_OUT_OF_RANGE";
    case ViolationCode::kArityMismatch:
      return "ARITY_MISMATCH";
    case ViolationCode::kJoinKeyMismatch:
      return "JOIN_KEY_MISMATCH";
    case ViolationCode::kSortKeyOutOfRange:
      return "SORT_KEY_OUT_OF_RANGE";
    case ViolationCode::kNegativeLimit:
      return "NEGATIVE_LIMIT";
    case ViolationCode::kPartitionSetMismatch:
      return "PARTITION_SET_MISMATCH";
  }
  return "UNKNOWN";
}

std::string VerifyResult::Summary() const {
  if (violations.empty()) return "ok";
  std::string out = "FAILED ";
  std::vector<ViolationCode> seen;
  for (const Violation& v : violations) {
    if (std::find(seen.begin(), seen.end(), v.code) != seen.end()) continue;
    if (!seen.empty()) out += ", ";
    out += ViolationCodeName(v.code);
    seen.push_back(v.code);
  }
  return out;
}

std::string VerifyResult::Message() const {
  std::string out;
  for (const Violation& v : violations) {
    if (!out.empty()) out += "\n";
    out += ViolationCodeName(v.code);
    out += ": ";
    out += v.detail;
    if (!v.subtree.empty()) {
      out += "\n";
      out += v.subtree;
    }
  }
  return out;
}

bool VerificationEnabled() {
  // Read per call (statement compiles are rare and cached) so tests can flip
  // the environment in-process without fighting a cached static.
  if (const char* env = std::getenv("MTBASE_VERIFY_PLANS")) {
    if (env[0] != '\0') return std::strcmp(env, "0") != 0;
  }
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

namespace {

/// A ttid output slot of a tenant-specific scan whose restriction state is
/// tracked up the plan tree.
struct TtidSlot {
  int slot = 0;            // position in the current node's output layout
  const Plan* scan = nullptr;  // the originating scan, for rendering
  std::string table;       // table name, for the violation detail
};

/// Per-node tenant analysis state: `pending` slots still need a dominating
/// restriction; `restricted` slots are proven limited to a subset of D'
/// (used for equi-join transfer: ttid_a = ttid_b AND ttid_b IN D' implies
/// ttid_a IN D').
struct TenantState {
  std::vector<TtidSlot> pending;
  std::vector<int> restricted;
};

/// What a single conjunct says about slot `slot`.
enum class ConjunctVerdict { kNone, kRestricts, kMismatch };

class VerifierImpl {
 public:
  explicit VerifierImpl(const VerifyContext* ctx) : ctx_(ctx) {
    if (ctx_ != nullptr) {
      expected_sorted_ = ctx_->expected_tenants;
      std::sort(expected_sorted_.begin(), expected_sorted_.end());
    }
  }

  VerifyResult Run(const Plan& plan) {
    TenantState state = VerifyNode(plan);
    // Anything still unrestricted at the plan root was readable without a
    // dominating tenant predicate.
    for (const TtidSlot& t : state.pending) ReportPending(t);
    return std::move(result_);
  }

 private:
  // -- reporting ----------------------------------------------------------

  void Report(ViolationCode code, std::string detail, const Plan* subtree) {
    Violation v;
    v.code = code;
    v.detail = std::move(detail);
    if (subtree != nullptr) v.subtree = ExplainPlan(*subtree);
    result_.violations.push_back(std::move(v));
  }

  void ReportPending(const TtidSlot& t) {
    Report(ViolationCode::kTenantPredicateMissing,
           "scan of tenant-specific table " + t.table +
               " has no dominating " + ctx_->ttid_column +
               "-restricting predicate on its access path",
           t.scan);
  }

  // -- tenant-isolation helpers -------------------------------------------

  bool TenantChecksOn() const {
    return ctx_ != nullptr && ctx_->check_tenant;
  }

  bool IsTenantTable(const Table& table) const {
    for (const std::string& name : ctx_->tenant_tables) {
      if (EqualsIgnoreCase(name, table.schema().name)) return true;
    }
    return false;
  }

  /// Collect the integer literal set of a ttid predicate; false when any
  /// member is not an INT literal (then the conjunct does not restrict).
  static bool LiteralSetOf(const std::vector<BoundExprPtr>& args, size_t from,
                           std::vector<int64_t>* out) {
    for (size_t i = from; i < args.size(); ++i) {
      const BoundExpr& a = *args[i];
      if (a.kind != BoundExpr::Kind::kLiteral ||
          a.literal.type() != TypeId::kInt) {
        return false;
      }
      out->push_back(a.literal.int_value());
    }
    return true;
  }

  bool SubsetOfExpected(const std::vector<int64_t>& set) const {
    for (int64_t v : set) {
      if (!std::binary_search(expected_sorted_.begin(), expected_sorted_.end(),
                              v)) {
        return false;
      }
    }
    return true;
  }

  /// Does this conjunct restrict `slot` to a literal tenant set? Handles the
  /// rewriter's D-filter shapes: `ttid IN (l1, ..., ln)` and `ttid = l`.
  ConjunctVerdict JudgeConjunct(const BoundExpr& e, int slot) const {
    std::vector<int64_t> lits;
    if (e.kind == BoundExpr::Kind::kInList && !e.negated &&
        !e.args.empty() && e.args[0]->kind == BoundExpr::Kind::kSlot &&
        e.args[0]->slot == slot) {
      if (!LiteralSetOf(e.args, 1, &lits)) return ConjunctVerdict::kNone;
    } else if (e.kind == BoundExpr::Kind::kBinary && e.bin_op == BinOp::kEq &&
               e.args.size() == 2) {
      const BoundExpr& l = *e.args[0];
      const BoundExpr& r = *e.args[1];
      const BoundExpr* lit = nullptr;
      if (l.kind == BoundExpr::Kind::kSlot && l.slot == slot) {
        lit = &r;
      } else if (r.kind == BoundExpr::Kind::kSlot && r.slot == slot) {
        lit = &l;
      }
      if (lit == nullptr || lit->kind != BoundExpr::Kind::kLiteral ||
          lit->literal.type() != TypeId::kInt) {
        return ConjunctVerdict::kNone;
      }
      lits.push_back(lit->literal.int_value());
    } else {
      return ConjunctVerdict::kNone;
    }
    return SubsetOfExpected(lits) ? ConjunctVerdict::kRestricts
                                  : ConjunctVerdict::kMismatch;
  }

  /// Judge every AND-conjunct of `pred` against `slot` (OR branches never
  /// dominate and are not descended into). A restricting conjunct wins over
  /// a mismatching one: `ttid IN D' AND ttid IN superset` is restricted.
  ConjunctVerdict JudgePredicate(const BoundExpr& pred, int slot) const {
    if (pred.kind == BoundExpr::Kind::kBinary &&
        pred.bin_op == BinOp::kAnd && pred.args.size() == 2) {
      ConjunctVerdict a = JudgePredicate(*pred.args[0], slot);
      if (a == ConjunctVerdict::kRestricts) return a;
      ConjunctVerdict b = JudgePredicate(*pred.args[1], slot);
      if (b == ConjunctVerdict::kRestricts) return b;
      return a == ConjunctVerdict::kMismatch ? a : b;
    }
    return JudgeConjunct(pred, slot);
  }

  /// Apply a predicate over `state`'s layout (offset already applied by the
  /// caller): pending slots restricted by a conjunct move to `restricted`;
  /// mismatching predicates are reported once, here, with the scan subtree.
  void ApplyPredicate(const BoundExpr& pred, TenantState* state) {
    std::vector<TtidSlot> still_pending;
    for (TtidSlot& t : state->pending) {
      switch (JudgePredicate(pred, t.slot)) {
        case ConjunctVerdict::kRestricts:
          state->restricted.push_back(t.slot);
          break;
        case ConjunctVerdict::kMismatch:
          Report(ViolationCode::kTenantSetMismatch,
                 "predicate over " + ctx_->ttid_column + " of " + t.table +
                     " admits tenants outside the expected dataset",
                 t.scan);
          break;
        case ConjunctVerdict::kNone:
          still_pending.push_back(std::move(t));
          break;
      }
    }
    state->pending = std::move(still_pending);
  }

  // -- structural helpers --------------------------------------------------

  /// Check every slot/outer-slot reference in `e` against the input arity.
  /// `outer_arities` mirrors the enclosing layouts for kOuterSlot checks
  /// (back = depth 1).
  void CheckExprSlots(const BoundExpr& e, size_t arity, const Plan* node,
                      const char* what) {
    if (e.kind == BoundExpr::Kind::kSlot &&
        (e.slot < 0 || static_cast<size_t>(e.slot) >= arity)) {
      Report(ViolationCode::kSlotOutOfRange,
             std::string(what) + " references slot " + std::to_string(e.slot) +
                 " but the input layout has " + std::to_string(arity) +
                 " columns",
             node);
    }
    if (e.kind == BoundExpr::Kind::kOuterSlot) {
      if (e.depth < 1 ||
          static_cast<size_t>(e.depth) > outer_arities_.size()) {
        Report(ViolationCode::kSlotOutOfRange,
               std::string(what) + " outer reference at depth " +
                   std::to_string(e.depth) + " exceeds the enclosing nesting",
               node);
      } else {
        size_t outer =
            outer_arities_[outer_arities_.size() - static_cast<size_t>(e.depth)];
        if (e.slot < 0 || static_cast<size_t>(e.slot) >= outer) {
          Report(ViolationCode::kSlotOutOfRange,
                 std::string(what) + " outer reference slot " +
                     std::to_string(e.slot) + " exceeds the enclosing layout",
                 node);
        }
      }
    }
    ForEachExprChild(e, [&](const BoundExpr& c) {
      CheckExprSlots(c, arity, node, what);
    });
  }

  // -- parallel-safety consistency -----------------------------------------

  /// Independent restatement of the parallel-safety contract (parallel.h):
  /// worker-evaluated expressions must not reach sub-plans (per-statement
  /// InitPlan caches are serial state), outer rows, or UDFs whose bodies are
  /// not immutable. Deliberately NOT a call into parallel::MarkParallelSafe —
  /// re-deriving the rule is what lets the verifier catch drift between the
  /// planner's marking and the operators' assumptions.
  const char* ExprParallelHazard(const BoundExpr& e) const {
    if (e.subplan != nullptr) return "a sub-plan (serial InitPlan state)";
    if (e.kind == BoundExpr::Kind::kOuterSlot) return "an outer reference";
    if (e.kind == BoundExpr::Kind::kUdfCall &&
        (e.udf == nullptr || !e.udf->immutable())) {
      return "a volatile/stable UDF call";
    }
    const char* hazard = nullptr;
    ForEachExprChild(e, [&](const BoundExpr& c) {
      if (hazard == nullptr) hazard = ExprParallelHazard(c);
    });
    return hazard;
  }

  /// Serial-only operator shapes (the executor has no parallel
  /// implementation for them; parallel.h "Safety").
  const char* NodeShapeHazard(const Plan& p) const {
    switch (p.kind) {
      case Plan::Kind::kLimit:
        return "LIMIT is a serial operator";
      case Plan::Kind::kDistinct:
        return "DISTINCT is a serial operator";
      case Plan::Kind::kJoin:
        if (p.left_keys.empty()) return "nested-loop joins run serially";
        if (p.null_aware) return "null-aware anti joins run serially";
        return nullptr;
      case Plan::Kind::kAggregate:
        for (const auto& a : p.aggs) {
          if (a.distinct) return "DISTINCT aggregates run serially";
        }
        return nullptr;
      case Plan::Kind::kScan:
        if (p.table == nullptr) return "dual scans have no morsel source";
        return nullptr;
      case Plan::Kind::kIndexScan:
        return "index scans run serially (ordered binary search)";
      default:
        return nullptr;
    }
  }

  void CheckParallelSafety(const Plan& p) {
    if (!p.parallel_safe) return;
    if (const char* hazard = NodeShapeHazard(p)) {
      Report(ViolationCode::kParallelUnsafeSubplan,
             std::string("operator is marked parallel_safe but ") + hazard,
             &p);
      return;
    }
    const char* hazard = nullptr;
    ForEachPlanExpr(p, [&](const BoundExpr& e) {
      if (hazard == nullptr) hazard = ExprParallelHazard(e);
    });
    if (hazard != nullptr) {
      Report(ViolationCode::kParallelUnsafeSubplan,
             std::string("operator is marked parallel_safe but contains ") +
                 hazard,
             &p);
    }
  }

  // -- sub-plans reachable from expressions --------------------------------

  /// Verify sub-plans hanging off `e` (InitPlans, per-row fallbacks) and the
  /// body plans of called UDFs. Each is an independent plan root: leftover
  /// pending ttid slots there are violations of their own. `arity` is the
  /// enclosing input layout the sub-plan's outer references resolve against.
  void VerifyExprSubplans(const BoundExpr& e, size_t arity) {
    if (e.subplan != nullptr) {
      outer_arities_.push_back(arity);
      TenantState sub = VerifyNode(*e.subplan);
      for (const TtidSlot& t : sub.pending) ReportPending(t);
      outer_arities_.pop_back();
    }
    if (e.kind == BoundExpr::Kind::kUdfCall && e.udf != nullptr &&
        e.udf->body_plan != nullptr &&
        verified_bodies_.insert(e.udf->body_plan.get()).second) {
      // UDF bodies are closed plans (parameters, not outer slots); verify
      // each distinct body once per statement.
      std::vector<size_t> saved;
      saved.swap(outer_arities_);
      TenantState body = VerifyNode(*e.udf->body_plan);
      for (const TtidSlot& t : body.pending) ReportPending(t);
      outer_arities_.swap(saved);
    }
    ForEachExprChild(e, [&](const BoundExpr& c) {
      VerifyExprSubplans(c, arity);
    });
  }

  // -- the walk ------------------------------------------------------------

  /// Offset every slot of `s` by `delta` (right join side in a concat
  /// layout) and append to `out`.
  static void AppendOffset(TenantState&& s, int delta, TenantState* out) {
    for (TtidSlot& t : s.pending) {
      t.slot += delta;
      out->pending.push_back(std::move(t));
    }
    for (int r : s.restricted) out->restricted.push_back(r + delta);
  }

  TenantState VerifyNode(const Plan& p) {
    switch (p.kind) {
      case Plan::Kind::kScan:
      case Plan::Kind::kIndexScan:
        return VerifyScan(p);
      case Plan::Kind::kJoin:
        return VerifyJoin(p);
      case Plan::Kind::kFilter:
        return VerifyFilter(p);
      case Plan::Kind::kProject:
        return VerifyProject(p);
      case Plan::Kind::kAggregate:
        return VerifyAggregate(p);
      case Plan::Kind::kSort:
      case Plan::Kind::kTopN:
        return VerifySort(p);
      case Plan::Kind::kLimit:
      case Plan::Kind::kDistinct:
        return VerifyPassThrough(p);
    }
    return TenantState();
  }

  TenantState VerifyScan(const Plan& p) {
    CheckParallelSafety(p);
    if (p.table != nullptr &&
        p.columns.size() != p.table->schema().columns.size()) {
      Report(ViolationCode::kArityMismatch,
             "scan of " + p.table->schema().name + " outputs " +
                 std::to_string(p.columns.size()) + " columns but the table has " +
                 std::to_string(p.table->schema().columns.size()),
             &p);
    }
    if (p.scan_filter) {
      CheckExprSlots(*p.scan_filter, p.columns.size(), &p, "scan filter");
      VerifyExprSubplans(*p.scan_filter, p.columns.size());
    }
    if (TenantChecksOn() && p.table != nullptr && IsTenantTable(*p.table)) {
      VerifyPartitionSet(p);
    }
    TenantState state;
    if (TenantChecksOn() && p.table != nullptr && IsTenantTable(*p.table)) {
      if (ctx_->allow_unfiltered) return state;
      int ttid_slot = -1;
      for (size_t i = 0; i < p.columns.size(); ++i) {
        if (EqualsIgnoreCase(p.columns[i].name, ctx_->ttid_column)) {
          ttid_slot = static_cast<int>(i);
          break;
        }
      }
      if (ttid_slot < 0) {
        Report(ViolationCode::kTenantPredicateMissing,
               "tenant-specific table " + p.table->schema().name +
                   " exposes no " + ctx_->ttid_column +
                   " column to restrict on",
               &p);
        return state;
      }
      TtidSlot t;
      t.slot = ttid_slot;
      t.scan = &p;
      t.table = p.table->schema().name;
      state.pending.push_back(std::move(t));
      if (p.scan_filter) ApplyPredicate(*p.scan_filter, &state);
    }
    return state;
  }

  /// Prove a pruned scan's partition set lies inside the image of D' under
  /// the table's routing function. Pruning is a physical superset cut over a
  /// ttid predicate, so a partition outside {Route(t) : t in D'} (or out of
  /// range) means the planner selected storage no expected tenant routes to —
  /// either a routing drift or a widened cut that breaks the
  /// scan-exactly-one-partition contract single-tenant scopes rely on.
  void VerifyPartitionSet(const Plan& p) {
    if (!p.pruned) return;
    const PartitionScheme& ps = p.table->partition();
    if (!ps.partitioned()) {
      Report(ViolationCode::kPartitionSetMismatch,
             "scan of " + p.table->schema().name +
                 " claims partition pruning but the table is not partitioned",
             &p);
      return;
    }
    const TableSchema& schema = p.table->schema();
    if (ps.column < 0 ||
        static_cast<size_t>(ps.column) >= schema.columns.size() ||
        !EqualsIgnoreCase(schema.columns[static_cast<size_t>(ps.column)].name,
                          ctx_->ttid_column)) {
      // Partitioned on something other than ttid: pruning carries no tenant
      // meaning, nothing to prove here.
      return;
    }
    int64_t count = ps.Count();
    std::vector<uint32_t> allowed;
    allowed.reserve(expected_sorted_.size());
    for (int64_t t : expected_sorted_) {
      allowed.push_back(static_cast<uint32_t>(ps.RouteInt(t)));
    }
    std::sort(allowed.begin(), allowed.end());
    for (uint32_t part : p.partitions) {
      if (part >= static_cast<uint64_t>(count)) {
        Report(ViolationCode::kPartitionSetMismatch,
               "pruned scan of " + p.table->schema().name +
                   " selects partition " + std::to_string(part) +
                   " but the table has only " + std::to_string(count),
               &p);
        return;
      }
      if (ctx_->allow_unfiltered) continue;
      if (!std::binary_search(allowed.begin(), allowed.end(), part)) {
        Report(ViolationCode::kPartitionSetMismatch,
               "pruned scan of " + p.table->schema().name +
                   " selects partition " + std::to_string(part) +
                   " which no expected tenant routes to",
               &p);
        return;
      }
    }
  }

  TenantState VerifyFilter(const Plan& p) {
    CheckParallelSafety(p);
    if (p.left == nullptr) {
      Report(ViolationCode::kArityMismatch, "filter has no input", &p);
      return TenantState();
    }
    TenantState state = VerifyNode(*p.left);
    size_t arity = p.left->columns.size();
    if (p.columns.size() != arity) {
      Report(ViolationCode::kArityMismatch,
             "filter output arity " + std::to_string(p.columns.size()) +
                 " differs from its input arity " + std::to_string(arity),
             &p);
    }
    if (p.predicate) {
      CheckExprSlots(*p.predicate, arity, &p, "filter predicate");
      VerifyExprSubplans(*p.predicate, arity);
      if (TenantChecksOn()) ApplyPredicate(*p.predicate, &state);
    }
    return state;
  }

  /// Remap the child state through a projection list: an output expression
  /// that is a plain slot forwards the child slot. A pending ttid slot that
  /// no output forwards has been projected away unrestricted — no ancestor
  /// can ever restrict it, so that is the point of violation.
  TenantState RemapThroughExprs(TenantState child,
                                const std::vector<BoundExprPtr>& exprs) {
    TenantState out;
    auto forward = [&exprs](int child_slot, int* out_slot) {
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (exprs[i] && exprs[i]->kind == BoundExpr::Kind::kSlot &&
            exprs[i]->slot == child_slot) {
          *out_slot = static_cast<int>(i);
          return true;
        }
      }
      return false;
    };
    for (TtidSlot& t : child.pending) {
      int mapped = 0;
      if (forward(t.slot, &mapped)) {
        t.slot = mapped;
        out.pending.push_back(std::move(t));
      } else {
        ReportPending(t);
      }
    }
    for (int r : child.restricted) {
      int mapped = 0;
      if (forward(r, &mapped)) out.restricted.push_back(mapped);
    }
    return out;
  }

  TenantState VerifyProject(const Plan& p) {
    CheckParallelSafety(p);
    if (p.left == nullptr) {
      Report(ViolationCode::kArityMismatch, "projection has no input", &p);
      return TenantState();
    }
    TenantState child = VerifyNode(*p.left);
    size_t arity = p.left->columns.size();
    if (p.columns.size() != p.exprs.size()) {
      Report(ViolationCode::kArityMismatch,
             "projection outputs " + std::to_string(p.columns.size()) +
                 " columns from " + std::to_string(p.exprs.size()) +
                 " expressions",
             &p);
    }
    for (const auto& e : p.exprs) {
      if (!e) continue;
      CheckExprSlots(*e, arity, &p, "projection expression");
      VerifyExprSubplans(*e, arity);
    }
    return RemapThroughExprs(std::move(child), p.exprs);
  }

  TenantState VerifyAggregate(const Plan& p) {
    CheckParallelSafety(p);
    if (p.left == nullptr) {
      Report(ViolationCode::kArityMismatch, "aggregate has no input", &p);
      return TenantState();
    }
    TenantState child = VerifyNode(*p.left);
    size_t arity = p.left->columns.size();
    if (p.columns.size() != p.exprs.size() + p.aggs.size()) {
      Report(ViolationCode::kArityMismatch,
             "aggregate outputs " + std::to_string(p.columns.size()) +
                 " columns but has " + std::to_string(p.exprs.size()) +
                 " group keys and " + std::to_string(p.aggs.size()) +
                 " aggregates",
             &p);
    }
    for (const auto& e : p.exprs) {
      if (!e) continue;
      CheckExprSlots(*e, arity, &p, "group key");
      VerifyExprSubplans(*e, arity);
    }
    for (const auto& a : p.aggs) {
      if (!a.arg) continue;
      CheckExprSlots(*a.arg, arity, &p, "aggregate argument");
      VerifyExprSubplans(*a.arg, arity);
    }
    // Group keys project like expressions (output slots [0, exprs)); the
    // aggregate outputs never forward a ttid column.
    return RemapThroughExprs(std::move(child), p.exprs);
  }

  TenantState VerifyJoin(const Plan& p) {
    CheckParallelSafety(p);
    if (p.left == nullptr || p.right == nullptr) {
      Report(ViolationCode::kArityMismatch, "join is missing an input", &p);
      return TenantState();
    }
    TenantState left = VerifyNode(*p.left);
    TenantState right = VerifyNode(*p.right);
    size_t larity = p.left->columns.size();
    size_t rarity = p.right->columns.size();

    if (p.left_keys.size() != p.right_keys.size()) {
      Report(ViolationCode::kJoinKeyMismatch,
             "join has " + std::to_string(p.left_keys.size()) +
                 " left keys and " + std::to_string(p.right_keys.size()) +
                 " right keys",
             &p);
    }
    if (p.naaj_in_keys > std::min(p.left_keys.size(), p.right_keys.size())) {
      Report(ViolationCode::kJoinKeyMismatch,
             "null-aware key prefix " + std::to_string(p.naaj_in_keys) +
                 " exceeds the join key count",
             &p);
    }
    for (const auto& k : p.left_keys) {
      CheckExprSlots(*k, larity, &p, "left join key");
      VerifyExprSubplans(*k, larity);
    }
    for (const auto& k : p.right_keys) {
      CheckExprSlots(*k, rarity, &p, "right join key");
      VerifyExprSubplans(*k, rarity);
    }
    if (p.residual) {
      CheckExprSlots(*p.residual, larity + rarity, &p, "join residual");
      VerifyExprSubplans(*p.residual, larity + rarity);
    }

    bool concat_output =
        p.join_kind == JoinKind::kInner || p.join_kind == JoinKind::kLeft;
    size_t expect = concat_output ? larity + rarity : larity;
    if (p.columns.size() != expect) {
      Report(ViolationCode::kArityMismatch,
             "join outputs " + std::to_string(p.columns.size()) +
                 " columns, expected " + std::to_string(expect),
             &p);
    }

    if (!TenantChecksOn()) return TenantState();

    // Work in the concat layout first: the residual and the key transfer
    // both see left and right columns, whatever the output shape is.
    TenantState concat;
    AppendOffset(std::move(left), 0, &concat);
    AppendOffset(std::move(right), static_cast<int>(larity), &concat);
    if (p.residual) {
      // What the residual may restrict depends on the join's semantics:
      // INNER/SEMI output rows all satisfied it (either side); a LEFT
      // join's unmatched left rows survive the ON clause, so only the
      // emitted right columns are restricted (unmatched rows null them
      // out — nothing is exposed); ANTI output rows are precisely the
      // ones where the condition found no match, so it restricts nothing.
      if (p.join_kind == JoinKind::kInner || p.join_kind == JoinKind::kSemi) {
        ApplyPredicate(*p.residual, &concat);
      } else if (p.join_kind == JoinKind::kLeft) {
        TenantState right_side;
        std::vector<TtidSlot> left_pending;
        for (TtidSlot& t : concat.pending) {
          if (static_cast<size_t>(t.slot) >= larity) {
            right_side.pending.push_back(std::move(t));
          } else {
            left_pending.push_back(std::move(t));
          }
        }
        right_side.restricted = std::move(concat.restricted);
        ApplyPredicate(*p.residual, &right_side);
        concat.pending = std::move(left_pending);
        concat.pending.insert(concat.pending.end(),
                              std::make_move_iterator(right_side.pending.begin()),
                              std::make_move_iterator(right_side.pending.end()));
        concat.restricted = std::move(right_side.restricted);
      }
    }

    // Equi-key transfer: ttid_pending = ttid_restricted propagates the
    // restriction across the join. Sound for INNER and SEMI joins (rows
    // surviving the join satisfy the equality) and for the emitted right
    // rows of a LEFT join; never for a LEFT join's left side (unmatched
    // rows survive) or for ANTI joins (output rows are exactly the ones
    // where no equality held).
    size_t npairs = std::min(p.left_keys.size(), p.right_keys.size());
    for (size_t i = 0; i < npairs; ++i) {
      const BoundExpr& lk = *p.left_keys[i];
      const BoundExpr& rk = *p.right_keys[i];
      if (lk.kind != BoundExpr::Kind::kSlot ||
          rk.kind != BoundExpr::Kind::kSlot) {
        continue;
      }
      int lslot = lk.slot;
      int rslot = rk.slot + static_cast<int>(larity);
      auto restricted = [&concat](int slot) {
        return std::find(concat.restricted.begin(), concat.restricted.end(),
                         slot) != concat.restricted.end();
      };
      auto transfer = [&concat, &restricted](int from, int to) {
        if (!restricted(from)) return;
        for (auto it = concat.pending.begin(); it != concat.pending.end();) {
          if (it->slot == to) {
            concat.restricted.push_back(to);
            it = concat.pending.erase(it);
          } else {
            ++it;
          }
        }
      };
      if (p.join_kind == JoinKind::kInner || p.join_kind == JoinKind::kSemi) {
        transfer(lslot, rslot);
        transfer(rslot, lslot);
      } else if (p.join_kind == JoinKind::kLeft) {
        transfer(lslot, rslot);
      }
    }

    if (concat_output) return concat;

    // Semi/anti output carries left columns only: right-side pending slots
    // are dropped here, beyond any ancestor's reach.
    TenantState out;
    for (TtidSlot& t : concat.pending) {
      if (static_cast<size_t>(t.slot) < larity) {
        out.pending.push_back(std::move(t));
      } else {
        ReportPending(t);
      }
    }
    for (int r : concat.restricted) {
      if (static_cast<size_t>(r) < larity) out.restricted.push_back(r);
    }
    return out;
  }

  TenantState VerifySort(const Plan& p) {
    CheckParallelSafety(p);
    if (p.left == nullptr) {
      Report(ViolationCode::kArityMismatch, "sort has no input", &p);
      return TenantState();
    }
    TenantState state = VerifyNode(*p.left);
    size_t arity = p.left->columns.size();
    if (p.columns.size() != arity) {
      Report(ViolationCode::kArityMismatch,
             "sort output arity " + std::to_string(p.columns.size()) +
                 " differs from its input arity " + std::to_string(arity),
             &p);
    }
    for (const auto& [slot, desc] : p.sort_keys) {
      (void)desc;
      if (slot < 0 || static_cast<size_t>(slot) >= arity) {
        Report(ViolationCode::kSortKeyOutOfRange,
               "sort key slot " + std::to_string(slot) +
                   " lies outside the input layout of " +
                   std::to_string(arity) + " columns",
               &p);
      }
    }
    if (p.kind == Plan::Kind::kTopN && (p.limit < 0 || p.offset < 0)) {
      Report(ViolationCode::kNegativeLimit,
             "top-N carries limit " + std::to_string(p.limit) + " offset " +
                 std::to_string(p.offset),
             &p);
    }
    return state;
  }

  TenantState VerifyPassThrough(const Plan& p) {
    CheckParallelSafety(p);
    if (p.left == nullptr) {
      Report(ViolationCode::kArityMismatch, "operator has no input", &p);
      return TenantState();
    }
    TenantState state = VerifyNode(*p.left);
    if (p.columns.size() != p.left->columns.size()) {
      Report(ViolationCode::kArityMismatch,
             "operator output arity " + std::to_string(p.columns.size()) +
                 " differs from its input arity " +
                 std::to_string(p.left->columns.size()),
             &p);
    }
    if (p.kind == Plan::Kind::kLimit && (p.limit < 0 || p.offset < 0)) {
      Report(ViolationCode::kNegativeLimit,
             "limit operator carries limit " + std::to_string(p.limit) +
                 " offset " + std::to_string(p.offset),
             &p);
    }
    return state;
  }

  const VerifyContext* ctx_;
  std::vector<int64_t> expected_sorted_;
  VerifyResult result_;
  /// Enclosing input layouts for kOuterSlot bounds checks (back = depth 1).
  std::vector<size_t> outer_arities_;
  /// UDF body plans already verified under this statement (bodies are shared
  /// and may be called from many sites).
  std::set<const Plan*> verified_bodies_;
};

}  // namespace

VerifyResult PlanVerifier::Verify(const Plan& plan) const {
  VerifierImpl impl(ctx_);
  return impl.Run(plan);
}

}  // namespace verify
}  // namespace engine
}  // namespace mtbase
