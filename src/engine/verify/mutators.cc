#include "engine/verify/mutators.h"

#include <utility>
#include <vector>

#include "common/str_util.h"
#include "engine/catalog.h"

namespace mtbase {
namespace engine {
namespace verify {

namespace {

bool IsTtidSlotRef(const BoundExpr& e, const std::vector<ColumnMeta>& layout,
                   const std::string& ttid_column) {
  return e.kind == BoundExpr::Kind::kSlot && e.slot >= 0 &&
         static_cast<size_t>(e.slot) < layout.size() &&
         EqualsIgnoreCase(layout[static_cast<size_t>(e.slot)].name,
                          ttid_column);
}

/// A D-filter-shaped conjunct: `ttid IN (...)` or `ttid = x` / `x = ttid`.
bool IsTenantConjunct(const BoundExpr& e, const std::vector<ColumnMeta>& layout,
                      const std::string& ttid_column) {
  if (e.kind == BoundExpr::Kind::kInList && !e.args.empty()) {
    return IsTtidSlotRef(*e.args[0], layout, ttid_column);
  }
  if (e.kind == BoundExpr::Kind::kBinary && e.bin_op == BinOp::kEq &&
      e.args.size() == 2) {
    return IsTtidSlotRef(*e.args[0], layout, ttid_column) ||
           IsTtidSlotRef(*e.args[1], layout, ttid_column);
  }
  return false;
}

/// Rebuild the AND-conjunct tree without tenant conjuncts; null when nothing
/// survives.
BoundExprPtr Strip(BoundExprPtr e, const std::vector<ColumnMeta>& layout,
                   const std::string& ttid_column, int* stripped) {
  if (!e) return nullptr;
  if (e->kind == BoundExpr::Kind::kBinary && e->bin_op == BinOp::kAnd &&
      e->args.size() == 2) {
    BoundExprPtr l =
        Strip(std::move(e->args[0]), layout, ttid_column, stripped);
    BoundExprPtr r =
        Strip(std::move(e->args[1]), layout, ttid_column, stripped);
    if (l && r) {
      e->args[0] = std::move(l);
      e->args[1] = std::move(r);
      return e;
    }
    return l ? std::move(l) : std::move(r);
  }
  if (IsTenantConjunct(*e, layout, ttid_column)) {
    ++*stripped;
    return nullptr;
  }
  return e;
}

std::vector<ColumnMeta> ConcatLayout(const Plan& p) {
  std::vector<ColumnMeta> layout;
  if (p.left) layout = p.left->columns;
  if (p.right) {
    layout.insert(layout.end(), p.right->columns.begin(),
                  p.right->columns.end());
  }
  return layout;
}

int StripNode(Plan* p, const std::string& ttid_column) {
  int stripped = 0;
  if (p->scan_filter) {
    // A scan's output layout is the table layout its filter is bound over.
    p->scan_filter =
        Strip(std::move(p->scan_filter), p->columns, ttid_column, &stripped);
  }
  if (p->predicate && p->left) {
    p->predicate = Strip(std::move(p->predicate), p->left->columns,
                         ttid_column, &stripped);
  }
  if (p->residual) {
    p->residual =
        Strip(std::move(p->residual), ConcatLayout(*p), ttid_column, &stripped);
  }
  if (p->left) stripped += StripNode(p->left.get(), ttid_column);
  if (p->right) stripped += StripNode(p->right.get(), ttid_column);
  return stripped;
}

}  // namespace

int StripTenantPredicates(Plan* plan, const std::string& ttid_column) {
  return StripNode(plan, ttid_column);
}

bool MislabelFirstSerialNode(Plan* plan) {
  if (!plan->parallel_safe) {
    plan->parallel_safe = true;
    return true;
  }
  if (plan->left && MislabelFirstSerialNode(plan->left.get())) return true;
  if (plan->right && MislabelFirstSerialNode(plan->right.get())) return true;
  return false;
}

bool WidenPartitionPruning(Plan* plan) {
  if (plan->kind == Plan::Kind::kScan && plan->pruned &&
      plan->table != nullptr) {
    int64_t count = plan->table->partition().Count();
    plan->partitions.clear();
    for (int64_t i = 0; i < count; ++i) {
      plan->partitions.push_back(static_cast<uint32_t>(i));
    }
    return true;
  }
  if (plan->left && WidenPartitionPruning(plan->left.get())) return true;
  if (plan->right && WidenPartitionPruning(plan->right.get())) return true;
  return false;
}

bool BreakFirstSortKey(Plan* plan) {
  if ((plan->kind == Plan::Kind::kSort || plan->kind == Plan::Kind::kTopN) &&
      !plan->sort_keys.empty() && plan->left) {
    plan->sort_keys[0].first = static_cast<int>(plan->left->columns.size());
    return true;
  }
  if (plan->left && BreakFirstSortKey(plan->left.get())) return true;
  if (plan->right && BreakFirstSortKey(plan->right.get())) return true;
  return false;
}

}  // namespace verify
}  // namespace engine
}  // namespace mtbase
