#include "engine/explain.h"

#include <cstdio>

#include "engine/obs/profile.h"
#include "engine/parallel/parallel.h"
#include "engine/planner.h"
#include "engine/udf.h"

namespace mtbase {
namespace engine {

namespace {

/// Rendering context for the parallel and [actual: ...] annotations
/// (null = omit them all).
struct ExplainCtx {
  int threads = 1;
  size_t min_rows = 0;
  /// Profiles from an instrumented execution (EXPLAIN (ANALYZE));
  /// null = no actuals.
  const obs::PlanProfiler* profiles = nullptr;
};

/// Append " [parallel: N threads]" when the operator is parallel-safe and
/// its static input estimate clears the min_parallel_rows gate — i.e. it
/// would plausibly run morsel-parallel at execution time.
void AppendParallel(const Plan& p, const ExplainCtx* ctx, std::string* out) {
  if (ctx == nullptr || ctx->threads <= 1 || !p.parallel_safe) return;
  if (parallel::EstimatePlanRows(p) < ctx->min_rows) return;
  *out += " [parallel: " + std::to_string(ctx->threads) + " threads]";
}

/// Sort/top-N variant of the annotation: " [parallel sort: N threads]" when
/// the run-sort + merge path would plausibly engage (sort.cc).
void AppendParallelSort(const Plan& p, const ExplainCtx* ctx,
                        std::string* out) {
  if (ctx == nullptr || ctx->threads <= 1 || !p.parallel_safe) return;
  if (parallel::EstimatePlanRows(p) < ctx->min_rows) return;
  *out += " [parallel sort: " + std::to_string(ctx->threads) + " threads]";
}

std::string FormatMs(uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(nanos) / 1e6);
  return buf;
}

/// Immediate plan children of a node: left/right inputs plus the sub-plans
/// hanging off its own expressions (SubPlan/InitPlan). Used to turn the
/// profiler's inclusive counter deltas into per-node exclusive figures.
void CollectExprSubplans(const BoundExpr& e, std::vector<const Plan*>* out) {
  if (e.subplan) out->push_back(e.subplan.get());
  ForEachExprChild(e,
                   [out](const BoundExpr& c) { CollectExprSubplans(c, out); });
}

std::vector<const Plan*> ImmediateChildren(const Plan& p) {
  std::vector<const Plan*> children;
  if (p.left) children.push_back(p.left.get());
  if (p.right) children.push_back(p.right.get());
  ForEachPlanExpr(p, [&children](const BoundExpr& e) {
    CollectExprSubplans(e, &children);
  });
  return children;
}

/// Append the EXPLAIN (ANALYZE) annotation: " [actual: rows=N ...]" from the
/// node's OpProfile, or " [actual: never executed]" for nodes the execution
/// skipped (e.g. a sub-plan behind a short-circuited predicate). rows/time/
/// cpu are inclusive of the subtree; morsels and udf/hit are exclusive (the
/// immediate children's inclusive deltas are subtracted) so per-operator
/// attribution reads directly. loops appears when the node executed more
/// than once (per-row sub-plans); workers when a parallel region engaged.
void AppendActual(const Plan& p, const ExplainCtx* ctx, std::string* out) {
  if (ctx == nullptr || ctx->profiles == nullptr) return;
  const obs::OpProfile* prof = ctx->profiles->Find(&p);
  if (prof == nullptr) {
    *out += " [actual: never executed]";
    return;
  }
  uint64_t child_morsels = 0;
  uint64_t child_udf = 0;
  uint64_t child_hits = 0;
  for (const Plan* c : ImmediateChildren(p)) {
    const obs::OpProfile* cp = ctx->profiles->Find(c);
    if (cp == nullptr) continue;
    child_morsels += cp->morsels;
    child_udf += cp->udf_calls;
    child_hits += cp->udf_cache_hits;
  }
  const uint64_t morsels =
      prof->morsels > child_morsels ? prof->morsels - child_morsels : 0;
  const uint64_t udf =
      prof->udf_calls > child_udf ? prof->udf_calls - child_udf : 0;
  const uint64_t hits =
      prof->udf_cache_hits > child_hits ? prof->udf_cache_hits - child_hits
                                        : 0;
  *out += " [actual: rows=" + std::to_string(prof->rows_out);
  if (prof->executions > 1) {
    *out += " loops=" + std::to_string(prof->executions);
  }
  *out += " time=" + FormatMs(prof->wall_nanos) + "ms";
  *out += " cpu=" + FormatMs(prof->cpu_nanos) + "ms";
  if (prof->workers > 1) {
    *out += " workers=" + std::to_string(prof->workers);
  }
  if (morsels > 0) *out += " morsels=" + std::to_string(morsels);
  if (udf > 0 || hits > 0) {
    *out += " udf=" + std::to_string(udf) + " hit=" + std::to_string(hits);
  }
  *out += "]";
}

const char* JoinKindName(JoinKind k) {
  switch (k) {
    case JoinKind::kInner:
      return "INNER";
    case JoinKind::kLeft:
      return "LEFT";
    case JoinKind::kSemi:
      return "SEMI";
    case JoinKind::kAnti:
      return "ANTI";
  }
  return "?";
}

const char* AggName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

const char* OriginName(SubqueryOrigin o) {
  switch (o) {
    case SubqueryOrigin::kNone:
      return "";
    case SubqueryOrigin::kExists:
      return "EXISTS";
    case SubqueryOrigin::kNotExists:
      return "NOT EXISTS";
    case SubqueryOrigin::kIn:
      return "IN";
    case SubqueryOrigin::kNotIn:
      return "NOT IN";
    case SubqueryOrigin::kScalarAgg:
      return "scalar agg";
  }
  return "";
}

/// UDF calls found in an operator's own expressions, for the trailing
/// [udf: ...] annotation (docs/explain.md) — the single marker for UDF
/// presence and volatility. The operator's effective class is the weakest
/// one called: one volatile call keeps it serial and uncached.
struct UdfSummary {
  bool any = false;
  sql::Volatility weakest = sql::Volatility::kImmutable;
};

void CollectUdfs(const BoundExpr& e, UdfSummary* s) {
  if (e.kind == BoundExpr::Kind::kUdfCall) {
    s->any = true;
    sql::Volatility v =
        e.udf != nullptr ? e.udf->volatility : sql::Volatility::kVolatile;
    if (v < s->weakest) s->weakest = v;
  }
  ForEachExprChild(e, [s](const BoundExpr& c) { CollectUdfs(c, s); });
}

/// Append the operator's effective UDF class: " [udf: immutable, cached]"
/// (results served from the per-statement/shared caches, parallel-eligible),
/// " [udf: stable, statement-cached]" (cached within one statement, serial)
/// or " [udf: volatile]" (every evaluation may run the body, serial).
void AppendUdf(const Plan& p, std::string* out) {
  UdfSummary s;
  ForEachPlanExpr(p, [&s](const BoundExpr& e) { CollectUdfs(e, &s); });
  if (!s.any) return;
  switch (s.weakest) {
    case sql::Volatility::kImmutable:
      *out += " [udf: immutable, cached]";
      break;
    case sql::Volatility::kStable:
      *out += " [udf: stable, statement-cached]";
      break;
    case sql::Volatility::kVolatile:
      *out += " [udf: volatile]";
      break;
  }
}

void Render(const Plan& p, int depth, const ExplainCtx* ctx, std::string* out);

/// Render the sub-plans reachable from an expression. Correlated sub-queries
/// that escaped decorrelation execute once per input row ("SubPlan");
/// uncorrelated ones execute once and are cached ("InitPlan"). Together with
/// the join annotations this makes the chosen sub-query strategy visible.
void RenderExprSubplans(const BoundExpr& e, int depth, const ExplainCtx* ctx,
                        std::string* out) {
  if (e.subplan) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
    const char* what = "scalar";
    if (e.kind == BoundExpr::Kind::kExistsSub) {
      what = e.negated ? "NOT EXISTS" : "EXISTS";
    } else if (e.kind == BoundExpr::Kind::kInSet) {
      what = e.negated ? "NOT IN" : "IN";
    }
    if (e.correlated) {
      *out += std::string("SubPlan (") + what + ", per-row)\n";
    } else {
      *out += std::string("InitPlan (") + what + ", cached)\n";
    }
    Render(*e.subplan, depth + 1, ctx, out);
  }
  ForEachExprChild(e, [&](const BoundExpr& c) {
    RenderExprSubplans(c, depth, ctx, out);
  });
}

void RenderPlanSubplans(const Plan& p, int depth, const ExplainCtx* ctx,
                        std::string* out) {
  ForEachPlanExpr(p, [&](const BoundExpr& e) {
    RenderExprSubplans(e, depth, ctx, out);
  });
}

void Render(const Plan& p, int depth, const ExplainCtx* ctx,
            std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (p.kind) {
    case Plan::Kind::kScan:
      *out += "Scan ";
      *out += p.table != nullptr ? p.table->schema().name : "<dual>";
      if (p.scan_filter) *out += " (filtered)";
      if (p.pruned && p.table != nullptr) {
        const int total = p.table->partition().Count();
        const int kept = static_cast<int>(p.partitions.size());
        *out += " [partitions: " + std::to_string(total - kept) + "/" +
                std::to_string(total) + " pruned]";
      }
      AppendUdf(p, out);
      AppendParallel(p, ctx, out);
      AppendActual(p, ctx, out);
      *out += "\n";
      RenderPlanSubplans(p, depth + 1, ctx, out);
      return;
    case Plan::Kind::kIndexScan: {
      *out += "IndexScan ";
      *out += p.table != nullptr ? p.table->schema().name : "<dual>";
      if (p.scan_filter) *out += " (filtered)";
      const TableIndex* ix =
          p.table != nullptr ? p.table->FindIndex(p.index_name) : nullptr;
      const std::string col =
          ix != nullptr && !ix->columns.empty() ? ix->columns[0] : "?";
      *out += " [index scan: " + p.index_name + ", " + col;
      if (p.index_keys.size() == 1) {
        *out += " = " + std::to_string(p.index_keys[0]);
      } else {
        *out += " IN (";
        for (size_t i = 0; i < p.index_keys.size(); ++i) {
          if (i) *out += ", ";
          *out += std::to_string(p.index_keys[i]);
        }
        *out += ")";
      }
      *out += "]";
      AppendUdf(p, out);
      AppendActual(p, ctx, out);
      *out += "\n";
      RenderPlanSubplans(p, depth + 1, ctx, out);
      return;
    }
    case Plan::Kind::kJoin:
      *out += "HashJoin ";
      *out += JoinKindName(p.join_kind);
      *out += " (" + std::to_string(p.left_keys.size()) + " keys";
      if (p.residual) *out += ", residual";
      *out += ")";
      if (p.left_keys.empty()) *out += " [nested-loop]";
      if (p.decorrelated_from != SubqueryOrigin::kNone) {
        *out += std::string(" [decorrelated ") + OriginName(p.decorrelated_from);
        if (p.null_aware) *out += ", null-aware";
        *out += "]";
      }
      AppendUdf(p, out);
      AppendParallel(p, ctx, out);
      AppendActual(p, ctx, out);
      *out += "\n";
      RenderPlanSubplans(p, depth + 1, ctx, out);
      Render(*p.left, depth + 1, ctx, out);
      Render(*p.right, depth + 1, ctx, out);
      return;
    case Plan::Kind::kFilter:
      *out += "Filter";
      AppendUdf(p, out);
      AppendParallel(p, ctx, out);
      AppendActual(p, ctx, out);
      *out += "\n";
      break;
    case Plan::Kind::kProject:
      *out += "Project (" + std::to_string(p.exprs.size()) + " columns)";
      AppendUdf(p, out);
      AppendParallel(p, ctx, out);
      AppendActual(p, ctx, out);
      *out += "\n";
      break;
    case Plan::Kind::kAggregate: {
      *out += "Aggregate (groups: " + std::to_string(p.exprs.size()) +
              ", aggs:";
      for (const auto& a : p.aggs) {
        *out += " ";
        *out += AggName(a.func);
        if (a.distinct) *out += " DISTINCT";
      }
      *out += ")";
      AppendUdf(p, out);
      AppendParallel(p, ctx, out);
      AppendActual(p, ctx, out);
      *out += "\n";
      break;
    }
    case Plan::Kind::kSort: {
      *out += "Sort (keys:";
      for (const auto& [slot, desc] : p.sort_keys) {
        *out += " " + std::to_string(slot) + (desc ? " DESC" : "");
      }
      *out += ")";
      AppendParallelSort(p, ctx, out);
      AppendActual(p, ctx, out);
      *out += "\n";
      break;
    }
    case Plan::Kind::kTopN: {
      *out += "TopN (keys:";
      for (const auto& [slot, desc] : p.sort_keys) {
        *out += " " + std::to_string(slot) + (desc ? " DESC" : "");
      }
      *out += ") [top-n: " + std::to_string(p.limit);
      if (p.offset > 0) *out += ", offset " + std::to_string(p.offset);
      *out += "]";
      AppendParallelSort(p, ctx, out);
      AppendActual(p, ctx, out);
      *out += "\n";
      break;
    }
    case Plan::Kind::kLimit:
      *out += "Limit " + std::to_string(p.limit);
      if (p.offset > 0) *out += " OFFSET " + std::to_string(p.offset);
      AppendActual(p, ctx, out);
      *out += "\n";
      break;
    case Plan::Kind::kDistinct:
      *out += "Distinct";
      AppendActual(p, ctx, out);
      *out += "\n";
      break;
  }
  RenderPlanSubplans(p, depth + 1, ctx, out);
  if (p.left) Render(*p.left, depth + 1, ctx, out);
}

}  // namespace

std::string ExplainPlan(const Plan& plan, const PlannerOptions* options,
                        const obs::PlanProfiler* profiles) {
  std::string out;
  if (options != nullptr || profiles != nullptr) {
    ExplainCtx ctx;
    if (options != nullptr) {
      ctx.threads = parallel::ResolveMaxThreads(options->max_threads);
      ctx.min_rows = options->min_parallel_rows;
    }
    ctx.profiles = profiles;
    Render(plan, 0, &ctx, &out);
  } else {
    Render(plan, 0, nullptr, &out);
  }
  return out;
}

Result<std::string> ExplainSelect(const Catalog* catalog,
                                  const UdfRegistry* udfs,
                                  const sql::SelectStmt& sel,
                                  const PlannerOptions& options,
                                  const verify::VerifyContext* verify_ctx) {
  Planner planner(catalog, udfs, options);
  MTB_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(sel));
  std::string out = ExplainPlan(*plan, &options);
  if (verify_ctx != nullptr) {
    verify::PlanVerifier verifier(verify_ctx);
    out += "[verify: " + verifier.Verify(*plan).Summary() + "]\n";
  }
  return out;
}

}  // namespace engine
}  // namespace mtbase
