#include "engine/explain.h"

#include "engine/parallel/parallel.h"
#include "engine/planner.h"

namespace mtbase {
namespace engine {

namespace {

/// Rendering context for the parallel annotations (null = omit them).
struct ExplainCtx {
  int threads = 1;
  size_t min_rows = 0;
};

/// Append " [parallel: N threads]" when the operator is parallel-safe and
/// its static input estimate clears the min_parallel_rows gate — i.e. it
/// would plausibly run morsel-parallel at execution time.
void AppendParallel(const Plan& p, const ExplainCtx* ctx, std::string* out) {
  if (ctx == nullptr || ctx->threads <= 1 || !p.parallel_safe) return;
  if (parallel::EstimatePlanRows(p) < ctx->min_rows) return;
  *out += " [parallel: " + std::to_string(ctx->threads) + " threads]";
}

const char* JoinKindName(JoinKind k) {
  switch (k) {
    case JoinKind::kInner:
      return "INNER";
    case JoinKind::kLeft:
      return "LEFT";
    case JoinKind::kSemi:
      return "SEMI";
    case JoinKind::kAnti:
      return "ANTI";
  }
  return "?";
}

const char* AggName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

const char* OriginName(SubqueryOrigin o) {
  switch (o) {
    case SubqueryOrigin::kNone:
      return "";
    case SubqueryOrigin::kExists:
      return "EXISTS";
    case SubqueryOrigin::kNotExists:
      return "NOT EXISTS";
    case SubqueryOrigin::kIn:
      return "IN";
    case SubqueryOrigin::kNotIn:
      return "NOT IN";
    case SubqueryOrigin::kScalarAgg:
      return "scalar agg";
  }
  return "";
}

bool HasUdfCall(const BoundExpr& e) {
  if (e.kind == BoundExpr::Kind::kUdfCall) return true;
  for (const auto& a : e.args) {
    if (HasUdfCall(*a)) return true;
  }
  if (e.case_operand && HasUdfCall(*e.case_operand)) return true;
  if (e.else_expr && HasUdfCall(*e.else_expr)) return true;
  return false;
}

bool AnyUdf(const std::vector<BoundExprPtr>& exprs) {
  for (const auto& e : exprs) {
    if (e && HasUdfCall(*e)) return true;
  }
  return false;
}

void Render(const Plan& p, int depth, const ExplainCtx* ctx, std::string* out);

/// Render the sub-plans reachable from an expression. Correlated sub-queries
/// that escaped decorrelation execute once per input row ("SubPlan");
/// uncorrelated ones execute once and are cached ("InitPlan"). Together with
/// the join annotations this makes the chosen sub-query strategy visible.
void RenderExprSubplans(const BoundExpr& e, int depth, const ExplainCtx* ctx,
                        std::string* out) {
  if (e.subplan) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
    const char* what = "scalar";
    if (e.kind == BoundExpr::Kind::kExistsSub) {
      what = e.negated ? "NOT EXISTS" : "EXISTS";
    } else if (e.kind == BoundExpr::Kind::kInSet) {
      what = e.negated ? "NOT IN" : "IN";
    }
    if (e.correlated) {
      *out += std::string("SubPlan (") + what + ", per-row)\n";
    } else {
      *out += std::string("InitPlan (") + what + ", cached)\n";
    }
    Render(*e.subplan, depth + 1, ctx, out);
  }
  for (const auto& a : e.args) RenderExprSubplans(*a, depth, ctx, out);
  if (e.case_operand) RenderExprSubplans(*e.case_operand, depth, ctx, out);
  if (e.else_expr) RenderExprSubplans(*e.else_expr, depth, ctx, out);
}

void RenderPlanSubplans(const Plan& p, int depth, const ExplainCtx* ctx,
                        std::string* out) {
  auto walk = [&](const BoundExprPtr& e) {
    if (e) RenderExprSubplans(*e, depth, ctx, out);
  };
  walk(p.scan_filter);
  walk(p.predicate);
  walk(p.residual);
  for (const auto& e : p.exprs) walk(e);
  for (const auto& e : p.left_keys) walk(e);
  for (const auto& e : p.right_keys) walk(e);
  for (const auto& a : p.aggs) walk(a.arg);
}

void Render(const Plan& p, int depth, const ExplainCtx* ctx,
            std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (p.kind) {
    case Plan::Kind::kScan:
      *out += "Scan ";
      *out += p.table != nullptr ? p.table->schema().name : "<dual>";
      if (p.scan_filter) {
        *out += HasUdfCall(*p.scan_filter) ? " (filtered, udf)" : " (filtered)";
      }
      AppendParallel(p, ctx, out);
      *out += "\n";
      RenderPlanSubplans(p, depth + 1, ctx, out);
      return;
    case Plan::Kind::kJoin:
      *out += "HashJoin ";
      *out += JoinKindName(p.join_kind);
      *out += " (" + std::to_string(p.left_keys.size()) + " keys";
      if (p.residual) *out += ", residual";
      *out += ")";
      if (p.left_keys.empty()) *out += " [nested-loop]";
      if (p.decorrelated_from != SubqueryOrigin::kNone) {
        *out += std::string(" [decorrelated ") + OriginName(p.decorrelated_from);
        if (p.null_aware) *out += ", null-aware";
        *out += "]";
      }
      AppendParallel(p, ctx, out);
      *out += "\n";
      RenderPlanSubplans(p, depth + 1, ctx, out);
      Render(*p.left, depth + 1, ctx, out);
      Render(*p.right, depth + 1, ctx, out);
      return;
    case Plan::Kind::kFilter:
      *out += "Filter";
      if (p.predicate && HasUdfCall(*p.predicate)) *out += " (udf)";
      AppendParallel(p, ctx, out);
      *out += "\n";
      break;
    case Plan::Kind::kProject:
      *out += "Project (" + std::to_string(p.exprs.size()) + " columns";
      if (AnyUdf(p.exprs)) *out += ", udf";
      *out += ")";
      AppendParallel(p, ctx, out);
      *out += "\n";
      break;
    case Plan::Kind::kAggregate: {
      *out += "Aggregate (groups: " + std::to_string(p.exprs.size()) +
              ", aggs:";
      bool udf = AnyUdf(p.exprs);
      for (const auto& a : p.aggs) {
        *out += " ";
        *out += AggName(a.func);
        if (a.distinct) *out += " DISTINCT";
        udf = udf || (a.arg && HasUdfCall(*a.arg));
      }
      if (udf) *out += ", udf";
      *out += ")";
      AppendParallel(p, ctx, out);
      *out += "\n";
      break;
    }
    case Plan::Kind::kSort: {
      *out += "Sort (keys:";
      for (const auto& [slot, desc] : p.sort_keys) {
        *out += " " + std::to_string(slot) + (desc ? " DESC" : "");
      }
      *out += ")\n";
      break;
    }
    case Plan::Kind::kLimit:
      *out += "Limit " + std::to_string(p.limit) + "\n";
      break;
    case Plan::Kind::kDistinct:
      *out += "Distinct\n";
      break;
  }
  RenderPlanSubplans(p, depth + 1, ctx, out);
  if (p.left) Render(*p.left, depth + 1, ctx, out);
}

}  // namespace

std::string ExplainPlan(const Plan& plan, const PlannerOptions* options) {
  std::string out;
  if (options != nullptr) {
    ExplainCtx ctx;
    ctx.threads = parallel::ResolveMaxThreads(options->max_threads);
    ctx.min_rows = options->min_parallel_rows;
    Render(plan, 0, &ctx, &out);
  } else {
    Render(plan, 0, nullptr, &out);
  }
  return out;
}

Result<std::string> ExplainSelect(const Catalog* catalog,
                                  const UdfRegistry* udfs,
                                  const sql::SelectStmt& sel,
                                  const PlannerOptions& options) {
  Planner planner(catalog, udfs, options);
  MTB_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(sel));
  return ExplainPlan(*plan, &options);
}

}  // namespace engine
}  // namespace mtbase
