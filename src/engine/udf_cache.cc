#include "engine/udf_cache.h"

namespace mtbase {
namespace engine {

void SharedUdfCache::ValidateLocked(const UdfCacheEpoch& epoch) {
  if (epoch != epoch_) {
    lru_.clear();
    index_.clear();
    epoch_ = epoch;
  }
}

bool SharedUdfCache::Lookup(const UdfCacheEpoch& epoch, const std::string& key,
                            Value* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ValidateLocked(epoch);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  *out = it->second->value;
  return true;
}

void SharedUdfCache::Insert(const UdfCacheEpoch& epoch, const std::string& key,
                            Value v) {
  std::lock_guard<std::mutex> lock(mu_);
  ValidateLocked(epoch);
  if (capacity_ == 0) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;  // immutable: an existing entry already holds this value
  }
  lru_.push_front(Entry{key, std::move(v)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void SharedUdfCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t SharedUdfCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t SharedUdfCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void SharedUdfCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

UdfCacheEpoch SharedUdfCache::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

}  // namespace engine
}  // namespace mtbase
