// Plan execution and expression evaluation.
#ifndef MTBASE_ENGINE_EXEC_H_
#define MTBASE_ENGINE_EXEC_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "engine/bound.h"
#include "engine/stats.h"
#include "engine/udf_cache.h"

namespace mtbase {

namespace obs {
class PlanProfiler;
struct OpProfile;
}  // namespace obs

namespace engine {

class Table;

/// Per-statement table snapshot pins. The first scan of each table pins its
/// current copy-on-write row snapshot here; every later access within the
/// same statement (including from morsel workers, which share the set via
/// WorkerContext) reads the same pinned version, so one statement never sees
/// two different versions of a table even while concurrent DML publishes new
/// ones. Null `snapshots` in ExecContext means unsynchronized single-session
/// execution straight off Table::rows() (embedder-built contexts).
struct TableSnapshots {
  struct Entry {
    std::shared_ptr<const std::vector<Row>> rows;
    uint64_t version = 0;
  };

  /// Returns the pinned entry for `t`, pinning the current snapshot on first
  /// use. The reference stays valid for the lifetime of this set.
  const Entry& Pin(const Table& t);

 private:
  std::mutex mu_;
  std::unordered_map<const Table*, std::unique_ptr<Entry>> pinned_;
};

/// Per-statement execution state. Sub-query / UDF caches live here, so their
/// lifetime matches one top-level statement (like PostgreSQL's per-query
/// caching of IMMUTABLE function results, paper section 4.2.1).
struct ExecContext {
  ExecStats* stats = nullptr;
  DbmsProfile profile = DbmsProfile::kPostgres;

  /// Resolved intra-query thread budget (PlannerOptions::max_threads with
  /// 0 = auto already resolved via MTBASE_THREADS / hardware_concurrency).
  /// 1 = serial. Worker contexts always carry 1: parallel regions never nest.
  int max_threads = 1;
  /// Inputs smaller than this never parallelize (PlannerOptions knob).
  size_t min_parallel_rows = 4096;

  /// True inside a morsel worker's context: body executions performed here
  /// count as ExecStats::udf_parallel_evals.
  bool in_parallel_worker = false;

  /// Cross-statement dictionary-conversion cache (null = disabled, the
  /// engine default; the MT middleware enables it on its Database). Consulted
  /// for immutable UDFs after the per-statement/per-worker cache misses;
  /// `shared_udf_epoch` is the validity token captured at statement start.
  SharedUdfCache* shared_udf_cache = nullptr;
  UdfCacheEpoch shared_udf_epoch;

  /// Pinned per-statement table snapshots (see TableSnapshots). Shared with
  /// worker contexts so parallel morsels scan the same pinned versions.
  std::shared_ptr<TableSnapshots> snapshots;

  /// EXPLAIN (ANALYZE) instrumentation (null = off, the plain hot path).
  /// Statement-thread only: WorkerContext deliberately never copies these
  /// (see parallel_exec.cc), so the profile map needs no locking; worker
  /// counters reach the profiler through the MergeWorker fold.
  obs::PlanProfiler* profiler = nullptr;
  /// Profile of the plan node currently executing — parallel regions report
  /// their worker counts here (null when not profiling).
  obs::OpProfile* current_op = nullptr;
  /// Pool-worker thread CPU (nanoseconds) accumulated by RunPoolProfiled
  /// while profiling. Worker 0 of every region runs on this thread and is
  /// excluded: its CPU is already in the statement thread's own delta.
  uint64_t child_cpu_nanos = 0;

  /// Rows of enclosing queries for correlated sub-query evaluation;
  /// OuterSlot(depth = 1) reads the innermost enclosing row.
  std::vector<const Row*> outer_stack;

  /// $n parameters of the UDF body currently being executed.
  const std::vector<Value>* params = nullptr;

  struct InSetCache {
    std::unordered_set<std::vector<Value>, ValueVectorHash, ValueVectorEq> set;
    bool has_null = false;
  };
  std::unordered_map<const Plan*, Value> scalar_cache;   // InitPlan results
  std::unordered_map<const Plan*, InSetCache> inset_cache;
  // Non-volatile UDF results, keyed by (function, args). Per statement in
  // serial execution, per worker under parallel execution.
  std::unordered_map<std::string, Value> udf_cache;
};

/// Execute a plan to a fully materialized row set.
Result<std::vector<Row>> ExecutePlan(const Plan& plan, ExecContext* ctx);

/// The statement's pinned rows of `t` (pinning on first use), or the live
/// Table::rows() when the context carries no snapshot set. `version_out`
/// (optional) receives the pinned data version, for comparing against derived
/// structures built at a possibly different version.
const std::vector<Row>& PinnedRows(ExecContext* ctx, const Table& t,
                                   uint64_t* version_out = nullptr);

/// Evaluate a bound expression against `row` (layout as bound).
Result<Value> EvalExpr(const BoundExpr& e, const Row& row, ExecContext* ctx);

/// SQL three-valued logic helper: value is BOOL true (not NULL, not false).
bool IsTrue(const Value& v);

/// NULL-aware three-way comparison for ORDER BY: NULLs compare greater than
/// every value (so they sort last ascending, first descending — the key
/// direction negates the result). Shared by the serial executor and the
/// parallel sort/top-N implementations so their orders agree byte-for-byte.
int SortCompare(const Value& a, const Value& b);

/// Numeric helpers shared by the evaluator and aggregation.
Result<Value> NumericAdd(const Value& a, const Value& b);
Result<Value> NumericSub(const Value& a, const Value& b);
Result<Value> NumericMul(const Value& a, const Value& b);
Result<Value> NumericDiv(const Value& a, const Value& b);

/// True if the plan (including nested sub-plans) reads enclosing rows.
bool PlanHasOuterRefs(const Plan& plan);

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_EXEC_H_
