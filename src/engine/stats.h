// Execution statistics.
//
// Besides profiling, the MT layer's tests use these counters for
// timing-independent assertions about the optimizations (e.g. aggregation
// distribution performs exactly T+1 conversions, paper section 4.2.2).
#ifndef MTBASE_ENGINE_STATS_H_
#define MTBASE_ENGINE_STATS_H_

#include <cstdint>

namespace mtbase {
namespace engine {

struct ExecStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_joined = 0;
  uint64_t udf_calls = 0;        // UDF invocations that executed the body
  uint64_t udf_cache_hits = 0;   // invocations answered from the result cache
  uint64_t subquery_execs = 0;   // per-row (correlated) sub-query executions
  uint64_t initplan_execs = 0;   // one-off sub-query executions
  uint64_t decorrelated_execs = 0;  // decorrelated sub-query joins executed

  void Reset() { *this = ExecStats(); }
  uint64_t total_udf_invocations() const { return udf_calls + udf_cache_hits; }
};

/// Which DBMS the engine impersonates (DESIGN.md section 2).
enum class DbmsProfile {
  /// PostgreSQL-like: results of IMMUTABLE UDFs are cached per statement,
  /// keyed by argument values.
  kPostgres,
  /// "System C"-like: UDFs cannot be declared deterministic, every call
  /// executes the body (paper Appendix C).
  kSystemC,
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_STATS_H_
