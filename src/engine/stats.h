// Execution statistics.
//
// Besides profiling, the MT layer's tests use these counters for
// timing-independent assertions about the optimizations (e.g. aggregation
// distribution performs exactly T+1 conversions, paper section 4.2.2).
#ifndef MTBASE_ENGINE_STATS_H_
#define MTBASE_ENGINE_STATS_H_

#include <algorithm>
#include <cstdint>

namespace mtbase {
namespace engine {

struct ExecStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_joined = 0;
  uint64_t udf_calls = 0;        // UDF invocations that executed the body
  // Invocations answered from a result cache — the per-statement cache or
  // the shared dictionary cache (udf_shared_cache_hits counts the subset
  // answered by the latter).
  uint64_t udf_cache_hits = 0;
  uint64_t udf_shared_cache_hits = 0;
  // Cacheable invocations that found neither cache populated and had to
  // execute the body (volatile UDFs never count: they are not cacheable).
  uint64_t udf_cache_misses = 0;
  // Body executions performed from a morsel worker thread (immutable UDFs
  // only; volatile/stable UDFs keep their plans serial).
  uint64_t udf_parallel_evals = 0;
  uint64_t subquery_execs = 0;   // per-row (correlated) sub-query executions
  uint64_t initplan_execs = 0;   // one-off sub-query executions
  uint64_t decorrelated_execs = 0;  // decorrelated sub-query joins executed

  // Prepared-statement compilation counters. Tests assert O(1) compilation
  // timing-independently: re-executing a prepared statement under an
  // unchanged fingerprint must leave the first three at zero and only bump
  // the cache hits.
  uint64_t statements_parsed = 0;     // SQL/MTSQL texts run through the parser
  uint64_t statements_rewritten = 0;  // MTSQL-to-SQL rewriter invocations
  uint64_t statements_planned = 0;    // statement compilations (SELECT plans
                                      // and prepared-DML binds)
  uint64_t prepare_count = 0;   // statement compilations via Prepare
  // Prepared executions that reused an earlier compilation (the first
  // execution after each compile amortizes it and is not a hit).
  uint64_t plan_cache_hits = 0;
  uint64_t rewrite_cache_hits = 0;  // executions reusing a cached rewrite

  // Morsel-driven parallel execution (src/engine/parallel/).
  uint64_t parallel_morsels = 0;  // morsels processed by parallel operators
  uint64_t parallel_joins = 0;    // hash joins executed with > 1 worker
  // Sort/top-N regions executed with > 1 worker (run-sort + merge).
  uint64_t parallel_sorts = 0;
  // Executions of a fused Sort+Limit (top-N) operator, serial or parallel.
  uint64_t topn_pushdowns = 0;
  // Rows a top-N operator discarded via its bounded heaps instead of
  // materializing them into a full sorted result (input - merged candidates).
  uint64_t topn_rows_pruned = 0;
  // Tenant-aware physical design (partition pruning + index scans). All
  // three can tick inside UDF body plans running on worker threads, so they
  // are worker-mergeable.
  uint64_t partitions_pruned = 0;   // partitions skipped by pruned scans
  uint64_t index_scans = 0;         // kIndexScan operator executions
  uint64_t index_rows_skipped = 0;  // rows an index lookup never visited
  /// High-water mark of workers used by any parallel region (a gauge, not a
  /// monotonic counter: operator- takes max(threads_used, o.threads_used),
  /// i.e. a delta reports the higher watermark of the two snapshots rather
  /// than a meaningless subtraction).
  uint64_t threads_used = 0;

  // Static plan verification (src/engine/verify/). Verification runs at
  // compile time, so re-executing a prepared statement under an unchanged
  // fingerprint does not move either counter.
  uint64_t plans_verified = 0;    // top-level plans run through PlanVerifier
  uint64_t verify_violations = 0; // invariant violations reported (0 = clean)

  // Static rewrite auditing (src/mt/audit/). Like plan verification this
  // runs at compile time: cached re-executions move neither counter.
  uint64_t rewrites_audited = 0;  // rewritten statements run through the
                                  // RewriteAuditor
  uint64_t audit_violations = 0;  // audit violations reported (0 = clean)

  void Reset() { *this = ExecStats(); }
  uint64_t total_udf_invocations() const { return udf_calls + udf_cache_hits; }

  /// Field-wise difference (counters are monotonic; use via StatsScope).
  ExecStats operator-(const ExecStats& o) const {
    ExecStats d;
    d.rows_scanned = rows_scanned - o.rows_scanned;
    d.rows_joined = rows_joined - o.rows_joined;
    d.udf_calls = udf_calls - o.udf_calls;
    d.udf_cache_hits = udf_cache_hits - o.udf_cache_hits;
    d.udf_shared_cache_hits = udf_shared_cache_hits - o.udf_shared_cache_hits;
    d.udf_cache_misses = udf_cache_misses - o.udf_cache_misses;
    d.udf_parallel_evals = udf_parallel_evals - o.udf_parallel_evals;
    d.subquery_execs = subquery_execs - o.subquery_execs;
    d.initplan_execs = initplan_execs - o.initplan_execs;
    d.decorrelated_execs = decorrelated_execs - o.decorrelated_execs;
    d.statements_parsed = statements_parsed - o.statements_parsed;
    d.statements_rewritten = statements_rewritten - o.statements_rewritten;
    d.statements_planned = statements_planned - o.statements_planned;
    d.prepare_count = prepare_count - o.prepare_count;
    d.plan_cache_hits = plan_cache_hits - o.plan_cache_hits;
    d.rewrite_cache_hits = rewrite_cache_hits - o.rewrite_cache_hits;
    d.parallel_morsels = parallel_morsels - o.parallel_morsels;
    d.parallel_joins = parallel_joins - o.parallel_joins;
    d.parallel_sorts = parallel_sorts - o.parallel_sorts;
    d.topn_pushdowns = topn_pushdowns - o.topn_pushdowns;
    d.topn_rows_pruned = topn_rows_pruned - o.topn_rows_pruned;
    d.partitions_pruned = partitions_pruned - o.partitions_pruned;
    d.index_scans = index_scans - o.index_scans;
    d.index_rows_skipped = index_rows_skipped - o.index_rows_skipped;
    // Gauge, not a counter: explicit max semantics (see the field comment).
    d.threads_used = std::max(threads_used, o.threads_used);
    d.plans_verified = plans_verified - o.plans_verified;
    d.verify_violations = verify_violations - o.verify_violations;
    d.rewrites_audited = rewrites_audited - o.rewrites_audited;
    d.audit_violations = audit_violations - o.audit_violations;
    return d;
  }

  /// Fold a worker's thread-local counters back into the statement's stats
  /// after a parallel region completes (threads_used is a high-water mark and
  /// is tracked by the region itself, not by workers).
  /// Fold a per-statement stats frame back into the database-wide cumulative
  /// counters (all fields; threads_used keeps gauge semantics). Used by the
  /// serving layer so concurrent statements each count into a private frame
  /// and merge once, under one lock, at statement end.
  void MergeStatement(const ExecStats& s) {
    MergeWorker(s);
    statements_parsed += s.statements_parsed;
    statements_rewritten += s.statements_rewritten;
    statements_planned += s.statements_planned;
    prepare_count += s.prepare_count;
    plan_cache_hits += s.plan_cache_hits;
    rewrite_cache_hits += s.rewrite_cache_hits;
    threads_used = std::max(threads_used, s.threads_used);
    plans_verified += s.plans_verified;
    verify_violations += s.verify_violations;
    rewrites_audited += s.rewrites_audited;
    audit_violations += s.audit_violations;
  }

  void MergeWorker(const ExecStats& w) {
    rows_scanned += w.rows_scanned;
    rows_joined += w.rows_joined;
    udf_calls += w.udf_calls;
    udf_cache_hits += w.udf_cache_hits;
    udf_shared_cache_hits += w.udf_shared_cache_hits;
    udf_cache_misses += w.udf_cache_misses;
    udf_parallel_evals += w.udf_parallel_evals;
    subquery_execs += w.subquery_execs;
    initplan_execs += w.initplan_execs;
    decorrelated_execs += w.decorrelated_execs;
    parallel_morsels += w.parallel_morsels;
    parallel_joins += w.parallel_joins;
    parallel_sorts += w.parallel_sorts;
    topn_pushdowns += w.topn_pushdowns;
    topn_rows_pruned += w.topn_rows_pruned;
    partitions_pruned += w.partitions_pruned;
    index_scans += w.index_scans;
    index_rows_skipped += w.index_rows_skipped;
  }
};

/// RAII counter snapshot: scopes ExecStats deltas to a region of code without
/// resetting the live (cumulative) counters, so independent measurements can
/// nest and interleave.
///
///   StatsScope scope(db.stats());
///   ... run statements ...
///   ExecStats d = scope.Delta();
class StatsScope {
 public:
  explicit StatsScope(const ExecStats* live) : live_(live), start_(*live) {}
  ExecStats Delta() const { return *live_ - start_; }
  /// Re-anchor the snapshot to the current counter values.
  void Restart() { start_ = *live_; }

 private:
  const ExecStats* live_;
  ExecStats start_;
};

/// Which DBMS the engine impersonates (DESIGN.md section 2).
enum class DbmsProfile {
  /// PostgreSQL-like: results of IMMUTABLE UDFs are cached per statement,
  /// keyed by argument values.
  kPostgres,
  /// "System C"-like: UDFs cannot be declared deterministic, every call
  /// executes the body (paper Appendix C).
  kSystemC,
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_STATS_H_
