// Catalog: tables, views and row storage.
#ifndef MTBASE_ENGINE_CATALOG_H_
#define MTBASE_ENGINE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "engine/schema.h"
#include "sql/ast.h"

namespace mtbase {
namespace engine {

/// Row-oriented in-memory table.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>* mutable_rows() { return &rows_; }

  /// Append a row; checks arity and NOT NULL constraints.
  Status Insert(Row row);
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Monotonic row-mutation counter: Insert bumps it, and the UPDATE/DELETE
  /// executors call BumpDataVersion after mutating through mutable_rows().
  /// Part of the shared-UDF-cache epoch: cached dictionary lookups must not
  /// survive a change to the rows their body reads.
  uint64_t data_version() const { return data_version_; }
  void BumpDataVersion() { ++data_version_; }

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
  uint64_t data_version_ = 0;
};

struct ViewDef {
  std::string name;
  std::unique_ptr<sql::SelectStmt> select;
};

class Catalog {
 public:
  Status CreateTable(TableSchema schema);
  Status CreateView(std::string name, std::unique_ptr<sql::SelectStmt> select);
  Status DropTable(const std::string& name);
  Status DropView(const std::string& name);

  Table* FindTable(const std::string& name) const;
  const ViewDef* FindView(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Monotonic DDL counter: bumped by every CreateTable/CreateView/Drop*.
  /// Prepared plans snapshot it and recompile when it moved (plans hold raw
  /// Table pointers, so any catalog mutation invalidates them).
  uint64_t version() const { return version_; }

  /// Sum of all tables' row-mutation counters (combined with version() in
  /// the shared-UDF-cache epoch, so dropping a table cannot leave the sum
  /// looking unchanged).
  uint64_t data_version() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, ViewDef> views_;
  uint64_t version_ = 0;
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_CATALOG_H_
