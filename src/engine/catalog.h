// Catalog: tables, views and row storage.
#ifndef MTBASE_ENGINE_CATALOG_H_
#define MTBASE_ENGINE_CATALOG_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "engine/schema.h"
#include "sql/ast.h"

namespace mtbase {
namespace engine {

/// Total order over index key values: NULLs first, then SQL comparison;
/// values whose kinds cannot compare (only possible in ill-typed rows) fall
/// back to the type-id order so the sort stays strict-weak. Shared between
/// the index build (Table::IndexOrder) and the executor's binary searches,
/// which must agree exactly.
int IndexKeyCompare(const Value& a, const Value& b);

/// Ordered secondary index over a table (CREATE INDEX). The physical order
/// is a row-id permutation sorted by the key columns ascending (NULLs first,
/// ties broken by row id, i.e. insertion order), rebuilt lazily whenever the
/// table's data version moved — so an aborted DML statement, which leaves
/// rows() untouched, trivially leaves every index consistent.
struct TableIndex {
  std::string name;
  std::vector<std::string> columns;
  std::vector<int> slots;  // schema slots of the key columns

  // Lazily maintained by Table::IndexOrderAt (guarded by the table's
  // physical-state mutex; mutable so const scans can refresh it). Held as a
  // shared snapshot so a concurrent rebuild replaces the pointer without
  // invalidating the permutation a running statement already pinned.
  mutable std::shared_ptr<const std::vector<uint32_t>> order;
  mutable uint64_t built_version = 0;
  mutable bool built = false;
};

/// Row-oriented in-memory table.
///
/// The insertion-ordered row vector stays the single source of truth for row
/// data and result ordering; partitions and indexes are derived structures
/// over row ids, rebuilt lazily when data_version() has moved.
///
/// Row storage is copy-on-write for the serving layer: the current rows live
/// in a `shared_ptr<vector<Row>>` published under snap_mu_. Readers pin a
/// Snapshot() and scan it without further locking; UPDATE/DELETE build a
/// replacement vector and publish it with ReplaceRows, so a pinned snapshot
/// never mutates underneath a running SELECT. Appends go through AppendRows,
/// which extends the vector in place only while no snapshot is pinned,
/// keeping bulk loads O(n). Pinning is tracked by an explicit counter
/// (incremented under snap_mu_, decremented with release ordering when the
/// snapshot dies) rather than shared_ptr::use_count(): use_count() is a
/// relaxed load, so it cannot order a departed reader's scans before the
/// writer's in-place append. Writers are
/// serialized per table through LockForWrite for the span of one DML
/// statement (single-table DML, so ordering cannot deadlock).
class Table {
 public:
  explicit Table(TableSchema schema)
      : schema_(std::move(schema)),
        rows_(std::make_shared<std::vector<Row>>()) {}

  const TableSchema& schema() const { return schema_; }

  /// Unsynchronized view of the current rows, for single-threaded callers
  /// (loaders, tests, validation). Concurrent statements pin Snapshot()
  /// instead; holding this reference across a concurrent writer is a bug.
  const std::vector<Row>& rows() const { return *rows_; }

  /// A pinned, immutable view of the rows plus the data version they
  /// correspond to. Derived structures (partitions, index orders) report the
  /// version they were built at, so a statement can detect a mismatch against
  /// its pinned rows and fall back to scanning the snapshot directly.
  struct RowsSnapshot {
    std::shared_ptr<const std::vector<Row>> rows;
    uint64_t version = 0;
  };
  RowsSnapshot Snapshot() const;
  size_t row_count() const;

  /// Append a row; checks arity and NOT NULL constraints.
  Status Insert(Row row);
  /// Insert's validation half without the append: lets multi-row DML check
  /// every row before mutating anything (evaluate-all-before-mutating).
  Status CheckRow(const Row& row) const;
  /// Capacity hint for bulk loads (no-op while a snapshot is pinned).
  void Reserve(size_t n);

  /// Validates every row, then appends the batch atomically (all rows or
  /// none become visible; a published snapshot never shows a partial batch).
  Status AppendRows(std::vector<Row> staged);
  /// Publish a replacement row vector (UPDATE/DELETE build-and-swap).
  void ReplaceRows(std::vector<Row> next);
  /// Serializes writers on this table: DML executors hold this from before
  /// evaluating against the current snapshot until the new version is
  /// published, so concurrent writers cannot lose updates.
  std::unique_lock<std::mutex> LockForWrite() const;

  /// Monotonic row-mutation counter: every AppendRows/ReplaceRows publish
  /// advances it. Part of the shared-UDF-cache epoch: cached dictionary
  /// lookups must not survive a change to the rows their body reads.
  uint64_t data_version() const {
    return data_version_.load(std::memory_order_acquire);
  }

  // -- physical design ------------------------------------------------------

  const PartitionScheme& partition() const { return schema_.partition; }

  /// Per-partition ascending row-id lists, rebuilt if stale; `built_version`
  /// receives the data version the lists were built at. Thread-safe: returns
  /// a shared snapshot, so a concurrent rebuild cannot invalidate it.
  std::shared_ptr<const std::vector<std::vector<uint32_t>>> PartitionRowsAt(
      uint64_t* built_version = nullptr) const;

  const std::vector<TableIndex>& indexes() const { return indexes_; }
  const TableIndex* FindIndex(const std::string& name) const;
  /// First index whose leading key column is `slot` (ttid-leading lookup).
  const TableIndex* FindIndexLeadingOn(int slot) const;
  Status AddIndex(TableIndex index);
  bool RemoveIndex(const std::string& name);

  /// The index's sorted row-id permutation, rebuilt if stale; `built_version`
  /// receives the data version it was built at. Thread-safe (shared snapshot,
  /// like PartitionRowsAt).
  std::shared_ptr<const std::vector<uint32_t>> IndexOrderAt(
      const TableIndex& index, uint64_t* built_version = nullptr) const;

 private:
  TableSchema schema_;
  // Current rows; published under snap_mu_. Never null.
  std::shared_ptr<std::vector<Row>> rows_;
  // Live Snapshot() pins. Heap-shared so a snapshot's unpin stays valid even
  // if the table is dropped while the snapshot is still scanning. Acquire
  // loads (under snap_mu_) pair with the deleter's release decrement, giving
  // writers a happens-before edge over every departed reader's scans.
  std::shared_ptr<std::atomic<int64_t>> pins_{
      std::make_shared<std::atomic<int64_t>>(0)};
  std::atomic<uint64_t> data_version_{0};
  // Guards rows_/data_version_ publication and snapshot pinning.
  mutable std::mutex snap_mu_;
  // Serializes DML statements on this table (held across evaluate+publish).
  mutable std::mutex write_mu_;

  std::vector<TableIndex> indexes_;
  // Lazily derived physical state (guarded by phys_mu_).
  mutable std::mutex phys_mu_;
  mutable std::shared_ptr<const std::vector<std::vector<uint32_t>>>
      partition_rows_;
  mutable uint64_t partitions_built_version_ = 0;
  mutable bool partitions_built_ = false;
};

struct ViewDef {
  std::string name;
  std::unique_ptr<sql::SelectStmt> select;
};

class Catalog {
 public:
  Status CreateTable(TableSchema schema);
  Status CreateView(std::string name, std::unique_ptr<sql::SelectStmt> select);
  Status DropTable(const std::string& name);
  Status DropView(const std::string& name);

  /// CREATE INDEX name ON table (columns). Index names are catalog-global so
  /// DROP INDEX needs no table qualifier. Bumps version(): prepared plans and
  /// MT session fingerprints recompile, so a new index is picked up (and a
  /// dropped one abandoned) before the next execution.
  Status CreateIndex(const std::string& name, const std::string& table,
                     const std::vector<std::string>& columns);
  Status DropIndex(const std::string& name);

  Table* FindTable(const std::string& name) const;
  const ViewDef* FindView(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Monotonic DDL counter: bumped by every CreateTable/CreateView/Drop*.
  /// Prepared plans snapshot it and recompile when it moved (plans hold raw
  /// Table pointers, so any catalog mutation invalidates them). Atomic so
  /// concurrent statements can fingerprint-check without the DDL lock.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Sum of all tables' row-mutation counters (combined with version() in
  /// the shared-UDF-cache epoch, so dropping a table cannot leave the sum
  /// looking unchanged).
  uint64_t data_version() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, ViewDef> views_;
  std::unordered_map<std::string, std::string> index_to_table_;  // lower names
  std::atomic<uint64_t> version_{0};
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_CATALOG_H_
