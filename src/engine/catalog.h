// Catalog: tables, views and row storage.
#ifndef MTBASE_ENGINE_CATALOG_H_
#define MTBASE_ENGINE_CATALOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "engine/schema.h"
#include "sql/ast.h"

namespace mtbase {
namespace engine {

/// Total order over index key values: NULLs first, then SQL comparison;
/// values whose kinds cannot compare (only possible in ill-typed rows) fall
/// back to the type-id order so the sort stays strict-weak. Shared between
/// the index build (Table::IndexOrder) and the executor's binary searches,
/// which must agree exactly.
int IndexKeyCompare(const Value& a, const Value& b);

/// Ordered secondary index over a table (CREATE INDEX). The physical order
/// is a row-id permutation sorted by the key columns ascending (NULLs first,
/// ties broken by row id, i.e. insertion order), rebuilt lazily whenever the
/// table's data version moved — so an aborted DML statement, which leaves
/// rows() untouched, trivially leaves every index consistent.
struct TableIndex {
  std::string name;
  std::vector<std::string> columns;
  std::vector<int> slots;  // schema slots of the key columns

  // Lazily maintained by Table::IndexOrder (guarded by the table's
  // physical-state mutex; mutable so const scans can refresh it).
  mutable std::vector<uint32_t> order;
  mutable uint64_t built_version = 0;
  mutable bool built = false;
};

/// Row-oriented in-memory table.
///
/// The insertion-ordered rows_ vector stays the single source of truth for
/// row data and result ordering; partitions and indexes are derived
/// structures over row ids, rebuilt lazily when data_version() has moved.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>* mutable_rows() { return &rows_; }

  /// Append a row; checks arity and NOT NULL constraints.
  Status Insert(Row row);
  /// Insert's validation half without the append: lets multi-row DML check
  /// every row before mutating anything (evaluate-all-before-mutating).
  Status CheckRow(const Row& row) const;
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Monotonic row-mutation counter: Insert bumps it, and the UPDATE/DELETE
  /// executors call BumpDataVersion after mutating through mutable_rows().
  /// Part of the shared-UDF-cache epoch: cached dictionary lookups must not
  /// survive a change to the rows their body reads.
  uint64_t data_version() const { return data_version_; }
  void BumpDataVersion() { ++data_version_; }

  // -- physical design ------------------------------------------------------

  const PartitionScheme& partition() const { return schema_.partition; }

  /// Per-partition ascending row-id lists, rebuilt if stale. Thread-safe:
  /// UDF body plans scan from worker threads in parallel.
  const std::vector<std::vector<uint32_t>>& PartitionRows() const;

  const std::vector<TableIndex>& indexes() const { return indexes_; }
  const TableIndex* FindIndex(const std::string& name) const;
  /// First index whose leading key column is `slot` (ttid-leading lookup).
  const TableIndex* FindIndexLeadingOn(int slot) const;
  Status AddIndex(TableIndex index);
  bool RemoveIndex(const std::string& name);

  /// The index's sorted row-id permutation, rebuilt if stale. Thread-safe.
  const std::vector<uint32_t>& IndexOrder(const TableIndex& index) const;

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
  uint64_t data_version_ = 0;

  std::vector<TableIndex> indexes_;
  // Lazily derived physical state (guarded by phys_mu_).
  mutable std::mutex phys_mu_;
  mutable std::vector<std::vector<uint32_t>> partition_rows_;
  mutable uint64_t partitions_built_version_ = 0;
  mutable bool partitions_built_ = false;
};

struct ViewDef {
  std::string name;
  std::unique_ptr<sql::SelectStmt> select;
};

class Catalog {
 public:
  Status CreateTable(TableSchema schema);
  Status CreateView(std::string name, std::unique_ptr<sql::SelectStmt> select);
  Status DropTable(const std::string& name);
  Status DropView(const std::string& name);

  /// CREATE INDEX name ON table (columns). Index names are catalog-global so
  /// DROP INDEX needs no table qualifier. Bumps version(): prepared plans and
  /// MT session fingerprints recompile, so a new index is picked up (and a
  /// dropped one abandoned) before the next execution.
  Status CreateIndex(const std::string& name, const std::string& table,
                     const std::vector<std::string>& columns);
  Status DropIndex(const std::string& name);

  Table* FindTable(const std::string& name) const;
  const ViewDef* FindView(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Monotonic DDL counter: bumped by every CreateTable/CreateView/Drop*.
  /// Prepared plans snapshot it and recompile when it moved (plans hold raw
  /// Table pointers, so any catalog mutation invalidates them).
  uint64_t version() const { return version_; }

  /// Sum of all tables' row-mutation counters (combined with version() in
  /// the shared-UDF-cache epoch, so dropping a table cannot leave the sum
  /// looking unchanged).
  uint64_t data_version() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, ViewDef> views_;
  std::unordered_map<std::string, std::string> index_to_table_;  // lower names
  uint64_t version_ = 0;
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_CATALOG_H_
