// Planner: turns a parsed SELECT into a physical plan.
//
// Features: filter pushdown into scans, left-deep hash joins in FROM order,
// view expansion, and sub-query unnesting (EXISTS/NOT EXISTS and correlated
// IN into semi/anti joins, equality-correlated scalar aggregates into
// group-by + outer join). Anything not unnestable falls back to correct
// per-row evaluation. See DESIGN.md section 5 for why this mirrors the
// sub-query policy of real systems.
#ifndef MTBASE_ENGINE_PLANNER_H_
#define MTBASE_ENGINE_PLANNER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/bound.h"
#include "engine/catalog.h"
#include "engine/udf.h"
#include "sql/ast.h"

namespace mtbase {
namespace engine {

struct PlannerOptions {
  /// Rewrite correlated equality-EXISTS/NOT EXISTS/IN sub-queries into hash
  /// semi-/anti-joins. Off forces the per-row fallback everywhere — the
  /// O(outer rows) baseline that regression tests and benchmarks compare
  /// against.
  bool decorrelate_subqueries = true;

  /// Intra-query parallelism budget: the number of workers a statement's
  /// execution may use for morsel-driven scans, partitioned hash joins and
  /// parallel aggregation. 0 = auto (MTBASE_THREADS env, else
  /// hardware_concurrency); 1 forces serial execution. Parallel and serial
  /// runs produce byte-identical results, so this is purely a perf knob.
  int max_threads = 0;

  /// Operators whose input has fewer rows than this always run serially
  /// (parallelism overhead dominates on small inputs). Tests lower it to
  /// force the parallel path on small data sets.
  size_t min_parallel_rows = 4096;

  /// Use tenant-aware physical access paths: partition pruning on scans of
  /// partitioned tables whose pushed filter pins the partition column to an
  /// integer equality/IN set, and ordered-index scans when a leading index
  /// column is pinned the same way. Results are byte-identical either way;
  /// off forces full scans, which regression tests and the bench compare
  /// against. Toggling recompiles prepared statements (options version).
  bool physical_access_paths = true;

  /// Fuse an ORDER BY directly under a LIMIT into a bounded top-N operator
  /// (per-worker heaps keep only limit + offset candidates instead of
  /// sorting the full input). Output is byte-identical to full-sort +
  /// LIMIT/OFFSET; off forces the full sort, which regression tests compare
  /// against. Toggling recompiles prepared statements (options version).
  bool topn_pushdown = true;
};

class Planner {
 public:
  Planner(const Catalog* catalog, const UdfRegistry* udfs,
          const PlannerOptions& options = PlannerOptions())
      : catalog_(catalog), udfs_(udfs), options_(options) {}

  /// Plan a top-level SELECT.
  Result<PlanPtr> PlanSelect(const sql::SelectStmt& sel) const;

  /// Bind a scalar expression against a fixed row layout (used for UPDATE /
  /// DELETE predicates and database-level check constraints).
  Result<BoundExprPtr> BindExpr(const sql::Expr& e,
                                const std::vector<ColumnMeta>& layout) const;

 private:
  const Catalog* catalog_;
  const UdfRegistry* udfs_;
  PlannerOptions options_;
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_PLANNER_H_
