#include "engine/admission.h"

#include <chrono>
#include <set>

#include "engine/obs/metrics.h"

namespace mtbase {
namespace engine {

namespace {

thread_local const std::atomic<bool>* tl_cancel_token = nullptr;

}  // namespace

void AdmissionController::set_limit(int limit) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    limit_ = limit < 0 ? 0 : limit;
  }
  cv_.notify_all();
}

int AdmissionController::limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limit_;
}

int AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(next_ticket_ - serving_);
}

void AdmissionController::NotifyAll() { cv_.notify_all(); }

Status AdmissionController::Acquire(const std::atomic<bool>* cancelled) {
  auto* metrics = obs::MetricsRegistry::Global();
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t ticket = next_ticket_++;
  bool queued = false;
  const auto queued_at = std::chrono::steady_clock::now();
  for (;;) {
    if (cancelled != nullptr &&
        cancelled->load(std::memory_order_acquire)) {
      // Abandon our place in line; if we are at the head, advance serving_
      // past us (and past any earlier abandonments) so the queue moves on.
      if (serving_ == ticket) {
        ++serving_;
        while (abandoned_.erase(serving_) > 0) ++serving_;
      } else {
        abandoned_.insert(ticket);
      }
      lock.unlock();
      cv_.notify_all();
      metrics->Add("mtbase_engine_statements_cancelled_total");
      return Status::Internal("statement cancelled: session closed");
    }
    if (serving_ == ticket &&
        (limit_ <= 0 ||
         in_flight_.load(std::memory_order_acquire) < limit_)) {
      break;
    }
    queued = true;
    // Timed wait: cancellation is normally signalled via NotifyAll, the
    // timeout is a safety net against a missed wakeup.
    cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
  ++serving_;
  while (abandoned_.erase(serving_) > 0) ++serving_;
  int now_in_flight = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  int seen = max_in_flight_.load(std::memory_order_relaxed);
  while (now_in_flight > seen &&
         !max_in_flight_.compare_exchange_weak(seen, now_in_flight)) {
  }
  lock.unlock();
  cv_.notify_all();

  metrics->Add("mtbase_engine_statements_admitted_total");
  if (queued) {
    metrics->Add("mtbase_engine_statements_queued_total");
  }
  metrics->Observe(
      "mtbase_engine_admission_wait_seconds",
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    queued_at)
          .count());
  return Status::OK();
}

void AdmissionController::Release() {
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  cv_.notify_all();
}

ScopedCancelToken::ScopedCancelToken(const std::atomic<bool>* token)
    : prev_(tl_cancel_token) {
  tl_cancel_token = token;
}

ScopedCancelToken::~ScopedCancelToken() { tl_cancel_token = prev_; }

const std::atomic<bool>* ScopedCancelToken::Current() {
  return tl_cancel_token;
}

}  // namespace engine
}  // namespace mtbase
