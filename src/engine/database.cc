#include "engine/database.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <unordered_set>

#include "common/str_util.h"
#include "engine/explain.h"
#include "engine/obs/metrics.h"
#include "engine/obs/trace.h"
#include "engine/parallel/parallel.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace mtbase {
namespace engine {

thread_local verify::VerifyContext Database::verify_ctx_;
thread_local obs::StatementTrace* Database::active_trace_ = nullptr;
thread_local Database::StatsFrame* Database::tl_stats_frame_ = nullptr;
thread_local const Database* Database::tl_guard_owner_ = nullptr;
thread_local int Database::tl_guard_depth_ = 0;
thread_local int Database::tl_admission_depth_ = 0;

Database::Database(DbmsProfile profile) : profile_(profile) {
  if (const char* env = std::getenv("MTBASE_MAX_CONCURRENT_STATEMENTS")) {
    admission_.set_limit(std::atoi(env));
  }
}

// ---------------------------------------------------------------------------
// Statement-scope concurrency plumbing
// ---------------------------------------------------------------------------

Database::StatsFrame::StatsFrame(Database* db) : db_(db) {
  for (StatsFrame* f = tl_stats_frame_; f != nullptr; f = f->prev_) {
    if (f->db_ == db) return;  // nested statement: share the outer frame
  }
  prev_ = tl_stats_frame_;
  tl_stats_frame_ = this;
  active_ = true;
}

Database::StatsFrame::~StatsFrame() {
  if (!active_) return;
  tl_stats_frame_ = prev_;
  std::lock_guard<std::mutex> lock(db_->stats_mu_);
  db_->stats_.MergeStatement(local_);
}

ExecStats* Database::CurStats() {
  for (StatsFrame* f = tl_stats_frame_; f != nullptr; f = f->prev_) {
    if (f->db_ == this) return &f->local_;
  }
  return &stats_;
}

Database::StatementGuard::StatementGuard(Database* db, bool exclusive)
    : db_(db) {
  if (tl_guard_owner_ == db && tl_guard_depth_ > 0) {
    // Nested statement on the same database: the outer guard's lock covers
    // us. A nested exclusive request under a shared outer guard cannot occur
    // by construction (DDL only nests inside DDL).
    nested_ = true;
    ++tl_guard_depth_;
    return;
  }
  prev_owner_ = tl_guard_owner_;
  prev_depth_ = tl_guard_depth_;
  exclusive_ = exclusive;
  if (exclusive) {
    db->ddl_mu_.lock();
  } else {
    db->ddl_mu_.lock_shared();
  }
  tl_guard_owner_ = db;
  tl_guard_depth_ = 1;
}

Database::StatementGuard::~StatementGuard() {
  if (nested_) {
    --tl_guard_depth_;
    return;
  }
  if (exclusive_) {
    db_->ddl_mu_.unlock();
  } else {
    db_->ddl_mu_.unlock_shared();
  }
  tl_guard_owner_ = prev_owner_;
  tl_guard_depth_ = prev_depth_;
}

Database::AdmissionPass::AdmissionPass(Database* db) : db_(db) {
  outermost_ = tl_admission_depth_ == 0;
  ++tl_admission_depth_;
  if (outermost_) {
    status_ = db_->admission_.Acquire(ScopedCancelToken::Current());
  }
}

Database::AdmissionPass::~AdmissionPass() {
  --tl_admission_depth_;
  if (outermost_ && status_.ok()) db_->admission_.Release();
}

bool Database::IsDdlStmt(const sql::Stmt& stmt) {
  switch (stmt.kind) {
    case sql::Stmt::Kind::kCreateTable:
    case sql::Stmt::Kind::kCreateView:
    case sql::Stmt::Kind::kCreateFunction:
    case sql::Stmt::Kind::kCreateIndex:
    case sql::Stmt::Kind::kDrop:
      return true;
    default:
      return false;
  }
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out = JoinStrings(column_names, " | ") + "\n";
  size_t n = std::min(rows.size(), max_rows);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> cells;
    cells.reserve(rows[i].size());
    for (const Value& v : rows[i]) cells.push_back(v.ToString());
    out += JoinStrings(cells, " | ") + "\n";
  }
  if (rows.size() > n) {
    out += "... (" + std::to_string(rows.size()) + " rows)\n";
  }
  return out;
}

ExecContext Database::MakeContext(const std::vector<Value>* params) {
  ExecContext ctx;
  ctx.stats = CurStats();
  ctx.profile = profile_;
  ctx.params = params;
  ctx.snapshots = std::make_shared<TableSnapshots>();
  // Inter-query scheduling: concurrent statements split the intra-query
  // thread budget instead of each claiming the whole pool (in_flight counts
  // this statement, so a lone statement keeps the full budget).
  const int resolved =
      parallel::ResolveMaxThreads(planner_options_.max_threads);
  const int in_flight = std::max(1, admission_.in_flight());
  ctx.max_threads = std::max(1, resolved / in_flight);
  ctx.min_parallel_rows = planner_options_.min_parallel_rows;
  if (shared_udf_cache_enabled_) {
    // The epoch is captured once per statement: DML executed by this very
    // statement moves the catalog data version, so the *next* statement's
    // epoch differs and logically evicts everything cached before the write.
    ctx.shared_udf_cache = &shared_udf_cache_;
    ctx.shared_udf_epoch = CurrentUdfCacheEpoch();
  }
  // Bench overhead knob (set_profile_execution): every statement pays the
  // ANALYZE instrumentation cost into a reused, never-rendered profiler.
  if (profile_execution_) ctx.profiler = &bench_profiler_;
  return ctx;
}

namespace {

void CollectExprTables(const BoundExpr& e, std::set<const Table*>* out);

void CollectPlanTables(const Plan& p, std::set<const Table*>* out) {
  if (p.table != nullptr) out->insert(p.table);
  ForEachPlanExpr(p, [out](const BoundExpr& e) { CollectExprTables(e, out); });
  if (p.left) CollectPlanTables(*p.left, out);
  if (p.right) CollectPlanTables(*p.right, out);
}

void CollectExprTables(const BoundExpr& e, std::set<const Table*>* out) {
  if (e.subplan) CollectPlanTables(*e.subplan, out);
  ForEachExprChild(e, [out](const BoundExpr& c) { CollectExprTables(c, out); });
}

}  // namespace

void Database::RebuildUdfReadTables() {
  std::set<const Table*> tables;
  for (Udf* udf : udfs_.All()) {
    if (udf->body_plan != nullptr) CollectPlanTables(*udf->body_plan, &tables);
  }
  udf_read_tables_.assign(tables.begin(), tables.end());
}

UdfCacheEpoch Database::CurrentUdfCacheEpoch() const {
  uint64_t data = 0;
  if (udf_plans_stale_) {
    // Table set unknown until the lazy refresh runs; the whole-catalog sum
    // is a safe (at worst over-evicting) stand-in with no raw pointers.
    data = catalog_.data_version();
  } else {
    for (const Table* t : udf_read_tables_) data += t->data_version();
  }
  return UdfCacheEpoch{catalog_.version() + udfs_.version(), data,
                       shared_udf_external_epoch_};
}

void Database::EnableSharedUdfCache(size_t capacity) {
  // Only the enabling call sizes the cache: a later redundant call (e.g.
  // the Middleware constructor after an embedder already enabled with a
  // custom capacity) must not clobber it. Resize explicitly through
  // shared_udf_cache()->set_capacity().
  if (!shared_udf_cache_enabled_) shared_udf_cache_.set_capacity(capacity);
  shared_udf_cache_enabled_ = true;
}

// ---------------------------------------------------------------------------
// PreparedPlan
// ---------------------------------------------------------------------------

/// Bound DML: everything a prepared INSERT/UPDATE/DELETE needs at execution
/// time without touching the binder again. The raw Table pointer is safe for
/// the same reason cached SELECT plans are: any catalog DDL moves the
/// compilation version and forces a recompile before the next execution.
struct BoundDmlPlan {
  Table* table = nullptr;
  BoundExprPtr where;                                // UPDATE / DELETE
  std::vector<std::pair<int, BoundExprPtr>> sets;    // UPDATE assignments
  std::vector<int> targets;                          // INSERT column slots
  std::vector<std::vector<BoundExprPtr>> value_rows; // INSERT ... VALUES
};

/// Immutable compiled form of a PreparedPlan. Re-compiles build a fresh
/// block and swap it in under the handle mutex, so concurrent executions on
/// one shared handle either see the complete old state or the complete new
/// one — never a half-replaced plan.
struct PreparedPlan::CompiledState {
  uint64_t version = 0;
  /// First execution after a compile is amortization, not a cache hit.
  mutable std::atomic<bool> fresh{true};
  // SELECT: the statement's plan. INSERT ... SELECT: the source plan.
  std::shared_ptr<const Plan> plan;
  // INSERT/UPDATE/DELETE: the statement's bound form.
  std::unique_ptr<BoundDmlPlan> dml;
  std::vector<std::string> column_names;
};

PreparedPlan::PreparedPlan(PreparedPlan&&) noexcept = default;
PreparedPlan& PreparedPlan::operator=(PreparedPlan&&) noexcept = default;
PreparedPlan::~PreparedPlan() = default;

Result<std::shared_ptr<const PreparedPlan::CompiledState>>
PreparedPlan::CompileLocked() {
  auto state = std::make_shared<CompiledState>();
  // Snapshot the version before planning: a concurrent DDL that lands
  // mid-compile yields a state stamped stale, forcing a recompile on the
  // next execution instead of silently serving a half-old plan.
  state->version = db_->compilation_version();
  ExecStats* stats = db_->CurStats();
  ++stats->prepare_count;
  const sql::SelectStmt* sel =
      stmt_.kind == sql::Stmt::Kind::kSelect ? stmt_.select.get()
      : stmt_.kind == sql::Stmt::Kind::kInsert ? stmt_.insert->select.get()
                                               : nullptr;
  if (sel != nullptr) {
    PlanPtr plan;
    {
      obs::SpanTimer span(db_->active_trace_, "plan", stats);
      Planner planner(&db_->catalog_, &db_->udfs_, db_->planner_options_);
      MTB_ASSIGN_OR_RETURN(plan, planner.PlanSelect(*sel));
      ++stats->statements_planned;
    }
    MTB_RETURN_IF_ERROR(db_->VerifyPlan(plan.get()));
    for (const auto& c : plan->columns) state->column_names.push_back(c.name);
    state->plan = std::shared_ptr<const Plan>(std::move(plan));
  }
  if (stmt_.kind == sql::Stmt::Kind::kInsert ||
      stmt_.kind == sql::Stmt::Kind::kUpdate ||
      stmt_.kind == sql::Stmt::Kind::kDelete) {
    MTB_ASSIGN_OR_RETURN(state->dml, db_->BindDml(stmt_));
    // The bind is this statement's compilation — unless the INSERT ... SELECT
    // source plan above already counted it.
    if (sel == nullptr) ++stats->statements_planned;
  }
  return std::shared_ptr<const CompiledState>(std::move(state));
}

Result<ResultSet> PreparedPlan::Execute(const std::vector<Value>& params) {
  // Admission first (blocking while holding no locks), then the stats frame
  // and the statement-scope lock: shared for SELECT/DML, exclusive for DDL
  // statement kinds executed through a prepared handle.
  Database::AdmissionPass admission(db_);
  if (!admission.status().ok()) return admission.status();
  Database::StatsFrame frame(db_);
  Database::StatementGuard guard(db_, Database::IsDdlStmt(stmt_));
  // Observability shell around the execution body: one engine-layer trace
  // record per statement (nested statements append to the enclosing record
  // via the Database slot), plus process-wide metrics. With tracing off
  // (no MTBASE_TRACE) the record scope is inert; the metrics feed is a few
  // mutex-guarded map bumps per statement.
  obs::TraceRecordScope trace(obs::Tracer::Global(), &db_->active_trace_,
                              "engine", sql_);
  StatsScope scope(db_->CurStats());
  const auto t0 = std::chrono::steady_clock::now();
  Result<ResultSet> result = ExecuteInternal(params);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  trace.FinishFromStatus(result.ok() ? Status::OK() : result.status());
  const ExecStats d = scope.Delta();
  auto* metrics = obs::MetricsRegistry::Global();
  metrics->Add("mtbase_engine_statements_total");
  if (!result.ok()) metrics->Add("mtbase_engine_statement_errors_total");
  metrics->Observe("mtbase_engine_execute_seconds", secs);
  if (d.udf_calls > 0) {
    metrics->Add("mtbase_engine_udf_calls_total", d.udf_calls);
  }
  if (d.udf_cache_hits > 0) {
    metrics->Add("mtbase_engine_udf_cache_hits_total", d.udf_cache_hits);
  }
  if (d.udf_cache_misses > 0) {
    metrics->Add("mtbase_engine_udf_cache_misses_total", d.udf_cache_misses);
  }
  if (d.plan_cache_hits > 0) {
    metrics->Add("mtbase_engine_plan_cache_hits_total", d.plan_cache_hits);
  }
  if (d.plans_verified > 0) {
    metrics->Add("mtbase_engine_plans_verified_total", d.plans_verified);
  }
  if (result.ok()) {
    metrics->Add("mtbase_engine_rows_returned_total",
                 result.value().rows.size());
  }
  return result;
}

Result<ResultSet> PreparedPlan::ExecuteInternal(
    const std::vector<Value>& params) {
  if (static_cast<int>(params.size()) < param_count_) {
    return Status::InvalidArgument(
        "prepared statement needs " + std::to_string(param_count_) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  if (db_->udf_plans_stale_) db_->RefreshUdfPlans();
  std::shared_ptr<const CompiledState> st;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    st = state_;
  }
  if (st == nullptr || st->version != db_->compilation_version()) {
    std::lock_guard<std::mutex> lock(*mu_);
    if (state_ == nullptr ||
        state_->version != db_->compilation_version()) {
      // Invalidate first: a failed recompile (e.g. against a dropped table)
      // must not leave a handle that silently executes the stale plan.
      state_.reset();
      MTB_ASSIGN_OR_RETURN(auto compiled, CompileLocked());
      column_names_ = compiled->column_names;
      state_ = std::move(compiled);
    }
    st = state_;
  }
  // The first execution after a compile is amortization, not reuse.
  if (!st->fresh.exchange(false, std::memory_order_acq_rel)) {
    ++db_->CurStats()->plan_cache_hits;
  }
  obs::SpanTimer exec_span(db_->active_trace_, "execute", db_->CurStats());
  const std::vector<Value>* bound = params.empty() ? nullptr : &params;
  if (stmt_.kind == sql::Stmt::Kind::kSelect) {
    ExecContext ctx = db_->MakeContext(bound);
    MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*st->plan, &ctx));
    ResultSet rs;
    rs.column_names = st->column_names;
    rs.rows = std::move(rows);
    return rs;
  }
  // DML executes its bound form: no per-execution binder work.
  switch (stmt_.kind) {
    case sql::Stmt::Kind::kInsert:
      MTB_RETURN_IF_ERROR(
          db_->ExecuteBoundInsert(*st->dml, st->plan.get(), bound));
      return ResultSet();
    case sql::Stmt::Kind::kUpdate: {
      MTB_ASSIGN_OR_RETURN(int64_t n, db_->ExecuteBoundUpdate(*st->dml, bound));
      ResultSet rs;
      rs.column_names = {"updated"};
      rs.rows.push_back({Value::Int(n)});
      return rs;
    }
    case sql::Stmt::Kind::kDelete: {
      MTB_ASSIGN_OR_RETURN(int64_t n, db_->ExecuteBoundDelete(*st->dml, bound));
      ResultSet rs;
      rs.column_names = {"deleted"};
      rs.rows.push_back({Value::Int(n)});
      return rs;
    }
    default:
      return db_->ExecuteStmt(stmt_, bound);
  }
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

Result<PreparedPlan> Database::Prepare(const std::string& sql) {
  StatsFrame frame(this);
  ++CurStats()->statements_parsed;
  sql::Stmt stmt;
  {
    obs::SpanTimer span(active_trace_, "parse", CurStats());
    MTB_ASSIGN_OR_RETURN(stmt, sql::ParseStatement(sql));
  }
  return PrepareStmt(std::move(stmt), sql);
}

Result<PreparedPlan> Database::PrepareStmt(sql::Stmt stmt,
                                           std::string sql_text) {
  if (stmt.kind == sql::Stmt::Kind::kSetScope) {
    return Status::InvalidArgument(
        "SET SCOPE is an MTSQL statement; the engine only accepts SQL");
  }
  StatsFrame frame(this);
  // The compile reads the catalog/UDF registry: shared statement lock.
  StatementGuard guard(this, /*exclusive=*/false);
  PreparedPlan plan;
  plan.db_ = this;
  plan.sql_ = std::move(sql_text);
  plan.param_count_ = sql::MaxParamIndex(stmt);
  plan.stmt_ = std::move(stmt);
  {
    std::lock_guard<std::mutex> lock(*plan.mu_);
    MTB_ASSIGN_OR_RETURN(auto compiled, plan.CompileLocked());
    plan.column_names_ = compiled->column_names;
    plan.state_ = std::move(compiled);
  }
  return plan;
}

Result<ResultSet> Database::Execute(const std::string& sql) {
  // Open the statement's trace record here so the compile-time spans
  // (parse/plan/verify, recorded inside Prepare) land in the same record as
  // the execute span; PreparedPlan::Execute's own record scope nests into
  // this one via the slot.
  obs::TraceRecordScope trace(obs::Tracer::Global(), &active_trace_, "engine",
                              sql);
  auto result = [&]() -> Result<ResultSet> {
    MTB_ASSIGN_OR_RETURN(PreparedPlan plan, Prepare(sql));
    return plan.Execute();
  }();
  trace.FinishFromStatus(result.ok() ? Status::OK() : result.status());
  return result;
}

Result<ResultSet> Database::ExecuteScript(const std::string& sql) {
  StatsFrame frame(this);
  MTB_ASSIGN_OR_RETURN(auto stmts, sql::ParseScript(sql));
  CurStats()->statements_parsed += stmts.size();
  ResultSet last;
  for (size_t i = 0; i < stmts.size(); ++i) {
    auto r = ExecuteStmt(stmts[i]);
    if (!r.ok()) return AtScriptStatement(i + 1, r.status());
    last = std::move(r).value();
  }
  return last;
}

Result<ResultSet> Database::ExecuteStmt(const sql::Stmt& stmt,
                                        const std::vector<Value>* params) {
  AdmissionPass admission(this);
  if (!admission.status().ok()) return admission.status();
  StatsFrame frame(this);
  // DDL takes the statement lock exclusive; everything else shared. DDL
  // branches replan UDF bodies eagerly before releasing the exclusive lock,
  // so statements running under the shared lock never observe a body plan
  // mid-replan.
  StatementGuard guard(this, IsDdlStmt(stmt));
  if (udf_plans_stale_) RefreshUdfPlans();
  ResultSet empty;
  switch (stmt.kind) {
    case sql::Stmt::Kind::kSelect:
      return ExecuteSelect(*stmt.select, params);
    case sql::Stmt::Kind::kCreateTable:
      MTB_RETURN_IF_ERROR(ExecuteCreateTable(*stmt.create_table));
      RefreshUdfPlans();
      return empty;
    case sql::Stmt::Kind::kCreateView:
      MTB_RETURN_IF_ERROR(catalog_.CreateView(stmt.create_view->name,
                                              stmt.create_view->select->Clone()));
      RefreshUdfPlans();
      return empty;
    case sql::Stmt::Kind::kCreateFunction:
      MTB_RETURN_IF_ERROR(ExecuteCreateFunction(*stmt.create_function));
      return empty;
    case sql::Stmt::Kind::kCreateIndex:
      MTB_RETURN_IF_ERROR(catalog_.CreateIndex(stmt.create_index->name,
                                               stmt.create_index->table,
                                               stmt.create_index->columns));
      RefreshUdfPlans();
      return empty;
    case sql::Stmt::Kind::kInsert:
      // Ad-hoc DML shares the prepared path's bound form; only the
      // INSERT ... SELECT source still plans per execution here.
      if (stmt.insert->select) {
        MTB_RETURN_IF_ERROR(ExecuteInsert(*stmt.insert, params));
      } else {
        MTB_ASSIGN_OR_RETURN(auto dml, BindDml(stmt));
        MTB_RETURN_IF_ERROR(ExecuteBoundInsert(*dml, nullptr, params));
      }
      return empty;
    case sql::Stmt::Kind::kUpdate: {
      // Ad-hoc DML shares the prepared path's bound form (bind + execute).
      MTB_ASSIGN_OR_RETURN(auto dml, BindDml(stmt));
      MTB_ASSIGN_OR_RETURN(int64_t n, ExecuteBoundUpdate(*dml, params));
      empty.column_names = {"updated"};
      empty.rows.push_back({Value::Int(n)});
      return empty;
    }
    case sql::Stmt::Kind::kDelete: {
      MTB_ASSIGN_OR_RETURN(auto dml, BindDml(stmt));
      MTB_ASSIGN_OR_RETURN(int64_t n, ExecuteBoundDelete(*dml, params));
      empty.column_names = {"deleted"};
      empty.rows.push_back({Value::Int(n)});
      return empty;
    }
    case sql::Stmt::Kind::kGrant:
      // Privileges are enforced by the MT middleware (paper section 2.3);
      // the engine accepts and ignores plain-SQL grants.
      return empty;
    case sql::Stmt::Kind::kSetScope:
      return Status::InvalidArgument(
          "SET SCOPE is an MTSQL statement; the engine only accepts SQL");
    case sql::Stmt::Kind::kDrop:
      if (stmt.drop->what == sql::DropStmt::What::kTable) {
        MTB_RETURN_IF_ERROR(catalog_.DropTable(stmt.drop->name));
      } else if (stmt.drop->what == sql::DropStmt::What::kIndex) {
        MTB_RETURN_IF_ERROR(catalog_.DropIndex(stmt.drop->name));
      } else {
        MTB_RETURN_IF_ERROR(catalog_.DropView(stmt.drop->name));
      }
      udf_plans_stale_ = true;
      return empty;
  }
  return Status::Internal("unhandled statement kind");
}

void Database::EnsureUdfPlansFresh() {
  if (!udf_plans_stale_.load(std::memory_order_acquire)) return;
  StatementGuard guard(this, /*exclusive=*/true);
  if (udf_plans_stale_) RefreshUdfPlans();
}

void Database::set_planner_options(const PlannerOptions& o) {
  StatementGuard guard(this, /*exclusive=*/true);
  planner_options_ = o;
  options_version_.fetch_add(1, std::memory_order_acq_rel);
  RefreshUdfPlans();
}

void Database::RefreshUdfPlans() {
  udf_plans_stale_ = false;
  for (Udf* udf : udfs_.All()) {
    udf->body_plan.reset();
    auto body = sql::ParseSelect(udf->body_sql);
    if (!body.ok()) continue;
    Planner planner(&catalog_, &udfs_, planner_options_);
    auto plan = planner.PlanSelect(*body.value());
    if (!plan.ok()) continue;  // references dropped objects; stays null
    udf->body_plan = std::shared_ptr<const Plan>(std::move(plan).value());
  }
  RebuildUdfReadTables();
}

Status Database::VerifyPlan(Plan* plan) {
  if (plan_mutation_hook_) plan_mutation_hook_(plan);
  if (!verify::VerificationEnabled()) return Status::OK();
  // The verifier walks UDF body plans, which hold raw catalog pointers and
  // are only safe to dereference once replanned against the current catalog.
  if (udf_plans_stale_) RefreshUdfPlans();
  ExecStats* stats = CurStats();
  obs::SpanTimer span(active_trace_, "verify", stats);
  ++stats->plans_verified;
  verify::PlanVerifier verifier(&verify_ctx_);
  verify::VerifyResult result = verifier.Verify(*plan);
  if (result.ok()) return Status::OK();
  stats->verify_violations += result.violations.size();
  return Status::InvalidArgument("plan verification failed:\n" +
                                 result.Message());
}

Result<ResultSet> Database::ExecuteSelect(const sql::SelectStmt& sel,
                                          const std::vector<Value>* params) {
  // Ad-hoc SELECTs (scripts, ExecuteStmt callers) reach execution without a
  // PreparedPlan, so this path carries its own observability shell. The
  // statement text only exists as an AST here; it is printed back to SQL
  // for the trace record only when tracing is actually on.
  AdmissionPass admission(this);
  if (!admission.status().ok()) return admission.status();
  StatsFrame frame(this);
  StatementGuard guard(this, /*exclusive=*/false);
  ExecStats* stats = CurStats();
  obs::Tracer* tracer = obs::Tracer::Global();
  obs::TraceRecordScope trace(
      tracer, &active_trace_, "engine",
      tracer != nullptr && tracer->enabled() ? sql::PrintSelect(sel)
                                             : std::string());
  StatsScope scope(stats);
  const auto t0 = std::chrono::steady_clock::now();
  auto result = [&]() -> Result<ResultSet> {
    PlanPtr plan;
    {
      obs::SpanTimer span(active_trace_, "plan", stats);
      Planner planner(&catalog_, &udfs_, planner_options_);
      MTB_ASSIGN_OR_RETURN(plan, planner.PlanSelect(sel));
      ++stats->statements_planned;
    }
    MTB_RETURN_IF_ERROR(VerifyPlan(plan.get()));
    obs::SpanTimer span(active_trace_, "execute", stats);
    ExecContext ctx = MakeContext(params);
    MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*plan, &ctx));
    ResultSet rs;
    for (const auto& c : plan->columns) rs.column_names.push_back(c.name);
    rs.rows = std::move(rows);
    return rs;
  }();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  trace.FinishFromStatus(result.ok() ? Status::OK() : result.status());
  const ExecStats d = scope.Delta();
  auto* metrics = obs::MetricsRegistry::Global();
  metrics->Add("mtbase_engine_statements_total");
  if (!result.ok()) metrics->Add("mtbase_engine_statement_errors_total");
  metrics->Observe("mtbase_engine_execute_seconds", secs);
  if (d.udf_calls > 0) {
    metrics->Add("mtbase_engine_udf_calls_total", d.udf_calls);
  }
  if (d.udf_cache_hits > 0) {
    metrics->Add("mtbase_engine_udf_cache_hits_total", d.udf_cache_hits);
  }
  if (d.udf_cache_misses > 0) {
    metrics->Add("mtbase_engine_udf_cache_misses_total", d.udf_cache_misses);
  }
  if (d.plans_verified > 0) {
    metrics->Add("mtbase_engine_plans_verified_total", d.plans_verified);
  }
  if (result.ok()) {
    metrics->Add("mtbase_engine_rows_returned_total",
                 result.value().rows.size());
  }
  return result;
}

Result<std::string> Database::ExplainAnalyzeSelect(
    const sql::SelectStmt& sel, const verify::VerifyContext* footer_verify_ctx,
    ResultSet* result_out) {
  AdmissionPass admission(this);
  if (!admission.status().ok()) return admission.status();
  StatsFrame frame(this);
  StatementGuard guard(this, /*exclusive=*/false);
  if (udf_plans_stale_) RefreshUdfPlans();
  Planner planner(&catalog_, &udfs_, planner_options_);
  MTB_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(sel));
  ++CurStats()->statements_planned;
  MTB_RETURN_IF_ERROR(VerifyPlan(plan.get()));
  // Instrumented execution: same context a plain run gets, plus a profiler.
  obs::PlanProfiler profiler;
  StatsScope scope(CurStats());
  ExecContext ctx = MakeContext();
  ctx.profiler = &profiler;
  const auto t0 = std::chrono::steady_clock::now();
  MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*plan, &ctx));
  const double total_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const ExecStats d = scope.Delta();
  std::string out = ExplainPlan(*plan, &planner_options_, &profiler);
  // Footer order is fixed (docs/observability.md): verify, analyze; the
  // session layer appends its audit footer after both.
  if (footer_verify_ctx != nullptr) {
    verify::PlanVerifier verifier(footer_verify_ctx);
    out += "[verify: " + verifier.Verify(*plan).Summary() + "]\n";
  }
  char footer[160];
  std::snprintf(footer, sizeof(footer),
                "[analyze: rows=%llu workers=%d time=%.3fms udf_calls=%llu"
                " udf_cache_hits=%llu]\n",
                static_cast<unsigned long long>(rows.size()),
                profiler.MaxWorkers(), total_ms,
                static_cast<unsigned long long>(d.udf_calls),
                static_cast<unsigned long long>(d.udf_cache_hits));
  out += footer;
  obs::MetricsRegistry::Global()->Add("mtbase_engine_analyze_runs_total");
  if (result_out != nullptr) {
    result_out->column_names.clear();
    for (const auto& c : plan->columns) {
      result_out->column_names.push_back(c.name);
    }
    result_out->rows = std::move(rows);
  }
  return out;
}

std::string Database::DumpMetrics() const {
  return obs::MetricsRegistry::Global()->RenderPrometheus();
}

Status Database::ExecuteCreateTable(const sql::CreateTableStmt& ct) {
  TableSchema schema;
  schema.name = ct.name;
  for (const auto& c : ct.columns) {
    schema.columns.push_back({c.name, c.type, c.not_null});
  }
  for (const auto& c : ct.constraints) {
    switch (c.kind) {
      case sql::TableConstraint::Kind::kPrimaryKey:
        schema.primary_key = c.columns;
        break;
      case sql::TableConstraint::Kind::kForeignKey:
        schema.foreign_keys.push_back(
            {c.name, c.columns, c.ref_table, c.ref_columns});
        break;
      case sql::TableConstraint::Kind::kCheck:
        schema.checks.push_back({c.name, sql::PrintExpr(*c.check)});
        break;
    }
  }
  if (ct.partition.method != sql::PartitionSpec::Method::kNone) {
    PartitionScheme ps;
    ps.method = ct.partition.method == sql::PartitionSpec::Method::kHash
                    ? PartitionScheme::Method::kHash
                    : PartitionScheme::Method::kList;
    ps.column = schema.FindColumn(ct.partition.column);
    if (ps.column < 0) {
      return Status::NotFound("partition column " + ct.partition.column +
                              " does not exist in " + ct.name);
    }
    if (schema.columns[static_cast<size_t>(ps.column)].type.id !=
        TypeId::kInt) {
      return Status::InvalidArgument("partition column " + ct.partition.column +
                                     " must be INTEGER");
    }
    ps.column_name = schema.columns[static_cast<size_t>(ps.column)].name;
    ps.hash_count = ct.partition.count;
    ps.lists = ct.partition.lists;
    schema.partition = std::move(ps);
  }
  return catalog_.CreateTable(std::move(schema));
}

Status Database::ExecuteCreateFunction(const sql::CreateFunctionStmt& cf) {
  auto udf = std::make_unique<Udf>();
  udf->name = cf.name;
  udf->arg_types = cf.arg_types;
  udf->return_type = cf.return_type;
  udf->body_sql = cf.body_sql;
  udf->volatility = cf.volatility;
  MTB_ASSIGN_OR_RETURN(auto body, sql::ParseSelect(cf.body_sql));
  Planner planner(&catalog_, &udfs_, planner_options_);
  MTB_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(*body));
  ++CurStats()->statements_planned;
  udf->body_plan = std::shared_ptr<const Plan>(std::move(plan));
  MTB_RETURN_IF_ERROR(udfs_.Register(std::move(udf)));
  RebuildUdfReadTables();
  return Status::OK();
}

namespace {

/// Map source rows through the target column slots and append to the table.
/// Evaluate-all-before-mutating: every row is built and checked before the
/// first one is appended, so an arity/constraint error on row k leaves the
/// table — and with it every derived partition list and index order —
/// exactly as it was. (A half-applied multi-row INSERT used to leave rows
/// 1..k-1 behind; docs/ARCHITECTURE.md "Physical design".)
Status ApplyInsertRows(Table* table, const std::vector<int>& targets,
                       std::vector<Row> source_rows) {
  const TableSchema& schema = table->schema();
  std::vector<Row> staged;
  staged.reserve(source_rows.size());
  for (Row& src : source_rows) {
    if (src.size() != targets.size()) {
      return Status::InvalidArgument("INSERT arity mismatch");
    }
    Row row(schema.columns.size());
    for (size_t i = 0; i < targets.size(); ++i) {
      row[static_cast<size_t>(targets[i])] = std::move(src[i]);
    }
    MTB_RETURN_IF_ERROR(table->CheckRow(row));
    staged.push_back(std::move(row));
  }
  // One publication: AppendRows re-checks, serializes against other DML on
  // this table, and bumps the data version once for the whole batch.
  return table->AppendRows(std::move(staged));
}

/// Resolve the INSERT target column list to schema slots.
Result<std::vector<int>> ResolveInsertTargets(const sql::InsertStmt& ins,
                                              const TableSchema& schema) {
  std::vector<int> targets;
  if (ins.columns.empty()) {
    for (size_t i = 0; i < schema.columns.size(); ++i) {
      targets.push_back(static_cast<int>(i));
    }
  } else {
    for (const auto& c : ins.columns) {
      int idx = schema.FindColumn(c);
      if (idx < 0) {
        return Status::NotFound("column " + c + " does not exist in " +
                                ins.table);
      }
      targets.push_back(idx);
    }
  }
  return targets;
}

}  // namespace

Result<std::unique_ptr<BoundDmlPlan>> Database::BindDml(const sql::Stmt& stmt) {
  auto dml = std::make_unique<BoundDmlPlan>();
  Planner planner(&catalog_, &udfs_, planner_options_);
  switch (stmt.kind) {
    case sql::Stmt::Kind::kInsert: {
      const sql::InsertStmt& ins = *stmt.insert;
      dml->table = catalog_.FindTable(ins.table);
      if (dml->table == nullptr) {
        return Status::NotFound("table " + ins.table + " does not exist");
      }
      MTB_ASSIGN_OR_RETURN(dml->targets,
                           ResolveInsertTargets(ins, dml->table->schema()));
      for (const auto& value_row : ins.rows) {
        std::vector<BoundExprPtr> bound_row;
        bound_row.reserve(value_row.size());
        for (const auto& e : value_row) {
          MTB_ASSIGN_OR_RETURN(auto bound, planner.BindExpr(*e, {}));
          bound_row.push_back(std::move(bound));
        }
        dml->value_rows.push_back(std::move(bound_row));
      }
      break;
    }
    case sql::Stmt::Kind::kUpdate: {
      const sql::UpdateStmt& up = *stmt.update;
      dml->table = catalog_.FindTable(up.table);
      if (dml->table == nullptr) {
        return Status::NotFound("table " + up.table + " does not exist");
      }
      const TableSchema& schema = dml->table->schema();
      std::vector<ColumnMeta> layout;
      for (const auto& c : schema.columns) layout.push_back({up.table, c.name});
      if (up.where) {
        MTB_ASSIGN_OR_RETURN(dml->where, planner.BindExpr(*up.where, layout));
      }
      for (const auto& [col, expr] : up.assignments) {
        int idx = schema.FindColumn(col);
        if (idx < 0) {
          return Status::NotFound("column " + col + " does not exist in " +
                                  up.table);
        }
        MTB_ASSIGN_OR_RETURN(auto bound, planner.BindExpr(*expr, layout));
        dml->sets.emplace_back(idx, std::move(bound));
      }
      break;
    }
    case sql::Stmt::Kind::kDelete: {
      const sql::DeleteStmt& del = *stmt.del;
      dml->table = catalog_.FindTable(del.table);
      if (dml->table == nullptr) {
        return Status::NotFound("table " + del.table + " does not exist");
      }
      std::vector<ColumnMeta> layout;
      for (const auto& c : dml->table->schema().columns) {
        layout.push_back({del.table, c.name});
      }
      if (del.where) {
        MTB_ASSIGN_OR_RETURN(dml->where, planner.BindExpr(*del.where, layout));
      }
      break;
    }
    default:
      return Status::Internal("BindDml called on a non-DML statement");
  }
  return dml;
}

Status Database::ExecuteBoundInsert(const BoundDmlPlan& dml,
                                    const Plan* select_plan,
                                    const std::vector<Value>* params) {
  std::vector<Row> source_rows;
  ExecContext ctx = MakeContext(params);
  if (select_plan != nullptr) {
    MTB_ASSIGN_OR_RETURN(source_rows, ExecutePlan(*select_plan, &ctx));
  } else {
    Row empty_row;
    for (const auto& bound_row : dml.value_rows) {
      Row r;
      r.reserve(bound_row.size());
      for (const auto& e : bound_row) {
        MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, empty_row, &ctx));
        r.push_back(std::move(v));
      }
      source_rows.push_back(std::move(r));
    }
  }
  return ApplyInsertRows(dml.table, dml.targets, std::move(source_rows));
}

Result<int64_t> Database::ExecuteBoundUpdate(const BoundDmlPlan& dml,
                                             const std::vector<Value>* params) {
  ExecContext ctx = MakeContext(params);
  // DML on a table is serialized by its write lock; concurrent readers keep
  // scanning the snapshot they pinned and flip to the new version only at
  // their next statement. Evaluate predicates and assignments over every row
  // before publishing anything (same atomic shape as DELETE below): an
  // expression error must leave the table — and therefore the
  // shared-UDF-cache epoch — exactly as it was.
  auto write_lock = dml.table->LockForWrite();
  auto snap = dml.table->Snapshot();
  const std::vector<Row>& rows = *snap.rows;
  std::vector<std::pair<size_t, Row>> next_rows;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (dml.where) {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*dml.where, r, &ctx));
      if (!IsTrue(v)) continue;
    }
    Row next = r;
    for (const auto& [idx, expr] : dml.sets) {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, r, &ctx));
      next[static_cast<size_t>(idx)] = std::move(v);
    }
    next_rows.emplace_back(i, std::move(next));
  }
  if (!next_rows.empty()) {
    std::vector<Row> updated(rows);
    for (auto& [i, next] : next_rows) updated[i] = std::move(next);
    dml.table->ReplaceRows(std::move(updated));
  }
  return static_cast<int64_t>(next_rows.size());
}

Result<int64_t> Database::ExecuteBoundDelete(const BoundDmlPlan& dml,
                                             const std::vector<Value>* params) {
  ExecContext ctx = MakeContext(params);
  // Same discipline as UPDATE: hold the table's write lock, evaluate the
  // predicate over every row of a pinned snapshot before publishing, then
  // swap in the surviving rows as one new version.
  auto write_lock = dml.table->LockForWrite();
  auto snap = dml.table->Snapshot();
  const std::vector<Row>& rows = *snap.rows;
  std::vector<char> remove(rows.size(), 1);
  if (dml.where) {
    for (size_t i = 0; i < rows.size(); ++i) {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*dml.where, rows[i], &ctx));
      remove[i] = IsTrue(v) ? 1 : 0;
    }
  }
  std::vector<Row> kept;
  kept.reserve(rows.size());
  int64_t deleted = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (remove[i]) {
      ++deleted;
    } else {
      kept.push_back(rows[i]);
    }
  }
  if (deleted > 0) dml.table->ReplaceRows(std::move(kept));
  return deleted;
}

Status Database::ExecuteInsert(const sql::InsertStmt& ins,
                               const std::vector<Value>* params) {
  Table* table = catalog_.FindTable(ins.table);
  if (table == nullptr) {
    return Status::NotFound("table " + ins.table + " does not exist");
  }
  MTB_ASSIGN_OR_RETURN(std::vector<int> targets,
                       ResolveInsertTargets(ins, table->schema()));
  if (!ins.select) {
    return Status::Internal(
        "INSERT ... VALUES executes through the bound DML path");
  }
  MTB_ASSIGN_OR_RETURN(ResultSet rs, ExecuteSelect(*ins.select, params));
  return ApplyInsertRows(table, targets, std::move(rs.rows));
}

Status Database::ValidateTable(const Table& table) {
  const TableSchema& schema = table.schema();
  // Validation reads one consistent snapshot of each table involved; DML
  // racing with it lands in a later version.
  const auto table_snap = table.Snapshot();
  const std::vector<Row>& table_rows = *table_snap.rows;
  // Primary key uniqueness.
  if (!schema.primary_key.empty()) {
    std::vector<int> pk;
    for (const auto& c : schema.primary_key) pk.push_back(schema.FindColumn(c));
    std::unordered_set<std::vector<Value>, ValueVectorHash, ValueVectorEq> seen;
    for (const Row& r : table_rows) {
      std::vector<Value> key;
      for (int idx : pk) key.push_back(r[static_cast<size_t>(idx)]);
      if (!seen.insert(std::move(key)).second) {
        return Status::ConstraintViolation("duplicate primary key in " +
                                           schema.name);
      }
    }
  }
  // Foreign keys.
  for (const auto& fk : schema.foreign_keys) {
    const Table* ref = catalog_.FindTable(fk.ref_table);
    if (ref == nullptr) {
      return Status::NotFound("FK reference table " + fk.ref_table +
                              " does not exist");
    }
    std::vector<int> local, remote;
    for (const auto& c : fk.columns) local.push_back(schema.FindColumn(c));
    for (const auto& c : fk.ref_columns) {
      remote.push_back(ref->schema().FindColumn(c));
    }
    std::unordered_set<std::vector<Value>, ValueVectorHash, ValueVectorEq> keys;
    const auto ref_snap = ref->Snapshot();
    for (const Row& r : *ref_snap.rows) {
      std::vector<Value> key;
      for (int idx : remote) key.push_back(r[static_cast<size_t>(idx)]);
      keys.insert(std::move(key));
    }
    for (const Row& r : table_rows) {
      std::vector<Value> key;
      bool any_null = false;
      for (int idx : local) {
        const Value& v = r[static_cast<size_t>(idx)];
        any_null = any_null || v.is_null();
        key.push_back(v);
      }
      if (any_null) continue;
      if (!keys.count(key)) {
        return Status::ConstraintViolation(
            "FK violation in " + schema.name + " (" + fk.name + ")");
      }
    }
  }
  // Database-level check constraints (see paper Appendix A.1).
  for (const auto& check : schema.checks) {
    MTB_ASSIGN_OR_RETURN(auto expr, sql::ParseExpression(check.expr_sql));
    Planner planner(&catalog_, &udfs_, planner_options_);
    MTB_ASSIGN_OR_RETURN(auto bound, planner.BindExpr(*expr, {}));
    ExecContext ctx = MakeContext();
    Row empty;
    MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*bound, empty, &ctx));
    if (!IsTrue(v)) {
      return Status::ConstraintViolation("check constraint " + check.name +
                                         " violated in " + schema.name);
    }
  }
  return Status::OK();
}

Status Database::ValidateConstraints(const std::string& table) {
  if (udf_plans_stale_) RefreshUdfPlans();  // check exprs may call UDFs
  if (!table.empty()) {
    const Table* t = catalog_.FindTable(table);
    if (t == nullptr) {
      return Status::NotFound("table " + table + " does not exist");
    }
    return ValidateTable(*t);
  }
  for (const auto& name : catalog_.TableNames()) {
    MTB_RETURN_IF_ERROR(ValidateTable(*catalog_.FindTable(name)));
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace mtbase
