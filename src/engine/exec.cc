#include "engine/exec.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/str_util.h"
#include "engine/catalog.h"
#include "engine/obs/profile.h"
#include "engine/parallel/parallel.h"
#include "engine/udf.h"

namespace mtbase {
namespace engine {

namespace {

Value NullV() { return Value::Null(); }

Result<Value> EvalUdf(const Udf& udf, std::vector<Value> args, ExecContext* ctx);

}  // namespace

const TableSnapshots::Entry& TableSnapshots::Pin(const Table& t) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pinned_.find(&t);
  if (it == pinned_.end()) {
    Table::RowsSnapshot snap = t.Snapshot();
    auto entry = std::make_unique<Entry>();
    entry->rows = std::move(snap.rows);
    entry->version = snap.version;
    it = pinned_.emplace(&t, std::move(entry)).first;
  }
  return *it->second;
}

const std::vector<Row>& PinnedRows(ExecContext* ctx, const Table& t,
                                   uint64_t* version_out) {
  if (ctx == nullptr || ctx->snapshots == nullptr) {
    if (version_out != nullptr) *version_out = t.data_version();
    return t.rows();
  }
  const TableSnapshots::Entry& e = ctx->snapshots->Pin(t);
  if (version_out != nullptr) *version_out = e.version;
  return *e.rows;
}

int SortCompare(const Value& a, const Value& b) {
  if (a.is_null() && b.is_null()) return 0;
  if (a.is_null()) return 1;
  if (b.is_null()) return -1;
  auto r = a.Compare(b);
  return r.ok() ? r.value() : 0;
}

bool IsTrue(const Value& v) {
  return v.type() == TypeId::kBool && v.bool_value();
}

Result<Value> NumericAdd(const Value& a, const Value& b) {
  if (a.type() == TypeId::kDouble || b.type() == TypeId::kDouble) {
    return Value::Double(a.AsDouble() + b.AsDouble());
  }
  if (a.type() == TypeId::kDecimal || b.type() == TypeId::kDecimal) {
    Decimal x = a.type() == TypeId::kDecimal ? a.decimal_value()
                                             : Decimal::FromInt(a.int_value());
    Decimal y = b.type() == TypeId::kDecimal ? b.decimal_value()
                                             : Decimal::FromInt(b.int_value());
    return Value::Dec(x.Add(y));
  }
  if (a.type() == TypeId::kInt && b.type() == TypeId::kInt) {
    return Value::Int(a.int_value() + b.int_value());
  }
  return Status::InvalidArgument("cannot add non-numeric values");
}

Result<Value> NumericSub(const Value& a, const Value& b) {
  if (a.type() == TypeId::kDouble || b.type() == TypeId::kDouble) {
    return Value::Double(a.AsDouble() - b.AsDouble());
  }
  if (a.type() == TypeId::kDecimal || b.type() == TypeId::kDecimal) {
    Decimal x = a.type() == TypeId::kDecimal ? a.decimal_value()
                                             : Decimal::FromInt(a.int_value());
    Decimal y = b.type() == TypeId::kDecimal ? b.decimal_value()
                                             : Decimal::FromInt(b.int_value());
    return Value::Dec(x.Sub(y));
  }
  if (a.type() == TypeId::kInt && b.type() == TypeId::kInt) {
    return Value::Int(a.int_value() - b.int_value());
  }
  return Status::InvalidArgument("cannot subtract non-numeric values");
}

Result<Value> NumericMul(const Value& a, const Value& b) {
  if (a.type() == TypeId::kDouble || b.type() == TypeId::kDouble) {
    return Value::Double(a.AsDouble() * b.AsDouble());
  }
  if (a.type() == TypeId::kDecimal || b.type() == TypeId::kDecimal) {
    Decimal x = a.type() == TypeId::kDecimal ? a.decimal_value()
                                             : Decimal::FromInt(a.int_value());
    Decimal y = b.type() == TypeId::kDecimal ? b.decimal_value()
                                             : Decimal::FromInt(b.int_value());
    return Value::Dec(x.Mul(y));
  }
  if (a.type() == TypeId::kInt && b.type() == TypeId::kInt) {
    return Value::Int(a.int_value() * b.int_value());
  }
  return Status::InvalidArgument("cannot multiply non-numeric values");
}

Result<Value> NumericDiv(const Value& a, const Value& b) {
  if (a.type() == TypeId::kDouble || b.type() == TypeId::kDouble) {
    double d = b.AsDouble();
    if (d == 0.0) return Status::InvalidArgument("division by zero");
    return Value::Double(a.AsDouble() / d);
  }
  Decimal x = a.type() == TypeId::kDecimal ? a.decimal_value()
                                           : Decimal::FromInt(a.int_value());
  Decimal y = b.type() == TypeId::kDecimal ? b.decimal_value()
                                           : Decimal::FromInt(b.int_value());
  if (y.units() == 0) return Status::InvalidArgument("division by zero");
  return Value::Dec(x.Div(y));
}

namespace {

Result<Value> EvalBinary(const BoundExpr& e, const Row& row, ExecContext* ctx) {
  // AND / OR use Kleene logic with short circuit.
  if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
    MTB_ASSIGN_OR_RETURN(Value a, EvalExpr(*e.args[0], row, ctx));
    bool is_and = e.bin_op == BinOp::kAnd;
    if (!a.is_null() && IsTrue(a) != is_and) return Value::Bool(!is_and);
    MTB_ASSIGN_OR_RETURN(Value b, EvalExpr(*e.args[1], row, ctx));
    if (!b.is_null() && IsTrue(b) != is_and) return Value::Bool(!is_and);
    if (a.is_null() || b.is_null()) return NullV();
    return Value::Bool(is_and);
  }
  MTB_ASSIGN_OR_RETURN(Value a, EvalExpr(*e.args[0], row, ctx));
  MTB_ASSIGN_OR_RETURN(Value b, EvalExpr(*e.args[1], row, ctx));
  switch (e.bin_op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      if (a.is_null() || b.is_null()) return NullV();
      MTB_ASSIGN_OR_RETURN(int c, a.Compare(b));
      switch (e.bin_op) {
        case BinOp::kEq: return Value::Bool(c == 0);
        case BinOp::kNe: return Value::Bool(c != 0);
        case BinOp::kLt: return Value::Bool(c < 0);
        case BinOp::kLe: return Value::Bool(c <= 0);
        case BinOp::kGt: return Value::Bool(c > 0);
        default: return Value::Bool(c >= 0);
      }
    }
    case BinOp::kAdd:
      if (a.is_null() || b.is_null()) return NullV();
      if (a.type() == TypeId::kDate && b.type() == TypeId::kInt) {
        return Value::Dat(a.date_value().AddDays(static_cast<int>(b.int_value())));
      }
      return NumericAdd(a, b);
    case BinOp::kSub:
      if (a.is_null() || b.is_null()) return NullV();
      if (a.type() == TypeId::kDate && b.type() == TypeId::kInt) {
        return Value::Dat(a.date_value().AddDays(-static_cast<int>(b.int_value())));
      }
      if (a.type() == TypeId::kDate && b.type() == TypeId::kDate) {
        return Value::Int(a.date_value().days() - b.date_value().days());
      }
      return NumericSub(a, b);
    case BinOp::kMul:
      if (a.is_null() || b.is_null()) return NullV();
      return NumericMul(a, b);
    case BinOp::kDiv:
      if (a.is_null() || b.is_null()) return NullV();
      return NumericDiv(a, b);
    case BinOp::kConcat:
      if (a.is_null() || b.is_null()) return NullV();
      return Value::Str(a.ToString() + b.ToString());
    case BinOp::kLike:
    case BinOp::kNotLike: {
      if (a.is_null() || b.is_null()) return NullV();
      bool m = LikeMatch(a.string_value(), b.string_value());
      return Value::Bool(e.bin_op == BinOp::kLike ? m : !m);
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<Value> EvalBuiltin(const BoundExpr& e, const Row& row, ExecContext* ctx) {
  std::vector<Value> args;
  args.reserve(e.args.size());
  for (const auto& a : e.args) {
    MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*a, row, ctx));
    args.push_back(std::move(v));
  }
  switch (e.builtin) {
    case BuiltinFunc::kSubstring: {
      if (args[0].is_null() || args[1].is_null()) return NullV();
      const std::string& s = args[0].string_value();
      int64_t from = args[1].int_value();
      int64_t len = args.size() > 2 && !args[2].is_null()
                        ? args[2].int_value()
                        : static_cast<int64_t>(s.size());
      int64_t start = std::max<int64_t>(from - 1, 0);
      if (start >= static_cast<int64_t>(s.size()) || len <= 0) {
        return Value::Str("");
      }
      return Value::Str(s.substr(static_cast<size_t>(start),
                                 static_cast<size_t>(len)));
    }
    case BuiltinFunc::kConcat: {
      std::string out;
      for (const Value& v : args) {
        if (!v.is_null()) out += v.ToString();
      }
      return Value::Str(std::move(out));
    }
    case BuiltinFunc::kCharLength:
      if (args[0].is_null()) return NullV();
      return Value::Int(static_cast<int64_t>(args[0].string_value().size()));
    case BuiltinFunc::kUpper:
      if (args[0].is_null()) return NullV();
      return Value::Str(ToUpperCopy(args[0].string_value()));
    case BuiltinFunc::kLower:
      if (args[0].is_null()) return NullV();
      return Value::Str(ToLowerCopy(args[0].string_value()));
    case BuiltinFunc::kAbs: {
      if (args[0].is_null()) return NullV();
      const Value& v = args[0];
      if (v.type() == TypeId::kInt) return Value::Int(std::abs(v.int_value()));
      if (v.type() == TypeId::kDouble) {
        return Value::Double(std::abs(v.double_value()));
      }
      if (v.type() == TypeId::kDecimal) {
        Decimal d = v.decimal_value();
        return Value::Dec(d.units() < 0 ? d.Neg() : d);
      }
      return Status::InvalidArgument("ABS requires a numeric argument");
    }
    case BuiltinFunc::kCoalesce:
      for (Value& v : args) {
        if (!v.is_null()) return std::move(v);
      }
      return NullV();
    case BuiltinFunc::kDateAddDays:
    case BuiltinFunc::kDateAddMonths:
    case BuiltinFunc::kDateAddYears: {
      if (args[0].is_null()) return NullV();
      if (args[0].type() != TypeId::kDate) {
        return Status::InvalidArgument("interval arithmetic requires a date");
      }
      int n = static_cast<int>(args[1].int_value());
      Date d = args[0].date_value();
      if (e.builtin == BuiltinFunc::kDateAddDays) return Value::Dat(d.AddDays(n));
      if (e.builtin == BuiltinFunc::kDateAddMonths) {
        return Value::Dat(d.AddMonths(n));
      }
      return Value::Dat(d.AddYears(n));
    }
    case BuiltinFunc::kExtractYear:
    case BuiltinFunc::kExtractMonth:
    case BuiltinFunc::kExtractDay: {
      if (args[0].is_null()) return NullV();
      if (args[0].type() != TypeId::kDate) {
        return Status::InvalidArgument("EXTRACT requires a date");
      }
      const Date& d = args[0].date_value();
      if (e.builtin == BuiltinFunc::kExtractYear) return Value::Int(d.year());
      if (e.builtin == BuiltinFunc::kExtractMonth) return Value::Int(d.month());
      return Value::Int(d.day());
    }
  }
  return Status::Internal("unhandled builtin");
}

Result<Value> ExecuteSubqueryPerRow(const BoundExpr& e, const Row& row,
                                    ExecContext* ctx,
                                    std::vector<Row>* out_rows) {
  ctx->stats->subquery_execs++;
  ctx->outer_stack.push_back(&row);
  auto rows = ExecutePlan(*e.subplan, ctx);
  ctx->outer_stack.pop_back();
  if (!rows.ok()) return rows.status();
  *out_rows = std::move(rows).value();
  return Value::Null();
}

Result<Value> EvalScalarSub(const BoundExpr& e, const Row& row,
                            ExecContext* ctx) {
  const Plan* key = e.subplan.get();
  if (!e.correlated) {
    auto it = ctx->scalar_cache.find(key);
    if (it != ctx->scalar_cache.end()) return it->second;
    ctx->stats->initplan_execs++;
    MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*e.subplan, ctx));
    if (rows.size() > 1) {
      return Status::InvalidArgument("scalar sub-query returned more than one row");
    }
    Value v = rows.empty() ? Value::Null() : rows[0][0];
    ctx->scalar_cache[key] = v;
    return v;
  }
  std::vector<Row> rows;
  MTB_RETURN_IF_ERROR(ExecuteSubqueryPerRow(e, row, ctx, &rows).status());
  if (rows.size() > 1) {
    return Status::InvalidArgument("scalar sub-query returned more than one row");
  }
  return rows.empty() ? Value::Null() : rows[0][0];
}

Result<Value> EvalInSet(const BoundExpr& e, const Row& row, ExecContext* ctx) {
  std::vector<Value> needle;
  bool needle_null = false;
  for (const auto& a : e.args) {
    MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*a, row, ctx));
    if (v.is_null()) needle_null = true;
    needle.push_back(std::move(v));
  }
  const ExecContext::InSetCache* cache = nullptr;
  ExecContext::InSetCache local;
  if (!e.correlated) {
    auto it = ctx->inset_cache.find(e.subplan.get());
    if (it == ctx->inset_cache.end()) {
      ctx->stats->initplan_execs++;
      MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*e.subplan, ctx));
      ExecContext::InSetCache built;
      for (auto& r : rows) {
        bool any_null = false;
        for (const Value& v : r) any_null = any_null || v.is_null();
        if (any_null) {
          built.has_null = true;
        } else {
          built.set.insert(std::move(r));
        }
      }
      it = ctx->inset_cache.emplace(e.subplan.get(), std::move(built)).first;
    }
    cache = &it->second;
  } else {
    std::vector<Row> rows;
    MTB_RETURN_IF_ERROR(ExecuteSubqueryPerRow(e, row, ctx, &rows).status());
    for (auto& r : rows) {
      bool any_null = false;
      for (const Value& v : r) any_null = any_null || v.is_null();
      if (any_null) {
        local.has_null = true;
      } else {
        local.set.insert(std::move(r));
      }
    }
    cache = &local;
  }
  Value result;
  if (needle_null) {
    result = NullV();
  } else if (cache->set.count(needle)) {
    result = Value::Bool(true);
  } else if (cache->has_null) {
    result = NullV();
  } else {
    result = Value::Bool(false);
  }
  if (e.negated) {
    if (result.is_null()) return result;
    return Value::Bool(!result.bool_value());
  }
  return result;
}

}  // namespace

Result<Value> EvalExpr(const BoundExpr& e, const Row& row, ExecContext* ctx) {
  switch (e.kind) {
    case BoundExpr::Kind::kLiteral:
      return e.literal;
    case BoundExpr::Kind::kSlot:
      return row[static_cast<size_t>(e.slot)];
    case BoundExpr::Kind::kOuterSlot: {
      size_t n = ctx->outer_stack.size();
      if (static_cast<size_t>(e.depth) > n) {
        return Status::Internal("outer reference beyond execution stack");
      }
      return (*ctx->outer_stack[n - static_cast<size_t>(e.depth)])
          [static_cast<size_t>(e.slot)];
    }
    case BoundExpr::Kind::kParam:
      if (ctx->params == nullptr ||
          static_cast<size_t>(e.param_index) > ctx->params->size()) {
        return Status::Internal("parameter $" + std::to_string(e.param_index) +
                                " not bound");
      }
      return (*ctx->params)[static_cast<size_t>(e.param_index - 1)];
    case BoundExpr::Kind::kNot: {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.args[0], row, ctx));
      if (v.is_null()) return v;
      return Value::Bool(!IsTrue(v));
    }
    case BoundExpr::Kind::kNeg: {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.args[0], row, ctx));
      if (v.is_null()) return v;
      if (v.type() == TypeId::kInt) return Value::Int(-v.int_value());
      if (v.type() == TypeId::kDouble) return Value::Double(-v.double_value());
      if (v.type() == TypeId::kDecimal) return Value::Dec(v.decimal_value().Neg());
      return Status::InvalidArgument("cannot negate non-numeric value");
    }
    case BoundExpr::Kind::kBinary:
      return EvalBinary(e, row, ctx);
    case BoundExpr::Kind::kBuiltin:
      return EvalBuiltin(e, row, ctx);
    case BoundExpr::Kind::kUdfCall: {
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) {
        MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*a, row, ctx));
        args.push_back(std::move(v));
      }
      return EvalUdf(*e.udf, std::move(args), ctx);
    }
    case BoundExpr::Kind::kCase: {
      for (size_t i = 0; i + 1 < e.args.size(); i += 2) {
        MTB_ASSIGN_OR_RETURN(Value c, EvalExpr(*e.args[i], row, ctx));
        if (IsTrue(c)) return EvalExpr(*e.args[i + 1], row, ctx);
      }
      if (e.else_expr) return EvalExpr(*e.else_expr, row, ctx);
      return NullV();
    }
    case BoundExpr::Kind::kInList: {
      MTB_ASSIGN_OR_RETURN(Value needle, EvalExpr(*e.args[0], row, ctx));
      if (needle.is_null()) return NullV();
      bool saw_null = false;
      bool found = false;
      for (size_t i = 1; i < e.args.size() && !found; ++i) {
        MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.args[i], row, ctx));
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        auto c = needle.Compare(v);
        if (c.ok() && c.value() == 0) found = true;
      }
      Value result = found ? Value::Bool(true)
                           : (saw_null ? NullV() : Value::Bool(false));
      if (e.negated) {
        if (result.is_null()) return result;
        return Value::Bool(!result.bool_value());
      }
      return result;
    }
    case BoundExpr::Kind::kInSet:
      return EvalInSet(e, row, ctx);
    case BoundExpr::Kind::kExistsSub: {
      bool exists;
      if (!e.correlated) {
        auto it = ctx->scalar_cache.find(e.subplan.get());
        if (it != ctx->scalar_cache.end()) {
          exists = IsTrue(it->second);
        } else {
          ctx->stats->initplan_execs++;
          MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*e.subplan, ctx));
          exists = !rows.empty();
          ctx->scalar_cache[e.subplan.get()] = Value::Bool(exists);
        }
      } else {
        std::vector<Row> rows;
        MTB_RETURN_IF_ERROR(ExecuteSubqueryPerRow(e, row, ctx, &rows).status());
        exists = !rows.empty();
      }
      return Value::Bool(e.negated ? !exists : exists);
    }
    case BoundExpr::Kind::kScalarSub:
      return EvalScalarSub(e, row, ctx);
    case BoundExpr::Kind::kBetween: {
      MTB_ASSIGN_OR_RETURN(Value x, EvalExpr(*e.args[0], row, ctx));
      MTB_ASSIGN_OR_RETURN(Value lo, EvalExpr(*e.args[1], row, ctx));
      MTB_ASSIGN_OR_RETURN(Value hi, EvalExpr(*e.args[2], row, ctx));
      if (x.is_null() || lo.is_null() || hi.is_null()) return NullV();
      MTB_ASSIGN_OR_RETURN(int c1, x.Compare(lo));
      MTB_ASSIGN_OR_RETURN(int c2, x.Compare(hi));
      bool in = c1 >= 0 && c2 <= 0;
      return Value::Bool(e.negated ? !in : in);
    }
    case BoundExpr::Kind::kIsNull: {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.args[0], row, ctx));
      bool isn = v.is_null();
      return Value::Bool(e.negated ? !isn : isn);
    }
  }
  return Status::Internal("unhandled bound expression kind");
}

namespace {

Result<Value> EvalUdf(const Udf& udf, std::vector<Value> args,
                      ExecContext* ctx) {
  // Per-statement (serial) / per-worker (parallel) result cache for
  // non-volatile UDFs; the shared cross-statement dictionary cache
  // additionally requires IMMUTABLE (STABLE only promises stability within
  // one statement). The System C profile cannot declare determinism, so it
  // never caches (paper Appendix C).
  std::string cache_key;
  const bool cacheable =
      ctx->profile == DbmsProfile::kPostgres && udf.statement_cacheable();
  const bool shared_cacheable = cacheable && udf.immutable() &&
                                ctx->shared_udf_cache != nullptr;
  if (cacheable) {
    // Length-prefixed serialization: a string argument may itself contain
    // the separator, and the shared cache is cross-session, so the key must
    // be injective in the argument tuple. Doubles key on their exact bit
    // pattern — ToString's %.6f rendering would collide values that differ
    // past six decimals. Every other type renders exactly (INT, fixed-point
    // DECIMAL, DATE, BOOL, VARCHAR).
    cache_key = udf.name;
    for (const Value& v : args) {
      std::string s;
      if (v.type() == TypeId::kDouble) {
        uint64_t bits;
        double d = v.double_value();
        std::memcpy(&bits, &d, sizeof(bits));
        s = std::to_string(bits);
      } else {
        s = v.ToString();
      }
      cache_key += '\x1f';
      cache_key += static_cast<char>('0' + static_cast<int>(v.type()));
      cache_key += std::to_string(s.size());
      cache_key += ':';
      cache_key += s;
    }
    auto it = ctx->udf_cache.find(cache_key);
    if (it != ctx->udf_cache.end()) {
      ctx->stats->udf_cache_hits++;
      return it->second;
    }
    if (shared_cacheable) {
      Value v;
      if (ctx->shared_udf_cache->Lookup(ctx->shared_udf_epoch, cache_key,
                                        &v)) {
        ctx->stats->udf_cache_hits++;
        ctx->stats->udf_shared_cache_hits++;
        ctx->udf_cache[cache_key] = v;
        return v;
      }
    }
    ctx->stats->udf_cache_misses++;
  }
  if (udf.body_plan == nullptr) {
    return Status::InvalidArgument("function " + udf.name +
                                   " references dropped objects; recreate it");
  }
  ctx->stats->udf_calls++;
  if (ctx->in_parallel_worker) ctx->stats->udf_parallel_evals++;
  const std::vector<Value>* saved = ctx->params;
  // UDF bodies execute un-profiled: their plans are not part of the rendered
  // EXPLAIN tree (the invoking operator's [actual: udf=...] accounts for
  // them), and skipping per-node instrumentation here bounds the ANALYZE
  // overhead on conversion-heavy plans.
  obs::PlanProfiler* saved_profiler = ctx->profiler;
  obs::OpProfile* saved_op = ctx->current_op;
  ctx->profiler = nullptr;
  ctx->current_op = nullptr;
  ctx->params = &args;
  auto rows = ExecutePlan(*udf.body_plan, ctx);
  ctx->params = saved;
  ctx->profiler = saved_profiler;
  ctx->current_op = saved_op;
  if (!rows.ok()) return rows.status();
  Value result =
      rows.value().empty() ? Value::Null() : rows.value()[0][0];
  if (cacheable) {
    ctx->udf_cache[cache_key] = result;
    if (shared_cacheable) {
      ctx->shared_udf_cache->Insert(ctx->shared_udf_epoch, cache_key, result);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

Result<std::vector<Row>> ExecScan(const Plan& p, ExecContext* ctx) {
  if (p.table == nullptr) return parallel::ScanExec(p, ctx, 1);
  uint64_t pinned_version = 0;
  const std::vector<Row>& rows = PinnedRows(ctx, *p.table, &pinned_version);
  // Partition pruning: scan only the surviving partitions' row ids, merged
  // back to ascending (insertion) order so output bytes match a full scan.
  // Only usable when the derived lists were built at the statement's pinned
  // data version; under concurrent DML they may describe a newer snapshot, in
  // which case fall back to the full pinned scan — the partition cut is a
  // superset cut with scan_filter fully re-applied, so bytes are identical.
  if (p.pruned) {
    uint64_t built_version = 0;
    auto parts_ptr = p.table->PartitionRowsAt(&built_version);
    if (built_version == pinned_version) {
      const auto& parts = *parts_ptr;
      std::vector<uint32_t> cand;
      size_t total = 0;
      for (uint32_t pid : p.partitions) {
        if (pid < parts.size()) total += parts[pid].size();
      }
      cand.reserve(total);
      for (uint32_t pid : p.partitions) {
        if (pid < parts.size()) {
          cand.insert(cand.end(), parts[pid].begin(), parts[pid].end());
        }
      }
      std::sort(cand.begin(), cand.end());
      ctx->stats->partitions_pruned += parts.size() - p.partitions.size();
      int workers = parallel::PlanWorkers(p, cand.size(), *ctx);
      return parallel::ScanExec(p, ctx, workers, &cand);
    }
  }
  size_t n = rows.size();
  return parallel::ScanExec(p, ctx, parallel::PlanWorkers(p, n, *ctx));
}

/// Ordered-index scan: binary-search the index's row-id permutation for each
/// equality key, then re-apply the full scan filter to the candidates (the
/// lookup is a superset cut, not a filter replacement). Candidates are
/// re-sorted ascending so output bytes match the equivalent full scan.
Result<std::vector<Row>> ExecIndexScan(const Plan& p, ExecContext* ctx) {
  if (p.table == nullptr) return parallel::ScanExec(p, ctx, 1);
  const TableIndex* ix = p.table->FindIndex(p.index_name);
  if (ix == nullptr) {
    return Status::Internal("index " + p.index_name +
                            " disappeared under a compiled plan");
  }
  uint64_t pinned_version = 0;
  const auto& rows = PinnedRows(ctx, *p.table, &pinned_version);
  uint64_t built_version = 0;
  auto order_ptr = p.table->IndexOrderAt(*ix, &built_version);
  if (built_version != pinned_version) {
    // The permutation describes a different data version than this
    // statement's pinned snapshot (concurrent DML): fall back to a full scan
    // of the snapshot. The index lookup is a superset cut with scan_filter
    // re-applied below anyway, so the fallback is byte-identical.
    return parallel::ScanExec(p, ctx, 1);
  }
  const auto& order = *order_ptr;
  const size_t slot = static_cast<size_t>(ix->slots[0]);
  std::vector<uint32_t> cand;
  for (int64_t k : p.index_keys) {
    const Value key = Value::Int(k);
    auto lo = std::lower_bound(order.begin(), order.end(), key,
                               [&](uint32_t id, const Value& v) {
                                 return IndexKeyCompare(rows[id][slot], v) < 0;
                               });
    auto hi = std::upper_bound(lo, order.end(), key,
                               [&](const Value& v, uint32_t id) {
                                 return IndexKeyCompare(v, rows[id][slot]) < 0;
                               });
    cand.insert(cand.end(), lo, hi);
  }
  std::sort(cand.begin(), cand.end());
  ctx->stats->index_scans += 1;
  ctx->stats->index_rows_skipped += rows.size() - cand.size();
  return parallel::ScanExec(p, ctx, 1, &cand);
}

/// Null-aware anti join (decorrelated NOT IN). Keys are split: the first
/// `naaj_in_keys` pairs form the IN tuple, the rest are correlation keys.
/// A left row survives iff its correlation group is empty, or the group has
/// no NULL IN-tuple, the needle has no NULL, and the needle is absent.
Result<std::vector<Row>> ExecNullAwareAntiJoin(const Plan& p,
                                               ExecContext* ctx,
                                               std::vector<Row> left_rows,
                                               std::vector<Row> right_rows) {
  const size_t n_in = p.naaj_in_keys;
  struct Group {
    std::unordered_set<std::vector<Value>, ValueVectorHash, ValueVectorEq>
        tuples;
    bool has_null = false;
  };
  std::unordered_map<std::vector<Value>, Group, ValueVectorHash, ValueVectorEq>
      groups;
  for (const Row& r : right_rows) {
    std::vector<Value> corr;
    corr.reserve(p.right_keys.size() - n_in);
    bool corr_null = false;
    for (size_t k = n_in; k < p.right_keys.size(); ++k) {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p.right_keys[k], r, ctx));
      corr_null = corr_null || v.is_null();
      corr.push_back(std::move(v));
    }
    // A NULL correlation key never equals any outer value, so the row
    // belongs to no group.
    if (corr_null) continue;
    std::vector<Value> tup;
    tup.reserve(n_in);
    bool tup_null = false;
    for (size_t k = 0; k < n_in; ++k) {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p.right_keys[k], r, ctx));
      tup_null = tup_null || v.is_null();
      tup.push_back(std::move(v));
    }
    Group& g = groups[std::move(corr)];
    if (tup_null) {
      g.has_null = true;
    } else {
      g.tuples.insert(std::move(tup));
    }
  }
  std::vector<Row> out;
  for (Row& l : left_rows) {
    std::vector<Value> corr;
    corr.reserve(p.left_keys.size() - n_in);
    bool corr_null = false;
    for (size_t k = n_in; k < p.left_keys.size(); ++k) {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p.left_keys[k], l, ctx));
      corr_null = corr_null || v.is_null();
      corr.push_back(std::move(v));
    }
    const Group* g = nullptr;
    if (!corr_null) {
      auto it = groups.find(corr);
      if (it != groups.end()) g = &it->second;
    }
    if (g == nullptr) {
      // Empty set: NOT IN () is TRUE for any needle, even NULL.
      out.push_back(std::move(l));
      continue;
    }
    std::vector<Value> needle;
    needle.reserve(n_in);
    bool needle_null = false;
    for (size_t k = 0; k < n_in; ++k) {
      MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p.left_keys[k], l, ctx));
      needle_null = needle_null || v.is_null();
      needle.push_back(std::move(v));
    }
    ctx->stats->rows_joined++;
    if (needle_null || g->has_null || g->tuples.count(needle)) continue;
    out.push_back(std::move(l));
  }
  return out;
}

Result<std::vector<Row>> ExecJoin(const Plan& p, ExecContext* ctx) {
  if (p.decorrelated_from != SubqueryOrigin::kNone) {
    ctx->stats->decorrelated_execs++;
  }
  MTB_ASSIGN_OR_RETURN(auto left_rows, ExecutePlan(*p.left, ctx));
  if (left_rows.empty() && p.join_kind != JoinKind::kInner) {
    // Left/semi/anti joins with an empty outer side produce nothing; inner
    // join also produces nothing but we keep the uniform path below.
    return std::vector<Row>{};
  }
  MTB_ASSIGN_OR_RETURN(auto right_rows, ExecutePlan(*p.right, ctx));
  if (p.null_aware && p.join_kind == JoinKind::kAnti) {
    return ExecNullAwareAntiJoin(p, ctx, std::move(left_rows),
                                 std::move(right_rows));
  }
  if (!p.left_keys.empty()) {
    // Hash join (single code path for serial and morsel-parallel execution).
    int workers = parallel::PlanWorkers(
        p, std::max(left_rows.size(), right_rows.size()), *ctx);
    return parallel::HashJoinExec(p, ctx, std::move(left_rows),
                                  std::move(right_rows), workers);
  }

  std::vector<Row> out;
  const size_t right_width = p.right->columns.size();

  auto concat = [](const Row& l, const Row& r) {
    Row row;
    row.reserve(l.size() + r.size());
    for (const Value& v : l) row.push_back(v);
    for (const Value& v : r) row.push_back(v);
    return row;
  };

  // Nested-loop join (cross product with optional residual).
  for (const Row& l : left_rows) {
    bool matched = false;
    for (const Row& r : right_rows) {
      Row joined = concat(l, r);
      ctx->stats->rows_joined++;
      if (p.residual) {
        MTB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p.residual, joined, ctx));
        if (!IsTrue(v)) continue;
      }
      matched = true;
      if (p.join_kind == JoinKind::kInner || p.join_kind == JoinKind::kLeft) {
        out.push_back(std::move(joined));
      } else if (p.join_kind == JoinKind::kSemi) {
        break;
      } else {  // anti
        break;
      }
    }
    if (!matched && p.join_kind == JoinKind::kLeft) {
      Row joined = l;
      joined.resize(l.size() + right_width);
      out.push_back(std::move(joined));
    }
    if (p.join_kind == JoinKind::kSemi && matched) out.push_back(l);
    if (p.join_kind == JoinKind::kAnti && !matched) out.push_back(l);
  }
  return out;
}

Result<std::vector<Row>> ExecAggregate(const Plan& p, ExecContext* ctx) {
  MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*p.left, ctx));
  int workers = parallel::PlanWorkers(p, rows.size(), *ctx);
  return parallel::AggregateExec(p, ctx, std::move(rows), workers);
}

Result<std::vector<Row>> ExecSort(const Plan& p, ExecContext* ctx) {
  MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*p.left, ctx));
  int workers = parallel::PlanWorkers(p, rows.size(), *ctx);
  return parallel::SortExec(p, ctx, std::move(rows), workers);
}

Result<std::vector<Row>> ExecTopN(const Plan& p, ExecContext* ctx) {
  MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*p.left, ctx));
  int workers = parallel::PlanWorkers(p, rows.size(), *ctx);
  return parallel::TopNExec(p, ctx, std::move(rows), workers);
}

}  // namespace

/// Uninstrumented execution — the plain hot path.
static Result<std::vector<Row>> ExecutePlanImpl(const Plan& plan,
                                                ExecContext* ctx) {
  switch (plan.kind) {
    case Plan::Kind::kScan:
      return ExecScan(plan, ctx);
    case Plan::Kind::kIndexScan:
      return ExecIndexScan(plan, ctx);
    case Plan::Kind::kJoin:
      return ExecJoin(plan, ctx);
    case Plan::Kind::kFilter: {
      MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*plan.left, ctx));
      int workers = parallel::PlanWorkers(plan, rows.size(), *ctx);
      return parallel::FilterExec(plan, ctx, std::move(rows), workers);
    }
    case Plan::Kind::kProject: {
      MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*plan.left, ctx));
      int workers = parallel::PlanWorkers(plan, rows.size(), *ctx);
      return parallel::ProjectExec(plan, ctx, std::move(rows), workers);
    }
    case Plan::Kind::kAggregate:
      return ExecAggregate(plan, ctx);
    case Plan::Kind::kSort:
      return ExecSort(plan, ctx);
    case Plan::Kind::kTopN:
      return ExecTopN(plan, ctx);
    case Plan::Kind::kLimit: {
      MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*plan.left, ctx));
      const size_t off =
          std::min(static_cast<size_t>(plan.offset), rows.size());
      if (off > 0) {
        rows.erase(rows.begin(),
                   rows.begin() + static_cast<std::ptrdiff_t>(off));
      }
      if (static_cast<int64_t>(rows.size()) > plan.limit) {
        rows.resize(static_cast<size_t>(plan.limit));
      }
      return rows;
    }
    case Plan::Kind::kDistinct: {
      MTB_ASSIGN_OR_RETURN(auto rows, ExecutePlan(*plan.left, ctx));
      std::unordered_set<std::vector<Value>, ValueVectorHash, ValueVectorEq>
          seen;
      std::vector<Row> out;
      for (Row& r : rows) {
        if (seen.insert(r).second) out.push_back(std::move(r));
      }
      return out;
    }
  }
  return Status::Internal("unhandled plan kind");
}

/// Instrumented execution for EXPLAIN (ANALYZE): record an OpProfile per
/// plan node. Inclusive semantics — wall/CPU and counter deltas cover the
/// node's whole subtree; the renderer subtracts children where an exclusive
/// figure reads better. CPU is the statement thread's own thread-CPU delta
/// (which includes executing children on this thread, and region worker 0)
/// plus the pool-worker CPU RunPoolProfiled accumulated into
/// `ctx->child_cpu_nanos` during the node.
static Result<std::vector<Row>> ExecutePlanProfiled(const Plan& plan,
                                                    ExecContext* ctx) {
  obs::OpProfile* prof = ctx->profiler->Profile(&plan);
  obs::OpProfile* saved_op = ctx->current_op;
  ctx->current_op = prof;
  const ExecStats before = *ctx->stats;
  const uint64_t pool_cpu_before = ctx->child_cpu_nanos;
  const uint64_t cpu_before = obs::ThreadCpuNanos();
  const auto t0 = std::chrono::steady_clock::now();
  auto rows = ExecutePlanImpl(plan, ctx);
  prof->wall_nanos += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  prof->cpu_nanos += (obs::ThreadCpuNanos() - cpu_before) +
                     (ctx->child_cpu_nanos - pool_cpu_before);
  ctx->current_op = saved_op;
  prof->executions++;
  const ExecStats d = *ctx->stats - before;
  prof->rows_scanned += d.rows_scanned;
  prof->morsels += d.parallel_morsels;
  prof->udf_calls += d.udf_calls;
  prof->udf_cache_hits += d.udf_cache_hits;
  if (rows.ok()) prof->rows_out += rows.value().size();
  return rows;
}

Result<std::vector<Row>> ExecutePlan(const Plan& plan, ExecContext* ctx) {
  if (ctx->profiler == nullptr) return ExecutePlanImpl(plan, ctx);
  return ExecutePlanProfiled(plan, ctx);
}

namespace {

bool ExprHasOuterRefs(const BoundExpr& e);

bool PlanHasOuterRefsImpl(const Plan& p) {
  auto check = [](const BoundExprPtr& e) {
    return e && ExprHasOuterRefs(*e);
  };
  if (check(p.scan_filter) || check(p.residual) || check(p.predicate)) {
    return true;
  }
  for (const auto& e : p.exprs) {
    if (check(e)) return true;
  }
  for (const auto& e : p.left_keys) {
    if (check(e)) return true;
  }
  for (const auto& e : p.right_keys) {
    if (check(e)) return true;
  }
  for (const auto& a : p.aggs) {
    if (check(a.arg)) return true;
  }
  if (p.left && PlanHasOuterRefsImpl(*p.left)) return true;
  if (p.right && PlanHasOuterRefsImpl(*p.right)) return true;
  return false;
}

bool ExprHasOuterRefs(const BoundExpr& e) {
  if (e.kind == BoundExpr::Kind::kOuterSlot) return true;
  for (const auto& a : e.args) {
    if (ExprHasOuterRefs(*a)) return true;
  }
  if (e.case_operand && ExprHasOuterRefs(*e.case_operand)) return true;
  if (e.else_expr && ExprHasOuterRefs(*e.else_expr)) return true;
  if (e.subplan && PlanHasOuterRefsImpl(*e.subplan)) return true;
  return false;
}

}  // namespace

bool PlanHasOuterRefs(const Plan& plan) { return PlanHasOuterRefsImpl(plan); }

}  // namespace mtbase
}  // namespace engine
