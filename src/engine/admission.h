// Admission control: a FIFO ticket gate bounding concurrent statements.
//
// The morsel TaskPool distributes workers inside one statement; admission
// control bounds how many statements are in flight at once so N concurrent
// sessions share the pool without oversubscribing it. The cap comes from
// Database::set_max_concurrent_statements (env default:
// MTBASE_MAX_CONCURRENT_STATEMENTS, 0 = unlimited). Queued statements are
// admitted in ticket (arrival) order; a queued statement whose session is
// torn down aborts cleanly through its cancel token.
#ifndef MTBASE_ENGINE_ADMISSION_H_
#define MTBASE_ENGINE_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>

#include "common/result.h"

namespace mtbase {
namespace engine {

class AdmissionController {
 public:
  AdmissionController() = default;
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// 0 = unlimited (statements are still counted for the scheduler/metrics,
  /// but never queue). Raising the limit wakes queued statements.
  void set_limit(int limit);
  int limit() const;

  /// Blocks until admitted (FIFO by arrival ticket) or until `*cancelled`
  /// becomes true (session teardown), in which case it returns an error and
  /// admits nothing. `cancelled` may be null (never cancelled). Every
  /// successful Acquire must be paired with one Release.
  Status Acquire(const std::atomic<bool>* cancelled);
  void Release();

  /// Wake queued waiters so they re-check their cancel tokens (called by
  /// session teardown; spurious wakeups are harmless).
  void NotifyAll();

  // -- observability --------------------------------------------------------
  int in_flight() const { return in_flight_.load(std::memory_order_acquire); }
  int queue_depth() const;
  /// High-water mark of concurrently admitted statements (test hook for the
  /// bounded-in-flight assertion).
  int max_in_flight_seen() const {
    return max_in_flight_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int limit_ = 0;                 // guarded by mu_
  uint64_t next_ticket_ = 0;      // guarded by mu_
  uint64_t serving_ = 0;          // guarded by mu_: lowest un-admitted ticket
  // Tickets abandoned by cancelled waiters; serving_ skips over them so the
  // queue cannot stall on a statement that will never claim its turn.
  std::set<uint64_t> abandoned_;  // guarded by mu_
  std::atomic<int> in_flight_{0};
  std::atomic<int> max_in_flight_{0};
};

/// RAII scope installing a cancel token for admission waits performed on this
/// thread (the MT session layer installs its closed-flag around statement
/// execution so a queued statement aborts when its session is torn down).
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(const std::atomic<bool>* token);
  ~ScopedCancelToken();
  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

  /// The innermost token installed on this thread (null if none).
  static const std::atomic<bool>* Current();

 private:
  const std::atomic<bool>* prev_;
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_ADMISSION_H_
