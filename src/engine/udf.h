// User-defined functions with SQL bodies.
//
// Conversion function pairs (paper section 2.2.2) are registered as UDFs
// whose body is a SQL statement over meta tables (Tenant, CurrencyTransform,
// PhoneTransform). Executing a UDF runs the (pre-planned) body; the
// DbmsProfile decides whether results may be served from a per-statement
// cache keyed by argument values (PostgreSQL) or not (System C).
#ifndef MTBASE_ENGINE_UDF_H_
#define MTBASE_ENGINE_UDF_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/bound.h"
#include "sql/ast.h"

namespace mtbase {
namespace engine {

struct Udf {
  std::string name;
  std::vector<sql::TypeDecl> arg_types;
  sql::TypeDecl return_type;
  std::string body_sql;
  /// Volatility class (IMMUTABLE / STABLE / VOLATILE). IMMUTABLE licenses
  /// result caching (per-statement and shared) and parallel evaluation from
  /// morsel workers; conversion-function pairs are declared IMMUTABLE
  /// (dictionaries only change via registration/DML, which moves the shared
  /// cache epoch). STABLE is cacheable within one statement only.
  sql::Volatility volatility = sql::Volatility::kVolatile;
  bool immutable() const { return volatility == sql::Volatility::kImmutable; }
  bool statement_cacheable() const {
    return volatility != sql::Volatility::kVolatile;
  }
  /// Planned at CREATE FUNCTION time (like a prepared statement) and
  /// replanned after catalog DDL (plans hold raw Table pointers). Null when
  /// the body references dropped objects; executing it then is an error.
  std::shared_ptr<const Plan> body_plan;
};

class UdfRegistry {
 public:
  Status Register(std::unique_ptr<Udf> udf);
  const Udf* Find(const std::string& name) const;
  bool Contains(const std::string& name) const { return Find(name) != nullptr; }

  /// All registered functions, for body replanning after DDL.
  std::vector<Udf*> All();

  /// Monotonic registration counter; part of the Database compilation
  /// version, so prepared plans recompile after CREATE FUNCTION. Atomic:
  /// concurrent statements read it unlocked while DDL (exclusive) bumps it.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  std::unordered_map<std::string, std::unique_ptr<Udf>> udfs_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace engine
}  // namespace mtbase

#endif  // MTBASE_ENGINE_UDF_H_
