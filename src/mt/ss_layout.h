// The private table layout (SS scheme, paper Figure 3).
//
// MTBase itself implements the basic (ST) layout — one shared table with an
// invisible ttid column. The paper defines MTSQL semantics for both layouts
// and notes they are semantically equivalent (section 2): applying a
// statement with respect to D in SS means applying it to the logical union
// of the private tables owned by tenants in D.
//
// This module materializes the SS layout from an ST database (and back),
// which both demonstrates the equivalence and provides a migration path for
// applications arriving from per-tenant-table systems (Apache Phoenix
// style). The equivalence is exercised in tests/mt/ss_layout_test.cc.
#ifndef MTBASE_MT_SS_LAYOUT_H_
#define MTBASE_MT_SS_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "mt/mt_schema.h"

namespace mtbase {
namespace mt {

/// Name of tenant t's private instance of `table` (Figure 3: Employees_0).
std::string PrivateTableName(const std::string& table, int64_t ttid);

/// Split a tenant-specific ST table into per-tenant private tables inside
/// `target` (which may be the same database). Creates one table per tenant
/// in `tenants`, with the visible columns only (no ttid).
Status SplitToPrivateTables(engine::Database* source, engine::Database* target,
                            const MTTableInfo& info,
                            const std::vector<int64_t>& tenants);

/// Merge private tables back into a basic-layout (ST) table `into` inside
/// `target`: the inverse of SplitToPrivateTables. The ST table must already
/// exist with the ttid meta column first.
Status MergeFromPrivateTables(engine::Database* source,
                              engine::Database* target,
                              const MTTableInfo& info, const std::string& into,
                              const std::vector<int64_t>& tenants);

/// Execute a query against the SS layout by evaluating it per tenant in D
/// against that tenant's private tables and concatenating the results —
/// the "logical union" semantics of section 2. Only valid for queries whose
/// result is a plain per-tenant union (no cross-tenant joins/aggregates);
/// used by tests to cross-check the ST rewrite on single-table scans.
Result<engine::ResultSet> RunPerTenantUnion(engine::Database* ss_db,
                                            const MTTableInfo& info,
                                            const std::string& select_suffix,
                                            const std::vector<int64_t>& dataset);

}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_SS_LAYOUT_H_
