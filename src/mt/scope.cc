#include "mt/scope.h"

#include "common/str_util.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace mtbase {
namespace mt {

Scope Scope::Simple(std::vector<int64_t> ids) {
  Scope s;
  s.kind = Kind::kSimple;
  s.ids = std::move(ids);
  return s;
}

Result<Scope> Scope::Parse(const std::string& text) {
  MTB_ASSIGN_OR_RETURN(auto tokens, sql::Tokenize(text));
  if (tokens.empty() || tokens[0].kind == sql::TokenKind::kEnd) {
    return Status::SyntaxError("empty scope expression");
  }
  Scope scope;
  scope.text = text;
  if (EqualsIgnoreCase(tokens[0].text, "IN")) {
    scope.kind = Kind::kSimple;
    size_t i = 1;
    if (i >= tokens.size() || tokens[i].text != "(") {
      return Status::SyntaxError("expected '(' after IN in scope");
    }
    ++i;
    while (i < tokens.size() && tokens[i].text != ")") {
      bool neg = false;
      if (tokens[i].kind == sql::TokenKind::kSymbol && tokens[i].text == "-") {
        neg = true;
        ++i;
      }
      if (tokens[i].kind != sql::TokenKind::kInteger) {
        return Status::SyntaxError("expected tenant id in scope IN list");
      }
      int64_t id = std::stoll(tokens[i].text);
      scope.ids.push_back(neg ? -id : id);
      ++i;
      if (i < tokens.size() && tokens[i].text == ",") ++i;
    }
    if (i >= tokens.size() || tokens[i].text != ")") {
      return Status::SyntaxError("unterminated IN list in scope");
    }
    return scope;
  }
  if (EqualsIgnoreCase(tokens[0].text, "FROM")) {
    // Parse by prefixing a SELECT list; the rewriter projects the ttid
    // (paper Listing 12).
    MTB_ASSIGN_OR_RETURN(auto select, sql::ParseSelect("SELECT 1 " + text));
    if (select->from.size() != 1 ||
        select->from[0]->kind != sql::TableRef::Kind::kBase) {
      return Status::Unimplemented(
          "complex scopes support exactly one base table in FROM");
    }
    scope.kind = Kind::kComplex;
    scope.table = select->from[0]->name;
    if (select->where) scope.where = std::move(select->where);
    return scope;
  }
  return Status::SyntaxError("scope must start with IN or FROM: " + text);
}

}  // namespace mt
}  // namespace mtbase
