#include "mt/ss_layout.h"

#include "common/str_util.h"

namespace mtbase {
namespace mt {

std::string PrivateTableName(const std::string& table, int64_t ttid) {
  return table + "_" + std::to_string(ttid);
}

namespace {

Result<const engine::Table*> FindTableOrError(engine::Database* db,
                                              const std::string& name) {
  const engine::Table* t = db->catalog()->FindTable(name);
  if (t == nullptr) return Status::NotFound("table " + name + " does not exist");
  return t;
}

}  // namespace

Status SplitToPrivateTables(engine::Database* source, engine::Database* target,
                            const MTTableInfo& info,
                            const std::vector<int64_t>& tenants) {
  MTB_ASSIGN_OR_RETURN(const engine::Table* st, FindTableOrError(source, info.name));
  const engine::TableSchema& schema = st->schema();
  int ttid_col = schema.FindColumn(kTtidColumn);
  if (ttid_col < 0) {
    return Status::InvalidArgument(info.name +
                                   " is not a basic-layout table (no ttid)");
  }
  // Create one private table per tenant with the visible columns.
  for (int64_t t : tenants) {
    engine::TableSchema priv;
    priv.name = PrivateTableName(info.name, t);
    for (size_t i = 0; i < schema.columns.size(); ++i) {
      if (static_cast<int>(i) == ttid_col) continue;
      priv.columns.push_back(schema.columns[i]);
    }
    MTB_RETURN_IF_ERROR(target->catalog()->CreateTable(std::move(priv)));
  }
  for (const Row& row : st->rows()) {
    int64_t owner = row[static_cast<size_t>(ttid_col)].int_value();
    engine::Table* priv =
        target->catalog()->FindTable(PrivateTableName(info.name, owner));
    if (priv == nullptr) continue;  // tenant outside the split set
    Row visible;
    visible.reserve(row.size() - 1);
    for (size_t i = 0; i < row.size(); ++i) {
      if (static_cast<int>(i) == ttid_col) continue;
      visible.push_back(row[i]);
    }
    MTB_RETURN_IF_ERROR(priv->Insert(std::move(visible)));
  }
  return Status::OK();
}

Status MergeFromPrivateTables(engine::Database* source,
                              engine::Database* target,
                              const MTTableInfo& info, const std::string& into,
                              const std::vector<int64_t>& tenants) {
  engine::Table* st = target->catalog()->FindTable(into);
  if (st == nullptr) {
    return Status::NotFound("target table " + into + " does not exist");
  }
  int ttid_col = st->schema().FindColumn(kTtidColumn);
  if (ttid_col != 0) {
    return Status::InvalidArgument(
        into + " must carry the ttid meta column first (basic layout)");
  }
  for (int64_t t : tenants) {
    MTB_ASSIGN_OR_RETURN(
        const engine::Table* priv,
        FindTableOrError(source, PrivateTableName(info.name, t)));
    for (const Row& row : priv->rows()) {
      Row full;
      full.reserve(row.size() + 1);
      full.push_back(Value::Int(t));
      for (const Value& v : row) full.push_back(v);
      MTB_RETURN_IF_ERROR(st->Insert(std::move(full)));
    }
  }
  return Status::OK();
}

Result<engine::ResultSet> RunPerTenantUnion(
    engine::Database* ss_db, const MTTableInfo& info,
    const std::string& select_suffix, const std::vector<int64_t>& dataset) {
  engine::ResultSet out;
  for (int64_t t : dataset) {
    std::string sql = "SELECT * FROM " + PrivateTableName(info.name, t) + " " +
                      select_suffix;
    MTB_ASSIGN_OR_RETURN(engine::ResultSet rs, ss_db->Execute(sql));
    if (out.column_names.empty()) out.column_names = rs.column_names;
    for (Row& r : rs.rows) out.rows.push_back(std::move(r));
  }
  return out;
}

}  // namespace mt
}  // namespace mtbase
