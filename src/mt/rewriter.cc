#include "mt/rewriter.h"

#include <algorithm>

#include "common/str_util.h"
#include "sql/printer.h"

namespace mtbase {
namespace mt {

namespace {

bool IsComparisonOp(const std::string& op) {
  return op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

/// True if the expression contains any column reference (used to decide
/// whether a tenant-specific attribute is compared against a constant).
bool ContainsColumnRef(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kColumnRef) return true;
  for (const auto& a : e.args) {
    if (ContainsColumnRef(*a)) return true;
  }
  if (e.case_operand && ContainsColumnRef(*e.case_operand)) return true;
  if (e.else_expr && ContainsColumnRef(*e.else_expr)) return true;
  if (e.subquery) return true;  // conservatively treat sub-queries as refs
  return false;
}

}  // namespace

Rewriter::ResolvedAttr Rewriter::Resolve(const sql::Expr& col,
                                         const LevelScope* scope) const {
  ResolvedAttr out;
  if (col.kind != sql::ExprKind::kColumnRef) return out;
  for (const LevelScope* s = scope; s != nullptr; s = s->parent) {
    for (const auto& [alias, info] : s->relations) {
      if (info == nullptr) continue;
      if (!col.qualifier.empty() && !EqualsIgnoreCase(col.qualifier, alias)) {
        continue;
      }
      if (EqualsIgnoreCase(col.column, kTtidColumn) &&
          info->tenant_specific()) {
        if (!col.qualifier.empty()) {
          out.alias = alias;
          out.table = info;
          return out;  // ttid meta column itself (column == nullptr)
        }
        continue;
      }
      const MTColumnInfo* c = info->FindColumn(col.column);
      if (c != nullptr) {
        out.alias = alias;
        out.table = info;
        out.column = c;
        return out;
      }
    }
  }
  return out;
}

sql::ExprPtr Rewriter::WrapConversion(sql::ExprPtr attr,
                                      const std::string& alias,
                                      const MTColumnInfo& col) const {
  std::vector<sql::ExprPtr> to_args;
  to_args.push_back(std::move(attr));
  to_args.push_back(sql::Col(alias, kTtidColumn));
  auto to_call = sql::Func(col.to_universal_fn, std::move(to_args));
  std::vector<sql::ExprPtr> from_args;
  from_args.push_back(std::move(to_call));
  from_args.push_back(sql::IntLit(client_));
  return sql::Func(col.from_universal_fn, std::move(from_args));
}

sql::ExprPtr Rewriter::MakeDFilter(const std::string& alias) const {
  auto e = std::make_unique<sql::Expr>();
  e->kind = sql::ExprKind::kInList;
  e->args.push_back(sql::Col(alias, kTtidColumn));
  for (int64_t d : dataset_) {
    e->args.push_back(sql::IntLit(d));
  }
  return e;
}

Status Rewriter::ExpandStars(sql::SelectStmt* sel, const LevelScope* scope) {
  std::vector<sql::SelectItem> items;
  for (auto& item : sel->items) {
    if (item.expr->kind != sql::ExprKind::kStar) {
      items.push_back(std::move(item));
      continue;
    }
    const std::string& qual = item.expr->qualifier;
    bool expanded_any = false;
    for (const auto& [alias, info] : scope->relations) {
      if (!qual.empty() && !EqualsIgnoreCase(qual, alias)) continue;
      if (info == nullptr) {
        // Relation without MT metadata (derived table / meta table): keep a
        // qualified star; it exposes no hidden ttid.
        sql::SelectItem st;
        st.expr = std::make_unique<sql::Expr>();
        st.expr->kind = sql::ExprKind::kStar;
        st.expr->qualifier = alias;
        items.push_back(std::move(st));
        expanded_any = true;
        continue;
      }
      for (const auto& c : info->columns) {
        sql::SelectItem it;
        it.expr = sql::Col(alias, c.name);
        it.alias = c.name;
        items.push_back(std::move(it));
      }
      expanded_any = true;
    }
    if (!expanded_any) {
      return Status::InvalidArgument("cannot expand '*' (no relations)");
    }
  }
  sel->items = std::move(items);
  return Status::OK();
}

Status Rewriter::RewriteComparison(sql::ExprPtr* e, const LevelScope* scope) {
  sql::Expr& cmp = **e;
  ResolvedAttr l = Resolve(*cmp.args[0], scope);
  ResolvedAttr r = Resolve(*cmp.args[1], scope);
  bool l_ts = l.column != nullptr && l.column->tenant_specific();
  bool r_ts = r.column != nullptr && r.column->tenant_specific();

  // Rejection rule (paper section 2.4.2): tenant-specific attributes may only
  // be compared with tenant-specific attributes or constants.
  if (l_ts != r_ts) {
    const sql::Expr& other = l_ts ? *cmp.args[1] : *cmp.args[0];
    const ResolvedAttr& other_attr = l_ts ? r : l;
    if (other_attr.column != nullptr || ContainsColumnRef(other)) {
      return Status::Rejected(
          "INCOMPARABLE_ATTRIBUTES: comparison of tenant-specific attribute "
          "with a non-tenant-specific attribute: " +
          sql::PrintExpr(cmp));
    }
  }

  // Rewrite both sides (conversion wrapping, nested sub-queries).
  MTB_RETURN_IF_ERROR(RewriteExpr(&cmp.args[0], scope));
  MTB_RETURN_IF_ERROR(RewriteExpr(&cmp.args[1], scope));

  // ttid predicate for tenant-specific joins across table instances.
  if (l_ts && r_ts && !EqualsIgnoreCase(l.alias, r.alias) &&
      !options_.drop_ttid_joins) {
    auto ttid_eq = sql::Binary("=", sql::Col(l.alias, kTtidColumn),
                               sql::Col(r.alias, kTtidColumn));
    *e = sql::Binary("AND", std::move(*e), std::move(ttid_eq));
  }
  return Status::OK();
}

Status Rewriter::RewriteInSubquery(sql::ExprPtr* e, const LevelScope* scope) {
  sql::Expr& in = **e;
  // Analyse the (single) needle before it may get wrapped.
  ResolvedAttr needle;
  if (in.args.size() == 1) needle = Resolve(*in.args[0], scope);
  bool needle_ts = needle.column != nullptr && needle.column->tenant_specific();

  // The sub-query's first item, before its stars are expanded / attributes
  // wrapped; tenant-specific attributes are never wrapped, so inspecting it
  // after the recursive rewrite is still sound — but its alias resolution
  // needs the sub-query's own FROM, so capture it now.
  const sql::Expr* item0 = nullptr;
  if (!in.subquery->items.empty() &&
      in.subquery->items[0].expr->kind == sql::ExprKind::kColumnRef) {
    item0 = in.subquery->items[0].expr.get();
  }
  std::string item0_alias;
  const MTColumnInfo* item0_col = nullptr;
  if (item0 != nullptr) {
    LevelScope sub_scope;
    sub_scope.parent = scope;
    for (const auto& t : in.subquery->from) {
      if (t->kind == sql::TableRef::Kind::kBase) {
        sub_scope.relations.emplace_back(t->BindingName(),
                                         schema_->FindTable(t->name));
      }
    }
    ResolvedAttr ra = Resolve(*item0, &sub_scope);
    if (ra.column != nullptr) {
      item0_alias = ra.alias;
      item0_col = ra.column;
    }
  }

  // Rewrite needles and the sub-query itself.
  for (auto& a : in.args) {
    MTB_RETURN_IF_ERROR(RewriteExpr(&a, scope));
  }
  MTB_RETURN_IF_ERROR(RewriteSelect(in.subquery.get(), scope));

  if (needle_ts && !options_.drop_ttid_joins) {
    if (item0_col == nullptr || !item0_col->tenant_specific()) {
      return Status::Rejected(
          "INCOMPARABLE_SUBQUERY: tenant-specific attribute tested against a "
          "sub-query that does not produce a tenant-specific attribute: " +
          sql::PrintExpr(in));
    }
    // (x, x.ttid) IN (SELECT y, y.ttid ...): pair the data owners.
    in.args.push_back(sql::Col(needle.alias, kTtidColumn));
    sql::SelectItem ttid_item;
    ttid_item.expr = sql::Col(item0_alias, kTtidColumn);
    in.subquery->items.push_back(std::move(ttid_item));
    if (!in.subquery->group_by.empty()) {
      in.subquery->group_by.push_back(sql::Col(item0_alias, kTtidColumn));
    }
  }
  return Status::OK();
}

Status Rewriter::RewriteExpr(sql::ExprPtr* e, const LevelScope* scope) {
  sql::Expr& x = **e;
  switch (x.kind) {
    case sql::ExprKind::kColumnRef: {
      ResolvedAttr a = Resolve(x, scope);
      if (a.column != nullptr && a.column->convertible() &&
          !options_.drop_conversions) {
        *e = WrapConversion(std::move(*e), a.alias, *a.column);
      }
      return Status::OK();
    }
    case sql::ExprKind::kBinary:
      if (IsComparisonOp(x.op)) return RewriteComparison(e, scope);
      MTB_RETURN_IF_ERROR(RewriteExpr(&x.args[0], scope));
      return RewriteExpr(&x.args[1], scope);
    case sql::ExprKind::kInSubquery:
      return RewriteInSubquery(e, scope);
    case sql::ExprKind::kExists:
    case sql::ExprKind::kScalarSubquery:
      return RewriteSelect(x.subquery.get(), scope);
    default: {
      for (auto& a : x.args) {
        MTB_RETURN_IF_ERROR(RewriteExpr(&a, scope));
      }
      if (x.case_operand) {
        MTB_RETURN_IF_ERROR(RewriteExpr(&x.case_operand, scope));
      }
      if (x.else_expr) {
        MTB_RETURN_IF_ERROR(RewriteExpr(&x.else_expr, scope));
      }
      if (x.subquery) {
        MTB_RETURN_IF_ERROR(RewriteSelect(x.subquery.get(), scope));
      }
      return Status::OK();
    }
  }
}

Status Rewriter::RewriteSelect(sql::SelectStmt* sel, const LevelScope* parent) {
  LevelScope scope;
  scope.parent = parent;

  // Collect relations; rewrite derived tables; remember tenant-specific base
  // tables together with the LEFT JOIN whose ON clause must carry their
  // D-filter (right sides of left joins).
  struct TsRef {
    std::string alias;
    sql::TableRef* left_join = nullptr;  // null: D-filter goes to WHERE
  };
  std::vector<TsRef> ts_refs;
  std::vector<sql::Expr**> join_conds_unused;
  std::vector<sql::TableRef*> join_nodes;

  struct StackEntry {
    sql::TableRef* t;
    sql::TableRef* left_join_owner;
  };
  std::vector<StackEntry> stack;
  for (auto& t : sel->from) stack.push_back({t.get(), nullptr});
  // Process in FROM order (depth-first, left first).
  for (size_t si = 0; si < stack.size(); ++si) {
    sql::TableRef* t = stack[si].t;
    sql::TableRef* owner = stack[si].left_join_owner;
    switch (t->kind) {
      case sql::TableRef::Kind::kBase: {
        const MTTableInfo* info = schema_->FindTable(t->name);
        scope.relations.emplace_back(t->BindingName(), info);
        if (info != nullptr && info->tenant_specific()) {
          ts_refs.push_back({t->BindingName(), owner});
        }
        break;
      }
      case sql::TableRef::Kind::kSubquery:
        MTB_RETURN_IF_ERROR(RewriteSelect(t->subquery.get(), parent));
        scope.relations.emplace_back(t->BindingName(), nullptr);
        break;
      case sql::TableRef::Kind::kJoin: {
        join_nodes.push_back(t);
        stack.insert(stack.begin() + static_cast<long>(si) + 1,
                     {t->left.get(), owner});
        sql::TableRef* right_owner =
            t->join_type == sql::JoinType::kLeft ? t : owner;
        stack.insert(stack.begin() + static_cast<long>(si) + 2,
                     {t->right.get(), right_owner});
        break;
      }
    }
  }

  // Expand stars so the ttid meta column stays invisible.
  MTB_RETURN_IF_ERROR(ExpandStars(sel, &scope));

  // Rewrite all clauses (paper Algorithm 1).
  for (auto& item : sel->items) {
    bool was_colref = item.expr->kind == sql::ExprKind::kColumnRef;
    std::string colname = was_colref ? item.expr->column : "";
    MTB_RETURN_IF_ERROR(RewriteExpr(&item.expr, &scope));
    if (item.alias.empty() && was_colref &&
        item.expr->kind != sql::ExprKind::kColumnRef) {
      // Keep the original name so super-queries continue to work
      // (paper Listing 10).
      item.alias = colname;
    }
  }
  if (sel->where) {
    MTB_RETURN_IF_ERROR(RewriteExpr(&sel->where, &scope));
  }
  for (auto& g : sel->group_by) {
    MTB_RETURN_IF_ERROR(RewriteExpr(&g, &scope));
  }
  if (sel->having) {
    MTB_RETURN_IF_ERROR(RewriteExpr(&sel->having, &scope));
  }
  for (auto& o : sel->order_by) {
    MTB_RETURN_IF_ERROR(RewriteExpr(&o.expr, &scope));
  }
  for (sql::TableRef* j : join_nodes) {
    if (j->join_cond) {
      MTB_RETURN_IF_ERROR(RewriteExpr(&j->join_cond, &scope));
    }
  }

  // D-filters.
  if (!options_.drop_dfilters) {
    for (const TsRef& ts : ts_refs) {
      sql::ExprPtr filter = MakeDFilter(ts.alias);
      if (ts.left_join != nullptr) {
        sql::TableRef* j = ts.left_join;
        j->join_cond = j->join_cond
                           ? sql::Binary("AND", std::move(j->join_cond),
                                         std::move(filter))
                           : std::move(filter);
      } else {
        sel->where = sel->where ? sql::Binary("AND", std::move(sel->where),
                                              std::move(filter))
                                : std::move(filter);
      }
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<sql::SelectStmt>> Rewriter::RewriteQuery(
    const sql::SelectStmt& query) {
  auto clone = query.Clone();
  MTB_RETURN_IF_ERROR(RewriteSelect(clone.get(), nullptr));
  return clone;
}

Result<sql::CreateTableStmt> Rewriter::LowerCreateTable(
    const sql::CreateTableStmt& ct) const {
  sql::CreateTableStmt out;
  out.name = ct.name;
  out.mt_specific = false;
  if (ct.mt_specific) {
    sql::ColumnDef ttid;
    ttid.name = kTtidColumn;
    ttid.type.id = TypeId::kInt;
    ttid.not_null = true;
    out.columns.push_back(std::move(ttid));
  }
  for (const auto& c : ct.columns) {
    sql::ColumnDef plain = c;
    plain.comparability = sql::Comparability::kDefault;
    plain.to_universal_fn.clear();
    plain.from_universal_fn.clear();
    out.columns.push_back(std::move(plain));
  }
  for (const auto& tc : ct.constraints) {
    sql::TableConstraint c;
    c.kind = tc.kind;
    c.name = tc.name;
    c.columns = tc.columns;
    c.ref_table = tc.ref_table;
    c.ref_columns = tc.ref_columns;
    if (tc.check) c.check = tc.check->Clone();
    switch (tc.kind) {
      case sql::TableConstraint::Kind::kPrimaryKey:
        if (ct.mt_specific) {
          c.columns.insert(c.columns.begin(), kTtidColumn);
        }
        break;
      case sql::TableConstraint::Kind::kForeignKey: {
        const MTTableInfo* ref = schema_->FindTable(tc.ref_table);
        bool ref_ts = ref != nullptr && ref->tenant_specific();
        if (ct.mt_specific && ref_ts) {
          // Global referential constraint: pair the data owners
          // (paper Appendix A.1).
          c.columns.insert(c.columns.begin(), kTtidColumn);
          c.ref_columns.insert(c.ref_columns.begin(), kTtidColumn);
        }
        break;
      }
      case sql::TableConstraint::Kind::kCheck:
        break;
    }
    out.constraints.push_back(std::move(c));
  }
  // Physical design passes through unchanged: the partition column resolves
  // against the lowered layout, so tenant-specific tables may name the
  // synthesized ttid column (PARTITION BY HASH (ttid) PARTITIONS n).
  out.partition = ct.partition;
  return out;
}

Result<std::vector<sql::Stmt>> Rewriter::RewriteInsert(
    const sql::InsertStmt& ins) {
  const MTTableInfo* info = schema_->FindTable(ins.table);
  if (info == nullptr) {
    return Status::NotFound("unknown MT table " + ins.table);
  }
  std::vector<sql::Stmt> out;
  if (!info->tenant_specific()) {
    sql::Stmt stmt;
    stmt.kind = sql::Stmt::Kind::kInsert;
    stmt.insert = std::make_unique<sql::InsertStmt>();
    stmt.insert->table = ins.table;
    stmt.insert->columns = ins.columns;
    for (const auto& row : ins.rows) {
      std::vector<sql::ExprPtr> r;
      for (const auto& e : row) r.push_back(e->Clone());
      stmt.insert->rows.push_back(std::move(r));
    }
    if (ins.select) {
      MTB_ASSIGN_OR_RETURN(stmt.insert->select, RewriteQuery(*ins.select));
    }
    out.push_back(std::move(stmt));
    return out;
  }
  // Tenant-specific: one INSERT per tenant in D, with values converted to the
  // target tenant's format (paper Appendix A.2).
  std::vector<std::string> cols = ins.columns;
  if (cols.empty()) {
    for (const auto& c : info->columns) cols.push_back(c.name);
  }
  for (int64_t d : dataset_) {
    sql::Stmt stmt;
    stmt.kind = sql::Stmt::Kind::kInsert;
    stmt.insert = std::make_unique<sql::InsertStmt>();
    stmt.insert->table = ins.table;
    stmt.insert->columns = cols;
    stmt.insert->columns.push_back(kTtidColumn);
    auto convert = [&](sql::ExprPtr e, const std::string& col) -> sql::ExprPtr {
      const MTColumnInfo* ci = info->FindColumn(col);
      if (ci == nullptr || !ci->convertible() || d == client_) return e;
      std::vector<sql::ExprPtr> to_args;
      to_args.push_back(std::move(e));
      to_args.push_back(sql::IntLit(client_));
      auto to_call = sql::Func(ci->to_universal_fn, std::move(to_args));
      std::vector<sql::ExprPtr> from_args;
      from_args.push_back(std::move(to_call));
      from_args.push_back(sql::IntLit(d));
      return sql::Func(ci->from_universal_fn, std::move(from_args));
    };
    if (ins.select) {
      // Wrap the (rewritten, client-format) source query with a converting
      // projection.
      MTB_ASSIGN_OR_RETURN(auto sub, RewriteQuery(*ins.select));
      for (size_t i = 0; i < sub->items.size(); ++i) {
        sub->items[i].alias = "__c" + std::to_string(i);
      }
      auto outer = std::make_unique<sql::SelectStmt>();
      auto tref = std::make_unique<sql::TableRef>();
      tref->kind = sql::TableRef::Kind::kSubquery;
      tref->alias = "__src";
      tref->subquery = std::move(sub);
      outer->from.push_back(std::move(tref));
      for (size_t i = 0; i < cols.size(); ++i) {
        sql::SelectItem item;
        item.expr =
            convert(sql::Col("__src", "__c" + std::to_string(i)), cols[i]);
        outer->items.push_back(std::move(item));
      }
      {
        sql::SelectItem ttid_item;
        ttid_item.expr = sql::IntLit(d);
        outer->items.push_back(std::move(ttid_item));
      }
      stmt.insert->select = std::move(outer);
    } else {
      for (const auto& row : ins.rows) {
        if (row.size() != cols.size()) {
          return Status::InvalidArgument("INSERT arity mismatch");
        }
        std::vector<sql::ExprPtr> r;
        for (size_t i = 0; i < row.size(); ++i) {
          r.push_back(convert(row[i]->Clone(), cols[i]));
        }
        r.push_back(sql::IntLit(d));
        stmt.insert->rows.push_back(std::move(r));
      }
    }
    out.push_back(std::move(stmt));
  }
  return out;
}

Result<sql::Stmt> Rewriter::RewriteUpdate(const sql::UpdateStmt& up) {
  const MTTableInfo* info = schema_->FindTable(up.table);
  if (info == nullptr) {
    return Status::NotFound("unknown MT table " + up.table);
  }
  sql::Stmt stmt;
  stmt.kind = sql::Stmt::Kind::kUpdate;
  stmt.update = std::make_unique<sql::UpdateStmt>();
  stmt.update->table = up.table;

  LevelScope scope;
  scope.relations.emplace_back(up.table, info);
  for (const auto& [col, expr] : up.assignments) {
    sql::ExprPtr value = expr->Clone();
    MTB_RETURN_IF_ERROR(RewriteExpr(&value, &scope));
    const MTColumnInfo* ci = info->FindColumn(col);
    if (ci != nullptr && ci->convertible() && !options_.drop_conversions) {
      // The new value is in C's format; store it in the owning row's format.
      std::vector<sql::ExprPtr> to_args;
      to_args.push_back(std::move(value));
      to_args.push_back(sql::IntLit(client_));
      auto to_call = sql::Func(ci->to_universal_fn, std::move(to_args));
      std::vector<sql::ExprPtr> from_args;
      from_args.push_back(std::move(to_call));
      from_args.push_back(sql::Col(up.table, kTtidColumn));
      value = sql::Func(ci->from_universal_fn, std::move(from_args));
    }
    stmt.update->assignments.emplace_back(col, std::move(value));
  }
  if (up.where) {
    stmt.update->where = up.where->Clone();
    MTB_RETURN_IF_ERROR(RewriteExpr(&stmt.update->where, &scope));
  }
  if (info->tenant_specific() && !options_.drop_dfilters) {
    sql::ExprPtr filter = MakeDFilter(up.table);
    stmt.update->where =
        stmt.update->where
            ? sql::Binary("AND", std::move(stmt.update->where),
                          std::move(filter))
            : std::move(filter);
  }
  return stmt;
}

Result<sql::Stmt> Rewriter::RewriteDelete(const sql::DeleteStmt& del) {
  const MTTableInfo* info = schema_->FindTable(del.table);
  if (info == nullptr) {
    return Status::NotFound("unknown MT table " + del.table);
  }
  sql::Stmt stmt;
  stmt.kind = sql::Stmt::Kind::kDelete;
  stmt.del = std::make_unique<sql::DeleteStmt>();
  stmt.del->table = del.table;
  LevelScope scope;
  scope.relations.emplace_back(del.table, info);
  if (del.where) {
    stmt.del->where = del.where->Clone();
    MTB_RETURN_IF_ERROR(RewriteExpr(&stmt.del->where, &scope));
  }
  if (info->tenant_specific() && !options_.drop_dfilters) {
    sql::ExprPtr filter = MakeDFilter(del.table);
    stmt.del->where = stmt.del->where
                          ? sql::Binary("AND", std::move(stmt.del->where),
                                        std::move(filter))
                          : std::move(filter);
  }
  return stmt;
}

Status Rewriter::ValidateOptions() const {
  // The legality conditions are judged against the registered tenant
  // universe; without one (bare Rewriter in tests) every combination passes.
  if (options_.universe.empty()) return Status::OK();
  if (options_.drop_ttid_joins && dataset_.size() != 1) {
    return Status::InvalidArgument(
        "ILLEGAL_REWRITE_OPTIONS: drop_ttid_joins requires |D'| = 1, got " +
        std::to_string(dataset_.size()) + " tenants");
  }
  if (options_.drop_conversions &&
      (dataset_.size() != 1 || dataset_[0] != client_)) {
    return Status::InvalidArgument(
        "ILLEGAL_REWRITE_OPTIONS: drop_conversions requires D' = {C}");
  }
  if (options_.drop_dfilters) {
    std::vector<int64_t> d = dataset_;
    std::vector<int64_t> u = options_.universe;
    std::sort(d.begin(), d.end());
    std::sort(u.begin(), u.end());
    if (d != u) {
      return Status::InvalidArgument(
          "ILLEGAL_REWRITE_OPTIONS: drop_dfilters requires D' to cover all "
          "registered tenants");
    }
  }
  return Status::OK();
}

Result<std::vector<sql::Stmt>> Rewriter::RewriteStatement(
    const sql::Stmt& stmt) {
  MTB_RETURN_IF_ERROR(ValidateOptions());
  std::vector<sql::Stmt> out;
  switch (stmt.kind) {
    case sql::Stmt::Kind::kSelect: {
      sql::Stmt s;
      s.kind = sql::Stmt::Kind::kSelect;
      MTB_ASSIGN_OR_RETURN(s.select, RewriteQuery(*stmt.select));
      out.push_back(std::move(s));
      return out;
    }
    case sql::Stmt::Kind::kInsert:
      return RewriteInsert(*stmt.insert);
    case sql::Stmt::Kind::kUpdate: {
      MTB_ASSIGN_OR_RETURN(sql::Stmt s, RewriteUpdate(*stmt.update));
      out.push_back(std::move(s));
      return out;
    }
    case sql::Stmt::Kind::kDelete: {
      MTB_ASSIGN_OR_RETURN(sql::Stmt s, RewriteDelete(*stmt.del));
      out.push_back(std::move(s));
      return out;
    }
    case sql::Stmt::Kind::kCreateTable: {
      sql::Stmt s;
      s.kind = sql::Stmt::Kind::kCreateTable;
      MTB_ASSIGN_OR_RETURN(auto lowered, LowerCreateTable(*stmt.create_table));
      s.create_table = std::make_unique<sql::CreateTableStmt>(std::move(lowered));
      out.push_back(std::move(s));
      return out;
    }
    case sql::Stmt::Kind::kCreateView: {
      sql::Stmt s;
      s.kind = sql::Stmt::Kind::kCreateView;
      s.create_view = std::make_unique<sql::CreateViewStmt>();
      s.create_view->name = stmt.create_view->name;
      MTB_ASSIGN_OR_RETURN(s.create_view->select,
                           RewriteQuery(*stmt.create_view->select));
      out.push_back(std::move(s));
      return out;
    }
    default:
      return Status::InvalidArgument(
          "statement kind is handled by the middleware, not the rewriter");
  }
}

}  // namespace mt
}  // namespace mtbase
