#include "mt/session.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/str_util.h"
#include "engine/explain.h"
#include "engine/obs/metrics.h"
#include "engine/obs/trace.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace mtbase {
namespace mt {

thread_local const Middleware* Middleware::tl_meta_owner_ = nullptr;
thread_local int Middleware::tl_meta_depth_ = 0;

Middleware::MetaGuard::MetaGuard(const Middleware* mw, bool exclusive)
    : mw_(mw) {
  if (tl_meta_owner_ == mw) {
    // Re-entrant: adopt the outer guard's mode. Nested exclusive requests
    // under an outer shared guard do not occur (meta mutations are only
    // initiated at statement top level).
    ++tl_meta_depth_;
    return;
  }
  prev_owner_ = tl_meta_owner_;
  prev_depth_ = tl_meta_depth_;
  if (exclusive) {
    mw->meta_mu_.lock();
  } else {
    mw->meta_mu_.lock_shared();
  }
  owns_ = true;
  exclusive_ = exclusive;
  tl_meta_owner_ = mw;
  tl_meta_depth_ = 1;
}

Middleware::MetaGuard::~MetaGuard() {
  if (!owns_) {
    --tl_meta_depth_;
    return;
  }
  tl_meta_owner_ = prev_owner_;
  tl_meta_depth_ = prev_depth_;
  if (exclusive_) {
    mw_->meta_mu_.unlock();
  } else {
    mw_->meta_mu_.unlock_shared();
  }
}

void Middleware::RegisterTenant(int64_t ttid) {
  MetaGuard guard(this, /*exclusive=*/true);
  auto it = std::lower_bound(tenants_.begin(), tenants_.end(), ttid);
  if (it == tenants_.end() || *it != ttid) {
    tenants_.insert(it, ttid);
    tenant_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
}

std::vector<int64_t> Middleware::tenants() const {
  MetaGuard guard(this, /*exclusive=*/false);
  return tenants_;
}

void Middleware::SetMaxThreads(int max_threads) {
  engine::PlannerOptions opts = db_->planner_options();
  opts.max_threads = max_threads;
  db_->set_planner_options(opts);  // bumps the fingerprinted options version
}

bool Middleware::IsAllTenants(const std::vector<int64_t>& dataset) const {
  MetaGuard guard(this, /*exclusive=*/false);
  if (dataset.size() != tenants_.size()) return false;
  std::vector<int64_t> sorted = dataset;
  std::sort(sorted.begin(), sorted.end());
  return sorted == tenants_;
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Status Session::SetScope(const std::string& scope_text) {
  MTB_ASSIGN_OR_RETURN(Scope s, Scope::Parse(scope_text));
  scope_ = std::move(s);
  return Status::OK();
}

namespace {

void CollectTsTablesFromSelect(const sql::SelectStmt& sel,
                               const MTSchema& schema,
                               std::set<std::string>* out);

void CollectTsTablesFromExpr(const sql::Expr& e, const MTSchema& schema,
                             std::set<std::string>* out) {
  if (e.subquery) CollectTsTablesFromSelect(*e.subquery, schema, out);
  for (const auto& a : e.args) CollectTsTablesFromExpr(*a, schema, out);
  if (e.case_operand) CollectTsTablesFromExpr(*e.case_operand, schema, out);
  if (e.else_expr) CollectTsTablesFromExpr(*e.else_expr, schema, out);
}

void CollectTsTablesFromTref(const sql::TableRef& t, const MTSchema& schema,
                             std::set<std::string>* out) {
  switch (t.kind) {
    case sql::TableRef::Kind::kBase: {
      const MTTableInfo* info = schema.FindTable(t.name);
      if (info != nullptr && info->tenant_specific()) {
        out->insert(ToLowerCopy(t.name));
      }
      break;
    }
    case sql::TableRef::Kind::kSubquery:
      CollectTsTablesFromSelect(*t.subquery, schema, out);
      break;
    case sql::TableRef::Kind::kJoin:
      CollectTsTablesFromTref(*t.left, schema, out);
      CollectTsTablesFromTref(*t.right, schema, out);
      if (t.join_cond) CollectTsTablesFromExpr(*t.join_cond, schema, out);
      break;
  }
}

void CollectTsTablesFromSelect(const sql::SelectStmt& sel,
                               const MTSchema& schema,
                               std::set<std::string>* out) {
  for (const auto& t : sel.from) CollectTsTablesFromTref(*t, schema, out);
  for (const auto& item : sel.items) {
    if (item.expr->kind != sql::ExprKind::kStar) {
      CollectTsTablesFromExpr(*item.expr, schema, out);
    }
  }
  if (sel.where) CollectTsTablesFromExpr(*sel.where, schema, out);
  for (const auto& g : sel.group_by) CollectTsTablesFromExpr(*g, schema, out);
  if (sel.having) CollectTsTablesFromExpr(*sel.having, schema, out);
  for (const auto& o : sel.order_by) {
    CollectTsTablesFromExpr(*o.expr, schema, out);
  }
}

}  // namespace

void Session::CollectTsTables(const sql::Stmt& stmt,
                              std::vector<std::string>* out) const {
  std::set<std::string> set;
  switch (stmt.kind) {
    case sql::Stmt::Kind::kSelect:
      CollectTsTablesFromSelect(*stmt.select, *mw_->schema(), &set);
      break;
    case sql::Stmt::Kind::kInsert: {
      const MTTableInfo* info = mw_->schema()->FindTable(stmt.insert->table);
      if (info != nullptr && info->tenant_specific()) {
        set.insert(ToLowerCopy(stmt.insert->table));
      }
      if (stmt.insert->select) {
        CollectTsTablesFromSelect(*stmt.insert->select, *mw_->schema(), &set);
      }
      break;
    }
    case sql::Stmt::Kind::kUpdate: {
      const MTTableInfo* info = mw_->schema()->FindTable(stmt.update->table);
      if (info != nullptr && info->tenant_specific()) {
        set.insert(ToLowerCopy(stmt.update->table));
      }
      break;
    }
    case sql::Stmt::Kind::kDelete: {
      const MTTableInfo* info = mw_->schema()->FindTable(stmt.del->table);
      if (info != nullptr && info->tenant_specific()) {
        set.insert(ToLowerCopy(stmt.del->table));
      }
      break;
    }
    default:
      break;
  }
  out->assign(set.begin(), set.end());
}

Result<std::vector<int64_t>> Session::ResolveDataset(const sql::Stmt& stmt) {
  std::vector<int64_t> dataset;
  switch (scope_.kind) {
    case Scope::Kind::kDefault:
      dataset = {client_};
      break;
    case Scope::Kind::kSimple:
      // The empty IN list means "all tenants" (paper section 2.1).
      dataset = scope_.ids.empty() ? mw_->tenants() : scope_.ids;
      break;
    case Scope::Kind::kComplex: {
      // Build "SELECT ttid FROM <table> WHERE <pred>" and run it through the
      // canonical rewriter so constants are interpreted in C's format
      // (paper Listing 12).
      const MTTableInfo* info = mw_->schema()->FindTable(scope_.table);
      if (info == nullptr || !info->tenant_specific()) {
        return Status::InvalidArgument(
            "complex scope must reference a tenant-specific table: " +
            scope_.table);
      }
      auto q = std::make_unique<sql::SelectStmt>();
      q->distinct = true;
      sql::SelectItem item;
      item.expr = sql::Col(scope_.table, kTtidColumn);
      q->items.push_back(std::move(item));
      auto tref = std::make_unique<sql::TableRef>();
      tref->kind = sql::TableRef::Kind::kBase;
      tref->name = scope_.table;
      q->from.push_back(std::move(tref));
      if (scope_.where) q->where = scope_.where->Clone();
      // Conversions in the scope predicate run with D = all tenants; the
      // scope query itself is not D-filtered.
      RewriteOptions opts;
      opts.drop_dfilters = true;
      opts.universe = mw_->tenants();
      Rewriter rewriter(mw_->schema(), mw_->conversions(), client_,
                        mw_->tenants(), opts);
      // The projected ttid is the meta column; rewrite only the predicate.
      auto rewritten = std::make_unique<sql::SelectStmt>(std::move(*q));
      MTB_ASSIGN_OR_RETURN(rewritten, rewriter.RewriteQuery(*rewritten));
      Optimizer opt(mw_->conversions(), client_);
      MTB_RETURN_IF_ERROR(opt.Optimize(rewritten.get(), level_));
      std::string sql_text = sql::PrintSelect(*rewritten);
      // The scope query itself is contractually unfiltered (it determines
      // D); tell the verifier so before the engine compiles it.
      engine::verify::VerifyContext vctx;
      vctx.check_tenant = true;
      vctx.ttid_column = kTtidColumn;
      vctx.tenant_tables = mw_->schema()->TenantSpecificTables();
      vctx.expected_tenants = mw_->tenants();
      vctx.allow_unfiltered = true;
      mw_->db()->set_verify_context(std::move(vctx));
      MTB_ASSIGN_OR_RETURN(auto rs, mw_->db()->Execute(sql_text));
      for (const auto& row : rs.rows) {
        if (!row.empty() && !row[0].is_null()) {
          dataset.push_back(row[0].int_value());
        }
      }
      std::sort(dataset.begin(), dataset.end());
      break;
    }
  }
  // Prune against privileges: D -> D' (paper section 3).
  std::vector<std::string> ts_tables;
  CollectTsTables(stmt, &ts_tables);
  return mw_->privileges()->PruneDataset(dataset, ts_tables, client_);
}

engine::verify::VerifyContext Session::MakeVerifyContext(
    const std::vector<int64_t>& dataset) const {
  engine::verify::VerifyContext ctx;
  ctx.check_tenant = true;
  ctx.ttid_column = kTtidColumn;
  ctx.tenant_tables = mw_->schema()->TenantSpecificTables();
  ctx.expected_tenants = dataset;
  std::sort(ctx.expected_tenants.begin(), ctx.expected_tenants.end());
  // When o1 elides the D-filters (D' = all tenants), unfiltered access is
  // exactly what the rewrite contract promises.
  ctx.allow_unfiltered = OptionsFor(dataset).drop_dfilters;
  return ctx;
}

RewriteOptions Session::OptionsFor(const std::vector<int64_t>& dataset) const {
  RewriteOptions opts;
  opts.universe = mw_->tenants();
  if (level_ == OptLevel::kCanonical) return opts;
  // o1, trivial semantic optimizations (paper section 4.1).
  opts.drop_dfilters = mw_->IsAllTenants(dataset);
  opts.drop_ttid_joins = dataset.size() == 1;
  opts.drop_conversions = dataset.size() == 1 && dataset[0] == client_;
  return opts;
}

Result<std::vector<sql::Stmt>> Session::RewriteStmt(
    const sql::Stmt& stmt, std::vector<int64_t>* dataset_out) {
  MTB_ASSIGN_OR_RETURN(std::vector<int64_t> dataset, ResolveDataset(stmt));
  if (dataset_out != nullptr) *dataset_out = dataset;
  return RewriteWithDataset(stmt, dataset);
}

audit::AuditContext Session::MakeAuditContext(
    const std::vector<int64_t>& dataset) const {
  audit::AuditContext ctx;
  ctx.schema = mw_->schema();
  ctx.conversions = mw_->conversions();
  ctx.catalog = mw_->db()->catalog();
  ctx.udfs = mw_->db()->udfs();
  ctx.client = client_;
  ctx.dataset = dataset;
  std::sort(ctx.dataset.begin(), ctx.dataset.end());
  ctx.all_tenants = mw_->tenants();  // kept sorted by RegisterTenant
  ctx.options = OptionsFor(dataset);
  return ctx;
}

namespace {

/// The SELECT body the optimizer will transform, if any.
sql::SelectStmt* OptimizableSelect(sql::Stmt* s) {
  if (s->kind == sql::Stmt::Kind::kSelect) return s->select.get();
  if (s->kind == sql::Stmt::Kind::kInsert && s->insert->select) {
    return s->insert->select.get();
  }
  return nullptr;
}

}  // namespace

Result<std::vector<sql::Stmt>> Session::RewriteWithDataset(
    const sql::Stmt& stmt, const std::vector<int64_t>& dataset,
    audit::AuditReport* audit_out) {
  engine::ExecStats* stats = mw_->db()->CurStats();
  ++stats->statements_rewritten;
  std::vector<sql::Stmt> stmts;
  {
    obs::SpanTimer span(active_trace_, "rewrite", stats);
    Rewriter rewriter(mw_->schema(), mw_->conversions(), client_, dataset,
                      OptionsFor(dataset));
    MTB_ASSIGN_OR_RETURN(stmts, rewriter.RewriteStatement(stmt));
    if (mw_->rewrite_mutation_hook()) {
      for (auto& s : stmts) mw_->rewrite_mutation_hook()(&s);
    }
  }

  // Audit the rewriter's output before the optimizer touches it; keep
  // pre-optimizer clones of the SELECT bodies as the canonical side of the
  // cross-level equivalence comparison. Enforcement refuses before any
  // further compilation work — except on the EXPLAIN (AUDIT) surface
  // (audit_out != nullptr), which reports instead of refusing.
  const bool auditing = audit_out != nullptr || audit::AuditEnabled();
  audit::AuditReport report;
  audit::AuditContext actx;
  std::vector<std::unique_ptr<sql::SelectStmt>> pre_opt;
  if (auditing) {
    // Traced as "audit" even though it interleaves with optimization below:
    // repeated phases in one record sum to the phase total.
    obs::SpanTimer span(active_trace_, "audit", stats);
    actx = MakeAuditContext(dataset);
    audit::RewriteAuditor auditor(&actx);
    report.statements.resize(stmts.size());
    pre_opt.resize(stmts.size());
    for (size_t i = 0; i < stmts.size(); ++i) {
      auditor.AuditRewrite(stmts[i], &report.statements[i]);
      if (const sql::SelectStmt* sel = OptimizableSelect(&stmts[i])) {
        pre_opt[i] = sel->Clone();
      }
    }
    stats->rewrites_audited += stmts.size();
    if (!report.ok() && audit_out == nullptr) {
      stats->audit_violations += report.total_violations();
      return Status::InvalidArgument("rewrite audit failed (" +
                                     report.Codes() + "):\n" +
                                     report.Message());
    }
  }

  {
    obs::SpanTimer span(active_trace_, "rewrite", stats);
    Optimizer opt(mw_->conversions(), client_);
    for (auto& s : stmts) {
      if (sql::SelectStmt* sel = OptimizableSelect(&s)) {
        MTB_RETURN_IF_ERROR(opt.Optimize(sel, level_));
      }
    }
  }

  if (auditing) {
    obs::SpanTimer span(active_trace_, "audit", stats);
    audit::RewriteAuditor auditor(&actx);
    for (size_t i = 0; i < stmts.size(); ++i) {
      if (!pre_opt[i]) continue;
      auditor.AuditOptimized(*pre_opt[i], *OptimizableSelect(&stmts[i]),
                             &report.statements[i]);
    }
    stats->audit_violations += report.total_violations();
    if (!report.ok() && audit_out == nullptr) {
      return Status::InvalidArgument("rewrite audit failed (" +
                                     report.Codes() + "):\n" +
                                     report.Message());
    }
    if (audit_out != nullptr) *audit_out = std::move(report);
  }
  return stmts;
}

bool Session::MatchesCompilationKey(const CompilationKey& key) const {
  return key.valid && key.client == client_ && key.level == level_ &&
         key.scope_kind == scope_.kind && key.scope_text == scope_.text &&
         key.privilege_epoch == mw_->privileges()->epoch() &&
         key.schema_epoch == mw_->schema()->epoch() &&
         key.tenant_epoch == mw_->tenant_epoch() &&
         key.conversion_epoch == mw_->conversions()->epoch() &&
         key.engine_version == mw_->db()->compilation_version();
}

CompilationKey Session::CurrentCompilationKey() const {
  CompilationKey key;
  key.valid = true;
  key.client = client_;
  key.level = level_;
  key.scope_kind = scope_.kind;
  key.scope_text = scope_.text;
  key.privilege_epoch = mw_->privileges()->epoch();
  key.schema_epoch = mw_->schema()->epoch();
  key.tenant_epoch = mw_->tenant_epoch();
  key.conversion_epoch = mw_->conversions()->epoch();
  key.engine_version = mw_->db()->compilation_version();
  return key;
}

// ---------------------------------------------------------------------------
// PreparedQuery
// ---------------------------------------------------------------------------

namespace {

/// Serialize everything a cached compilation's validity depends on into the
/// cross-session cache key. Statement text is appended by the caller; all
/// epochs are in the key, so state changes invalidate by ceasing to match
/// (mt/plan_cache.h).
std::string SerializeCompilationKey(const CompilationKey& key) {
  std::string out;
  out += std::to_string(key.client);
  out += '|';
  out += std::to_string(static_cast<int>(key.level));
  out += '|';
  out += std::to_string(static_cast<int>(key.scope_kind));
  out += '|';
  out += key.scope_text;
  out += '|';
  out += std::to_string(key.privilege_epoch);
  out += '|';
  out += std::to_string(key.schema_epoch);
  out += '|';
  out += std::to_string(key.tenant_epoch);
  out += '|';
  out += std::to_string(key.conversion_epoch);
  out += '|';
  out += std::to_string(key.engine_version);
  out += '|';
  for (int64_t t : key.dataset) {
    out += std::to_string(t);
    out += ',';
  }
  return out;
}

}  // namespace

PreparedQuery::PreparedQuery(Session* session, sql::Stmt stmt,
                             std::string mtsql)
    : session_(session),
      mtsql_(std::move(mtsql)),
      stmt_(std::move(stmt)),
      param_count_(sql::MaxParamIndex(stmt_)) {}

Status PreparedQuery::Recompile(const std::vector<int64_t>& dataset) {
  // Invalidate first so a failed compile cannot leave a usable stale handle.
  key_.valid = false;
  plans_.reset();
  sql_.clear();
  CompilationKey key = session_->CurrentCompilationKey();
  key.dataset = dataset;
  MTB_ASSIGN_OR_RETURN(auto stmts,
                       session_->RewriteWithDataset(stmt_, dataset));
  // Tell the verifier what the rewrite just promised: every plan compiled
  // below must restrict tenant-specific access to this dataset.
  session_->mw_->db()->set_verify_context(
      session_->MakeVerifyContext(dataset));
  auto plans = std::make_shared<std::vector<engine::PreparedPlan>>();
  for (auto& s : stmts) {
    std::string text = sql::PrintStmt(s);
    if (!sql_.empty()) sql_ += ";\n";
    sql_ += text;
    MTB_ASSIGN_OR_RETURN(
        auto plan,
        session_->mw_->db()->PrepareStmt(std::move(s), std::move(text)));
    plans->push_back(std::move(plan));
  }
  plans_ = std::move(plans);
  key_ = std::move(key);
  return Status::OK();
}

Result<engine::ResultSet> PreparedQuery::Execute(
    const std::vector<Value>& params) {
  if (session_->closed()) {
    return Status::Internal("statement cancelled: session closed");
  }
  // Concurrency shell: the session's closed flag cancels admission waits,
  // the stats frame keeps this statement's counters race-free until they
  // merge into the database totals, and the shared meta lock holds the MT
  // meta state (schema, privileges, conversions, tenants) still for the
  // whole compile+execute path. Then the observability shell: one
  // session-layer trace record per statement plus session metrics. Nested
  // statements (e.g. a one-shot Session::Execute that already opened a
  // record) append their spans to the enclosing record via the Session
  // slot. The MTSQL text is empty on the one-shot path — print the AST
  // back only when tracing is on.
  engine::ScopedCancelToken cancel(session_->closed_.get());
  engine::Database::StatsFrame frame(session_->mw_->db());
  Middleware::MetaGuard meta(session_->mw_, /*exclusive=*/false);
  obs::Tracer* tracer = obs::Tracer::Global();
  obs::TraceRecordScope trace(
      tracer, &session_->active_trace_, "session",
      !mtsql_.empty() || tracer == nullptr || !tracer->enabled()
          ? mtsql_
          : sql::PrintStmt(stmt_));
  engine::StatsScope scope(session_->mw_->db()->CurStats());
  const auto t0 = std::chrono::steady_clock::now();
  Result<engine::ResultSet> result = ExecuteImpl(params);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  trace.FinishFromStatus(result.ok() ? Status::OK() : result.status());
  const engine::ExecStats d = scope.Delta();
  auto* metrics = obs::MetricsRegistry::Global();
  metrics->Add("mtbase_session_statements_total");
  if (!result.ok()) metrics->Add("mtbase_session_statement_errors_total");
  metrics->Observe("mtbase_session_execute_seconds", secs);
  if (d.rewrite_cache_hits > 0) {
    metrics->Add("mtbase_session_rewrite_cache_hits_total",
                 d.rewrite_cache_hits);
  }
  return result;
}

Result<engine::ResultSet> PreparedQuery::ExecuteImpl(
    const std::vector<Value>& params) {
  std::vector<int64_t> dataset;
  bool resolved = false;
  if (session_->scope_.kind == Scope::Kind::kComplex) {
    // A complex scope is data-dependent: re-resolve D' on every execution
    // and key the cache on the resolved tenant set.
    MTB_ASSIGN_OR_RETURN(dataset, session_->ResolveDataset(stmt_));
    resolved = true;
  }
  bool hit = session_->MatchesCompilationKey(key_) &&
             (!resolved || dataset == key_.dataset);
  if (!hit) {
    if (!resolved) {
      MTB_ASSIGN_OR_RETURN(dataset, session_->ResolveDataset(stmt_));
    }
    // Cross-session cache: before recompiling, adopt another session's (or
    // another handle's) compilation of this statement under identical state.
    // The adopted plans were verified at their compile under the same
    // context this session would install (same client, dataset, epochs).
    CompilationKey key = session_->CurrentCompilationKey();
    key.dataset = dataset;
    std::string cache_key = SerializeCompilationKey(key);
    cache_key += '\n';
    cache_key += mtsql_.empty() ? sql::PrintStmt(stmt_) : mtsql_;
    SharedPlanCache* cache = session_->mw_->plan_cache();
    CachedPlans cached;
    if (cache->Lookup(cache_key, &cached)) {
      sql_ = cached.sql;
      plans_ = cached.plans;
      key_ = std::move(key);
      // A shared hit skips the rewriter and the planner exactly like a
      // private fingerprint hit does.
      ++session_->mw_->db()->CurStats()->rewrite_cache_hits;
    } else {
      MTB_RETURN_IF_ERROR(Recompile(dataset));
      cache->Insert(std::move(cache_key), {sql_, plans_});
    }
  } else {
    ++session_->mw_->db()->CurStats()->rewrite_cache_hits;
  }
  session_->last_sql_ = sql_;
  obs::SpanTimer span(session_->active_trace_, "execute",
                      session_->mw_->db()->CurStats());
  engine::ResultSet last;
  for (auto& plan : *plans_) {
    MTB_ASSIGN_OR_RETURN(last, plan.Execute(params));
  }
  return last;
}

Status Session::HandleGrant(const sql::GrantStmt& grant) {
  std::vector<int64_t> grantees;
  if (grant.to_all) {
    // GRANT ... TO ALL resolves against the current dataset D (paper §2.3).
    sql::Stmt dummy;
    dummy.kind = sql::Stmt::Kind::kSelect;
    dummy.select = std::make_unique<sql::SelectStmt>();
    MTB_ASSIGN_OR_RETURN(grantees, ResolveDataset(dummy));
  } else {
    grantees = {grant.grantee};
  }
  for (const auto& priv_name : grant.privileges) {
    std::vector<Privilege> privs;
    if (EqualsIgnoreCase(priv_name, "ALL")) {
      privs = {Privilege::kRead, Privilege::kInsert, Privilege::kUpdate,
               Privilege::kDelete};
    } else {
      MTB_ASSIGN_OR_RETURN(Privilege p, ParsePrivilege(priv_name));
      privs = {p};
    }
    const std::string table = grant.on_database ? "" : grant.table;
    for (Privilege p : privs) {
      for (int64_t g : grantees) {
        if (grant.revoke) {
          mw_->privileges()->Revoke(client_, table, p, g);
        } else {
          mw_->privileges()->Grant(client_, table, p, g);
        }
      }
    }
  }
  return Status::OK();
}

Result<engine::ResultSet> Session::ExecuteStmt(const sql::Stmt& stmt) {
  engine::ResultSet empty;
  switch (stmt.kind) {
    case sql::Stmt::Kind::kSetScope:
      // Session-local state: a Session serves one client thread at a time.
      MTB_RETURN_IF_ERROR(SetScope(stmt.set_scope->scope_text));
      return empty;
    case sql::Stmt::Kind::kGrant: {
      // DCL mutates the privilege matrix: exclusive over the MT meta state.
      Middleware::MetaGuard meta(mw_, /*exclusive=*/true);
      MTB_RETURN_IF_ERROR(HandleGrant(*stmt.grant));
      return empty;
    }
    case sql::Stmt::Kind::kCreateFunction:
      // Conversion functions pass through to the DBMS unchanged.
      return mw_->db()->ExecuteStmt(stmt);
    case sql::Stmt::Kind::kCreateIndex:
      // Physical-design DDL passes through: index keys name lowered physical
      // columns (ttid included). The catalog version bump recompiles every
      // prepared query's fingerprint, so new access paths are picked up.
      return mw_->db()->ExecuteStmt(stmt);
    case sql::Stmt::Kind::kCreateTable: {
      // MTSQL DDL mutates the MT schema registry: exclusive meta lock, then
      // the engine's own exclusive statement lock nests inside.
      Middleware::MetaGuard meta(mw_, /*exclusive=*/true);
      MTB_RETURN_IF_ERROR(mw_->schema()->RegisterTable(*stmt.create_table));
      Rewriter rewriter(mw_->schema(), mw_->conversions(), client_, {client_},
                        RewriteOptions{});
      auto lowered = rewriter.LowerCreateTable(*stmt.create_table);
      if (!lowered.ok()) {
        (void)mw_->schema()->DropTable(stmt.create_table->name);
        return lowered.status();
      }
      sql::Stmt s;
      s.kind = sql::Stmt::Kind::kCreateTable;
      s.create_table =
          std::make_unique<sql::CreateTableStmt>(std::move(lowered).value());
      last_sql_ = sql::PrintStmt(s);
      auto rs = mw_->db()->ExecuteStmt(s);
      if (!rs.ok()) {
        (void)mw_->schema()->DropTable(stmt.create_table->name);
        return rs.status();
      }
      return rs;
    }
    case sql::Stmt::Kind::kDrop: {
      Middleware::MetaGuard meta(mw_, /*exclusive=*/true);
      if (stmt.drop->what == sql::DropStmt::What::kTable) {
        (void)mw_->schema()->DropTable(stmt.drop->name);
      }
      return mw_->db()->ExecuteStmt(stmt);
    }
    default: {
      Middleware::MetaGuard meta(mw_, /*exclusive=*/false);
      std::vector<int64_t> dataset;
      MTB_ASSIGN_OR_RETURN(auto stmts, RewriteStmt(stmt, &dataset));
      mw_->db()->set_verify_context(MakeVerifyContext(dataset));
      engine::ResultSet last;
      last_sql_.clear();
      for (const auto& s : stmts) {
        std::string text = sql::PrintStmt(s);
        if (!last_sql_.empty()) last_sql_ += ";\n";
        last_sql_ += text;
        MTB_ASSIGN_OR_RETURN(last, mw_->db()->Execute(text));
      }
      return last;
    }
  }
}

Result<engine::ResultSet> Session::ExecuteOwned(sql::Stmt stmt) {
  switch (stmt.kind) {
    case sql::Stmt::Kind::kSelect:
    case sql::Stmt::Kind::kInsert:
    case sql::Stmt::Kind::kUpdate:
    case sql::Stmt::Kind::kDelete: {
      // One-shot = prepare + execute through the same compilation path the
      // prepared API uses.
      PreparedQuery pq(this, std::move(stmt), std::string());
      return pq.Execute();
    }
    default:
      return ExecuteStmt(stmt);
  }
}

void Session::Close() {
  closed_->store(true, std::memory_order_release);
  // Wake this session's statements queued at admission control so they
  // observe the flag and abort instead of executing.
  mw_->db()->admission()->NotifyAll();
}

Result<PreparedQuery> Session::Prepare(const std::string& mtsql) {
  engine::Database::StatsFrame frame(mw_->db());
  ++mw_->db()->CurStats()->statements_parsed;
  MTB_ASSIGN_OR_RETURN(sql::Stmt stmt, sql::ParseStatement(mtsql));
  switch (stmt.kind) {
    case sql::Stmt::Kind::kSelect:
    case sql::Stmt::Kind::kInsert:
    case sql::Stmt::Kind::kUpdate:
    case sql::Stmt::Kind::kDelete:
      return PreparedQuery(this, std::move(stmt), mtsql);
    default:
      return Status::InvalidArgument(
          "only queries and DML can be prepared; run session, DCL and DDL "
          "statements through Execute()");
  }
}

Result<engine::ResultSet> Session::Execute(const std::string& mtsql) {
  // Open the session-layer trace record here so the parse span and the
  // rewrite/audit/execute spans of the nested prepared path all land in one
  // record for the one-shot surface.
  engine::Database::StatsFrame frame(mw_->db());
  obs::TraceRecordScope trace(obs::Tracer::Global(), &active_trace_,
                              "session", mtsql);
  auto result = [&]() -> Result<engine::ResultSet> {
    engine::ExecStats* stats = mw_->db()->CurStats();
    ++stats->statements_parsed;
    sql::Stmt stmt;
    {
      obs::SpanTimer span(active_trace_, "parse", stats);
      MTB_ASSIGN_OR_RETURN(stmt, sql::ParseStatement(mtsql));
    }
    return ExecuteOwned(std::move(stmt));
  }();
  trace.FinishFromStatus(result.ok() ? Status::OK() : result.status());
  return result;
}

Result<engine::ResultSet> Session::ExecuteScript(const std::string& mtsql) {
  engine::Database::StatsFrame frame(mw_->db());
  MTB_ASSIGN_OR_RETURN(auto stmts, sql::ParseScript(mtsql));
  mw_->db()->CurStats()->statements_parsed += stmts.size();
  engine::ResultSet last;
  for (size_t i = 0; i < stmts.size(); ++i) {
    auto r = ExecuteOwned(std::move(stmts[i]));
    if (!r.ok()) return AtScriptStatement(i + 1, r.status());
    last = std::move(r).value();
  }
  return last;
}

Result<std::string> Session::Explain(const std::string& mtsql,
                                     const ExplainOptions& options,
                                     engine::ResultSet* analyze_result) {
  engine::Database::StatsFrame frame(mw_->db());
  Middleware::MetaGuard meta(mw_, /*exclusive=*/false);
  MTB_ASSIGN_OR_RETURN(sql::Stmt stmt, sql::ParseStatement(mtsql));
  MTB_ASSIGN_OR_RETURN(std::vector<int64_t> dataset, ResolveDataset(stmt));
  audit::AuditReport report;
  MTB_ASSIGN_OR_RETURN(
      auto stmts,
      RewriteWithDataset(stmt, dataset, options.audit ? &report : nullptr));
  engine::verify::VerifyContext vctx;
  if (options.verify || options.analyze) {
    vctx = MakeVerifyContext(dataset);
    // The verifier follows UDF body plans; replan any staled by DDL first.
    mw_->db()->EnsureUdfPlansFresh();
  }
  if (options.analyze) {
    // ANALYZE executes the plans, so install this session's verify context
    // first — enforcement (debug builds / MTBASE_VERIFY_PLANS=1) proves the
    // same invariants a plain execution of the statement would.
    mw_->db()->set_verify_context(MakeVerifyContext(dataset));
  }
  std::string out;
  for (size_t i = 0; i < stmts.size(); ++i) {
    const sql::Stmt& s = stmts[i];
    if (s.kind != sql::Stmt::Kind::kSelect) continue;
    std::string text;
    if (options.analyze) {
      MTB_ASSIGN_OR_RETURN(
          text, mw_->db()->ExplainAnalyzeSelect(
                    *s.select, options.verify ? &vctx : nullptr,
                    analyze_result));
    } else {
      MTB_ASSIGN_OR_RETURN(
          text,
          engine::ExplainSelect(mw_->db()->catalog(), mw_->db()->udfs(),
                                *s.select, mw_->db()->planner_options(),
                                options.verify ? &vctx : nullptr));
    }
    out += text;
    // Fixed footer order: the engine renders the verify and analyze lines
    // above, the audit footer always comes last.
    if (options.audit && i < report.statements.size()) {
      out += "[audit: " + report.statements[i].Summary() + "]\n";
    }
  }
  return out;
}

Result<std::string> Session::Rewrite(const std::string& mtsql) {
  engine::Database::StatsFrame frame(mw_->db());
  Middleware::MetaGuard meta(mw_, /*exclusive=*/false);
  MTB_ASSIGN_OR_RETURN(sql::Stmt stmt, sql::ParseStatement(mtsql));
  MTB_ASSIGN_OR_RETURN(auto stmts, RewriteStmt(stmt, nullptr));
  std::string out;
  for (const auto& s : stmts) {
    if (!out.empty()) out += ";\n";
    out += sql::PrintStmt(s);
  }
  return out;
}

}  // namespace mt
}  // namespace mtbase
