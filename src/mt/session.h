// MTBase middleware and client sessions (paper Figure 4).
//
// The Middleware owns the MT meta data (schema comparability, conversion
// pairs, privileges, tenant registry) and sits in front of an engine
// Database. A Session represents one client connection: the client's ttid C
// is fixed at connection time, the SCOPE runtime parameter defines D, and
// every statement is rewritten to plain SQL, printed and sent to the engine.
//
// The execution API is prepared-statement shaped: Session::Prepare() parses
// an MTSQL query or DML statement once and returns a PreparedQuery whose
// Execute() caches the rewritten SQL *and* the engine plans, keyed by a
// compilation fingerprint (client ttid, optimization level, scope/dataset,
// privilege/schema/tenant epochs and the engine catalog version). SET SCOPE,
// GRANT/REVOKE, DDL and tenant registration move an epoch and transparently
// invalidate; re-executing under an unchanged fingerprint skips the parser,
// the rewriter and the planner entirely.
#ifndef MTBASE_MT_SESSION_H_
#define MTBASE_MT_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "mt/audit/audit.h"
#include "mt/conversion.h"
#include "mt/mt_schema.h"
#include "mt/optimizer.h"
#include "mt/plan_cache.h"
#include "mt/privilege.h"
#include "mt/rewriter.h"
#include "mt/scope.h"

namespace mtbase {
namespace mt {

class Session;

/// Everything a cached rewrite's validity depends on. Compared field-wise on
/// every PreparedQuery::Execute — the hit path stays allocation-free (the
/// key is only materialized when recompiling).
struct CompilationKey {
  bool valid = false;  // false until the first successful compile
  int64_t client = 0;
  OptLevel level = OptLevel::kO4;
  Scope::Kind scope_kind = Scope::Kind::kDefault;
  std::string scope_text;  // canonical: scopes are only set via Scope::Parse
  uint64_t privilege_epoch = 0;
  uint64_t schema_epoch = 0;
  uint64_t tenant_epoch = 0;
  uint64_t conversion_epoch = 0;
  uint64_t engine_version = 0;
  /// Complex scopes only: the resolved D' (data-dependent, re-resolved and
  /// re-compared on every execution).
  std::vector<int64_t> dataset;
};

class Middleware {
 public:
  /// Wrapping a Database in a Middleware enables the engine's shared
  /// dictionary-conversion cache on it: the middleware controls every write
  /// path that could change a conversion dictionary (DML moves the catalog
  /// data version, conversion registration bumps the external epoch via the
  /// registry hook installed here), so cross-statement caching of immutable
  /// conversion UDF results is safe.
  explicit Middleware(engine::Database* db) : db_(db) {
    db_->EnableSharedUdfCache();
    conversions_.set_on_register([db] { db->BumpSharedUdfEpoch(); });
  }

  engine::Database* db() { return db_; }
  MTSchema* schema() { return &schema_; }
  const MTSchema* schema() const { return &schema_; }
  /// Conversion registration goes through the registry directly; its
  /// on-register hook (installed in the constructor) moves the shared-UDF-
  /// cache epoch on every path, so results cached under an old registration
  /// are never served.
  ConversionRegistry* conversions() { return &conversions_; }
  PrivilegeManager* privileges() { return &privileges_; }

  /// Tenants known to the system (kept sorted). The empty simple scope
  /// ("IN ()") and o1's D-filter elision both resolve against this list.
  /// Returns by value: registration from another session may mutate the
  /// list concurrently; the copy is taken under the meta lock.
  void RegisterTenant(int64_t ttid);
  std::vector<int64_t> tenants() const;
  bool IsAllTenants(const std::vector<int64_t>& dataset) const;

  /// Monotonic counter bumped by RegisterTenant; part of every prepared
  /// query's fingerprint (datasets like "IN ()" resolve against the
  /// registry, so registration must invalidate cached rewrites).
  uint64_t tenant_epoch() const {
    return tenant_epoch_.load(std::memory_order_acquire);
  }

  /// Cross-session compiled-statement cache (see mt/plan_cache.h). Sessions
  /// consult it on every fingerprint miss and publish every successful
  /// compilation.
  SharedPlanCache* plan_cache() { return &plan_cache_; }

  /// RAII reader/writer lock over the MT meta state (schema, privileges,
  /// conversions, tenant registry). Statement execution holds it shared;
  /// meta mutations (GRANT/REVOKE, MTSQL DDL, tenant registration) hold it
  /// exclusive. Re-entrant per thread: a nested guard on the same middleware
  /// is a no-op adopting the outer mode, so nested statement machinery
  /// (complex-scope resolution, GRANT TO ALL dataset resolution) never
  /// self-deadlocks. Lock order: meta lock, then the engine statement lock.
  class MetaGuard {
   public:
    MetaGuard(const Middleware* mw, bool exclusive);
    ~MetaGuard();
    MetaGuard(const MetaGuard&) = delete;
    MetaGuard& operator=(const MetaGuard&) = delete;

   private:
    const Middleware* mw_;
    bool owns_ = false;
    bool exclusive_ = false;
    const Middleware* prev_owner_ = nullptr;
    int prev_depth_ = 0;
  };

  /// Intra-query parallelism budget for the engine behind this middleware
  /// (PlannerOptions::max_threads; 0 = auto via MTBASE_THREADS /
  /// hardware_concurrency, 1 = serial). Changing it moves the engine's
  /// compilation version, which every PreparedQuery fingerprints — cached
  /// rewrites and plans transparently recompile under the new budget.
  void SetMaxThreads(int max_threads);
  int max_threads() const { return db_->planner_options().max_threads; }

  /// Test-only: mutate each rewritten statement before it is audited,
  /// optimized and compiled. The negative audit suites install the
  /// mt/audit/mutators.h mutators here to prove each invariant violation is
  /// caught; pass nullptr to uninstall.
  void set_rewrite_mutation_hook_for_testing(
      std::function<void(sql::Stmt*)> hook) {
    rewrite_mutation_hook_ = std::move(hook);
  }
  const std::function<void(sql::Stmt*)>& rewrite_mutation_hook() const {
    return rewrite_mutation_hook_;
  }

 private:
  friend class MetaGuard;

  engine::Database* db_;
  MTSchema schema_;
  ConversionRegistry conversions_;
  PrivilegeManager privileges_;
  std::vector<int64_t> tenants_;
  std::atomic<uint64_t> tenant_epoch_{0};
  SharedPlanCache plan_cache_;
  /// Guards schema_ / conversions_ / privileges_ / tenants_ structure (their
  /// epochs are atomics readable without it). See MetaGuard.
  mutable std::shared_mutex meta_mu_;
  static thread_local const Middleware* tl_meta_owner_;
  static thread_local int tl_meta_depth_;
  std::function<void(sql::Stmt*)> rewrite_mutation_hook_;
};

/// What Session::Explain annotates beyond the engine's plan rendering. The
/// footers compose in a fixed order: the verifier's `[verify: ...]` line
/// (rendered by the engine), then the `[analyze: ...]` statement footer,
/// then the auditor's `[audit: ...]` line — always last.
struct ExplainOptions {
  /// EXPLAIN (VERIFY): run each physical plan through the static
  /// PlanVerifier and append `[verify: ok]` / `[verify: FAILED <codes>]`.
  bool verify = false;
  /// EXPLAIN (AUDIT): run the rewrite through the RewriteAuditor and append
  /// `[audit: <summary>]` per statement (StatementAudit::Summary()). The
  /// annotation never refuses: violating rewrites explain with their FAILED
  /// summary even under enforcement.
  bool audit = false;
  /// EXPLAIN (ANALYZE): actually execute each rewritten SELECT with
  /// per-operator instrumentation, annotate every plan line with its
  /// `[actual: ...]` measurements and append an `[analyze: ...]` statement
  /// footer (docs/observability.md). Unlike verify/audit this runs the
  /// query; plan verification is enforced exactly as for a normal execution.
  bool analyze = false;
};

/// An MTSQL statement parsed once and executable many times. The first
/// Execute() (and every Execute() after the fingerprint moved) resolves the
/// dataset, rewrites, optimizes, prints and prepares the engine plans; an
/// Execute() under an unchanged fingerprint reuses all of it and only runs
/// the compiled plans (ExecStats::rewrite_cache_hits / plan_cache_hits).
///
/// Complex scopes ("FROM ... WHERE ...") are data-dependent, so their
/// dataset is re-resolved on every Execute and folded into the fingerprint;
/// simple and default scopes derive purely from the epochs and skip
/// resolution on a hit.
class PreparedQuery {
 public:
  PreparedQuery(PreparedQuery&&) = default;
  PreparedQuery& operator=(PreparedQuery&&) = default;

  /// Execute with `params` bound to the statement's $n / ? placeholders.
  /// Parameters pass through the rewriter untouched (they are constants in
  /// C's own format, like literals) and bind at the engine.
  Result<engine::ResultSet> Execute(const std::vector<Value>& params = {});

  /// The MTSQL text this handle was prepared from.
  const std::string& mtsql() const { return mtsql_; }
  /// The currently cached rewritten SQL (empty before the first Execute).
  const std::string& sql() const { return sql_; }
  /// Number of parameter slots the statement references.
  int param_count() const { return param_count_; }

 private:
  friend class Session;
  PreparedQuery(Session* session, sql::Stmt stmt, std::string mtsql);

  Status Recompile(const std::vector<int64_t>& dataset);
  /// The execution body. Execute() wraps it with the observability surface
  /// (session-layer trace record, execute span, metrics).
  Result<engine::ResultSet> ExecuteImpl(const std::vector<Value>& params);

  Session* session_;
  std::string mtsql_;
  sql::Stmt stmt_;
  int param_count_ = 0;
  CompilationKey key_;  // invalid until the first successful compile
  std::string sql_;
  /// Compiled engine plans, shared with the middleware's cross-session plan
  /// cache: a fingerprint miss first consults the cache (adopting another
  /// session's compilation of the same statement under identical state)
  /// before recompiling, and every successful recompile publishes here.
  /// The vector is immutable once built; engine::PreparedPlan handles are
  /// internally synchronized, so many sessions execute one entry at once.
  std::shared_ptr<std::vector<engine::PreparedPlan>> plans_;
};

class Session {
 public:
  Session(Middleware* mw, int64_t client_ttid)
      : mw_(mw), client_(client_ttid) {}

  int64_t client() const { return client_; }
  Middleware* middleware() { return mw_; }

  /// Tear the session down: statements of this session queued at admission
  /// control abort with a clean error instead of executing, and new
  /// Execute() calls are refused. In-flight statements finish normally.
  void Close();
  bool closed() const { return closed_->load(std::memory_order_acquire); }

  void set_optimization_level(OptLevel level) { level_ = level; }
  OptLevel optimization_level() const { return level_; }

  /// Parse an MTSQL query or DML statement once for repeated execution.
  /// SET SCOPE, DCL and DDL are session/metadata operations and cannot be
  /// prepared — run them through Execute().
  Result<PreparedQuery> Prepare(const std::string& mtsql);

  /// Execute one MTSQL statement (SET SCOPE, DDL, DML, DCL or query).
  /// Queries and DML run through the prepared path (prepare + execute).
  Result<engine::ResultSet> Execute(const std::string& mtsql);
  /// Execute a ';'-separated MTSQL script; returns the last result. Errors
  /// are prefixed with the 1-based statement index.
  Result<engine::ResultSet> ExecuteScript(const std::string& mtsql);

  /// Rewrite a query without executing it (returns the SQL text that would
  /// be sent to the DBMS) — used by tests, examples and the rewrite explorer.
  Result<std::string> Rewrite(const std::string& mtsql);

  /// Rewrite a query and return the engine's physical plan rendering —
  /// shows how D-filters, ttid joins and inlined conversion joins execute.
  /// With `verify` — the EXPLAIN (VERIFY) surface — each plan additionally
  /// runs through the static verifier under this session's expected tenant
  /// set and a `[verify: ok]` / `[verify: FAILED <codes>]` line is appended.
  Result<std::string> Explain(const std::string& mtsql, bool verify = false) {
    ExplainOptions options;
    options.verify = verify;
    return Explain(mtsql, options);
  }
  /// Full EXPLAIN surface: `options.audit` additionally runs the rewrite
  /// through the RewriteAuditor and appends an `[audit: ...]` footer per
  /// statement; `options.analyze` executes each SELECT instrumented and adds
  /// `[actual: ...]` annotations plus an `[analyze: ...]` footer. Footer
  /// order is fixed: verify, analyze, audit. With `analyze_result` non-null
  /// the instrumented run's result set is returned through it (tests prove
  /// byte-identity against an uninstrumented execution).
  Result<std::string> Explain(const std::string& mtsql,
                              const ExplainOptions& options,
                              engine::ResultSet* analyze_result = nullptr);

  Status SetScope(const std::string& scope_text);
  const Scope& scope() const { return scope_; }

  /// The SQL text of the last rewritten statement sent to the engine.
  const std::string& last_sql() const { return last_sql_; }

  /// Resolve the current dataset D (evaluating complex scopes) and prune it
  /// against privileges for the tables of `stmt` (D'; paper section 3).
  Result<std::vector<int64_t>> ResolveDataset(const sql::Stmt& stmt);

 private:
  friend class PreparedQuery;

  Result<engine::ResultSet> ExecuteStmt(const sql::Stmt& stmt);
  /// Route an owned statement: queries and DML through the prepared path,
  /// everything else through ExecuteStmt.
  Result<engine::ResultSet> ExecuteOwned(sql::Stmt stmt);
  Result<std::vector<sql::Stmt>> RewriteStmt(const sql::Stmt& stmt,
                                             std::vector<int64_t>* dataset_out);
  /// Rewrite + optimize against an already resolved dataset D'. When the
  /// rewrite auditor is enabled (audit::AuditEnabled) the rewritten
  /// statements are audited before and after optimization and audit failures
  /// refuse compilation — unless `audit_out` is non-null (the EXPLAIN
  /// (AUDIT) surface), which always audits and reports instead of refusing.
  Result<std::vector<sql::Stmt>> RewriteWithDataset(
      const sql::Stmt& stmt, const std::vector<int64_t>& dataset,
      audit::AuditReport* audit_out = nullptr);
  /// Does `key` still describe the current session/middleware state
  /// (everything except a complex scope's dataset)? Allocation-free.
  bool MatchesCompilationKey(const CompilationKey& key) const;
  /// Materialize the current compilation key (dataset left empty).
  CompilationKey CurrentCompilationKey() const;
  Status HandleGrant(const sql::GrantStmt& grant);
  RewriteOptions OptionsFor(const std::vector<int64_t>& dataset) const;
  /// The assumptions the engine's PlanVerifier may make about plans compiled
  /// from this session's statements: tenant-isolation checking on, expected
  /// tenant set D', unfiltered access admitted exactly when o1 elided the
  /// D-filters. Installed on the engine database before every compile.
  engine::verify::VerifyContext MakeVerifyContext(
      const std::vector<int64_t>& dataset) const;
  /// The provenance the rewrite auditor may assume about statements rewritten
  /// for this session under dataset D'.
  audit::AuditContext MakeAuditContext(
      const std::vector<int64_t>& dataset) const;
  void CollectTsTables(const sql::Stmt& stmt,
                       std::vector<std::string>* out) const;

  Middleware* mw_;
  int64_t client_;
  Scope scope_ = Scope::Default();
  OptLevel level_ = OptLevel::kO4;
  /// Set by Close(); installed as the admission-wait cancel token around
  /// every statement this session executes. Shared so a PreparedQuery
  /// blocked in an admission queue observes the flip even while Close()
  /// runs on another thread.
  std::shared_ptr<std::atomic<bool>> closed_ =
      std::make_shared<std::atomic<bool>>(false);
  std::string last_sql_;
  /// Session-layer trace slot (obs::TraceRecordScope): the active MTSQL
  /// statement's trace record, or null outside a traced statement. Distinct
  /// from the engine Database's slot — with MTBASE_TRACE set, one statement
  /// emits a session-layer record (parse/rewrite/audit/execute spans) plus
  /// an engine-layer record per SQL statement sent down.
  obs::StatementTrace* active_trace_ = nullptr;
};

}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_SESSION_H_
