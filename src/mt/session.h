// MTBase middleware and client sessions (paper Figure 4).
//
// The Middleware owns the MT meta data (schema comparability, conversion
// pairs, privileges, tenant registry) and sits in front of an engine
// Database. A Session represents one client connection: the client's ttid C
// is fixed at connection time, the SCOPE runtime parameter defines D, and
// every statement is rewritten to plain SQL, printed and sent to the engine.
#ifndef MTBASE_MT_SESSION_H_
#define MTBASE_MT_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "mt/conversion.h"
#include "mt/mt_schema.h"
#include "mt/optimizer.h"
#include "mt/privilege.h"
#include "mt/rewriter.h"
#include "mt/scope.h"

namespace mtbase {
namespace mt {

class Middleware {
 public:
  explicit Middleware(engine::Database* db) : db_(db) {}

  engine::Database* db() { return db_; }
  MTSchema* schema() { return &schema_; }
  const MTSchema* schema() const { return &schema_; }
  ConversionRegistry* conversions() { return &conversions_; }
  PrivilegeManager* privileges() { return &privileges_; }

  /// Tenants known to the system (kept sorted). The empty simple scope
  /// ("IN ()") and o1's D-filter elision both resolve against this list.
  void RegisterTenant(int64_t ttid);
  const std::vector<int64_t>& tenants() const { return tenants_; }
  bool IsAllTenants(const std::vector<int64_t>& dataset) const;

 private:
  engine::Database* db_;
  MTSchema schema_;
  ConversionRegistry conversions_;
  PrivilegeManager privileges_;
  std::vector<int64_t> tenants_;
};

class Session {
 public:
  Session(Middleware* mw, int64_t client_ttid)
      : mw_(mw), client_(client_ttid) {}

  int64_t client() const { return client_; }
  Middleware* middleware() { return mw_; }

  void set_optimization_level(OptLevel level) { level_ = level; }
  OptLevel optimization_level() const { return level_; }

  /// Execute one MTSQL statement (SET SCOPE, DDL, DML, DCL or query).
  Result<engine::ResultSet> Execute(const std::string& mtsql);
  /// Execute a ';'-separated MTSQL script; returns the last result.
  Result<engine::ResultSet> ExecuteScript(const std::string& mtsql);

  /// Rewrite a query without executing it (returns the SQL text that would
  /// be sent to the DBMS) — used by tests, examples and the rewrite explorer.
  Result<std::string> Rewrite(const std::string& mtsql);

  /// Rewrite a query and return the engine's physical plan rendering —
  /// shows how D-filters, ttid joins and inlined conversion joins execute.
  Result<std::string> Explain(const std::string& mtsql);

  Status SetScope(const std::string& scope_text);
  const Scope& scope() const { return scope_; }

  /// The SQL text of the last rewritten statement sent to the engine.
  const std::string& last_sql() const { return last_sql_; }

  /// Resolve the current dataset D (evaluating complex scopes) and prune it
  /// against privileges for the tables of `stmt` (D'; paper section 3).
  Result<std::vector<int64_t>> ResolveDataset(const sql::Stmt& stmt);

 private:
  Result<engine::ResultSet> ExecuteStmt(const sql::Stmt& stmt);
  Result<std::vector<sql::Stmt>> RewriteStmt(const sql::Stmt& stmt,
                                             std::vector<int64_t>* dataset_out);
  Status HandleGrant(const sql::GrantStmt& grant);
  RewriteOptions OptionsFor(const std::vector<int64_t>& dataset) const;
  void CollectTsTables(const sql::Stmt& stmt,
                       std::vector<std::string>* out) const;

  Middleware* mw_;
  int64_t client_;
  Scope scope_ = Scope::Default();
  OptLevel level_ = OptLevel::kO4;
  std::string last_sql_;
};

}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_SESSION_H_
