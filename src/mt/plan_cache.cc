#include "mt/plan_cache.h"

#include "engine/obs/metrics.h"

namespace mtbase {
namespace mt {

SharedPlanCache::SharedPlanCache(size_t capacity) : capacity_(capacity) {}

bool SharedPlanCache::Lookup(const std::string& key, CachedPlans* out) {
  auto* metrics = obs::MetricsRegistry::Global();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    metrics->Add("mtbase_mt_plan_cache_misses_total");
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->second;
  ++hits_;
  metrics->Add("mtbase_mt_plan_cache_hits_total");
  return true;
}

void SharedPlanCache::Insert(const std::string& key, CachedPlans entry) {
  auto* metrics = obs::MetricsRegistry::Global();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = std::move(entry);
  } else {
    lru_.emplace_front(key, std::move(entry));
    index_[key] = lru_.begin();
    EvictOverCapacityLocked();
  }
  metrics->Add("mtbase_mt_plan_cache_inserts_total");
}

void SharedPlanCache::EvictOverCapacityLocked() {
  auto* metrics = obs::MetricsRegistry::Global();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    metrics->Add("mtbase_mt_plan_cache_evictions_total");
  }
}

size_t SharedPlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t SharedPlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void SharedPlanCache::set_capacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n;
  EvictOverCapacityLocked();
}

void SharedPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

uint64_t SharedPlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t SharedPlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t SharedPlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace mt
}  // namespace mtbase
