#include "mt/mt_schema.h"

#include <algorithm>

#include "common/str_util.h"

namespace mtbase {
namespace mt {

const MTColumnInfo* MTTableInfo::FindColumn(const std::string& col) const {
  for (const auto& c : columns) {
    if (EqualsIgnoreCase(c.name, col)) return &c;
  }
  return nullptr;
}

Status MTSchema::RegisterTable(const sql::CreateTableStmt& ct) {
  std::string key = ToLowerCopy(ct.name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("MT table " + ct.name + " already exists");
  }
  MTTableInfo info;
  info.name = ct.name;
  info.generality = ct.mt_specific ? TableGenerality::kTenantSpecific
                                   : TableGenerality::kGlobal;
  for (const auto& c : ct.columns) {
    MTColumnInfo col;
    col.name = c.name;
    col.type = c.type;
    col.comparability = c.comparability;
    if (col.comparability == sql::Comparability::kDefault) {
      col.comparability = ct.mt_specific ? sql::Comparability::kTenantSpecific
                                         : sql::Comparability::kComparable;
    }
    if (!ct.mt_specific &&
        col.comparability != sql::Comparability::kComparable) {
      return Status::InvalidArgument(
          "global tables can only have comparable attributes (" + ct.name +
          "." + c.name + ")");
    }
    col.to_universal_fn = c.to_universal_fn;
    col.from_universal_fn = c.from_universal_fn;
    if (col.convertible() &&
        (col.to_universal_fn.empty() || col.from_universal_fn.empty())) {
      return Status::InvalidArgument(
          "convertible attribute " + c.name +
          " requires @toUniversal @fromUniversal function names");
    }
    info.columns.push_back(std::move(col));
  }
  tables_[key] = std::move(info);
  ++epoch_;
  return Status::OK();
}

Status MTSchema::DropTable(const std::string& name) {
  if (!tables_.erase(ToLowerCopy(name))) {
    return Status::NotFound("MT table " + name + " does not exist");
  }
  ++epoch_;
  return Status::OK();
}

const MTTableInfo* MTSchema::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLowerCopy(name));
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> MTSchema::TenantSpecificTables() const {
  std::vector<std::string> out;
  for (const auto& [key, info] : tables_) {
    if (info.tenant_specific()) out.push_back(info.name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mt
}  // namespace mtbase
