// Cross-session shared plan cache (serving layer).
//
// One Middleware serves many concurrent sessions, and sessions of the same
// tenant routinely prepare the same MTSQL statements. Each PreparedQuery
// already caches its own rewrite + engine plans keyed by a compilation
// fingerprint; this cache shares those compiled artifacts *across* handles
// and sessions, keyed by the serialized fingerprint plus the statement text.
// A fresh session executing a statement some other session already compiled
// under identical state (client, opt level, scope, dataset, all epochs,
// engine catalog version) adopts the shared plans and skips the parser, the
// rewriter, the optimizer, the auditor and the planner entirely.
//
// Invalidation is free: every epoch that invalidates a PreparedQuery's
// private fingerprint (SET SCOPE, GRANT/REVOKE, MT DDL, tenant registration,
// conversion registration, engine catalog/options version) is part of the
// key, so state changes simply stop matching old entries, and the LRU sweep
// retires them. Entries hold engine::PreparedPlan handles, which are
// themselves concurrency-safe and self-recompiling, so a cached entry can be
// executed by many sessions at once.
#ifndef MTBASE_MT_PLAN_CACHE_H_
#define MTBASE_MT_PLAN_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/database.h"

namespace mtbase {
namespace mt {

/// One cached compilation: the printed SQL sent to the engine and the shared,
/// immutable vector of prepared engine plans (one per rewritten statement).
struct CachedPlans {
  std::string sql;
  std::shared_ptr<std::vector<engine::PreparedPlan>> plans;
};

/// Thread-safe LRU cache of compiled statements, shared by every session of
/// one Middleware. Hit/miss/insert/evict counts feed the global
/// MetricsRegistry (mtbase_mt_plan_cache_*_total).
class SharedPlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit SharedPlanCache(size_t capacity = kDefaultCapacity);
  SharedPlanCache(const SharedPlanCache&) = delete;
  SharedPlanCache& operator=(const SharedPlanCache&) = delete;

  /// Cache lookup; fills `out` and refreshes recency on a hit. Counts one
  /// hit or miss either way.
  bool Lookup(const std::string& key, CachedPlans* out);

  /// Insert (or refresh) the entry under `key`, evicting the least recently
  /// used entries beyond capacity.
  void Insert(const std::string& key, CachedPlans entry);

  size_t size() const;
  size_t capacity() const;
  /// Shrinking below the current size evicts immediately.
  void set_capacity(size_t n);
  void Clear();

  // -- observability (cumulative, for tests; metrics mirror these) ----------
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  void EvictOverCapacityLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  /// Front = most recently used.
  std::list<std::pair<std::string, CachedPlans>> lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, CachedPlans>>::iterator>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_PLAN_CACHE_H_
