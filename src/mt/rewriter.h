// The canonical MTSQL-to-SQL rewrite algorithm (paper section 3.1).
//
// Maintains the invariant that the result of every (sub-)query is filtered
// according to D' and presented in the format required by client C:
//   * a D-filter `T.ttid IN (...)` is added for every tenant-specific base
//     table occurrence (into the WHERE clause, or into the ON condition when
//     the table sits on the right side of a LEFT JOIN),
//   * convertible attribute references are wrapped in
//     fromUniversal(toUniversal(attr, T.ttid), C),
//   * comparisons between tenant-specific attributes of different table
//     instances get an additional `ttid = ttid` predicate; membership tests
//     become tuple tests `(x, x.ttid) IN (SELECT y, y.ttid ...)`,
//   * `*` is expanded so the invisible ttid column stays hidden,
//   * comparisons of tenant-specific with comparable/convertible attributes
//     are rejected (paper section 2.4.2).
//
// The trivial semantic optimizations (o1, paper section 4.1) are flags that
// suppress the corresponding constructs at emission time.
#ifndef MTBASE_MT_REWRITER_H_
#define MTBASE_MT_REWRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mt/conversion.h"
#include "mt/mt_schema.h"
#include "sql/ast.h"

namespace mtbase {
namespace mt {

struct RewriteOptions {
  /// o1: omit D-filters (valid when D' covers all tenants).
  bool drop_dfilters = false;
  /// o1: omit added ttid join predicates (valid when |D'| = 1).
  bool drop_ttid_joins = false;
  /// o1: omit conversion calls (valid when D' = {C}).
  bool drop_conversions = false;
  /// All registered tenants. When non-empty, RewriteStatement validates the
  /// o1 flags against their legality conditions up front and refuses illegal
  /// combinations with an ILLEGAL_REWRITE_OPTIONS error (the session always
  /// passes this; tests constructing a bare Rewriter may leave it empty to
  /// exercise the flags in isolation).
  std::vector<int64_t> universe;
};

class Rewriter {
 public:
  Rewriter(const MTSchema* schema, const ConversionRegistry* conversions,
           int64_t client, std::vector<int64_t> dataset,
           RewriteOptions options = {})
      : schema_(schema),
        conversions_(conversions),
        client_(client),
        dataset_(std::move(dataset)),
        options_(options) {}

  /// Rewrite an MTSQL statement into one or more SQL statements (DML on a
  /// dataset with several tenants expands into one statement per tenant,
  /// paper Appendix A.2). When options.universe is set, illegal o1 flag
  /// combinations refuse up front (ValidateOptions).
  Result<std::vector<sql::Stmt>> RewriteStatement(const sql::Stmt& stmt);

  /// Check the o1 flags against their legality conditions (paper section
  /// 4.1): drop_ttid_joins needs |D'| = 1, drop_conversions needs D' = {C},
  /// drop_dfilters needs D' = universe. No-op when options.universe is empty.
  Status ValidateOptions() const;

  /// Rewrite a query (Algorithm 1).
  Result<std::unique_ptr<sql::SelectStmt>> RewriteQuery(
      const sql::SelectStmt& query);

  /// Lower an MTSQL CREATE TABLE to plain SQL: tenant-specific tables gain
  /// the ttid meta column, their primary key is extended with ttid and
  /// foreign keys to tenant-specific tables pair the ttids (Appendix A.1).
  Result<sql::CreateTableStmt> LowerCreateTable(
      const sql::CreateTableStmt& ct) const;

 private:
  struct LevelScope {
    // (binding alias, table info); in FROM order. info may be null for
    // relations without MT metadata (derived tables, middleware meta tables).
    std::vector<std::pair<std::string, const MTTableInfo*>> relations;
    const LevelScope* parent = nullptr;
  };

  struct ResolvedAttr {
    std::string alias;
    const MTTableInfo* table = nullptr;
    const MTColumnInfo* column = nullptr;
  };

  /// Resolve a column reference against the scope chain; empty result if the
  /// reference does not name a known MT base-table attribute.
  ResolvedAttr Resolve(const sql::Expr& col, const LevelScope* scope) const;

  Status RewriteSelect(sql::SelectStmt* sel, const LevelScope* parent);
  Status RewriteExpr(sql::ExprPtr* e, const LevelScope* scope);
  Status RewriteComparison(sql::ExprPtr* e, const LevelScope* scope);
  Status RewriteInSubquery(sql::ExprPtr* e, const LevelScope* scope);
  Status ExpandStars(sql::SelectStmt* sel, const LevelScope* scope);
  sql::ExprPtr WrapConversion(sql::ExprPtr attr, const std::string& alias,
                              const MTColumnInfo& col) const;
  sql::ExprPtr MakeDFilter(const std::string& alias) const;

  Result<std::vector<sql::Stmt>> RewriteInsert(const sql::InsertStmt& ins);
  Result<sql::Stmt> RewriteUpdate(const sql::UpdateStmt& up);
  Result<sql::Stmt> RewriteDelete(const sql::DeleteStmt& del);

  const MTSchema* schema_;
  const ConversionRegistry* conversions_;
  int64_t client_;
  std::vector<int64_t> dataset_;
  RewriteOptions options_;
};

}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_REWRITER_H_
