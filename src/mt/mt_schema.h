// MTSQL schema metadata: table generality and attribute comparability.
//
// Paper section 2.2: tables are GLOBAL or tenant-SPECIFIC; attributes of
// tenant-specific tables are COMPARABLE, CONVERTIBLE (with a conversion
// function pair) or tenant-SPECIFIC (paper Table 1).
#ifndef MTBASE_MT_MT_SCHEMA_H_
#define MTBASE_MT_MT_SCHEMA_H_

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace mtbase {
namespace mt {

enum class TableGenerality { kGlobal, kTenantSpecific };

/// The physical meta column holding the data owner in the basic (ST) layout.
inline constexpr const char* kTtidColumn = "ttid";

struct MTColumnInfo {
  std::string name;
  sql::TypeDecl type;
  sql::Comparability comparability = sql::Comparability::kComparable;
  std::string to_universal_fn;    // CONVERTIBLE only
  std::string from_universal_fn;  // CONVERTIBLE only

  bool convertible() const {
    return comparability == sql::Comparability::kConvertible;
  }
  bool tenant_specific() const {
    return comparability == sql::Comparability::kTenantSpecific;
  }
};

struct MTTableInfo {
  std::string name;
  TableGenerality generality = TableGenerality::kGlobal;
  std::vector<MTColumnInfo> columns;  // visible columns; ttid is not listed

  bool tenant_specific() const {
    return generality == TableGenerality::kTenantSpecific;
  }
  const MTColumnInfo* FindColumn(const std::string& col) const;
};

/// Registry of MT table metadata, fed from MTSQL CREATE TABLE statements.
class MTSchema {
 public:
  /// Register a table from its MTSQL DDL, resolving defaulted comparability
  /// (paper section 2.2.1: tables default to GLOBAL; attributes of
  /// tenant-specific tables default to SPECIFIC, attributes of global tables
  /// to COMPARABLE).
  Status RegisterTable(const sql::CreateTableStmt& ct);
  Status DropTable(const std::string& name);

  const MTTableInfo* FindTable(const std::string& name) const;

  std::vector<std::string> TenantSpecificTables() const;

  /// Monotonic counter bumped by every RegisterTable/DropTable. Prepared
  /// MTSQL queries key their cached rewrite on it, so MT DDL transparently
  /// invalidates them. Atomic: sessions read it unlocked on every
  /// fingerprint check while DDL mutates under the exclusive meta lock.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  std::unordered_map<std::string, MTTableInfo> tables_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_MT_SCHEMA_H_
