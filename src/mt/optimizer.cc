#include "mt/optimizer.h"

#include <functional>
#include <set>
#include <unordered_map>

#include "common/str_util.h"
#include "sql/printer.h"

namespace mtbase {
namespace mt {

const char* OptLevelName(OptLevel level) {
  switch (level) {
    case OptLevel::kCanonical:
      return "canonical";
    case OptLevel::kO1:
      return "o1";
    case OptLevel::kO2:
      return "o2";
    case OptLevel::kO3:
      return "o3";
    case OptLevel::kO4:
      return "o4";
    case OptLevel::kInlineOnly:
      return "inl-only";
  }
  return "?";
}

Result<OptLevel> ParseOptLevel(const std::string& name) {
  for (OptLevel l : {OptLevel::kCanonical, OptLevel::kO1, OptLevel::kO2,
                     OptLevel::kO3, OptLevel::kO4, OptLevel::kInlineOnly}) {
    if (EqualsIgnoreCase(name, OptLevelName(l))) return l;
  }
  return Status::InvalidArgument("unknown optimization level " + name);
}

namespace {

bool IsComparisonOp(const std::string& op) {
  return op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

/// The canonical conversion wrapper fromU(toU(x, t), C).
struct WrapMatch {
  const ConversionPair* pair = nullptr;
  sql::Expr* from_call = nullptr;
  sql::Expr* to_call = nullptr;
  sql::Expr* inner = nullptr;
  sql::Expr* ttid = nullptr;
};

bool MatchWrapped(sql::Expr* e, const ConversionRegistry* reg, WrapMatch* m) {
  if (e->kind != sql::ExprKind::kFunction || e->args.size() != 2) return false;
  bool is_to = false;
  const ConversionPair* pair = reg->FindByFunction(e->fname, &is_to);
  if (pair == nullptr || is_to) return false;
  sql::Expr* inner = e->args[0].get();
  if (inner->kind != sql::ExprKind::kFunction || inner->args.size() != 2) {
    return false;
  }
  bool inner_is_to = false;
  const ConversionPair* pair2 = reg->FindByFunction(inner->fname, &inner_is_to);
  if (pair2 != pair || !inner_is_to) return false;
  m->pair = pair;
  m->from_call = e;
  m->to_call = inner;
  m->inner = inner->args[0].get();
  m->ttid = inner->args[1].get();
  return true;
}

bool ContainsConversionCall(const sql::Expr& e, const ConversionRegistry* reg) {
  if (e.kind == sql::ExprKind::kFunction && reg->IsConversionFunction(e.fname)) {
    return true;
  }
  for (const auto& a : e.args) {
    if (ContainsConversionCall(*a, reg)) return true;
  }
  if (e.case_operand && ContainsConversionCall(*e.case_operand, reg)) {
    return true;
  }
  if (e.else_expr && ContainsConversionCall(*e.else_expr, reg)) return true;
  // Sub-queries are optimized separately.
  return false;
}

/// Constant w.r.t. the query: no column references, sub-queries or params.
bool IsConstExpr(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kColumnRef || e.subquery ||
      e.kind == sql::ExprKind::kParam || e.kind == sql::ExprKind::kStar) {
    return false;
  }
  for (const auto& a : e.args) {
    if (!IsConstExpr(*a)) return false;
  }
  if (e.case_operand && !IsConstExpr(*e.case_operand)) return false;
  if (e.else_expr && !IsConstExpr(*e.else_expr)) return false;
  return true;
}

void CollectSubqueries(sql::Expr* e, std::vector<sql::SelectStmt*>* out) {
  if (e->subquery) out->push_back(e->subquery.get());
  for (auto& a : e->args) CollectSubqueries(a.get(), out);
  if (e->case_operand) CollectSubqueries(e->case_operand.get(), out);
  if (e->else_expr) CollectSubqueries(e->else_expr.get(), out);
}

/// All sub-selects directly reachable from this select's clauses and FROM.
void DirectChildSelects(sql::SelectStmt* sel,
                        std::vector<sql::SelectStmt*>* out) {
  std::vector<sql::TableRef*> stack;
  for (auto& t : sel->from) stack.push_back(t.get());
  while (!stack.empty()) {
    sql::TableRef* t = stack.back();
    stack.pop_back();
    if (t->kind == sql::TableRef::Kind::kSubquery) {
      out->push_back(t->subquery.get());
    } else if (t->kind == sql::TableRef::Kind::kJoin) {
      if (t->join_cond) CollectSubqueries(t->join_cond.get(), out);
      stack.push_back(t->left.get());
      stack.push_back(t->right.get());
    }
  }
  for (auto& item : sel->items) CollectSubqueries(item.expr.get(), out);
  if (sel->where) CollectSubqueries(sel->where.get(), out);
  for (auto& g : sel->group_by) CollectSubqueries(g.get(), out);
  if (sel->having) CollectSubqueries(sel->having.get(), out);
  for (auto& o : sel->order_by) CollectSubqueries(o.expr.get(), out);
}

sql::ExprPtr MakeAgg(const std::string& fn, sql::ExprPtr arg) {
  std::vector<sql::ExprPtr> args;
  args.push_back(std::move(arg));
  return sql::Func(fn, std::move(args));
}

sql::ExprPtr MakeCountStar() {
  auto star = std::make_unique<sql::Expr>();
  star->kind = sql::ExprKind::kStar;
  std::vector<sql::ExprPtr> args;
  args.push_back(std::move(star));
  return sql::Func("COUNT", std::move(args));
}

}  // namespace

// ---------------------------------------------------------------------------
// o2: conversion push-up in predicates
// ---------------------------------------------------------------------------

namespace {

class PushUpPass {
 public:
  PushUpPass(const ConversionRegistry* reg, int64_t client)
      : reg_(reg), client_(client) {}

  void Run(sql::SelectStmt* sel) {
    std::vector<sql::SelectStmt*> children;
    DirectChildSelects(sel, &children);
    for (auto* c : children) Run(c);
    if (sel->where) Transform(&sel->where);
    if (sel->having) Transform(&sel->having);
    std::vector<sql::TableRef*> stack;
    for (auto& t : sel->from) stack.push_back(t.get());
    while (!stack.empty()) {
      sql::TableRef* t = stack.back();
      stack.pop_back();
      if (t->kind == sql::TableRef::Kind::kJoin) {
        if (t->join_cond) Transform(&t->join_cond);
        stack.push_back(t->left.get());
        stack.push_back(t->right.get());
      }
    }
  }

 private:
  /// Build fromU(toU(expr, C), ttid): convert a client-format constant into
  /// the row owner's format (paper Listing 15). With a PostgreSQL-style UDF
  /// cache this costs one toU call per query and one fromU call per tenant.
  sql::ExprPtr ConvertConstant(sql::ExprPtr constant, const ConversionPair& p,
                               sql::ExprPtr ttid) {
    std::vector<sql::ExprPtr> to_args;
    to_args.push_back(std::move(constant));
    to_args.push_back(sql::IntLit(client_));
    auto to_call = sql::Func(p.to_universal, std::move(to_args));
    std::vector<sql::ExprPtr> from_args;
    from_args.push_back(std::move(to_call));
    from_args.push_back(std::move(ttid));
    return sql::Func(p.from_universal, std::move(from_args));
  }

  void Transform(sql::ExprPtr* e) {
    sql::Expr& x = **e;
    if (x.kind == sql::ExprKind::kBinary && IsComparisonOp(x.op)) {
      WrapMatch l, r;
      bool lw = MatchWrapped(x.args[0].get(), reg_, &l);
      bool rw = MatchWrapped(x.args[1].get(), reg_, &r);
      bool eq_op = x.op == "=" || x.op == "<>";
      if (lw && rw && l.pair == r.pair &&
          (eq_op || l.pair->order_preserving())) {
        if (sql::PrintExpr(*l.ttid) == sql::PrintExpr(*r.ttid)) {
          // Same owner on both sides: both values share the tenant format,
          // compare raw (bijectivity per tenant).
          auto inner_l = std::move(l.to_call->args[0]);
          auto inner_r = std::move(r.to_call->args[0]);
          x.args[0] = std::move(inner_l);
          x.args[1] = std::move(inner_r);
        } else {
          // Compare in universal format: strip the client conversions
          // (paper Listing 14).
          auto to_l = std::move(x.args[0]->args[0]);
          auto to_r = std::move(x.args[1]->args[0]);
          x.args[0] = std::move(to_l);
          x.args[1] = std::move(to_r);
        }
        return;
      }
      if (lw != rw) {
        WrapMatch& m = lw ? l : r;
        size_t attr_side = lw ? 0 : 1;
        size_t const_side = 1 - attr_side;
        if ((eq_op || m.pair->order_preserving()) &&
            IsConstExpr(*x.args[const_side])) {
          const ConversionPair& pair = *m.pair;
          auto ttid_clone = m.ttid->Clone();
          auto raw_attr = std::move(m.to_call->args[0]);
          x.args[attr_side] = std::move(raw_attr);
          x.args[const_side] = ConvertConstant(std::move(x.args[const_side]),
                                               pair, std::move(ttid_clone));
          return;
        }
      }
      return;
    }
    if (x.kind == sql::ExprKind::kInList && !x.args.empty()) {
      WrapMatch m;
      if (MatchWrapped(x.args[0].get(), reg_, &m)) {
        bool all_const = true;
        for (size_t i = 1; i < x.args.size(); ++i) {
          all_const = all_const && IsConstExpr(*x.args[i]);
        }
        if (all_const) {
          const ConversionPair& pair = *m.pair;
          auto ttid = m.ttid->Clone();
          auto raw_attr = std::move(m.to_call->args[0]);
          x.args[0] = std::move(raw_attr);
          for (size_t i = 1; i < x.args.size(); ++i) {
            x.args[i] =
                ConvertConstant(std::move(x.args[i]), pair, ttid->Clone());
          }
        }
      }
      return;
    }
    if (x.kind == sql::ExprKind::kBetween) {
      WrapMatch m;
      if (MatchWrapped(x.args[0].get(), reg_, &m) &&
          m.pair->order_preserving() && IsConstExpr(*x.args[1]) &&
          IsConstExpr(*x.args[2])) {
        const ConversionPair& pair = *m.pair;
        auto ttid = m.ttid->Clone();
        auto raw_attr = std::move(m.to_call->args[0]);
        x.args[0] = std::move(raw_attr);
        x.args[1] = ConvertConstant(std::move(x.args[1]), pair, ttid->Clone());
        x.args[2] = ConvertConstant(std::move(x.args[2]), pair, ttid->Clone());
      }
      return;
    }
    for (auto& a : x.args) Transform(&a);
    if (x.case_operand) Transform(&x.case_operand);
    if (x.else_expr) Transform(&x.else_expr);
  }

  const ConversionRegistry* reg_;
  int64_t client_;
};

}  // namespace

Status Optimizer::PushUpConversions(sql::SelectStmt* sel) {
  PushUpPass pass(conversions_, client_);
  pass.Run(sel);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// o3: aggregation distribution
// ---------------------------------------------------------------------------

namespace {

enum class ShapeKind { kConvFree, kDistributable, kZero, kNo };

struct Shape {
  ShapeKind kind = ShapeKind::kNo;
  const ConversionPair* pair = nullptr;
  std::string ttid_text;
  const sql::Expr* ttid = nullptr;
};

bool SamePairAndTtid(const Shape& a, const Shape& b) {
  return a.pair == b.pair && a.ttid_text == b.ttid_text;
}

/// Can the (whole) aggregate argument expression be computed on raw tenant
/// values such that converting the per-tenant aggregate afterwards is exact?
Shape AnalyzeShape(const sql::Expr& e, const ConversionRegistry* reg) {
  Shape s;
  if (e.kind == sql::ExprKind::kLiteral) {
    const Value& v = e.literal;
    bool zero = (v.type() == TypeId::kInt && v.int_value() == 0) ||
                (v.type() == TypeId::kDecimal && v.decimal_value().units() == 0);
    s.kind = zero ? ShapeKind::kZero : ShapeKind::kConvFree;
    return s;
  }
  WrapMatch m;
  if (MatchWrapped(const_cast<sql::Expr*>(&e), reg, &m)) {
    if (ContainsConversionCall(*m.inner, reg)) {
      s.kind = ShapeKind::kNo;
      return s;
    }
    s.kind = ShapeKind::kDistributable;
    s.pair = m.pair;
    s.ttid = m.ttid;
    s.ttid_text = sql::PrintExpr(*m.ttid);
    return s;
  }
  if (e.kind == sql::ExprKind::kBinary && (e.op == "*" || e.op == "/")) {
    Shape l = AnalyzeShape(*e.args[0], reg);
    Shape r = AnalyzeShape(*e.args[1], reg);
    auto free_like = [](const Shape& x) {
      return x.kind == ShapeKind::kConvFree || x.kind == ShapeKind::kZero;
    };
    if (free_like(l) && free_like(r)) {
      s.kind = ShapeKind::kConvFree;
      return s;
    }
    // Products commute with the conversion only for multiplicative pairs.
    if (l.kind == ShapeKind::kDistributable && free_like(r) &&
        l.pair->cls == ConversionClass::kMultiplicative) {
      return l;
    }
    if (e.op == "*" && r.kind == ShapeKind::kDistributable && free_like(l) &&
        r.pair->cls == ConversionClass::kMultiplicative) {
      return r;
    }
    s.kind = ShapeKind::kNo;
    return s;
  }
  if (e.kind == sql::ExprKind::kBinary && (e.op == "+" || e.op == "-")) {
    Shape l = AnalyzeShape(*e.args[0], reg);
    Shape r = AnalyzeShape(*e.args[1], reg);
    if (l.kind == ShapeKind::kConvFree && r.kind == ShapeKind::kConvFree) {
      s.kind = ShapeKind::kConvFree;
      return s;
    }
    if (l.kind == ShapeKind::kDistributable &&
        (r.kind == ShapeKind::kZero ||
         (r.kind == ShapeKind::kDistributable && SamePairAndTtid(l, r))) &&
        l.pair->cls == ConversionClass::kMultiplicative) {
      return l;
    }
    if (r.kind == ShapeKind::kDistributable && l.kind == ShapeKind::kZero &&
        r.pair->cls == ConversionClass::kMultiplicative) {
      return r;
    }
    s.kind = ShapeKind::kNo;
    return s;
  }
  if (e.kind == sql::ExprKind::kCase) {
    // Conditions must be conversion-free; branches may mix the *same*
    // distributable conversion with literal zeros (multiplicative pairs map
    // 0 to 0, e.g. TPC-H Q14's CASE ... ELSE 0).
    bool bad = e.case_operand && ContainsConversionCall(*e.case_operand, reg);
    for (size_t i = 0; i + 1 < e.args.size() && !bad; i += 2) {
      bad = ContainsConversionCall(*e.args[i], reg);
    }
    Shape acc;
    bool any_dist = false, any_free = false;
    auto merge = [&](const sql::Expr& branch) {
      if (bad) return;
      Shape b = AnalyzeShape(branch, reg);
      switch (b.kind) {
        case ShapeKind::kNo:
          bad = true;
          break;
        case ShapeKind::kZero:
          break;
        case ShapeKind::kConvFree:
          any_free = true;
          break;
        case ShapeKind::kDistributable:
          if (b.pair->cls != ConversionClass::kMultiplicative ||
              (any_dist && !SamePairAndTtid(acc, b))) {
            bad = true;
            break;
          }
          any_dist = true;
          acc = b;
          break;
      }
    };
    for (size_t i = 1; i < e.args.size(); i += 2) merge(*e.args[i]);
    if (e.else_expr) merge(*e.else_expr);
    if (bad || (any_dist && any_free)) {
      s.kind = ShapeKind::kNo;
      return s;
    }
    if (any_dist) {
      acc.kind = ShapeKind::kDistributable;
      return acc;
    }
    s.kind = any_free ? ShapeKind::kConvFree : ShapeKind::kZero;
    return s;
  }
  if (ContainsConversionCall(e, reg)) {
    s.kind = ShapeKind::kNo;
    return s;
  }
  s.kind = ShapeKind::kConvFree;
  return s;
}

/// Clone the expression with every full conversion wrapper replaced by the
/// raw attribute underneath (values stay in tenant format).
sql::ExprPtr StripWrappers(const sql::Expr& e, const ConversionRegistry* reg) {
  WrapMatch m;
  if (MatchWrapped(const_cast<sql::Expr*>(&e), reg, &m)) {
    return m.inner->Clone();
  }
  auto c = e.Clone();
  std::function<void(sql::ExprPtr*)> walk = [&](sql::ExprPtr* p) {
    WrapMatch mm;
    if (MatchWrapped(p->get(), reg, &mm)) {
      *p = mm.inner->Clone();
      return;
    }
    for (auto& a : (*p)->args) walk(&a);
    if ((*p)->case_operand) walk(&(*p)->case_operand);
    if ((*p)->else_expr) walk(&(*p)->else_expr);
  };
  walk(&c);
  return c;
}

void ReplaceByText(
    sql::ExprPtr* e,
    const std::unordered_map<std::string, std::function<sql::ExprPtr()>>& repl) {
  auto it = repl.find(sql::PrintExpr(**e));
  if (it != repl.end()) {
    *e = it->second();
    return;
  }
  for (auto& a : (*e)->args) ReplaceByText(&a, repl);
  if ((*e)->case_operand) ReplaceByText(&(*e)->case_operand, repl);
  if ((*e)->else_expr) ReplaceByText(&(*e)->else_expr, repl);
  // Sub-queries keep their own structure.
}

bool IsAggFuncName(const std::string& f) {
  return EqualsIgnoreCase(f, "COUNT") || EqualsIgnoreCase(f, "SUM") ||
         EqualsIgnoreCase(f, "AVG") || EqualsIgnoreCase(f, "MIN") ||
         EqualsIgnoreCase(f, "MAX");
}

void CollectAggCallsLocal(sql::Expr* e, std::vector<sql::Expr*>* out) {
  if (e->kind == sql::ExprKind::kFunction && IsAggFuncName(e->fname)) {
    out->push_back(e);
    return;
  }
  for (auto& a : e->args) CollectAggCallsLocal(a.get(), out);
  if (e->case_operand) CollectAggCallsLocal(e->case_operand.get(), out);
  if (e->else_expr) CollectAggCallsLocal(e->else_expr.get(), out);
}

}  // namespace

Status Optimizer::DistributeAggregations(sql::SelectStmt* sel) {
  {
    std::vector<sql::SelectStmt*> children;
    DirectChildSelects(sel, &children);
    for (auto* c : children) {
      MTB_RETURN_IF_ERROR(DistributeAggregations(c));
    }
  }
  if (sel->distinct || sel->from.empty()) return Status::OK();

  // Collect aggregate calls of this level.
  std::vector<sql::Expr*> calls;
  for (auto& item : sel->items) CollectAggCallsLocal(item.expr.get(), &calls);
  if (sel->having) CollectAggCallsLocal(sel->having.get(), &calls);
  for (auto& o : sel->order_by) CollectAggCallsLocal(o.expr.get(), &calls);
  if (calls.empty()) return Status::OK();

  struct AggPlan {
    sql::Expr* call;
    std::string text;
    AggKind kind;
    Shape shape;
    sql::ExprPtr stripped;  // distributable arg on raw tenant values
  };
  std::vector<AggPlan> plans;
  std::unordered_map<std::string, size_t> by_text;
  const ConversionPair* pair = nullptr;
  std::string ttid_text;
  const sql::Expr* ttid_expr = nullptr;
  bool any_distributable = false;

  for (sql::Expr* call : calls) {
    std::string text = sql::PrintExpr(*call);
    if (by_text.count(text)) continue;
    if (call->distinct) return Status::OK();  // not distributable over tenants
    AggPlan p;
    p.call = call;
    p.text = text;
    bool star =
        !call->args.empty() && call->args[0]->kind == sql::ExprKind::kStar;
    if (EqualsIgnoreCase(call->fname, "COUNT")) {
      p.kind = AggKind::kCount;
    } else if (EqualsIgnoreCase(call->fname, "SUM")) {
      p.kind = AggKind::kSum;
    } else if (EqualsIgnoreCase(call->fname, "AVG")) {
      p.kind = AggKind::kAvg;
    } else if (EqualsIgnoreCase(call->fname, "MIN")) {
      p.kind = AggKind::kMin;
    } else {
      p.kind = AggKind::kMax;
    }
    if (star) {
      p.shape.kind = ShapeKind::kConvFree;
    } else {
      p.shape = AnalyzeShape(*call->args[0], conversions_);
      if (p.shape.kind == ShapeKind::kZero) p.shape.kind = ShapeKind::kConvFree;
    }
    if (p.shape.kind == ShapeKind::kNo) return Status::OK();
    if (p.shape.kind == ShapeKind::kDistributable) {
      if (p.kind != AggKind::kCount &&
          !AggDistributesOver(p.kind, p.shape.pair->cls)) {
        return Status::OK();
      }
      if (pair == nullptr) {
        pair = p.shape.pair;
        ttid_text = p.shape.ttid_text;
        ttid_expr = p.shape.ttid;
      } else if (p.shape.ttid_text != ttid_text) {
        return Status::OK();  // conversions from several owners: skip
      }
      any_distributable = true;
      p.stripped = StripWrappers(*call->args[0], conversions_);
    }
    by_text[p.text] = plans.size();
    plans.push_back(std::move(p));
  }
  if (!any_distributable) return Status::OK();

  // Group keys must not contain conversions (they stay in both stages).
  for (const auto& g : sel->group_by) {
    if (ContainsConversionCall(*g, conversions_)) return Status::OK();
  }

  const bool linear = pair->cls == ConversionClass::kLinear;

  // --- build the inner (per-tenant partial aggregation) query -------------
  auto inner = std::make_unique<sql::SelectStmt>();
  inner->from = std::move(sel->from);
  inner->where = std::move(sel->where);
  std::unordered_map<std::string, std::function<sql::ExprPtr()>> repl;
  for (size_t i = 0; i < sel->group_by.size(); ++i) {
    sql::SelectItem item;
    item.expr = sel->group_by[i]->Clone();
    item.alias = "__g" + std::to_string(i);
    inner->items.push_back(std::move(item));
    inner->group_by.push_back(sel->group_by[i]->Clone());
    std::string text = sql::PrintExpr(*sel->group_by[i]);
    std::string alias = "__g" + std::to_string(i);
    repl[text] = [alias]() { return sql::Col(alias); };
  }
  inner->group_by.push_back(ttid_expr->Clone());

  auto wrap_to_universal = [&](sql::ExprPtr agg) {
    std::vector<sql::ExprPtr> args;
    args.push_back(std::move(agg));
    args.push_back(ttid_expr->Clone());
    return sql::Func(pair->to_universal, std::move(args));
  };
  auto wrap_from_universal = [&](sql::ExprPtr agg) {
    std::vector<sql::ExprPtr> args;
    args.push_back(std::move(agg));
    args.push_back(sql::IntLit(client_));
    return sql::Func(pair->from_universal, std::move(args));
  };

  for (size_t j = 0; j < plans.size(); ++j) {
    AggPlan& p = plans[j];
    std::string a1 = "__a" + std::to_string(j);
    std::string a2 = "__a" + std::to_string(j) + "c";
    bool dist = p.shape.kind == ShapeKind::kDistributable;
    bool star =
        !p.call->args.empty() && p.call->args[0]->kind == sql::ExprKind::kStar;
    auto arg_clone = [&]() {
      return dist ? p.stripped->Clone() : p.call->args[0]->Clone();
    };
    auto add_item = [&](sql::ExprPtr e, const std::string& alias) {
      sql::SelectItem item;
      item.expr = std::move(e);
      item.alias = alias;
      inner->items.push_back(std::move(item));
    };
    switch (p.kind) {
      case AggKind::kCount: {
        add_item(star ? MakeCountStar() : MakeAgg("COUNT", arg_clone()), a1);
        repl[p.text] = [a1]() { return MakeAgg("SUM", sql::Col(a1)); };
        break;
      }
      case AggKind::kSum: {
        if (!dist) {
          add_item(MakeAgg("SUM", arg_clone()), a1);
          repl[p.text] = [a1]() { return MakeAgg("SUM", sql::Col(a1)); };
        } else if (linear) {
          // Appendix B: total sum = sum over tenants of count * avg.
          add_item(wrap_to_universal(MakeAgg("AVG", arg_clone())), a1);
          add_item(MakeAgg("COUNT", arg_clone()), a2);
          repl[p.text] = [a1, a2, wrap_from_universal]() {
            return wrap_from_universal(MakeAgg(
                "SUM", sql::Binary("*", sql::Col(a1), sql::Col(a2))));
          };
        } else {
          add_item(wrap_to_universal(MakeAgg("SUM", arg_clone())), a1);
          repl[p.text] = [a1, wrap_from_universal]() {
            return wrap_from_universal(MakeAgg("SUM", sql::Col(a1)));
          };
        }
        break;
      }
      case AggKind::kAvg: {
        if (!dist) {
          add_item(MakeAgg("SUM", arg_clone()), a1);
          add_item(MakeAgg("COUNT", arg_clone()), a2);
          repl[p.text] = [a1, a2]() {
            return sql::Binary("/", MakeAgg("SUM", sql::Col(a1)),
                               MakeAgg("SUM", sql::Col(a2)));
          };
        } else if (linear) {
          add_item(wrap_to_universal(MakeAgg("AVG", arg_clone())), a1);
          add_item(MakeAgg("COUNT", arg_clone()), a2);
          repl[p.text] = [a1, a2, wrap_from_universal]() {
            return wrap_from_universal(sql::Binary(
                "/",
                MakeAgg("SUM", sql::Binary("*", sql::Col(a1), sql::Col(a2))),
                MakeAgg("SUM", sql::Col(a2))));
          };
        } else {
          add_item(wrap_to_universal(MakeAgg("SUM", arg_clone())), a1);
          add_item(MakeAgg("COUNT", arg_clone()), a2);
          repl[p.text] = [a1, a2, wrap_from_universal]() {
            return wrap_from_universal(
                sql::Binary("/", MakeAgg("SUM", sql::Col(a1)),
                            MakeAgg("SUM", sql::Col(a2))));
          };
        }
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        const char* fn = p.kind == AggKind::kMin ? "MIN" : "MAX";
        if (!dist) {
          add_item(MakeAgg(fn, arg_clone()), a1);
          repl[p.text] = [a1, fn]() { return MakeAgg(fn, sql::Col(a1)); };
        } else {
          add_item(wrap_to_universal(MakeAgg(fn, arg_clone())), a1);
          repl[p.text] = [a1, fn, wrap_from_universal]() {
            return wrap_from_universal(MakeAgg(fn, sql::Col(a1)));
          };
        }
        break;
      }
    }
  }

  // --- rebuild the outer query over the partials ---------------------------
  auto part = std::make_unique<sql::TableRef>();
  part->kind = sql::TableRef::Kind::kSubquery;
  part->alias = "__part";
  part->subquery = std::move(inner);
  sel->from.clear();
  sel->from.push_back(std::move(part));
  sel->where = nullptr;
  std::vector<sql::ExprPtr> outer_group;
  for (size_t i = 0; i < sel->group_by.size(); ++i) {
    outer_group.push_back(sql::Col("__g" + std::to_string(i)));
  }
  sel->group_by = std::move(outer_group);

  for (auto& item : sel->items) {
    bool was_colref = item.expr->kind == sql::ExprKind::kColumnRef;
    std::string colname = was_colref ? item.expr->column : "";
    ReplaceByText(&item.expr, repl);
    if (item.alias.empty() && was_colref &&
        item.expr->kind != sql::ExprKind::kColumnRef) {
      item.alias = colname;
    }
  }
  if (sel->having) ReplaceByText(&sel->having, repl);
  for (auto& o : sel->order_by) ReplaceByText(&o.expr, repl);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// o4: conversion function inlining
// ---------------------------------------------------------------------------

namespace {

sql::ExprPtr MakeMetaLookupSubquery(const InlineSpec& spec,
                                    const std::string& col,
                                    sql::ExprPtr tenant_expr) {
  auto sub = std::make_unique<sql::SelectStmt>();
  sql::SelectItem item;
  item.expr = sql::Col(col);
  sub->items.push_back(std::move(item));
  auto t1 = std::make_unique<sql::TableRef>();
  t1->kind = sql::TableRef::Kind::kBase;
  t1->name = spec.tenant_table;
  auto t2 = std::make_unique<sql::TableRef>();
  t2->kind = sql::TableRef::Kind::kBase;
  t2->name = spec.meta_table;
  sub->from.push_back(std::move(t1));
  sub->from.push_back(std::move(t2));
  sub->where = sql::Binary(
      "AND",
      sql::Binary("=", sql::Col(spec.tenant_key), std::move(tenant_expr)),
      sql::Binary("=", sql::Col(spec.tenant_fk), sql::Col(spec.meta_key)));
  return sql::ScalarSubquery(std::move(sub));
}

sql::ExprPtr ApplyInlineTemplate(const InlineSpec& spec, bool is_to,
                                 sql::ExprPtr value, sql::ExprPtr meta_col) {
  if (spec.kind == InlineSpec::Kind::kMultiplicative) {
    return sql::Binary("*", std::move(value), std::move(meta_col));
  }
  // kPrefix
  if (is_to) {
    // SUBSTRING(x, CHAR_LENGTH(prefix) + 1): strip the tenant prefix.
    std::vector<sql::ExprPtr> len_args;
    len_args.push_back(std::move(meta_col));
    auto len = sql::Func("CHAR_LENGTH", std::move(len_args));
    std::vector<sql::ExprPtr> args;
    args.push_back(std::move(value));
    args.push_back(sql::Binary("+", std::move(len), sql::IntLit(1)));
    return sql::Func("SUBSTRING", std::move(args));
  }
  std::vector<sql::ExprPtr> args;
  args.push_back(std::move(meta_col));
  args.push_back(std::move(value));
  return sql::Func("CONCAT", std::move(args));
}

}  // namespace

Status Optimizer::InlineConversions(sql::SelectStmt* sel) {
  {
    std::vector<sql::SelectStmt*> children;
    DirectChildSelects(sel, &children);
    for (auto* c : children) {
      MTB_RETURN_IF_ERROR(InlineConversions(c));
    }
  }
  // Joined meta-table instances of this level, keyed by (ttid text, pair).
  std::unordered_map<std::string, std::string> meta_alias;
  std::vector<sql::ExprPtr> extra_conjuncts;
  // Meta columns referenced outside aggregate arguments in a grouped query
  // (the o3 pattern toU(SUM(x), ttid)); they are functionally dependent on
  // the grouped ttid and must join the GROUP BY list.
  std::vector<sql::ExprPtr> extra_group_cols;
  std::set<std::string> extra_group_texts;
  bool can_join = !sel->from.empty();

  std::function<bool(const sql::Expr&)> contains_agg =
      [&](const sql::Expr& e) {
        if (e.kind == sql::ExprKind::kFunction && IsAggFuncName(e.fname)) {
          return true;
        }
        for (const auto& a : e.args) {
          if (contains_agg(*a)) return true;
        }
        if (e.case_operand && contains_agg(*e.case_operand)) return true;
        if (e.else_expr && contains_agg(*e.else_expr)) return true;
        return false;
      };

  std::function<void(sql::ExprPtr*)> walk = [&](sql::ExprPtr* e) {
    sql::Expr& x = **e;
    bool is_to = false;
    const ConversionPair* pair =
        x.kind == sql::ExprKind::kFunction
            ? conversions_->FindByFunction(x.fname, &is_to)
            : nullptr;
    if (pair != nullptr && pair->inline_spec.kind != InlineSpec::Kind::kNone &&
        x.args.size() == 2) {
      const InlineSpec& spec = pair->inline_spec;
      const std::string col = is_to ? spec.to_col : spec.from_col;
      sql::Expr* tenant_arg = x.args[1].get();
      sql::ExprPtr value = std::move(x.args[0]);
      sql::ExprPtr replacement;
      if (tenant_arg->kind == sql::ExprKind::kColumnRef && can_join) {
        // Join the meta tables once per (owner expr, pair) and read the
        // conversion data from the joined row (paper Listing 17).
        std::string key = pair->name + "|" + sql::PrintExpr(*tenant_arg);
        auto it = meta_alias.find(key);
        if (it == meta_alias.end()) {
          std::string ta = "__it" + std::to_string(inline_counter_);
          std::string ma = "__im" + std::to_string(inline_counter_);
          ++inline_counter_;
          auto t1 = std::make_unique<sql::TableRef>();
          t1->kind = sql::TableRef::Kind::kBase;
          t1->name = spec.tenant_table;
          t1->alias = ta;
          auto t2 = std::make_unique<sql::TableRef>();
          t2->kind = sql::TableRef::Kind::kBase;
          t2->name = spec.meta_table;
          t2->alias = ma;
          sel->from.push_back(std::move(t1));
          sel->from.push_back(std::move(t2));
          extra_conjuncts.push_back(sql::Binary(
              "=", sql::Col(ta, spec.tenant_key), tenant_arg->Clone()));
          extra_conjuncts.push_back(sql::Binary(
              "=", sql::Col(ta, spec.tenant_fk), sql::Col(ma, spec.meta_key)));
          it = meta_alias.emplace(key, ma).first;
        }
        if (contains_agg(*value) && !sel->group_by.empty()) {
          sql::ExprPtr meta_col = sql::Col(it->second, col);
          if (extra_group_texts.insert(sql::PrintExpr(*meta_col)).second) {
            extra_group_cols.push_back(meta_col->Clone());
          }
        }
        replacement = ApplyInlineTemplate(spec, is_to, std::move(value),
                                          sql::Col(it->second, col));
      } else {
        // Tenant known as an expression (typically the client constant):
        // inline as a scalar sub-query, evaluated once per distinct owner
        // (uncorrelated sub-queries are InitPlans).
        replacement = ApplyInlineTemplate(
            spec, is_to, std::move(value),
            MakeMetaLookupSubquery(spec, col, x.args[1]->Clone()));
      }
      *e = std::move(replacement);
      // The value may itself contain conversion calls (the inner toU).
      for (auto& a : (*e)->args) walk(&a);
      return;
    }
    for (auto& a : x.args) walk(&a);
    if (x.case_operand) walk(&x.case_operand);
    if (x.else_expr) walk(&x.else_expr);
    // Sub-queries already processed (children first).
  };

  for (auto& item : sel->items) walk(&item.expr);
  if (sel->where) walk(&sel->where);
  for (auto& g : sel->group_by) walk(&g);
  if (sel->having) walk(&sel->having);
  for (auto& o : sel->order_by) walk(&o.expr);

  for (auto& c : extra_conjuncts) {
    sel->where = sel->where
                     ? sql::Binary("AND", std::move(sel->where), std::move(c))
                     : std::move(c);
  }
  for (auto& g : extra_group_cols) {
    sel->group_by.push_back(std::move(g));
  }
  return Status::OK();
}

Status Optimizer::Optimize(sql::SelectStmt* sel, OptLevel level) {
  switch (level) {
    case OptLevel::kCanonical:
    case OptLevel::kO1:
      return Status::OK();
    case OptLevel::kO2:
      return PushUpConversions(sel);
    case OptLevel::kO3:
      MTB_RETURN_IF_ERROR(PushUpConversions(sel));
      return DistributeAggregations(sel);
    case OptLevel::kO4:
      MTB_RETURN_IF_ERROR(PushUpConversions(sel));
      MTB_RETURN_IF_ERROR(DistributeAggregations(sel));
      return InlineConversions(sel);
    case OptLevel::kInlineOnly:
      return InlineConversions(sel);
  }
  return Status::OK();
}

}  // namespace mt
}  // namespace mtbase
