// Umbrella header: the MTBase public API.
//
//   engine::Database db;                      // the DBMS under the proxy
//   mt::Middleware mw(&db);                   // MTBase middleware
//   ... create MTSQL tables / conversion functions via a session ...
//   mt::Session session(&mw, /*client_ttid=*/0);
//   session.Execute("SET SCOPE = \"IN (0, 1)\"");
//   auto result = session.Execute("SELECT AVG(E_salary) FROM Employees");
#ifndef MTBASE_MT_MTBASE_H_
#define MTBASE_MT_MTBASE_H_

#include "engine/database.h"
#include "mt/conversion.h"
#include "mt/mt_schema.h"
#include "mt/optimizer.h"
#include "mt/privilege.h"
#include "mt/rewriter.h"
#include "mt/scope.h"
#include "mt/session.h"

#endif  // MTBASE_MT_MTBASE_H_
