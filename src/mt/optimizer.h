// MT-specific optimization passes applied to rewritten (plain SQL) queries.
//
// Paper section 4 / Table 6:
//   o1        trivial optimizations           (rewriter flags, see rewriter.h)
//   o2        client presentation push-up + conversion push-up
//   o3        o2 + conversion function distribution
//   o4        o3 + conversion function inlining
//   inl-only  o1 + conversion function inlining
#ifndef MTBASE_MT_OPTIMIZER_H_
#define MTBASE_MT_OPTIMIZER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "mt/conversion.h"
#include "sql/ast.h"

namespace mtbase {
namespace mt {

enum class OptLevel {
  kCanonical,
  kO1,
  kO2,
  kO3,
  kO4,
  kInlineOnly,
};

const char* OptLevelName(OptLevel level);
Result<OptLevel> ParseOptLevel(const std::string& name);

class Optimizer {
 public:
  Optimizer(const ConversionRegistry* conversions, int64_t client)
      : conversions_(conversions), client_(client) {}

  /// Apply the passes implied by `level` to a rewritten query, in place.
  Status Optimize(sql::SelectStmt* sel, OptLevel level);

  /// o2: in comparison predicates, compare in universal format where the
  /// conversion pair allows it, and convert constants instead of attributes
  /// (paper Listings 14/15).
  Status PushUpConversions(sql::SelectStmt* sel);

  /// o3: split aggregations over converted attributes into per-tenant partial
  /// aggregation (tenant format), one conversion per tenant, and final
  /// aggregation — (2N) conversions become (T+1) (paper section 4.2.2,
  /// Listing 16; Appendix B construction for linear pairs).
  Status DistributeAggregations(sql::SelectStmt* sel);

  /// o4: replace conversion UDF calls by their algebraic form, joining the
  /// conversion meta tables (paper Listing 17). Calls whose tenant argument
  /// is the client constant become uncorrelated scalar sub-queries (InitPlan,
  /// evaluated once).
  Status InlineConversions(sql::SelectStmt* sel);

 private:
  const ConversionRegistry* conversions_;
  int64_t client_;
  int inline_counter_ = 0;
};

}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_OPTIMIZER_H_
