#include "mt/audit/normalizer.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "common/str_util.h"
#include "sql/printer.h"

namespace mtbase {
namespace mt {
namespace audit {

namespace {

bool IsComparisonOp(const std::string& op) {
  return op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// The canonical conversion wrapper fromU(toU(x, t), c) — same matching as
/// the optimizer's push-up pass, restated here so the normalizer stays an
/// independent proof of the optimizer (audit.h).
struct WrapMatch {
  const ConversionPair* pair = nullptr;
  sql::Expr* from_call = nullptr;
  sql::Expr* to_call = nullptr;
  sql::Expr* inner = nullptr;  // to_call->args[0]
  sql::Expr* ttid = nullptr;   // to_call->args[1]
};

bool MatchWrapped(sql::Expr* e, const ConversionRegistry* reg, WrapMatch* m) {
  if (reg == nullptr) return false;
  if (e->kind != sql::ExprKind::kFunction || e->args.size() != 2) return false;
  bool is_to = false;
  const ConversionPair* pair = reg->FindByFunction(e->fname, &is_to);
  if (pair == nullptr || is_to) return false;
  sql::Expr* inner = e->args[0].get();
  if (inner->kind != sql::ExprKind::kFunction || inner->args.size() != 2) {
    return false;
  }
  bool inner_is_to = false;
  const ConversionPair* pair2 = reg->FindByFunction(inner->fname, &inner_is_to);
  if (pair2 != pair || !inner_is_to) return false;
  m->pair = pair;
  m->from_call = e;
  m->to_call = inner;
  m->inner = inner->args[0].get();
  m->ttid = inner->args[1].get();
  return true;
}

/// Constant w.r.t. the query: no column references, sub-queries or params.
bool IsConstExpr(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kColumnRef || e.subquery ||
      e.kind == sql::ExprKind::kParam || e.kind == sql::ExprKind::kStar) {
    return false;
  }
  for (const auto& a : e.args) {
    if (!IsConstExpr(*a)) return false;
  }
  if (e.case_operand && !IsConstExpr(*e.case_operand)) return false;
  if (e.else_expr && !IsConstExpr(*e.else_expr)) return false;
  return true;
}

bool IsTtidColRef(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kColumnRef &&
         EqualsIgnoreCase(e.column, kTtidColumn);
}

class Normalizer {
 public:
  Normalizer(const ConversionRegistry* reg, const NormalizeOptions& options)
      : reg_(reg), options_(options) {}

  void NormalizeSelect(sql::SelectStmt* sel) {
    std::vector<sql::TableRef*> stack;
    for (auto& t : sel->from) stack.push_back(t.get());
    while (!stack.empty()) {
      sql::TableRef* t = stack.back();
      stack.pop_back();
      switch (t->kind) {
        case sql::TableRef::Kind::kBase:
          break;
        case sql::TableRef::Kind::kSubquery:
          NormalizeSelect(t->subquery.get());
          break;
        case sql::TableRef::Kind::kJoin:
          NormalizeClause(&t->join_cond);
          stack.push_back(t->left.get());
          stack.push_back(t->right.get());
          break;
      }
    }
    for (auto& item : sel->items) {
      NormalizeExpr(&item.expr);
      // A wrapper elision can leave `attr AS attr`; the un-aliased and the
      // self-aliased projection are the same column under the same name.
      if (!item.alias.empty() &&
          item.expr->kind == sql::ExprKind::kColumnRef &&
          EqualsIgnoreCase(item.expr->column, item.alias)) {
        item.alias.clear();
      }
    }
    NormalizeClause(&sel->where);
    for (auto& g : sel->group_by) NormalizeExpr(&g);
    NormalizeClause(&sel->having);
    for (auto& o : sel->order_by) NormalizeExpr(&o.expr);
  }

 private:
  /// Flatten a same-op chain into leaves, consuming the tree.
  void Flatten(sql::ExprPtr e, const std::string& op,
               std::vector<sql::ExprPtr>* leaves) {
    if (e->kind == sql::ExprKind::kBinary && e->op == op) {
      Flatten(std::move(e->args[0]), op, leaves);
      Flatten(std::move(e->args[1]), op, leaves);
      return;
    }
    leaves->push_back(std::move(e));
  }

  sql::ExprPtr Rebuild(std::vector<sql::ExprPtr> leaves,
                       const std::string& op) {
    sql::ExprPtr acc = std::move(leaves[0]);
    for (size_t i = 1; i < leaves.size(); ++i) {
      acc = sql::Binary(op, std::move(acc), std::move(leaves[i]));
    }
    return acc;
  }

  void SortByText(std::vector<sql::ExprPtr>* leaves) {
    std::stable_sort(leaves->begin(), leaves->end(),
                     [](const sql::ExprPtr& a, const sql::ExprPtr& b) {
                       return sql::PrintExpr(*a) < sql::PrintExpr(*b);
                     });
  }

  /// A D-filter conjunct whose literal set equals the caller-proven set.
  bool IsStrippableDFilter(const sql::Expr& e) const {
    if (options_.strip_dfilter_literals.empty()) return false;
    if (e.kind != sql::ExprKind::kInList || e.negated || e.args.empty()) {
      return false;
    }
    if (!IsTtidColRef(*e.args[0])) return false;
    std::vector<int64_t> values;
    for (size_t i = 1; i < e.args.size(); ++i) {
      const sql::Expr& lit = *e.args[i];
      if (lit.kind != sql::ExprKind::kLiteral ||
          lit.literal.type() != TypeId::kInt) {
        return false;
      }
      values.push_back(lit.literal.int_value());
    }
    std::sort(values.begin(), values.end());
    return values == options_.strip_dfilter_literals;
  }

  /// An added `a.ttid = b.ttid` join predicate across table instances.
  bool IsStrippableTtidJoin(const sql::Expr& e) const {
    if (!options_.strip_ttid_joins) return false;
    return e.kind == sql::ExprKind::kBinary && e.op == "=" &&
           IsTtidColRef(*e.args[0]) && IsTtidColRef(*e.args[1]) &&
           !EqualsIgnoreCase(e.args[0]->qualifier, e.args[1]->qualifier);
  }

  /// WHERE / HAVING / ON: normalize, then strip the o1-elidable conjuncts
  /// the caller proved legal. May null the clause out entirely.
  void NormalizeClause(sql::ExprPtr* clause) {
    if (!*clause) return;
    NormalizeExpr(clause);
    std::vector<sql::ExprPtr> leaves;
    Flatten(std::move(*clause), "AND", &leaves);
    std::vector<sql::ExprPtr> kept;
    for (auto& leaf : leaves) {
      if (IsStrippableDFilter(*leaf) || IsStrippableTtidJoin(*leaf)) continue;
      kept.push_back(std::move(leaf));
    }
    if (kept.empty()) {
      *clause = nullptr;
      return;
    }
    SortByText(&kept);
    *clause = Rebuild(std::move(kept), "AND");
  }

  /// Normal forms of the push-up shapes: one comparison, both the canonical
  /// (wrapped) and the pushed form map to the same universal-format text
  /// (normalizer.h table). Conditions mirror the optimizer exactly — a shape
  /// the optimizer would not touch must not be normalized either, or the
  /// two forms diverge.
  void NormalizeComparison(sql::Expr* e) {
    WrapMatch l, r;
    bool lw = MatchWrapped(e->args[0].get(), reg_, &l);
    bool rw = MatchWrapped(e->args[1].get(), reg_, &r);
    bool eq_op = e->op == "=" || e->op == "<>";
    if (lw && rw && l.pair == r.pair &&
        (eq_op || l.pair->order_preserving())) {
      if (sql::PrintExpr(*l.ttid) == sql::PrintExpr(*r.ttid)) {
        auto inner_l = std::move(l.to_call->args[0]);
        auto inner_r = std::move(r.to_call->args[0]);
        e->args[0] = std::move(inner_l);
        e->args[1] = std::move(inner_r);
      } else {
        auto to_l = std::move(l.from_call->args[0]);
        auto to_r = std::move(r.from_call->args[0]);
        e->args[0] = std::move(to_l);
        e->args[1] = std::move(to_r);
      }
      return;
    }
    if (lw != rw) {
      WrapMatch& m = lw ? l : r;
      size_t wrapped_side = lw ? 0 : 1;
      size_t other_side = 1 - wrapped_side;
      // Canonical: wrapped attribute vs constant. Pushed: raw attribute vs
      // ConvertConstant wrapper (whose inner is the constant). Both map to
      // toU(attr, t) op toU(const, C).
      if ((eq_op || m.pair->order_preserving()) &&
          (IsConstExpr(*m.inner) || IsConstExpr(*e->args[other_side]))) {
        auto outer_ctx = std::move(m.from_call->args[1]);  // C resp. t
        auto to_call = std::move(m.from_call->args[0]);
        std::vector<sql::ExprPtr> args;
        args.push_back(std::move(e->args[other_side]));
        args.push_back(std::move(outer_ctx));
        e->args[other_side] = sql::Func(m.pair->to_universal, std::move(args));
        e->args[wrapped_side] = std::move(to_call);
      }
    }
  }

  void NormalizeInList(sql::Expr* e) {
    WrapMatch m;
    if (MatchWrapped(e->args[0].get(), reg_, &m)) {
      // Canonical: wrapped needle, constant list.
      bool all_const = true;
      for (size_t i = 1; i < e->args.size(); ++i) {
        all_const = all_const && IsConstExpr(*e->args[i]);
      }
      if (!all_const) return;
      auto client_ctx = std::move(m.from_call->args[1]);
      for (size_t i = 1; i < e->args.size(); ++i) {
        std::vector<sql::ExprPtr> args;
        args.push_back(std::move(e->args[i]));
        args.push_back(client_ctx->Clone());
        e->args[i] = sql::Func(m.pair->to_universal, std::move(args));
      }
      e->args[0] = std::move(m.from_call->args[0]);
      return;
    }
    // Pushed: raw needle, every element a ConvertConstant wrapper of the
    // same pair over the same owner.
    if (e->args.size() < 2) return;
    std::vector<WrapMatch> elems(e->args.size());
    const ConversionPair* pair = nullptr;
    std::string owner_text;
    for (size_t i = 1; i < e->args.size(); ++i) {
      if (!MatchWrapped(e->args[i].get(), reg_, &elems[i]) ||
          !IsConstExpr(*elems[i].inner)) {
        return;
      }
      std::string t = sql::PrintExpr(*elems[i].from_call->args[1]);
      if (pair == nullptr) {
        pair = elems[i].pair;
        owner_text = t;
      } else if (elems[i].pair != pair || t != owner_text) {
        return;
      }
    }
    auto owner = elems[1].from_call->args[1]->Clone();
    std::vector<sql::ExprPtr> args;
    args.push_back(std::move(e->args[0]));
    args.push_back(std::move(owner));
    e->args[0] = sql::Func(pair->to_universal, std::move(args));
    for (size_t i = 1; i < e->args.size(); ++i) {
      e->args[i] = std::move(elems[i].from_call->args[0]);
    }
  }

  void NormalizeBetween(sql::Expr* e) {
    WrapMatch m;
    if (MatchWrapped(e->args[0].get(), reg_, &m)) {
      if (!m.pair->order_preserving() || !IsConstExpr(*e->args[1]) ||
          !IsConstExpr(*e->args[2])) {
        return;
      }
      auto client_ctx = std::move(m.from_call->args[1]);
      for (size_t i = 1; i < 3; ++i) {
        std::vector<sql::ExprPtr> args;
        args.push_back(std::move(e->args[i]));
        args.push_back(client_ctx->Clone());
        e->args[i] = sql::Func(m.pair->to_universal, std::move(args));
      }
      e->args[0] = std::move(m.from_call->args[0]);
      return;
    }
    WrapMatch lo, hi;
    if (MatchWrapped(e->args[1].get(), reg_, &lo) &&
        MatchWrapped(e->args[2].get(), reg_, &hi) && lo.pair == hi.pair &&
        lo.pair->order_preserving() && IsConstExpr(*lo.inner) &&
        IsConstExpr(*hi.inner) &&
        sql::PrintExpr(*lo.from_call->args[1]) ==
            sql::PrintExpr(*hi.from_call->args[1])) {
      auto owner = lo.from_call->args[1]->Clone();
      std::vector<sql::ExprPtr> args;
      args.push_back(std::move(e->args[0]));
      args.push_back(std::move(owner));
      e->args[0] = sql::Func(lo.pair->to_universal, std::move(args));
      e->args[1] = std::move(lo.from_call->args[0]);
      e->args[2] = std::move(hi.from_call->args[0]);
    }
  }

  void NormalizeExpr(sql::ExprPtr* p) {
    sql::Expr* e = p->get();
    if (e->subquery) NormalizeSelect(e->subquery.get());
    for (auto& a : e->args) NormalizeExpr(&a);
    if (e->case_operand) NormalizeExpr(&e->case_operand);
    if (e->else_expr) NormalizeExpr(&e->else_expr);

    // o1 legality: elide the whole wrapper (D' = {C} makes it the identity).
    if (options_.elide_wrappers) {
      WrapMatch m;
      if (MatchWrapped(p->get(), reg_, &m)) {
        auto inner = std::move(m.to_call->args[0]);
        *p = std::move(inner);
        return;
      }
    }
    e = p->get();

    // o1 legality: drop the ttid pairing of membership tests (|D'| = 1).
    if (options_.strip_ttid_joins &&
        e->kind == sql::ExprKind::kInSubquery && e->args.size() >= 2 &&
        IsTtidColRef(*e->args.back()) && e->subquery &&
        !e->subquery->items.empty() &&
        e->subquery->items.back().expr->kind == sql::ExprKind::kColumnRef &&
        EqualsIgnoreCase(e->subquery->items.back().expr->column,
                         kTtidColumn)) {
      e->args.pop_back();
      e->subquery->items.pop_back();
      if (!e->subquery->group_by.empty() &&
          IsTtidColRef(*e->subquery->group_by.back())) {
        e->subquery->group_by.pop_back();
      }
    }

    if (e->kind == sql::ExprKind::kBinary && IsComparisonOp(e->op) &&
        e->args.size() == 2) {
      NormalizeComparison(e);
    } else if (e->kind == sql::ExprKind::kInList && !e->args.empty()) {
      NormalizeInList(e);
    } else if (e->kind == sql::ExprKind::kBetween && e->args.size() == 3) {
      NormalizeBetween(e);
    }

    // Deterministic orientation of comparisons and commutative operands.
    if (e->kind == sql::ExprKind::kBinary && e->args.size() == 2) {
      if (e->op == ">" || e->op == ">=") {
        e->op = e->op == ">" ? "<" : "<=";
        std::swap(e->args[0], e->args[1]);
      } else if (e->op == "=" || e->op == "<>") {
        if (sql::PrintExpr(*e->args[0]) > sql::PrintExpr(*e->args[1])) {
          std::swap(e->args[0], e->args[1]);
        }
      } else if (e->op == "AND" || e->op == "OR") {
        std::string op = e->op;
        std::vector<sql::ExprPtr> leaves;
        Flatten(std::move(*p), op, &leaves);
        SortByText(&leaves);
        *p = Rebuild(std::move(leaves), op);
      }
    }
  }

  const ConversionRegistry* reg_;
  const NormalizeOptions& options_;
};

// --- divergence classification ---------------------------------------------

void CollectAllSelects(const sql::Expr& e,
                       std::vector<const sql::SelectStmt*>* out);

void CollectAllSelects(const sql::SelectStmt& sel,
                       std::vector<const sql::SelectStmt*>* out) {
  out->push_back(&sel);
  std::vector<const sql::TableRef*> stack;
  for (const auto& t : sel.from) stack.push_back(t.get());
  while (!stack.empty()) {
    const sql::TableRef* t = stack.back();
    stack.pop_back();
    if (t->kind == sql::TableRef::Kind::kSubquery) {
      CollectAllSelects(*t->subquery, out);
    } else if (t->kind == sql::TableRef::Kind::kJoin) {
      if (t->join_cond) CollectAllSelects(*t->join_cond, out);
      stack.push_back(t->left.get());
      stack.push_back(t->right.get());
    }
  }
  for (const auto& item : sel.items) CollectAllSelects(*item.expr, out);
  if (sel.where) CollectAllSelects(*sel.where, out);
  for (const auto& g : sel.group_by) CollectAllSelects(*g, out);
  if (sel.having) CollectAllSelects(*sel.having, out);
  for (const auto& o : sel.order_by) CollectAllSelects(*o.expr, out);
}

void CollectAllSelects(const sql::Expr& e,
                       std::vector<const sql::SelectStmt*>* out) {
  if (e.subquery) CollectAllSelects(*e.subquery, out);
  for (const auto& a : e.args) CollectAllSelects(*a, out);
  if (e.case_operand) CollectAllSelects(*e.case_operand, out);
  if (e.else_expr) CollectAllSelects(*e.else_expr, out);
}

bool HasConversionCall(const sql::SelectStmt& sel,
                       const ConversionRegistry* reg) {
  std::vector<const sql::SelectStmt*> selects;
  CollectAllSelects(sel, &selects);
  bool found = false;
  std::function<void(const sql::Expr&)> walk = [&](const sql::Expr& e) {
    if (found) return;
    if (e.kind == sql::ExprKind::kFunction &&
        reg->IsConversionFunction(e.fname)) {
      found = true;
      return;
    }
    for (const auto& a : e.args) walk(*a);
    if (e.case_operand) walk(*e.case_operand);
    if (e.else_expr) walk(*e.else_expr);
  };
  for (const sql::SelectStmt* s : selects) {
    for (const auto& item : s->items) walk(*item.expr);
    if (s->where) walk(*s->where);
    for (const auto& g : s->group_by) walk(*g);
    if (s->having) walk(*s->having);
    for (const auto& o : s->order_by) walk(*o.expr);
    std::vector<const sql::TableRef*> stack;
    for (const auto& t : s->from) stack.push_back(t.get());
    while (!stack.empty()) {
      const sql::TableRef* t = stack.back();
      stack.pop_back();
      if (t->kind == sql::TableRef::Kind::kJoin) {
        if (t->join_cond) walk(*t->join_cond);
        stack.push_back(t->left.get());
        stack.push_back(t->right.get());
      }
    }
    if (found) break;
  }
  return found;
}

bool IsInlineMetaTable(const std::string& name,
                       const ConversionRegistry* reg) {
  for (const ConversionPair& p : reg->pairs()) {
    if (p.inline_spec.kind == InlineSpec::Kind::kNone) continue;
    if (EqualsIgnoreCase(name, p.inline_spec.meta_table)) return true;
  }
  return false;
}

}  // namespace

std::string NormalizeSelectText(const sql::SelectStmt& sel,
                                const ConversionRegistry* conversions,
                                const NormalizeOptions& options) {
  NormalizeOptions opts = options;
  std::sort(opts.strip_dfilter_literals.begin(),
            opts.strip_dfilter_literals.end());
  std::unique_ptr<sql::SelectStmt> clone = sel.Clone();
  Normalizer n(conversions, opts);
  n.NormalizeSelect(clone.get());
  return sql::PrintSelect(*clone);
}

EquivalenceCode ClassifyDivergence(const sql::SelectStmt& optimized,
                                   const ConversionRegistry* conversions) {
  std::vector<const sql::SelectStmt*> selects;
  CollectAllSelects(optimized, &selects);
  bool part = false;
  bool inlined = false;
  for (const sql::SelectStmt* s : selects) {
    std::vector<const sql::TableRef*> stack;
    for (const auto& t : s->from) stack.push_back(t.get());
    while (!stack.empty()) {
      const sql::TableRef* t = stack.back();
      stack.pop_back();
      switch (t->kind) {
        case sql::TableRef::Kind::kBase:
          if (StartsWith(t->alias, "__it") || StartsWith(t->alias, "__im") ||
              IsInlineMetaTable(t->name, conversions)) {
            inlined = true;
          }
          break;
        case sql::TableRef::Kind::kSubquery:
          if (t->alias == "__part") part = true;
          break;
        case sql::TableRef::Kind::kJoin:
          stack.push_back(t->left.get());
          stack.push_back(t->right.get());
          break;
      }
    }
  }
  if (inlined) return EquivalenceCode::kDivergeConversionInline;
  if (part) return EquivalenceCode::kDivergeAggDistribution;
  if (HasConversionCall(optimized, conversions)) {
    return EquivalenceCode::kDivergeConversionPushup;
  }
  return EquivalenceCode::kUnknown;
}

}  // namespace audit
}  // namespace mt
}  // namespace mtbase
