#include "mt/audit/type_check.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "engine/schema.h"
#include "sql/printer.h"

namespace mtbase {
namespace mt {
namespace audit {

const char* TypeClassName(TypeClass c) {
  switch (c) {
    case TypeClass::kUnknown:
      return "unknown";
    case TypeClass::kBool:
      return "bool";
    case TypeClass::kNumeric:
      return "numeric";
    case TypeClass::kString:
      return "string";
    case TypeClass::kDate:
      return "date";
    case TypeClass::kInterval:
      return "interval";
  }
  return "?";
}

TypeClass TypeClassOf(TypeId id) {
  switch (id) {
    case TypeId::kNull:
      return TypeClass::kUnknown;
    case TypeId::kBool:
      return TypeClass::kBool;
    case TypeId::kInt:
    case TypeId::kDouble:
    case TypeId::kDecimal:
      return TypeClass::kNumeric;
    case TypeId::kString:
      return TypeClass::kString;
    case TypeId::kDate:
      return TypeClass::kDate;
  }
  return TypeClass::kUnknown;
}

TypeClass TypeClassOfDecl(const sql::TypeDecl& t) { return TypeClassOf(t.id); }

bool TypeClassesComparable(TypeClass a, TypeClass b) {
  if (a == TypeClass::kUnknown || b == TypeClass::kUnknown) return true;
  if (a == b) return true;
  // DATE literals parse as dates but date columns also compare against
  // strings in the dialect; permit the coercion both ways.
  return (a == TypeClass::kString && b == TypeClass::kDate) ||
         (a == TypeClass::kDate && b == TypeClass::kString);
}

namespace {

bool IsComparisonOp(const std::string& op) {
  return op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

bool IsAggName(const std::string& f) {
  return EqualsIgnoreCase(f, "COUNT") || EqualsIgnoreCase(f, "SUM") ||
         EqualsIgnoreCase(f, "AVG") || EqualsIgnoreCase(f, "MIN") ||
         EqualsIgnoreCase(f, "MAX");
}

bool Definite(TypeClass c) { return c != TypeClass::kUnknown; }

/// Engine builtin signatures (src/engine/planner.cc's builtin map). max_args
/// of -1 means variadic.
struct BuiltinSig {
  int min_args;
  int max_args;
  TypeClass ret;
  TypeClass arg0;  // kUnknown = unchecked
};

const std::unordered_map<std::string, BuiltinSig>& Builtins() {
  static const std::unordered_map<std::string, BuiltinSig> kMap = {
      {"substring", {2, 3, TypeClass::kString, TypeClass::kString}},
      {"concat", {1, -1, TypeClass::kString, TypeClass::kUnknown}},
      {"char_length", {1, 1, TypeClass::kNumeric, TypeClass::kString}},
      {"character_length", {1, 1, TypeClass::kNumeric, TypeClass::kString}},
      {"length", {1, 1, TypeClass::kNumeric, TypeClass::kString}},
      {"upper", {1, 1, TypeClass::kString, TypeClass::kString}},
      {"lower", {1, 1, TypeClass::kString, TypeClass::kString}},
      {"abs", {1, 1, TypeClass::kNumeric, TypeClass::kNumeric}},
      {"coalesce", {1, -1, TypeClass::kUnknown, TypeClass::kUnknown}},
  };
  return kMap;
}

class TypeChecker {
 public:
  TypeChecker(const AuditContext& ctx, StatementAudit* out)
      : ctx_(ctx), out_(out) {}

  /// One relation's output columns by lower-cased name.
  using RelCols = std::unordered_map<std::string, TypeClass>;

  struct Scope {
    std::vector<std::pair<std::string, RelCols>> relations;  // (alias, cols)
    const Scope* parent = nullptr;
  };

  struct SelectResult {
    RelCols out;                             // by alias / column name
    TypeClass first = TypeClass::kUnknown;   // class of the first item
  };

  /// Build scope, infer every clause, derive the output column classes.
  SelectResult CheckSelect(const sql::SelectStmt& sel, const Scope* parent) {
    Scope scope;
    scope.parent = parent;
    std::vector<const sql::TableRef*> stack;
    std::vector<const sql::TableRef*> join_nodes;
    for (const auto& t : sel.from) stack.push_back(t.get());
    for (size_t i = 0; i < stack.size(); ++i) {
      const sql::TableRef* t = stack[i];
      switch (t->kind) {
        case sql::TableRef::Kind::kBase:
          scope.relations.emplace_back(t->BindingName(),
                                       BaseRelCols(t->name));
          break;
        case sql::TableRef::Kind::kSubquery: {
          SelectResult sub = CheckSelect(*t->subquery, parent);
          scope.relations.emplace_back(t->BindingName(), std::move(sub.out));
          break;
        }
        case sql::TableRef::Kind::kJoin:
          join_nodes.push_back(t);
          stack.insert(stack.begin() + static_cast<long>(i) + 1,
                       {t->left.get(), t->right.get()});
          break;
      }
    }

    for (const sql::TableRef* j : join_nodes) {
      if (j->join_cond) Infer(*j->join_cond, &scope);
    }
    if (sel.where) Infer(*sel.where, &scope);
    for (const auto& g : sel.group_by) Infer(*g, &scope);
    if (sel.having) Infer(*sel.having, &scope);
    for (const auto& o : sel.order_by) Infer(*o.expr, &scope);

    SelectResult result;
    bool first = true;
    for (const auto& item : sel.items) {
      TypeClass c = Infer(*item.expr, &scope);
      if (first) {
        result.first = c;
        first = false;
      }
      std::string name = item.alias;
      if (name.empty() && item.expr->kind == sql::ExprKind::kColumnRef) {
        name = item.expr->column;
      }
      if (!name.empty()) result.out[ToLowerCopy(name)] = c;
    }
    return result;
  }

  void CheckInsert(const sql::InsertStmt& ins) {
    RelCols target = BaseRelCols(ins.table);
    Scope empty;
    for (const auto& row : ins.rows) {
      for (size_t i = 0; i < row.size(); ++i) {
        TypeClass got = Infer(*row[i], &empty);
        if (i < ins.columns.size()) {
          auto it = target.find(ToLowerCopy(ins.columns[i]));
          if (it != target.end() && Definite(it->second) && Definite(got) &&
              !TypeClassesComparable(it->second, got)) {
            Mismatch("INSERT value for column " + ins.columns[i] + " is " +
                         TypeClassName(got) + ", column is " +
                         TypeClassName(it->second),
                     *row[i]);
          }
        }
      }
    }
    if (ins.select) CheckSelect(*ins.select, nullptr);
  }

  void CheckUpdate(const sql::UpdateStmt& up) {
    Scope scope;
    scope.relations.emplace_back(up.table, BaseRelCols(up.table));
    RelCols& target = scope.relations.back().second;
    for (const auto& [col, value] : up.assignments) {
      TypeClass got = Infer(*value, &scope);
      auto it = target.find(ToLowerCopy(col));
      if (it != target.end() && Definite(it->second) && Definite(got) &&
          !TypeClassesComparable(it->second, got)) {
        Mismatch("UPDATE assigns " + std::string(TypeClassName(got)) +
                     " to column " + col + " of class " +
                     TypeClassName(it->second),
                 *value);
      }
    }
    if (up.where) Infer(*up.where, &scope);
  }

  void CheckDelete(const sql::DeleteStmt& del) {
    Scope scope;
    scope.relations.emplace_back(del.table, BaseRelCols(del.table));
    if (del.where) Infer(*del.where, &scope);
  }

 private:
  /// Column classes of a physical base table: engine catalog first (has ttid
  /// and the conversion meta tables), MT metadata as fallback.
  RelCols BaseRelCols(const std::string& name) {
    RelCols cols;
    if (ctx_.catalog != nullptr) {
      const engine::Table* t = ctx_.catalog->FindTable(name);
      if (t != nullptr) {
        for (const auto& c : t->schema().columns) {
          cols[ToLowerCopy(c.name)] = TypeClassOfDecl(c.type);
        }
        return cols;
      }
    }
    if (ctx_.schema != nullptr) {
      const MTTableInfo* info = ctx_.schema->FindTable(name);
      if (info != nullptr) {
        for (const auto& c : info->columns) {
          cols[ToLowerCopy(c.name)] = TypeClassOfDecl(c.type);
        }
        if (info->tenant_specific()) {
          cols[ToLowerCopy(kTtidColumn)] = TypeClass::kNumeric;
        }
      }
    }
    return cols;  // empty for views / unknown relations: all-unknown
  }

  TypeClass LookupColumn(const sql::Expr& col, const Scope* scope) const {
    for (const Scope* s = scope; s != nullptr; s = s->parent) {
      for (const auto& [alias, cols] : s->relations) {
        if (!col.qualifier.empty() && !EqualsIgnoreCase(col.qualifier, alias)) {
          continue;
        }
        auto it = cols.find(ToLowerCopy(col.column));
        if (it != cols.end()) return it->second;
        // A matching qualifier with an unlisted column still resolves here
        // (qualified stars of derived tables) — class unknown, not an error.
        if (!col.qualifier.empty()) return TypeClass::kUnknown;
      }
    }
    return TypeClass::kUnknown;
  }

  void Mismatch(const std::string& detail, const sql::Expr& at) {
    out_->violations.push_back(
        {AuditCode::kTypeMismatch, detail, sql::PrintExpr(at)});
  }

  TypeClass InferFunction(const sql::Expr& e, const Scope* scope) {
    std::vector<TypeClass> arg_classes;
    arg_classes.reserve(e.args.size());
    bool has_star = false;
    for (const auto& a : e.args) {
      has_star = has_star || a->kind == sql::ExprKind::kStar;
      arg_classes.push_back(Infer(*a, scope));
    }
    if (e.fname == "__row") return TypeClass::kUnknown;  // binder-internal
    if (IsAggName(e.fname)) {
      if (e.args.size() != 1) {
        out_->violations.push_back({AuditCode::kFunctionArityMismatch,
                                    "aggregate " + e.fname +
                                        " takes exactly one argument",
                                    sql::PrintExpr(e)});
        return TypeClass::kNumeric;
      }
      if (EqualsIgnoreCase(e.fname, "COUNT")) return TypeClass::kNumeric;
      if (EqualsIgnoreCase(e.fname, "SUM") || EqualsIgnoreCase(e.fname, "AVG")) {
        if (!has_star && Definite(arg_classes[0]) &&
            arg_classes[0] != TypeClass::kNumeric) {
          Mismatch("argument of " + e.fname + " is " +
                       TypeClassName(arg_classes[0]) + ", expected numeric",
                   e);
        }
        return TypeClass::kNumeric;
      }
      return arg_classes[0];  // MIN/MAX preserve the argument class
    }
    auto bit = Builtins().find(ToLowerCopy(e.fname));
    if (bit != Builtins().end()) {
      const BuiltinSig& sig = bit->second;
      int n = static_cast<int>(e.args.size());
      if (n < sig.min_args || (sig.max_args >= 0 && n > sig.max_args)) {
        out_->violations.push_back({AuditCode::kFunctionArityMismatch,
                                    "wrong argument count for " + e.fname,
                                    sql::PrintExpr(e)});
      } else if (sig.arg0 != TypeClass::kUnknown && Definite(arg_classes[0]) &&
                 !TypeClassesComparable(sig.arg0, arg_classes[0])) {
        Mismatch("argument of " + e.fname + " is " +
                     TypeClassName(arg_classes[0]) + ", expected " +
                     TypeClassName(sig.arg0),
                 e);
      }
      if (bit->first == "coalesce") {
        for (TypeClass c : arg_classes) {
          if (Definite(c)) return c;
        }
        return TypeClass::kUnknown;
      }
      return sig.ret;
    }
    if (ctx_.udfs != nullptr) {
      const engine::Udf* udf = ctx_.udfs->Find(e.fname);
      if (udf == nullptr) {
        out_->violations.push_back({AuditCode::kUnknownFunction,
                                    "unknown function " + e.fname,
                                    sql::PrintExpr(e)});
        return TypeClass::kUnknown;
      }
      if (udf->arg_types.size() != e.args.size()) {
        out_->violations.push_back(
            {AuditCode::kFunctionArityMismatch,
             e.fname + " takes " + std::to_string(udf->arg_types.size()) +
                 " argument(s), called with " + std::to_string(e.args.size()),
             sql::PrintExpr(e)});
        return TypeClassOfDecl(udf->return_type);
      }
      for (size_t i = 0; i < e.args.size(); ++i) {
        TypeClass want = TypeClassOfDecl(udf->arg_types[i]);
        if (Definite(want) && Definite(arg_classes[i]) &&
            !TypeClassesComparable(want, arg_classes[i])) {
          Mismatch("argument " + std::to_string(i + 1) + " of " + e.fname +
                       " is " + TypeClassName(arg_classes[i]) + ", declared " +
                       TypeClassName(want),
                   e);
        }
      }
      return TypeClassOfDecl(udf->return_type);
    }
    return TypeClass::kUnknown;
  }

  TypeClass InferBinary(const sql::Expr& e, const Scope* scope) {
    TypeClass l = Infer(*e.args[0], scope);
    TypeClass r = Infer(*e.args[1], scope);
    if (e.op == "AND" || e.op == "OR") return TypeClass::kBool;
    if (IsComparisonOp(e.op)) {
      if (!TypeClassesComparable(l, r)) {
        Mismatch("operands of '" + e.op + "' have incompatible classes (" +
                     TypeClassName(l) + " vs " + TypeClassName(r) + ")",
                 e);
      }
      return TypeClass::kBool;
    }
    if (e.op == "LIKE" || e.op == "NOT LIKE") {
      for (TypeClass c : {l, r}) {
        if (Definite(c) && c != TypeClass::kString) {
          Mismatch("operand of LIKE is " + std::string(TypeClassName(c)) +
                       ", expected string",
                   e);
        }
      }
      return TypeClass::kBool;
    }
    if (e.op == "||") return TypeClass::kString;
    // Arithmetic: the engine coerces among the numeric types; dates shift by
    // intervals; everything else is a definite clash.
    for (TypeClass c : {l, r}) {
      if (c == TypeClass::kString || c == TypeClass::kBool) {
        Mismatch("operand of '" + e.op + "' is " +
                     std::string(TypeClassName(c)),
                 e);
      }
    }
    if (l == TypeClass::kDate || r == TypeClass::kDate) {
      bool both_dates = l == TypeClass::kDate && r == TypeClass::kDate;
      if (both_dates && e.op == "-") return TypeClass::kNumeric;  // day diff
      return TypeClass::kDate;
    }
    if (l == TypeClass::kInterval && r == TypeClass::kInterval) {
      return TypeClass::kInterval;
    }
    return TypeClass::kNumeric;
  }

  TypeClass Infer(const sql::Expr& e, const Scope* scope) {
    switch (e.kind) {
      case sql::ExprKind::kLiteral:
        return TypeClassOf(e.literal.type());
      case sql::ExprKind::kColumnRef:
        return LookupColumn(e, scope);
      case sql::ExprKind::kStar:
      case sql::ExprKind::kParam:
        return TypeClass::kUnknown;
      case sql::ExprKind::kUnary: {
        TypeClass c = Infer(*e.args[0], scope);
        if (e.op == "NOT") return TypeClass::kBool;
        if (Definite(c) && c != TypeClass::kNumeric) {
          Mismatch("operand of unary '" + e.op + "' is " +
                       std::string(TypeClassName(c)) + ", expected numeric",
                   e);
        }
        return TypeClass::kNumeric;
      }
      case sql::ExprKind::kBinary:
        return InferBinary(e, scope);
      case sql::ExprKind::kFunction:
        return InferFunction(e, scope);
      case sql::ExprKind::kCase: {
        if (e.case_operand) Infer(*e.case_operand, scope);
        TypeClass result = TypeClass::kUnknown;
        for (size_t i = 0; i + 1 < e.args.size(); i += 2) {
          Infer(*e.args[i], scope);  // WHEN
          TypeClass t = Infer(*e.args[i + 1], scope);
          if (!Definite(result)) result = t;
        }
        if (e.else_expr) {
          TypeClass t = Infer(*e.else_expr, scope);
          if (!Definite(result)) result = t;
        }
        return result;
      }
      case sql::ExprKind::kInList: {
        TypeClass needle = Infer(*e.args[0], scope);
        for (size_t i = 1; i < e.args.size(); ++i) {
          TypeClass c = Infer(*e.args[i], scope);
          if (!TypeClassesComparable(needle, c)) {
            Mismatch("IN list element is " + std::string(TypeClassName(c)) +
                         ", needle is " + TypeClassName(needle),
                     e);
          }
        }
        return TypeClass::kBool;
      }
      case sql::ExprKind::kInSubquery: {
        for (const auto& a : e.args) Infer(*a, scope);
        if (e.subquery) CheckSelect(*e.subquery, scope);
        return TypeClass::kBool;
      }
      case sql::ExprKind::kExists:
        if (e.subquery) CheckSelect(*e.subquery, scope);
        return TypeClass::kBool;
      case sql::ExprKind::kScalarSubquery:
        return e.subquery ? CheckSelect(*e.subquery, scope).first
                          : TypeClass::kUnknown;
      case sql::ExprKind::kBetween: {
        TypeClass v = Infer(*e.args[0], scope);
        for (size_t i = 1; i < e.args.size() && i < 3; ++i) {
          TypeClass b = Infer(*e.args[i], scope);
          if (!TypeClassesComparable(v, b)) {
            Mismatch("BETWEEN bound is " + std::string(TypeClassName(b)) +
                         ", value is " + TypeClassName(v),
                     e);
          }
        }
        return TypeClass::kBool;
      }
      case sql::ExprKind::kIsNull:
        Infer(*e.args[0], scope);
        return TypeClass::kBool;
      case sql::ExprKind::kExtract: {
        TypeClass c = Infer(*e.args[0], scope);
        if (Definite(c) && c != TypeClass::kDate && c != TypeClass::kString) {
          Mismatch("EXTRACT argument is " + std::string(TypeClassName(c)) +
                       ", expected date",
                   e);
        }
        return TypeClass::kNumeric;
      }
      case sql::ExprKind::kInterval:
        return TypeClass::kInterval;
    }
    return TypeClass::kUnknown;
  }

  const AuditContext& ctx_;
  StatementAudit* out_;
};

}  // namespace

void CheckSelectTypes(const sql::SelectStmt& sel, const AuditContext& ctx,
                      StatementAudit* out) {
  TypeChecker checker(ctx, out);
  checker.CheckSelect(sel, nullptr);
}

void CheckStatementTypes(const sql::Stmt& stmt, const AuditContext& ctx,
                         StatementAudit* out) {
  TypeChecker checker(ctx, out);
  switch (stmt.kind) {
    case sql::Stmt::Kind::kSelect:
      checker.CheckSelect(*stmt.select, nullptr);
      break;
    case sql::Stmt::Kind::kInsert:
      checker.CheckInsert(*stmt.insert);
      break;
    case sql::Stmt::Kind::kUpdate:
      checker.CheckUpdate(*stmt.update);
      break;
    case sql::Stmt::Kind::kDelete:
      checker.CheckDelete(*stmt.del);
      break;
    case sql::Stmt::Kind::kCreateView:
      checker.CheckSelect(*stmt.create_view->select, nullptr);
      break;
    default:
      break;
  }
}

}  // namespace audit
}  // namespace mt
}  // namespace mtbase
