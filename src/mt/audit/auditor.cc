#include "mt/audit/audit.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>
#include <utility>

#include "common/str_util.h"
#include "mt/audit/normalizer.h"
#include "mt/audit/type_check.h"
#include "sql/printer.h"

namespace mtbase {
namespace mt {
namespace audit {

const char* AuditCodeName(AuditCode code) {
  switch (code) {
    case AuditCode::kDFilterMissing:
      return "DFILTER_MISSING";
    case AuditCode::kDFilterSetMismatch:
      return "DFILTER_SET_MISMATCH";
    case AuditCode::kDFilterSuppressionIllegal:
      return "DFILTER_SUPPRESSION_ILLEGAL";
    case AuditCode::kConversionMissing:
      return "CONVERSION_WRAP_MISSING";
    case AuditCode::kConversionUnbalanced:
      return "CONVERSION_PAIR_UNBALANCED";
    case AuditCode::kConversionSuppressionIllegal:
      return "CONVERSION_SUPPRESSION_ILLEGAL";
    case AuditCode::kTtidJoinMissing:
      return "TTID_JOIN_MISSING";
    case AuditCode::kTtidJoinSuppressionIllegal:
      return "TTID_JOIN_SUPPRESSION_ILLEGAL";
    case AuditCode::kTtidProjectionLeak:
      return "TTID_PROJECTION_LEAK";
    case AuditCode::kIncomparableAttributes:
      return "INCOMPARABLE_ATTRIBUTES";
    case AuditCode::kInsertTtidInvalid:
      return "INSERT_TTID_INVALID";
    case AuditCode::kTypeMismatch:
      return "TYPE_MISMATCH";
    case AuditCode::kUnknownFunction:
      return "UNKNOWN_FUNCTION";
    case AuditCode::kFunctionArityMismatch:
      return "FUNCTION_ARITY_MISMATCH";
    case AuditCode::kEquivalenceUnknownDivergence:
      return "EQUIVALENCE_UNKNOWN_DIVERGENCE";
  }
  return "?";
}

const char* EquivalenceCodeName(EquivalenceCode code) {
  switch (code) {
    case EquivalenceCode::kNotChecked:
      return "not-checked";
    case EquivalenceCode::kCanonical:
      return "canonical";
    case EquivalenceCode::kDivergeAggDistribution:
      return "DIVERGE_AGG_DISTRIBUTION";
    case EquivalenceCode::kDivergeConversionInline:
      return "DIVERGE_CONVERSION_INLINE";
    case EquivalenceCode::kDivergeConversionPushup:
      return "DIVERGE_CONVERSION_PUSHUP";
    case EquivalenceCode::kUnknown:
      return "DIVERGE_UNKNOWN";
  }
  return "?";
}

namespace {

std::string JoinCodes(const std::vector<const char*>& codes) {
  std::string out;
  for (const char* c : codes) {
    if (!out.empty()) out += ", ";
    out += c;
  }
  return out;
}

void AppendCodes(const std::vector<AuditViolation>& violations,
                 std::vector<const char*>* codes) {
  for (const auto& v : violations) {
    const char* name = AuditCodeName(v.code);
    bool seen = false;
    for (const char* c : *codes) seen = seen || std::strcmp(c, name) == 0;
    if (!seen) codes->push_back(name);
  }
}

}  // namespace

std::string StatementAudit::Summary() const {
  if (ok()) {
    if (equivalence == EquivalenceCode::kNotChecked) return "ok";
    return std::string("ok, equivalence: ") + EquivalenceCodeName(equivalence);
  }
  std::vector<const char*> codes;
  AppendCodes(violations, &codes);
  return "FAILED " + JoinCodes(codes);
}

std::string StatementAudit::Message() const {
  std::string out;
  for (const auto& v : violations) {
    if (!out.empty()) out += "\n";
    out += AuditCodeName(v.code);
    out += ": ";
    out += v.detail;
    if (!v.subtree.empty()) {
      out += "\n  in: ";
      out += v.subtree;
    }
  }
  return out;
}

bool AuditReport::ok() const {
  for (const auto& s : statements) {
    if (!s.ok()) return false;
  }
  return true;
}

size_t AuditReport::total_violations() const {
  size_t n = 0;
  for (const auto& s : statements) n += s.violations.size();
  return n;
}

std::string AuditReport::Codes() const {
  std::vector<const char*> codes;
  for (const auto& s : statements) AppendCodes(s.violations, &codes);
  return JoinCodes(codes);
}

std::string AuditReport::Message() const {
  std::string out;
  for (const auto& s : statements) {
    if (s.ok()) continue;
    if (!out.empty()) out += "\n";
    out += s.Message();
  }
  return out;
}

bool AuditEnabled() {
  const char* env = std::getenv("MTBASE_AUDIT_REWRITES");
  if (env != nullptr && env[0] != '\0') return std::strcmp(env, "0") != 0;
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

namespace {

bool IsComparisonOp(const std::string& op) {
  return op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

bool ContainsColumnRef(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kColumnRef) return true;
  for (const auto& a : e.args) {
    if (ContainsColumnRef(*a)) return true;
  }
  if (e.case_operand && ContainsColumnRef(*e.case_operand)) return true;
  if (e.else_expr && ContainsColumnRef(*e.else_expr)) return true;
  if (e.subquery) return true;
  return false;
}

bool IsTtidColRef(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kColumnRef &&
         EqualsIgnoreCase(e.column, kTtidColumn);
}

bool IsIntLiteral(const sql::Expr& e, int64_t* value) {
  if (e.kind != sql::ExprKind::kLiteral || e.literal.type() != TypeId::kInt) {
    return false;
  }
  *value = e.literal.int_value();
  return true;
}

/// Const view of the canonical wrapper fromU(toU(x, t), c).
struct ConstWrap {
  const ConversionPair* pair = nullptr;
  const sql::Expr* from_call = nullptr;
  const sql::Expr* to_call = nullptr;
  const sql::Expr* inner = nullptr;
  const sql::Expr* ttid = nullptr;  // to-call's second argument
};

bool MatchWrapped(const sql::Expr& e, const ConversionRegistry* reg,
                  ConstWrap* m) {
  if (reg == nullptr) return false;
  if (e.kind != sql::ExprKind::kFunction || e.args.size() != 2) return false;
  bool is_to = false;
  const ConversionPair* pair = reg->FindByFunction(e.fname, &is_to);
  if (pair == nullptr || is_to) return false;
  const sql::Expr& inner = *e.args[0];
  if (inner.kind != sql::ExprKind::kFunction || inner.args.size() != 2) {
    return false;
  }
  bool inner_is_to = false;
  const ConversionPair* pair2 = reg->FindByFunction(inner.fname, &inner_is_to);
  if (pair2 != pair || !inner_is_to) return false;
  m->pair = pair;
  m->from_call = &e;
  m->to_call = &inner;
  m->inner = inner.args[0].get();
  m->ttid = inner.args[1].get();
  return true;
}

void FlattenAnd(const sql::Expr* e, std::vector<const sql::Expr*>* out) {
  if (e->kind == sql::ExprKind::kBinary && e->op == "AND") {
    FlattenAnd(e->args[0].get(), out);
    FlattenAnd(e->args[1].get(), out);
    return;
  }
  out->push_back(e);
}

std::string TtidPairKey(const std::string& a, const std::string& b) {
  std::string x = ToLowerCopy(a);
  std::string y = ToLowerCopy(b);
  return x < y ? x + "|" + y : y + "|" + x;
}

/// An added `a.ttid = b.ttid` predicate across two table instances.
bool MatchTtidPair(const sql::Expr& e, std::string* key) {
  if (e.kind != sql::ExprKind::kBinary || e.op != "=") return false;
  const sql::Expr& l = *e.args[0];
  const sql::Expr& r = *e.args[1];
  if (!IsTtidColRef(l) || !IsTtidColRef(r)) return false;
  if (l.qualifier.empty() || r.qualifier.empty()) return false;
  if (EqualsIgnoreCase(l.qualifier, r.qualifier)) return false;
  *key = TtidPairKey(l.qualifier, r.qualifier);
  return true;
}

/// Invariant checks over the rewriter's output. The rules are restated from
/// the paper (sections 2.4.2, 3.1, 4.1) independently of rewriter.cc — the
/// auditor must not share the rewriter's bugs.
class InvariantChecker {
 public:
  InvariantChecker(const AuditContext& ctx, StatementAudit* out)
      : ctx_(ctx), out_(out) {}

  void CheckStmt(const sql::Stmt& stmt) {
    switch (stmt.kind) {
      case sql::Stmt::Kind::kSelect:
        CheckSelect(*stmt.select, nullptr, /*top_level=*/true);
        break;
      case sql::Stmt::Kind::kCreateView:
        CheckSelect(*stmt.create_view->select, nullptr, /*top_level=*/true);
        break;
      case sql::Stmt::Kind::kInsert:
        CheckInsert(*stmt.insert);
        break;
      case sql::Stmt::Kind::kUpdate:
        CheckUpdate(*stmt.update);
        break;
      case sql::Stmt::Kind::kDelete:
        CheckDelete(*stmt.del);
        break;
      default:
        break;
    }
  }

 private:
  struct Scope {
    std::vector<std::pair<std::string, const MTTableInfo*>> relations;
    const Scope* parent = nullptr;
  };

  struct Resolved {
    std::string alias;
    const MTTableInfo* table = nullptr;
    const MTColumnInfo* column = nullptr;
  };

  using PairSet = std::set<std::string>;

  void Violation(AuditCode code, std::string detail, std::string subtree) {
    out_->violations.push_back({code, std::move(detail), std::move(subtree)});
  }

  bool DatasetIsAllTenants() const {
    // Without a registered tenant universe the suppression cannot be judged;
    // the session always provides one (Middleware::tenants()).
    return ctx_.all_tenants.empty() || ctx_.dataset == ctx_.all_tenants;
  }

  bool DatasetIsClientOnly() const {
    return ctx_.dataset.size() == 1 && ctx_.dataset[0] == ctx_.client;
  }

  /// Mirror of the rewriter's scope-chain column resolution.
  Resolved Resolve(const sql::Expr& col, const Scope* scope) const {
    Resolved out;
    if (col.kind != sql::ExprKind::kColumnRef) return out;
    for (const Scope* s = scope; s != nullptr; s = s->parent) {
      for (const auto& [alias, info] : s->relations) {
        if (info == nullptr) continue;
        if (!col.qualifier.empty() && !EqualsIgnoreCase(col.qualifier, alias)) {
          continue;
        }
        if (EqualsIgnoreCase(col.column, kTtidColumn) &&
            info->tenant_specific()) {
          if (!col.qualifier.empty()) {
            out.alias = alias;
            out.table = info;
            return out;  // the ttid meta column itself (column == nullptr)
          }
          continue;
        }
        const MTColumnInfo* c = info->FindColumn(col.column);
        if (c != nullptr) {
          out.alias = alias;
          out.table = info;
          out.column = c;
          return out;
        }
      }
    }
    return out;
  }

  const sql::Expr* Unwrap(const sql::Expr& e) const {
    ConstWrap m;
    if (MatchWrapped(e, ctx_.conversions, &m)) return m.inner;
    return &e;
  }

  /// 0 = not a D-filter for this alias, 1 = exact, 2 = literal-set mismatch.
  int MatchDFilter(const sql::Expr& e, const std::string& alias) const {
    if (e.kind != sql::ExprKind::kInList || e.negated || e.args.empty()) {
      return 0;
    }
    const sql::Expr& needle = *e.args[0];
    if (!IsTtidColRef(needle) ||
        !EqualsIgnoreCase(needle.qualifier, alias)) {
      return 0;
    }
    std::vector<int64_t> values;
    for (size_t i = 1; i < e.args.size(); ++i) {
      int64_t v = 0;
      if (!IsIntLiteral(*e.args[i], &v)) return 0;
      values.push_back(v);
    }
    std::sort(values.begin(), values.end());
    return values == ctx_.dataset ? 1 : 2;
  }

  void CheckDFilterPresence(const sql::Expr* clause, const std::string& alias,
                            const std::string& where_desc) {
    std::vector<const sql::Expr*> conjuncts;
    if (clause != nullptr) FlattenAnd(clause, &conjuncts);
    bool mismatch = false;
    for (const sql::Expr* c : conjuncts) {
      int m = MatchDFilter(*c, alias);
      if (m == 1) return;
      mismatch = mismatch || m == 2;
    }
    if (mismatch) {
      Violation(AuditCode::kDFilterSetMismatch,
                "D-filter literal set for " + alias +
                    " does not equal D' (" + where_desc + ")",
                clause ? sql::PrintExpr(*clause) : "");
      return;
    }
    if (ctx_.options.drop_dfilters) {
      if (!DatasetIsAllTenants()) {
        Violation(AuditCode::kDFilterSuppressionIllegal,
                  "D-filters elided although D' does not cover all tenants (" +
                      where_desc + ", table instance " + alias + ")",
                  "");
      }
      return;
    }
    Violation(AuditCode::kDFilterMissing,
              "tenant-specific table instance " + alias +
                  " has no D-filter (" + where_desc + ")",
              clause ? sql::PrintExpr(*clause) : "");
  }

  /// Validate the canonical read wrapper fromU(toU(attr, a.ttid), C) over a
  /// resolved convertible attribute.
  void CheckReadWrapper(const ConstWrap& m, const Resolved& attr) {
    const MTColumnInfo& col = *attr.column;
    if (!EqualsIgnoreCase(m.pair->to_universal, col.to_universal_fn) ||
        !EqualsIgnoreCase(m.pair->from_universal, col.from_universal_fn)) {
      Violation(AuditCode::kConversionUnbalanced,
                "attribute " + col.name + " is wrapped in conversion pair " +
                    m.pair->name + " instead of its registered pair",
                sql::PrintExpr(*m.from_call));
      return;
    }
    if (!IsTtidColRef(*m.ttid) ||
        !EqualsIgnoreCase(m.ttid->qualifier, attr.alias)) {
      Violation(AuditCode::kConversionUnbalanced,
                "toUniversal owner argument is not " + attr.alias + "." +
                    kTtidColumn,
                sql::PrintExpr(*m.from_call));
    }
    int64_t c = 0;
    if (!IsIntLiteral(*m.from_call->args[1], &c) || c != ctx_.client) {
      Violation(AuditCode::kConversionUnbalanced,
                "fromUniversal client argument is not the client constant " +
                    std::to_string(ctx_.client),
                sql::PrintExpr(*m.from_call));
    }
  }

  void CheckRawConvertibleRef(const Resolved& attr, const sql::Expr& e) {
    if (ctx_.options.drop_conversions) {
      if (!DatasetIsClientOnly()) {
        Violation(AuditCode::kConversionSuppressionIllegal,
                  "conversions elided although D' != {C} (attribute " +
                      attr.column->name + ")",
                  sql::PrintExpr(e));
      }
      return;
    }
    Violation(AuditCode::kConversionMissing,
              "convertible attribute " + attr.column->name +
                  " is not wrapped in its conversion pair",
              sql::PrintExpr(e));
  }

  void CheckComparison(const sql::Expr& e, const Scope* scope,
                       const PairSet& pairs) {
    const sql::Expr* lraw = Unwrap(*e.args[0]);
    const sql::Expr* rraw = Unwrap(*e.args[1]);
    Resolved l = Resolve(*lraw, scope);
    Resolved r = Resolve(*rraw, scope);
    bool l_ts = l.column != nullptr && l.column->tenant_specific();
    bool r_ts = r.column != nullptr && r.column->tenant_specific();

    if (l_ts != r_ts) {
      const sql::Expr& other = l_ts ? *rraw : *lraw;
      const Resolved& other_attr = l_ts ? r : l;
      if (other_attr.column != nullptr || ContainsColumnRef(other)) {
        Violation(AuditCode::kIncomparableAttributes,
                  "tenant-specific attribute compared with a "
                  "non-tenant-specific attribute (paper section 2.4.2)",
                  sql::PrintExpr(e));
      }
    }

    if (l_ts && r_ts && !EqualsIgnoreCase(l.alias, r.alias)) {
      std::string key = TtidPairKey(l.alias, r.alias);
      if (pairs.count(key) == 0) {
        if (ctx_.options.drop_ttid_joins) {
          if (ctx_.dataset.size() != 1) {
            Violation(AuditCode::kTtidJoinSuppressionIllegal,
                      "ttid join predicates elided although |D'| != 1",
                      sql::PrintExpr(e));
          }
        } else {
          Violation(AuditCode::kTtidJoinMissing,
                    "comparison of tenant-specific attributes across table "
                    "instances " +
                        l.alias + ", " + r.alias +
                        " lacks the added ttid join predicate",
                    sql::PrintExpr(e));
        }
      }
    }

    CheckExpr(*e.args[0], scope, pairs);
    CheckExpr(*e.args[1], scope, pairs);
  }

  void CheckInSubquery(const sql::Expr& e, const Scope* scope,
                       const PairSet& pairs) {
    if (e.args.empty() || !e.subquery) return;
    Resolved needle = Resolve(*Unwrap(*e.args[0]), scope);
    bool needle_ts =
        needle.column != nullptr && needle.column->tenant_specific();
    if (needle_ts) {
      bool paired =
          e.args.size() >= 2 && IsTtidColRef(*e.args.back()) &&
          EqualsIgnoreCase(e.args.back()->qualifier, needle.alias) &&
          e.subquery->items.size() >= 2 &&
          IsTtidColRef(*e.subquery->items.back().expr);
      if (!paired) {
        if (ctx_.options.drop_ttid_joins) {
          if (ctx_.dataset.size() != 1) {
            Violation(AuditCode::kTtidJoinSuppressionIllegal,
                      "ttid pairing of membership test elided although "
                      "|D'| != 1",
                      sql::PrintExpr(e));
          }
        } else {
          Violation(AuditCode::kTtidJoinMissing,
                    "membership test on tenant-specific attribute lacks the "
                    "ttid pairing (x, x.ttid) IN (SELECT y, y.ttid ...)",
                    sql::PrintExpr(e));
        }
      }
    }
    for (const auto& a : e.args) CheckExpr(*a, scope, pairs);
    CheckSelect(*e.subquery, scope, /*top_level=*/false);
  }

  void CheckExpr(const sql::Expr& e, const Scope* scope,
                 const PairSet& pairs) {
    switch (e.kind) {
      case sql::ExprKind::kColumnRef: {
        Resolved a = Resolve(e, scope);
        if (a.column != nullptr && a.column->convertible()) {
          CheckRawConvertibleRef(a, e);
        }
        return;
      }
      case sql::ExprKind::kBinary: {
        if (e.op == "AND") {
          std::vector<const sql::Expr*> conjuncts;
          FlattenAnd(&e, &conjuncts);
          PairSet augmented = pairs;
          for (const sql::Expr* c : conjuncts) {
            std::string key;
            if (MatchTtidPair(*c, &key)) augmented.insert(std::move(key));
          }
          for (const sql::Expr* c : conjuncts) {
            CheckExpr(*c, scope, augmented);
          }
          return;
        }
        if (IsComparisonOp(e.op)) {
          CheckComparison(e, scope, pairs);
          return;
        }
        CheckExpr(*e.args[0], scope, pairs);
        CheckExpr(*e.args[1], scope, pairs);
        return;
      }
      case sql::ExprKind::kInSubquery:
        CheckInSubquery(e, scope, pairs);
        return;
      case sql::ExprKind::kExists:
      case sql::ExprKind::kScalarSubquery:
        if (e.subquery) CheckSelect(*e.subquery, scope, /*top_level=*/false);
        return;
      case sql::ExprKind::kFunction: {
        ConstWrap m;
        if (MatchWrapped(e, ctx_.conversions, &m)) {
          Resolved a = Resolve(*m.inner, scope);
          if (a.column != nullptr && a.column->convertible()) {
            CheckReadWrapper(m, a);
            return;  // inner attribute consumed by the wrapper
          }
          // Wrapper over a non-attribute (write shapes, user expressions):
          // nothing to prove here, audit the operands.
          CheckExpr(*m.inner, scope, pairs);
          CheckExpr(*m.ttid, scope, pairs);
          CheckExpr(*m.from_call->args[1], scope, pairs);
          return;
        }
        if (ctx_.conversions != nullptr &&
            ctx_.conversions->IsConversionFunction(e.fname) &&
            e.args.size() == 2) {
          Resolved a = Resolve(*e.args[0], scope);
          if (a.column != nullptr && a.column->convertible()) {
            Violation(AuditCode::kConversionUnbalanced,
                      "unpaired conversion call over convertible attribute " +
                          a.column->name,
                      sql::PrintExpr(e));
            CheckExpr(*e.args[1], scope, pairs);
            return;
          }
        }
        break;  // generic descent below
      }
      default:
        break;
    }
    for (const auto& a : e.args) CheckExpr(*a, scope, pairs);
    if (e.case_operand) CheckExpr(*e.case_operand, scope, pairs);
    if (e.else_expr) CheckExpr(*e.else_expr, scope, pairs);
    if (e.subquery) CheckSelect(*e.subquery, scope, /*top_level=*/false);
  }

  void CheckProjectionLeak(const sql::SelectStmt& sel, const Scope& scope) {
    bool any_ts = false;
    for (const auto& [alias, info] : scope.relations) {
      any_ts = any_ts || (info != nullptr && info->tenant_specific());
    }
    for (const auto& item : sel.items) {
      const sql::Expr& e = *item.expr;
      if (e.kind == sql::ExprKind::kStar) {
        if (e.qualifier.empty()) {
          if (any_ts) {
            Violation(AuditCode::kTtidProjectionLeak,
                      "unexpanded '*' over a tenant-specific relation would "
                      "expose the ttid meta column",
                      sql::PrintExpr(e));
          }
          continue;
        }
        for (const auto& [alias, info] : scope.relations) {
          if (EqualsIgnoreCase(e.qualifier, alias) && info != nullptr &&
              info->tenant_specific()) {
            Violation(AuditCode::kTtidProjectionLeak,
                      "unexpanded '" + e.qualifier +
                          ".*' over a tenant-specific relation would expose "
                          "the ttid meta column",
                      sql::PrintExpr(e));
          }
        }
        continue;
      }
      if (IsTtidColRef(e)) {
        Resolved a = Resolve(e, &scope);
        if (a.table != nullptr && a.table->tenant_specific() &&
            a.column == nullptr) {
          Violation(AuditCode::kTtidProjectionLeak,
                    "the ttid meta column of " + a.alias +
                        " is projected by the top-level query",
                    sql::PrintExpr(e));
        }
      }
    }
  }

  void CheckSelect(const sql::SelectStmt& sel, const Scope* parent,
                   bool top_level) {
    Scope scope;
    scope.parent = parent;

    struct TsRef {
      std::string alias;
      const sql::TableRef* left_join = nullptr;
    };
    std::vector<TsRef> ts_refs;
    std::vector<const sql::TableRef*> join_nodes;

    struct StackEntry {
      const sql::TableRef* t;
      const sql::TableRef* left_join_owner;
    };
    std::vector<StackEntry> stack;
    for (const auto& t : sel.from) stack.push_back({t.get(), nullptr});
    for (size_t si = 0; si < stack.size(); ++si) {
      const sql::TableRef* t = stack[si].t;
      const sql::TableRef* owner = stack[si].left_join_owner;
      switch (t->kind) {
        case sql::TableRef::Kind::kBase: {
          const MTTableInfo* info =
              ctx_.schema != nullptr ? ctx_.schema->FindTable(t->name)
                                     : nullptr;
          scope.relations.emplace_back(t->BindingName(), info);
          if (info != nullptr && info->tenant_specific()) {
            ts_refs.push_back({t->BindingName(), owner});
          }
          break;
        }
        case sql::TableRef::Kind::kSubquery:
          CheckSelect(*t->subquery, parent, /*top_level=*/false);
          scope.relations.emplace_back(t->BindingName(), nullptr);
          break;
        case sql::TableRef::Kind::kJoin: {
          join_nodes.push_back(t);
          stack.insert(stack.begin() + static_cast<long>(si) + 1,
                       {t->left.get(), owner});
          const sql::TableRef* right_owner =
              t->join_type == sql::JoinType::kLeft ? t : owner;
          stack.insert(stack.begin() + static_cast<long>(si) + 2,
                       {t->right.get(), right_owner});
          break;
        }
      }
    }

    for (const TsRef& ts : ts_refs) {
      if (ts.left_join != nullptr) {
        CheckDFilterPresence(ts.left_join->join_cond.get(), ts.alias,
                             "LEFT JOIN ON clause");
      } else {
        CheckDFilterPresence(sel.where.get(), ts.alias, "WHERE clause");
      }
    }

    if (top_level) CheckProjectionLeak(sel, scope);

    PairSet no_pairs;
    for (const auto& item : sel.items) CheckExpr(*item.expr, &scope, no_pairs);
    if (sel.where) CheckExpr(*sel.where, &scope, no_pairs);
    for (const auto& g : sel.group_by) CheckExpr(*g, &scope, no_pairs);
    if (sel.having) CheckExpr(*sel.having, &scope, no_pairs);
    for (const auto& o : sel.order_by) CheckExpr(*o.expr, &scope, no_pairs);
    for (const sql::TableRef* j : join_nodes) {
      if (j->join_cond) CheckExpr(*j->join_cond, &scope, no_pairs);
    }
  }

  /// Validate the write wrapper fromU(toU(value, C), owner) used by
  /// rewritten INSERT/UPDATE statements. `owner_lit` >= 0 demands that exact
  /// tenant constant; -1 demands the table's ttid column reference.
  bool MatchWriteWrapper(const sql::Expr& e, const MTColumnInfo& col,
                         int64_t owner_lit, const std::string& table,
                         const sql::Expr** value_out) {
    ConstWrap m;
    if (!MatchWrapped(e, ctx_.conversions, &m)) return false;
    if (!EqualsIgnoreCase(m.pair->to_universal, col.to_universal_fn) ||
        !EqualsIgnoreCase(m.pair->from_universal, col.from_universal_fn)) {
      Violation(AuditCode::kConversionUnbalanced,
                "write conversion of " + col.name + " uses pair " +
                    m.pair->name + " instead of its registered pair",
                sql::PrintExpr(e));
    }
    int64_t c = 0;
    if (!IsIntLiteral(*m.ttid, &c) || c != ctx_.client) {
      Violation(AuditCode::kConversionUnbalanced,
                "write conversion of " + col.name +
                    ": toUniversal argument is not the client constant",
                sql::PrintExpr(e));
    }
    const sql::Expr& owner = *m.from_call->args[1];
    if (owner_lit >= 0) {
      int64_t d = 0;
      if (!IsIntLiteral(owner, &d) || d != owner_lit) {
        Violation(AuditCode::kConversionUnbalanced,
                  "write conversion of " + col.name +
                      ": fromUniversal owner is not tenant " +
                      std::to_string(owner_lit),
                  sql::PrintExpr(e));
      }
    } else if (!IsTtidColRef(owner) ||
               !EqualsIgnoreCase(owner.qualifier, table)) {
      Violation(AuditCode::kConversionUnbalanced,
                "write conversion of " + col.name +
                    ": fromUniversal owner is not " + table + "." +
                    kTtidColumn,
                sql::PrintExpr(e));
    }
    *value_out = m.inner;
    return true;
  }

  void CheckInsert(const sql::InsertStmt& ins) {
    const MTTableInfo* info =
        ctx_.schema != nullptr ? ctx_.schema->FindTable(ins.table) : nullptr;
    if (info == nullptr || !info->tenant_specific()) {
      if (ins.select) CheckSelect(*ins.select, nullptr, /*top_level=*/true);
      return;
    }
    if (ins.columns.empty() ||
        !EqualsIgnoreCase(ins.columns.back(), kTtidColumn)) {
      Violation(AuditCode::kInsertTtidInvalid,
                "rewritten INSERT into tenant-specific table " + ins.table +
                    " does not append the ttid column",
                "");
      return;
    }
    auto check_values = [&](const std::vector<const sql::Expr*>& values,
                            const std::string& what) {
      if (values.size() != ins.columns.size()) return;
      int64_t d = 0;
      if (!IsIntLiteral(*values.back(), &d) ||
          !std::binary_search(ctx_.dataset.begin(), ctx_.dataset.end(), d)) {
        Violation(AuditCode::kInsertTtidInvalid,
                  what + " does not set ttid to a literal inside D'",
                  sql::PrintExpr(*values.back()));
        return;
      }
      Scope empty;
      PairSet no_pairs;
      for (size_t i = 0; i + 1 < values.size(); ++i) {
        const MTColumnInfo* ci = info->FindColumn(ins.columns[i]);
        if (ci != nullptr && ci->convertible() && d != ctx_.client) {
          const sql::Expr* inner = nullptr;
          if (!MatchWriteWrapper(*values[i], *ci, d, ins.table, &inner)) {
            Violation(AuditCode::kConversionMissing,
                      what + ": value for convertible column " + ci->name +
                          " is not converted to tenant " + std::to_string(d) +
                          "'s format",
                      sql::PrintExpr(*values[i]));
          }
          continue;
        }
        CheckExpr(*values[i], &empty, no_pairs);
      }
    };
    for (const auto& row : ins.rows) {
      std::vector<const sql::Expr*> values;
      for (const auto& e : row) values.push_back(e.get());
      check_values(values, "INSERT row");
    }
    if (ins.select) {
      std::vector<const sql::Expr*> values;
      for (const auto& item : ins.select->items) {
        values.push_back(item.expr.get());
      }
      check_values(values, "INSERT source query projection");
      CheckSelect(*ins.select, nullptr, /*top_level=*/false);
    }
  }

  void CheckUpdate(const sql::UpdateStmt& up) {
    const MTTableInfo* info =
        ctx_.schema != nullptr ? ctx_.schema->FindTable(up.table) : nullptr;
    if (info == nullptr) return;
    Scope scope;
    scope.relations.emplace_back(up.table, info);
    PairSet no_pairs;
    for (const auto& [col, value] : up.assignments) {
      const MTColumnInfo* ci = info->FindColumn(col);
      if (ci != nullptr && ci->convertible()) {
        const sql::Expr* inner = nullptr;
        if (MatchWriteWrapper(*value, *ci, -1, up.table, &inner)) {
          CheckExpr(*inner, &scope, no_pairs);
        } else if (ctx_.options.drop_conversions) {
          if (!DatasetIsClientOnly()) {
            Violation(AuditCode::kConversionSuppressionIllegal,
                      "write conversion of " + ci->name +
                          " elided although D' != {C}",
                      sql::PrintExpr(*value));
          }
          CheckExpr(*value, &scope, no_pairs);
        } else {
          Violation(AuditCode::kConversionMissing,
                    "UPDATE assigns to convertible column " + ci->name +
                        " without the write conversion "
                        "fromUniversal(toUniversal(value, C), ttid)",
                    sql::PrintExpr(*value));
          CheckExpr(*value, &scope, no_pairs);
        }
      } else {
        CheckExpr(*value, &scope, no_pairs);
      }
    }
    if (up.where) CheckExpr(*up.where, &scope, no_pairs);
    if (info->tenant_specific()) {
      CheckDFilterPresence(up.where.get(), up.table, "UPDATE WHERE clause");
    }
  }

  void CheckDelete(const sql::DeleteStmt& del) {
    const MTTableInfo* info =
        ctx_.schema != nullptr ? ctx_.schema->FindTable(del.table) : nullptr;
    if (info == nullptr) return;
    Scope scope;
    scope.relations.emplace_back(del.table, info);
    PairSet no_pairs;
    if (del.where) CheckExpr(*del.where, &scope, no_pairs);
    if (info->tenant_specific()) {
      CheckDFilterPresence(del.where.get(), del.table, "DELETE WHERE clause");
    }
  }

  const AuditContext& ctx_;
  StatementAudit* out_;
};

}  // namespace

void RewriteAuditor::AuditRewrite(const sql::Stmt& stmt,
                                  StatementAudit* out) const {
  InvariantChecker checker(*ctx_, out);
  checker.CheckStmt(stmt);
  CheckStatementTypes(stmt, *ctx_, out);
}

void RewriteAuditor::AuditOptimized(const sql::SelectStmt& rewritten,
                                    const sql::SelectStmt& optimized,
                                    StatementAudit* out) const {
  std::string canonical = NormalizeSelectText(rewritten, ctx_->conversions);
  std::string actual = NormalizeSelectText(optimized, ctx_->conversions);
  if (canonical == actual) {
    out->equivalence = EquivalenceCode::kCanonical;
    return;
  }
  // The optimizer restructured the statement: re-run the type checker over
  // its output and name the pass responsible for the divergence.
  CheckSelectTypes(optimized, *ctx_, out);
  EquivalenceCode code = ClassifyDivergence(optimized, ctx_->conversions);
  out->equivalence = code;
  if (code == EquivalenceCode::kUnknown) {
    out->violations.push_back(
        {AuditCode::kEquivalenceUnknownDivergence,
         "optimized statement does not normalize to the canonical form and "
         "no documented optimizer pass explains the divergence",
         sql::PrintSelect(optimized)});
  }
}

}  // namespace audit
}  // namespace mt
}  // namespace mtbase
