// Bottom-up type inference over the rewritten AST (tentpole part 2 of the
// static rewrite audit, audit.h).
//
// The inference is deliberately lenient where the engine's binder is the
// authority — unresolved columns and mixed NULL literals infer to kUnknown
// and are never violations — and strict where a wrong rewrite could slip
// through binding: definite class clashes in comparisons and arithmetic,
// conversion-UDF calls whose argument count or classes contradict the
// registered signature, unknown function names, and aggregate misuse. Types
// are tracked as coarse classes (numeric/string/date/...) rather than full
// SQL types because the rewriter never changes precision, only structure.
#ifndef MTBASE_MT_AUDIT_TYPE_CHECK_H_
#define MTBASE_MT_AUDIT_TYPE_CHECK_H_

#include "mt/audit/audit.h"
#include "sql/ast.h"

namespace mtbase {
namespace mt {
namespace audit {

/// Coarse type classes for the audit's inference pass.
enum class TypeClass : uint8_t {
  kUnknown,  // unresolved column / NULL literal / parameter — never an error
  kBool,
  kNumeric,  // INT, DOUBLE, DECIMAL (the engine coerces freely among them)
  kString,
  kDate,
  kInterval,
};

const char* TypeClassName(TypeClass c);

/// Class of a runtime type / declared SQL type.
TypeClass TypeClassOf(TypeId id);
TypeClass TypeClassOfDecl(const sql::TypeDecl& t);

/// True when values of the two classes may legally meet in a comparison
/// (either side unknown, same class, or the string<->date coercion the
/// parser's DATE literals rely on).
bool TypeClassesComparable(TypeClass a, TypeClass b);

/// Infer types over every expression of the statement, appending
/// kTypeMismatch / kUnknownFunction / kFunctionArityMismatch violations.
/// Column classes resolve against ctx.catalog (physical schemas including
/// ttid and the conversion meta tables), falling back to ctx.schema; UDF
/// signatures against ctx.udfs (both optional — absent registries skip the
/// corresponding checks).
void CheckStatementTypes(const sql::Stmt& stmt, const AuditContext& ctx,
                         StatementAudit* out);

/// Same, over a single (sub-)query — used for the optimizer's output.
void CheckSelectTypes(const sql::SelectStmt& sel, const AuditContext& ctx,
                      StatementAudit* out);

}  // namespace audit
}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_AUDIT_TYPE_CHECK_H_
