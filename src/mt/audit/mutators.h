// Test-only rewrite mutators: controlled violations of the rewrite
// invariants proven by the RewriteAuditor (audit.h).
//
// Each mutator damages a rewritten statement in exactly one way — strip the
// D-filters, unbalance the conversion pairs, drop the added ttid join
// predicates, leak the ttid meta column through the projection — and returns
// how many sites it mutated (0 = the statement had no such construct and the
// negative test must expect success). The negative MT-H suites install them
// through Middleware::set_rewrite_mutation_hook_for_testing and assert that
// compilation refuses with the matching audit code.
#ifndef MTBASE_MT_AUDIT_MUTATORS_H_
#define MTBASE_MT_AUDIT_MUTATORS_H_

#include "mt/conversion.h"
#include "mt/mt_schema.h"
#include "sql/ast.h"

namespace mtbase {
namespace mt {
namespace audit {

/// Remove every D-filter conjunct `x.ttid IN (literals...)` from WHERE /
/// HAVING / join conditions, recursively. Expected refusal: DFILTER_MISSING.
int StripDFilters(sql::Stmt* stmt);

/// Replace every matched fromUniversal(toUniversal(x, t), c) wrapper by its
/// bare inner toUniversal call. Expected refusal: CONVERSION_PAIR_UNBALANCED.
int UnbalanceConversionPairs(sql::Stmt* stmt,
                             const ConversionRegistry* conversions);

/// Remove every added `a.ttid = b.ttid` join predicate and revert every ttid
/// pairing of membership tests `(x, x.ttid) IN (SELECT y, y.ttid ...)`.
/// Expected refusal: TTID_JOIN_MISSING.
int DropTtidJoinPredicates(sql::Stmt* stmt);

/// Re-leak the ttid meta column the rewriter's star expansion hides: append
/// a `T.ttid` projection item for the first tenant-specific base table of the
/// top-level FROM. Expected refusal: TTID_PROJECTION_LEAK.
int LeakTtidThroughStar(sql::Stmt* stmt, const MTSchema* schema);

}  // namespace audit
}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_AUDIT_MUTATORS_H_
