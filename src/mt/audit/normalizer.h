// Canonicalizing AST normalizer (tentpole part 3 of the static rewrite
// audit, audit.h).
//
// Cross-level equivalence evidence works by normalization: the canonical
// (pre-optimizer) form and the o2-optimized form of a statement both map to
// the same text under NormalizeSelectText, because every conversion push-up
// shape (optimizer.cc, paper Listings 14/15) has a unique universal-format
// normal form:
//
//   fromU(toU(a,t1),C) op fromU(toU(b,t2),C)   |  t1 = t2:  a op b
//                                              |  else:     toU(a,t1) op toU(b,t2)
//   fromU(toU(a,t),C)  op const                |  toU(a,t) op toU(const,C)
//   a                  op fromU(toU(const,C),t)|  toU(a,t) op toU(const,C)
//   ... and the IN-list / BETWEEN analogues.
//
// On top of the conversion elision the normalizer flattens AND/OR chains,
// orders commutative operands deterministically and (under caller-proven o1
// legality) elides conversion wrappers, D-filters and ttid join predicates —
// so an o1 rewrite normalizes to the same text as the canonical rewrite of
// the same query. The restructuring passes (o3 aggregation distribution, o4
// inlining) have no normal form by design; ClassifyDivergence recognizes
// their artifacts and names the divergence.
#ifndef MTBASE_MT_AUDIT_NORMALIZER_H_
#define MTBASE_MT_AUDIT_NORMALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mt/audit/audit.h"
#include "mt/conversion.h"
#include "sql/ast.h"

namespace mtbase {
namespace mt {
namespace audit {

/// o1 elisions the caller has proven legal for the statement being
/// normalized (audit.h documents the legality conditions). All off by
/// default: plain normalization, as used to compare a statement against its
/// own optimized form.
struct NormalizeOptions {
  /// Elide every matched fromU(toU(x, t), C) wrapper down to x. Legal only
  /// when D' = {C} (the rewrite's drop_conversions condition).
  bool elide_wrappers = false;
  /// Remove added `a.ttid = b.ttid` join predicates and the ttid pairing of
  /// membership tests. Legal only when |D'| = 1.
  bool strip_ttid_joins = false;
  /// Remove D-filter conjuncts `x.ttid IN (...)` whose literal set equals
  /// exactly this set. Empty = off. Legal only when D' covers all tenants.
  std::vector<int64_t> strip_dfilter_literals;
};

/// Render the query in canonical normalized text. The input is not modified.
std::string NormalizeSelectText(const sql::SelectStmt& sel,
                                const ConversionRegistry* conversions,
                                const NormalizeOptions& options = {});

/// Name the optimizer pass whose artifacts explain why an optimized query
/// does not normalize to its canonical form: __it/__im meta joins and
/// meta-lookup sub-queries (o4), the __part partial-aggregation sub-query
/// (o3), residual conversion calls (o2 push-up), else kUnknown.
EquivalenceCode ClassifyDivergence(const sql::SelectStmt& optimized,
                                   const ConversionRegistry* conversions);

}  // namespace audit
}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_AUDIT_NORMALIZER_H_
