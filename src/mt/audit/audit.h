// Static rewrite auditing: invariant proofs over rewritten MTSQL statements.
//
// The MTSQL-to-SQL rewriter (paper section 3.1) and the mt::Optimizer
// (section 4) are the trusted core of the middleware's correctness story —
// the engine-side PlanVerifier (src/engine/verify/) only sees the physical
// plans compiled from their output. RewriteAuditor closes the gap at the AST
// layer: it statically analyzes each rewritten sql::Stmt, pre-binding, and
// proves per statement:
//
//   1. Rewrite invariants — every tenant-specific base-table occurrence
//      carries a D-filter whose literal set equals D' (or is legally elided
//      by o1's drop_dfilters only when D' covers all tenants); every
//      convertible attribute reference is wrapped in a matched
//      fromUniversal(toUniversal(attr, T.ttid), C) pair (or legally elided
//      only when D' = {C}); added ttid join predicates accompany comparisons
//      of tenant-specific attributes across table instances (or are legally
//      elided only when |D'| = 1); star expansion never leaks the invisible
//      ttid column into the top-level projection; and comparisons of
//      tenant-specific with comparable/convertible attributes are rejected
//      (paper section 2.4.2). The rules are restated here independently of
//      the rewriter on purpose: two implementations of the same spec catch
//      drift.
//   2. Type soundness — a bottom-up type-inference pass over sql::Expr
//      (literals, UDF signatures, aggregate/scalar arity) that catches
//      ill-typed rewrites before the binder can mask them (type_check.h).
//   3. Cross-level equivalence evidence — a canonicalizing normalizer
//      (normalizer.h) under which the optimizer's O1-O4 outputs normalize to
//      the canonical (pre-optimizer) form wherever the transformation is
//      provably shape-preserving, with machine-readable divergence codes for
//      the restructuring passes (aggregation distribution, inlining) where
//      it is not.
//
// Violations carry a machine-readable code plus the offending expression
// rendered through the SQL printer. Enforcement (compilation refusing
// violating rewrites) is always on in debug builds and opt-in via
// MTBASE_AUDIT_REWRITES=1 elsewhere; see docs/ARCHITECTURE.md
// "Static rewrite audit".
#ifndef MTBASE_MT_AUDIT_AUDIT_H_
#define MTBASE_MT_AUDIT_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/udf.h"
#include "mt/conversion.h"
#include "mt/mt_schema.h"
#include "mt/rewriter.h"
#include "sql/ast.h"

namespace mtbase {
namespace mt {
namespace audit {

enum class AuditCode : uint8_t {
  /// A tenant-specific base-table occurrence carries no D-filter in the
  /// clause the rewrite contract assigns it (WHERE, or the ON condition of
  /// the LEFT JOIN owning the occurrence).
  kDFilterMissing,
  /// A D-filter exists but its literal set differs from D'.
  kDFilterSetMismatch,
  /// D-filters were elided (drop_dfilters) although D' does not cover all
  /// registered tenants (o1 precondition, paper section 4.1).
  kDFilterSuppressionIllegal,
  /// A convertible attribute reference is not wrapped in its conversion pair.
  kConversionMissing,
  /// A conversion wrapper is malformed: unpaired call, wrong pair for the
  /// attribute, wrong tenant argument, or wrong client constant.
  kConversionUnbalanced,
  /// Conversions were elided (drop_conversions) although D' != {C}.
  kConversionSuppressionIllegal,
  /// A comparison of tenant-specific attributes across table instances (or a
  /// membership test) lacks the added ttid join predicate / ttid pairing.
  kTtidJoinMissing,
  /// ttid joins were elided (drop_ttid_joins) although |D'| != 1.
  kTtidJoinSuppressionIllegal,
  /// The invisible ttid meta column leaks into the top-level projection
  /// (star expansion failure or an explicit projection).
  kTtidProjectionLeak,
  /// A tenant-specific attribute is compared with a non-tenant-specific
  /// expression containing attribute references (paper section 2.4.2).
  kIncomparableAttributes,
  /// A rewritten INSERT into a tenant-specific table does not set ttid to a
  /// literal inside D'.
  kInsertTtidInvalid,
  /// Bottom-up type inference found incompatible operand/argument types.
  kTypeMismatch,
  /// A function call names neither an aggregate, an engine builtin nor a
  /// registered UDF.
  kUnknownFunction,
  /// A function call's argument count disagrees with its signature.
  kFunctionArityMismatch,
  /// The optimized statement does not normalize to the canonical form and no
  /// documented restructuring pass explains the divergence.
  kEquivalenceUnknownDivergence,
};

/// The stable machine-readable name, e.g. "DFILTER_MISSING".
const char* AuditCodeName(AuditCode code);

struct AuditViolation {
  AuditCode code = AuditCode::kDFilterMissing;
  std::string detail;   // one human-readable sentence
  std::string subtree;  // offending expression/statement, SQL-rendered
};

/// Cross-level equivalence evidence for one statement (tentpole part 3).
enum class EquivalenceCode : uint8_t {
  /// No SELECT body to compare (DML without a source query).
  kNotChecked,
  /// The optimized form normalizes to the canonical (pre-optimizer) form:
  /// the optimization is proven shape-preserving at the AST level.
  kCanonical,
  /// o3 restructured the statement into a per-tenant partial aggregation
  /// sub-query (__part); equivalence rests on the distributability rules
  /// (paper section 4.2.2), not on AST normalization.
  kDivergeAggDistribution,
  /// o4 / inl-only replaced conversion calls by meta-table joins or lookup
  /// sub-queries (__it/__im aliases, paper Listing 17).
  kDivergeConversionInline,
  /// Residual conversion push-up shapes the normalizer does not elide.
  kDivergeConversionPushup,
  /// Unexplained divergence — reported as kEquivalenceUnknownDivergence.
  kUnknown,
};

/// The stable name, e.g. "canonical" or "DIVERGE_AGG_DISTRIBUTION".
const char* EquivalenceCodeName(EquivalenceCode code);

/// Audit outcome for one rewritten statement.
struct StatementAudit {
  std::vector<AuditViolation> violations;
  EquivalenceCode equivalence = EquivalenceCode::kNotChecked;

  bool ok() const { return violations.empty(); }
  /// "ok" / "ok, equivalence: canonical" / "FAILED CODE1, CODE2" (codes
  /// deduplicated, first-seen order) — the EXPLAIN (AUDIT) annotation body.
  std::string Summary() const;
  /// Multi-line rendering of every violation for error statuses and tests.
  std::string Message() const;
};

/// Audit outcomes for all statements of one rewrite (DML on a multi-tenant
/// dataset expands into one statement per tenant).
struct AuditReport {
  std::vector<StatementAudit> statements;

  bool ok() const;
  size_t total_violations() const;
  /// Deduplicated codes across all statements, first-seen order.
  std::string Codes() const;
  std::string Message() const;
};

/// Everything the auditor may assume about the rewrite's provenance. All
/// pointers are borrowed and must outlive the auditor; catalog and udfs may
/// be null (type checks then degrade to what MT metadata alone supports).
struct AuditContext {
  const MTSchema* schema = nullptr;
  const ConversionRegistry* conversions = nullptr;
  /// Physical table schemas (column types incl. ttid and meta tables).
  const engine::Catalog* catalog = nullptr;
  /// UDF signatures for the type checker (conversion pairs register their
  /// functions here via CREATE FUNCTION).
  const engine::UdfRegistry* udfs = nullptr;
  int64_t client = 0;
  std::vector<int64_t> dataset;      // D', sorted
  std::vector<int64_t> all_tenants;  // registered tenants, sorted
  /// The o1 flags the rewrite ran under; elisions are judged against the
  /// dataset/tenant fields above.
  RewriteOptions options;
};

class RewriteAuditor {
 public:
  /// `ctx` is borrowed, not owned; it must outlive the auditor.
  explicit RewriteAuditor(const AuditContext* ctx) : ctx_(ctx) {}

  /// Prove the rewrite invariants and type soundness over the rewriter's
  /// (pre-optimizer) output. Violations append to `out`.
  void AuditRewrite(const sql::Stmt& stmt, StatementAudit* out) const;

  /// After optimization: type-check the optimized form and compare it to the
  /// pre-optimizer form under the canonicalizing normalizer, recording the
  /// equivalence evidence (and a violation on unexplained divergence).
  void AuditOptimized(const sql::SelectStmt& rewritten,
                      const sql::SelectStmt& optimized,
                      StatementAudit* out) const;

 private:
  const AuditContext* ctx_;
};

/// Whether compile-time enforcement is on: statements failing the audit
/// refuse to compile. Always on in debug builds (!NDEBUG);
/// MTBASE_AUDIT_REWRITES=1 turns it on in release builds and
/// MTBASE_AUDIT_REWRITES=0 forces it off. Read per call so tests can toggle
/// the environment in-process.
bool AuditEnabled();

}  // namespace audit
}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_AUDIT_AUDIT_H_
