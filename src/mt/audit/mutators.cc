#include "mt/audit/mutators.h"

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/str_util.h"

namespace mtbase {
namespace mt {
namespace audit {
namespace {

bool IsTtidColRef(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kColumnRef &&
         EqualsIgnoreCase(e.column, kTtidColumn);
}

bool IsDFilter(const sql::Expr& e) {
  if (e.kind != sql::ExprKind::kInList || e.negated || e.args.empty()) {
    return false;
  }
  if (!IsTtidColRef(*e.args[0])) return false;
  for (size_t i = 1; i < e.args.size(); ++i) {
    if (e.args[i]->kind != sql::ExprKind::kLiteral) return false;
  }
  return true;
}

bool IsTtidJoinPred(const sql::Expr& e) {
  if (e.kind != sql::ExprKind::kBinary || e.op != "=") return false;
  const sql::Expr& l = *e.args[0];
  const sql::Expr& r = *e.args[1];
  return IsTtidColRef(l) && IsTtidColRef(r) && !l.qualifier.empty() &&
         !r.qualifier.empty() && !EqualsIgnoreCase(l.qualifier, r.qualifier);
}

void FlattenAndMove(sql::ExprPtr e, std::vector<sql::ExprPtr>* out) {
  if (e->kind == sql::ExprKind::kBinary && e->op == "AND") {
    FlattenAndMove(std::move(e->args[0]), out);
    FlattenAndMove(std::move(e->args[1]), out);
    return;
  }
  out->push_back(std::move(e));
}

/// Drop matching conjuncts from a nullable AND-chained clause.
int FilterConjuncts(sql::ExprPtr* clause,
                    const std::function<bool(const sql::Expr&)>& drop) {
  if (!*clause) return 0;
  std::vector<sql::ExprPtr> conjuncts;
  FlattenAndMove(std::move(*clause), &conjuncts);
  std::vector<sql::ExprPtr> kept;
  int dropped = 0;
  for (auto& c : conjuncts) {
    if (drop(*c)) {
      ++dropped;
    } else {
      kept.push_back(std::move(c));
    }
  }
  *clause = sql::AndAll(std::move(kept));
  return dropped;
}

/// Generic mutating walk. `mutate_expr` runs post-order on every expression
/// slot; `mutate_clause` runs on every nullable AND-chained clause (WHERE,
/// HAVING, join conditions) before the expression walk descends into it.
class MutatingWalk {
 public:
  std::function<int(sql::ExprPtr&)> mutate_expr;
  std::function<int(sql::ExprPtr*)> mutate_clause;

  int Run(sql::Stmt* stmt) {
    count_ = 0;
    switch (stmt->kind) {
      case sql::Stmt::Kind::kSelect:
        VisitSelect(stmt->select.get());
        break;
      case sql::Stmt::Kind::kCreateView:
        VisitSelect(stmt->create_view->select.get());
        break;
      case sql::Stmt::Kind::kInsert:
        for (auto& row : stmt->insert->rows) {
          for (auto& e : row) VisitExpr(e);
        }
        if (stmt->insert->select) VisitSelect(stmt->insert->select.get());
        break;
      case sql::Stmt::Kind::kUpdate:
        for (auto& [col, value] : stmt->update->assignments) VisitExpr(value);
        Clause(&stmt->update->where);
        break;
      case sql::Stmt::Kind::kDelete:
        Clause(&stmt->del->where);
        break;
      default:
        break;
    }
    return count_;
  }

 private:
  void Clause(sql::ExprPtr* clause) {
    if (mutate_clause) count_ += mutate_clause(clause);
    if (*clause) VisitExpr(*clause);
  }

  void VisitExpr(sql::ExprPtr& e) {
    for (auto& a : e->args) VisitExpr(a);
    if (e->case_operand) VisitExpr(e->case_operand);
    if (e->else_expr) VisitExpr(e->else_expr);
    if (e->subquery) VisitSelect(e->subquery.get());
    if (mutate_expr) count_ += mutate_expr(e);
  }

  void VisitSelect(sql::SelectStmt* sel) {
    for (auto& t : sel->from) VisitTref(t.get());
    for (auto& item : sel->items) VisitExpr(item.expr);
    Clause(&sel->where);
    for (auto& g : sel->group_by) VisitExpr(g);
    Clause(&sel->having);
    for (auto& o : sel->order_by) VisitExpr(o.expr);
  }

  void VisitTref(sql::TableRef* t) {
    switch (t->kind) {
      case sql::TableRef::Kind::kBase:
        break;
      case sql::TableRef::Kind::kSubquery:
        VisitSelect(t->subquery.get());
        break;
      case sql::TableRef::Kind::kJoin:
        VisitTref(t->left.get());
        VisitTref(t->right.get());
        Clause(&t->join_cond);
        break;
    }
  }

  int count_ = 0;
};

/// Drop matching conjuncts from AND nodes nested below clause level (e.g.
/// the rewriter's in-place `cmp AND a.ttid = b.ttid` under an OR). Keeps the
/// node intact if every conjunct would drop.
void FlattenAndConst(const sql::Expr* e, std::vector<const sql::Expr*>* out) {
  if (e->kind == sql::ExprKind::kBinary && e->op == "AND") {
    FlattenAndConst(e->args[0].get(), out);
    FlattenAndConst(e->args[1].get(), out);
    return;
  }
  out->push_back(e);
}

int FilterNestedAnd(sql::ExprPtr& e,
                    const std::function<bool(const sql::Expr&)>& drop) {
  if (e->kind != sql::ExprKind::kBinary || e->op != "AND") return 0;
  // An embedded expression must survive, unlike a nullable clause: leave the
  // node untouched if every conjunct would drop.
  std::vector<const sql::Expr*> conjuncts;
  FlattenAndConst(e.get(), &conjuncts);
  bool any_kept = false;
  for (const sql::Expr* c : conjuncts) any_kept = any_kept || !drop(*c);
  if (!any_kept) return 0;
  sql::ExprPtr clause = std::move(e);
  int n = FilterConjuncts(&clause, drop);
  e = std::move(clause);
  return n;
}

}  // namespace

int StripDFilters(sql::Stmt* stmt) {
  MutatingWalk walk;
  walk.mutate_clause = [](sql::ExprPtr* clause) {
    return FilterConjuncts(clause, IsDFilter);
  };
  walk.mutate_expr = [](sql::ExprPtr& e) {
    return FilterNestedAnd(e, IsDFilter);
  };
  return walk.Run(stmt);
}

int UnbalanceConversionPairs(sql::Stmt* stmt,
                             const ConversionRegistry* conversions) {
  if (conversions == nullptr) return 0;
  MutatingWalk walk;
  walk.mutate_expr = [conversions](sql::ExprPtr& e) {
    if (e->kind != sql::ExprKind::kFunction || e->args.size() != 2) return 0;
    bool is_to = false;
    const ConversionPair* pair =
        conversions->FindByFunction(e->fname, &is_to);
    if (pair == nullptr || is_to) return 0;
    const sql::Expr& inner = *e->args[0];
    if (inner.kind != sql::ExprKind::kFunction || inner.args.size() != 2) {
      return 0;
    }
    bool inner_is_to = false;
    if (conversions->FindByFunction(inner.fname, &inner_is_to) != pair ||
        !inner_is_to) {
      return 0;
    }
    e = std::move(e->args[0]);  // keep the bare toUniversal call
    return 1;
  };
  return walk.Run(stmt);
}

int DropTtidJoinPredicates(sql::Stmt* stmt) {
  MutatingWalk walk;
  walk.mutate_clause = [](sql::ExprPtr* clause) {
    return FilterConjuncts(clause, IsTtidJoinPred);
  };
  walk.mutate_expr = [](sql::ExprPtr& e) {
    if (e->kind == sql::ExprKind::kInSubquery && e->args.size() >= 2 &&
        IsTtidColRef(*e->args.back()) && e->subquery &&
        e->subquery->items.size() >= 2 &&
        IsTtidColRef(*e->subquery->items.back().expr)) {
      e->args.pop_back();
      e->subquery->items.pop_back();
      if (!e->subquery->group_by.empty() &&
          IsTtidColRef(*e->subquery->group_by.back())) {
        e->subquery->group_by.pop_back();
      }
      return 1;
    }
    return FilterNestedAnd(e, IsTtidJoinPred);
  };
  return walk.Run(stmt);
}

int LeakTtidThroughStar(sql::Stmt* stmt, const MTSchema* schema) {
  if (schema == nullptr) return 0;
  sql::SelectStmt* sel = nullptr;
  if (stmt->kind == sql::Stmt::Kind::kSelect) {
    sel = stmt->select.get();
  } else if (stmt->kind == sql::Stmt::Kind::kCreateView) {
    sel = stmt->create_view->select.get();
  }
  if (sel == nullptr) return 0;
  std::function<const sql::TableRef*(const sql::TableRef*)> find_ts =
      [&](const sql::TableRef* t) -> const sql::TableRef* {
    switch (t->kind) {
      case sql::TableRef::Kind::kBase: {
        const MTTableInfo* info = schema->FindTable(t->name);
        return info != nullptr && info->tenant_specific() ? t : nullptr;
      }
      case sql::TableRef::Kind::kSubquery:
        return nullptr;
      case sql::TableRef::Kind::kJoin: {
        const sql::TableRef* hit = find_ts(t->left.get());
        return hit != nullptr ? hit : find_ts(t->right.get());
      }
    }
    return nullptr;
  };
  for (const auto& t : sel->from) {
    const sql::TableRef* ts = find_ts(t.get());
    if (ts != nullptr) {
      sql::SelectItem item;
      item.expr = sql::Col(ts->BindingName(), kTtidColumn);
      sel->items.push_back(std::move(item));
      return 1;
    }
  }
  return 0;
}

}  // namespace audit
}  // namespace mt
}  // namespace mtbase
