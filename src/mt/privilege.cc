#include "mt/privilege.h"

#include "common/str_util.h"

namespace mtbase {
namespace mt {

Result<Privilege> ParsePrivilege(const std::string& name) {
  if (EqualsIgnoreCase(name, "READ") || EqualsIgnoreCase(name, "SELECT")) {
    return Privilege::kRead;
  }
  if (EqualsIgnoreCase(name, "INSERT")) return Privilege::kInsert;
  if (EqualsIgnoreCase(name, "UPDATE")) return Privilege::kUpdate;
  if (EqualsIgnoreCase(name, "DELETE")) return Privilege::kDelete;
  return Status::InvalidArgument("unknown privilege " + name);
}

void PrivilegeManager::Grant(int64_t owner, const std::string& table,
                             Privilege priv, int64_t grantee) {
  // Only a state change moves the epoch: a redundant re-grant must not
  // invalidate every cached prepared query.
  if (grants_[{owner, ToLowerCopy(table), static_cast<int>(priv)}]
          .insert(grantee)
          .second) {
    ++epoch_;
  }
}

void PrivilegeManager::Revoke(int64_t owner, const std::string& table,
                              Privilege priv, int64_t grantee) {
  auto it = grants_.find({owner, ToLowerCopy(table), static_cast<int>(priv)});
  if (it != grants_.end() && it->second.erase(grantee) > 0) ++epoch_;
}

bool PrivilegeManager::Has(int64_t owner, const std::string& table,
                           Privilege priv, int64_t client) const {
  if (owner == client) return true;
  auto covers = [&](const Key& key) {
    auto it = grants_.find(key);
    return it != grants_.end() &&
           (it->second.count(client) || it->second.count(kPublicGrantee));
  };
  if (covers({owner, ToLowerCopy(table), static_cast<int>(priv)})) return true;
  // Database-wide grant covers every table.
  return covers({owner, "", static_cast<int>(priv)});
}

std::vector<int64_t> PrivilegeManager::PruneDataset(
    const std::vector<int64_t>& dataset,
    const std::vector<std::string>& ts_tables, int64_t client) const {
  std::vector<int64_t> out;
  for (int64_t d : dataset) {
    bool ok = true;
    for (const auto& t : ts_tables) {
      if (!Has(d, t, Privilege::kRead, client)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(d);
  }
  return out;
}

}  // namespace mt
}  // namespace mtbase
