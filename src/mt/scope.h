// The MTSQL SCOPE runtime parameter (paper section 2.1).
//
// A scope is either simple — "IN (1,3,42)", with the empty list meaning all
// tenants — or complex — "FROM <tables> WHERE <predicate>", meaning every
// tenant owning at least one qualifying record.
#ifndef MTBASE_MT_SCOPE_H_
#define MTBASE_MT_SCOPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace mtbase {
namespace mt {

struct Scope {
  enum class Kind {
    kDefault,  // D = {C}
    kSimple,   // explicit ttid list; empty list = all tenants
    kComplex,  // FROM ... WHERE ... sub-query
  };
  Kind kind = Kind::kDefault;
  std::vector<int64_t> ids;  // kSimple
  std::string table;         // kComplex: FROM table
  sql::ExprPtr where;        // kComplex: predicate (may be null)
  std::string text;          // original text, for display

  static Scope Default() { return Scope{}; }
  static Scope Simple(std::vector<int64_t> ids);
  static Scope AllTenants() { return Simple({}); }

  /// Parse the contents of SET SCOPE = "...".
  static Result<Scope> Parse(const std::string& text);
};

}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_SCOPE_H_
