// Tenant privileges: MTSQL GRANT / REVOKE semantics (paper section 2.3).
//
// Grants are issued *by* a tenant (the connection's C) on her own instances
// of tenant-specific tables. Defaults: every tenant has full access to her
// own data and READ access to global tables.
#ifndef MTBASE_MT_PRIVILEGE_H_
#define MTBASE_MT_PRIVILEGE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace mtbase {
namespace mt {

enum class Privilege { kRead, kInsert, kUpdate, kDelete };

Result<Privilege> ParsePrivilege(const std::string& name);

/// Grantee wildcard: a grant to kPublicGrantee covers every tenant. Used by
/// bulk setups (e.g. the MT-H loader) where each tenant opens her data to
/// everybody; equivalent to issuing GRANT ... TO ALL with the all-tenants
/// scope, without materializing O(T^2) grant entries.
inline constexpr int64_t kPublicGrantee = -1;

class PrivilegeManager {
 public:
  /// Grant `priv` on `owner`'s instance of `table` ("" = whole database) to
  /// `grantee`.
  void Grant(int64_t owner, const std::string& table, Privilege priv,
             int64_t grantee);
  void Revoke(int64_t owner, const std::string& table, Privilege priv,
              int64_t grantee);

  /// Does `client` hold `priv` on `owner`'s instance of `table`?
  /// Tenants always have full access to their own data; a database-wide
  /// grant covers all tables.
  bool Has(int64_t owner, const std::string& table, Privilege priv,
           int64_t client) const;

  /// Paper section 3: prune D to D' = the tenants whose listed tables are all
  /// readable by `client`.
  std::vector<int64_t> PruneDataset(const std::vector<int64_t>& dataset,
                                    const std::vector<std::string>& ts_tables,
                                    int64_t client) const;

  /// Monotonic counter bumped by every Grant/Revoke. Prepared MTSQL queries
  /// key their cached rewrite on it, so DCL transparently invalidates them.
  /// Atomic: sessions read it unlocked on every fingerprint check while DCL
  /// mutates under the middleware's exclusive meta lock.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  struct Key {
    int64_t owner;
    std::string table;  // lower-case; "" = database
    int priv;
    bool operator<(const Key& o) const {
      if (owner != o.owner) return owner < o.owner;
      if (table != o.table) return table < o.table;
      return priv < o.priv;
    }
  };
  std::map<Key, std::set<int64_t>> grants_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_PRIVILEGE_H_
