// Conversion function pairs and their algebraic properties.
//
// Paper section 2.2.2 (Definition 1) and section 4.2.2 (Table 2): the
// optimizer needs to know, per conversion pair, which aggregation functions
// distribute over it. The class of a pair is registered as data; the
// distributability rules are derived from it.
#ifndef MTBASE_MT_CONVERSION_H_
#define MTBASE_MT_CONVERSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace mtbase {
namespace mt {

/// Algebraic class of a conversion pair, ordered from most to least
/// structured (paper Table 2 columns).
enum class ConversionClass {
  kMultiplicative,   // toUniversal(x, t) = c_t * x          (e.g. currency)
  kLinear,           // toUniversal(x, t) = a_t * x + b_t    (e.g. temperature)
  kOrderPreserving,  // bijective and order-preserving, not linear
  kEqualityOnly,     // bijective only                       (e.g. phone prefix)
};

/// Aggregation functions considered by the distribution rules.
enum class AggKind { kCount, kMin, kMax, kSum, kAvg };

/// How to inline the pair's UDF bodies algebraically (optimization o4).
struct InlineSpec {
  enum class Kind {
    kNone,            // not inlinable; keep the UDF call
    kMultiplicative,  // to: x * meta.to_col;  from: x * meta.from_col
    kPrefix,          // to: SUBSTRING(x, CHAR_LENGTH(prefix)+1); from: CONCAT
  } kind = Kind::kNone;
  std::string tenant_table = "Tenant";
  std::string tenant_key = "T_tenant_key";
  std::string tenant_fk;    // e.g. T_currency_key
  std::string meta_table;   // e.g. CurrencyTransform
  std::string meta_key;     // e.g. CT_currency_key
  std::string to_col;       // e.g. CT_to_universal; kPrefix: PT_prefix
  std::string from_col;     // e.g. CT_from_universal; kPrefix: PT_prefix
};

struct ConversionPair {
  std::string name;            // logical name, e.g. "currency"
  std::string to_universal;    // UDF name
  std::string from_universal;  // UDF name
  ConversionClass cls = ConversionClass::kEqualityOnly;
  InlineSpec inline_spec;

  bool order_preserving() const {
    return cls != ConversionClass::kEqualityOnly;
  }
};

/// Paper Table 2: does `agg` distribute over a conversion pair of class `cls`?
bool AggDistributesOver(AggKind agg, ConversionClass cls);

class ConversionRegistry {
 public:
  Status Register(ConversionPair pair);

  const ConversionPair* FindByName(const std::string& name) const;
  /// All registered pairs, registration order (the rewrite auditor scans
  /// inline specs to recognize o4's meta-table artifacts).
  const std::vector<ConversionPair>& pairs() const { return pairs_; }
  /// Look up by the name of either UDF of the pair; also reports direction.
  const ConversionPair* FindByFunction(const std::string& fn_name,
                                       bool* is_to_universal) const;
  bool IsConversionFunction(const std::string& fn_name) const;

  /// Monotonic counter bumped by every Register. Prepared MTSQL queries key
  /// their cached rewrite on it: conversion pairs drive the rewriter and
  /// the optimizer, so late registration must invalidate. Atomic: sessions
  /// read it unlocked on every fingerprint check.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Invoked after every successful Register. The Middleware installs a
  /// hook that moves the engine's shared-UDF-cache epoch, so *every*
  /// registration path invalidates cached conversion results — callers
  /// cannot forget to.
  void set_on_register(std::function<void()> hook) {
    on_register_ = std::move(hook);
  }

 private:
  std::vector<ConversionPair> pairs_;
  std::unordered_map<std::string, std::pair<size_t, bool>> by_fn_;
  std::atomic<uint64_t> epoch_{0};
  std::function<void()> on_register_;
};

}  // namespace mt
}  // namespace mtbase

#endif  // MTBASE_MT_CONVERSION_H_
