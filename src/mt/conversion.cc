#include "mt/conversion.h"

#include "common/str_util.h"

namespace mtbase {
namespace mt {

bool AggDistributesOver(AggKind agg, ConversionClass cls) {
  switch (agg) {
    case AggKind::kCount:
      // Conversion functions are scalar bijections, hence always
      // fully-COUNT-preserving (paper section 4.2.2).
      return true;
    case AggKind::kMin:
    case AggKind::kMax:
      // Order-preserving functions preserve minima and maxima.
      return cls == ConversionClass::kMultiplicative ||
             cls == ConversionClass::kLinear ||
             cls == ConversionClass::kOrderPreserving;
    case AggKind::kSum:
    case AggKind::kAvg:
      // SUM/AVG distribute over multiplications with a constant; linear
      // functions need the weighted construction of Appendix B, which the
      // rewriter emits (counts are carried along), so both classes qualify.
      return cls == ConversionClass::kMultiplicative ||
             cls == ConversionClass::kLinear;
  }
  return false;
}

Status ConversionRegistry::Register(ConversionPair pair) {
  std::string to_key = ToLowerCopy(pair.to_universal);
  std::string from_key = ToLowerCopy(pair.from_universal);
  if (by_fn_.count(to_key) || by_fn_.count(from_key)) {
    return Status::AlreadyExists("conversion functions of pair " + pair.name +
                                 " already registered");
  }
  size_t idx = pairs_.size();
  pairs_.push_back(std::move(pair));
  by_fn_[to_key] = {idx, true};
  by_fn_[from_key] = {idx, false};
  ++epoch_;
  if (on_register_) on_register_();
  return Status::OK();
}

const ConversionPair* ConversionRegistry::FindByName(
    const std::string& name) const {
  for (const auto& p : pairs_) {
    if (EqualsIgnoreCase(p.name, name)) return &p;
  }
  return nullptr;
}

const ConversionPair* ConversionRegistry::FindByFunction(
    const std::string& fn_name, bool* is_to_universal) const {
  auto it = by_fn_.find(ToLowerCopy(fn_name));
  if (it == by_fn_.end()) return nullptr;
  if (is_to_universal != nullptr) *is_to_universal = it->second.second;
  return &pairs_[it->second.first];
}

bool ConversionRegistry::IsConversionFunction(const std::string& fn) const {
  return by_fn_.count(ToLowerCopy(fn)) > 0;
}

}  // namespace mt
}  // namespace mtbase
