// Calendar dates as days since 1970-01-01 (proleptic Gregorian).
#ifndef MTBASE_COMMON_DATE_H_
#define MTBASE_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace mtbase {

class Date {
 public:
  Date() : days_(0) {}
  explicit Date(int32_t days) : days_(days) {}

  /// Parse "YYYY-MM-DD".
  static Result<Date> Parse(const std::string& text);
  static Date FromYmd(int year, int month, int day);

  int32_t days() const { return days_; }
  int year() const;
  int month() const;
  int day() const;

  Date AddDays(int n) const { return Date(days_ + n); }
  /// Month arithmetic clamps the day-of-month (e.g. Jan 31 + 1 month = Feb 28).
  Date AddMonths(int n) const;
  Date AddYears(int n) const { return AddMonths(12 * n); }

  std::string ToString() const;

  bool operator==(const Date& o) const { return days_ == o.days_; }
  bool operator<(const Date& o) const { return days_ < o.days_; }

 private:
  void ToYmd(int* y, int* m, int* d) const;
  int32_t days_;
};

}  // namespace mtbase

#endif  // MTBASE_COMMON_DATE_H_
