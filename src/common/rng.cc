#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace mtbase {

uint64_t Rng::Next() {
  uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545F4914F6CDD1Dull;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo + 1);
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::UniformReal(double lo, double hi) {
  double u = static_cast<double>(Next() >> 11) / 9007199254740992.0;  // [0,1)
  return lo + u * (hi - lo);
}

bool Rng::Chance(double p) { return UniformReal(0.0, 1.0) < p; }

ZipfGenerator::ZipfGenerator(int64_t n, double s, uint64_t seed) : rng_(seed) {
  cdf_.resize(static_cast<size_t>(n));
  double sum = 0;
  for (int64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), s);
    cdf_[static_cast<size_t>(i - 1)] = sum;
  }
  for (double& c : cdf_) c /= sum;
}

int64_t ZipfGenerator::Next() {
  double u = rng_.UniformReal(0.0, 1.0);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

}  // namespace mtbase
