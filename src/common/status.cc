#include "common/status.h"

namespace mtbase {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kSyntaxError:
      return "SyntaxError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kRejected:
      return "Rejected";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += msg_;
  return s;
}

}  // namespace mtbase
