// Status: error-code based error handling for all MTBase layers.
//
// Following the style of Arrow/RocksDB, functions that can fail return a
// Status (or Result<T>, see result.h) instead of throwing exceptions across
// API boundaries.
#ifndef MTBASE_COMMON_STATUS_H_
#define MTBASE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace mtbase {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kSyntaxError,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kConstraintViolation,
  // MTSQL semantic rejection, e.g. comparing a tenant-specific attribute with
  // a comparable one (paper section 2.4.2).
  kRejected,
  kUnimplemented,
  kInternal,
};

/// \brief Result status of fallible operations.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status SyntaxError(std::string msg) {
    return Status(StatusCode::kSyntaxError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Rejected(std::string msg) {
    return Status(StatusCode::kRejected, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human readable "CODE: message" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

const char* StatusCodeName(StatusCode code);

/// Prefix a script error with the failing statement's 1-based position —
/// shared by every ';'-separated ExecuteScript implementation.
inline Status AtScriptStatement(size_t index, const Status& st) {
  return Status(st.code(),
                "statement " + std::to_string(index) + ": " + st.message());
}

}  // namespace mtbase

/// Propagate a non-OK Status to the caller.
#define MTB_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::mtbase::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define MTB_CONCAT_IMPL(a, b) a##b
#define MTB_CONCAT(a, b) MTB_CONCAT_IMPL(a, b)

/// Evaluate a Result<T>-returning expression; on error propagate the Status,
/// otherwise move the value into `lhs` (which may be a declaration).
#define MTB_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto MTB_CONCAT(_res_, __LINE__) = (expr);                   \
  if (!MTB_CONCAT(_res_, __LINE__).ok())                       \
    return MTB_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(MTB_CONCAT(_res_, __LINE__)).value()

#endif  // MTBASE_COMMON_STATUS_H_
