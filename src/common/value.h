// Value: the runtime representation of a single SQL value (possibly NULL).
#ifndef MTBASE_COMMON_VALUE_H_
#define MTBASE_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/date.h"
#include "common/decimal.h"
#include "common/result.h"

namespace mtbase {

enum class TypeId : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kDecimal,
  kString,
  kDate,
};

const char* TypeIdName(TypeId t);

/// \brief A dynamically typed SQL value. NULL is represented by type kNull.
class Value {
 public:
  Value() : type_(TypeId::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(TypeId::kBool, v); }
  static Value Int(int64_t v) { return Value(TypeId::kInt, v); }
  static Value Double(double v) { return Value(TypeId::kDouble, v); }
  static Value Dec(Decimal v) { return Value(TypeId::kDecimal, v); }
  static Value Str(std::string v) { return Value(TypeId::kString, std::move(v)); }
  static Value Dat(Date v) { return Value(TypeId::kDate, v); }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }
  bool is_numeric() const {
    return type_ == TypeId::kInt || type_ == TypeId::kDouble ||
           type_ == TypeId::kDecimal;
  }

  bool bool_value() const { return std::get<bool>(v_); }
  int64_t int_value() const { return std::get<int64_t>(v_); }
  double double_value() const { return std::get<double>(v_); }
  const Decimal& decimal_value() const { return std::get<Decimal>(v_); }
  const std::string& string_value() const { return std::get<std::string>(v_); }
  const Date& date_value() const { return std::get<Date>(v_); }

  /// Numeric value as double (int/double/decimal); 0 otherwise.
  double AsDouble() const;

  /// Three-way compare with SQL semantics for same-kind values; numeric types
  /// compare across int/double/decimal. Comparing NULL or incompatible kinds
  /// is an error.
  Result<int> Compare(const Value& other) const;

  /// Structural equality (used for result validation and hashing); NULL equals
  /// NULL, numerics compare by value across numeric types.
  bool StructuralEquals(const Value& other) const;

  size_t Hash() const;

  /// SQL-literal-ish rendering ("NULL", "42", "foo", "1995-01-01").
  std::string ToString() const;

 private:
  template <typename T>
  Value(TypeId t, T v) : type_(t), v_(std::move(v)) {}

  TypeId type_;
  std::variant<std::monostate, bool, int64_t, double, Decimal, std::string, Date>
      v_;
};

using Row = std::vector<Value>;

/// Hash of a row prefix, for hash joins and grouping.
size_t HashRow(const Row& row);

struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& v) const { return HashRow(v); }
};
struct ValueVectorEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].StructuralEquals(b[i])) return false;
    }
    return true;
  }
};

}  // namespace mtbase

#endif  // MTBASE_COMMON_VALUE_H_
