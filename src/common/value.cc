#include "common/value.h"

#include <cmath>
#include <functional>

namespace mtbase {

const char* TypeIdName(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return "BOOL";
    case TypeId::kInt:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kDecimal:
      return "DECIMAL";
    case TypeId::kString:
      return "STRING";
    case TypeId::kDate:
      return "DATE";
  }
  return "?";
}

double Value::AsDouble() const {
  switch (type_) {
    case TypeId::kInt:
      return static_cast<double>(int_value());
    case TypeId::kDouble:
      return double_value();
    case TypeId::kDecimal:
      return decimal_value().ToDouble();
    case TypeId::kBool:
      return bool_value() ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

namespace {
int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }
}  // namespace

Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    return Status::Internal("Compare called on NULL value");
  }
  if (is_numeric() && other.is_numeric()) {
    // Exact decimal/int comparison where possible; fall back to double when
    // either side is a double.
    if (type_ == TypeId::kDouble || other.type_ == TypeId::kDouble) {
      return Sign(AsDouble() - other.AsDouble());
    }
    Decimal a = type_ == TypeId::kDecimal ? decimal_value()
                                          : Decimal::FromInt(int_value());
    Decimal b = other.type_ == TypeId::kDecimal
                    ? other.decimal_value()
                    : Decimal::FromInt(other.int_value());
    return a.Compare(b);
  }
  if (type_ != other.type_) {
    return Status::Internal(std::string("cannot compare ") + TypeIdName(type_) +
                            " with " + TypeIdName(other.type_));
  }
  switch (type_) {
    case TypeId::kBool:
      return (bool_value() ? 1 : 0) - (other.bool_value() ? 1 : 0);
    case TypeId::kString: {
      int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case TypeId::kDate: {
      int32_t a = date_value().days(), b = other.date_value().days();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default:
      return Status::Internal("unsupported comparison type");
  }
}

bool Value::StructuralEquals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) {
    auto r = Compare(other);
    return r.ok() && r.value() == 0;
  }
  if (type_ != other.type_) return false;
  auto r = Compare(other);
  return r.ok() && r.value() == 0;
}

size_t Value::Hash() const {
  switch (type_) {
    case TypeId::kNull:
      return 0x9e3779b9;
    case TypeId::kBool:
      return bool_value() ? 3 : 7;
    case TypeId::kInt:
      // Hash ints via Decimal so that equal int/decimal values collide.
      return Decimal::FromInt(int_value()).Hash();
    case TypeId::kDouble:
      return std::hash<double>()(double_value());
    case TypeId::kDecimal:
      return decimal_value().Hash();
    case TypeId::kString:
      return std::hash<std::string>()(string_value());
    case TypeId::kDate:
      return std::hash<int32_t>()(date_value().days());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return bool_value() ? "true" : "false";
    case TypeId::kInt:
      return std::to_string(int_value());
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6f", double_value());
      return buf;
    }
    case TypeId::kDecimal:
      return decimal_value().ToString();
    case TypeId::kString:
      return string_value();
    case TypeId::kDate:
      return date_value().ToString();
  }
  return "?";
}

size_t HashRow(const Row& row) {
  size_t h = 14695981039346656037ull;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace mtbase
