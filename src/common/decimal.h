// Fixed-point decimal arithmetic for monetary values (TPC-H DECIMAL(15,2)).
//
// A Decimal is an int64 mantissa plus a decimal scale in [0, kMaxScale].
// Arithmetic uses __int128 intermediates and renormalizes results to at most
// kMaxScale fractional digits (round half away from zero), so that
// conversion-function round trips with reciprocal-exact exchange rates are
// bit-exact (see DESIGN.md section 5).
#ifndef MTBASE_COMMON_DECIMAL_H_
#define MTBASE_COMMON_DECIMAL_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace mtbase {

class Decimal {
 public:
  static constexpr int32_t kMaxScale = 6;

  Decimal() : units_(0), scale_(0) {}
  Decimal(int64_t units, int32_t scale) : units_(units), scale_(scale) {}

  /// Parse "123", "-1.5", "0.0001". Fails on malformed input or more than
  /// kMaxScale fractional digits after trimming trailing zeros.
  static Result<Decimal> Parse(const std::string& text);

  /// Exact conversion from an integer.
  static Decimal FromInt(int64_t v) { return Decimal(v, 0); }
  /// Closest decimal with the given scale.
  static Decimal FromDouble(double v, int32_t scale);

  int64_t units() const { return units_; }
  int32_t scale() const { return scale_; }

  double ToDouble() const;
  /// "-12.34"; always prints exactly scale() fractional digits.
  std::string ToString() const;

  Decimal Add(const Decimal& other) const;
  Decimal Sub(const Decimal& other) const;
  /// Product renormalized to at most kMaxScale fractional digits.
  Decimal Mul(const Decimal& other) const;
  /// Quotient computed at kMaxScale fractional digits. Division by zero is the
  /// caller's responsibility to exclude.
  Decimal Div(const Decimal& other) const;
  Decimal Neg() const { return Decimal(-units_, scale_); }

  /// Three-way comparison: -1, 0, +1.
  int Compare(const Decimal& other) const;

  bool operator==(const Decimal& other) const { return Compare(other) == 0; }

  /// Returns an equal decimal with trailing fractional zeros removed.
  Decimal Normalized() const;
  /// Returns the closest decimal with exactly `scale` fractional digits.
  Decimal Rescale(int32_t scale) const;

  /// Hash consistent with Compare()-equality.
  size_t Hash() const;

 private:
  int64_t units_;
  int32_t scale_;
};

}  // namespace mtbase

#endif  // MTBASE_COMMON_DECIMAL_H_
