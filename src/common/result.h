// Result<T>: value-or-Status, the MTBase analogue of arrow::Result.
#ifndef MTBASE_COMMON_RESULT_H_
#define MTBASE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mtbase {

/// \brief Holds either a value of type T or a non-OK Status explaining why
/// the value is absent.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mtbase

#endif  // MTBASE_COMMON_RESULT_H_
