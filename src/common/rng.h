// Deterministic random number generation for the MT-H data generator.
#ifndef MTBASE_COMMON_RNG_H_
#define MTBASE_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mtbase {

/// xorshift64* generator; fixed seed gives reproducible MT-H databases.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5DEECE66Dull) : state_(seed ? seed : 1) {}

  uint64_t Next();
  /// Uniform in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi);
  double UniformReal(double lo, double hi);
  /// True with probability p.
  bool Chance(double p);
  /// Pick a uniformly random element.
  template <typename T>
  const T& Pick(const std::vector<T>& pool) {
    return pool[static_cast<size_t>(Uniform(0, static_cast<int64_t>(pool.size()) - 1))];
  }

 private:
  uint64_t state_;
};

/// Zipf-distributed sampler over {1..n} with exponent s (default 1.0), used
/// for the MT-H "zipf" tenant-share distribution.
class ZipfGenerator {
 public:
  ZipfGenerator(int64_t n, double s, uint64_t seed);
  /// Sample a value in [1, n]; value 1 has the largest probability.
  int64_t Next();

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace mtbase

#endif  // MTBASE_COMMON_RNG_H_
