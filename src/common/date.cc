#include "common/date.h"

#include <cstdio>

namespace mtbase {

namespace {

// Howard Hinnant's civil-days algorithms.
int32_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int32_t z, int* yy, int* mm, int* dd) {
  z += 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *yy = y + (m <= 2);
  *mm = static_cast<int>(m);
  *dd = static_cast<int>(d);
}

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInMonth(int y, int m) {
  static const int k[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return k[m - 1];
}

}  // namespace

Result<Date> Date::Parse(const std::string& text) {
  int y, m, d;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return Status::InvalidArgument("malformed date: " + text);
  }
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m)) {
    return Status::InvalidArgument("invalid date: " + text);
  }
  return Date(DaysFromCivil(y, m, d));
}

Date Date::FromYmd(int year, int month, int day) {
  return Date(DaysFromCivil(year, month, day));
}

void Date::ToYmd(int* y, int* m, int* d) const { CivilFromDays(days_, y, m, d); }

int Date::year() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  return y;
}

int Date::month() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  return m;
}

int Date::day() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  return d;
}

Date Date::AddMonths(int n) const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  int total = y * 12 + (m - 1) + n;
  int ny = total / 12;
  int nm = total % 12;
  if (nm < 0) {
    nm += 12;
    --ny;
  }
  ++nm;
  int nd = std::min(d, DaysInMonth(ny, nm));
  return FromYmd(ny, nm, nd);
}

std::string Date::ToString() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace mtbase
