#include "common/decimal.h"

#include <cmath>
#include <cstdlib>

namespace mtbase {

namespace {

constexpr int64_t kPow10[] = {1,
                              10,
                              100,
                              1000,
                              10000,
                              100000,
                              1000000,
                              10000000,
                              100000000,
                              1000000000,
                              10000000000LL,
                              100000000000LL,
                              1000000000000LL};

using int128 = __int128;

// Round half away from zero when dividing by a power of ten.
int64_t RoundedShiftRight(int128 v, int32_t digits) {
  if (digits <= 0) return static_cast<int64_t>(v);
  int128 div = 1;
  for (int32_t i = 0; i < digits; ++i) div *= 10;
  int128 q = v / div;
  int128 r = v % div;
  if (r < 0) r = -r;
  if (2 * r >= div) {
    q += (v < 0) ? -1 : 1;
  }
  return static_cast<int64_t>(q);
}

}  // namespace

Result<Decimal> Decimal::Parse(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty decimal literal");
  size_t i = 0;
  bool neg = false;
  if (text[i] == '+' || text[i] == '-') {
    neg = text[i] == '-';
    ++i;
  }
  int128 units = 0;
  int32_t scale = 0;
  bool seen_dot = false;
  bool seen_digit = false;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c == '.') {
      if (seen_dot) return Status::InvalidArgument("malformed decimal: " + text);
      seen_dot = true;
      continue;
    }
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("malformed decimal: " + text);
    }
    seen_digit = true;
    units = units * 10 + (c - '0');
    if (seen_dot) ++scale;
    if (units > static_cast<int128>(INT64_MAX)) {
      return Status::InvalidArgument("decimal overflow: " + text);
    }
  }
  if (!seen_digit) return Status::InvalidArgument("malformed decimal: " + text);
  Decimal d(static_cast<int64_t>(neg ? -units : units), scale);
  d = d.Normalized();
  if (d.scale() > kMaxScale) {
    return Status::InvalidArgument("decimal scale too large: " + text);
  }
  return d;
}

Decimal Decimal::FromDouble(double v, int32_t scale) {
  double scaled = v * static_cast<double>(kPow10[scale]);
  return Decimal(static_cast<int64_t>(std::llround(scaled)), scale);
}

double Decimal::ToDouble() const {
  return static_cast<double>(units_) / static_cast<double>(kPow10[scale_]);
}

std::string Decimal::ToString() const {
  int64_t u = units_;
  bool neg = u < 0;
  uint64_t abs = neg ? static_cast<uint64_t>(-(u + 1)) + 1 : static_cast<uint64_t>(u);
  uint64_t div = static_cast<uint64_t>(kPow10[scale_]);
  uint64_t ip = abs / div;
  uint64_t fp = abs % div;
  std::string s = neg ? "-" : "";
  s += std::to_string(ip);
  if (scale_ > 0) {
    std::string frac = std::to_string(fp);
    s += '.';
    s += std::string(static_cast<size_t>(scale_) - frac.size(), '0');
    s += frac;
  }
  return s;
}

Decimal Decimal::Add(const Decimal& other) const {
  int32_t s = std::max(scale_, other.scale_);
  int128 a = static_cast<int128>(units_) * kPow10[s - scale_];
  int128 b = static_cast<int128>(other.units_) * kPow10[s - other.scale_];
  return Decimal(static_cast<int64_t>(a + b), s);
}

Decimal Decimal::Sub(const Decimal& other) const {
  return Add(other.Neg());
}

Decimal Decimal::Mul(const Decimal& other) const {
  int128 prod = static_cast<int128>(units_) * other.units_;
  int32_t s = scale_ + other.scale_;
  if (s > kMaxScale) {
    int64_t u = RoundedShiftRight(prod, s - kMaxScale);
    return Decimal(u, kMaxScale);
  }
  return Decimal(static_cast<int64_t>(prod), s);
}

Decimal Decimal::Div(const Decimal& other) const {
  // Compute (a / b) at kMaxScale digits: a * 10^(kMaxScale - sa + sb) / b_units
  // rounded half away from zero.
  int128 num = static_cast<int128>(units_);
  int32_t shift = kMaxScale - scale_ + other.scale_;
  while (shift > 0) {
    num *= 10;
    --shift;
  }
  while (shift < 0) {
    num /= 10;
    ++shift;
  }
  int128 den = other.units_;
  if (den == 0) return Decimal(0, 0);
  int128 q = num / den;
  int128 r = num % den;
  int128 aden = den < 0 ? -den : den;
  int128 ar = r < 0 ? -r : r;
  if (2 * ar >= aden) {
    bool neg = (num < 0) != (den < 0);
    q += neg ? -1 : 1;
  }
  return Decimal(static_cast<int64_t>(q), kMaxScale);
}

int Decimal::Compare(const Decimal& other) const {
  int32_t s = std::max(scale_, other.scale_);
  int128 a = static_cast<int128>(units_) * kPow10[s - scale_];
  int128 b = static_cast<int128>(other.units_) * kPow10[s - other.scale_];
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

Decimal Decimal::Normalized() const {
  int64_t u = units_;
  int32_t s = scale_;
  while (s > 0 && u % 10 == 0) {
    u /= 10;
    --s;
  }
  return Decimal(u, s);
}

Decimal Decimal::Rescale(int32_t scale) const {
  if (scale == scale_) return *this;
  if (scale > scale_) {
    return Decimal(units_ * kPow10[scale - scale_], scale);
  }
  return Decimal(RoundedShiftRight(units_, scale_ - scale), scale);
}

size_t Decimal::Hash() const {
  Decimal n = Normalized();
  return std::hash<int64_t>()(n.units_) * 1000003u ^
         std::hash<int32_t>()(n.scale_);
}

}  // namespace mtbase
