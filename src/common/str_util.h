// Small string helpers shared across the SQL front end.
#ifndef MTBASE_COMMON_STR_UTIL_H_
#define MTBASE_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace mtbase {

std::string ToUpperCopy(const std::string& s);
std::string ToLowerCopy(const std::string& s);
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// SQL LIKE matcher: '%' matches any sequence, '_' any single character.
bool LikeMatch(const std::string& text, const std::string& pattern);

std::vector<std::string> SplitString(const std::string& s, char sep);
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

}  // namespace mtbase

#endif  // MTBASE_COMMON_STR_UTIL_H_
