#include "common/str_util.h"

#include <cctype>

namespace mtbase {

std::string ToUpperCopy(const std::string& s) {
  std::string r = s;
  for (char& c : r) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return r;
}

std::string ToLowerCopy(const std::string& s) {
  std::string r = s;
  for (char& c : r) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return r;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::vector<std::string> SplitString(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace mtbase
