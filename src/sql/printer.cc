#include "sql/printer.h"

#include "common/str_util.h"

namespace mtbase {
namespace sql {

namespace {

// Higher binds tighter; mirrors the parser's precedence chain.
int Precedence(const std::string& op) {
  if (op == "OR") return 1;
  if (op == "AND") return 2;
  if (op == "NOT") return 3;
  if (op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
      op == ">=" || op == "LIKE" || op == "NOT LIKE") {
    return 4;
  }
  if (op == "+" || op == "-" || op == "||") return 5;
  if (op == "*" || op == "/") return 6;
  return 7;
}

std::string QuoteString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += '\'';  // double embedded quotes
    out += c;
  }
  out += "'";
  return out;
}

std::string PrintLiteral(const Value& v) {
  switch (v.type()) {
    case TypeId::kString:
      return QuoteString(v.string_value());
    case TypeId::kDate:
      return "DATE '" + v.date_value().ToString() + "'";
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return v.bool_value() ? "TRUE" : "FALSE";
    default:
      return v.ToString();
  }
}

std::string PrintExprPrec(const Expr& e, int parent_prec);

std::string PrintChild(const Expr& e, int parent_prec) {
  return PrintExprPrec(e, parent_prec);
}

std::string PrintExprPrec(const Expr& e, int parent_prec) {
  std::string out;
  int prec = 7;
  switch (e.kind) {
    case ExprKind::kLiteral:
      out = PrintLiteral(e.literal);
      break;
    case ExprKind::kColumnRef:
      out = e.qualifier.empty() ? e.column : e.qualifier + "." + e.column;
      break;
    case ExprKind::kStar:
      out = e.qualifier.empty() ? "*" : e.qualifier + ".*";
      break;
    case ExprKind::kParam:
      out = "$" + std::to_string(e.param_index);
      break;
    case ExprKind::kUnary:
      prec = e.op == "NOT" ? 3 : 7;
      out = (e.op == "NOT" ? "NOT " : "-") + PrintChild(*e.args[0], prec + 1);
      break;
    case ExprKind::kBinary:
      prec = Precedence(e.op);
      // Left-associative: right child needs strictly higher precedence.
      out = PrintChild(*e.args[0], prec) + " " + e.op + " " +
            PrintChild(*e.args[1], prec + 1);
      break;
    case ExprKind::kFunction: {
      out = e.fname + "(";
      if (e.distinct) out += "DISTINCT ";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i) out += ", ";
        out += e.args[i]->kind == ExprKind::kStar ? "*"
                                                  : PrintExprPrec(*e.args[i], 0);
      }
      out += ")";
      break;
    }
    case ExprKind::kCase: {
      out = "CASE";
      if (e.case_operand) out += " " + PrintExprPrec(*e.case_operand, 0);
      for (size_t i = 0; i + 1 < e.args.size(); i += 2) {
        out += " WHEN " + PrintExprPrec(*e.args[i], 0) + " THEN " +
               PrintExprPrec(*e.args[i + 1], 0);
      }
      if (e.else_expr) out += " ELSE " + PrintExprPrec(*e.else_expr, 0);
      out += " END";
      break;
    }
    case ExprKind::kInList: {
      prec = 4;
      out = PrintChild(*e.args[0], prec + 1);
      out += e.negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < e.args.size(); ++i) {
        if (i > 1) out += ", ";
        out += PrintExprPrec(*e.args[i], 0);
      }
      out += ")";
      break;
    }
    case ExprKind::kInSubquery: {
      prec = 4;
      if (e.args.size() == 1) {
        out = PrintChild(*e.args[0], prec + 1);
      } else {
        out = "(";
        for (size_t i = 0; i < e.args.size(); ++i) {
          if (i) out += ", ";
          out += PrintExprPrec(*e.args[i], 0);
        }
        out += ")";
      }
      out += e.negated ? " NOT IN (" : " IN (";
      out += PrintSelect(*e.subquery);
      out += ")";
      break;
    }
    case ExprKind::kExists:
      out = std::string(e.negated ? "NOT " : "") + "EXISTS (" +
            PrintSelect(*e.subquery) + ")";
      prec = e.negated ? 3 : 7;
      break;
    case ExprKind::kScalarSubquery:
      out = "(" + PrintSelect(*e.subquery) + ")";
      break;
    case ExprKind::kBetween:
      prec = 4;
      out = PrintChild(*e.args[0], prec + 1) +
            (e.negated ? " NOT BETWEEN " : " BETWEEN ") +
            PrintChild(*e.args[1], prec + 1) + " AND " +
            PrintChild(*e.args[2], prec + 1);
      break;
    case ExprKind::kIsNull:
      prec = 4;
      out = PrintChild(*e.args[0], prec + 1) +
            (e.negated ? " IS NOT NULL" : " IS NULL");
      break;
    case ExprKind::kExtract:
      out = "EXTRACT(" + e.extract_field + " FROM " +
            PrintExprPrec(*e.args[0], 0) + ")";
      break;
    case ExprKind::kInterval:
      out = "INTERVAL '" + e.args[0]->literal.ToString() + "' " +
            e.interval_unit;
      break;
  }
  if (prec < parent_prec) return "(" + out + ")";
  return out;
}

std::string PrintTableRef(const TableRef& t) {
  switch (t.kind) {
    case TableRef::Kind::kBase:
      return t.alias.empty() ? t.name : t.name + " " + t.alias;
    case TableRef::Kind::kSubquery:
      return "(" + PrintSelect(*t.subquery) + ") AS " + t.alias;
    case TableRef::Kind::kJoin:
      return PrintTableRef(*t.left) +
             (t.join_type == JoinType::kLeft ? " LEFT JOIN " : " JOIN ") +
             PrintTableRef(*t.right) + " ON " +
             PrintExprPrec(*t.join_cond, 0);
  }
  return "?";
}

}  // namespace

std::string PrintExpr(const Expr& e) { return PrintExprPrec(e, 0); }

std::string PrintSelect(const SelectStmt& s) {
  std::string out = "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < s.items.size(); ++i) {
    if (i) out += ", ";
    out += PrintExpr(*s.items[i].expr);
    if (!s.items[i].alias.empty()) out += " AS " + s.items[i].alias;
  }
  if (!s.from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < s.from.size(); ++i) {
      if (i) out += ", ";
      out += PrintTableRef(*s.from[i]);
    }
  }
  if (s.where) out += " WHERE " + PrintExpr(*s.where);
  if (!s.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i) out += ", ";
      out += PrintExpr(*s.group_by[i]);
    }
  }
  if (s.having) out += " HAVING " + PrintExpr(*s.having);
  if (!s.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i) out += ", ";
      out += PrintExpr(*s.order_by[i].expr);
      if (s.order_by[i].desc) out += " DESC";
    }
  }
  if (s.limit >= 0) out += " LIMIT " + std::to_string(s.limit);
  if (s.offset > 0) out += " OFFSET " + std::to_string(s.offset);
  return out;
}

std::string PrintStmt(const Stmt& s) {
  switch (s.kind) {
    case Stmt::Kind::kSelect:
      return PrintSelect(*s.select);
    case Stmt::Kind::kCreateTable: {
      const auto& ct = *s.create_table;
      std::string out = "CREATE TABLE " + ct.name;
      if (ct.mt_specific) out += " SPECIFIC";
      out += " (";
      bool first = true;
      for (const auto& c : ct.columns) {
        if (!first) out += ", ";
        first = false;
        out += c.name + " " + c.type.ToString();
        if (c.not_null) out += " NOT NULL";
        switch (c.comparability) {
          case Comparability::kComparable:
            out += " COMPARABLE";
            break;
          case Comparability::kConvertible:
            out += " CONVERTIBLE @" + c.to_universal_fn + " @" +
                   c.from_universal_fn;
            break;
          case Comparability::kTenantSpecific:
            out += " SPECIFIC";
            break;
          case Comparability::kDefault:
            break;
        }
      }
      for (const auto& c : ct.constraints) {
        out += ", CONSTRAINT " + c.name + " ";
        switch (c.kind) {
          case TableConstraint::Kind::kPrimaryKey:
            out += "PRIMARY KEY (" + JoinStrings(c.columns, ", ") + ")";
            break;
          case TableConstraint::Kind::kForeignKey:
            out += "FOREIGN KEY (" + JoinStrings(c.columns, ", ") +
                   ") REFERENCES " + c.ref_table + " (" +
                   JoinStrings(c.ref_columns, ", ") + ")";
            break;
          case TableConstraint::Kind::kCheck:
            out += "CHECK (" + PrintExpr(*c.check) + ")";
            break;
        }
      }
      out += ")";
      if (ct.partition.method == PartitionSpec::Method::kHash) {
        out += " PARTITION BY HASH (" + ct.partition.column + ") PARTITIONS " +
               std::to_string(ct.partition.count);
      } else if (ct.partition.method == PartitionSpec::Method::kList) {
        out += " PARTITION BY LIST (" + ct.partition.column + ") (";
        for (size_t g = 0; g < ct.partition.lists.size(); ++g) {
          if (g) out += ", ";
          out += "VALUES (";
          for (size_t i = 0; i < ct.partition.lists[g].size(); ++i) {
            if (i) out += ", ";
            out += std::to_string(ct.partition.lists[g][i]);
          }
          out += ")";
        }
        out += ")";
      }
      return out;
    }
    case Stmt::Kind::kCreateIndex: {
      const auto& ci = *s.create_index;
      return "CREATE INDEX " + ci.name + " ON " + ci.table + " (" +
             JoinStrings(ci.columns, ", ") + ")";
    }
    case Stmt::Kind::kCreateView:
      return "CREATE VIEW " + s.create_view->name + " AS " +
             PrintSelect(*s.create_view->select);
    case Stmt::Kind::kCreateFunction: {
      const auto& cf = *s.create_function;
      std::string out = "CREATE FUNCTION " + cf.name + " (";
      for (size_t i = 0; i < cf.arg_types.size(); ++i) {
        if (i) out += ", ";
        out += cf.arg_types[i].ToString();
      }
      out += ") RETURNS " + cf.return_type.ToString() + " AS '" + cf.body_sql +
             "' LANGUAGE SQL";
      if (cf.volatility == Volatility::kImmutable) out += " IMMUTABLE";
      if (cf.volatility == Volatility::kStable) out += " STABLE";
      return out;
    }
    case Stmt::Kind::kInsert: {
      const auto& ins = *s.insert;
      std::string out = "INSERT INTO " + ins.table;
      if (!ins.columns.empty()) {
        out += " (" + JoinStrings(ins.columns, ", ") + ")";
      }
      if (ins.select) {
        out += " " + PrintSelect(*ins.select);
      } else {
        out += " VALUES ";
        for (size_t r = 0; r < ins.rows.size(); ++r) {
          if (r) out += ", ";
          out += "(";
          for (size_t i = 0; i < ins.rows[r].size(); ++i) {
            if (i) out += ", ";
            out += PrintExpr(*ins.rows[r][i]);
          }
          out += ")";
        }
      }
      return out;
    }
    case Stmt::Kind::kUpdate: {
      const auto& up = *s.update;
      std::string out = "UPDATE " + up.table + " SET ";
      for (size_t i = 0; i < up.assignments.size(); ++i) {
        if (i) out += ", ";
        out += up.assignments[i].first + " = " +
               PrintExpr(*up.assignments[i].second);
      }
      if (up.where) out += " WHERE " + PrintExpr(*up.where);
      return out;
    }
    case Stmt::Kind::kDelete: {
      std::string out = "DELETE FROM " + s.del->table;
      if (s.del->where) out += " WHERE " + PrintExpr(*s.del->where);
      return out;
    }
    case Stmt::Kind::kGrant: {
      const auto& g = *s.grant;
      std::string out = g.revoke ? "REVOKE " : "GRANT ";
      out += JoinStrings(g.privileges, ", ");
      out += " ON ";
      out += g.on_database ? "DATABASE" : g.table;
      out += g.revoke ? " FROM " : " TO ";
      out += g.to_all ? "ALL" : std::to_string(g.grantee);
      return out;
    }
    case Stmt::Kind::kSetScope:
      return "SET SCOPE = \"" + s.set_scope->scope_text + "\"";
    case Stmt::Kind::kDrop:
      return std::string("DROP ") +
             (s.drop->what == DropStmt::What::kTable  ? "TABLE "
              : s.drop->what == DropStmt::What::kView ? "VIEW "
                                                      : "INDEX ") +
             s.drop->name;
  }
  return "?";
}

bool ExprEquals(const Expr& a, const Expr& b) {
  return PrintExpr(a) == PrintExpr(b);
}

}  // namespace sql
}  // namespace mtbase
