#include "sql/lexer.h"

#include <cctype>

namespace mtbase {
namespace sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.pos = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      tok.kind = TokenKind::kIdentifier;
      tok.text = text.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i;
      bool has_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(text[j])) ||
                       (text[j] == '.' && !has_dot))) {
        if (text[j] == '.') has_dot = true;
        ++j;
      }
      tok.kind = has_dot ? TokenKind::kDecimal : TokenKind::kInteger;
      tok.text = text.substr(i, j - i);
      i = j;
    } else if (c == '\'' || c == '"') {
      char quote = c;
      size_t j = i + 1;
      std::string content;
      bool closed = false;
      while (j < n) {
        if (text[j] == quote) {
          if (j + 1 < n && text[j + 1] == quote) {  // escaped quote
            content += quote;
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        content += text[j++];
      }
      if (!closed) {
        return Status::SyntaxError("unterminated string literal at offset " +
                                   std::to_string(i));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(content);
      i = j;
    } else if (c == '$' && i + 1 < n &&
               std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      tok.kind = TokenKind::kParam;
      tok.text = text.substr(i + 1, j - i - 1);
      i = j;
    } else {
      // Multi-char operators first.
      auto two = (i + 1 < n) ? text.substr(i, 2) : std::string();
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
          two == "||") {
        tok.kind = TokenKind::kSymbol;
        tok.text = two == "!=" ? "<>" : two;
        i += 2;
      } else if (std::string("(),.;=<>+-*/@?").find(c) != std::string::npos) {
        tok.kind = TokenKind::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      } else {
        return Status::SyntaxError(std::string("unexpected character '") + c +
                                   "' at offset " + std::to_string(i));
      }
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.pos = n;
  out.push_back(end);
  return out;
}

}  // namespace sql
}  // namespace mtbase
