#include "sql/ast.h"

namespace mtbase {
namespace sql {

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->qualifier = qualifier;
  e->column = column;
  e->op = op;
  e->fname = fname;
  e->distinct = distinct;
  e->negated = negated;
  e->extract_field = extract_field;
  e->interval_unit = interval_unit;
  e->param_index = param_index;
  for (const auto& a : args) e->args.push_back(a->Clone());
  if (case_operand) e->case_operand = case_operand->Clone();
  if (else_expr) e->else_expr = else_expr->Clone();
  if (subquery) e->subquery = subquery->Clone();
  return e;
}

ExprPtr Lit(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr IntLit(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr StrLit(std::string s) { return Lit(Value::Str(std::move(s))); }

ExprPtr Col(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Col(std::string column) { return Col("", std::move(column)); }

ExprPtr Unary(std::string op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->op = std::move(op);
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr Binary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr Func(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->fname = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr ScalarSubquery(std::unique_ptr<SelectStmt> q) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kScalarSubquery;
  e->subquery = std::move(q);
  return e;
}

ExprPtr AndAll(std::vector<ExprPtr> exprs) {
  ExprPtr out;
  for (auto& e : exprs) {
    if (!e) continue;
    out = out ? Binary("AND", std::move(out), std::move(e)) : std::move(e);
  }
  return out;
}

std::unique_ptr<TableRef> TableRef::Clone() const {
  auto t = std::make_unique<TableRef>();
  t->kind = kind;
  t->name = name;
  t->alias = alias;
  if (subquery) t->subquery = subquery->Clone();
  if (left) t->left = left->Clone();
  if (right) t->right = right->Clone();
  t->join_type = join_type;
  if (join_cond) t->join_cond = join_cond->Clone();
  return t;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto s = std::make_unique<SelectStmt>();
  s->distinct = distinct;
  for (const auto& item : items) {
    SelectItem it;
    it.expr = item.expr->Clone();
    it.alias = item.alias;
    s->items.push_back(std::move(it));
  }
  for (const auto& t : from) s->from.push_back(t->Clone());
  if (where) s->where = where->Clone();
  for (const auto& g : group_by) s->group_by.push_back(g->Clone());
  if (having) s->having = having->Clone();
  for (const auto& o : order_by) {
    OrderItem oi;
    oi.expr = o.expr->Clone();
    oi.desc = o.desc;
    s->order_by.push_back(std::move(oi));
  }
  s->limit = limit;
  s->offset = offset;
  return s;
}

namespace {

void MaxParam(const Expr& e, int* out);

void MaxParam(const SelectStmt& s, int* out) {
  for (const auto& item : s.items) MaxParam(*item.expr, out);
  for (const auto& t : s.from) {
    const TableRef* refs[] = {t.get()};
    // Walk joins iteratively via a small stack (join trees nest left/right).
    std::vector<const TableRef*> stack(refs, refs + 1);
    while (!stack.empty()) {
      const TableRef* r = stack.back();
      stack.pop_back();
      if (r->subquery) MaxParam(*r->subquery, out);
      if (r->join_cond) MaxParam(*r->join_cond, out);
      if (r->left) stack.push_back(r->left.get());
      if (r->right) stack.push_back(r->right.get());
    }
  }
  if (s.where) MaxParam(*s.where, out);
  for (const auto& g : s.group_by) MaxParam(*g, out);
  if (s.having) MaxParam(*s.having, out);
  for (const auto& o : s.order_by) MaxParam(*o.expr, out);
}

void MaxParam(const Expr& e, int* out) {
  if (e.kind == ExprKind::kParam && e.param_index > *out) {
    *out = e.param_index;
  }
  for (const auto& a : e.args) MaxParam(*a, out);
  if (e.case_operand) MaxParam(*e.case_operand, out);
  if (e.else_expr) MaxParam(*e.else_expr, out);
  if (e.subquery) MaxParam(*e.subquery, out);
}

}  // namespace

int MaxParamIndex(const Expr& e) {
  int out = 0;
  MaxParam(e, &out);
  return out;
}

int MaxParamIndex(const SelectStmt& s) {
  int out = 0;
  MaxParam(s, &out);
  return out;
}

int MaxParamIndex(const Stmt& s) {
  int out = 0;
  switch (s.kind) {
    case Stmt::Kind::kSelect:
      MaxParam(*s.select, &out);
      break;
    case Stmt::Kind::kInsert:
      for (const auto& row : s.insert->rows) {
        for (const auto& e : row) MaxParam(*e, &out);
      }
      if (s.insert->select) MaxParam(*s.insert->select, &out);
      break;
    case Stmt::Kind::kUpdate:
      for (const auto& [col, e] : s.update->assignments) {
        (void)col;
        MaxParam(*e, &out);
      }
      if (s.update->where) MaxParam(*s.update->where, &out);
      break;
    case Stmt::Kind::kDelete:
      if (s.del->where) MaxParam(*s.del->where, &out);
      break;
    default:
      break;
  }
  return out;
}

std::string TypeDecl::ToString() const {
  switch (id) {
    case TypeId::kInt:
      return "INTEGER";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kDecimal:
      return "DECIMAL(" + std::to_string(precision) + "," +
             std::to_string(scale) + ")";
    case TypeId::kString:
      return length > 0 ? "VARCHAR(" + std::to_string(length) + ")" : "TEXT";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kBool:
      return "BOOLEAN";
    default:
      return "NULL";
  }
}

}  // namespace sql
}  // namespace mtbase
