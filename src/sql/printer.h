// SQL printer: renders the AST back to SQL text.
//
// The MTBase middleware is source-to-source: the rewriter transforms the
// MTSQL AST and this printer produces the SQL text that is sent to the
// underlying DBMS. Printing round-trips through the parser (tested).
#ifndef MTBASE_SQL_PRINTER_H_
#define MTBASE_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace mtbase {
namespace sql {

std::string PrintExpr(const Expr& e);
std::string PrintSelect(const SelectStmt& s);
std::string PrintStmt(const Stmt& s);

/// Structural equality via canonical text (used by tests and optimizer).
bool ExprEquals(const Expr& a, const Expr& b);

}  // namespace sql
}  // namespace mtbase

#endif  // MTBASE_SQL_PRINTER_H_
