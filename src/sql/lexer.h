// Hand-written SQL lexer.
#ifndef MTBASE_SQL_LEXER_H_
#define MTBASE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace mtbase {
namespace sql {

/// Tokenize `text`; the returned vector always ends with a kEnd token.
/// Supports SQL comments (`-- ...` to end of line).
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace sql
}  // namespace mtbase

#endif  // MTBASE_SQL_LEXER_H_
