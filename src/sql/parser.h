// Recursive-descent parser for the SQL/MTSQL dialect.
#ifndef MTBASE_SQL_PARSER_H_
#define MTBASE_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace mtbase {
namespace sql {

/// Parse a single statement (trailing ';' optional).
Result<Stmt> ParseStatement(const std::string& text);

/// Parse a ';'-separated script.
Result<std::vector<Stmt>> ParseScript(const std::string& text);

/// Parse a single SELECT query.
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& text);

/// Parse a scalar expression (used for UDF bodies and tests).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace sql
}  // namespace mtbase

#endif  // MTBASE_SQL_PARSER_H_
