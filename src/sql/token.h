// Token definitions for the SQL/MTSQL lexer.
#ifndef MTBASE_SQL_TOKEN_H_
#define MTBASE_SQL_TOKEN_H_

#include <string>

namespace mtbase {
namespace sql {

enum class TokenKind {
  kEnd,
  kIdentifier,   // employees, E_salary (case-insensitive keywords elsewhere)
  kInteger,      // 42
  kDecimal,      // 0.06
  kString,       // 'abc' or "abc"
  kParam,        // $1 or ? (auto-numbered by the parser)
  kSymbol,       // ( ) , . ; = <> < <= > >= + - * / || @ ?
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // raw text; for strings, the unquoted content
  size_t pos = 0;     // byte offset, for error messages
};

}  // namespace sql
}  // namespace mtbase

#endif  // MTBASE_SQL_TOKEN_H_
