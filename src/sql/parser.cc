#include "sql/parser.h"

#include <cassert>
#include <cerrno>
#include <cstdlib>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace mtbase {
namespace sql {

namespace {

/// std::stoll without the exception: integer tokens are digit-only (the
/// lexer guarantees it), so the only failure mode is overflow past int64_t
/// — which must surface as a syntax error, not std::terminate.
bool ParseInt64(const std::string& text, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Stmt> ParseStmt();
  Result<std::vector<Stmt>> ParseAll();
  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt();
  Result<ExprPtr> ParseExpr();

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  bool MatchSym(const std::string& s);

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool IsKw(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }
  bool MatchKw(const std::string& kw) {
    if (IsKw(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKw(const std::string& kw) {
    if (MatchKw(kw)) return Status::OK();
    return Err("expected keyword " + kw);
  }
  bool IsSym(const std::string& s, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kSymbol && t.text == s;
  }
  Status ExpectSym(const std::string& s) {
    if (MatchSym(s)) return Status::OK();
    return Err("expected '" + s + "'");
  }
  Status Err(const std::string& msg) const {
    return Status::SyntaxError(msg + " near '" + Peek().text + "' (offset " +
                               std::to_string(Peek().pos) + ")");
  }
  Result<std::string> ExpectIdentifier(const std::string& what);

  // Expression precedence chain.
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<std::vector<ExprPtr>> ParseExprList();

  Result<std::unique_ptr<TableRef>> ParseTableRef();
  Result<std::unique_ptr<TableRef>> ParseTablePrimary();
  Result<TypeDecl> ParseType();
  Result<Stmt> ParseCreate();
  Result<Stmt> ParseInsert();
  Result<Stmt> ParseUpdate();
  Result<Stmt> ParseDelete();
  Result<Stmt> ParseGrantOrRevoke(bool revoke);
  Result<Stmt> ParseSetScope();
  Result<Stmt> ParseDrop();

  bool IsReserved(const std::string& word) const;

  std::vector<Token> tokens_;
  int max_param_ = 0;  // highest parameter index seen in this statement
  bool saw_question_param_ = false;
  bool saw_dollar_param_ = false;
  size_t pos_ = 0;
};

bool Parser::MatchSym(const std::string& s) {
  if (IsSym(s)) {
    ++pos_;
    return true;
  }
  return false;
}

Result<std::string> Parser::ExpectIdentifier(const std::string& what) {
  if (Peek().kind != TokenKind::kIdentifier) {
    return Err("expected " + what);
  }
  return Advance().text;
}

bool Parser::IsReserved(const std::string& word) const {
  static const char* kReserved[] = {
      "SELECT", "FROM",  "WHERE",  "GROUP",  "HAVING", "ORDER",  "LIMIT",
      "AND",    "OR",    "NOT",    "AS",     "ON",     "JOIN",   "LEFT",
      "INNER",  "OUTER", "UNION",  "WHEN",   "THEN",   "ELSE",   "END",
      "IN",     "IS",    "LIKE",   "BETWEEN", "EXISTS", "DISTINCT", "BY",
      "ASC",    "DESC",  "VALUES", "SET",    "INTO",   "CASE",   "TO",
      "OFFSET",
  };
  for (const char* r : kReserved) {
    if (EqualsIgnoreCase(word, r)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  MTB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKw("OR")) {
    MTB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = Binary("OR", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  MTB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKw("AND")) {
    MTB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = Binary("AND", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKw("NOT")) {
    MTB_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
    return Unary("NOT", std::move(inner));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  MTB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  for (;;) {
    bool negated = false;
    if (IsKw("NOT") && (IsKw("IN", 1) || IsKw("LIKE", 1) || IsKw("BETWEEN", 1))) {
      Advance();
      negated = true;
    }
    if (MatchKw("IN")) {
      MTB_RETURN_IF_ERROR(ExpectSym("("));
      auto e = std::make_unique<Expr>();
      e->negated = negated;
      if (IsKw("SELECT")) {
        e->kind = ExprKind::kInSubquery;
        MTB_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
        // Tuple IN: lhs may be a row expression.
        if (lhs->kind == ExprKind::kFunction && lhs->fname == "__row") {
          e->args = std::move(lhs->args);
        } else {
          e->args.push_back(std::move(lhs));
        }
      } else {
        e->kind = ExprKind::kInList;
        e->args.push_back(std::move(lhs));
        MTB_ASSIGN_OR_RETURN(auto list, ParseExprList());
        for (auto& item : list) e->args.push_back(std::move(item));
      }
      MTB_RETURN_IF_ERROR(ExpectSym(")"));
      lhs = std::move(e);
      continue;
    }
    if (MatchKw("LIKE")) {
      MTB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = Binary(negated ? "NOT LIKE" : "LIKE", std::move(lhs), std::move(rhs));
      continue;
    }
    if (MatchKw("BETWEEN")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->args.push_back(std::move(lhs));
      MTB_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      MTB_RETURN_IF_ERROR(ExpectKw("AND"));
      MTB_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      e->args.push_back(std::move(lo));
      e->args.push_back(std::move(hi));
      lhs = std::move(e);
      continue;
    }
    if (MatchKw("IS")) {
      bool isn = MatchKw("NOT");
      MTB_RETURN_IF_ERROR(ExpectKw("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = isn;
      e->args.push_back(std::move(lhs));
      lhs = std::move(e);
      continue;
    }
    if (Peek().kind == TokenKind::kSymbol) {
      const std::string& s = Peek().text;
      if (s == "=" || s == "<>" || s == "<" || s == "<=" || s == ">" ||
          s == ">=") {
        std::string op = Advance().text;
        MTB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        lhs = Binary(op, std::move(lhs), std::move(rhs));
        continue;
      }
    }
    break;
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  MTB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  for (;;) {
    if (IsSym("+") || IsSym("-") || IsSym("||")) {
      std::string op = Advance().text;
      MTB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    } else {
      break;
    }
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  MTB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  for (;;) {
    if (IsSym("*") || IsSym("/")) {
      std::string op = Advance().text;
      MTB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    } else {
      break;
    }
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchSym("-")) {
    MTB_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
    return Unary("-", std::move(inner));
  }
  if (MatchSym("+")) return ParseUnary();
  return ParsePrimary();
}

Result<std::vector<ExprPtr>> Parser::ParseExprList() {
  std::vector<ExprPtr> out;
  MTB_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
  out.push_back(std::move(first));
  while (MatchSym(",")) {
    MTB_ASSIGN_OR_RETURN(ExprPtr next, ParseExpr());
    out.push_back(std::move(next));
  }
  return out;
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  // Literals.
  if (t.kind == TokenKind::kInteger) {
    int64_t v = 0;
    if (!ParseInt64(t.text, &v)) return Err("integer literal out of range");
    Advance();
    return Lit(Value::Int(v));
  }
  if (t.kind == TokenKind::kDecimal) {
    Advance();
    MTB_ASSIGN_OR_RETURN(Decimal d, Decimal::Parse(t.text));
    return Lit(Value::Dec(d));
  }
  if (t.kind == TokenKind::kString) {
    Advance();
    return StrLit(t.text);
  }
  if (t.kind == TokenKind::kParam) {
    if (saw_question_param_) {
      return Err("cannot mix '?' and '$n' parameter placeholders");
    }
    // The lexer guarantees digits only; bound the width before stoi so an
    // absurd index cannot throw, and reject $0 (parameters are 1-based).
    if (t.text.size() > 4 || std::stoi(t.text) < 1) {
      return Err("parameter index must be between $1 and $9999");
    }
    Advance();
    saw_dollar_param_ = true;
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kParam;
    e->param_index = std::stoi(t.text);
    if (e->param_index > max_param_) max_param_ = e->param_index;
    return ExprPtr(std::move(e));
  }
  // '?' placeholders are numbered left to right within one statement.
  // Mixing them with explicit $n is rejected (the two numbering schemes
  // would silently alias slots otherwise).
  if (IsSym("?")) {
    if (saw_dollar_param_) {
      return Err("cannot mix '?' and '$n' parameter placeholders");
    }
    Advance();
    saw_question_param_ = true;
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kParam;
    e->param_index = ++max_param_;
    return ExprPtr(std::move(e));
  }
  // Parenthesized expression, row expression, or scalar subquery.
  if (MatchSym("(")) {
    if (IsKw("SELECT")) {
      MTB_ASSIGN_OR_RETURN(auto sub, ParseSelectStmt());
      MTB_RETURN_IF_ERROR(ExpectSym(")"));
      return ScalarSubquery(std::move(sub));
    }
    MTB_ASSIGN_OR_RETURN(auto list, ParseExprList());
    MTB_RETURN_IF_ERROR(ExpectSym(")"));
    if (list.size() == 1) return std::move(list[0]);
    // Row expression, only valid before IN.
    return Func("__row", std::move(list));
  }
  if (t.kind != TokenKind::kIdentifier) {
    return Err("expected expression");
  }
  // Keyword-introduced expression forms.
  if (IsKw("CASE")) {
    Advance();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCase;
    if (!IsKw("WHEN")) {
      MTB_ASSIGN_OR_RETURN(e->case_operand, ParseExpr());
    }
    while (MatchKw("WHEN")) {
      MTB_ASSIGN_OR_RETURN(ExprPtr w, ParseExpr());
      MTB_RETURN_IF_ERROR(ExpectKw("THEN"));
      MTB_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
      e->args.push_back(std::move(w));
      e->args.push_back(std::move(v));
    }
    if (e->args.empty()) return Err("CASE without WHEN");
    if (MatchKw("ELSE")) {
      MTB_ASSIGN_OR_RETURN(e->else_expr, ParseExpr());
    }
    MTB_RETURN_IF_ERROR(ExpectKw("END"));
    return ExprPtr(std::move(e));
  }
  if (IsKw("EXISTS")) {
    Advance();
    MTB_RETURN_IF_ERROR(ExpectSym("("));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kExists;
    MTB_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
    MTB_RETURN_IF_ERROR(ExpectSym(")"));
    return ExprPtr(std::move(e));
  }
  if (IsKw("DATE") && Peek(1).kind == TokenKind::kString) {
    Advance();
    MTB_ASSIGN_OR_RETURN(Date d, Date::Parse(Advance().text));
    return Lit(Value::Dat(d));
  }
  if (IsKw("INTERVAL")) {
    Advance();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kInterval;
    int64_t count = 0;
    if ((Peek().kind == TokenKind::kString ||
         Peek().kind == TokenKind::kInteger) &&
        ParseInt64(Peek().text, &count)) {
      Advance();
      e->args.push_back(Lit(Value::Int(count)));
    } else {
      return Err("expected interval count");
    }
    MTB_ASSIGN_OR_RETURN(std::string unit, ExpectIdentifier("interval unit"));
    e->interval_unit = ToUpperCopy(unit);
    if (e->interval_unit != "DAY" && e->interval_unit != "MONTH" &&
        e->interval_unit != "YEAR") {
      return Err("unsupported interval unit " + unit);
    }
    return ExprPtr(std::move(e));
  }
  if (IsKw("EXTRACT")) {
    Advance();
    MTB_RETURN_IF_ERROR(ExpectSym("("));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kExtract;
    MTB_ASSIGN_OR_RETURN(std::string field, ExpectIdentifier("extract field"));
    e->extract_field = ToUpperCopy(field);
    MTB_RETURN_IF_ERROR(ExpectKw("FROM"));
    MTB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    e->args.push_back(std::move(arg));
    MTB_RETURN_IF_ERROR(ExpectSym(")"));
    return ExprPtr(std::move(e));
  }
  if (IsKw("SUBSTRING") && IsSym("(", 1)) {
    Advance();
    Advance();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kFunction;
    e->fname = "SUBSTRING";
    MTB_ASSIGN_OR_RETURN(ExprPtr str, ParseExpr());
    e->args.push_back(std::move(str));
    if (MatchKw("FROM")) {
      MTB_ASSIGN_OR_RETURN(ExprPtr from, ParseExpr());
      e->args.push_back(std::move(from));
      if (MatchKw("FOR")) {
        MTB_ASSIGN_OR_RETURN(ExprPtr len, ParseExpr());
        e->args.push_back(std::move(len));
      }
    } else {
      while (MatchSym(",")) {
        MTB_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
        e->args.push_back(std::move(a));
      }
    }
    MTB_RETURN_IF_ERROR(ExpectSym(")"));
    return ExprPtr(std::move(e));
  }
  if (IsKw("NULL")) {
    Advance();
    return Lit(Value::Null());
  }
  if (IsKw("TRUE")) {
    Advance();
    return Lit(Value::Bool(true));
  }
  if (IsKw("FALSE")) {
    Advance();
    return Lit(Value::Bool(false));
  }
  // Function call or column reference.
  std::string name = Advance().text;
  if (MatchSym("(")) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kFunction;
    e->fname = name;
    if (MatchSym("*")) {
      auto star = std::make_unique<Expr>();
      star->kind = ExprKind::kStar;
      e->args.push_back(std::move(star));
    } else if (!IsSym(")")) {
      if (MatchKw("DISTINCT")) e->distinct = true;
      MTB_ASSIGN_OR_RETURN(auto args, ParseExprList());
      e->args = std::move(args);
    }
    MTB_RETURN_IF_ERROR(ExpectSym(")"));
    return ExprPtr(std::move(e));
  }
  // Qualified name: t.col or t.*
  if (MatchSym(".")) {
    if (MatchSym("*")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kStar;
      e->qualifier = name;
      return ExprPtr(std::move(e));
    }
    MTB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    return Col(name, col);
  }
  return Col(name);
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelectStmt() {
  MTB_RETURN_IF_ERROR(ExpectKw("SELECT"));
  auto s = std::make_unique<SelectStmt>();
  s->distinct = MatchKw("DISTINCT");
  // Select list.
  for (;;) {
    SelectItem item;
    if (MatchSym("*")) {
      auto star = std::make_unique<Expr>();
      star->kind = ExprKind::kStar;
      item.expr = std::move(star);
    } else {
      MTB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKw("AS")) {
        MTB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 !IsReserved(Peek().text)) {
        item.alias = Advance().text;
      }
    }
    s->items.push_back(std::move(item));
    if (!MatchSym(",")) break;
  }
  if (MatchKw("FROM")) {
    for (;;) {
      MTB_ASSIGN_OR_RETURN(auto tref, ParseTableRef());
      s->from.push_back(std::move(tref));
      if (!MatchSym(",")) break;
    }
  }
  if (MatchKw("WHERE")) {
    MTB_ASSIGN_OR_RETURN(s->where, ParseExpr());
  }
  if (MatchKw("GROUP")) {
    MTB_RETURN_IF_ERROR(ExpectKw("BY"));
    MTB_ASSIGN_OR_RETURN(s->group_by, ParseExprList());
  }
  if (MatchKw("HAVING")) {
    MTB_ASSIGN_OR_RETURN(s->having, ParseExpr());
  }
  if (MatchKw("ORDER")) {
    MTB_RETURN_IF_ERROR(ExpectKw("BY"));
    for (;;) {
      OrderItem oi;
      MTB_ASSIGN_OR_RETURN(oi.expr, ParseExpr());
      if (MatchKw("DESC")) {
        oi.desc = true;
      } else {
        MatchKw("ASC");
      }
      s->order_by.push_back(std::move(oi));
      if (!MatchSym(",")) break;
    }
  }
  if (MatchKw("LIMIT")) {
    if (Peek().kind != TokenKind::kInteger ||
        !ParseInt64(Peek().text, &s->limit)) {
      return Err("expected LIMIT count");
    }
    Advance();
    if (MatchKw("OFFSET")) {
      if (Peek().kind != TokenKind::kInteger ||
          !ParseInt64(Peek().text, &s->offset)) {
        return Err("expected OFFSET count");
      }
      Advance();
    }
  }
  return s;
}

Result<std::unique_ptr<TableRef>> Parser::ParseTablePrimary() {
  auto t = std::make_unique<TableRef>();
  if (MatchSym("(")) {
    t->kind = TableRef::Kind::kSubquery;
    MTB_ASSIGN_OR_RETURN(t->subquery, ParseSelectStmt());
    MTB_RETURN_IF_ERROR(ExpectSym(")"));
    MatchKw("AS");
    MTB_ASSIGN_OR_RETURN(t->alias, ExpectIdentifier("subquery alias"));
    return t;
  }
  t->kind = TableRef::Kind::kBase;
  MTB_ASSIGN_OR_RETURN(t->name, ExpectIdentifier("table name"));
  if (MatchKw("AS")) {
    MTB_ASSIGN_OR_RETURN(t->alias, ExpectIdentifier("table alias"));
  } else if (Peek().kind == TokenKind::kIdentifier && !IsReserved(Peek().text) &&
             !IsKw("JOIN") && !IsKw("LEFT") && !IsKw("INNER")) {
    t->alias = Advance().text;
  }
  return t;
}

Result<std::unique_ptr<TableRef>> Parser::ParseTableRef() {
  MTB_ASSIGN_OR_RETURN(auto left, ParseTablePrimary());
  for (;;) {
    JoinType jt = JoinType::kInner;
    if (IsKw("LEFT")) {
      Advance();
      MatchKw("OUTER");
      MTB_RETURN_IF_ERROR(ExpectKw("JOIN"));
      jt = JoinType::kLeft;
    } else if (IsKw("INNER") && IsKw("JOIN", 1)) {
      Advance();
      Advance();
    } else if (IsKw("JOIN")) {
      Advance();
    } else {
      break;
    }
    MTB_ASSIGN_OR_RETURN(auto right, ParseTablePrimary());
    auto join = std::make_unique<TableRef>();
    join->kind = TableRef::Kind::kJoin;
    join->join_type = jt;
    join->left = std::move(left);
    join->right = std::move(right);
    MTB_RETURN_IF_ERROR(ExpectKw("ON"));
    MTB_ASSIGN_OR_RETURN(join->join_cond, ParseExpr());
    left = std::move(join);
  }
  return left;
}

// ---------------------------------------------------------------------------
// DDL / DML / DCL
// ---------------------------------------------------------------------------

Result<TypeDecl> Parser::ParseType() {
  MTB_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("type name"));
  TypeDecl t;
  std::string u = ToUpperCopy(name);
  if (u == "INTEGER" || u == "INT" || u == "BIGINT") {
    t.id = TypeId::kInt;
  } else if (u == "DOUBLE" || u == "FLOAT" || u == "REAL") {
    t.id = TypeId::kDouble;
  } else if (u == "DECIMAL" || u == "NUMERIC") {
    t.id = TypeId::kDecimal;
    if (MatchSym("(")) {
      if (Peek().kind != TokenKind::kInteger) return Err("expected precision");
      t.precision = std::stoi(Advance().text);
      if (MatchSym(",")) {
        if (Peek().kind != TokenKind::kInteger) return Err("expected scale");
        t.scale = std::stoi(Advance().text);
      }
      MTB_RETURN_IF_ERROR(ExpectSym(")"));
    } else {
      t.precision = 15;
      t.scale = 2;
    }
  } else if (u == "VARCHAR" || u == "CHAR" || u == "TEXT") {
    t.id = TypeId::kString;
    if (MatchSym("(")) {
      if (Peek().kind != TokenKind::kInteger) return Err("expected length");
      t.length = std::stoi(Advance().text);
      MTB_RETURN_IF_ERROR(ExpectSym(")"));
    }
  } else if (u == "DATE") {
    t.id = TypeId::kDate;
  } else if (u == "BOOLEAN" || u == "BOOL") {
    t.id = TypeId::kBool;
  } else {
    return Err("unknown type " + name);
  }
  return t;
}

Result<Stmt> Parser::ParseCreate() {
  MTB_RETURN_IF_ERROR(ExpectKw("CREATE"));
  if (MatchKw("TABLE")) {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kCreateTable;
    stmt.create_table = std::make_unique<CreateTableStmt>();
    auto& ct = *stmt.create_table;
    MTB_ASSIGN_OR_RETURN(ct.name, ExpectIdentifier("table name"));
    if (MatchKw("SPECIFIC")) {
      ct.mt_specific = true;
    } else {
      MatchKw("GLOBAL");
    }
    MTB_RETURN_IF_ERROR(ExpectSym("("));
    for (;;) {
      if (MatchKw("CONSTRAINT")) {
        TableConstraint c;
        MTB_ASSIGN_OR_RETURN(c.name, ExpectIdentifier("constraint name"));
        if (MatchKw("PRIMARY")) {
          MTB_RETURN_IF_ERROR(ExpectKw("KEY"));
          c.kind = TableConstraint::Kind::kPrimaryKey;
          MTB_RETURN_IF_ERROR(ExpectSym("("));
          for (;;) {
            MTB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
            c.columns.push_back(col);
            if (!MatchSym(",")) break;
          }
          MTB_RETURN_IF_ERROR(ExpectSym(")"));
        } else if (MatchKw("FOREIGN")) {
          MTB_RETURN_IF_ERROR(ExpectKw("KEY"));
          c.kind = TableConstraint::Kind::kForeignKey;
          MTB_RETURN_IF_ERROR(ExpectSym("("));
          for (;;) {
            MTB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
            c.columns.push_back(col);
            if (!MatchSym(",")) break;
          }
          MTB_RETURN_IF_ERROR(ExpectSym(")"));
          MTB_RETURN_IF_ERROR(ExpectKw("REFERENCES"));
          MTB_ASSIGN_OR_RETURN(c.ref_table, ExpectIdentifier("ref table"));
          MTB_RETURN_IF_ERROR(ExpectSym("("));
          for (;;) {
            MTB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
            c.ref_columns.push_back(col);
            if (!MatchSym(",")) break;
          }
          MTB_RETURN_IF_ERROR(ExpectSym(")"));
        } else if (MatchKw("CHECK")) {
          c.kind = TableConstraint::Kind::kCheck;
          MTB_RETURN_IF_ERROR(ExpectSym("("));
          MTB_ASSIGN_OR_RETURN(c.check, ParseExpr());
          MTB_RETURN_IF_ERROR(ExpectSym(")"));
        } else {
          return Err("expected PRIMARY KEY, FOREIGN KEY or CHECK");
        }
        ct.constraints.push_back(std::move(c));
      } else {
        ColumnDef col;
        MTB_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
        MTB_ASSIGN_OR_RETURN(col.type, ParseType());
        for (;;) {
          if (MatchKw("NOT")) {
            MTB_RETURN_IF_ERROR(ExpectKw("NULL"));
            col.not_null = true;
          } else if (MatchKw("SPECIFIC")) {
            col.comparability = Comparability::kTenantSpecific;
          } else if (MatchKw("COMPARABLE")) {
            col.comparability = Comparability::kComparable;
          } else if (MatchKw("CONVERTIBLE")) {
            col.comparability = Comparability::kConvertible;
            MTB_RETURN_IF_ERROR(ExpectSym("@"));
            MTB_ASSIGN_OR_RETURN(col.to_universal_fn,
                                 ExpectIdentifier("toUniversal function"));
            MTB_RETURN_IF_ERROR(ExpectSym("@"));
            MTB_ASSIGN_OR_RETURN(col.from_universal_fn,
                                 ExpectIdentifier("fromUniversal function"));
          } else {
            break;
          }
        }
        ct.columns.push_back(std::move(col));
      }
      if (!MatchSym(",")) break;
    }
    MTB_RETURN_IF_ERROR(ExpectSym(")"));
    if (MatchKw("PARTITION")) {
      MTB_RETURN_IF_ERROR(ExpectKw("BY"));
      auto& ps = ct.partition;
      if (MatchKw("HASH")) {
        ps.method = PartitionSpec::Method::kHash;
        MTB_RETURN_IF_ERROR(ExpectSym("("));
        MTB_ASSIGN_OR_RETURN(ps.column, ExpectIdentifier("partition column"));
        MTB_RETURN_IF_ERROR(ExpectSym(")"));
        MTB_RETURN_IF_ERROR(ExpectKw("PARTITIONS"));
        if (Peek().kind != TokenKind::kInteger ||
            !ParseInt64(Peek().text, &ps.count)) {
          return Err("expected partition count");
        }
        Advance();
        if (ps.count < 1) return Err("partition count must be positive");
      } else if (MatchKw("LIST")) {
        ps.method = PartitionSpec::Method::kList;
        MTB_RETURN_IF_ERROR(ExpectSym("("));
        MTB_ASSIGN_OR_RETURN(ps.column, ExpectIdentifier("partition column"));
        MTB_RETURN_IF_ERROR(ExpectSym(")"));
        MTB_RETURN_IF_ERROR(ExpectSym("("));
        for (;;) {
          MTB_RETURN_IF_ERROR(ExpectKw("VALUES"));
          MTB_RETURN_IF_ERROR(ExpectSym("("));
          std::vector<int64_t> group;
          for (;;) {
            bool neg = MatchSym("-");
            int64_t v = 0;
            if (Peek().kind != TokenKind::kInteger ||
                !ParseInt64(Peek().text, &v)) {
              return Err("expected integer partition list value");
            }
            Advance();
            group.push_back(neg ? -v : v);
            if (!MatchSym(",")) break;
          }
          MTB_RETURN_IF_ERROR(ExpectSym(")"));
          ps.lists.push_back(std::move(group));
          if (!MatchSym(",")) break;
        }
        MTB_RETURN_IF_ERROR(ExpectSym(")"));
      } else {
        return Err("expected HASH or LIST after PARTITION BY");
      }
    }
    return stmt;
  }
  if (MatchKw("INDEX")) {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kCreateIndex;
    stmt.create_index = std::make_unique<CreateIndexStmt>();
    auto& ci = *stmt.create_index;
    MTB_ASSIGN_OR_RETURN(ci.name, ExpectIdentifier("index name"));
    MTB_RETURN_IF_ERROR(ExpectKw("ON"));
    MTB_ASSIGN_OR_RETURN(ci.table, ExpectIdentifier("table name"));
    MTB_RETURN_IF_ERROR(ExpectSym("("));
    for (;;) {
      MTB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
      ci.columns.push_back(col);
      if (!MatchSym(",")) break;
    }
    MTB_RETURN_IF_ERROR(ExpectSym(")"));
    return stmt;
  }
  if (MatchKw("VIEW")) {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kCreateView;
    stmt.create_view = std::make_unique<CreateViewStmt>();
    MTB_ASSIGN_OR_RETURN(stmt.create_view->name,
                         ExpectIdentifier("view name"));
    MTB_RETURN_IF_ERROR(ExpectKw("AS"));
    MTB_ASSIGN_OR_RETURN(stmt.create_view->select, ParseSelectStmt());
    return stmt;
  }
  if (MatchKw("FUNCTION")) {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kCreateFunction;
    stmt.create_function = std::make_unique<CreateFunctionStmt>();
    auto& cf = *stmt.create_function;
    MTB_ASSIGN_OR_RETURN(cf.name, ExpectIdentifier("function name"));
    MTB_RETURN_IF_ERROR(ExpectSym("("));
    if (!IsSym(")")) {
      for (;;) {
        MTB_ASSIGN_OR_RETURN(TypeDecl t, ParseType());
        cf.arg_types.push_back(t);
        if (!MatchSym(",")) break;
      }
    }
    MTB_RETURN_IF_ERROR(ExpectSym(")"));
    MTB_RETURN_IF_ERROR(ExpectKw("RETURNS"));
    MTB_ASSIGN_OR_RETURN(cf.return_type, ParseType());
    MTB_RETURN_IF_ERROR(ExpectKw("AS"));
    if (Peek().kind != TokenKind::kString) return Err("expected function body");
    cf.body_sql = Advance().text;
    MTB_RETURN_IF_ERROR(ExpectKw("LANGUAGE"));
    MTB_RETURN_IF_ERROR(ExpectKw("SQL"));
    if (MatchKw("IMMUTABLE")) {
      cf.volatility = Volatility::kImmutable;
    } else if (MatchKw("STABLE")) {
      cf.volatility = Volatility::kStable;
    } else if (MatchKw("VOLATILE")) {
      cf.volatility = Volatility::kVolatile;
    }
    return stmt;
  }
  return Err("expected TABLE, VIEW, INDEX or FUNCTION after CREATE");
}

Result<Stmt> Parser::ParseInsert() {
  MTB_RETURN_IF_ERROR(ExpectKw("INSERT"));
  MTB_RETURN_IF_ERROR(ExpectKw("INTO"));
  Stmt stmt;
  stmt.kind = Stmt::Kind::kInsert;
  stmt.insert = std::make_unique<InsertStmt>();
  auto& ins = *stmt.insert;
  MTB_ASSIGN_OR_RETURN(ins.table, ExpectIdentifier("table name"));
  if (MatchSym("(")) {
    for (;;) {
      MTB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
      ins.columns.push_back(col);
      if (!MatchSym(",")) break;
    }
    MTB_RETURN_IF_ERROR(ExpectSym(")"));
  }
  if (MatchKw("VALUES")) {
    for (;;) {
      MTB_RETURN_IF_ERROR(ExpectSym("("));
      MTB_ASSIGN_OR_RETURN(auto row, ParseExprList());
      MTB_RETURN_IF_ERROR(ExpectSym(")"));
      ins.rows.push_back(std::move(row));
      if (!MatchSym(",")) break;
    }
  } else if (IsKw("SELECT") || IsSym("(")) {
    bool paren = MatchSym("(");
    MTB_ASSIGN_OR_RETURN(ins.select, ParseSelectStmt());
    if (paren) MTB_RETURN_IF_ERROR(ExpectSym(")"));
  } else {
    return Err("expected VALUES or SELECT");
  }
  return stmt;
}

Result<Stmt> Parser::ParseUpdate() {
  MTB_RETURN_IF_ERROR(ExpectKw("UPDATE"));
  Stmt stmt;
  stmt.kind = Stmt::Kind::kUpdate;
  stmt.update = std::make_unique<UpdateStmt>();
  auto& up = *stmt.update;
  MTB_ASSIGN_OR_RETURN(up.table, ExpectIdentifier("table name"));
  MTB_RETURN_IF_ERROR(ExpectKw("SET"));
  for (;;) {
    MTB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
    MTB_RETURN_IF_ERROR(ExpectSym("="));
    MTB_ASSIGN_OR_RETURN(ExprPtr val, ParseExpr());
    up.assignments.emplace_back(col, std::move(val));
    if (!MatchSym(",")) break;
  }
  if (MatchKw("WHERE")) {
    MTB_ASSIGN_OR_RETURN(up.where, ParseExpr());
  }
  return stmt;
}

Result<Stmt> Parser::ParseDelete() {
  MTB_RETURN_IF_ERROR(ExpectKw("DELETE"));
  MTB_RETURN_IF_ERROR(ExpectKw("FROM"));
  Stmt stmt;
  stmt.kind = Stmt::Kind::kDelete;
  stmt.del = std::make_unique<DeleteStmt>();
  MTB_ASSIGN_OR_RETURN(stmt.del->table, ExpectIdentifier("table name"));
  if (MatchKw("WHERE")) {
    MTB_ASSIGN_OR_RETURN(stmt.del->where, ParseExpr());
  }
  return stmt;
}

Result<Stmt> Parser::ParseGrantOrRevoke(bool revoke) {
  Advance();  // GRANT / REVOKE
  Stmt stmt;
  stmt.kind = Stmt::Kind::kGrant;
  stmt.grant = std::make_unique<GrantStmt>();
  auto& g = *stmt.grant;
  g.revoke = revoke;
  for (;;) {
    MTB_ASSIGN_OR_RETURN(std::string priv, ExpectIdentifier("privilege"));
    g.privileges.push_back(ToUpperCopy(priv));
    if (!MatchSym(",")) break;
  }
  MTB_RETURN_IF_ERROR(ExpectKw("ON"));
  if (MatchKw("DATABASE")) {
    g.on_database = true;
  } else {
    MTB_ASSIGN_OR_RETURN(g.table, ExpectIdentifier("table name"));
  }
  if (!MatchKw("TO")) {
    MTB_RETURN_IF_ERROR(ExpectKw("FROM"));  // REVOKE ... FROM
  }
  if (MatchKw("ALL")) {
    g.to_all = true;
  } else if (Peek().kind == TokenKind::kInteger &&
             ParseInt64(Peek().text, &g.grantee)) {
    Advance();
  } else {
    return Err("expected tenant id or ALL");
  }
  return stmt;
}

Result<Stmt> Parser::ParseSetScope() {
  MTB_RETURN_IF_ERROR(ExpectKw("SET"));
  MTB_RETURN_IF_ERROR(ExpectKw("SCOPE"));
  MTB_RETURN_IF_ERROR(ExpectSym("="));
  if (Peek().kind != TokenKind::kString) return Err("expected scope string");
  Stmt stmt;
  stmt.kind = Stmt::Kind::kSetScope;
  stmt.set_scope = std::make_unique<SetScopeStmt>();
  stmt.set_scope->scope_text = Advance().text;
  return stmt;
}

Result<Stmt> Parser::ParseDrop() {
  MTB_RETURN_IF_ERROR(ExpectKw("DROP"));
  Stmt stmt;
  stmt.kind = Stmt::Kind::kDrop;
  stmt.drop = std::make_unique<DropStmt>();
  if (MatchKw("TABLE")) {
    stmt.drop->what = DropStmt::What::kTable;
  } else if (MatchKw("VIEW")) {
    stmt.drop->what = DropStmt::What::kView;
  } else if (MatchKw("INDEX")) {
    stmt.drop->what = DropStmt::What::kIndex;
  } else {
    return Err("expected TABLE, VIEW or INDEX after DROP");
  }
  MTB_ASSIGN_OR_RETURN(stmt.drop->name, ExpectIdentifier("name"));
  return stmt;
}

Result<Stmt> Parser::ParseStmt() {
  // '?' numbering and the placeholder-style check restart per statement.
  max_param_ = 0;
  saw_question_param_ = false;
  saw_dollar_param_ = false;
  if (IsKw("SELECT")) {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kSelect;
    MTB_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
    return stmt;
  }
  if (IsKw("CREATE")) return ParseCreate();
  if (IsKw("INSERT")) return ParseInsert();
  if (IsKw("UPDATE")) return ParseUpdate();
  if (IsKw("DELETE")) return ParseDelete();
  if (IsKw("GRANT")) return ParseGrantOrRevoke(false);
  if (IsKw("REVOKE")) return ParseGrantOrRevoke(true);
  if (IsKw("SET")) return ParseSetScope();
  if (IsKw("DROP")) return ParseDrop();
  return Err("unrecognized statement");
}

Result<std::vector<Stmt>> Parser::ParseAll() {
  std::vector<Stmt> out;
  while (!AtEnd()) {
    if (MatchSym(";")) continue;
    MTB_ASSIGN_OR_RETURN(Stmt s, ParseStmt());
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

Result<Stmt> ParseStatement(const std::string& text) {
  MTB_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Parser p(std::move(tokens));
  MTB_ASSIGN_OR_RETURN(Stmt stmt, p.ParseStmt());
  p.MatchSym(";");
  if (!p.AtEnd()) {
    return Status::SyntaxError("trailing input after statement");
  }
  return stmt;
}

Result<std::vector<Stmt>> ParseScript(const std::string& text) {
  MTB_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Parser p(std::move(tokens));
  return p.ParseAll();
}

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& text) {
  MTB_ASSIGN_OR_RETURN(Stmt stmt, ParseStatement(text));
  if (stmt.kind != Stmt::Kind::kSelect) {
    return Status::SyntaxError("expected a SELECT statement");
  }
  return std::move(stmt.select);
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  MTB_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Parser p(std::move(tokens));
  MTB_ASSIGN_OR_RETURN(ExprPtr e, p.ParseExpr());
  if (!p.AtEnd()) {
    return Status::SyntaxError("trailing input after expression");
  }
  return e;
}

}  // namespace sql
}  // namespace mtbase
