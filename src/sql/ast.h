// Abstract syntax tree for the SQL/MTSQL dialect understood by MTBase.
//
// The same AST is used by the parser, the SQL printer, the execution engine's
// binder and the MTSQL-to-SQL rewriter. Expressions are a single tagged
// struct (rather than a class hierarchy) because the rewriter is essentially
// structural pattern matching, which this representation keeps compact.
#ifndef MTBASE_SQL_AST_H_
#define MTBASE_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"

namespace mtbase {
namespace sql {

struct SelectStmt;

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,       // [qualifier.]column
  kStar,            // * or qualifier.*
  kParam,           // $1 (inside CREATE FUNCTION bodies)
  kUnary,           // op: NOT, -
  kBinary,          // op: AND OR = <> < <= > >= + - * / ||
  kFunction,        // name(args...), including aggregates and UDFs
  kCase,            // searched or simple CASE
  kInList,          // args[0] IN (args[1..])
  kInSubquery,      // (args...) IN (subquery)
  kExists,          // EXISTS (subquery)
  kScalarSubquery,  // (subquery)
  kBetween,         // args[0] BETWEEN args[1] AND args[2]
  kIsNull,          // args[0] IS [NOT] NULL
  kExtract,         // EXTRACT(field FROM args[0])
  kInterval,        // INTERVAL '<n>' <unit>
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;                   // kLiteral
  std::string qualifier;           // kColumnRef / kStar table qualifier
  std::string column;              // kColumnRef
  std::string op;                  // kUnary / kBinary (upper-case)
  std::string fname;               // kFunction
  bool distinct = false;           // aggregate DISTINCT
  bool negated = false;            // NOT IN / NOT EXISTS / NOT BETWEEN / IS NOT NULL / NOT LIKE
  std::string extract_field;       // kExtract: YEAR, MONTH, DAY
  std::string interval_unit;       // kInterval: DAY, MONTH, YEAR
  int param_index = 0;             // kParam
  std::vector<ExprPtr> args;
  // kCase: optional operand (simple CASE); args holds WHEN/THEN pairs
  // [w1, t1, w2, t2, ...]; else_expr optional.
  ExprPtr case_operand;
  ExprPtr else_expr;
  std::unique_ptr<SelectStmt> subquery;

  ExprPtr Clone() const;
};

// -- expression construction helpers -----------------------------------------

ExprPtr Lit(Value v);
ExprPtr IntLit(int64_t v);
ExprPtr StrLit(std::string s);
ExprPtr Col(std::string qualifier, std::string column);
ExprPtr Col(std::string column);
ExprPtr Unary(std::string op, ExprPtr operand);
ExprPtr Binary(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Func(std::string name, std::vector<ExprPtr> args);
ExprPtr ScalarSubquery(std::unique_ptr<SelectStmt> q);
/// Conjunction of all exprs (nullptr if empty, the expr itself if single).
ExprPtr AndAll(std::vector<ExprPtr> exprs);

// -- parameter placeholders ---------------------------------------------------

struct Stmt;

/// Highest $n / ? parameter index referenced (0 if none). Prepared
/// statements use this as the number of bind values Execute() requires.
int MaxParamIndex(const Expr& e);
int MaxParamIndex(const SelectStmt& s);
int MaxParamIndex(const Stmt& s);

// -- statements ---------------------------------------------------------------

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none
};

enum class JoinType : uint8_t { kInner, kLeft };

struct TableRef {
  enum class Kind : uint8_t { kBase, kSubquery, kJoin } kind = Kind::kBase;
  std::string name;   // kBase
  std::string alias;  // optional for kBase/kSubquery
  std::unique_ptr<SelectStmt> subquery;  // kSubquery
  // kJoin
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  JoinType join_type = JoinType::kInner;
  ExprPtr join_cond;

  TableRef() = default;
  std::unique_ptr<TableRef> Clone() const;
  /// The name this table is referred to by in expressions (alias or name).
  const std::string& BindingName() const { return alias.empty() ? name : alias; }
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<std::unique_ptr<TableRef>> from;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;   // -1 = no limit
  int64_t offset = 0;   // rows skipped before the limit applies

  std::unique_ptr<SelectStmt> Clone() const;
};

struct TypeDecl {
  TypeId id = TypeId::kInt;
  int precision = 0;  // DECIMAL(p,s)
  int scale = 0;
  int length = 0;  // VARCHAR(n)
  std::string ToString() const;
};

/// MTSQL attribute comparability (paper Table 1).
enum class Comparability : uint8_t {
  kDefault,         // resolved by table generality at DDL execution time
  kComparable,
  kConvertible,
  kTenantSpecific,
};

struct ColumnDef {
  std::string name;
  TypeDecl type;
  bool not_null = false;
  Comparability comparability = Comparability::kDefault;
  std::string to_universal_fn;    // @fnToUniversal (CONVERTIBLE only)
  std::string from_universal_fn;  // @fnFromUniversal
};

struct TableConstraint {
  enum class Kind : uint8_t { kPrimaryKey, kForeignKey, kCheck } kind =
      Kind::kPrimaryKey;
  std::string name;
  std::vector<std::string> columns;      // PK / FK local columns
  std::string ref_table;                 // FK
  std::vector<std::string> ref_columns;  // FK
  ExprPtr check;                         // CHECK
};

/// PARTITION BY clause of CREATE TABLE. Hash partitioning names a bucket
/// count; list partitioning enumerates the integer value groups, with an
/// implicit overflow partition for values not in any group.
struct PartitionSpec {
  enum class Method : uint8_t { kNone, kHash, kList } method = Method::kNone;
  std::string column;
  int64_t count = 0;                          // kHash: PARTITIONS n
  std::vector<std::vector<int64_t>> lists;    // kList: VALUES (..) groups
};

struct CreateTableStmt {
  std::string name;
  bool mt_specific = false;  // SPECIFIC => tenant-specific; default GLOBAL
  std::vector<ColumnDef> columns;
  std::vector<TableConstraint> constraints;
  PartitionSpec partition;
};

struct CreateIndexStmt {
  std::string name;
  std::string table;
  std::vector<std::string> columns;
};

struct CreateViewStmt {
  std::string name;
  std::unique_ptr<SelectStmt> select;
};

/// Volatility class of a user-defined function (PostgreSQL's taxonomy).
/// IMMUTABLE promises the result depends only on the argument values, which
/// licenses result caching and parallel evaluation; STABLE promises
/// stability within one statement (cacheable per statement, not across);
/// VOLATILE (the default) promises nothing.
enum class Volatility : uint8_t {
  kVolatile,
  kStable,
  kImmutable,
};

struct CreateFunctionStmt {
  std::string name;
  std::vector<TypeDecl> arg_types;
  TypeDecl return_type;
  std::string body_sql;  // SQL text with $1..$n parameters
  Volatility volatility = Volatility::kVolatile;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;        // may be empty = all visible
  std::vector<std::vector<ExprPtr>> rows;  // VALUES
  std::unique_ptr<SelectStmt> select;      // INSERT ... SELECT
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct GrantStmt {
  std::vector<std::string> privileges;  // READ INSERT UPDATE DELETE or ALL
  bool on_database = false;
  std::string table;
  bool to_all = false;  // GRANT ... TO ALL (resolved against D)
  int64_t grantee = -1;
  bool revoke = false;  // REVOKE uses the same shape
};

struct SetScopeStmt {
  std::string scope_text;  // raw text inside the quotes; parsed by mt::Scope
};

struct DropStmt {
  enum class What : uint8_t { kTable, kView, kIndex } what = What::kTable;
  std::string name;
};

struct Stmt {
  enum class Kind : uint8_t {
    kSelect,
    kCreateTable,
    kCreateView,
    kCreateFunction,
    kCreateIndex,
    kInsert,
    kUpdate,
    kDelete,
    kGrant,
    kSetScope,
    kDrop,
  } kind = Kind::kSelect;

  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateViewStmt> create_view;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<CreateFunctionStmt> create_function;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<GrantStmt> grant;
  std::unique_ptr<SetScopeStmt> set_scope;
  std::unique_ptr<DropStmt> drop;
};

}  // namespace sql
}  // namespace mtbase

#endif  // MTBASE_SQL_AST_H_
