// Shared gtest helpers.
#ifndef MTBASE_TESTS_TEST_UTIL_H_
#define MTBASE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "common/result.h"

namespace mtbase {

inline const Status& ToStatus(const Status& s) { return s; }
template <typename T>
const Status& ToStatus(const Result<T>& r) {
  return r.status();
}

#define ASSERT_OK(expr)                                              \
  do {                                                               \
    const auto& _r = (expr);                                         \
    ASSERT_TRUE(_r.ok()) << ::mtbase::ToStatus(_r).ToString();       \
  } while (0)

#define EXPECT_OK(expr)                                              \
  do {                                                               \
    const auto& _r = (expr);                                         \
    EXPECT_TRUE(_r.ok()) << ::mtbase::ToStatus(_r).ToString();       \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                      \
  auto MTB_CONCAT(_res_, __LINE__) = (expr);                 \
  ASSERT_TRUE(MTB_CONCAT(_res_, __LINE__).ok())              \
      << MTB_CONCAT(_res_, __LINE__).status().ToString();    \
  lhs = std::move(MTB_CONCAT(_res_, __LINE__)).value()

}  // namespace mtbase

#endif  // MTBASE_TESTS_TEST_UTIL_H_
