// Shared gtest helpers.
#ifndef MTBASE_TESTS_TEST_UTIL_H_
#define MTBASE_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/value.h"

namespace mtbase {

/// Byte-exact canonical form of a row set (type tag + rendered value per
/// cell, row order preserved): the encoding every serial-vs-parallel and
/// cached-vs-fresh byte-parity assertion compares. No numeric tolerance by
/// design — "byte-identical" is the guarantee under test.
inline std::string CanonRows(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& row : rows) {
    for (const Value& v : row) {
      out += static_cast<char>('0' + static_cast<int>(v.type()));
      out += v.ToString();
      out += '\x1f';
    }
    out += '\n';
  }
  return out;
}

inline const Status& ToStatus(const Status& s) { return s; }
template <typename T>
const Status& ToStatus(const Result<T>& r) {
  return r.status();
}

#define ASSERT_OK(expr)                                              \
  do {                                                               \
    const auto& _r = (expr);                                         \
    ASSERT_TRUE(_r.ok()) << ::mtbase::ToStatus(_r).ToString();       \
  } while (0)

#define EXPECT_OK(expr)                                              \
  do {                                                               \
    const auto& _r = (expr);                                         \
    EXPECT_TRUE(_r.ok()) << ::mtbase::ToStatus(_r).ToString();       \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                      \
  auto MTB_CONCAT(_res_, __LINE__) = (expr);                 \
  ASSERT_TRUE(MTB_CONCAT(_res_, __LINE__).ok())              \
      << MTB_CONCAT(_res_, __LINE__).status().ToString();    \
  lhs = std::move(MTB_CONCAT(_res_, __LINE__)).value()

}  // namespace mtbase

#endif  // MTBASE_TESTS_TEST_UTIL_H_
