// Shared gtest helpers.
#ifndef MTBASE_TESTS_TEST_UTIL_H_
#define MTBASE_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/value.h"

namespace mtbase {

/// Byte-exact canonical form of a row set (type tag + rendered value per
/// cell, row order preserved): the encoding every serial-vs-parallel and
/// cached-vs-fresh byte-parity assertion compares. No numeric tolerance by
/// design — "byte-identical" is the guarantee under test.
inline std::string CanonRows(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& row : rows) {
    for (const Value& v : row) {
      out += static_cast<char>('0' + static_cast<int>(v.type()));
      out += v.ToString();
      out += '\x1f';
    }
    out += '\n';
  }
  return out;
}

/// Match one EXPLAIN line against a pattern. `*` matches any run of
/// characters (including none); everything else is literal. Anchored at both
/// ends, so patterns usually start or end with `*` to ignore indentation and
/// trailing annotations.
inline bool PlanLineMatches(const std::string& pattern,
                            const std::string& line) {
  // Classic iterative glob: on mismatch, back up to the last `*` and let it
  // swallow one more character.
  size_t p = 0, l = 0, star = std::string::npos, star_l = 0;
  while (l < line.size()) {
    if (p < pattern.size() &&
        (pattern[p] == line[l])) {
      ++p;
      ++l;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_l = l;
    } else if (star != std::string::npos) {
      p = star + 1;
      l = ++star_l;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

/// Assert an EXPLAIN rendering's operator shape: every pattern line must
/// match some plan line, in order (non-matching plan lines in between are
/// skipped — the patterns pin the operators you care about, not the whole
/// rendering). `*` in a pattern line is a wildcard. Returns AssertionSuccess
/// /Failure so it composes with EXPECT_TRUE/ASSERT_TRUE and prints the plan
/// and the first unmatched pattern on failure.
inline ::testing::AssertionResult PlanShapeMatches(
    const std::string& explain_text,
    const std::vector<std::string>& pattern_lines) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= explain_text.size()) {
    size_t nl = explain_text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < explain_text.size()) {
        lines.push_back(explain_text.substr(start));
      }
      break;
    }
    lines.push_back(explain_text.substr(start, nl - start));
    start = nl + 1;
  }
  size_t li = 0;
  for (const std::string& pat : pattern_lines) {
    bool found = false;
    while (li < lines.size()) {
      if (PlanLineMatches(pat, lines[li++])) {
        found = true;
        break;
      }
    }
    if (!found) {
      return ::testing::AssertionFailure()
             << "pattern line \"" << pat
             << "\" matched no remaining plan line.\nPlan:\n"
             << explain_text;
    }
  }
  return ::testing::AssertionSuccess();
}

#define EXPECT_PLAN_SHAPE(explain_text, ...) \
  EXPECT_TRUE(::mtbase::PlanShapeMatches((explain_text), __VA_ARGS__))
#define ASSERT_PLAN_SHAPE(explain_text, ...) \
  ASSERT_TRUE(::mtbase::PlanShapeMatches((explain_text), __VA_ARGS__))

inline const Status& ToStatus(const Status& s) { return s; }
template <typename T>
const Status& ToStatus(const Result<T>& r) {
  return r.status();
}

#define ASSERT_OK(expr)                                              \
  do {                                                               \
    const auto& _r = (expr);                                         \
    ASSERT_TRUE(_r.ok()) << ::mtbase::ToStatus(_r).ToString();       \
  } while (0)

#define EXPECT_OK(expr)                                              \
  do {                                                               \
    const auto& _r = (expr);                                         \
    EXPECT_TRUE(_r.ok()) << ::mtbase::ToStatus(_r).ToString();       \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                      \
  auto MTB_CONCAT(_res_, __LINE__) = (expr);                 \
  ASSERT_TRUE(MTB_CONCAT(_res_, __LINE__).ok())              \
      << MTB_CONCAT(_res_, __LINE__).status().ToString();    \
  lhs = std::move(MTB_CONCAT(_res_, __LINE__)).value()

}  // namespace mtbase

#endif  // MTBASE_TESTS_TEST_UTIL_H_
