#include "common/date.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mtbase {
namespace {

TEST(DateTest, ParseAndFormat) {
  ASSERT_OK_AND_ASSIGN(Date d, Date::Parse("1995-03-15"));
  EXPECT_EQ(d.year(), 1995);
  EXPECT_EQ(d.month(), 3);
  EXPECT_EQ(d.day(), 15);
  EXPECT_EQ(d.ToString(), "1995-03-15");
}

TEST(DateTest, EpochIsZero) {
  ASSERT_OK_AND_ASSIGN(Date d, Date::Parse("1970-01-01"));
  EXPECT_EQ(d.days(), 0);
}

TEST(DateTest, ParseErrors) {
  EXPECT_FALSE(Date::Parse("not-a-date").ok());
  EXPECT_FALSE(Date::Parse("1995-13-01").ok());
  EXPECT_FALSE(Date::Parse("1995-02-30").ok());
}

TEST(DateTest, LeapYearHandling) {
  EXPECT_OK(Date::Parse("1996-02-29"));
  EXPECT_FALSE(Date::Parse("1995-02-29").ok());
  EXPECT_OK(Date::Parse("2000-02-29"));   // divisible by 400
  EXPECT_FALSE(Date::Parse("1900-02-29").ok());  // divisible by 100
}

TEST(DateTest, AddDays) {
  ASSERT_OK_AND_ASSIGN(Date d, Date::Parse("1998-12-01"));
  EXPECT_EQ(d.AddDays(-90).ToString(), "1998-09-02");
  EXPECT_EQ(d.AddDays(31).ToString(), "1999-01-01");
}

TEST(DateTest, AddMonthsClampsDay) {
  ASSERT_OK_AND_ASSIGN(Date d, Date::Parse("1995-01-31"));
  EXPECT_EQ(d.AddMonths(1).ToString(), "1995-02-28");
  EXPECT_EQ(d.AddMonths(3).ToString(), "1995-04-30");
}

TEST(DateTest, AddMonthsAcrossYears) {
  ASSERT_OK_AND_ASSIGN(Date d, Date::Parse("1993-07-01"));
  EXPECT_EQ(d.AddMonths(3).ToString(), "1993-10-01");
  EXPECT_EQ(d.AddMonths(12).ToString(), "1994-07-01");
  EXPECT_EQ(d.AddMonths(-7).ToString(), "1992-12-01");
}

TEST(DateTest, AddYears) {
  ASSERT_OK_AND_ASSIGN(Date d, Date::Parse("1994-01-01"));
  EXPECT_EQ(d.AddYears(1).ToString(), "1995-01-01");
}

TEST(DateTest, Ordering) {
  ASSERT_OK_AND_ASSIGN(Date a, Date::Parse("1994-01-01"));
  ASSERT_OK_AND_ASSIGN(Date b, Date::Parse("1994-01-02"));
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a == Date(a.days()));
}

// Round trip through days() must be the identity over a wide range.
TEST(DateTest, RoundTripPropertySweep) {
  for (int32_t days = -3000; days <= 20000; days += 17) {
    Date d(days);
    ASSERT_OK_AND_ASSIGN(Date back, Date::Parse(d.ToString()));
    EXPECT_EQ(back.days(), days);
  }
}

}  // namespace
}  // namespace mtbase
