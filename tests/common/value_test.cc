#include "common/value.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mtbase {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_TRUE(Value::Null().StructuralEquals(v));
}

TEST(ValueTest, NumericCrossTypeComparison) {
  Value i = Value::Int(5);
  Value d = Value::Dec(Decimal(500, 2));
  ASSERT_OK_AND_ASSIGN(int c, i.Compare(d));
  EXPECT_EQ(c, 0);
  ASSERT_OK_AND_ASSIGN(c, Value::Int(5).Compare(Value::Double(5.5)));
  EXPECT_EQ(c, -1);
}

TEST(ValueTest, CrossTypeEqualNumericsShareHash) {
  Value i = Value::Int(5);
  Value d = Value::Dec(Decimal(500, 2));
  EXPECT_TRUE(i.StructuralEquals(d));
  EXPECT_EQ(i.Hash(), d.Hash());
}

TEST(ValueTest, StringComparison) {
  ASSERT_OK_AND_ASSIGN(int c, Value::Str("abc").Compare(Value::Str("abd")));
  EXPECT_LT(c, 0);
}

TEST(ValueTest, IncompatibleComparisonFails) {
  EXPECT_FALSE(Value::Str("a").Compare(Value::Int(1)).ok());
  EXPECT_FALSE(Value::Null().Compare(Value::Int(1)).ok());
}

TEST(ValueTest, DateComparison) {
  Value a = Value::Dat(Date(10));
  Value b = Value::Dat(Date(20));
  ASSERT_OK_AND_ASSIGN(int c, a.Compare(b));
  EXPECT_EQ(c, -1);
}

TEST(ValueTest, RowHashingDistinguishesRows) {
  Row a{Value::Int(1), Value::Str("x")};
  Row b{Value::Int(1), Value::Str("y")};
  Row c{Value::Int(1), Value::Str("x")};
  EXPECT_NE(HashRow(a), HashRow(b));
  EXPECT_EQ(HashRow(a), HashRow(c));
  ValueVectorEq eq;
  EXPECT_TRUE(eq(a, c));
  EXPECT_FALSE(eq(a, b));
}

TEST(ValueTest, AsDouble) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Dec(Decimal(150, 2)).AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble(), 1.0);
}

}  // namespace
}  // namespace mtbase
