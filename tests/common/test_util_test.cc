// Self-tests for the shared gtest helpers — in particular the plan-shape
// assertion layer (PlanLineMatches / PlanShapeMatches), which the partition
// and index suites lean on: a matcher bug there would silently weaken every
// EXPECT_PLAN_SHAPE in the tree.
#include "tests/test_util.h"

#include <gtest/gtest.h>

namespace mtbase {
namespace {

TEST(PlanLineMatches, LiteralMatchIsExact) {
  EXPECT_TRUE(PlanLineMatches("Scan a", "Scan a"));
  EXPECT_FALSE(PlanLineMatches("Scan a", "Scan b"));
  EXPECT_FALSE(PlanLineMatches("Scan a", "  Scan a"));  // anchored
  EXPECT_FALSE(PlanLineMatches("Scan a", "Scan a (filtered)"));
}

TEST(PlanLineMatches, StarMatchesAnyRun) {
  EXPECT_TRUE(PlanLineMatches("*Scan a*", "  Scan a (filtered)"));
  EXPECT_TRUE(PlanLineMatches("*Scan a*", "Scan a"));  // star matches empty
  EXPECT_TRUE(PlanLineMatches("*[partitions: */4 pruned]*",
                              "  Scan t (filtered) [partitions: 3/4 pruned]"));
  EXPECT_FALSE(PlanLineMatches("*[partitions: */4 pruned]*",
                               "  Scan t (filtered)"));
}

TEST(PlanLineMatches, MultipleStarsBacktrack) {
  // The first star must not greedily swallow the text the second needs.
  EXPECT_TRUE(PlanLineMatches("*a*b*c*", "xxaxxbxxcxx"));
  EXPECT_TRUE(PlanLineMatches("*a*a*", "aa"));
  EXPECT_FALSE(PlanLineMatches("*a*a*", "a"));
  EXPECT_TRUE(PlanLineMatches("***", ""));
}

TEST(PlanShapeMatches, OrderedSubsequenceOfLines) {
  const std::string plan =
      "Sort (keys: 0)\n"
      "  HashJoin INNER (1 keys)\n"
      "    Scan a (filtered)\n"
      "    Scan b\n";
  EXPECT_TRUE(PlanShapeMatches(plan, {"*Sort*", "*Scan b*"}));
  EXPECT_TRUE(PlanShapeMatches(
      plan, {"*Sort*", "*HashJoin*", "*Scan a*", "*Scan b*"}));
  // Out of order: Scan b renders after Scan a.
  EXPECT_FALSE(PlanShapeMatches(plan, {"*Scan b*", "*Scan a*"}));
  // A pattern consumed by one plan line is not reusable for the next.
  EXPECT_FALSE(PlanShapeMatches(plan, {"*Scan b*", "*Scan b*"}));
  EXPECT_FALSE(PlanShapeMatches(plan, {"*IndexScan*"}));
}

TEST(PlanShapeMatches, FailureNamesTheUnmatchedPattern) {
  ::testing::AssertionResult r =
      PlanShapeMatches("Scan a\n", {"*Scan a*", "*Scan b*"});
  EXPECT_FALSE(r);
  EXPECT_NE(std::string(r.message()).find("*Scan b*"), std::string::npos);
}

}  // namespace
}  // namespace mtbase
