#include "common/str_util.h"

#include <gtest/gtest.h>

namespace mtbase {
namespace {

TEST(StrUtilTest, CaseConversion) {
  EXPECT_EQ(ToUpperCopy("Select"), "SELECT");
  EXPECT_EQ(ToLowerCopy("SELECT"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("lineitem", "LINEITEM"));
  EXPECT_FALSE(EqualsIgnoreCase("lineitem", "lineitems"));
}

TEST(LikeMatchTest, Literals) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_FALSE(LikeMatch("abc", "ab"));
}

TEST(LikeMatchTest, Percent) {
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("abc", "a%"));
  EXPECT_TRUE(LikeMatch("abc", "%c"));
  EXPECT_TRUE(LikeMatch("abc", "%b%"));
  EXPECT_FALSE(LikeMatch("abc", "%d%"));
}

TEST(LikeMatchTest, Underscore) {
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("ac", "a_c"));
  EXPECT_TRUE(LikeMatch("abc", "___"));
  EXPECT_FALSE(LikeMatch("abcd", "___"));
}

TEST(LikeMatchTest, TpchPatterns) {
  EXPECT_TRUE(LikeMatch("forest green antique", "forest%"));
  EXPECT_FALSE(LikeMatch("dark forest", "forest%"));
  EXPECT_TRUE(LikeMatch("dark green metal", "%green%"));
  EXPECT_TRUE(
      LikeMatch("quietly special packages requests", "%special%requests%"));
  EXPECT_FALSE(LikeMatch("special", "%special%requests%"));
  EXPECT_TRUE(LikeMatch("STANDARD BRUSHED BRASS", "%BRASS"));
  EXPECT_TRUE(LikeMatch("MEDIUM POLISHED TIN", "MEDIUM POLISHED%"));
}

TEST(LikeMatchTest, BacktrackingStress) {
  // Patterns with repeated wildcards require backtracking on the last '%'.
  EXPECT_TRUE(LikeMatch("aaaaaaaaab", "%a%a%b"));
  EXPECT_FALSE(LikeMatch("aaaaaaaaaa", "%a%a%b"));
}

TEST(StrUtilTest, SplitJoin) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(JoinStrings({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({}, ", "), "");
}

}  // namespace
}  // namespace mtbase
