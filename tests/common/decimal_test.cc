#include "common/decimal.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mtbase {
namespace {

TEST(DecimalTest, ParseBasic) {
  ASSERT_OK_AND_ASSIGN(Decimal d, Decimal::Parse("123.45"));
  EXPECT_EQ(d.units(), 12345);
  EXPECT_EQ(d.scale(), 2);
  EXPECT_EQ(d.ToString(), "123.45");
}

TEST(DecimalTest, ParseNegative) {
  ASSERT_OK_AND_ASSIGN(Decimal d, Decimal::Parse("-0.05"));
  EXPECT_EQ(d.units(), -5);
  EXPECT_EQ(d.scale(), 2);
  EXPECT_EQ(d.ToString(), "-0.05");
}

TEST(DecimalTest, ParseInteger) {
  ASSERT_OK_AND_ASSIGN(Decimal d, Decimal::Parse("42"));
  EXPECT_EQ(d.units(), 42);
  EXPECT_EQ(d.scale(), 0);
}

TEST(DecimalTest, ParseTrimsTrailingZeros) {
  ASSERT_OK_AND_ASSIGN(Decimal d, Decimal::Parse("1.500"));
  EXPECT_EQ(d.units(), 15);
  EXPECT_EQ(d.scale(), 1);
}

TEST(DecimalTest, ParseErrors) {
  EXPECT_FALSE(Decimal::Parse("").ok());
  EXPECT_FALSE(Decimal::Parse("abc").ok());
  EXPECT_FALSE(Decimal::Parse("1.2.3").ok());
  EXPECT_FALSE(Decimal::Parse("0.12345678901").ok());  // too many digits
}

TEST(DecimalTest, AddDifferentScales) {
  Decimal a(150, 2);   // 1.50
  Decimal b(25, 1);    // 2.5
  EXPECT_EQ(a.Add(b).ToString(), "4.00");
  EXPECT_EQ(b.Add(a).ToString(), "4.00");
}

TEST(DecimalTest, SubGoesNegative) {
  Decimal a(100, 2);
  Decimal b(300, 2);
  EXPECT_EQ(a.Sub(b).ToString(), "-2.00");
}

TEST(DecimalTest, MulKeepsExactScaleWithinLimit) {
  Decimal a(12345, 2);  // 123.45
  Decimal b(8, 0);      // 8
  EXPECT_EQ(a.Mul(b).ToString(), "987.60");
}

TEST(DecimalTest, MulRoundsBeyondMaxScale) {
  Decimal a(1, 4);  // 0.0001
  Decimal b(15, 4); // 0.0015 -> product 1.5e-7 rounds to 0.000000
  Decimal p = a.Mul(b);
  EXPECT_EQ(p.scale(), Decimal::kMaxScale);
  EXPECT_EQ(p.units(), 0);
}

TEST(DecimalTest, DivComputesAtMaxScale) {
  Decimal a(1, 0);
  Decimal b(3, 0);
  EXPECT_EQ(a.Div(b).ToString(), "0.333333");
  EXPECT_EQ(a.Neg().Div(b).ToString(), "-0.333333");
}

TEST(DecimalTest, DivRoundsHalfAwayFromZero) {
  Decimal a(1, 0);
  Decimal b(2, 0);
  EXPECT_EQ(a.Div(b).ToString(), "0.500000");
  Decimal c(5, 6);  // 0.000005
  EXPECT_EQ(c.Div(Decimal(10, 0)).units(), 1);  // 5e-7 rounds to 1e-6
}

TEST(DecimalTest, CompareAcrossScales) {
  Decimal a(150, 2);  // 1.50
  Decimal b(15, 1);   // 1.5
  EXPECT_EQ(a.Compare(b), 0);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(Decimal(151, 2).Compare(b), 1);
  EXPECT_EQ(Decimal(149, 2).Compare(b), -1);
}

TEST(DecimalTest, HashConsistentWithEquality) {
  Decimal a(150, 2);
  Decimal b(15, 1);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(DecimalTest, Rescale) {
  Decimal a(12345, 2);
  EXPECT_EQ(a.Rescale(4).units(), 1234500);
  EXPECT_EQ(a.Rescale(1).units(), 1235);  // rounds .45 up
  EXPECT_EQ(a.Rescale(0).units(), 123);
}

TEST(DecimalTest, FromDouble) {
  EXPECT_EQ(Decimal::FromDouble(1.005, 2).units(), 100 /* binary repr */ + 0);
  EXPECT_EQ(Decimal::FromDouble(2.5, 1).units(), 25);
}

// Conversion round trips with reciprocal-exact rates must be bit-exact
// (the MT-H currency design, DESIGN.md section 5).
struct RatePair {
  const char* to;
  const char* from;
};

class DecimalRoundTripTest : public ::testing::TestWithParam<RatePair> {};

TEST_P(DecimalRoundTripTest, ToFromUniversalIsExact) {
  ASSERT_OK_AND_ASSIGN(Decimal to, Decimal::Parse(GetParam().to));
  ASSERT_OK_AND_ASSIGN(Decimal from, Decimal::Parse(GetParam().from));
  // to * from == 1 exactly.
  EXPECT_EQ(to.Mul(from).Compare(Decimal::FromInt(1)), 0);
  for (int64_t cents : {1, 99, 100, 12345, 999999, -5000, 987654321}) {
    Decimal universal(cents, 2);
    Decimal stored = universal.Mul(from);
    Decimal back = stored.Mul(to);
    EXPECT_EQ(back.Compare(universal), 0)
        << universal.ToString() << " via " << stored.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, DecimalRoundTripTest,
                         ::testing::Values(RatePair{"1", "1"},
                                           RatePair{"0.5", "2"},
                                           RatePair{"0.25", "4"},
                                           RatePair{"0.2", "5"},
                                           RatePair{"0.125", "8"},
                                           RatePair{"0.1", "10"},
                                           RatePair{"0.04", "25"},
                                           RatePair{"0.02", "50"}));

// Multiplicative conversions are fully-SUM-preserving: summing then
// converting equals converting then summing (paper section 2.2.2).
TEST(DecimalTest, MultiplicativeConversionIsSumPreserving) {
  ASSERT_OK_AND_ASSIGN(Decimal to, Decimal::Parse("0.125"));
  Decimal sum_raw(0, 2), sum_conv(0, 2);
  int64_t cents = 17;
  for (int i = 0; i < 100; ++i) {
    Decimal v(cents, 2);
    sum_raw = sum_raw.Add(v);
    sum_conv = sum_conv.Add(v.Mul(to));
    cents = (cents * 31 + 7) % 1000000;
  }
  EXPECT_EQ(sum_raw.Mul(to).Compare(sum_conv), 0);
}

}  // namespace
}  // namespace mtbase
