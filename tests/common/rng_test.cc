#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace mtbase {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[rng.Uniform(1, 5)]++;
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 1500) << v;  // roughly uniform
  }
}

TEST(ZipfTest, SkewsTowardsSmallValues) {
  ZipfGenerator zipf(100, 1.0, 99);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Next()]++;
  // Rank 1 must dominate rank 10 by roughly 10x (zipf s=1).
  ASSERT_TRUE(counts.count(1));
  ASSERT_TRUE(counts.count(10));
  EXPECT_GT(counts[1], 4 * counts[10]);
  for (const auto& [v, c] : counts) {
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

}  // namespace
}  // namespace mtbase
