#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/printer.h"
#include "tests/test_util.h"

namespace mtbase {
namespace sql {
namespace {

TEST(ParserTest, SimpleSelect) {
  ASSERT_OK_AND_ASSIGN(auto sel, ParseSelect("SELECT a, b AS bee FROM t"));
  ASSERT_EQ(sel->items.size(), 2u);
  EXPECT_EQ(sel->items[0].expr->kind, ExprKind::kColumnRef);
  EXPECT_EQ(sel->items[1].alias, "bee");
  ASSERT_EQ(sel->from.size(), 1u);
  EXPECT_EQ(sel->from[0]->name, "t");
}

TEST(ParserTest, ImplicitAlias) {
  ASSERT_OK_AND_ASSIGN(auto sel, ParseSelect("SELECT E1.age a FROM Employees E1"));
  EXPECT_EQ(sel->items[0].alias, "a");
  EXPECT_EQ(sel->from[0]->alias, "E1");
  EXPECT_EQ(sel->from[0]->BindingName(), "E1");
}

TEST(ParserTest, OperatorPrecedence) {
  ASSERT_OK_AND_ASSIGN(auto e, ParseExpression("1 + 2 * 3"));
  EXPECT_EQ(PrintExpr(*e), "1 + 2 * 3");
  ASSERT_OK_AND_ASSIGN(e, ParseExpression("(1 + 2) * 3"));
  EXPECT_EQ(PrintExpr(*e), "(1 + 2) * 3");
  ASSERT_OK_AND_ASSIGN(e, ParseExpression("a OR b AND NOT c = d"));
  EXPECT_EQ(e->op, "OR");
}

TEST(ParserTest, ComparisonChainsReject) {
  // a = b = c parses left-assoc (a = b) = c — a bool compared with c; the
  // parser accepts, the binder rejects later. Just check the shape.
  ASSERT_OK_AND_ASSIGN(auto e, ParseExpression("a = b"));
  EXPECT_EQ(e->op, "=");
}

TEST(ParserTest, InListAndSubquery) {
  ASSERT_OK_AND_ASSIGN(auto e, ParseExpression("x IN (1, 2, 3)"));
  EXPECT_EQ(e->kind, ExprKind::kInList);
  EXPECT_EQ(e->args.size(), 4u);
  ASSERT_OK_AND_ASSIGN(e, ParseExpression("x NOT IN (SELECT y FROM t)"));
  EXPECT_EQ(e->kind, ExprKind::kInSubquery);
  EXPECT_TRUE(e->negated);
  ASSERT_NE(e->subquery, nullptr);
}

TEST(ParserTest, TupleIn) {
  ASSERT_OK_AND_ASSIGN(auto e,
                       ParseExpression("(a, b) IN (SELECT x, y FROM t)"));
  EXPECT_EQ(e->kind, ExprKind::kInSubquery);
  EXPECT_EQ(e->args.size(), 2u);
}

TEST(ParserTest, ExistsAndNotExists) {
  ASSERT_OK_AND_ASSIGN(auto e, ParseExpression("EXISTS (SELECT * FROM t)"));
  EXPECT_EQ(e->kind, ExprKind::kExists);
  ASSERT_OK_AND_ASSIGN(e, ParseExpression("NOT EXISTS (SELECT * FROM t)"));
  EXPECT_EQ(e->kind, ExprKind::kUnary);
  EXPECT_EQ(e->args[0]->kind, ExprKind::kExists);
}

TEST(ParserTest, BetweenBindsTighterThanAnd) {
  ASSERT_OK_AND_ASSIGN(auto e,
                       ParseExpression("x BETWEEN 1 AND 5 AND y = 2"));
  EXPECT_EQ(e->op, "AND");
  EXPECT_EQ(e->args[0]->kind, ExprKind::kBetween);
}

TEST(ParserTest, DateAndIntervalLiterals) {
  ASSERT_OK_AND_ASSIGN(auto e, ParseExpression("DATE '1995-03-15'"));
  EXPECT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_EQ(e->literal.type(), TypeId::kDate);
  ASSERT_OK_AND_ASSIGN(
      e, ParseExpression("DATE '1994-01-01' + INTERVAL '3' MONTH"));
  EXPECT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->args[1]->kind, ExprKind::kInterval);
  EXPECT_EQ(e->args[1]->interval_unit, "MONTH");
}

TEST(ParserTest, ExtractAndSubstring) {
  ASSERT_OK_AND_ASSIGN(auto e, ParseExpression("EXTRACT(YEAR FROM d)"));
  EXPECT_EQ(e->kind, ExprKind::kExtract);
  EXPECT_EQ(e->extract_field, "YEAR");
  ASSERT_OK_AND_ASSIGN(e, ParseExpression("SUBSTRING(s FROM 1 FOR 2)"));
  EXPECT_EQ(e->kind, ExprKind::kFunction);
  EXPECT_EQ(e->args.size(), 3u);
  ASSERT_OK_AND_ASSIGN(e, ParseExpression("SUBSTRING(s, 1, 2)"));
  EXPECT_EQ(e->args.size(), 3u);
}

TEST(ParserTest, CaseForms) {
  ASSERT_OK_AND_ASSIGN(
      auto e, ParseExpression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END"));
  EXPECT_EQ(e->kind, ExprKind::kCase);
  EXPECT_EQ(e->args.size(), 2u);
  ASSERT_NE(e->else_expr, nullptr);
  ASSERT_OK_AND_ASSIGN(e,
                       ParseExpression("CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END"));
  ASSERT_NE(e->case_operand, nullptr);
  EXPECT_EQ(e->args.size(), 4u);
}

TEST(ParserTest, AggregatesWithDistinctAndStar) {
  ASSERT_OK_AND_ASSIGN(auto e, ParseExpression("COUNT(*)"));
  EXPECT_EQ(e->args[0]->kind, ExprKind::kStar);
  ASSERT_OK_AND_ASSIGN(e, ParseExpression("COUNT(DISTINCT x)"));
  EXPECT_TRUE(e->distinct);
}

TEST(ParserTest, GroupHavingOrderLimit) {
  ASSERT_OK_AND_ASSIGN(
      auto sel,
      ParseSelect("SELECT a, COUNT(*) c FROM t GROUP BY a HAVING COUNT(*) > 2 "
                  "ORDER BY c DESC, a LIMIT 10"));
  EXPECT_EQ(sel->group_by.size(), 1u);
  ASSERT_NE(sel->having, nullptr);
  ASSERT_EQ(sel->order_by.size(), 2u);
  EXPECT_TRUE(sel->order_by[0].desc);
  EXPECT_FALSE(sel->order_by[1].desc);
  EXPECT_EQ(sel->limit, 10);
  EXPECT_EQ(sel->offset, 0);
}

TEST(ParserTest, LimitOffset) {
  ASSERT_OK_AND_ASSIGN(auto sel,
                       ParseSelect("SELECT a FROM t ORDER BY a LIMIT 5 OFFSET 20"));
  EXPECT_EQ(sel->limit, 5);
  EXPECT_EQ(sel->offset, 20);
  // OFFSET survives Clone (views and the MT rewriter clone statements).
  auto clone = sel->Clone();
  EXPECT_EQ(clone->limit, 5);
  EXPECT_EQ(clone->offset, 20);
  // OFFSET requires a preceding LIMIT and an integer count.
  EXPECT_FALSE(ParseSelect("SELECT a FROM t OFFSET 3").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT 5 OFFSET x").ok());
}

TEST(ParserTest, IntegerOverflowIsSyntaxErrorNotCrash) {
  // Out-of-int64-range literals must produce a Status, not throw out of
  // std::stoll and terminate the process.
  const char* big = "99999999999999999999";
  EXPECT_FALSE(
      ParseSelect("SELECT a FROM t LIMIT " + std::string(big)).ok());
  EXPECT_FALSE(
      ParseSelect("SELECT a FROM t LIMIT 1 OFFSET " + std::string(big)).ok());
  EXPECT_FALSE(ParseSelect("SELECT " + std::string(big)).ok());
  EXPECT_FALSE(ParseExpression("x + " + std::string(big)).ok());
}

TEST(ParserTest, Joins) {
  ASSERT_OK_AND_ASSIGN(
      auto sel,
      ParseSelect("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y AND b.z > 1"));
  ASSERT_EQ(sel->from.size(), 1u);
  EXPECT_EQ(sel->from[0]->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(sel->from[0]->join_type, JoinType::kLeft);
  ASSERT_NE(sel->from[0]->join_cond, nullptr);
}

TEST(ParserTest, DerivedTable) {
  ASSERT_OK_AND_ASSIGN(
      auto sel, ParseSelect("SELECT v FROM (SELECT x AS v FROM t) AS d"));
  EXPECT_EQ(sel->from[0]->kind, TableRef::Kind::kSubquery);
  EXPECT_EQ(sel->from[0]->alias, "d");
}

TEST(ParserTest, CreateTableWithMtKeywords) {
  ASSERT_OK_AND_ASSIGN(
      Stmt stmt,
      ParseStatement(
          "CREATE TABLE Employees SPECIFIC ("
          " E_emp_id INTEGER NOT NULL SPECIFIC,"
          " E_name VARCHAR(25) NOT NULL COMPARABLE,"
          " E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @cToU @cFromU,"
          " CONSTRAINT pk_emp PRIMARY KEY (E_emp_id),"
          " CONSTRAINT fk_emp FOREIGN KEY (E_role_id) REFERENCES Roles (R_role_id))"));
  ASSERT_EQ(stmt.kind, Stmt::Kind::kCreateTable);
  const auto& ct = *stmt.create_table;
  EXPECT_TRUE(ct.mt_specific);
  ASSERT_EQ(ct.columns.size(), 3u);
  EXPECT_EQ(ct.columns[0].comparability, Comparability::kTenantSpecific);
  EXPECT_EQ(ct.columns[1].comparability, Comparability::kComparable);
  EXPECT_EQ(ct.columns[2].comparability, Comparability::kConvertible);
  EXPECT_EQ(ct.columns[2].to_universal_fn, "cToU");
  EXPECT_EQ(ct.columns[2].from_universal_fn, "cFromU");
  ASSERT_EQ(ct.constraints.size(), 2u);
  EXPECT_EQ(ct.constraints[1].ref_table, "Roles");
}

TEST(ParserTest, CreateTablePartitionBy) {
  ASSERT_OK_AND_ASSIGN(
      Stmt stmt,
      ParseStatement("CREATE TABLE t (ttid INTEGER NOT NULL, a INTEGER) "
                     "PARTITION BY HASH (ttid) PARTITIONS 8"));
  ASSERT_EQ(stmt.kind, Stmt::Kind::kCreateTable);
  const auto& hash = stmt.create_table->partition;
  EXPECT_EQ(hash.method, PartitionSpec::Method::kHash);
  EXPECT_EQ(hash.column, "ttid");
  EXPECT_EQ(hash.count, 8);
  // The clause survives a print-parse round trip byte-identically.
  std::string printed = PrintStmt(stmt);
  EXPECT_NE(printed.find("PARTITION BY HASH (ttid) PARTITIONS 8"),
            std::string::npos)
      << printed;
  ASSERT_OK_AND_ASSIGN(Stmt again, ParseStatement(printed));
  EXPECT_EQ(PrintStmt(again), printed);

  ASSERT_OK_AND_ASSIGN(
      stmt, ParseStatement("CREATE TABLE u (k INTEGER) "
                           "PARTITION BY LIST (k) "
                           "(VALUES (1, 2), VALUES (-3))"));
  const auto& list = stmt.create_table->partition;
  EXPECT_EQ(list.method, PartitionSpec::Method::kList);
  ASSERT_EQ(list.lists.size(), 2u);
  EXPECT_EQ(list.lists[0], (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(list.lists[1], (std::vector<int64_t>{-3}));
  printed = PrintStmt(stmt);
  ASSERT_OK_AND_ASSIGN(again, ParseStatement(printed));
  EXPECT_EQ(PrintStmt(again), printed);

  EXPECT_FALSE(
      ParseStatement("CREATE TABLE t (a INTEGER) "
                     "PARTITION BY HASH (a) PARTITIONS 0").ok());
  EXPECT_FALSE(
      ParseStatement("CREATE TABLE t (a INTEGER) PARTITION BY HASH (a)").ok());
}

TEST(ParserTest, CreateAndDropIndex) {
  ASSERT_OK_AND_ASSIGN(
      Stmt stmt, ParseStatement("CREATE INDEX ix_t ON t (ttid, a)"));
  ASSERT_EQ(stmt.kind, Stmt::Kind::kCreateIndex);
  EXPECT_EQ(stmt.create_index->name, "ix_t");
  EXPECT_EQ(stmt.create_index->table, "t");
  EXPECT_EQ(stmt.create_index->columns,
            (std::vector<std::string>{"ttid", "a"}));
  std::string printed = PrintStmt(stmt);
  ASSERT_OK_AND_ASSIGN(Stmt again, ParseStatement(printed));
  EXPECT_EQ(PrintStmt(again), printed);

  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("DROP INDEX ix_t"));
  ASSERT_EQ(stmt.kind, Stmt::Kind::kDrop);
  EXPECT_EQ(stmt.drop->what, DropStmt::What::kIndex);
  EXPECT_EQ(stmt.drop->name, "ix_t");
  EXPECT_NE(PrintStmt(stmt).find("DROP INDEX ix_t"), std::string::npos);

  EXPECT_FALSE(ParseStatement("CREATE INDEX ON t (a)").ok());
  EXPECT_FALSE(ParseStatement("CREATE INDEX ix ON t ()").ok());
}

TEST(ParserTest, CreateFunction) {
  ASSERT_OK_AND_ASSIGN(
      Stmt stmt,
      ParseStatement("CREATE FUNCTION f (DECIMAL(15,2), INTEGER) RETURNS "
                     "DECIMAL(15,2) AS 'SELECT $1' LANGUAGE SQL IMMUTABLE"));
  ASSERT_EQ(stmt.kind, Stmt::Kind::kCreateFunction);
  EXPECT_EQ(stmt.create_function->arg_types.size(), 2u);
  EXPECT_EQ(stmt.create_function->volatility, Volatility::kImmutable);
  EXPECT_EQ(stmt.create_function->body_sql, "SELECT $1");
}

TEST(ParserTest, CreateFunctionVolatilityClasses) {
  ASSERT_OK_AND_ASSIGN(
      Stmt stmt,
      ParseStatement("CREATE FUNCTION f (INTEGER) RETURNS INTEGER AS "
                     "'SELECT $1' LANGUAGE SQL STABLE"));
  EXPECT_EQ(stmt.create_function->volatility, Volatility::kStable);
  ASSERT_OK_AND_ASSIGN(
      stmt, ParseStatement("CREATE FUNCTION g (INTEGER) RETURNS INTEGER AS "
                           "'SELECT $1' LANGUAGE SQL VOLATILE"));
  EXPECT_EQ(stmt.create_function->volatility, Volatility::kVolatile);
  // No keyword: volatile, the conservative default.
  ASSERT_OK_AND_ASSIGN(
      stmt, ParseStatement("CREATE FUNCTION h (INTEGER) RETURNS INTEGER AS "
                           "'SELECT $1' LANGUAGE SQL"));
  EXPECT_EQ(stmt.create_function->volatility, Volatility::kVolatile);
}

TEST(ParserTest, InsertVariants) {
  ASSERT_OK_AND_ASSIGN(
      Stmt stmt, ParseStatement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"));
  EXPECT_EQ(stmt.insert->rows.size(), 2u);
  ASSERT_OK_AND_ASSIGN(stmt,
                       ParseStatement("INSERT INTO t SELECT a, b FROM s"));
  ASSERT_NE(stmt.insert->select, nullptr);
}

TEST(ParserTest, UpdateDelete) {
  ASSERT_OK_AND_ASSIGN(Stmt stmt,
                       ParseStatement("UPDATE t SET a = a + 1 WHERE b < 3"));
  EXPECT_EQ(stmt.update->assignments.size(), 1u);
  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("DELETE FROM t WHERE a = 1"));
  ASSERT_NE(stmt.del->where, nullptr);
}

TEST(ParserTest, GrantRevokeSetScope) {
  ASSERT_OK_AND_ASSIGN(Stmt stmt,
                       ParseStatement("GRANT READ ON Employees TO 42"));
  EXPECT_EQ(stmt.grant->grantee, 42);
  EXPECT_FALSE(stmt.grant->revoke);
  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("GRANT READ, INSERT ON DATABASE TO ALL"));
  EXPECT_TRUE(stmt.grant->to_all);
  EXPECT_TRUE(stmt.grant->on_database);
  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("REVOKE READ ON Employees FROM 42"));
  EXPECT_TRUE(stmt.grant->revoke);
  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("SET SCOPE = \"IN (1,3)\""));
  EXPECT_EQ(stmt.set_scope->scope_text, "IN (1,3)");
}

TEST(ParserTest, Script) {
  ASSERT_OK_AND_ASSIGN(auto stmts,
                       ParseScript("SELECT 1; SELECT 2; -- comment\n"));
  EXPECT_EQ(stmts.size(), 2u);
}

TEST(ParserTest, TrailingInputRejected) {
  EXPECT_FALSE(ParseStatement("SELECT 1 SELECT 2").ok());
}

TEST(ParserTest, ParameterPlaceholders) {
  // '?' auto-numbers left to right; '$n' is explicit.
  ASSERT_OK_AND_ASSIGN(
      Stmt stmt, ParseStatement("SELECT a FROM t WHERE a = ? AND b = ?"));
  EXPECT_EQ(MaxParamIndex(stmt), 2);
  ASSERT_OK_AND_ASSIGN(
      stmt, ParseStatement("SELECT a FROM t WHERE a = $2 AND b = $1"));
  EXPECT_EQ(MaxParamIndex(stmt), 2);
  // Numbering restarts per statement in a script.
  ASSERT_OK_AND_ASSIGN(auto stmts,
                       ParseScript("SELECT ?; SELECT ? + ?"));
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(MaxParamIndex(stmts[0]), 1);
  EXPECT_EQ(MaxParamIndex(stmts[1]), 2);
  // Placeholders print as $n (the canonical form the engine re-parses).
  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("SELECT a FROM t WHERE a = ?"));
  EXPECT_NE(PrintStmt(stmt).find("$1"), std::string::npos);
}

TEST(ParserTest, BadParameterPlaceholdersRejected) {
  // Mixing the two numbering schemes would silently alias slots.
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE a = $1 AND b = ?").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE a = ? AND b = $1").ok());
  // Parameters are 1-based and bounded; $0 and absurd indices are errors,
  // not crashes.
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE a = $0").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE a = $99999999999999").ok());
}

// Print -> parse -> print must be a fixpoint for a spread of queries: the
// middleware relies on this (it sends printed SQL to the engine).
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintParsePrintFixpoint) {
  ASSERT_OK_AND_ASSIGN(Stmt stmt, ParseStatement(GetParam()));
  std::string once = PrintStmt(stmt);
  ASSERT_OK_AND_ASSIGN(Stmt again, ParseStatement(once));
  EXPECT_EQ(PrintStmt(again), once) << "input: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Statements, RoundTripTest,
    ::testing::Values(
        "SELECT 1",
        "SELECT DISTINCT a, b + 1 AS c FROM t WHERE x = 'it''s' ORDER BY c DESC LIMIT 5",
        "SELECT * FROM a, b WHERE a.x = b.y AND (a.z > 1 OR b.w < 2)",
        "SELECT COUNT(*), SUM(x * (1 - y)) FROM t GROUP BY k HAVING COUNT(*) > 1",
        "SELECT CASE WHEN a THEN 1 WHEN b THEN 2 ELSE 0 END FROM t",
        "SELECT x FROM t WHERE d BETWEEN DATE '1994-01-01' AND DATE '1994-01-01' + INTERVAL '1' YEAR",
        "SELECT x FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a)",
        "SELECT x FROM t WHERE (a, b) IN (SELECT c, d FROM u)",
        "SELECT x FROM t WHERE y IS NOT NULL AND z NOT LIKE '%x%'",
        "SELECT EXTRACT(YEAR FROM d), SUBSTRING(s, 1, 2) FROM t",
        "SELECT v FROM (SELECT x AS v FROM t) AS d WHERE v <> 3",
        "SELECT * FROM a LEFT JOIN b ON a.x = b.y",
        "SELECT -x, NOT a, x / y * z FROM t",
        "INSERT INTO t (a, b) VALUES (1, 'x')",
        "UPDATE t SET a = a + 1 WHERE b IN (1, 2)",
        "DELETE FROM t WHERE a = 1",
        "CREATE VIEW v AS SELECT a FROM t",
        "CREATE TABLE g (a INTEGER NOT NULL, CONSTRAINT pk PRIMARY KEY (a))",
        "GRANT READ ON Employees TO 42",
        "SET SCOPE = \"FROM Employees WHERE E_salary > 180000\""));

}  // namespace
}  // namespace sql
}  // namespace mtbase
