#include "sql/lexer.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mtbase {
namespace sql {
namespace {

TEST(LexerTest, BasicTokens) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("SELECT a, b FROM t WHERE x >= 1.5"));
  ASSERT_EQ(tokens.back().kind, TokenKind::kEnd);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[2].text, ",");
  EXPECT_EQ(tokens[2].kind, TokenKind::kSymbol);
}

TEST(LexerTest, Numbers) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("42 0.06 .5"));
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDecimal);
  EXPECT_EQ(tokens[1].text, "0.06");
  EXPECT_EQ(tokens[2].kind, TokenKind::kDecimal);
  EXPECT_EQ(tokens[2].text, ".5");
}

TEST(LexerTest, SingleQuotedStringWithEscape) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("'it''s'"));
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, DoubleQuotedScopeString) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("SET SCOPE = \"IN (1,3,42)\""));
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, "IN (1,3,42)");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, Params) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("$1 + $2"));
  EXPECT_EQ(tokens[0].kind, TokenKind::kParam);
  EXPECT_EQ(tokens[0].text, "1");
  EXPECT_EQ(tokens[2].text, "2");
}

TEST(LexerTest, MultiCharOperators) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("a <= b >= c <> d != e || f"));
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[3].text, ">=");
  EXPECT_EQ(tokens[5].text, "<>");
  EXPECT_EQ(tokens[7].text, "<>");  // != normalized
  EXPECT_EQ(tokens[9].text, "||");
}

TEST(LexerTest, CommentsSkipped) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("SELECT 1 -- trailing comment\n, 2"));
  // SELECT 1 , 2 END
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[2].text, ",");
}

TEST(LexerTest, AtSymbolForConversionAnnotations) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("@currencyToUniversal"));
  EXPECT_EQ(tokens[0].text, "@");
  EXPECT_EQ(tokens[1].text, "currencyToUniversal");
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("SELECT #").ok());
}

}  // namespace
}  // namespace sql
}  // namespace mtbase
