// Printer-specific behavior: precedence-aware parenthesization and literal
// quoting. The broad round-trip coverage lives in parser_test.cc.
#include "sql/printer.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "tests/test_util.h"

namespace mtbase {
namespace sql {
namespace {

std::string Print(const std::string& expr) {
  auto e = ParseExpression(expr);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return e.ok() ? PrintExpr(*e.value()) : "";
}

TEST(PrinterTest, DropsRedundantParens) {
  EXPECT_EQ(Print("((a + b)) + c"), "a + b + c");
  EXPECT_EQ(Print("a AND (b AND c)"), "a AND (b AND c)");  // right assoc kept
  EXPECT_EQ(Print("(a * b) + c"), "a * b + c");
}

TEST(PrinterTest, KeepsNecessaryParens) {
  EXPECT_EQ(Print("(a + b) * c"), "(a + b) * c");
  EXPECT_EQ(Print("a * (b + c)"), "a * (b + c)");
  EXPECT_EQ(Print("(a OR b) AND c"), "(a OR b) AND c");
  EXPECT_EQ(Print("NOT (a AND b)"), "NOT (a AND b)");
  EXPECT_EQ(Print("a - (b - c)"), "a - (b - c)");
}

TEST(PrinterTest, ComparisonsInsideLogic) {
  EXPECT_EQ(Print("a = 1 AND b < 2 OR c >= 3"),
            "a = 1 AND b < 2 OR c >= 3");
}

TEST(PrinterTest, StringQuoting) {
  EXPECT_EQ(Print("'it''s'"), "'it''s'");
  EXPECT_EQ(Print("''"), "''");
  EXPECT_EQ(Print("'%green%'"), "'%green%'");
}

TEST(PrinterTest, DateAndIntervalLiterals) {
  EXPECT_EQ(Print("DATE '1995-03-15'"), "DATE '1995-03-15'");
  EXPECT_EQ(Print("d + INTERVAL '3' MONTH"), "d + INTERVAL '3' MONTH");
}

TEST(PrinterTest, PredicatesAndSubqueries) {
  EXPECT_EQ(Print("x NOT IN (1, 2)"), "x NOT IN (1, 2)");
  EXPECT_EQ(Print("x BETWEEN 1 AND 2"), "x BETWEEN 1 AND 2");
  EXPECT_EQ(Print("x IS NOT NULL"), "x IS NOT NULL");
  EXPECT_EQ(Print("NOT EXISTS (SELECT 1)"), "NOT EXISTS (SELECT 1)");
  EXPECT_EQ(Print("(a, b) IN (SELECT x, y FROM t)"),
            "(a, b) IN (SELECT x, y FROM t)");
}

TEST(PrinterTest, SelectClauses) {
  auto sel = ParseSelect(
      "SELECT DISTINCT a AS x FROM t u, (SELECT 1 AS one) AS d WHERE a > 0 "
      "GROUP BY a HAVING COUNT(*) > 1 ORDER BY x DESC LIMIT 7");
  ASSERT_OK(sel);
  std::string text = PrintSelect(*sel.value());
  EXPECT_NE(text.find("SELECT DISTINCT a AS x"), std::string::npos);
  EXPECT_NE(text.find("FROM t u, (SELECT 1 AS one) AS d"), std::string::npos);
  EXPECT_NE(text.find("ORDER BY x DESC LIMIT 7"), std::string::npos);
}

TEST(PrinterTest, LimitOffsetRoundTrips) {
  auto sel = ParseSelect("SELECT a FROM t ORDER BY a LIMIT 7 OFFSET 3");
  ASSERT_OK(sel);
  std::string text = PrintSelect(*sel.value());
  EXPECT_NE(text.find("ORDER BY a LIMIT 7 OFFSET 3"), std::string::npos);
  // Re-parse the printed form: the round trip must preserve both counts.
  auto again = ParseSelect(text);
  ASSERT_OK(again);
  EXPECT_EQ(again.value()->limit, 7);
  EXPECT_EQ(again.value()->offset, 3);
  // offset == 0 stays unprinted.
  sel = ParseSelect("SELECT a FROM t LIMIT 7 OFFSET 0");
  ASSERT_OK(sel);
  EXPECT_EQ(PrintSelect(*sel.value()).find("OFFSET"), std::string::npos);
}

TEST(PrinterTest, ExprEqualsIsStructural) {
  auto a = ParseExpression("x + 1 * y");
  auto b = ParseExpression("x + (1 * y)");
  auto c = ParseExpression("(x + 1) * y");
  ASSERT_OK(a);
  ASSERT_OK(b);
  ASSERT_OK(c);
  EXPECT_TRUE(ExprEquals(*a.value(), *b.value()));
  EXPECT_FALSE(ExprEquals(*a.value(), *c.value()));
}

}  // namespace
}  // namespace sql
}  // namespace mtbase
