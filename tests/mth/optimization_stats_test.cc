// Timing-independent effectiveness checks for the optimization levels,
// asserted through engine ExecStats (DESIGN.md section 5): e.g. aggregation
// distribution reduces conversions from 2N to T+1 (paper section 4.2.2) and
// inlining eliminates UDF calls entirely.
#include <gtest/gtest.h>

#include "mth/runner.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mth {
namespace {

class StatsFixture {
 public:
  static StatsFixture& Get() {
    static StatsFixture f;
    return f;
  }

  MthEnvironment* env() { return env_.get(); }
  mt::Session* session() { return session_.get(); }

  uint64_t LineitemCount() {
    auto rs = env_->mth_db->Execute("SELECT COUNT(*) FROM lineitem");
    return rs.ok() ? static_cast<uint64_t>(rs.value().rows[0][0].int_value())
                   : 0;
  }

 private:
  StatsFixture() {
    MthConfig cfg;
    cfg.scale_factor = 0.002;
    cfg.num_tenants = 5;
    // System C profile: no UDF result caching, so udf_calls counts every
    // conversion evaluation.
    auto r = SetupEnvironment(cfg, engine::DbmsProfile::kSystemC,
                              /*with_baseline=*/false);
    if (!r.ok()) {
      ADD_FAILURE() << r.status().ToString();
      return;
    }
    env_ = std::move(r).value();
    session_ = std::make_unique<mt::Session>(env_->middleware.get(), 1);
    auto st = session_->Execute("SET SCOPE = \"IN ()\"");
    if (!st.ok()) ADD_FAILURE() << st.status().ToString();
  }

  std::unique_ptr<MthEnvironment> env_;
  std::unique_ptr<mt::Session> session_;
};

QueryRun MustRun(int query, mt::OptLevel level) {
  auto& f = StatsFixture::Get();
  MthQuery q = GetMthQuery(query, f.env()->config.scale_factor);
  auto run = RunMthQuery(f.session(), q.sql, level);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return run.ok() ? std::move(run).value() : QueryRun{};
}

TEST(OptimizationStatsTest, CanonicalQ6ConvertsTwicePerQualifyingRow) {
  QueryRun run = MustRun(6, mt::OptLevel::kCanonical);
  // Q6 converts l_extendedprice (two UDF calls) for every qualifying row;
  // the result row count is 1, so compare against the aggregate input:
  // thousands of scanned rows, a few hundred qualify.
  EXPECT_GT(run.stats.udf_calls, 100u);
  EXPECT_EQ(run.stats.udf_calls % 2, 0u);
}

TEST(OptimizationStatsTest, O3ReducesConversionsToTenantsPlusOne) {
  auto& f = StatsFixture::Get();
  QueryRun run = MustRun(6, mt::OptLevel::kO3);
  // Per paper section 4.2.2: T partial conversions + 1 final conversion.
  // (o2 already moved the predicate conversions to constants: 2 calls per
  // tenant for the date-range constants; allow that slack.)
  uint64_t t = static_cast<uint64_t>(f.env()->config.num_tenants);
  EXPECT_LE(run.stats.udf_calls, 4 * t + 2);
  EXPECT_GE(run.stats.udf_calls, t);
}

TEST(OptimizationStatsTest, O4EliminatesUdfCallsEntirely) {
  QueryRun run = MustRun(6, mt::OptLevel::kO4);
  EXPECT_EQ(run.stats.udf_calls, 0u);
  run = MustRun(1, mt::OptLevel::kO4);
  EXPECT_EQ(run.stats.udf_calls, 0u);
  run = MustRun(22, mt::OptLevel::kO4);
  EXPECT_EQ(run.stats.udf_calls, 0u);
}

TEST(OptimizationStatsTest, InlineOnlyAlsoEliminatesUdfCalls) {
  QueryRun run = MustRun(1, mt::OptLevel::kInlineOnly);
  EXPECT_EQ(run.stats.udf_calls, 0u);
}

TEST(OptimizationStatsTest, MonotoneImprovementOnQ1) {
  // Conversion work shrinks monotonically across the levels of Table 6.
  uint64_t canonical = MustRun(1, mt::OptLevel::kCanonical).stats.udf_calls;
  uint64_t o3 = MustRun(1, mt::OptLevel::kO3).stats.udf_calls;
  uint64_t o4 = MustRun(1, mt::OptLevel::kO4).stats.udf_calls;
  EXPECT_GT(canonical, o3);
  EXPECT_GT(o3, o4);
}

TEST(OptimizationStatsTest, OwnDataScopeNeedsNoConversions) {
  // o1: D = {C} drops conversions entirely (paper Listing 13).
  auto& f = StatsFixture::Get();
  mt::Session own(f.env()->middleware.get(), 1);  // default scope {1}
  MthQuery q = GetMthQuery(6, f.env()->config.scale_factor);
  ASSERT_OK_AND_ASSIGN(QueryRun run,
                       RunMthQuery(&own, q.sql, mt::OptLevel::kO1));
  EXPECT_EQ(run.stats.total_udf_invocations(), 0u);
  // Canonical still converts even for D = {C}.
  ASSERT_OK_AND_ASSIGN(run, RunMthQuery(&own, q.sql, mt::OptLevel::kCanonical));
  EXPECT_GT(run.stats.total_udf_invocations(), 0u);
}

TEST(OptimizationStatsTest, RewrittenSqlShapesMatchLevels) {
  QueryRun canonical = MustRun(6, mt::OptLevel::kCanonical);
  EXPECT_NE(canonical.sql.find("currencyToUniversal"), std::string::npos);
  EXPECT_NE(canonical.sql.find("ttid IN ("), std::string::npos);
  QueryRun o1 = MustRun(6, mt::OptLevel::kO1);
  // D = all tenants: no D-filters at o1+.
  EXPECT_EQ(o1.sql.find("ttid IN ("), std::string::npos) << o1.sql;
  QueryRun o4 = MustRun(6, mt::OptLevel::kO4);
  EXPECT_EQ(o4.sql.find("currencyToUniversal"), std::string::npos) << o4.sql;
  EXPECT_NE(o4.sql.find("CurrencyTransform"), std::string::npos) << o4.sql;
}

TEST(OptimizationStatsTest, PostgresProfileCachesConstantConversions) {
  // On the PostgreSQL profile, o2's constant-side conversions hit the UDF
  // cache after one execution per tenant — the reason o2 helps there but not
  // on System C (paper section 6 / Appendix C).
  MthConfig cfg;
  cfg.scale_factor = 0.002;
  cfg.num_tenants = 5;
  auto env_r =
      SetupEnvironment(cfg, engine::DbmsProfile::kPostgres, false);
  ASSERT_OK(env_r);
  auto env = std::move(env_r).value();
  mt::Session session(env->middleware.get(), 1);
  ASSERT_OK(session.Execute("SET SCOPE = \"IN ()\"").status());
  // A convertible attribute in the predicate: o2 converts the constant
  // instead, and the PostgreSQL UDF cache answers all repeated
  // (constant, owner) argument pairs after one execution per tenant.
  ASSERT_OK_AND_ASSIGN(
      QueryRun run,
      RunMthQuery(&session, "SELECT COUNT(*) FROM customer WHERE c_acctbal > 1000",
                  mt::OptLevel::kO2));
  EXPECT_LE(run.stats.udf_calls, 2u * cfg.num_tenants + 2u);
  EXPECT_GT(run.stats.udf_cache_hits, run.stats.udf_calls);
}

// The prepared-statement acceptance property: re-executing a prepared MT-H
// query under an unchanged SCOPE performs zero parser, rewriter and planner
// invocations — compilation is O(1) in the number of executions, asserted
// through ExecStats rather than wall-clock.
TEST(PreparedMthTest, ReExecutionIsCompilationFree) {
  auto& f = StatsFixture::Get();
  ASSERT_NE(f.env(), nullptr);
  for (int qn : {1, 6, 22}) {
    MthQuery q = GetMthQuery(qn, f.env()->config.scale_factor);
    ASSERT_OK_AND_ASSIGN(PreparedMthQuery prepared,
                         PrepareMthQuery(f.session(), q.sql, mt::OptLevel::kO4));
    ASSERT_OK_AND_ASSIGN(QueryRun first, RunPrepared(&prepared));
    engine::StatsScope scope(f.env()->mth_db->stats());
    ASSERT_OK_AND_ASSIGN(QueryRun second, RunPrepared(&prepared));
    ASSERT_OK_AND_ASSIGN(QueryRun third, RunPrepared(&prepared));
    engine::ExecStats d = scope.Delta();
    EXPECT_EQ(d.statements_parsed, 0u) << q.name;
    EXPECT_EQ(d.statements_rewritten, 0u) << q.name;
    EXPECT_EQ(d.statements_planned, 0u) << q.name;
    EXPECT_EQ(d.prepare_count, 0u) << q.name;
    EXPECT_EQ(d.rewrite_cache_hits, 2u) << q.name;
    EXPECT_GE(d.plan_cache_hits, 2u) << q.name;
    // Cached re-execution returns the same rows as the first run.
    std::string why;
    EXPECT_TRUE(ResultsEqual(first.result, second.result, &why)) << why;
    EXPECT_TRUE(ResultsEqual(first.result, third.result, &why)) << why;
  }
}

}  // namespace
}  // namespace mth
}  // namespace mtbase
