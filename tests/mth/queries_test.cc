#include "mth/queries.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mth {
namespace {

TEST(MthQueriesTest, AllTwentyTwoPresent) {
  auto queries = MthQueries(1.0);
  ASSERT_EQ(queries.size(), 22u);
  for (int i = 0; i < 22; ++i) {
    EXPECT_EQ(queries[static_cast<size_t>(i)].number, i + 1);
  }
  EXPECT_EQ(queries[0].name, "Q01");
  EXPECT_EQ(queries[21].name, "Q22");
}

class QueryParseTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryParseTest, ParsesAndRoundTrips) {
  MthQuery q = GetMthQuery(GetParam(), 0.01);
  ASSERT_OK_AND_ASSIGN(sql::Stmt stmt, sql::ParseStatement(q.sql));
  ASSERT_EQ(stmt.kind, sql::Stmt::Kind::kSelect);
  std::string printed = sql::PrintStmt(stmt);
  ASSERT_OK_AND_ASSIGN(sql::Stmt again, sql::ParseStatement(printed));
  EXPECT_EQ(sql::PrintStmt(again), printed) << q.name;
}

INSTANTIATE_TEST_SUITE_P(All22, QueryParseTest, ::testing::Range(1, 23));

TEST(MthQueriesTest, Q11FractionScalesWithSf) {
  MthQuery q1 = GetMthQuery(11, 1.0);
  MthQuery q2 = GetMthQuery(11, 0.1);
  EXPECT_NE(q1.sql.find("0.0001"), std::string::npos);
  EXPECT_NE(q2.sql.find("0.0010"), std::string::npos);
}

}  // namespace
}  // namespace mth
}  // namespace mtbase
