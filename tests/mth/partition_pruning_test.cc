// Tenant-aware physical design over the MT-H workload: loading the same
// deterministic dataset into a ttid-hash-partitioned database and an
// unpartitioned one must be invisible to every query — all 22 validation
// queries, at every rewrite level, in both scope shapes, return
// byte-identical results. On single-tenant scopes the partitioned plans must
// actually prune (D' = {client} routes to exactly one partition, so every
// pruned tenant-table scan skips partitions - 1 partitions), and a mutator
// that widens a pruned set beyond the D'-image must be refused by the plan
// verifier with PARTITION_SET_MISMATCH. Sharded per TPC-H query in CMake
// like the parallel-exec suite (not labelled `long`: the quick and TSan
// lanes both carry the partitioned scan path).
#include <cstdlib>
#include <memory>

#include <gtest/gtest.h>

#include "engine/verify/mutators.h"
#include "mth/runner.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mth {
namespace {

constexpr int64_t kPartitions = 4;

constexpr mt::OptLevel kAllLevels[] = {
    mt::OptLevel::kCanonical, mt::OptLevel::kO1,
    mt::OptLevel::kO2,        mt::OptLevel::kO3,
    mt::OptLevel::kO4,        mt::OptLevel::kInlineOnly,
};

class ScopedVerifyEnv {
 public:
  ScopedVerifyEnv() { setenv("MTBASE_VERIFY_PLANS", "1", 1); }
  ~ScopedVerifyEnv() { unsetenv("MTBASE_VERIFY_PLANS"); }
};

std::string Canon(const engine::ResultSet& rs) { return CanonRows(rs.rows); }

// One MT-H environment plus an all-tenants and an own-tenant session. Both
// fixtures generate the same fixed-seed dataset; only `partitions` differs,
// so any result divergence is the physical design leaking into semantics.
class PruningEnv {
 public:
  explicit PruningEnv(int64_t partitions) {
    MthConfig cfg;
    cfg.scale_factor = 0.002;
    cfg.num_tenants = 5;
    cfg.distribution = MthConfig::Distribution::kZipf;
    cfg.partitions = partitions;
    auto r = SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                              /*with_baseline=*/false);
    if (!r.ok()) {
      ADD_FAILURE() << r.status().ToString();
      return;
    }
    env_ = std::move(r).value();
    all_ = std::make_unique<mt::Session>(env_->middleware.get(), 1);
    auto st = all_->Execute("SET SCOPE = \"IN ()\"");
    if (!st.ok()) ADD_FAILURE() << st.status().ToString();
    own_ = std::make_unique<mt::Session>(env_->middleware.get(), 1);
  }

  static PruningEnv& Partitioned() {
    static PruningEnv env(kPartitions);
    return env;
  }
  static PruningEnv& Flat() {
    static PruningEnv env(0);
    return env;
  }

  MthEnvironment* env() { return env_.get(); }
  mt::Session* all_tenants() { return all_.get(); }
  mt::Session* own_tenant() { return own_.get(); }

 private:
  std::unique_ptr<MthEnvironment> env_;
  std::unique_ptr<mt::Session> all_;
  std::unique_ptr<mt::Session> own_;
};

class PartitionPruningTest : public ::testing::TestWithParam<int> {};

// Both scope shapes, every rewrite level: the partitioned database returns
// byte-identical rows to the unpartitioned one, and on the own-tenant scope
// the partitioned plans demonstrably prune — every pruned tenant-table scan
// skips exactly kPartitions - 1 partitions (the D' = {1} hash image is a
// single partition), so the counter is a positive multiple of that.
TEST_P(PartitionPruningTest, PartitionedMatchesFlatAtEveryLevel) {
  auto& part = PruningEnv::Partitioned();
  auto& flat = PruningEnv::Flat();
  ASSERT_NE(part.env(), nullptr);
  ASSERT_NE(flat.env(), nullptr);
  MthQuery q = GetMthQuery(GetParam(), part.env()->config.scale_factor);
  struct Scope {
    const char* name;
    mt::Session* part_session;
    mt::Session* flat_session;
    bool single_tenant;
  };
  const Scope scopes[] = {
      {"own-tenant", part.own_tenant(), flat.own_tenant(), true},
      {"all-tenants", part.all_tenants(), flat.all_tenants(), false},
  };
  for (const Scope& scope : scopes) {
    for (mt::OptLevel level : kAllLevels) {
      ASSERT_OK_AND_ASSIGN(QueryRun base,
                           RunMthQuery(scope.flat_session, q.sql, level));
      ASSERT_OK_AND_ASSIGN(QueryRun run,
                           RunMthQuery(scope.part_session, q.sql, level));
      EXPECT_EQ(Canon(base.result), Canon(run.result))
          << q.name << " at " << mt::OptLevelName(level) << " (" << scope.name
          << "): partitioned and flat results diverged\nSQL sent to engine:\n"
          << run.sql;
      EXPECT_EQ(base.stats.partitions_pruned, 0u)
          << q.name << ": the unpartitioned database cannot prune";
      // Q2, Q11 and Q16 read only global tables (part, supplier, partsupp,
      // nation, region) — there is no tenant-table scan to prune.
      const bool touches_tenant_tables =
          GetParam() != 2 && GetParam() != 11 && GetParam() != 16;
      if (scope.single_tenant && touches_tenant_tables) {
        EXPECT_GT(run.stats.partitions_pruned, 0u)
            << q.name << " at " << mt::OptLevelName(level)
            << ": single-tenant scope did not prune any partition";
        EXPECT_EQ(run.stats.partitions_pruned % (kPartitions - 1), 0u)
            << q.name << " at " << mt::OptLevelName(level)
            << ": a single-tenant scan must skip all but one partition";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, PartitionPruningTest,
                         ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           char buf[16];
                           std::snprintf(buf, sizeof(buf), "Q%02d",
                                         info.param);
                           return std::string(buf);
                         });

// The pruning is visible in EXPLAIN with the documented annotation: Q6 at
// own-tenant scope scans lineitem with kPartitions - 1 partitions pruned.
TEST(PartitionPruningMiscTest, ExplainAnnotatesPrunedTenantScan) {
  auto& part = PruningEnv::Partitioned();
  ASSERT_NE(part.env(), nullptr);
  MthQuery q = GetMthQuery(6, part.env()->config.scale_factor);
  ASSERT_OK_AND_ASSIGN(std::string text, part.own_tenant()->Explain(q.sql));
  EXPECT_PLAN_SHAPE(text, {"*Scan lineitem*[partitions: 3/4 pruned]*"});
}

// Negative half of the acceptance criterion: widen the pruned partition set
// of a compiled MT-H plan to *all* partitions. D' = {1} routes to a single
// partition, so the widened set contains partitions no expected tenant maps
// to — the verifier must refuse the plan with the machine-readable code.
TEST(PartitionPruningMiscTest, WidenedPartitionSetRefused) {
  ScopedVerifyEnv verify_env;
  auto& part = PruningEnv::Partitioned();
  ASSERT_NE(part.env(), nullptr);
  engine::Database* db = part.env()->mth_db.get();
  MthQuery q = GetMthQuery(6, part.env()->config.scale_factor);
  bool widened = false;
  db->set_plan_mutation_hook_for_testing([&widened](engine::Plan* p) {
    widened |= engine::verify::WidenPartitionPruning(p);
  });
  engine::StatsScope stats(db->stats());
  auto run = RunMthQuery(part.own_tenant(), q.sql, mt::OptLevel::kO4);
  db->set_plan_mutation_hook_for_testing(nullptr);
  ASSERT_TRUE(widened);
  ASSERT_FALSE(run.ok()) << "executed a plan scanning partitions outside D'";
  EXPECT_NE(run.status().ToString().find("PARTITION_SET_MISMATCH"),
            std::string::npos)
      << run.status().ToString();
  EXPECT_GT(stats.Delta().verify_violations, 0u);
}

// The widened plans from the mutator are refused, but untouched partitioned
// plans run verifier-clean under enforcement in both scope shapes: the
// partition-subset proof is part of the standard soundness surface, not a
// special mode.
TEST(PartitionPruningMiscTest, PrunedPlansVerifierCleanUnderEnforcement) {
  ScopedVerifyEnv verify_env;
  auto& part = PruningEnv::Partitioned();
  ASSERT_NE(part.env(), nullptr);
  engine::Database* db = part.env()->mth_db.get();
  MthQuery q = GetMthQuery(6, part.env()->config.scale_factor);
  for (mt::Session* session : {part.own_tenant(), part.all_tenants()}) {
    engine::StatsScope stats(db->stats());
    ASSERT_OK_AND_ASSIGN(QueryRun run,
                         RunMthQuery(session, q.sql, mt::OptLevel::kO4));
    engine::ExecStats d = stats.Delta();
    EXPECT_GT(d.plans_verified, 0u) << "enforcement did not run";
    EXPECT_EQ(d.verify_violations, 0u);
  }
}

}  // namespace
}  // namespace mth
}  // namespace mtbase
