#include "mth/dbgen.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"

namespace mtbase {
namespace mth {
namespace {

MthConfig SmallConfig() {
  MthConfig cfg;
  cfg.scale_factor = 0.001;
  cfg.num_tenants = 4;
  return cfg;
}

TEST(DbgenTest, Cardinalities) {
  MthConfig cfg = SmallConfig();
  ASSERT_OK_AND_ASSIGN(MthData data, GenerateData(cfg));
  EXPECT_EQ(data.region.size(), 5u);
  EXPECT_EQ(data.nation.size(), 25u);
  EXPECT_EQ(data.supplier.size(), static_cast<size_t>(cfg.SupplierCount()));
  EXPECT_EQ(data.part.size(), static_cast<size_t>(cfg.PartCount()));
  EXPECT_EQ(data.partsupp.size(), 4 * data.part.size());
  EXPECT_EQ(data.customer.size(), static_cast<size_t>(cfg.CustomerCount()));
  EXPECT_EQ(data.orders.size(), static_cast<size_t>(cfg.OrderCount()));
  EXPECT_GE(data.lineitem.size(), data.orders.size());
  EXPECT_EQ(data.customer_tenant.size(), data.customer.size());
  EXPECT_EQ(data.orders_tenant.size(), data.orders.size());
  EXPECT_EQ(data.lineitem_tenant.size(), data.lineitem.size());
}

TEST(DbgenTest, Deterministic) {
  ASSERT_OK_AND_ASSIGN(MthData a, GenerateData(SmallConfig()));
  ASSERT_OK_AND_ASSIGN(MthData b, GenerateData(SmallConfig()));
  ASSERT_EQ(a.lineitem.size(), b.lineitem.size());
  for (size_t i = 0; i < a.lineitem.size(); i += 97) {
    ValueVectorEq eq;
    EXPECT_TRUE(eq(a.lineitem[i], b.lineitem[i]));
  }
}

TEST(DbgenTest, OrdersInheritCustomerTenant) {
  ASSERT_OK_AND_ASSIGN(MthData data, GenerateData(SmallConfig()));
  for (size_t i = 0; i < data.orders.size(); i += 13) {
    int64_t cust = data.orders[i][1].int_value();
    EXPECT_EQ(data.orders_tenant[i],
              data.customer_tenant[static_cast<size_t>(cust - 1)]);
  }
}

TEST(DbgenTest, LineitemsReferenceValidPartSuppPairs) {
  ASSERT_OK_AND_ASSIGN(MthData data, GenerateData(SmallConfig()));
  std::set<std::pair<int64_t, int64_t>> ps;
  for (const Row& r : data.partsupp) {
    ps.insert({r[0].int_value(), r[1].int_value()});
  }
  for (size_t i = 0; i < data.lineitem.size(); i += 7) {
    const Row& l = data.lineitem[i];
    EXPECT_TRUE(ps.count({l[1].int_value(), l[2].int_value()}))
        << "lineitem " << i;
  }
}

TEST(DbgenTest, UniformSharesAreBalanced) {
  MthConfig cfg = SmallConfig();
  ASSERT_OK_AND_ASSIGN(MthData data, GenerateData(cfg));
  std::map<int64_t, int> counts;
  for (int64_t t : data.customer_tenant) counts[t]++;
  ASSERT_EQ(counts.size(), static_cast<size_t>(cfg.num_tenants));
  int min = 1 << 30, max = 0;
  for (auto& [t, c] : counts) {
    min = std::min(min, c);
    max = std::max(max, c);
  }
  EXPECT_LE(max - min, 1);
}

TEST(DbgenTest, ZipfSharesAreSkewed) {
  MthConfig cfg = SmallConfig();
  cfg.num_tenants = 8;
  cfg.distribution = MthConfig::Distribution::kZipf;
  ASSERT_OK_AND_ASSIGN(MthData data, GenerateData(cfg));
  std::map<int64_t, int> counts;
  for (int64_t t : data.customer_tenant) counts[t]++;
  EXPECT_GT(counts[1], 2 * counts[8]);
}

TEST(DbgenTest, LoadTpchAndValidateConstraints) {
  engine::Database db;
  ASSERT_OK_AND_ASSIGN(MthData data, GenerateData(SmallConfig()));
  ASSERT_OK(LoadTpch(&db, data));
  // PK uniqueness and FK integrity over the whole baseline.
  ASSERT_OK(db.ValidateConstraints());
  ASSERT_OK_AND_ASSIGN(auto rs, db.Execute("SELECT COUNT(*) FROM lineitem"));
  EXPECT_EQ(rs.rows[0][0].int_value(),
            static_cast<int64_t>(data.lineitem.size()));
}

TEST(DbgenTest, LoadMthStoresTenantFormats) {
  MthConfig cfg = SmallConfig();
  engine::Database db;
  mt::Middleware mw(&db);
  ASSERT_OK_AND_ASSIGN(MthData data, GenerateData(cfg));
  ASSERT_OK(LoadMth(&db, &mw, data, cfg));
  EXPECT_EQ(mw.tenants().size(), static_cast<size_t>(cfg.num_tenants));
  // ttid column present and filled.
  ASSERT_OK_AND_ASSIGN(
      auto rs, db.Execute("SELECT COUNT(DISTINCT ttid) FROM customer"));
  EXPECT_EQ(rs.rows[0][0].int_value(), cfg.num_tenants);
  // Tenant 1 stores universal values: its rows match the baseline ones.
  ASSERT_OK_AND_ASSIGN(
      rs, db.Execute("SELECT c_custkey, c_acctbal, c_phone FROM customer "
                     "WHERE ttid = 1 ORDER BY c_custkey LIMIT 3"));
  for (const Row& row : rs.rows) {
    const Row& universal =
        data.customer[static_cast<size_t>(row[0].int_value() - 1)];
    EXPECT_TRUE(row[1].StructuralEquals(universal[5]));
    EXPECT_EQ(row[2].string_value(), universal[4].string_value());
  }
}

TEST(DbgenTest, ConversionFunctionsInvertStoredValues) {
  // fromU(toU(stored)) is the identity and toU(stored) equals the universal
  // value for every tenant: Definition 1 on real data.
  MthConfig cfg = SmallConfig();
  engine::Database db;
  mt::Middleware mw(&db);
  ASSERT_OK_AND_ASSIGN(MthData data, GenerateData(cfg));
  ASSERT_OK(LoadMth(&db, &mw, data, cfg));
  ASSERT_OK_AND_ASSIGN(
      auto rs,
      db.Execute("SELECT COUNT(*) FROM orders WHERE "
                 "currencyFromUniversal(currencyToUniversal(o_totalprice, "
                 "ttid), ttid) <> o_totalprice"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 0);
  ASSERT_OK_AND_ASSIGN(
      rs, db.Execute("SELECT COUNT(*) FROM customer WHERE "
                     "phoneToUniversal(phoneFromUniversal("
                     "phoneToUniversal(c_phone, ttid), ttid), ttid) <> "
                     "phoneToUniversal(c_phone, ttid)"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 0);
}

TEST(DbgenTest, QueryPatternsArePresent) {
  MthConfig cfg = SmallConfig();
  cfg.scale_factor = 0.01;  // enough suppliers/parts for the rare patterns
  ASSERT_OK_AND_ASSIGN(MthData data, GenerateData(cfg));
  int green = 0, forest = 0;
  for (const Row& p : data.part) {
    const std::string& name = p[1].string_value();
    if (name.find("green") != std::string::npos) ++green;
    if (name.rfind("forest", 0) == 0) ++forest;
  }
  EXPECT_GT(green, 0);
  EXPECT_GT(forest, 0);
  int complaints = 0;
  for (const Row& s : data.supplier) {
    if (s[6].string_value().find("Complaints") != std::string::npos) {
      ++complaints;
    }
  }
  EXPECT_GT(complaints, 0);
}

}  // namespace
}  // namespace mth
}  // namespace mtbase
