// Tenant-isolation proofs over the MT-H workload: every canonical validation
// query, at every rewrite level, must compile verifier-clean under
// enforcement (`verify_violations == 0`) — and when the test mutation hook
// deliberately strips the rewriter's D-filters from the compiled plans, the
// verifier must refuse each one with TENANT_PREDICATE_MISSING. Sharded per
// TPC-H query in CMake like the validation suite.
#include <cstdlib>

#include <gtest/gtest.h>

#include "engine/verify/mutators.h"
#include "engine/verify/verifier.h"
#include "mt/mt_schema.h"
#include "mth/runner.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mth {
namespace {

class ScopedVerifyEnv {
 public:
  ScopedVerifyEnv() { setenv("MTBASE_VERIFY_PLANS", "1", 1); }
  ~ScopedVerifyEnv() { unsetenv("MTBASE_VERIFY_PLANS"); }
};

constexpr mt::OptLevel kAllLevels[] = {
    mt::OptLevel::kCanonical, mt::OptLevel::kO1,
    mt::OptLevel::kO2,        mt::OptLevel::kO3,
    mt::OptLevel::kO4,        mt::OptLevel::kInlineOnly,
};

class IsolationEnv {
 public:
  static IsolationEnv& Get() {
    static IsolationEnv env;
    return env;
  }

  MthEnvironment* env() { return env_.get(); }
  /// SCOPE "IN ()": D' = all tenants, so o1 and above elide the D-filters
  /// (the verifier's allow_unfiltered path).
  mt::Session* all_tenants() { return all_.get(); }
  /// Default scope: D' = {client}, so every level keeps its D-filters (the
  /// plans the negative suite strips).
  mt::Session* own_tenant() { return own_.get(); }

 private:
  IsolationEnv() {
    MthConfig cfg;
    cfg.scale_factor = 0.002;
    cfg.num_tenants = 5;
    cfg.distribution = MthConfig::Distribution::kZipf;
    auto r = SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                              /*with_baseline=*/false);
    if (!r.ok()) {
      ADD_FAILURE() << r.status().ToString();
      return;
    }
    env_ = std::move(r).value();
    all_ = std::make_unique<mt::Session>(env_->middleware.get(), 1);
    auto st = all_->Execute("SET SCOPE = \"IN ()\"");
    if (!st.ok()) ADD_FAILURE() << st.status().ToString();
    own_ = std::make_unique<mt::Session>(env_->middleware.get(), 1);
  }

  std::unique_ptr<MthEnvironment> env_;
  std::unique_ptr<mt::Session> all_;
  std::unique_ptr<mt::Session> own_;
};

class VerifyIsolationTest : public ::testing::TestWithParam<int> {};

// The positive half of the acceptance criterion: both scope shapes, every
// rewrite level, zero violations — with the verifier demonstrably running.
TEST_P(VerifyIsolationTest, AllLevelsVerifierClean) {
  ScopedVerifyEnv verify_env;
  auto& fixture = IsolationEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  MthQuery q = GetMthQuery(GetParam(), fixture.env()->config.scale_factor);
  for (mt::Session* session : {fixture.all_tenants(), fixture.own_tenant()}) {
    for (mt::OptLevel level : kAllLevels) {
      engine::StatsScope stats(db->stats());
      auto run = RunMthQuery(session, q.sql, level);
      ASSERT_TRUE(run.ok()) << q.name << " at " << mt::OptLevelName(level)
                            << ": " << run.status().ToString();
      engine::ExecStats d = stats.Delta();
      EXPECT_GT(d.plans_verified, 0u)
          << q.name << " at " << mt::OptLevelName(level)
          << ": enforcement did not run";
      EXPECT_EQ(d.verify_violations, 0u)
          << q.name << " at " << mt::OptLevelName(level);
    }
  }
}

// The negative half: strip the D-filters from the compiled plans at every
// rewrite level and assert the verifier catches each stripped predicate
// with the machine-readable code. The own-tenant session keeps D-filters
// at every level (D' = {1} is never all tenants), so every query touching
// a tenant-specific table in its main operator tree must lose at least one
// predicate — and must then be refused. Queries whose tenant access sits
// only behind global tables (Q11, Q16) or inside immutable sub-query plans
// the mutator cannot reach (Q20) legitimately strip nothing and must still
// run clean.
TEST_P(VerifyIsolationTest, StrippedDFiltersRefusedAtEveryLevel) {
  ScopedVerifyEnv verify_env;
  auto& fixture = IsolationEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  MthQuery q = GetMthQuery(GetParam(), fixture.env()->config.scale_factor);
  for (mt::OptLevel level : kAllLevels) {
    int stripped = 0;
    db->set_plan_mutation_hook_for_testing([&stripped](engine::Plan* p) {
      stripped += engine::verify::StripTenantPredicates(p, mt::kTtidColumn);
    });
    engine::StatsScope stats(db->stats());
    auto run = RunMthQuery(fixture.own_tenant(), q.sql, level);
    db->set_plan_mutation_hook_for_testing(nullptr);
    if (stripped == 0) {
      EXPECT_TRUE(run.ok()) << q.name << " at " << mt::OptLevelName(level)
                            << ": " << run.status().ToString();
      continue;
    }
    ASSERT_FALSE(run.ok())
        << q.name << " at " << mt::OptLevelName(level)
        << ": executed a plan with stripped tenant predicates";
    EXPECT_NE(run.status().ToString().find("TENANT_PREDICATE_MISSING"),
              std::string::npos)
        << q.name << " at " << mt::OptLevelName(level) << ": "
        << run.status().ToString();
    EXPECT_GT(stats.Delta().verify_violations, 0u)
        << q.name << " at " << mt::OptLevelName(level);
  }
}

// A structural mutation must be caught on MT-H plans too: point the first
// sort key of Q1's ORDER BY out of range.
TEST(VerifyIsolationMiscTest, BrokenSortKeyRefused) {
  ScopedVerifyEnv verify_env;
  auto& fixture = IsolationEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  MthQuery q = GetMthQuery(1, fixture.env()->config.scale_factor);
  bool broke = false;
  db->set_plan_mutation_hook_for_testing([&broke](engine::Plan* p) {
    broke |= engine::verify::BreakFirstSortKey(p);
  });
  auto run = RunMthQuery(fixture.own_tenant(), q.sql, mt::OptLevel::kO4);
  db->set_plan_mutation_hook_for_testing(nullptr);
  ASSERT_TRUE(broke);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().ToString().find("SORT_KEY_OUT_OF_RANGE"),
            std::string::npos)
      << run.status().ToString();
}

// EXPLAIN (VERIFY) over the session surface: the rewritten plan of an MT-H
// query annotates verifier-clean, and the annotation reflects this
// session's expected tenant set (not string matching).
TEST(VerifyIsolationMiscTest, ExplainVerifyAnnotatesCleanPlans) {
  auto& fixture = IsolationEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  MthQuery q = GetMthQuery(6, fixture.env()->config.scale_factor);
  ASSERT_OK_AND_ASSIGN(std::string text,
                       fixture.own_tenant()->Explain(q.sql, /*verify=*/true));
  EXPECT_NE(text.find("[verify: ok]"), std::string::npos) << text;
  // Without the flag the annotation stays off.
  ASSERT_OK_AND_ASSIGN(text, fixture.own_tenant()->Explain(q.sql));
  EXPECT_EQ(text.find("[verify:"), std::string::npos) << text;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, VerifyIsolationTest,
                         ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           char buf[16];
                           std::snprintf(buf, sizeof(buf), "Q%02d",
                                         info.param);
                           return std::string(buf);
                         });

}  // namespace
}  // namespace mth
}  // namespace mtbase
