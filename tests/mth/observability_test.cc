// Observability over the MT-H workload: EXPLAIN (ANALYZE) on every
// validation query at every rewrite level returns byte-identical results to
// an uninstrumented run, and its per-operator actuals reconcile exactly with
// the uninstrumented ExecStats delta (root row count; UDF invocations, which
// are cache-warmth independent as calls + cache hits). Sharded per TPC-H
// query in CMake like the validation suite, plus misc tests for overlapping
// StatsScope measurements under parallel execution and a trace-file smoke
// test driven by the CI quick lane (MTBASE_TRACE set by CMake).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "mth/runner.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mth {
namespace {

constexpr mt::OptLevel kAllLevels[] = {
    mt::OptLevel::kCanonical, mt::OptLevel::kO1,
    mt::OptLevel::kO2,        mt::OptLevel::kO3,
    mt::OptLevel::kO4,        mt::OptLevel::kInlineOnly,
};

class ObsEnv {
 public:
  static ObsEnv& Get() {
    static ObsEnv env;
    return env;
  }

  MthEnvironment* env() { return env_.get(); }
  /// All-tenants session (SCOPE "IN ()"): the cross-tenant shape where every
  /// rewrite level produces a distinct plan family.
  mt::Session* session() { return session_.get(); }

 private:
  ObsEnv() {
    MthConfig cfg;
    cfg.scale_factor = 0.002;
    cfg.num_tenants = 5;
    cfg.distribution = MthConfig::Distribution::kZipf;
    auto r = SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                              /*with_baseline=*/false);
    if (!r.ok()) {
      ADD_FAILURE() << r.status().ToString();
      return;
    }
    env_ = std::move(r).value();
    session_ = std::make_unique<mt::Session>(env_->middleware.get(), 1);
    auto st = session_->Execute("SET SCOPE = \"IN ()\"");
    if (!st.ok()) ADD_FAILURE() << st.status().ToString();
  }

  std::unique_ptr<MthEnvironment> env_;
  std::unique_ptr<mt::Session> session_;
};

/// The [analyze: ...] statement footer, parsed back out of the rendering.
struct AnalyzeFooter {
  uint64_t rows = 0;
  int workers = 0;
  double time_ms = 0;
  uint64_t udf_calls = 0;
  uint64_t udf_cache_hits = 0;
};

bool ParseAnalyzeFooter(const std::string& text, AnalyzeFooter* out) {
  const size_t pos = text.find("[analyze: ");
  if (pos == std::string::npos) return false;
  return std::sscanf(text.c_str() + pos,
                     "[analyze: rows=%" SCNu64 " workers=%d time=%lfms"
                     " udf_calls=%" SCNu64 " udf_cache_hits=%" SCNu64 "]",
                     &out->rows, &out->workers, &out->time_ms,
                     &out->udf_calls, &out->udf_cache_hits) == 5;
}

class ObservabilityTest : public ::testing::TestWithParam<int> {};

// The acceptance criterion: at every rewrite level, EXPLAIN (ANALYZE)
// executes the same plan a plain run would — byte-identical rows — while its
// footer reconciles exactly with the uninstrumented run's ExecStats delta,
// and every operator line carries an [actual: ...] annotation.
TEST_P(ObservabilityTest, AnalyzeMatchesUninstrumentedRun) {
  auto& fixture = ObsEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  mt::Session* session = fixture.session();
  MthQuery q = GetMthQuery(GetParam(), fixture.env()->config.scale_factor);
  for (mt::OptLevel level : kAllLevels) {
    // Uninstrumented reference run (QueryRun::stats is the per-run delta).
    auto run = RunMthQuery(session, q.sql, level);
    ASSERT_TRUE(run.ok()) << q.name << " at " << mt::OptLevelName(level)
                          << ": " << run.status().ToString();

    session->set_optimization_level(level);
    mt::ExplainOptions opts;
    opts.analyze = true;
    engine::ResultSet analyzed;
    auto text = session->Explain(q.sql, opts, &analyzed);
    ASSERT_TRUE(text.ok()) << q.name << " at " << mt::OptLevelName(level)
                           << ": " << text.status().ToString();

    // Instrumentation must not change what the query returns.
    EXPECT_EQ(CanonRows(analyzed.rows), CanonRows(run->result.rows))
        << q.name << " at " << mt::OptLevelName(level);

    // Every operator line is annotated. Footers start with '[' after
    // indentation; SubPlan/InitPlan section headers are not operators.
    std::istringstream lines(*text);
    std::string line;
    int operator_lines = 0;
    while (std::getline(lines, line)) {
      const size_t first = line.find_first_not_of(' ');
      if (first == std::string::npos) continue;
      const std::string trimmed = line.substr(first);
      if (trimmed[0] == '[') continue;
      if (trimmed.rfind("SubPlan (", 0) == 0 ||
          trimmed.rfind("InitPlan (", 0) == 0) {
        continue;
      }
      ++operator_lines;
      EXPECT_NE(line.find("[actual:"), std::string::npos)
          << q.name << " at " << mt::OptLevelName(level) << ": unannotated "
          << line << "\n"
          << *text;
    }
    EXPECT_GT(operator_lines, 0) << q.name << ": " << *text;

    // The footer reconciles with the uninstrumented delta: same root row
    // count, same total UDF invocations (calls + cache hits is independent
    // of cache warmth and scheduling; the split between them is not).
    AnalyzeFooter footer;
    ASSERT_TRUE(ParseAnalyzeFooter(*text, &footer))
        << q.name << " at " << mt::OptLevelName(level) << ": " << *text;
    EXPECT_EQ(footer.rows, analyzed.rows.size())
        << q.name << " at " << mt::OptLevelName(level);
    EXPECT_EQ(footer.rows, run->result.rows.size())
        << q.name << " at " << mt::OptLevelName(level);
    EXPECT_EQ(footer.udf_calls + footer.udf_cache_hits,
              run->stats.udf_calls + run->stats.udf_cache_hits)
        << q.name << " at " << mt::OptLevelName(level);
    EXPECT_GE(footer.workers, 1)
        << q.name << " at " << mt::OptLevelName(level);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ObservabilityTest,
                         ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           char buf[16];
                           std::snprintf(buf, sizeof(buf), "Q%02d",
                                         info.param);
                           return std::string(buf);
                         });

#define EXPECT_STATS_FIELD_EQ(a, b, field) \
  EXPECT_EQ((a).field, (b).field) << #field

void ExpectStatsEqual(const engine::ExecStats& a, const engine::ExecStats& b) {
  EXPECT_STATS_FIELD_EQ(a, b, rows_scanned);
  EXPECT_STATS_FIELD_EQ(a, b, rows_joined);
  EXPECT_STATS_FIELD_EQ(a, b, udf_calls);
  EXPECT_STATS_FIELD_EQ(a, b, udf_cache_hits);
  EXPECT_STATS_FIELD_EQ(a, b, udf_shared_cache_hits);
  EXPECT_STATS_FIELD_EQ(a, b, udf_cache_misses);
  EXPECT_STATS_FIELD_EQ(a, b, udf_parallel_evals);
  EXPECT_STATS_FIELD_EQ(a, b, subquery_execs);
  EXPECT_STATS_FIELD_EQ(a, b, initplan_execs);
  EXPECT_STATS_FIELD_EQ(a, b, decorrelated_execs);
  EXPECT_STATS_FIELD_EQ(a, b, statements_parsed);
  EXPECT_STATS_FIELD_EQ(a, b, statements_rewritten);
  EXPECT_STATS_FIELD_EQ(a, b, statements_planned);
  EXPECT_STATS_FIELD_EQ(a, b, prepare_count);
  EXPECT_STATS_FIELD_EQ(a, b, plan_cache_hits);
  EXPECT_STATS_FIELD_EQ(a, b, rewrite_cache_hits);
  EXPECT_STATS_FIELD_EQ(a, b, parallel_morsels);
  EXPECT_STATS_FIELD_EQ(a, b, parallel_joins);
  EXPECT_STATS_FIELD_EQ(a, b, parallel_sorts);
  EXPECT_STATS_FIELD_EQ(a, b, topn_pushdowns);
  EXPECT_STATS_FIELD_EQ(a, b, topn_rows_pruned);
  EXPECT_STATS_FIELD_EQ(a, b, threads_used);
  EXPECT_STATS_FIELD_EQ(a, b, plans_verified);
  EXPECT_STATS_FIELD_EQ(a, b, verify_violations);
  EXPECT_STATS_FIELD_EQ(a, b, rewrites_audited);
  EXPECT_STATS_FIELD_EQ(a, b, audit_violations);
}

#undef EXPECT_STATS_FIELD_EQ

// Two StatsScopes opened around the same parallel Q6 run must report the
// same delta: scopes snapshot without resetting the live counters, so
// overlapping measurements never double-count or steal from each other —
// including the worker counters folded back by MergeWorker under 4 threads.
// Runs in the TSan lane (not `long`-labelled) to prove the fold is clean
// under the race detector too.
TEST(ObservabilityMiscTest, OverlappingStatsScopesAgreeUnderParallelism) {
  auto& fixture = ObsEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  MthQuery q = GetMthQuery(6, fixture.env()->config.scale_factor);
  SetMthThreads(fixture.env(), 4);
  engine::StatsScope outer(db->stats());
  engine::StatsScope inner(db->stats());
  auto run = RunMthQuery(fixture.session(), q.sql, mt::OptLevel::kO4);
  const engine::ExecStats outer_d = outer.Delta();
  const engine::ExecStats inner_d = inner.Delta();
  SetMthThreads(fixture.env(), 0);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectStatsEqual(outer_d, inner_d);
  EXPECT_GT(outer_d.rows_scanned, 0u);
}

// Trace-file smoke: when the harness (CI quick lane) sets MTBASE_TRACE, the
// statements above plus one of each layer here land as JSONL records in the
// file; tools/check_trace_schema.py validates the schema afterwards. Without
// the variable the test skips — tracing is off by default.
TEST(ObservabilityMiscTest, TraceSmoke) {
  const char* path = std::getenv("MTBASE_TRACE");
  if (path == nullptr || *path == '\0') {
    GTEST_SKIP() << "MTBASE_TRACE not set";
  }
  auto& fixture = ObsEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  MthQuery q = GetMthQuery(6, fixture.env()->config.scale_factor);
  auto run = RunMthQuery(fixture.session(), q.sql, mt::OptLevel::kO4);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  mt::ExplainOptions opts;
  opts.analyze = true;
  ASSERT_OK(fixture.session()->Explain(q.sql, opts));
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  int session_records = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"layer\": \"session\"") != std::string::npos) {
      ++session_records;
    }
  }
  EXPECT_GT(session_records, 0) << "no session-layer records in " << path;
}

}  // namespace
}  // namespace mth
}  // namespace mtbase
