// Executor determinism under parallelism: every MT-H validation query must
// produce byte-identical results with max_threads = 1 and max_threads = 4
// (the ISSUE's core acceptance criterion — parallel execution is purely a
// perf knob, never a semantics knob). Sharded per TPC-H query in CMake so
// the suite parallelizes under ctest and stays within timeouts under TSan.
#include <gtest/gtest.h>

#include "mth/runner.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mth {
namespace {

std::string Canon(const engine::ResultSet& rs) { return CanonRows(rs.rows); }

void SetEngineParallelism(engine::Database* db, int max_threads,
                          size_t min_parallel_rows) {
  engine::PlannerOptions opts = db->planner_options();
  opts.max_threads = max_threads;
  opts.min_parallel_rows = min_parallel_rows;
  db->set_planner_options(opts);
}

class ParallelEnv {
 public:
  static ParallelEnv& Get() {
    static ParallelEnv env;
    return env;
  }

  MthEnvironment* env() { return env_.get(); }
  mt::Session* session() { return session_.get(); }

 private:
  ParallelEnv() {
    MthConfig cfg;
    cfg.scale_factor = 0.002;
    cfg.num_tenants = 5;
    cfg.distribution = MthConfig::Distribution::kZipf;
    auto r = SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                              /*with_baseline=*/false);
    if (!r.ok()) {
      ADD_FAILURE() << r.status().ToString();
      return;
    }
    env_ = std::move(r).value();
    session_ = std::make_unique<mt::Session>(env_->middleware.get(), 1);
    auto st = session_->Execute("SET SCOPE = \"IN ()\"");
    if (!st.ok()) ADD_FAILURE() << st.status().ToString();
  }

  std::unique_ptr<MthEnvironment> env_;
  std::unique_ptr<mt::Session> session_;
};

class ParallelExecTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelExecTest, SerialAndParallelResultsByteIdentical) {
  auto& fixture = ParallelEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  MthQuery q = GetMthQuery(GetParam(), fixture.env()->config.scale_factor);
  for (mt::OptLevel level : {mt::OptLevel::kCanonical, mt::OptLevel::kO4}) {
    SetEngineParallelism(db, 1, 4096);
    ASSERT_OK_AND_ASSIGN(QueryRun serial,
                         RunMthQuery(fixture.session(), q.sql, level));
    // Low gate so the sf-0.002 inputs actually split into enough morsels.
    SetEngineParallelism(db, 4, 256);
    // Drop the serial run's shared dictionary cache first: the parallel run
    // must compute its conversions independently, or the byte comparison
    // would just echo the serial run's cached values back.
    db->shared_udf_cache()->Clear();
    ASSERT_OK_AND_ASSIGN(QueryRun par,
                         RunMthQuery(fixture.session(), q.sql, level));
    EXPECT_EQ(Canon(serial.result), Canon(par.result))
        << q.name << " at " << mt::OptLevelName(level)
        << ": serial and parallel execution diverged";
    // Counter totals must match too: workers fold their stats back. When the
    // level leaves conversion UDF calls in the plan (canonical), the number
    // of *body executions* is schedule-dependent — per-worker memoization
    // caches dedupe per worker, and concurrent misses may race to the shared
    // dictionary cache — so rows_scanned/rows_joined (which count the body
    // plans' scans and joins) are only comparable for UDF-free levels. The
    // schedule-independent invariant for UDF-bearing plans is the number of
    // call-site evaluations: every evaluation is exactly one cache hit or
    // one body call.
    if (serial.stats.total_udf_invocations() == 0) {
      EXPECT_EQ(serial.stats.rows_scanned, par.stats.rows_scanned) << q.name;
      EXPECT_EQ(serial.stats.rows_joined, par.stats.rows_joined) << q.name;
    } else {
      EXPECT_EQ(serial.stats.total_udf_invocations(),
                par.stats.total_udf_invocations())
          << q.name << " at " << mt::OptLevelName(level);
    }
    if (level == mt::OptLevel::kO4 &&
        (GetParam() == 1 || GetParam() == 6)) {
      // Scan-heavy queries over lineitem must actually have parallelized.
      EXPECT_GT(par.stats.parallel_morsels, 0u) << q.name;
      EXPECT_GT(par.stats.threads_used, 1u) << q.name;
    }
  }
  SetEngineParallelism(db, 1, 4096);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ParallelExecTest,
                         ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           char buf[16];
                           std::snprintf(buf, sizeof(buf), "Q%02d",
                                         info.param);
                           return std::string(buf);
                         });

// ORDER BY tails parallelize now: Q1 (full sort after aggregation) runs the
// run-sort + merge path and Q3 (ORDER BY ... LIMIT 10) fuses into a top-N,
// both byte-identical to the serial plan. The sf-0.002 sort inputs are tiny
// (Q1 sorts 4 groups), so the gate drops to 2 rows to actually engage the
// parallel machinery end-to-end.
class ParallelSortStatsTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSortStatsTest, OrderByTailsRunParallel) {
  auto& fixture = ParallelEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  MthQuery q = GetMthQuery(GetParam(), fixture.env()->config.scale_factor);
  SetEngineParallelism(db, 1, 4096);
  ASSERT_OK_AND_ASSIGN(QueryRun serial,
                       RunMthQuery(fixture.session(), q.sql, mt::OptLevel::kO4));
  SetEngineParallelism(db, 4, 2);
  db->stats()->threads_used = 0;  // re-anchor the high-water gauge
  ASSERT_OK_AND_ASSIGN(QueryRun par,
                       RunMthQuery(fixture.session(), q.sql, mt::OptLevel::kO4));
  EXPECT_EQ(Canon(serial.result), Canon(par.result))
      << q.name << ": parallel sort changed the result";
  EXPECT_GT(par.stats.parallel_sorts, 0u) << q.name;
  EXPECT_GT(par.stats.threads_used, 1u) << q.name;
  EXPECT_EQ(serial.stats.parallel_sorts, 0u) << q.name;
  if (GetParam() == 3) {
    // Q3 carries LIMIT 10: the planner must fuse Sort + Limit into a top-N
    // in both runs. (Whether the bounded heaps prune anything depends on
    // the group count at this scale factor; sort_test covers pruning with
    // controlled data.)
    EXPECT_GT(par.stats.topn_pushdowns, 0u) << q.name;
    EXPECT_GT(serial.stats.topn_pushdowns, 0u) << q.name;
  }
  SetEngineParallelism(db, 1, 4096);
}

INSTANTIATE_TEST_SUITE_P(SortQueries, ParallelSortStatsTest,
                         ::testing::Values(1, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

// A join-heavy query must take the partitioned parallel hash join path.
TEST(ParallelJoinStatsTest, ParallelJoinsCounted) {
  auto& fixture = ParallelEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  MthQuery q = GetMthQuery(3, fixture.env()->config.scale_factor);
  SetEngineParallelism(db, 4, 256);
  ASSERT_OK_AND_ASSIGN(QueryRun run, RunMthQuery(fixture.session(), q.sql,
                                                 mt::OptLevel::kO4));
  EXPECT_GT(run.stats.parallel_joins, 0u);
  EXPECT_GT(run.stats.threads_used, 1u);
  SetEngineParallelism(db, 1, 4096);
}

// The conversion-UDF acceptance property: canonical-level (conversion-heavy)
// queries — whose plans retain immutable toUniversal/fromUniversal UDF
// calls — parallelize too, with byte-identical output and UDF bodies
// demonstrably evaluated on morsel workers against per-worker caches.
class CanonicalConversionParallelTest : public ::testing::TestWithParam<int> {
};

TEST_P(CanonicalConversionParallelTest, ConversionHeavyPlansParallelize) {
  auto& fixture = ParallelEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  MthQuery q = GetMthQuery(GetParam(), fixture.env()->config.scale_factor);
  // Parallel run first, against a cold shared dictionary cache, so body
  // evaluations demonstrably happen on the workers. The gate is lower than
  // the byte-parity suite's: Q6's aggregate input (the rows that survive the
  // filter) is only a few hundred rows at sf 0.002, and the aggregate is
  // where the conversion calls live.
  SetEngineParallelism(db, 4, 64);
  db->shared_udf_cache()->Clear();
  // threads_used is a process-lifetime high-water gauge; re-anchor it so
  // the assertion below cannot pass on another test's parallel run.
  db->stats()->threads_used = 0;
  ASSERT_OK_AND_ASSIGN(
      QueryRun par,
      RunMthQuery(fixture.session(), q.sql, mt::OptLevel::kCanonical));
  EXPECT_GT(par.stats.total_udf_invocations(), 0u) << q.name;
  EXPECT_GT(par.stats.threads_used, 1u) << q.name;
  EXPECT_GT(par.stats.udf_parallel_evals, 0u) << q.name;
  SetEngineParallelism(db, 1, 4096);
  // Independent serial baseline: without this Clear the serial run would be
  // served the parallel workers' own cached values and the comparison would
  // be circular.
  db->shared_udf_cache()->Clear();
  ASSERT_OK_AND_ASSIGN(
      QueryRun serial,
      RunMthQuery(fixture.session(), q.sql, mt::OptLevel::kCanonical));
  EXPECT_EQ(serial.stats.udf_parallel_evals, 0u) << q.name;
  EXPECT_EQ(Canon(serial.result), Canon(par.result))
      << q.name << ": parallel conversion evaluation changed the result";
}

INSTANTIATE_TEST_SUITE_P(ConversionQueries, CanonicalConversionParallelTest,
                         ::testing::Values(1, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

// EXPLAIN surfaces the parallel annotation once a thread budget is set.
TEST(ParallelExplainTest, AnnotationReflectsThreadBudget) {
  auto& fixture = ParallelEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  SetEngineParallelism(db, 4, 64);
  ASSERT_OK_AND_ASSIGN(std::string plan,
                       fixture.session()->Explain(
                           "SELECT COUNT(*) FROM lineitem"));
  EXPECT_NE(plan.find("[parallel: 4 threads]"), std::string::npos) << plan;
  SetEngineParallelism(db, 1, 4096);
  ASSERT_OK_AND_ASSIGN(plan, fixture.session()->Explain(
                                 "SELECT COUNT(*) FROM lineitem"));
  EXPECT_EQ(plan.find("[parallel:"), std::string::npos) << plan;
}

}  // namespace
}  // namespace mth
}  // namespace mtbase
