// Executor determinism under parallelism: every MT-H validation query must
// produce byte-identical results with max_threads = 1 and max_threads = 4
// (the ISSUE's core acceptance criterion — parallel execution is purely a
// perf knob, never a semantics knob). Sharded per TPC-H query in CMake so
// the suite parallelizes under ctest and stays within timeouts under TSan.
#include <gtest/gtest.h>

#include "mth/runner.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mth {
namespace {

/// Byte-exact canonical form of a result set (no numeric tolerance: serial
/// and parallel runs must match exactly, row order included).
std::string Canon(const engine::ResultSet& rs) {
  std::string out;
  for (const Row& row : rs.rows) {
    for (const Value& v : row) {
      out += static_cast<char>('0' + static_cast<int>(v.type()));
      out += v.ToString();
      out += '\x1f';
    }
    out += '\n';
  }
  return out;
}

void SetEngineParallelism(engine::Database* db, int max_threads,
                          size_t min_parallel_rows) {
  engine::PlannerOptions opts = db->planner_options();
  opts.max_threads = max_threads;
  opts.min_parallel_rows = min_parallel_rows;
  db->set_planner_options(opts);
}

class ParallelEnv {
 public:
  static ParallelEnv& Get() {
    static ParallelEnv env;
    return env;
  }

  MthEnvironment* env() { return env_.get(); }
  mt::Session* session() { return session_.get(); }

 private:
  ParallelEnv() {
    MthConfig cfg;
    cfg.scale_factor = 0.002;
    cfg.num_tenants = 5;
    cfg.distribution = MthConfig::Distribution::kZipf;
    auto r = SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                              /*with_baseline=*/false);
    if (!r.ok()) {
      ADD_FAILURE() << r.status().ToString();
      return;
    }
    env_ = std::move(r).value();
    session_ = std::make_unique<mt::Session>(env_->middleware.get(), 1);
    auto st = session_->Execute("SET SCOPE = \"IN ()\"");
    if (!st.ok()) ADD_FAILURE() << st.status().ToString();
  }

  std::unique_ptr<MthEnvironment> env_;
  std::unique_ptr<mt::Session> session_;
};

class ParallelExecTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelExecTest, SerialAndParallelResultsByteIdentical) {
  auto& fixture = ParallelEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  MthQuery q = GetMthQuery(GetParam(), fixture.env()->config.scale_factor);
  for (mt::OptLevel level : {mt::OptLevel::kCanonical, mt::OptLevel::kO4}) {
    SetEngineParallelism(db, 1, 4096);
    ASSERT_OK_AND_ASSIGN(QueryRun serial,
                         RunMthQuery(fixture.session(), q.sql, level));
    // Low gate so the sf-0.002 inputs actually split into enough morsels.
    SetEngineParallelism(db, 4, 256);
    ASSERT_OK_AND_ASSIGN(QueryRun par,
                         RunMthQuery(fixture.session(), q.sql, level));
    EXPECT_EQ(Canon(serial.result), Canon(par.result))
        << q.name << " at " << mt::OptLevelName(level)
        << ": serial and parallel execution diverged";
    // Counter totals must match too: workers fold their stats back.
    EXPECT_EQ(serial.stats.rows_scanned, par.stats.rows_scanned) << q.name;
    EXPECT_EQ(serial.stats.rows_joined, par.stats.rows_joined) << q.name;
    if (level == mt::OptLevel::kO4 &&
        (GetParam() == 1 || GetParam() == 6)) {
      // Scan-heavy queries over lineitem must actually have parallelized.
      EXPECT_GT(par.stats.parallel_morsels, 0u) << q.name;
      EXPECT_GT(par.stats.threads_used, 1u) << q.name;
    }
  }
  SetEngineParallelism(db, 1, 4096);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ParallelExecTest,
                         ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           char buf[8];
                           std::snprintf(buf, sizeof(buf), "Q%02d",
                                         info.param);
                           return std::string(buf);
                         });

// A join-heavy query must take the partitioned parallel hash join path.
TEST(ParallelJoinStatsTest, ParallelJoinsCounted) {
  auto& fixture = ParallelEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  MthQuery q = GetMthQuery(3, fixture.env()->config.scale_factor);
  SetEngineParallelism(db, 4, 256);
  ASSERT_OK_AND_ASSIGN(QueryRun run, RunMthQuery(fixture.session(), q.sql,
                                                 mt::OptLevel::kO4));
  EXPECT_GT(run.stats.parallel_joins, 0u);
  EXPECT_GT(run.stats.threads_used, 1u);
  SetEngineParallelism(db, 1, 4096);
}

// EXPLAIN surfaces the parallel annotation once a thread budget is set.
TEST(ParallelExplainTest, AnnotationReflectsThreadBudget) {
  auto& fixture = ParallelEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  SetEngineParallelism(db, 4, 64);
  ASSERT_OK_AND_ASSIGN(std::string plan,
                       fixture.session()->Explain(
                           "SELECT COUNT(*) FROM lineitem"));
  EXPECT_NE(plan.find("[parallel: 4 threads]"), std::string::npos) << plan;
  SetEngineParallelism(db, 1, 4096);
  ASSERT_OK_AND_ASSIGN(plan, fixture.session()->Explain(
                                 "SELECT COUNT(*) FROM lineitem"));
  EXPECT_EQ(plan.find("[parallel:"), std::string::npos) << plan;
}

}  // namespace
}  // namespace mth
}  // namespace mtbase
