// The paper's correctness validation (section 5): with C = 1 and
// D = all tenants, every MT-H query must produce the plain TPC-H result on
// the merged data, at every optimization level. The canonical rewrite also
// serves as the gold standard that every optimized level must match.
#include <gtest/gtest.h>

#include "mth/runner.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mth {
namespace {

class ValidationEnv {
 public:
  static ValidationEnv& Get() {
    static ValidationEnv env;
    return env;
  }

  MthEnvironment* env() { return env_.get(); }
  mt::Session* session() { return session_.get(); }

 private:
  ValidationEnv() {
    MthConfig cfg;
    cfg.scale_factor = 0.002;
    cfg.num_tenants = 5;
    cfg.distribution = MthConfig::Distribution::kZipf;
    auto r = SetupEnvironment(cfg, engine::DbmsProfile::kPostgres, true);
    if (!r.ok()) {
      ADD_FAILURE() << r.status().ToString();
      return;
    }
    env_ = std::move(r).value();
    session_ = std::make_unique<mt::Session>(env_->middleware.get(), 1);
    auto st = session_->Execute("SET SCOPE = \"IN ()\"");
    if (!st.ok()) ADD_FAILURE() << st.status().ToString();
  }

  std::unique_ptr<MthEnvironment> env_;
  std::unique_ptr<mt::Session> session_;
};

struct Case {
  int query;
  mt::OptLevel level;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Q%02d_%s", info.param.query,
                mt::OptLevelName(info.param.level));
  std::string s = buf;
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

class MthValidationTest : public ::testing::TestWithParam<Case> {};

TEST_P(MthValidationTest, MatchesTpchBaseline) {
  auto& fixture = ValidationEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  MthQuery q = GetMthQuery(GetParam().query, fixture.env()->config.scale_factor);
  ASSERT_OK_AND_ASSIGN(QueryRun base,
                       RunTpchQuery(fixture.env()->tpch_db.get(), q.sql));
  ASSERT_OK_AND_ASSIGN(QueryRun run,
                       RunMthQuery(fixture.session(), q.sql, GetParam().level));
  std::string why;
  EXPECT_TRUE(ResultsEqual(base.result, run.result, &why))
      << q.name << " at " << mt::OptLevelName(GetParam().level) << ": " << why
      << "\nSQL sent to engine:\n"
      << run.sql;
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (int q = 1; q <= 22; ++q) {
    for (mt::OptLevel level :
         {mt::OptLevel::kCanonical, mt::OptLevel::kO1, mt::OptLevel::kO2,
          mt::OptLevel::kO3, mt::OptLevel::kO4, mt::OptLevel::kInlineOnly}) {
      cases.push_back({q, level});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllQueriesAllLevels, MthValidationTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// A different client (non-universal formats) must see the same *logical*
// results: canonical is the gold standard for the optimized levels
// (paper section 5, last bullet).
TEST(MthClientFormatTest, OptimizedLevelsMatchCanonicalForClient2) {
  auto& fixture = ValidationEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  mt::Session session(fixture.env()->middleware.get(), 2);
  ASSERT_OK(session.Execute("SET SCOPE = \"IN ()\"").status());
  for (int qn : {1, 6, 14, 22}) {
    MthQuery q = GetMthQuery(qn, fixture.env()->config.scale_factor);
    ASSERT_OK_AND_ASSIGN(QueryRun gold,
                         RunMthQuery(&session, q.sql, mt::OptLevel::kCanonical));
    for (mt::OptLevel level : {mt::OptLevel::kO2, mt::OptLevel::kO3,
                               mt::OptLevel::kO4, mt::OptLevel::kInlineOnly}) {
      ASSERT_OK_AND_ASSIGN(QueryRun run, RunMthQuery(&session, q.sql, level));
      std::string why;
      EXPECT_TRUE(ResultsEqual(gold.result, run.result, &why))
          << q.name << " client 2 at " << mt::OptLevelName(level) << ": "
          << why;
    }
  }
}

// Scoping a subset of tenants must return exactly those tenants' data.
TEST(MthScopingTest, SingleTenantScopeSeesOnlyOwnRows) {
  auto& fixture = ValidationEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  mt::Session session(fixture.env()->middleware.get(), 3);
  // Default scope: D = {3}.
  ASSERT_OK_AND_ASSIGN(auto rs,
                       session.Execute("SELECT COUNT(*) FROM customer"));
  ASSERT_OK_AND_ASSIGN(
      auto direct,
      fixture.env()->mth_db->Execute(
          "SELECT COUNT(*) FROM customer WHERE ttid = 3"));
  EXPECT_TRUE(rs.rows[0][0].StructuralEquals(direct.rows[0][0]));
}

}  // namespace
}  // namespace mth
}  // namespace mtbase
