// Static rewrite-audit proofs over the MT-H workload: every validation
// query, at every rewrite level, must compile audit-clean under enforcement
// (`audit_violations == 0` with `rewrites_audited > 0`) — and when the test
// mutation hook damages the rewritten ASTs before the audit runs, the
// session must refuse each compilation with the invariant's machine-readable
// code. Sharded per TPC-H query in CMake like the validation suite.
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "mt/audit/audit.h"
#include "mt/audit/mutators.h"
#include "mt/mt_schema.h"
#include "mth/runner.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mth {
namespace {

class ScopedAuditEnv {
 public:
  ScopedAuditEnv() { setenv("MTBASE_AUDIT_REWRITES", "1", 1); }
  ~ScopedAuditEnv() { unsetenv("MTBASE_AUDIT_REWRITES"); }
};

constexpr mt::OptLevel kAllLevels[] = {
    mt::OptLevel::kCanonical, mt::OptLevel::kO1,
    mt::OptLevel::kO2,        mt::OptLevel::kO3,
    mt::OptLevel::kO4,        mt::OptLevel::kInlineOnly,
};

class AuditEnv {
 public:
  static AuditEnv& Get() {
    static AuditEnv env;
    return env;
  }

  MthEnvironment* env() { return env_.get(); }
  /// SCOPE "IN ()": D' = all tenants — o1 and above legally suppress the
  /// D-filters, but conversions and ttid joins stay (|D'| = 5).
  mt::Session* all_tenants() { return all_.get(); }
  /// Default scope: D' = {client} — every level keeps its D-filters, while
  /// o1 and above legally drop conversions and ttid joins.
  mt::Session* own_tenant() { return own_.get(); }

 private:
  AuditEnv() {
    MthConfig cfg;
    cfg.scale_factor = 0.002;
    cfg.num_tenants = 5;
    cfg.distribution = MthConfig::Distribution::kZipf;
    auto r = SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                              /*with_baseline=*/false);
    if (!r.ok()) {
      ADD_FAILURE() << r.status().ToString();
      return;
    }
    env_ = std::move(r).value();
    all_ = std::make_unique<mt::Session>(env_->middleware.get(), 1);
    auto st = all_->Execute("SET SCOPE = \"IN ()\"");
    if (!st.ok()) ADD_FAILURE() << st.status().ToString();
    own_ = std::make_unique<mt::Session>(env_->middleware.get(), 1);
  }

  std::unique_ptr<MthEnvironment> env_;
  std::unique_ptr<mt::Session> all_;
  std::unique_ptr<mt::Session> own_;
};

class AuditRewritesTest : public ::testing::TestWithParam<int> {};

// The positive half of the acceptance criterion: both scope shapes, every
// rewrite level, zero violations — with the auditor demonstrably running.
TEST_P(AuditRewritesTest, AllLevelsAuditClean) {
  ScopedAuditEnv audit_env;
  auto& fixture = AuditEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  engine::Database* db = fixture.env()->mth_db.get();
  MthQuery q = GetMthQuery(GetParam(), fixture.env()->config.scale_factor);
  for (mt::Session* session : {fixture.all_tenants(), fixture.own_tenant()}) {
    for (mt::OptLevel level : kAllLevels) {
      engine::StatsScope stats(db->stats());
      auto run = RunMthQuery(session, q.sql, level);
      ASSERT_TRUE(run.ok()) << q.name << " at " << mt::OptLevelName(level)
                            << ": " << run.status().ToString();
      engine::ExecStats d = stats.Delta();
      EXPECT_GT(d.rewrites_audited, 0u)
          << q.name << " at " << mt::OptLevelName(level)
          << ": audit did not run";
      EXPECT_EQ(d.audit_violations, 0u)
          << q.name << " at " << mt::OptLevelName(level);
    }
  }
}

/// Run one query at one level with an AST mutator installed on the
/// middleware, asserting the audit refuses with `code` whenever the mutator
/// actually changed anything. Queries a given mutator cannot touch (no
/// matching construct in the rewritten AST) must still run clean.
void RunMutated(mt::Session* session, const MthQuery& q, mt::OptLevel level,
                const std::function<int(sql::Stmt*)>& mutate,
                const char* code) {
  auto& fixture = AuditEnv::Get();
  engine::Database* db = fixture.env()->mth_db.get();
  mt::Middleware* mw = fixture.env()->middleware.get();
  int mutated = 0;
  mw->set_rewrite_mutation_hook_for_testing(
      [&mutated, &mutate](sql::Stmt* s) { mutated += mutate(s); });
  engine::StatsScope stats(db->stats());
  auto run = RunMthQuery(session, q.sql, level);
  mw->set_rewrite_mutation_hook_for_testing(nullptr);
  if (mutated == 0) {
    EXPECT_TRUE(run.ok()) << q.name << " at " << mt::OptLevelName(level)
                          << ": " << run.status().ToString();
    return;
  }
  ASSERT_FALSE(run.ok()) << q.name << " at " << mt::OptLevelName(level)
                         << ": executed a damaged rewrite (" << code << ")";
  EXPECT_NE(run.status().ToString().find("rewrite audit failed"),
            std::string::npos)
      << q.name << ": " << run.status().ToString();
  EXPECT_NE(run.status().ToString().find(code), std::string::npos)
      << q.name << " at " << mt::OptLevelName(level) << ": "
      << run.status().ToString();
  EXPECT_GT(stats.Delta().audit_violations, 0u)
      << q.name << " at " << mt::OptLevelName(level);
}

// Strip the D-filters from the rewritten statements. The own-tenant session
// keeps D-filters at every level (D' = {1} is never all tenants), so every
// query over tenant-specific tables loses at least one and must be refused.
TEST_P(AuditRewritesTest, StrippedDFiltersRefused) {
  ScopedAuditEnv audit_env;
  auto& fixture = AuditEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  MthQuery q = GetMthQuery(GetParam(), fixture.env()->config.scale_factor);
  for (mt::OptLevel level : kAllLevels) {
    RunMutated(fixture.own_tenant(), q, level,
               [](sql::Stmt* s) { return mt::audit::StripDFilters(s); },
               "DFILTER_MISSING");
  }
}

// Unwrap each fromUniversal(toUniversal(...)) pair down to its bare to-call.
// The all-tenants session keeps conversions at every level (D' is never
// {C}), so every query touching a convertible attribute must be refused.
TEST_P(AuditRewritesTest, UnbalancedConversionsRefused) {
  ScopedAuditEnv audit_env;
  auto& fixture = AuditEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  const mt::ConversionRegistry* conversions =
      fixture.env()->middleware->conversions();
  MthQuery q = GetMthQuery(GetParam(), fixture.env()->config.scale_factor);
  for (mt::OptLevel level : kAllLevels) {
    RunMutated(fixture.all_tenants(), q, level,
               [conversions](sql::Stmt* s) {
                 return mt::audit::UnbalanceConversionPairs(s, conversions);
               },
               "CONVERSION_PAIR_UNBALANCED");
  }
}

// Drop the added ttid join predicates and revert membership-test pairings.
// The all-tenants session keeps them at every level (|D'| = 5).
TEST_P(AuditRewritesTest, DroppedTtidJoinsRefused) {
  ScopedAuditEnv audit_env;
  auto& fixture = AuditEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  MthQuery q = GetMthQuery(GetParam(), fixture.env()->config.scale_factor);
  for (mt::OptLevel level : kAllLevels) {
    RunMutated(fixture.all_tenants(), q, level,
               [](sql::Stmt* s) { return mt::audit::DropTtidJoinPredicates(s); },
               "TTID_JOIN_MISSING");
  }
}

// Append a ttid projection to the top-level select list, simulating a star
// expansion that forgot to hide the meta column.
TEST_P(AuditRewritesTest, LeakedTtidProjectionRefused) {
  ScopedAuditEnv audit_env;
  auto& fixture = AuditEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  const mt::MTSchema* schema = fixture.env()->middleware->schema();
  MthQuery q = GetMthQuery(GetParam(), fixture.env()->config.scale_factor);
  for (mt::OptLevel level : kAllLevels) {
    RunMutated(fixture.own_tenant(), q, level,
               [schema](sql::Stmt* s) {
                 return mt::audit::LeakTtidThroughStar(s, schema);
               },
               "TTID_PROJECTION_LEAK");
  }
}

// EXPLAIN (AUDIT) over the session surface: the audit footer annotates each
// statement and composes with the verify footer in fixed order.
TEST(AuditRewritesMiscTest, ExplainAuditComposesWithVerify) {
  auto& fixture = AuditEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  MthQuery q = GetMthQuery(6, fixture.env()->config.scale_factor);
  mt::ExplainOptions both;
  both.verify = true;
  both.audit = true;
  ASSERT_OK_AND_ASSIGN(std::string text,
                       fixture.own_tenant()->Explain(q.sql, both));
  size_t verify_pos = text.find("[verify: ok]");
  size_t audit_pos = text.find("[audit: ok");
  EXPECT_NE(verify_pos, std::string::npos) << text;
  EXPECT_NE(audit_pos, std::string::npos) << text;
  EXPECT_LT(verify_pos, audit_pos) << text;  // fixed order: verify, audit

  mt::ExplainOptions audit_only;
  audit_only.audit = true;
  ASSERT_OK_AND_ASSIGN(text, fixture.own_tenant()->Explain(q.sql, audit_only));
  EXPECT_EQ(text.find("[verify:"), std::string::npos) << text;
  EXPECT_NE(text.find("[audit: ok"), std::string::npos) << text;

  ASSERT_OK_AND_ASSIGN(text, fixture.own_tenant()->Explain(q.sql));
  EXPECT_EQ(text.find("[verify:"), std::string::npos) << text;
  EXPECT_EQ(text.find("[audit:"), std::string::npos) << text;
}

// EXPLAIN (AUDIT) reports a failed audit in the footer without refusing the
// explain itself — the diagnostic surface must stay usable for debugging the
// very rewrites the enforcement path rejects.
TEST(AuditRewritesMiscTest, ExplainAuditReportsFailureWithoutRefusing) {
  ScopedAuditEnv audit_env;
  auto& fixture = AuditEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  mt::Middleware* mw = fixture.env()->middleware.get();
  MthQuery q = GetMthQuery(6, fixture.env()->config.scale_factor);
  int mutated = 0;
  mw->set_rewrite_mutation_hook_for_testing([&mutated](sql::Stmt* s) {
    mutated += mt::audit::StripDFilters(s);
  });
  mt::ExplainOptions opts;
  opts.audit = true;
  auto text = fixture.own_tenant()->Explain(q.sql, opts);
  mw->set_rewrite_mutation_hook_for_testing(nullptr);
  ASSERT_GT(mutated, 0);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("[audit: FAILED DFILTER_MISSING"),
            std::string::npos)
      << text.value();
}

// The footer names the cross-level equivalence evidence: canonical at the
// levels that normalize back, a documented divergence code for the
// restructuring passes.
TEST(AuditRewritesMiscTest, ExplainAuditNamesEquivalence) {
  auto& fixture = AuditEnv::Get();
  ASSERT_NE(fixture.env(), nullptr);
  MthQuery q = GetMthQuery(6, fixture.env()->config.scale_factor);
  mt::ExplainOptions opts;
  opts.audit = true;
  mt::OptLevel prev = fixture.own_tenant()->optimization_level();
  fixture.own_tenant()->set_optimization_level(mt::OptLevel::kO2);
  auto text = fixture.own_tenant()->Explain(q.sql, opts);
  fixture.own_tenant()->set_optimization_level(prev);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("[audit: ok, equivalence: "),
            std::string::npos)
      << text.value();
}

INSTANTIATE_TEST_SUITE_P(AllQueries, AuditRewritesTest,
                         ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           char buf[16];
                           std::snprintf(buf, sizeof(buf), "Q%02d",
                                         info.param);
                           return std::string(buf);
                         });

}  // namespace
}  // namespace mth
}  // namespace mtbase
